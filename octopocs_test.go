package octopocs_test

import (
	"strings"
	"testing"

	"octopocs"
	"octopocs/internal/isa"
)

// buildFacadePair constructs a minimal S/T pair entirely through the public
// API.
func buildFacadePair(t *testing.T) *octopocs.Pair {
	t.Helper()
	build := func(name, magic string) *octopocs.Program {
		b := octopocs.BuildProgram(name)
		g := b.Function("vuln_read", 1)
		fd := g.Param(0)
		buf := g.Sys(isa.SysAlloc, g.Const(4))
		lenB := g.Sys(isa.SysAlloc, g.Const(1))
		g.Sys(isa.SysRead, fd, lenB, g.Const(1))
		n := g.Load(1, lenB, 0)
		g.Sys(isa.SysRead, fd, buf, n)
		g.Ret(n)

		f := b.Function("main", 0)
		fdm := f.Sys(isa.SysOpen)
		mb := f.Sys(isa.SysAlloc, f.Const(2))
		f.Sys(isa.SysRead, fdm, mb, f.Const(2))
		for i := 0; i < 2; i++ {
			f.If(f.NeI(f.Load(1, mb, int64(i)), int64(magic[i])), func() { f.Exit(1) })
		}
		f.Call("vuln_read", fdm)
		f.Exit(0)
		b.Entry("main")
		return b.MustBuild()
	}
	return &octopocs.Pair{
		Name: "facade",
		S:    build("s", "AB"),
		T:    build("t", "XY"),
		PoC:  append([]byte("AB"), 9, 1, 2, 3, 4, 5, 6, 7, 8, 9),
		Lib:  map[string]bool{"vuln_read": true},
	}
}

func TestFacadeVerify(t *testing.T) {
	pair := buildFacadePair(t)
	rep, err := octopocs.New(octopocs.Config{}).Verify(pair)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != octopocs.VerdictTriggered || rep.Type != octopocs.TypeII {
		t.Fatalf("report = %v, want triggered Type-II", rep)
	}
	out := octopocs.Run(pair.T, octopocs.RunConfig{Input: rep.PoCPrime})
	if !out.Crashed() {
		t.Fatalf("poc' outcome = %v, want crash", out)
	}
	if string(rep.PoCPrime[:2]) != "XY" {
		t.Errorf("guiding header = %q, want XY", rep.PoCPrime[:2])
	}
}

func TestFacadeCorpus(t *testing.T) {
	pairs := octopocs.CorpusPairs()
	if len(pairs) != 15 {
		t.Fatalf("CorpusPairs() = %d entries, want 15", len(pairs))
	}
	if octopocs.CorpusPair(8) == nil || octopocs.CorpusPair(0) != nil {
		t.Error("CorpusPair lookup broken")
	}
}

func TestFacadeProgramRoundTrip(t *testing.T) {
	pair := buildFacadePair(t)
	text := octopocs.FormatProgram(pair.S)
	if !strings.Contains(text, "program s") {
		t.Fatalf("Format output unexpected:\n%s", text)
	}
	again, err := octopocs.ParseProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	o1 := octopocs.Run(pair.S, octopocs.RunConfig{Input: pair.PoC})
	o2 := octopocs.Run(again, octopocs.RunConfig{Input: pair.PoC})
	if o1.Status != o2.Status {
		t.Errorf("outcomes differ after round-trip: %v vs %v", o1, o2)
	}
}
