package octopocs_test

import (
	"sync"
	"testing"

	"octopocs"
	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/eval"
	"octopocs/internal/expr"
	"octopocs/internal/fuzz"
	"octopocs/internal/solver"
	"octopocs/internal/survey"
	"octopocs/internal/symex"
	"octopocs/internal/taint"
	"octopocs/internal/vm"
)

// logOnce prints a regenerated table a single time per benchmark run (shown
// with `go test -bench . -v`).
var logOnce sync.Map

func logTable(b *testing.B, key, table string) {
	b.Helper()
	if _, loaded := logOnce.LoadOrStore(key, true); !loaded {
		b.Log("\n" + table)
	}
}

// BenchmarkTableII regenerates the paper's Table II (verification verdicts
// for all 15 pairs) per iteration.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.TableII()
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "t2", eval.FormatTableII(rows))
	}
}

// BenchmarkTableIII regenerates Table III (context-aware versus plain
// taint analysis on the nine triggered pairs).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "t3", eval.FormatTableIII(rows))
	}
}

// BenchmarkTableIV regenerates Table IV (naive versus directed symbolic
// execution on the three Type-II pairs).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.TableIV(32 << 20)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "t4", eval.FormatTableIV(rows))
	}
}

// BenchmarkTableV regenerates Table V (AFLFast / AFLGo / OCTOPOCS). The
// fuzzing budget is reduced relative to octobench so a benchmark iteration
// stays tractable; run `octobench -table 5` for the full campaign.
func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.TableV(60_000)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "t5", eval.FormatTableV(rows))
	}
}

// BenchmarkLatestFindings regenerates the § V-B latest-version
// verifications (three still-vulnerable latest Ts plus two post-report
// fixes).
func BenchmarkLatestFindings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Latest()
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "latest", eval.FormatLatest(rows))
	}
}

// BenchmarkSweeps regenerates the two parameter-sweep series: the § VII θ
// crossover and the Table IV naive-SE memory threshold.
func BenchmarkSweeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		thetaPts, err := eval.SweepTheta(nil)
		if err != nil {
			b.Fatal(err)
		}
		memPts, err := eval.SweepNaiveMem([]int64{1 << 20, 1 << 24})
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "sweeps", eval.FormatThetaSweep(thetaPts)+"\n"+eval.FormatMemSweep(memPts))
	}
}

// BenchmarkPoCTypeSurvey regenerates the § II-A statistic (70% of PoCs are
// malformed files).
func BenchmarkPoCTypeSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		counts := survey.Run(survey.Generate(1))
		if counts.ByType[survey.MalformedFile] != survey.PaperFilePoCs {
			b.Fatalf("survey drifted: %+v", counts)
		}
	}
}

// --- per-phase microbenchmarks ----------------------------------------------

// BenchmarkVMConcreteRun measures raw interpreter throughput on an S binary
// crashing under its PoC (the P4 cost).
func BenchmarkVMConcreteRun(b *testing.B) {
	spec := corpus.ByIdx(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := vm.New(spec.Pair.S, vm.Config{Input: spec.Pair.PoC}).Run()
		if !out.Crashed() {
			b.Fatal("expected crash")
		}
	}
}

// BenchmarkTaintAnalysis measures P1: context-aware taint over the S run.
func BenchmarkTaintAnalysis(b *testing.B) {
	spec := corpus.ByIdx(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := taint.NewEngine(taint.Config{
			Lib: spec.Pair.Lib, Ep: "gif_read_image", ContextAware: true,
		})
		vm.New(spec.Pair.S, vm.Config{Input: spec.Pair.PoC, Hooks: eng.Hooks()}).Run()
		if len(eng.Result().Bunches) == 0 {
			b.Fatal("no bunches")
		}
	}
}

// BenchmarkDirectedSE measures P2+P3 on the MuPDF pair (format bridge with
// indirect dispatch) via the full pipeline.
func BenchmarkDirectedSE(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := corpus.ByIdx(8)
		rep, err := core.New(core.Config{}).Verify(spec.Pair)
		if err != nil || rep.Verdict != core.VerdictTriggered {
			b.Fatalf("verify: %v / %v", err, rep)
		}
	}
}

// BenchmarkNaiveSEOpjDump measures undirected exploration on the one
// binary it can handle (Table IV row 1).
func BenchmarkNaiveSEOpjDump(b *testing.B) {
	spec := corpus.ByIdx(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := symex.RunNaive(spec.Pair.T, symex.NaiveConfig{
			Target: "j2k_decode", InputSize: len(spec.Pair.PoC) + 64,
		})
		if err != nil || !res.Reached() {
			b.Fatalf("naive: %v / %v", err, res)
		}
	}
}

// BenchmarkSolver measures constraint solving on a representative guiding
// input system: magic bytes, a word equality, a range, and a sum relation.
func BenchmarkSolver(b *testing.B) {
	var cs []*expr.Expr
	for i, c := range []byte("MPDF") {
		cs = append(cs, expr.Bin(expr.OpEq, expr.Sym(i), expr.Const(uint64(c))))
	}
	word := expr.Bin(expr.OpOr, expr.Sym(4), expr.Bin(expr.OpShl, expr.Sym(5), expr.Const(8)))
	cs = append(cs,
		expr.Bin(expr.OpEq, word, expr.Const(0x1234)),
		expr.Bin(expr.OpLt, expr.Sym(6), expr.Const(10)),
		expr.Bin(expr.OpEq, expr.Bin(expr.OpAdd, expr.Sym(7), expr.Sym(8)), expr.Const(300)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s solver.Solver
		if _, err := s.Solve(cs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFuzzThroughput measures baseline fuzzing executions per second
// on the gif2png clone.
func BenchmarkFuzzThroughput(b *testing.B) {
	spec := corpus.ByIdx(9)
	target := &fuzz.Target{Prog: spec.Pair.T, Lib: spec.Pair.Lib, MaxSteps: 100_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fuzz.RunAFLFast(target, fuzz.Config{
			Seeds: [][]byte{spec.Pair.PoC}, MaxExecs: 2_000, Seed: int64(i),
		})
	}
}

// BenchmarkPipelineEndToEnd measures a complete Verify on every verdict
// class: Type-I (idx 4), Type-II (idx 8), Type-III (idx 10), Failure (15).
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for _, idx := range []int{4, 8, 10, 15} {
		spec := corpus.ByIdx(idx)
		b.Run(spec.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pair := corpus.ByIdx(idx).Pair
				if _, err := octopocs.New(octopocs.Config{}).Verify(pair); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
