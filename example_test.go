package octopocs_test

import (
	"fmt"

	"octopocs"
	"octopocs/internal/isa"
)

// Example verifies a propagated vulnerability end to end: a length-checked
// reader shared between two tools, reachable only through different file
// headers.
func Example() {
	addReader := func(b *octopocs.ProgramBuilder) {
		g := b.Function("read_record", 1)
		fd := g.Param(0)
		buf := g.Sys(isa.SysAlloc, g.Const(8))
		lb := g.Sys(isa.SysAlloc, g.Const(1))
		g.Sys(isa.SysRead, fd, lb, g.Const(1))
		g.Sys(isa.SysRead, fd, buf, g.Load(1, lb, 0)) // no bound check
		g.RetI(0)
	}
	build := func(name string, magic byte) *octopocs.Program {
		b := octopocs.BuildProgram(name)
		addReader(b)
		f := b.Function("main", 0)
		fd := f.Sys(isa.SysOpen)
		mb := f.Sys(isa.SysAlloc, f.Const(1))
		f.Sys(isa.SysRead, fd, mb, f.Const(1))
		f.If(f.NeI(f.Load(1, mb, 0), int64(magic)), func() { f.Exit(1) })
		f.Call("read_record", fd)
		f.Exit(0)
		b.Entry("main")
		return b.MustBuild()
	}

	pair := &octopocs.Pair{
		Name: "original->clone",
		S:    build("original", 'A'),
		T:    build("clone", 'Z'),
		PoC:  append([]byte{'A', 30}, make([]byte, 30)...),
		Lib:  map[string]bool{"read_record": true},
	}
	report, err := octopocs.New(octopocs.Config{}).Verify(pair)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("verdict:", report.Verdict)
	fmt.Println("class:", report.Type)
	fmt.Println("reformed header:", string(report.PoCPrime[0]))
	// Output:
	// verdict: triggered
	// class: Type-II
	// reformed header: Z
}

// ExampleRun executes a corpus binary concretely on its PoC.
func ExampleRun() {
	spec := octopocs.CorpusPair(7) // ghostscript -> opj_dump
	out := octopocs.Run(spec.Pair.S, octopocs.RunConfig{Input: spec.Pair.PoC})
	fmt.Println("crashed:", out.Crashed())
	fmt.Println("where:", out.Crash.Loc.Func)
	// Output:
	// crashed: true
	// where: j2k_decode
}

// ExampleCorpusPairs lists the Table II rows.
func ExampleCorpusPairs() {
	fmt.Println("pairs:", len(octopocs.CorpusPairs()))
	fmt.Println("row 9:", octopocs.CorpusPair(9).Label())
	// Output:
	// pairs: 15
	// row 9: gif2png->gif2png (artificial)
}
