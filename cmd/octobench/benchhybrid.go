package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/vm"
)

// HybridBenchRow is one (pair, hybrid mode) measurement of
// BENCH_hybrid.json: the verification outcome of a hybrid-set pair with
// the directed-fuzzing fallback off (the symex baseline) or on.
type HybridBenchRow struct {
	Pair    string `json:"pair"`
	Idx     int    `json:"idx"`
	Hybrid  bool   `json:"hybrid"`
	Verdict string `json:"verdict"`
	Type    string `json:"type"`
	Reason  string `json:"reason,omitempty"`
	PoC     bool   `json:"poc_generated"`
	// Rescued marks rows the fallback upgraded to triggered-by-fuzzing;
	// Confirmed re-checks the reported poc' on an independent VM replay.
	Rescued   bool `json:"rescued,omitempty"`
	Confirmed bool `json:"replay_confirmed,omitempty"`
	// ExecsToTrigger counts the campaign's concrete executions until the
	// crash (both arms); zero on hybrid=false rows.
	ExecsToTrigger int64 `json:"execs_to_trigger,omitempty"`
	// MaskedArm reports whether the bunch-masked arm found the crash.
	MaskedArm bool    `json:"masked_arm,omitempty"`
	WallMs    float64 `json:"wall_ms"`
	HybridMs  float64 `json:"hybrid_ms,omitempty"`
}

// hybridBenchTotals is the headline: how many symex-unresolvable pairs the
// fallback rescued, and what it cost.
type hybridBenchTotals struct {
	// Unresolvable counts baseline rows ending loop-dead or
	// budget-exhausted — the population the fallback targets.
	Unresolvable int `json:"unresolvable_baseline"`
	// Rescued counts pairs upgraded to triggered-by-fuzzing; the gate
	// requires Rescued == Unresolvable.
	Rescued int `json:"rescued"`
	// Confirmed counts rescues whose poc' passed the independent replay;
	// the gate requires Confirmed == Rescued.
	Confirmed  int   `json:"replay_confirmed"`
	TotalExecs int64 `json:"total_execs"`
}

// hybridBenchFile is the BENCH_hybrid.json document.
type hybridBenchFile struct {
	Host       hostMeta          `json:"host"`
	Note       string            `json:"note"`
	Pairs      int               `json:"pairs"`
	Totals     hybridBenchTotals `json:"totals"`
	Benchmarks []HybridBenchRow  `json:"benchmarks"`
}

// benchHybrid verifies every hybrid-set pair (Idx 18-21) with the
// directed-fuzzing fallback off and on, and writes the rescue comparison
// to path. The run FAILS unless every pair that is symex-unresolvable at
// baseline (loop-dead or budget-exhausted) is rescued as
// triggered-by-fuzzing with a poc' that an independent concrete replay
// confirms crashes T inside ℓ — the hard gate CI enforces.
func benchHybrid(path string) error {
	out := hybridBenchFile{
		Host: currentHost(),
		Note: "each hybrid pair is verified twice by fresh pipelines: hybrid=false is the " +
			"symex-only baseline (expected to end loop-dead or budget-exhausted), hybrid=true " +
			"adds the directed-fuzzing fallback seeded with the partially-solved poc' and " +
			"masked by the P1 bunch spans. Every baseline-unresolvable pair must be rescued " +
			"as triggered-by-fuzzing, and every reported poc' is re-replayed on an " +
			"independent VM before it counts. execs_to_trigger spans both campaign arms. " +
			"wall_ms is a single uncached run (indicative, not a steady state).",
	}
	specs := corpus.HybridSet()
	out.Pairs = len(specs)
	for _, spec := range specs {
		unresolvable := false
		for _, hybridOn := range []bool{false, true} {
			pl := core.New(core.Config{HybridFuzz: hybridOn})
			start := time.Now()
			rep, err := pl.Verify(spec.Pair)
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("pair %d hybrid=%v: %w", spec.Idx, hybridOn, err)
			}
			row := HybridBenchRow{
				Pair:    spec.Pair.Name,
				Idx:     spec.Idx,
				Hybrid:  hybridOn,
				Verdict: rep.Verdict.String(),
				Type:    rep.Type.String(),
				Reason:  string(rep.Reason),
				PoC:     rep.PoCGenerated(),
				WallMs:  float64(wall.Microseconds()) / 1e3,
			}
			if !hybridOn {
				unresolvable = rep.Reason == core.ReasonLoopDead || rep.Reason == core.ReasonBudget
				if unresolvable {
					out.Totals.Unresolvable++
				}
				if rep.Verdict == core.VerdictTriggered || rep.Verdict == core.VerdictTriggeredByFuzzing {
					return fmt.Errorf("pair %d: baseline unexpectedly triggered (%s)", spec.Idx, rep.Verdict)
				}
			} else {
				row.HybridMs = float64(rep.Timings.Hybrid.Microseconds()) / 1e3
				if rep.Hybrid != nil {
					row.Rescued = rep.Hybrid.Rescued
					row.ExecsToTrigger = rep.Hybrid.Execs
					row.MaskedArm = rep.Hybrid.MaskedArm
					out.Totals.TotalExecs += rep.Hybrid.Execs
				}
				if unresolvable {
					// The hard gate: a symex-unresolvable pair must be
					// rescued, and its poc' must replay-confirm.
					if rep.Verdict != core.VerdictTriggeredByFuzzing || !row.Rescued {
						return fmt.Errorf("pair %d: symex-unresolvable but not rescued (verdict %s, hybrid %+v)",
							spec.Idx, rep.Verdict, rep.Hybrid)
					}
					out.Totals.Rescued++
					replay := vm.New(spec.Pair.T, vm.Config{Input: rep.PoCPrime}).Run()
					row.Confirmed = replay.Crashed() && replay.CrashedIn(spec.Pair.Lib)
					if !row.Confirmed {
						return fmt.Errorf("pair %d: rescued poc' failed the independent replay (%v)", spec.Idx, replay)
					}
					out.Totals.Confirmed++
				}
			}
			out.Benchmarks = append(out.Benchmarks, row)
			fmt.Printf("[%2d] %-24s hybrid=%-5v %-20s reason=%-28q execs=%7d %8.2f ms%s\n",
				spec.Idx, spec.Pair.Name, hybridOn, row.Verdict, row.Reason,
				row.ExecsToTrigger, row.WallMs,
				map[bool]string{true: "  (rescued)", false: ""}[row.Rescued])
		}
	}
	if out.Totals.Unresolvable == 0 {
		return fmt.Errorf("no hybrid pair was symex-unresolvable at baseline; the set no longer exercises the fallback")
	}
	if out.Totals.Rescued != out.Totals.Unresolvable || out.Totals.Confirmed != out.Totals.Rescued {
		return fmt.Errorf("rescue gate failed: %d unresolvable, %d rescued, %d confirmed",
			out.Totals.Unresolvable, out.Totals.Rescued, out.Totals.Confirmed)
	}
	fmt.Printf("totals: %d/%d symex-unresolvable pairs rescued and replay-confirmed, %d campaign execs\n",
		out.Totals.Rescued, out.Totals.Unresolvable, out.Totals.TotalExecs)

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}

// checkHybridBaselineIdentity verifies the fallback's do-no-harm property
// from the CLI surface: every pre-existing corpus pair (Idx 1-17) must
// produce a byte-identical verdict/type/reason/poc' with -hybrid on.
// Called by the -bench-hybrid run after the rescue gate.
func checkHybridBaselineIdentity() error {
	plOff := core.New(core.Config{})
	plOn := core.New(core.Config{HybridFuzz: true})
	for _, spec := range append(corpus.All(), corpus.StaticSet()...) {
		repOff, err := plOff.Verify(spec.Pair)
		if err != nil {
			return fmt.Errorf("pair %d (off): %w", spec.Idx, err)
		}
		repOn, err := plOn.Verify(spec.Pair)
		if err != nil {
			return fmt.Errorf("pair %d (on): %w", spec.Idx, err)
		}
		if repOn.Verdict != repOff.Verdict || repOn.Type != repOff.Type ||
			repOn.Reason != repOff.Reason || !bytes.Equal(repOn.PoCPrime, repOff.PoCPrime) {
			return fmt.Errorf("pair %d: -hybrid changed the outcome: %s vs %s", spec.Idx, repOn, repOff)
		}
		if repOn.Hybrid != nil {
			return fmt.Errorf("pair %d: fallback ran on a non-eligible pair", spec.Idx)
		}
	}
	fmt.Println("baseline identity: all 17 pre-existing pairs byte-identical with -hybrid on")
	return nil
}
