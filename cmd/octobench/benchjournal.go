package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/journal"
)

// JournalBenchRow is one (mode) measurement of BENCH_journal.json: the cost
// of verifying the full corpus with the provenance journal off, on at
// summary verbosity, or on at verbose verbosity.
type JournalBenchRow struct {
	Mode        string  `json:"mode"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	MsPerOp     float64 `json:"ms_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Events is the journal volume of the last iteration, summed across
	// pairs; zero in the off mode.
	Events int `json:"events,omitempty"`
	// OverheadPct is this mode's ns/op relative to the off baseline, as a
	// percentage (e.g. 2.5 means 2.5% slower).
	OverheadPct float64 `json:"overhead_pct"`
}

// journalBenchFile is the BENCH_journal.json document.
type journalBenchFile struct {
	Host       hostMeta          `json:"host"`
	Note       string            `json:"note"`
	Pairs      int               `json:"pairs"`
	Benchmarks []JournalBenchRow `json:"benchmarks"`
}

// benchJournalSweep verifies every corpus pair once with the given journal
// options (nil = journaling off) and returns the total event count.
func benchJournalSweep(b *testing.B, specs []*corpus.PairSpec, opts *journal.Options) int {
	events := 0
	for _, spec := range specs {
		pl := core.New(core.Config{StaticPrune: true})
		ctx := context.Background()
		var rec *journal.Recorder
		if opts != nil {
			rec = journal.New(fmt.Sprintf("pair-%d", spec.Idx), *opts)
			ctx = journal.With(ctx, rec)
		}
		if _, err := pl.VerifyContext(ctx, spec.Pair); err != nil {
			b.Fatal(err)
		}
		if rec != nil {
			rec.Close()
			events += rec.Len()
		}
	}
	return events
}

// benchJournal measures the provenance journal's verification overhead: the
// full corpus is verified with journaling off, on at the default summary
// verbosity (the service default), and on at verbose verbosity (every fork,
// prune, and commit recorded). The journal's contract is that recording is
// observability, not behavior — the off/on wall-clock gap is the price of
// explainability and is expected to stay within a few percent.
func benchJournal(path string) error {
	specs := append(corpus.All(), corpus.StaticSet()...)
	out := journalBenchFile{
		Host: currentHost(),
		Note: "each mode verifies the full corpus per iteration with a fresh pipeline; " +
			"overhead_pct compares against the journal-off baseline. summary is the " +
			"service default; verbose additionally records per-state symex and solver " +
			"events.",
		Pairs: len(specs),
	}

	modes := []struct {
		name string
		opts *journal.Options
	}{
		{"off", nil},
		{"summary", &journal.Options{}},
		{"verbose", &journal.Options{Verbosity: journal.VerbVerbose}},
	}
	var baseline int64
	for _, mode := range modes {
		mode := mode
		events := 0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				events = benchJournalSweep(b, specs, mode.opts)
			}
		})
		row := JournalBenchRow{
			Mode:        mode.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Events:      events,
		}
		if mode.opts == nil {
			baseline = r.NsPerOp()
		} else if baseline > 0 {
			row.OverheadPct = (float64(r.NsPerOp())/float64(baseline) - 1) * 100
		}
		out.Benchmarks = append(out.Benchmarks, row)
		fmt.Printf("journal=%-8s %8d iters  %10.3f ms/op  %8d allocs/op  %6d events  %+.2f%%\n",
			mode.name, row.Iterations, row.MsPerOp, row.AllocsPerOp, row.Events, row.OverheadPct)
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
