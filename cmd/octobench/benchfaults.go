package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/faultinject"
)

// faultBenchSchedule is the canned chaos load of the benchmark: roughly one
// in ten Sat checks fails transiently, one worker panic is injected, and
// the shared SAT-verdict cache is bypassed half the time. All faults are
// transient or degraded, so verdict equality with the fault-free run is a
// hard invariant, not a statistic.
const faultBenchSchedule = "seed=7;solver.sat:rate=0.1,count=4;symex.worker_panic:nth=1;solver.cache:rate=0.5"

// FaultBenchRow is one (pair, faults mode) measurement of
// BENCH_faults.json: the full-pipeline verification cost without and with
// the canned fault schedule.
type FaultBenchRow struct {
	Pair    string `json:"pair"`
	Idx     int    `json:"idx"`
	Faults  bool   `json:"faults"`
	Verdict string `json:"verdict"`
	Type    string `json:"type"`
	PoC     bool   `json:"poc_generated"`
	// Fault accounting; zero-valued on faults=false rows.
	Injected  uint64  `json:"faults_injected,omitempty"`
	Retried   uint64  `json:"faults_retried,omitempty"`
	Recovered uint64  `json:"faults_recovered,omitempty"`
	Degraded  uint64  `json:"faults_degraded,omitempty"`
	WallMs    float64 `json:"wall_ms"`
	// VerdictStable is true when the faulted run reproduced the fault-free
	// verdict, type, and poc' bytes exactly.
	VerdictStable bool `json:"verdict_stable"`
}

// faultBenchTotals aggregates the headline overhead comparison.
type faultBenchTotals struct {
	WallMsClean   float64 `json:"wall_ms_clean"`
	WallMsFaulted float64 `json:"wall_ms_faulted"`
	Injected      uint64  `json:"faults_injected"`
	Retried       uint64  `json:"faults_retried"`
	Recovered     uint64  `json:"faults_recovered"`
	Degraded      uint64  `json:"faults_degraded"`
	StablePairs   int     `json:"stable_pairs"`
}

// faultBenchFile is the BENCH_faults.json document.
type faultBenchFile struct {
	Host       hostMeta         `json:"host"`
	Note       string           `json:"note"`
	Schedule   string           `json:"schedule"`
	Pairs      int              `json:"pairs"`
	Totals     faultBenchTotals `json:"totals"`
	Benchmarks []FaultBenchRow  `json:"benchmarks"`
}

// benchFaults verifies every corpus pair once fault-free and once under the
// canned transient/degraded fault schedule (a fresh injector per pair, so
// the schedule replays identically for each), and writes the per-pair
// retry/recovery cost to path. A faulted run whose verdict, type, or poc'
// diverges from the clean run fails the benchmark outright — throughput
// numbers for an unsound pipeline are worthless.
func benchFaults(path string) error {
	out := faultBenchFile{
		Host: currentHost(),
		Note: "each pair is verified twice by a fresh pipeline: faults=false is the clean " +
			"baseline, faults=true replays the canned schedule through a fresh injector. " +
			"All scheduled faults are transient or degraded, so verdict_stable must be true " +
			"on every row; wall_ms quantifies the retry/backoff overhead. SymexWorkers is " +
			"pinned to 1 so the comparison is schedule-independent.",
		Schedule: faultBenchSchedule,
	}
	specs := append(corpus.All(), corpus.StaticSet()...)
	out.Pairs = len(specs)
	for _, spec := range specs {
		var clean *core.Report
		for _, withFaults := range []bool{false, true} {
			// Retry.Max covers the schedule's worst case (4 sat faults + 1
			// worker panic could all land in one phase), so recovery is
			// guaranteed rather than probabilistic.
			cfg := core.Config{SymexWorkers: 1, Retry: core.RetryPolicy{Max: 6, BaseDelay: time.Millisecond}}
			var in *faultinject.Injector
			if withFaults {
				sch, err := faultinject.ParseSchedule(faultBenchSchedule)
				if err != nil {
					return err
				}
				in = faultinject.New(sch)
				cfg.Faults = in
			}
			pl := core.New(cfg)
			start := time.Now()
			rep, err := pl.Verify(spec.Pair)
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("pair %d faults=%v: %w", spec.Idx, withFaults, err)
			}
			row := FaultBenchRow{
				Pair:    spec.Pair.Name,
				Idx:     spec.Idx,
				Faults:  withFaults,
				Verdict: rep.Verdict.String(),
				Type:    rep.Type.String(),
				PoC:     rep.PoCGenerated(),
				WallMs:  float64(wall.Microseconds()) / 1e3,
			}
			if withFaults {
				row.Injected = in.Injected()
				row.Retried = in.RetriedCount()
				row.Recovered = in.RecoveredCount()
				row.Degraded = in.DegradedCount()
				row.VerdictStable = rep.Verdict == clean.Verdict && rep.Type == clean.Type &&
					string(rep.PoCPrime) == string(clean.PoCPrime)
				if !row.VerdictStable {
					return fmt.Errorf("pair %d: faulted verdict %s/%s diverged from clean %s/%s",
						spec.Idx, row.Verdict, row.Type, clean.Verdict, clean.Type)
				}
				out.Totals.WallMsFaulted += row.WallMs
				out.Totals.Injected += row.Injected
				out.Totals.Retried += row.Retried
				out.Totals.Recovered += row.Recovered
				out.Totals.Degraded += row.Degraded
				out.Totals.StablePairs++
			} else {
				clean = rep
				row.VerdictStable = true
				out.Totals.WallMsClean += row.WallMs
			}
			out.Benchmarks = append(out.Benchmarks, row)
			fmt.Printf("[%2d] %-32s faults=%-5v %-15s %3d injected %3d retried %8.2f ms\n",
				spec.Idx, spec.Pair.Name, withFaults, row.Verdict,
				row.Injected, row.Retried, row.WallMs)
		}
	}
	fmt.Printf("totals: wall %0.2f ms -> %0.2f ms, %d injected, %d retried, %d recovered, %d degraded, %d/%d stable\n",
		out.Totals.WallMsClean, out.Totals.WallMsFaulted, out.Totals.Injected,
		out.Totals.Retried, out.Totals.Recovered, out.Totals.Degraded,
		out.Totals.StablePairs, out.Pairs)

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
