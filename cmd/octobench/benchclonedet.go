package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"octopocs/internal/corpus"
	"octopocs/internal/service"
)

// CloneBenchCand is one ranked candidate of a clone-detection scan, with
// its verification outcome.
type CloneBenchCand struct {
	Rank     int     `json:"rank"`
	Target   string  `json:"target"`
	Score    float64 `json:"score"`
	InFamily bool    `json:"in_family"`
	Verdict  string  `json:"verdict,omitempty"`
	Type     string  `json:"type,omitempty"`
	// Confirmed: verification produced a reformed PoC triggering the
	// vulnerability in this target.
	Confirmed bool `json:"confirmed,omitempty"`
	// ExpectTriggered is the ground-truth expectation for this target's own
	// corpus row; a confirmed candidate with this false is a false
	// "triggerable" — soundness failure, never observed.
	ExpectTriggered bool   `json:"expect_triggered"`
	Error           string `json:"error,omitempty"`
}

// CloneBenchRow is one source CVE scanned across the 17-target index.
type CloneBenchRow struct {
	Idx    int    `json:"idx"`
	Source string `json:"source"`
	Family string `json:"family"`
	// DiagonalRank is the 1-based rank of the source's own propagation
	// target in the candidate list (0 = not retrieved — recall failure).
	DiagonalRank int `json:"diagonal_rank"`
	// DiagonalConfirmed / ExpectTriggered compare verification of the true
	// pair against Table II's poc' column.
	DiagonalConfirmed bool `json:"diagonal_confirmed"`
	ExpectTriggered   bool `json:"expect_triggered"`
	// Precision and Recall measure retrieval against the family truth:
	// in-family candidates over all candidates, and over the family size.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// Verification outcome counts across the candidates.
	Confirmed  int              `json:"confirmed"`
	Refuted    int              `json:"refuted"`
	WallMs     float64          `json:"wall_ms"`
	Candidates []CloneBenchCand `json:"candidates"`
}

// cloneBenchTotals is the headline aggregate.
type cloneBenchTotals struct {
	Sources    int `json:"sources"`
	Candidates int `json:"candidates"`
	// MeanPrecision/MeanRecall are macro-averages over sources; MRR is the
	// mean reciprocal rank of the true pair.
	MeanPrecision float64 `json:"mean_precision"`
	MeanRecall    float64 `json:"mean_recall"`
	MRR           float64 `json:"mrr"`
	Confirmed     int     `json:"confirmed"`
	Refuted       int     `json:"refuted"`
	// DiagonalMisses counts sources whose true pair was not retrieved;
	// DiagonalMismatches counts true pairs whose verification verdict
	// contradicts Table II; FalseTriggered counts confirmed candidates whose
	// target row is not triggerable. All three must be zero.
	DiagonalMisses     int `json:"diagonal_misses"`
	DiagonalMismatches int `json:"diagonal_mismatches"`
	FalseTriggered     int `json:"false_triggered"`
}

// cloneBenchFile is the BENCH_clonedet.json document.
type cloneBenchFile struct {
	Host       hostMeta         `json:"host"`
	Note       string           `json:"note"`
	Totals     cloneBenchTotals `json:"totals"`
	Benchmarks []CloneBenchRow  `json:"benchmarks"`
}

// benchClonedet fans every corpus CVE through the batch scan path — the
// same StartScan flow behind POST /v1/scan — against the full 17-target
// index, verifying every ranked candidate, and writes retrieval quality
// (precision/recall/rank) plus verification outcomes to path. It fails if
// any true clone pair is missed by retrieval, if the true pair's verdict
// contradicts Table II, or if any candidate is falsely confirmed.
func benchClonedet(path string, workers int) error {
	if workers <= 0 {
		workers = 2
	}
	out := cloneBenchFile{
		Host: currentHost(),
		Note: "each corpus CVE is scanned against the 17-target fingerprint index via the " +
			"service batch-scan path; every ranked candidate is verified end to end. " +
			"precision/recall score retrieval against the clone-family ground truth " +
			"(corpus.CloneTruth); confirmed/refuted are pipeline verdicts. " +
			"false_triggered and diagonal_misses must be zero.",
	}
	svc := service.New(service.Config{Workers: workers, QueueDepth: 17 * 17})
	defer svc.Shutdown(context.Background())

	truthRows := corpus.CloneTruth()
	var sumP, sumR, sumRR float64
	for _, truth := range truthRows {
		start := time.Now()
		sc, err := svc.StartScan(&service.ScanRequest{
			CorpusIdx:     truth.Idx,
			CorpusTargets: true,
		})
		if err != nil {
			return fmt.Errorf("scan source %d: %w", truth.Idx, err)
		}
		if err := sc.Wait(context.Background()); err != nil {
			return err
		}
		st := sc.Snapshot()
		row := CloneBenchRow{
			Idx:             truth.Idx,
			Source:          truth.Source,
			Family:          truth.Family,
			ExpectTriggered: truth.ExpectTriggered,
			WallMs:          float64(time.Since(start).Microseconds()) / 1e3,
		}
		family := map[string]bool{}
		for _, idx := range corpus.FamilyTargets(truth.Family) {
			family[fmt.Sprintf("corpus/%02d", idx)] = true
		}
		diagonal := fmt.Sprintf("corpus/%02d", truth.Idx)
		inFamily := 0
		for rank, c := range st.Candidates {
			cand := CloneBenchCand{
				Rank:      rank + 1,
				Target:    c.Target,
				Score:     c.Score,
				InFamily:  family[c.Target],
				Verdict:   c.Verdict,
				Type:      c.Type,
				Confirmed: c.Confirmed,
				Error:     c.Error,
			}
			var targetIdx int
			if _, err := fmt.Sscanf(c.Target, "corpus/%d", &targetIdx); err == nil {
				if tt := corpus.CloneTruthByIdx(targetIdx); tt != nil {
					cand.ExpectTriggered = tt.ExpectTriggered
				}
			}
			if cand.InFamily {
				inFamily++
			}
			if c.Target == diagonal {
				row.DiagonalRank = rank + 1
				row.DiagonalConfirmed = c.Confirmed
			}
			if c.Confirmed {
				row.Confirmed++
				if !cand.ExpectTriggered {
					out.Totals.FalseTriggered++
				}
			}
			if c.Verdict == "not-triggerable" {
				row.Refuted++
			}
			row.Candidates = append(row.Candidates, cand)
		}
		if n := len(st.Candidates); n > 0 {
			row.Precision = float64(inFamily) / float64(n)
		}
		row.Recall = float64(inFamily) / float64(len(family))
		if row.DiagonalRank == 0 {
			out.Totals.DiagonalMisses++
		} else {
			sumRR += 1 / float64(row.DiagonalRank)
		}
		if row.DiagonalConfirmed != truth.ExpectTriggered {
			out.Totals.DiagonalMismatches++
		}
		sumP += row.Precision
		sumR += row.Recall
		out.Totals.Candidates += len(row.Candidates)
		out.Totals.Confirmed += row.Confirmed
		out.Totals.Refuted += row.Refuted
		out.Benchmarks = append(out.Benchmarks, row)
		fmt.Printf("[%2d] %-14s family %-8s rank %d  P %.2f R %.2f  %d confirmed %d refuted  %7.1f ms\n",
			row.Idx, row.Source, row.Family, row.DiagonalRank,
			row.Precision, row.Recall, row.Confirmed, row.Refuted, row.WallMs)
	}
	n := float64(len(truthRows))
	out.Totals.Sources = len(truthRows)
	out.Totals.MeanPrecision = sumP / n
	out.Totals.MeanRecall = sumR / n
	out.Totals.MRR = sumRR / n
	fmt.Printf("totals: P %.3f R %.3f MRR %.3f, %d confirmed, %d refuted, %d false-triggered, %d misses, %d mismatches\n",
		out.Totals.MeanPrecision, out.Totals.MeanRecall, out.Totals.MRR,
		out.Totals.Confirmed, out.Totals.Refuted,
		out.Totals.FalseTriggered, out.Totals.DiagonalMisses, out.Totals.DiagonalMismatches)

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("benchmark results written to %s\n", path)

	switch {
	case out.Totals.DiagonalMisses > 0:
		return fmt.Errorf("retrieval missed %d true clone pair(s)", out.Totals.DiagonalMisses)
	case out.Totals.DiagonalMismatches > 0:
		return fmt.Errorf("%d true pair(s) verified contrary to Table II", out.Totals.DiagonalMismatches)
	case out.Totals.FalseTriggered > 0:
		return fmt.Errorf("%d candidate(s) falsely confirmed triggerable", out.Totals.FalseTriggered)
	}
	return nil
}
