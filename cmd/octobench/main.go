// Command octobench regenerates the paper's evaluation artifacts: Tables
// II through V and the § II-A PoC-type survey.
//
// Usage:
//
//	octobench -all
//	octobench -table 2
//	octobench -table 5 -execs 500000
//	octobench -survey
package main

import (
	"flag"
	"fmt"
	"os"

	"octopocs/internal/eval"
	"octopocs/internal/survey"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "octobench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("octobench", flag.ContinueOnError)
	var (
		all        = fs.Bool("all", false, "regenerate every table and the survey")
		table      = fs.Int("table", 0, "regenerate one table (2-5)")
		doSurvey   = fs.Bool("survey", false, "run the § II-A PoC-type survey")
		doLatest   = fs.Bool("latest", false, "run the § V-B latest-version verifications")
		doSweeps   = fs.Bool("sweeps", false, "run the θ and naive-SE-memory parameter sweeps")
		execs      = fs.Int64("execs", 300_000, "fuzzing execution budget for Table V")
		memBudget  = fs.Int64("mem", 0, "naive-SE memory budget in bytes for Table IV (0 = default)")
		workers    = fs.Int("workers", 0, "verify Table II pairs with a worker pool of this size (0 = sequential)")
		doBench    = fs.Bool("bench-telemetry", false, "run the cold/warm service benchmarks and write machine-readable results")
		benchOut   = fs.String("bench-out", "BENCH_telemetry.json", "with -bench-telemetry: output file")
		doSymex    = fs.Bool("bench-symex", false, "run the parallel symbolic-execution scaling benchmarks")
		symexOut   = fs.String("bench-symex-out", "BENCH_symex.json", "with -bench-symex: output file")
		doStatic   = fs.Bool("bench-static", false, "run the static-prune pipeline benchmark (all pairs, pruning off vs on)")
		staticOut  = fs.String("bench-static-out", "BENCH_static.json", "with -bench-static: output file")
		doFaults   = fs.Bool("bench-faults", false, "run the fault-injection overhead benchmark (all pairs, clean vs canned chaos schedule)")
		faultsOut  = fs.String("bench-faults-out", "BENCH_faults.json", "with -bench-faults: output file")
		doClone    = fs.Bool("bench-clonedet", false, "run the clone-detection benchmark (every corpus CVE scanned and verified against the 17-target index)")
		cloneOut   = fs.String("bench-clonedet-out", "BENCH_clonedet.json", "with -bench-clonedet: output file")
		doJournal  = fs.Bool("bench-journal", false, "run the provenance-journal overhead benchmark (all pairs, journal off vs summary vs verbose)")
		journalOut = fs.String("bench-journal-out", "BENCH_journal.json", "with -bench-journal: output file")
		doStore    = fs.Bool("bench-store", false, "run the persistent-store warm-restart benchmark (all pairs cold, then reopened warm; fails if the warm pass recomputes anything)")
		storeOut   = fs.String("bench-store-out", "BENCH_store.json", "with -bench-store: output file")
		doHybrid   = fs.Bool("bench-hybrid", false, "run the hybrid-fallback benchmark (hybrid set off vs on; fails unless every symex-unresolvable pair is rescued and replay-confirmed, and pairs 1-17 stay byte-identical)")
		hybridOut  = fs.String("bench-hybrid-out", "BENCH_hybrid.json", "with -bench-hybrid: output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *doBench {
		return benchTelemetry(*benchOut)
	}
	if *doSymex {
		return benchSymex(*symexOut)
	}
	if *doStatic {
		return benchStatic(*staticOut)
	}
	if *doFaults {
		return benchFaults(*faultsOut)
	}
	if *doClone {
		return benchClonedet(*cloneOut, *workers)
	}
	if *doJournal {
		return benchJournal(*journalOut)
	}
	if *doStore {
		return benchStore(*storeOut, *workers)
	}
	if *doHybrid {
		if err := benchHybrid(*hybridOut); err != nil {
			return err
		}
		return checkHybridBaselineIdentity()
	}
	if !*all && *table == 0 && !*doSurvey && !*doLatest && !*doSweeps {
		fs.Usage()
		return fmt.Errorf("pass -all, -table N, -latest, -sweeps, -survey, -bench-telemetry, -bench-symex, -bench-static, -bench-faults, -bench-clonedet, -bench-journal, -bench-store, or -bench-hybrid")
	}

	want := func(n int) bool { return *all || *table == n }

	if want(2) {
		var rows []eval.TableIIRow
		var err error
		if *workers > 0 {
			rows, err = eval.TableIIParallel(*workers)
		} else {
			rows, err = eval.TableII()
		}
		// The parallel run returns the rows that verified even when some
		// pairs failed; print them before surfacing the aggregate error.
		if len(rows) > 0 {
			fmt.Println(eval.FormatTableII(rows))
		}
		if err != nil {
			return err
		}
	}
	if want(3) {
		rows, err := eval.TableIII()
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatTableIII(rows))
	}
	if want(4) {
		rows, err := eval.TableIV(*memBudget)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatTableIV(rows))
	}
	if want(5) {
		rows, err := eval.TableV(*execs)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatTableV(rows))
	}
	if *all || *doLatest {
		rows, err := eval.Latest()
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatLatest(rows))
	}
	if *all || *doSweeps {
		thetaPts, err := eval.SweepTheta(nil)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatThetaSweep(thetaPts))
		memPts, err := eval.SweepNaiveMem(nil)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatMemSweep(memPts))
	}
	if *all || *doSurvey {
		counts := survey.Run(survey.Generate(1))
		fmt.Println("PoC-type survey (§ II-A analog)")
		fmt.Printf("Bugzilla-referenced CVEs: %d (paper: %d)\n", counts.Total, survey.PaperTotal)
		fmt.Printf("Reported with a PoC:      %d (paper: %d)\n", counts.WithPoC, survey.PaperWithPoC)
		for _, t := range []survey.PoCType{survey.MalformedFile, survey.ShellCommand, survey.Program, survey.MalformedString} {
			fmt.Printf("  %-18s %d\n", t.String()+":", counts.ByType[t])
		}
		fmt.Printf("Malformed-file share:     %.1f%% (paper: 70%%)\n", counts.FilePercent)
	}
	return nil
}
