package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"octopocs/internal/artifact"
	"octopocs/internal/corpus"
	"octopocs/internal/service"
)

// StoreBenchPhase is one measured pass of BENCH_store.json: the full corpus
// verified through a service backed by the persistent artifact store.
type StoreBenchPhase struct {
	Phase string  `json:"phase"`
	MS    float64 `json:"ms"`
	// P1Cached/P2Cached count reports whose crash-primitive and
	// T-preparation artifacts came from the store; Recomputed counts pairs
	// that had to rebuild either one. A warm restart must report 0 here.
	P1Cached   int `json:"p1_cached"`
	P2Cached   int `json:"p2_cached"`
	Recomputed int `json:"recomputed"`
	// Stores snapshots the per-class store accounting after the pass.
	Stores map[string]artifact.Counters `json:"stores"`
}

// storeBenchFile is the BENCH_store.json document.
type storeBenchFile struct {
	Host   hostMeta          `json:"host"`
	Note   string            `json:"note"`
	Pairs  int               `json:"pairs"`
	Phases []StoreBenchPhase `json:"phases"`
	// WarmSpeedup is cold wall-clock over warm-restart wall-clock.
	WarmSpeedup float64 `json:"warm_speedup"`
}

// benchStorePass opens a store bundle over dir, verifies the whole corpus
// through a fresh service, and reports the pass accounting. Each call
// models one process lifetime: the bundle is closed before returning, so
// the next pass replays the startup integrity scan like a real restart.
func benchStorePass(phase, dir string, specs []*corpus.PairSpec, workers int) (StoreBenchPhase, error) {
	row := StoreBenchPhase{Phase: phase}
	st, err := service.OpenStores(service.StoreOptions{Dir: dir})
	if err != nil {
		return row, err
	}
	defer st.Close()
	svc := service.New(service.Config{Workers: workers, QueueDepth: len(specs), Stores: st})
	defer svc.Shutdown(context.Background())

	start := time.Now()
	jobs := make([]*service.Job, len(specs))
	for i, spec := range specs {
		if jobs[i], err = svc.Submit(spec.Pair); err != nil {
			return row, fmt.Errorf("pair %d: %w", spec.Idx, err)
		}
	}
	for i, job := range jobs {
		rep, err := job.Wait(context.Background())
		if err != nil {
			return row, fmt.Errorf("pair %d: %w", specs[i].Idx, err)
		}
		if rep.Timings.P1Cached {
			row.P1Cached++
		}
		if rep.Timings.P2Cached {
			row.P2Cached++
		}
		if !rep.Timings.P1Cached || !rep.Timings.P2Cached {
			row.Recomputed++
		}
	}
	row.MS = float64(time.Since(start).Nanoseconds()) / 1e6
	row.Stores = st.Counters()
	return row, nil
}

// benchStore measures what the persistent artifact store buys across a
// restart: a cold pass over the full corpus populates the disk tier, the
// bundle is closed (the "process" exits), and a warm pass over a fresh
// bundle re-verifies everything. The warm pass must recompute zero P1 and
// P2-preparation artifacts — every one is decoded from disk — and its
// wall-clock over the cold pass is the restart speedup operators should
// expect (see OPERATIONS.md).
func benchStore(path string, workers int) error {
	if workers <= 0 {
		workers = 4
	}
	dir, err := os.MkdirTemp("", "octobench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	specs := append(corpus.All(), corpus.StaticSet()...)
	out := storeBenchFile{
		Host: currentHost(),
		Note: "cold populates an empty store; warm_restart reopens the same directory " +
			"through a new store bundle and service, modeling a process restart. " +
			"recomputed counts pairs whose P1 or P2-prep artifact was rebuilt instead " +
			"of decoded from disk; a healthy warm restart reports 0.",
		Pairs: len(specs),
	}
	for _, phase := range []string{"cold", "warm_restart"} {
		row, err := benchStorePass(phase, dir, specs, workers)
		if err != nil {
			return fmt.Errorf("%s pass: %w", phase, err)
		}
		out.Phases = append(out.Phases, row)
		fmt.Printf("%-13s %10.1f ms  p1_cached=%2d  p2_cached=%2d  recomputed=%2d\n",
			phase, row.MS, row.P1Cached, row.P2Cached, row.Recomputed)
	}
	if warm := out.Phases[1].MS; warm > 0 {
		out.WarmSpeedup = out.Phases[0].MS / warm
		fmt.Printf("warm-restart speedup: %.2fx\n", out.WarmSpeedup)
	}
	if warm := out.Phases[1]; warm.Recomputed != 0 {
		return fmt.Errorf("warm restart recomputed %d pair artifacts; expected 0", warm.Recomputed)
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
