package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"octopocs/internal/corpus"
	"octopocs/internal/service"
)

// benchIdxs mirrors the service benchmark batch: Table II rows 7, 8 and 13
// share the openjpeg S package, so the warm run serves P1/P2 prep from the
// artifact cache and measures only reform and P4.
var benchIdxs = []int{7, 8, 13}

// BenchResult is one row of BENCH_telemetry.json.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MsPerOp     float64 `json:"ms_per_op"`
}

// benchFile is the BENCH_telemetry.json document.
type benchFile struct {
	Host       hostMeta      `json:"host"`
	Batch      []int         `json:"batch_corpus_idxs"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

func runBenchBatch(b *testing.B, svc *service.Service) {
	var jobs []*service.Job
	for _, idx := range benchIdxs {
		job, err := svc.Submit(corpus.ByIdx(idx).Pair)
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTelemetry runs the cold/warm service benchmarks via
// testing.Benchmark and writes machine-readable results to path, so CI and
// regression tooling can diff latency and allocation counts across commits
// without parsing go-test output.
func benchTelemetry(path string) error {
	record := func(name string, r testing.BenchmarkResult) BenchResult {
		return BenchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
		}
	}
	out := benchFile{Host: currentHost(), Batch: benchIdxs}

	// Cold: caching disabled, every iteration recomputes all artifacts.
	cold := testing.Benchmark(func(b *testing.B) {
		svc := service.New(service.Config{Workers: 1, QueueDepth: 16, CacheEntries: -1})
		defer svc.Shutdown(context.Background())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBenchBatch(b, svc)
		}
	})
	out.Benchmarks = append(out.Benchmarks, record("service_batch_cold", cold))

	// Warm: the batch runs against a pre-warmed artifact cache.
	warm := testing.Benchmark(func(b *testing.B) {
		svc := service.New(service.Config{Workers: 1, QueueDepth: 16})
		defer svc.Shutdown(context.Background())
		runBenchBatch(b, svc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBenchBatch(b, svc)
		}
	})
	out.Benchmarks = append(out.Benchmarks, record("service_batch_warm", warm))

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	for _, r := range out.Benchmarks {
		fmt.Printf("%-20s %8d iters  %10.3f ms/op  %8d allocs/op\n",
			r.Name, r.Iterations, r.MsPerOp, r.AllocsPerOp)
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
