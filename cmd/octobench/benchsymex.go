package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"octopocs/internal/absint"
	"octopocs/internal/cfg"
	"octopocs/internal/corpus"
	"octopocs/internal/solver"
	"octopocs/internal/symex"
)

// symexWorkerCounts is the scaling ladder measured per workload.
var symexWorkerCounts = []int{1, 2, 4, 8}

// SymexBenchRow is one (workload, workers, cache, absint) measurement of
// BENCH_symex.json.
type SymexBenchRow struct {
	Spec     string `json:"spec"`
	Workers  int    `json:"workers"`
	SatCache bool   `json:"sat_cache"`
	// Absint marks rows run with the abstract-interpretation branch oracle:
	// branches the value-range analysis proves one-sided are decided without
	// a solver call (sat_discharged_static counts them).
	Absint     bool    `json:"absint"`
	Iterations int     `json:"iterations"`
	NsPerOp    int64   `json:"ns_per_op"`
	MsPerOp    float64 `json:"ms_per_op"`
	// SpeedupVs1 is this row's throughput relative to the 1-worker row of
	// the same workload and cache mode: the parallel-scaling axis. It can
	// only exceed 1 meaningfully when go_max_procs > 1.
	SpeedupVs1 float64 `json:"speedup_vs_1_worker"`
	// SpeedupVsCold is this row's throughput relative to the workload's
	// cache-less 1-worker row: the end-to-end Phase-2 speedup a
	// configuration delivers over the sequential cold baseline.
	SpeedupVsCold float64 `json:"speedup_vs_cold_1_worker"`
	// Exploration counters from the last run of the benchmark loop.
	States    int   `json:"states"`
	SatChecks int64 `json:"sat_checks"`
	// SatDischargedStatic counts branch decisions the absint oracle answered
	// without a solver call; zero on absint=false rows.
	SatDischargedStatic int64  `json:"sat_discharged_static"`
	Steals              uint64 `json:"steals"`
	FrontierPeak        int    `json:"frontier_peak"`
	// Cache counters accumulated across the whole row (warm-up included);
	// zero-valued when SatCache is false.
	CacheHits   uint64 `json:"sat_cache_hits"`
	CacheMisses uint64 `json:"sat_cache_misses"`
}

// symexBenchFile is the BENCH_symex.json document.
type symexBenchFile struct {
	Host hostMeta `json:"host"`
	// Note spells out how to read the two speedup columns on this host.
	Note       string          `json:"note"`
	Specs      []symexSpecMeta `json:"specs"`
	Benchmarks []SymexBenchRow `json:"benchmarks"`
}

type symexSpecMeta struct {
	Name      string `json:"name"`
	InputSize int    `json:"input_size"`
	Leaves    int    `json:"leaves"`
}

// benchSymexRun performs one full directed exploration of spec and returns
// the result. The search space is exhaustive by construction (the target
// gate is unsatisfiable), so wall time measures how fast the frontier
// retires all 2^depth leaves. oracle, when non-nil, is the absint branch
// oracle; it is deliberately passed as Oracle only — never as a CFG pruner —
// because pruning the proven-dead gate arm would remove the workload's only
// path to the target and turn the run into ErrNoDistances.
func benchSymexRun(spec *corpus.SymexBenchSpec, workers int, cache *solver.Cache, oracle symex.StaticOracle) (*symex.Result, error) {
	g := cfg.Build(spec.Prog)
	ex := symex.New(spec.Prog, symex.Config{
		Target:        spec.Target,
		InputSize:     spec.InputSize,
		Distances:     g.DistancesTo(spec.Target),
		MaxBacktracks: 1 << 20,
		// Two-symbol congruence constraints cost ~64Ki evaluations per
		// filtering pass; the default budget trips on deep prefixes.
		SatBudget:   1 << 27,
		Workers:     workers,
		SolverCache: cache,
		Oracle:      oracle,
	})
	return ex.Run(func(symex.EpEntry, *symex.State) (symex.Decision, error) {
		return symex.Stop, nil
	})
}

// benchSymex runs the parallel-exploration benchmark matrix — every
// workload from corpus.SymexBench at 1/2/4/8 workers, with the memoized SAT
// cache off and on — and writes machine-readable results to path. Cache-on
// rows benchmark against a warmed cache (one untimed exploration first), so
// they measure the steady state a long-lived service converges to when jobs
// re-explore the same program.
func benchSymex(path string) error {
	out := symexBenchFile{Host: currentHost()}
	if out.Host.GoMaxProcs > 1 {
		out.Note = "speedup_vs_1_worker is the parallel-scaling axis; " +
			"speedup_vs_cold_1_worker folds in the memoized SAT cache."
	} else {
		out.Note = fmt.Sprintf("host exposes %d CPU: goroutines cannot run in parallel, so "+
			"speedup_vs_1_worker measures scheduling overhead only (expect ~1.0x); "+
			"speedup_vs_cold_1_worker shows the memoized-SAT-cache speedup, which is "+
			"CPU-count independent. Re-run on a multicore host for the scaling ladder.",
			out.Host.GoMaxProcs)
	}
	specs := corpus.SymexBench()
	for _, s := range specs {
		out.Specs = append(out.Specs, symexSpecMeta{Name: s.Name, InputSize: s.InputSize, Leaves: s.Leaves})
	}

	// The mode ladder per workload: the cache-less baseline, the memoized
	// SAT cache, and the absint branch oracle. The oracle mode must drop the
	// baseline's SAT-check count by at least 25% on these exhaustive
	// workloads (the unsatisfiable target gate is refuted once per leaf
	// without it); the run fails otherwise.
	modes := []struct{ cache, absint bool }{
		{false, false},
		{true, false},
		{false, true},
	}
	for _, spec := range specs {
		var coldBase float64
		baseSat := map[int]int64{} // workers -> cache-less, oracle-less sat checks
		var oracle symex.StaticOracle
		for _, mode := range modes {
			var base float64
			for _, workers := range symexWorkerCounts {
				spec, workers, mode := spec, workers, mode
				var cache *solver.Cache
				if mode.cache {
					cache = solver.NewCache(0)
					if _, err := benchSymexRun(spec, workers, cache, nil); err != nil {
						return fmt.Errorf("%s warm-up: %w", spec.Name, err)
					}
				}
				if mode.absint && oracle == nil {
					oracle = absint.Analyze(spec.Prog)
				}
				var runOracle symex.StaticOracle
				if mode.absint {
					runOracle = oracle
				}
				var last *symex.Result
				var runErr error
				r := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res, err := benchSymexRun(spec, workers, cache, runOracle)
						if err != nil {
							runErr = err
							b.Fatal(err)
						}
						last = res
					}
				})
				if runErr != nil {
					return fmt.Errorf("%s workers=%d cache=%v absint=%v: %w",
						spec.Name, workers, mode.cache, mode.absint, runErr)
				}
				row := SymexBenchRow{
					Spec:       spec.Name,
					Workers:    workers,
					SatCache:   mode.cache,
					Absint:     mode.absint,
					Iterations: r.N,
					NsPerOp:    r.NsPerOp(),
					MsPerOp:    float64(r.NsPerOp()) / 1e6,
				}
				if last != nil {
					row.States = last.Stats.States
					row.SatChecks = last.Stats.SatChecks
					row.SatDischargedStatic = last.Stats.SatDischargedStatic
					row.Steals = last.Stats.Steals
					row.FrontierPeak = last.Stats.FrontierPeak
				}
				if cache != nil {
					st := cache.Stats()
					row.CacheHits, row.CacheMisses = st.Hits, st.Misses
				}
				if !mode.cache && !mode.absint {
					baseSat[workers] = row.SatChecks
				}
				if mode.absint {
					if b, ok := baseSat[workers]; ok && row.SatChecks > b*3/4 {
						return fmt.Errorf("%s workers=%d: absint dropped sat checks only %d -> %d (< 25%%)",
							spec.Name, workers, b, row.SatChecks)
					}
				}
				if workers == 1 {
					base = float64(r.NsPerOp())
					if !mode.cache && !mode.absint {
						coldBase = base
					}
				}
				if base > 0 {
					row.SpeedupVs1 = base / float64(r.NsPerOp())
				}
				if coldBase > 0 {
					row.SpeedupVsCold = coldBase / float64(r.NsPerOp())
				}
				out.Benchmarks = append(out.Benchmarks, row)
				fmt.Printf("%-12s workers=%d cache=%-5v absint=%-5v %8.2f ms/op  scaling %.2fx  vs-cold %.2fx  sat_checks %d  discharged %d  steals %d\n",
					spec.Name, workers, mode.cache, mode.absint, row.MsPerOp, row.SpeedupVs1,
					row.SpeedupVsCold, row.SatChecks, row.SatDischargedStatic, row.Steals)
			}
		}
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
