package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"octopocs/internal/cfg"
	"octopocs/internal/corpus"
	"octopocs/internal/solver"
	"octopocs/internal/symex"
)

// symexWorkerCounts is the scaling ladder measured per workload.
var symexWorkerCounts = []int{1, 2, 4, 8}

// SymexBenchRow is one (workload, workers, cache) measurement of
// BENCH_symex.json.
type SymexBenchRow struct {
	Spec       string  `json:"spec"`
	Workers    int     `json:"workers"`
	SatCache   bool    `json:"sat_cache"`
	Iterations int     `json:"iterations"`
	NsPerOp    int64   `json:"ns_per_op"`
	MsPerOp    float64 `json:"ms_per_op"`
	// SpeedupVs1 is this row's throughput relative to the 1-worker row of
	// the same workload and cache mode: the parallel-scaling axis. It can
	// only exceed 1 meaningfully when go_max_procs > 1.
	SpeedupVs1 float64 `json:"speedup_vs_1_worker"`
	// SpeedupVsCold is this row's throughput relative to the workload's
	// cache-less 1-worker row: the end-to-end Phase-2 speedup a
	// configuration delivers over the sequential cold baseline.
	SpeedupVsCold float64 `json:"speedup_vs_cold_1_worker"`
	// Exploration counters from the last run of the benchmark loop.
	States       int    `json:"states"`
	SatChecks    int64  `json:"sat_checks"`
	Steals       uint64 `json:"steals"`
	FrontierPeak int    `json:"frontier_peak"`
	// Cache counters accumulated across the whole row (warm-up included);
	// zero-valued when SatCache is false.
	CacheHits   uint64 `json:"sat_cache_hits"`
	CacheMisses uint64 `json:"sat_cache_misses"`
}

// symexBenchFile is the BENCH_symex.json document.
type symexBenchFile struct {
	Host hostMeta `json:"host"`
	// Note spells out how to read the two speedup columns on this host.
	Note       string          `json:"note"`
	Specs      []symexSpecMeta `json:"specs"`
	Benchmarks []SymexBenchRow `json:"benchmarks"`
}

type symexSpecMeta struct {
	Name      string `json:"name"`
	InputSize int    `json:"input_size"`
	Leaves    int    `json:"leaves"`
}

// benchSymexRun performs one full directed exploration of spec and returns
// the result. The search space is exhaustive by construction (the target
// gate is unsatisfiable), so wall time measures how fast the frontier
// retires all 2^depth leaves.
func benchSymexRun(spec *corpus.SymexBenchSpec, workers int, cache *solver.Cache) (*symex.Result, error) {
	g := cfg.Build(spec.Prog)
	ex := symex.New(spec.Prog, symex.Config{
		Target:        spec.Target,
		InputSize:     spec.InputSize,
		Distances:     g.DistancesTo(spec.Target),
		MaxBacktracks: 1 << 20,
		// Two-symbol congruence constraints cost ~64Ki evaluations per
		// filtering pass; the default budget trips on deep prefixes.
		SatBudget:   1 << 27,
		Workers:     workers,
		SolverCache: cache,
	})
	return ex.Run(func(symex.EpEntry, *symex.State) (symex.Decision, error) {
		return symex.Stop, nil
	})
}

// benchSymex runs the parallel-exploration benchmark matrix — every
// workload from corpus.SymexBench at 1/2/4/8 workers, with the memoized SAT
// cache off and on — and writes machine-readable results to path. Cache-on
// rows benchmark against a warmed cache (one untimed exploration first), so
// they measure the steady state a long-lived service converges to when jobs
// re-explore the same program.
func benchSymex(path string) error {
	out := symexBenchFile{Host: currentHost()}
	if out.Host.GoMaxProcs > 1 {
		out.Note = "speedup_vs_1_worker is the parallel-scaling axis; " +
			"speedup_vs_cold_1_worker folds in the memoized SAT cache."
	} else {
		out.Note = fmt.Sprintf("host exposes %d CPU: goroutines cannot run in parallel, so "+
			"speedup_vs_1_worker measures scheduling overhead only (expect ~1.0x); "+
			"speedup_vs_cold_1_worker shows the memoized-SAT-cache speedup, which is "+
			"CPU-count independent. Re-run on a multicore host for the scaling ladder.",
			out.Host.GoMaxProcs)
	}
	specs := corpus.SymexBench()
	for _, s := range specs {
		out.Specs = append(out.Specs, symexSpecMeta{Name: s.Name, InputSize: s.InputSize, Leaves: s.Leaves})
	}

	for _, spec := range specs {
		var coldBase float64
		for _, withCache := range []bool{false, true} {
			var base float64
			for _, workers := range symexWorkerCounts {
				spec, workers, withCache := spec, workers, withCache
				var cache *solver.Cache
				if withCache {
					cache = solver.NewCache(0)
					if _, err := benchSymexRun(spec, workers, cache); err != nil {
						return fmt.Errorf("%s warm-up: %w", spec.Name, err)
					}
				}
				var last *symex.Result
				var runErr error
				r := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res, err := benchSymexRun(spec, workers, cache)
						if err != nil {
							runErr = err
							b.Fatal(err)
						}
						last = res
					}
				})
				if runErr != nil {
					return fmt.Errorf("%s workers=%d cache=%v: %w", spec.Name, workers, withCache, runErr)
				}
				row := SymexBenchRow{
					Spec:       spec.Name,
					Workers:    workers,
					SatCache:   withCache,
					Iterations: r.N,
					NsPerOp:    r.NsPerOp(),
					MsPerOp:    float64(r.NsPerOp()) / 1e6,
				}
				if last != nil {
					row.States = last.Stats.States
					row.SatChecks = last.Stats.SatChecks
					row.Steals = last.Stats.Steals
					row.FrontierPeak = last.Stats.FrontierPeak
				}
				if cache != nil {
					st := cache.Stats()
					row.CacheHits, row.CacheMisses = st.Hits, st.Misses
				}
				if workers == 1 {
					base = float64(r.NsPerOp())
					if !withCache {
						coldBase = base
					}
				}
				if base > 0 {
					row.SpeedupVs1 = base / float64(r.NsPerOp())
				}
				if coldBase > 0 {
					row.SpeedupVsCold = coldBase / float64(r.NsPerOp())
				}
				out.Benchmarks = append(out.Benchmarks, row)
				fmt.Printf("%-12s workers=%d cache=%-5v %8.2f ms/op  scaling %.2fx  vs-cold %.2fx  sat_checks %d  steals %d\n",
					spec.Name, workers, withCache, row.MsPerOp, row.SpeedupVs1, row.SpeedupVsCold, row.SatChecks, row.Steals)
			}
		}
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
