package main

import (
	"testing"

	"octopocs/internal/absint"
	"octopocs/internal/corpus"
	"octopocs/internal/solver"
)

// TestBenchSymexWorkloadsExhaustive checks the benchmark's core premise:
// the target gate is unsatisfiable, so a directed run never commits a
// success and must retire the full 2^depth search tree — that exhaustion is
// what the scaling rows measure.
func TestBenchSymexWorkloadsExhaustive(t *testing.T) {
	for _, spec := range corpus.SymexBench() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cache := solver.NewCache(0)
			res, err := benchSymexRun(spec, 4, cache, nil)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Reached() {
				t.Fatalf("benchmark target reached; the gate must be unsatisfiable")
			}
			if res.Stats.States < spec.Leaves {
				t.Errorf("explored %d states, want >= %d leaves (search not exhaustive)",
					res.Stats.States, spec.Leaves)
			}
			// Re-exploring the identical program must be answered from the
			// memoized verdict cache.
			before := cache.Stats()
			if _, err := benchSymexRun(spec, 4, cache, nil); err != nil {
				t.Fatalf("re-run: %v", err)
			}
			if after := cache.Stats(); after.Hits <= before.Hits {
				t.Errorf("cache hits did not grow on re-exploration: %+v -> %+v", before, after)
			}
			// The absint oracle proves the unsatisfiable target gate (a byte
			// masked to one bit can never exceed 1), discharging its per-leaf
			// refutation; the search stays exhaustive and unreached, with
			// strictly fewer solver calls.
			ores, err := benchSymexRun(spec, 4, nil, absint.Analyze(spec.Prog))
			if err != nil {
				t.Fatalf("oracle run: %v", err)
			}
			if ores.Reached() {
				t.Fatalf("oracle run reached the unsatisfiable target")
			}
			if ores.Stats.SatDischargedStatic == 0 {
				t.Errorf("oracle run discharged no branches")
			}
			if ores.Stats.SatChecks > res.Stats.SatChecks*3/4 {
				t.Errorf("oracle run sat checks %d, want <= 75%% of baseline %d",
					ores.Stats.SatChecks, res.Stats.SatChecks)
			}
		})
	}
}
