package main

import (
	"testing"

	"octopocs/internal/corpus"
	"octopocs/internal/solver"
)

// TestBenchSymexWorkloadsExhaustive checks the benchmark's core premise:
// the target gate is unsatisfiable, so a directed run never commits a
// success and must retire the full 2^depth search tree — that exhaustion is
// what the scaling rows measure.
func TestBenchSymexWorkloadsExhaustive(t *testing.T) {
	for _, spec := range corpus.SymexBench() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cache := solver.NewCache(0)
			res, err := benchSymexRun(spec, 4, cache)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Reached() {
				t.Fatalf("benchmark target reached; the gate must be unsatisfiable")
			}
			if res.Stats.States < spec.Leaves {
				t.Errorf("explored %d states, want >= %d leaves (search not exhaustive)",
					res.Stats.States, spec.Leaves)
			}
			// Re-exploring the identical program must be answered from the
			// memoized verdict cache.
			before := cache.Stats()
			if _, err := benchSymexRun(spec, 4, cache); err != nil {
				t.Fatalf("re-run: %v", err)
			}
			if after := cache.Stats(); after.Hits <= before.Hits {
				t.Errorf("cache hits did not grow on re-exploration: %+v -> %+v", before, after)
			}
		})
	}
}
