package main

import "runtime"

// hostMeta stamps every BENCH_*.json document with the execution
// environment, so results recorded on different machines are never diffed
// as if they came from the same one. All fields come from the runtime
// package — no syscalls, no platform branches.
type hostMeta struct {
	GoMaxProcs int    `json:"go_max_procs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
}

// currentHost snapshots the running process's environment.
func currentHost() hostMeta {
	return hostMeta{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
	}
}
