package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments should error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunSurvey(t *testing.T) {
	if err := run([]string{"-survey"}); err != nil {
		t.Fatalf("run(-survey) = %v", err)
	}
}

func TestRunTableIII(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full ablation")
	}
	if err := run([]string{"-table", "3"}); err != nil {
		t.Fatalf("run(-table 3) = %v", err)
	}
}
