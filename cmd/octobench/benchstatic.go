package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
)

// StaticBenchRow is one (pair, static mode) measurement of
// BENCH_static.json: the full-pipeline verification cost with the pre-P2
// static analysis off or on.
type StaticBenchRow struct {
	Pair    string `json:"pair"`
	Idx     int    `json:"idx"`
	Static  bool   `json:"static"`
	Verdict string `json:"verdict"`
	Type    string `json:"type"`
	Reason  string `json:"reason,omitempty"`
	PoC     bool   `json:"poc_generated"`
	// Symbolic-execution effort (P2+P3): the axis static pruning is
	// supposed to shrink.
	SymexSteps int64   `json:"symex_steps"`
	SymexStats int     `json:"symex_states"`
	SatChecks  int64   `json:"sat_checks"`
	WallMs     float64 `json:"wall_ms"`
	// Static-analysis outcome; zero-valued on static=false rows.
	FoldedBranches int     `json:"static_folded_branches,omitempty"`
	DeadBlocks     int     `json:"static_dead_blocks,omitempty"`
	ShortCircuit   bool    `json:"short_circuit,omitempty"`
	StaticMs       float64 `json:"static_ms,omitempty"`
}

// staticBenchTotals aggregates both modes for the headline comparison.
type staticBenchTotals struct {
	SymexStepsOff int64 `json:"symex_steps_off"`
	SymexStepsOn  int64 `json:"symex_steps_on"`
	SatChecksOff  int64 `json:"sat_checks_off"`
	SatChecksOn   int64 `json:"sat_checks_on"`
	ShortCircuits int   `json:"short_circuits"`
}

// staticBenchFile is the BENCH_static.json document.
type staticBenchFile struct {
	Host       hostMeta          `json:"host"`
	Note       string            `json:"note"`
	Pairs      int               `json:"pairs"`
	Totals     staticBenchTotals `json:"totals"`
	Benchmarks []StaticBenchRow  `json:"benchmarks"`
}

// benchStatic verifies every corpus pair — the 15 Table II rows plus the
// static-prune set — once with the static pre-analysis off and once with it
// on, and writes the per-pair effort comparison to path. Verdicts and poc'
// bytes are identical by construction (pruning only removes provably dead
// work); the rows record how much symbolic-execution effort the pre-phase
// saves, dominated by the pairs whose verdict short-circuits to
// statically-unreachable without any symbolic execution at all.
func benchStatic(path string) error {
	out := staticBenchFile{
		Host: currentHost(),
		Note: "each pair is verified twice by a fresh pipeline: static=false is the " +
			"symex-only baseline, static=true adds the pre-P2 verifier/fold/prune pass. " +
			"Verdicts and poc' bytes match between modes; symex_steps and sat_checks show " +
			"the saved work. wall_ms is a single uncached run (indicative, not a steady state).",
	}
	specs := append(corpus.All(), corpus.StaticSet()...)
	out.Pairs = len(specs)
	for _, spec := range specs {
		for _, static := range []bool{false, true} {
			pl := core.New(core.Config{StaticPrune: static})
			start := time.Now()
			rep, err := pl.Verify(spec.Pair)
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("pair %d static=%v: %w", spec.Idx, static, err)
			}
			row := StaticBenchRow{
				Pair:       spec.Pair.Name,
				Idx:        spec.Idx,
				Static:     static,
				Verdict:    rep.Verdict.String(),
				Type:       rep.Type.String(),
				Reason:     string(rep.Reason),
				PoC:        rep.PoCGenerated(),
				SymexSteps: rep.Stats.Steps,
				SymexStats: rep.Stats.States,
				SatChecks:  rep.Stats.SatChecks,
				WallMs:     float64(wall.Microseconds()) / 1e3,
			}
			if static {
				out.Totals.SymexStepsOn += rep.Stats.Steps
				out.Totals.SatChecksOn += rep.Stats.SatChecks
				if rep.Static != nil {
					row.FoldedBranches = rep.Static.FoldedBranches
					row.DeadBlocks = rep.Static.DeadBlocks
				}
				row.StaticMs = float64(rep.Timings.Static.Microseconds()) / 1e3
				if rep.Reason == core.ReasonStaticUnreachable {
					row.ShortCircuit = true
					out.Totals.ShortCircuits++
				}
			} else {
				out.Totals.SymexStepsOff += rep.Stats.Steps
				out.Totals.SatChecksOff += rep.Stats.SatChecks
			}
			out.Benchmarks = append(out.Benchmarks, row)
			fmt.Printf("[%2d] %-32s static=%-5v %-15s %8d steps %6d sat %8.2f ms%s\n",
				spec.Idx, spec.Pair.Name, static, row.Verdict,
				row.SymexSteps, row.SatChecks, row.WallMs,
				map[bool]string{true: "  (short-circuit)", false: ""}[row.ShortCircuit])
		}
	}
	fmt.Printf("totals: symex steps %d -> %d, sat checks %d -> %d, %d short-circuit(s)\n",
		out.Totals.SymexStepsOff, out.Totals.SymexStepsOn,
		out.Totals.SatChecksOff, out.Totals.SatChecksOn, out.Totals.ShortCircuits)

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
