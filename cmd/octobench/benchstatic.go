package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
)

// StaticBenchRow is one (pair, static mode, absint mode) measurement of
// BENCH_static.json: the full-pipeline verification cost with the pre-P2
// static analysis and the abstract-interpretation layer off or on.
type StaticBenchRow struct {
	Pair    string `json:"pair"`
	Idx     int    `json:"idx"`
	Static  bool   `json:"static"`
	Absint  bool   `json:"absint"`
	Verdict string `json:"verdict"`
	Type    string `json:"type"`
	Reason  string `json:"reason,omitempty"`
	PoC     bool   `json:"poc_generated"`
	// Symbolic-execution effort (P2+P3): the axis static pruning is
	// supposed to shrink.
	SymexSteps int64 `json:"symex_steps"`
	SymexStats int   `json:"symex_states"`
	SatChecks  int64 `json:"sat_checks"`
	// SatDischargedStatic counts branch decisions the absint oracle answered
	// without a solver call; zero on absint=false rows.
	SatDischargedStatic int64   `json:"sat_discharged_static"`
	WallMs              float64 `json:"wall_ms"`
	// Static-analysis outcome; zero-valued on static=false rows.
	FoldedBranches int     `json:"static_folded_branches,omitempty"`
	DeadBlocks     int     `json:"static_dead_blocks,omitempty"`
	ShortCircuit   bool    `json:"short_circuit,omitempty"`
	StaticMs       float64 `json:"static_ms,omitempty"`
	// Absint outcome; zero-valued on absint=false rows.
	AbsintProved int     `json:"absint_proved_branches,omitempty"`
	AbsintMs     float64 `json:"absint_ms,omitempty"`
}

// staticBenchTotals aggregates the modes for the headline comparison. The
// "on" totals are the static=true absint=false rows (the pre-existing
// comparison); the "absint" totals are the static=true absint=true rows.
type staticBenchTotals struct {
	SymexStepsOff    int64 `json:"symex_steps_off"`
	SymexStepsOn     int64 `json:"symex_steps_on"`
	SymexStepsAbsint int64 `json:"symex_steps_absint"`
	SatChecksOff     int64 `json:"sat_checks_off"`
	SatChecksOn      int64 `json:"sat_checks_on"`
	SatChecksAbsint  int64 `json:"sat_checks_absint"`
	SatDischarged    int64 `json:"sat_discharged_static"`
	ShortCircuits    int   `json:"short_circuits"`
}

// staticBenchFile is the BENCH_static.json document.
type staticBenchFile struct {
	Host       hostMeta          `json:"host"`
	Note       string            `json:"note"`
	Pairs      int               `json:"pairs"`
	Totals     staticBenchTotals `json:"totals"`
	Benchmarks []StaticBenchRow  `json:"benchmarks"`
}

// benchStatic verifies every corpus pair — the 15 Table II rows plus the
// static-prune set — under every combination of the static pre-analysis and
// the abstract-interpretation layer, and writes the per-pair effort
// comparison to path. Verdicts and poc' bytes must be identical across all
// modes (both layers only remove provably dead or provably decided work);
// the run FAILS on any divergence. The rows record how much
// symbolic-execution effort each layer saves, dominated by the pairs whose
// verdict short-circuits to statically-unreachable without any symbolic
// execution at all.
func benchStatic(path string) error {
	out := staticBenchFile{
		Host: currentHost(),
		Note: "each pair is verified four times by fresh pipelines: static=false absint=false " +
			"is the symex-only baseline, static=true adds the pre-P2 verifier/fold/prune pass, " +
			"and absint=true adds interval/congruence value ranges (branch oracle for symex; " +
			"stronger pruning when combined with static). Verdicts and poc' bytes are asserted " +
			"byte-identical across all modes; symex_steps, sat_checks and sat_discharged_static " +
			"show the saved work. wall_ms is a single uncached run (indicative, not a steady state).",
	}
	specs := append(corpus.All(), corpus.StaticSet()...)
	out.Pairs = len(specs)
	modes := []struct{ static, absint bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	}
	for _, spec := range specs {
		var baseVerdict, baseType string
		var basePoC []byte
		for _, mode := range modes {
			pl := core.New(core.Config{StaticPrune: mode.static, Absint: mode.absint})
			start := time.Now()
			rep, err := pl.Verify(spec.Pair)
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("pair %d static=%v absint=%v: %w", spec.Idx, mode.static, mode.absint, err)
			}
			if !mode.static && !mode.absint {
				baseVerdict, baseType, basePoC = rep.Verdict.String(), rep.Type.String(), rep.PoCPrime
			} else if rep.Verdict.String() != baseVerdict || rep.Type.String() != baseType ||
				!bytes.Equal(rep.PoCPrime, basePoC) {
				return fmt.Errorf("pair %d static=%v absint=%v: verdict/poc' diverged from baseline (%s/%s vs %s/%s)",
					spec.Idx, mode.static, mode.absint, rep.Verdict, rep.Type, baseVerdict, baseType)
			}
			row := StaticBenchRow{
				Pair:                spec.Pair.Name,
				Idx:                 spec.Idx,
				Static:              mode.static,
				Absint:              mode.absint,
				Verdict:             rep.Verdict.String(),
				Type:                rep.Type.String(),
				Reason:              string(rep.Reason),
				PoC:                 rep.PoCGenerated(),
				SymexSteps:          rep.Stats.Steps,
				SymexStats:          rep.Stats.States,
				SatChecks:           rep.Stats.SatChecks,
				SatDischargedStatic: rep.Stats.SatDischargedStatic,
				WallMs:              float64(wall.Microseconds()) / 1e3,
			}
			if mode.static {
				if rep.Static != nil {
					row.FoldedBranches = rep.Static.FoldedBranches
					row.DeadBlocks = rep.Static.DeadBlocks
				}
				row.StaticMs = float64(rep.Timings.Static.Microseconds()) / 1e3
				if rep.Reason == core.ReasonStaticUnreachable {
					row.ShortCircuit = true
					out.Totals.ShortCircuits++
				}
			}
			if mode.absint {
				if rep.Absint != nil {
					row.AbsintProved = rep.Absint.ProvedBranches
				}
				row.AbsintMs = float64(rep.Timings.Absint.Microseconds()) / 1e3
				out.Totals.SatDischarged += rep.Stats.SatDischargedStatic
			}
			switch {
			case !mode.static && !mode.absint:
				out.Totals.SymexStepsOff += rep.Stats.Steps
				out.Totals.SatChecksOff += rep.Stats.SatChecks
			case mode.static && !mode.absint:
				out.Totals.SymexStepsOn += rep.Stats.Steps
				out.Totals.SatChecksOn += rep.Stats.SatChecks
			case mode.static && mode.absint:
				out.Totals.SymexStepsAbsint += rep.Stats.Steps
				out.Totals.SatChecksAbsint += rep.Stats.SatChecks
			}
			out.Benchmarks = append(out.Benchmarks, row)
			fmt.Printf("[%2d] %-32s static=%-5v absint=%-5v %-15s %8d steps %6d sat %4d disch %8.2f ms%s\n",
				spec.Idx, spec.Pair.Name, mode.static, mode.absint, row.Verdict,
				row.SymexSteps, row.SatChecks, row.SatDischargedStatic, row.WallMs,
				map[bool]string{true: "  (short-circuit)", false: ""}[row.ShortCircuit])
		}
	}
	fmt.Printf("totals: symex steps %d -> %d -> %d, sat checks %d -> %d -> %d, %d discharged, %d short-circuit(s)\n",
		out.Totals.SymexStepsOff, out.Totals.SymexStepsOn, out.Totals.SymexStepsAbsint,
		out.Totals.SatChecksOff, out.Totals.SatChecksOn, out.Totals.SatChecksAbsint,
		out.Totals.SatDischarged, out.Totals.ShortCircuits)

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
