// Command octolint runs the repository's lint suite (internal/lint): the
// phasedoc package-documentation contract, the ctxloop goroutine-
// cancellation check, the panicguard recover-boundary check, and the
// journaldoc event-schema check.
//
// It speaks the `go vet -vettool` protocol, so CI runs it as
//
//	go build -o octolint ./cmd/octolint
//	go vet -vettool=$PWD/octolint ./...
//
// where go vet invokes it once per package with a JSON config file. It also
// accepts plain directories for direct use:
//
//	octolint internal/symex internal/service
//
// Diagnostics are printed one per line as file:line:col: analyzer: message
// and the exit status is 2 when any are found.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"octopocs/internal/lint"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "octolint:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("octolint", flag.ContinueOnError)
	printVersion := fs.String("V", "", "print version and exit (vet protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON and exit (vet protocol)")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	// The two protocol handshakes: `go vet` first asks the tool to identify
	// itself — a devel version line must end in a buildID, which go uses to
	// key its result cache, so hash the binary itself — then for its flags.
	if *printVersion != "" {
		id, err := selfID()
		if err != nil {
			return 0, err
		}
		fmt.Printf("octolint version devel buildID=%s\n", id)
		return 0, nil
	}
	if *printFlags {
		fmt.Println("[]")
		return 0, nil
	}
	if fs.NArg() == 0 {
		return 0, fmt.Errorf("usage: octolint <vet.cfg | directory...>")
	}
	if strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runVetCfg(fs.Arg(0))
	}
	return runDirs(fs.Args())
}

// vetConfig is the subset of the `go vet` unit-check config octolint needs;
// the full file carries type-checking inputs the suite doesn't use.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// runVetCfg handles one `go vet` unit: parse the package's non-test files,
// run the suite, report findings. The facts file (VetxOutput) must exist
// when the tool returns even though octolint exports no facts — vet treats
// a missing file as a tool failure.
func runVetCfg(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("octolint\n"), 0o666); err != nil {
			return 0, err
		}
	}
	// Skip fact-only units and test variants ("pkg [pkg.test]", "pkg.test",
	// external _test packages): the contracts are about shipped code.
	if cfg.VetxOnly || strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0, nil
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return 0, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0, nil
	}
	diags, err := lint.RunFiles(fset, files, cfg.ImportPath, lint.All)
	if err != nil {
		return 0, err
	}
	return report(diags), nil
}

// runDirs is the direct mode: lint each directory as one package, deriving
// the import path from the module layout (octopocs/<relative dir>).
func runDirs(dirs []string) (int, error) {
	exit := 0
	for _, dir := range dirs {
		importPath := "octopocs/" + filepath.ToSlash(filepath.Clean(dir))
		diags, err := lint.RunDir(dir, importPath, lint.All)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", dir, err)
		}
		if c := report(diags); c != 0 {
			exit = c
		}
	}
	return exit, nil
}

// selfID content-hashes the running executable for the -V=full reply.
func selfID() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

func report(diags []lint.Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
