package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"octopocs/internal/journal"
)

// runExplain implements the `octopocs explain` mode: render a verdict
// provenance journal — the causal chain of events behind a verification
// verdict — as an indented human-readable narrative. The argument is
// either a JSONL journal file (written by `octopocs -pair N -journal F` or
// fetched from a server) or a job id resolved against a running octoserved
// instance.
//
//	octopocs explain journal.jsonl           render a saved journal
//	octopocs explain -addr http://host:8344 job-3   fetch and render a job
//	octopocs explain -all journal.jsonl      include nondeterministic events
//	octopocs explain -json journal.jsonl     print the raw events as JSON
func runExplain(args []string) error {
	fs := flag.NewFlagSet("octopocs explain", flag.ContinueOnError)
	var (
		addr   = fs.String("addr", "http://localhost:8344", "octoserved base URL for job-id arguments")
		asJSON = fs.Bool("json", false, "print the raw events as indented JSON instead of the narrative")
		all    = fs.Bool("all", false, "include nondeterministic events (worker-attributed frontier traffic, schedule stats)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	target := fs.Arg(0)
	if target == "" {
		fs.Usage()
		return fmt.Errorf("pass a journal JSONL file or a job id")
	}
	events, err := loadJournal(target, *addr)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(events)
	}
	fmt.Print(journal.Render(events, journal.RenderOptions{All: *all}))
	return nil
}

// loadJournal resolves the explain target: an existing file is decoded as
// JSONL; anything else is treated as a job id and fetched from the server's
// events endpoint.
func loadJournal(target, addr string) ([]journal.Event, error) {
	if data, err := os.ReadFile(target); err == nil {
		events, derr := journal.DecodeJSONL(data)
		if derr != nil {
			return nil, fmt.Errorf("decode %s: %w", target, derr)
		}
		return events, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return fetchJournal(target, addr)
}

// fetchClient bounds the whole fetch — dial, response, body — so an
// unreachable or wedged server fails the CLI promptly instead of hanging
// it; retained journals are small, so the generous cap only bites on
// genuinely stuck connections.
var fetchClient = &http.Client{Timeout: 30 * time.Second}

// fetchJournal retrieves a job's journal from octoserved's events endpoint
// (JSON page mode, no cursor: the full retained journal).
func fetchJournal(jobID, addr string) ([]journal.Event, error) {
	u := strings.TrimSuffix(addr, "/") + "/v1/jobs/" + url.PathEscape(jobID) + "/events"
	resp, err := fetchClient.Get(u)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w (pass a JSONL file, or -addr of a running octoserved)", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			if resp.StatusCode == http.StatusNotFound && strings.Contains(apiErr.Error, "journal") {
				return nil, fmt.Errorf("fetch %s: %s\nthe server no longer holds this job's journal — it was evicted from the journal store or journaling is off; re-run the job, or give octoserved more room with -store-dir/-store-budget and -journal", u, apiErr.Error)
			}
			return nil, fmt.Errorf("fetch %s: %s", u, apiErr.Error)
		}
		return nil, fmt.Errorf("fetch %s: HTTP %d", u, resp.StatusCode)
	}
	var page struct {
		Events []journal.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("decode events response: %w", err)
	}
	return page.Events, nil
}
