package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunArgumentValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments should error")
	}
	if err := run([]string{"-pair", "99"}); err == nil || !strings.Contains(err.Error(), "no corpus pair") {
		t.Errorf("bad index error = %v", err)
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunSinglePair(t *testing.T) {
	if err := run([]string{"-pair", "10", "-v"}); err != nil {
		t.Fatalf("run(-pair 10) = %v", err)
	}
}

func TestRunWritesPoC(t *testing.T) {
	out := filepath.Join(t.TempDir(), "poc.bin")
	if err := run([]string{"-pair", "7", "-poc", out}); err != nil {
		t.Fatalf("run = %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("poc' file: %v", err)
	}
	if len(data) == 0 {
		t.Error("poc' file is empty")
	}
	// The reformed opj_dump PoC starts with the codestream SOC marker.
	if data[0] != 0xFF || data[1] != 0x4F {
		t.Errorf("poc' header = % x, want FF 4F", data[:2])
	}
}

func TestRunExplain(t *testing.T) {
	if err := run([]string{"-pair", "7", "-explain"}); err != nil {
		t.Fatalf("run(-explain) = %v", err)
	}
}

func TestRunPrioritize(t *testing.T) {
	if err := run([]string{"-prioritize"}); err != nil {
		t.Fatalf("run(-prioritize) = %v", err)
	}
}
