// Command octopocs verifies propagated vulnerabilities over the built-in
// Table II corpus.
//
// Usage:
//
//	octopocs -all                 verify every corpus pair
//	octopocs -all -workers 4      same, concurrently via the service pool
//	octopocs -pair 8              verify one Table II row
//	octopocs -pair 9 -poc out.bin write the reformed PoC to a file
//	octopocs -pair 8 -symex-workers 4  explore P2 with 4 frontier goroutines
//	octopocs -pair 3 -context-free  ablation: disable context-aware taint
//	octopocs -pair 8 -static-cfg    ablation: static CFG only
//	octopocs -pair 16 -static       static pre-analysis: verify, fold, prune
//	octopocs scan -source 7       discover row 7's clones, verify candidates
//	octopocs scan -all-sources    batch-scan every corpus CVE (see scan.go)
//	octopocs -all -store-dir ./store   persist phase artifacts; warm reruns reuse them
//	octopocs -pair 8 -journal j.jsonl  save the verdict provenance journal
//	octopocs explain j.jsonl      render a journal as a narrative (explain.go)
//	octopocs explain -addr http://host:8344 job-3  fetch and render a job
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/faultinject"
	"octopocs/internal/journal"
	"octopocs/internal/service"
	"octopocs/internal/telemetry"
	"octopocs/internal/trace"
	"octopocs/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "octopocs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "scan" {
		return runScan(args[1:])
	}
	if len(args) > 0 && args[0] == "explain" {
		return runExplain(args[1:])
	}
	fs := flag.NewFlagSet("octopocs", flag.ContinueOnError)
	var (
		all         = fs.Bool("all", false, "verify every corpus pair")
		pairIdx     = fs.Int("pair", 0, "verify one corpus row (1-15 Table II, 16-17 static set, 18-21 hybrid set)")
		pocOut      = fs.String("poc", "", "write the reformed PoC to this file")
		contextFree = fs.Bool("context-free", false, "disable context-aware taint analysis")
		staticCFG   = fs.Bool("static-cfg", false, "disable dynamic CFG discovery")
		static      = fs.Bool("static", false, "enable the static pre-analysis (MIR verifier, constant folding, dead-block pruning, statically-unreachable short-circuit)")
		absintOn    = fs.Bool("absint", false, "enable abstract-interpretation value ranges: branch oracle for symbolic execution, plus stronger pruning with -static")
		hybridOn    = fs.Bool("hybrid", false, "enable the directed-fuzzing fallback: rescue theta- and budget-exhausted symex outcomes with a replay-confirmed campaign crash (verdict triggered-by-fuzzing)")
		verbose     = fs.Bool("v", false, "print crash primitives and crash details")
		workers     = fs.Int("workers", 0, "with -all: verify pairs concurrently with this many service workers (0 = sequential)")
		symexWork   = fs.Int("symex-workers", 0, "frontier explorer goroutines per symbolic execution (0 = GOMAXPROCS, negative = legacy sequential engine)")
		prioritize  = fs.Bool("prioritize", false, "verify all pairs and print a patch-priority list (§ VII practical usage)")
		explain     = fs.Bool("explain", false, "with -pair: show the S-on-poc and T-on-poc' traces and the preserved ℓ path")
		withTrace   = fs.Bool("trace", false, "dump each job's phase/sub-step span tree as JSON after its report")
		journalOut  = fs.String("journal", "", "write the verdict provenance journal(s) as JSONL to this file; render with `octopocs explain`")
		journalVerb = fs.Bool("journal-verbose", false, "with -journal: also record per-state frontier and per-call solver events")
		storeDir    = fs.String("store-dir", "", "persistent artifact store directory; repeat runs reuse phase artifacts (implies -workers 1 when unset)")
		storeBudget = fs.Int64("store-budget", 0, "persistent store disk budget in MiB across all classes (0 = default)")
		logLevel    = fs.String("log-level", "warn", "log level: debug, info, warn, error")
		logFormat   = fs.String("log-format", "text", "log format: text or json")
		faultSched  = fs.String("fault-schedule", "", "deterministic fault-injection schedule, e.g. 'seed=42;solver.sat:nth=2|5' (chaos testing; off by default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	faults, err := parseFaults(*faultSched)
	if err != nil {
		return err
	}
	if !*all && *pairIdx == 0 && !*prioritize {
		fs.Usage()
		return fmt.Errorf("pass -all, -pair N, or -prioritize")
	}
	if *prioritize {
		return runPrioritize(core.Config{ContextFree: *contextFree, StaticCFGOnly: *staticCFG,
			StaticPrune: *static, Absint: *absintOn, HybridFuzz: *hybridOn,
			SymexWorkers: symexBudget(*symexWork), Faults: faults})
	}

	cfg := core.Config{ContextFree: *contextFree, StaticCFGOnly: *staticCFG,
		StaticPrune: *static, Absint: *absintOn, HybridFuzz: *hybridOn,
		SymexWorkers: symexBudget(*symexWork), Faults: faults}

	var specs []*corpus.PairSpec
	if *all {
		specs = corpus.All()
	} else {
		spec := corpus.ByIdx(*pairIdx)
		if spec == nil {
			return fmt.Errorf("no corpus pair with index %d (valid: 1-21)", *pairIdx)
		}
		specs = []*corpus.PairSpec{spec}
	}

	var jopts *journal.Options
	if *journalOut != "" {
		jopts = &journal.Options{}
		if *journalVerb {
			jopts.Verbosity = journal.VerbVerbose
		}
	}
	var stores *service.Stores
	if *storeDir != "" {
		stores, err = service.OpenStores(service.StoreOptions{
			Dir:        *storeDir,
			DiskBudget: *storeBudget << 20,
			Faults:     faults,
			Logger:     logger,
		})
		if err != nil {
			return err
		}
		defer stores.Close()
		if *workers == 0 {
			// The store hangs off the service layer; route even sequential
			// runs through a one-worker pool so artifacts persist.
			*workers = 1
		}
	}
	reports, traces, journals, err := verifyAll(specs, cfg, *workers, *symexWork, stores, logger, *withTrace, jopts)
	if err != nil {
		return err
	}

	for i, spec := range specs {
		rep := reports[i]
		printReport(spec, rep, *verbose)
		if *withTrace && traces[i] != nil {
			if err := dumpTrace(os.Stdout, traces[i]); err != nil {
				return err
			}
		}
		if *explain {
			explainPair(spec, rep)
		}
		if *pocOut != "" && rep.PoCGenerated() {
			if err := os.WriteFile(*pocOut, rep.PoCPrime, 0o644); err != nil {
				return fmt.Errorf("write poc': %w", err)
			}
			fmt.Printf("  reformed PoC written to %s (%d bytes)\n", *pocOut, len(rep.PoCPrime))
		}
	}
	if *journalOut != "" {
		if err := writeJournals(*journalOut, journals); err != nil {
			return err
		}
	}
	return nil
}

// writeJournals concatenates the per-pair journals into one JSONL file; the
// job.start/verdict events delimit each pair's chain when rendered.
func writeJournals(path string, journals [][]journal.Event) error {
	var buf bytes.Buffer
	total := 0
	for _, evs := range journals {
		if err := journal.EncodeJSONL(&buf, evs); err != nil {
			return fmt.Errorf("encode journal: %w", err)
		}
		total += len(evs)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("write journal: %w", err)
	}
	fmt.Printf("journal written to %s (%d events); render with `octopocs explain %s`\n",
		path, total, path)
	return nil
}

// symexBudget maps the -symex-workers flag onto core.Config.SymexWorkers for
// a direct in-process pipeline: positive values pass through, 0 auto-sizes to
// GOMAXPROCS, and negative values select the legacy sequential engine.
// parseFaults builds the fault injector from the -fault-schedule flag; an
// empty schedule (the default) disables injection entirely.
func parseFaults(schedule string) (*faultinject.Injector, error) {
	sch, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		return nil, fmt.Errorf("-fault-schedule: %w", err)
	}
	return faultinject.New(sch), nil
}

func symexBudget(flagVal int) int {
	switch {
	case flagVal > 0:
		return flagVal
	case flagVal < 0:
		return 0
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// verifyAll collects one report per spec, in spec order, plus the span
// trace of each run when withTrace is set and the provenance journal of
// each run when jopts is non-nil (nil entries otherwise). With workers > 0
// the pairs run concurrently through a service worker pool (sharing phase
// artifacts via its cache); otherwise a single pipeline runs them in turn.
func verifyAll(specs []*corpus.PairSpec, cfg core.Config, workers, symexWorkers int, stores *service.Stores, logger *slog.Logger, withTrace bool, jopts *journal.Options) ([]*core.Report, []*telemetry.Trace, [][]journal.Event, error) {
	reports := make([]*core.Report, len(specs))
	traces := make([]*telemetry.Trace, len(specs))
	journals := make([][]journal.Event, len(specs))
	if workers > 0 {
		traceCap := -1
		if withTrace {
			traceCap = len(specs)
		}
		// The raw flag goes to the service, which auto-budgets 0 to
		// GOMAXPROCS/Workers so pairs-in-parallel and frontier goroutines
		// don't multiply against each other.
		svcCfg := service.Config{
			Workers:       workers,
			QueueDepth:    len(specs),
			Pipeline:      cfg,
			Logger:        logger,
			TraceCapacity: traceCap,
			SymexWorkers:  symexWorkers,
			Stores:        stores,
		}
		if jopts != nil {
			svcCfg.JournalCapacity = jopts.Capacity
			svcCfg.JournalVerbose = jopts.Verbosity >= journal.VerbVerbose
		}
		svc := service.New(svcCfg)
		defer svc.Shutdown(context.Background())
		jobs := make([]*service.Job, len(specs))
		for i, spec := range specs {
			job, err := svc.Submit(spec.Pair)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("pair %d: %w", spec.Idx, err)
			}
			jobs[i] = job
		}
		for i, job := range jobs {
			rep, err := job.Wait(context.Background())
			if err != nil {
				return nil, nil, nil, fmt.Errorf("pair %d: %w", specs[i].Idx, err)
			}
			reports[i] = rep
			traces[i], _ = svc.Trace(job.ID())
			if jopts != nil {
				journals[i], _ = svc.JournalEvents(job.ID(), 0)
			}
		}
		return reports, traces, journals, nil
	}
	pipeline := core.New(cfg)
	for i, spec := range specs {
		ctx := telemetry.WithLogger(context.Background(), logger)
		if withTrace {
			traces[i] = telemetry.NewTrace(fmt.Sprintf("pair-%d", spec.Idx), "verify")
			ctx = telemetry.WithTrace(ctx, traces[i])
		}
		var rec *journal.Recorder
		if jopts != nil {
			rec = journal.New(fmt.Sprintf("pair-%d", spec.Idx), *jopts)
			ctx = journal.With(ctx, rec)
		}
		rep, err := pipeline.VerifyContext(ctx, spec.Pair)
		traces[i].Finish()
		rec.Close()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("pair %d: %w", spec.Idx, err)
		}
		reports[i] = rep
		journals[i] = rec.Events()
	}
	return reports, traces, journals, nil
}

// dumpTrace writes the span tree as indented JSON, matching the shape of
// the service's GET /v1/jobs/{id}/trace response.
func dumpTrace(w io.Writer, tr *telemetry.Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("  ", "  ")
	fmt.Fprint(w, "  ")
	return enc.Encode(tr.Snapshot())
}

// explainPair renders the Figure-1 picture for one verified pair: the two
// traces reach the shared code through different guiding inputs and then
// follow the same ℓ path to the crash.
func explainPair(spec *corpus.PairSpec, rep *core.Report) {
	fmt.Printf("\n--- S (%s) on the original poc ---\n", spec.SName)
	sTrace := trace.Record(spec.Pair.S, vm.Config{Input: spec.Pair.PoC, MaxSteps: spec.Pair.MaxSteps})
	fmt.Print(sTrace)
	if !rep.PoCGenerated() {
		fmt.Println("\nno poc' was generated; nothing to compare")
		return
	}
	fmt.Printf("\n--- T (%s) on the reformed poc' ---\n", spec.TName)
	tTrace := trace.Record(spec.Pair.T, vm.Config{Input: rep.PoCPrime, MaxSteps: spec.Pair.MaxSteps})
	fmt.Print(tTrace)
	same, diff := trace.SamePath(sTrace, tTrace, spec.Pair.Lib)
	if same {
		fmt.Printf("\nℓ path preserved (%v): the reform changed only the way in\n",
			sTrace.LibPath(spec.Pair.Lib))
	} else {
		fmt.Printf("\nℓ paths differ: %s\n", diff)
	}
}

// runPrioritize implements the paper's practical-usage workflow (§ VII):
// verify every detected clone and order the patching work by urgency —
// triggered clones first, unverifiable ones next (they need manual review),
// proven-dead clones last.
func runPrioritize(cfg core.Config) error {
	pipeline := core.New(cfg)
	type entry struct {
		spec *corpus.PairSpec
		rep  *core.Report
	}
	var urgent, review, deferred []entry
	for _, spec := range corpus.All() {
		rep, err := pipeline.Verify(spec.Pair)
		if err != nil {
			return fmt.Errorf("pair %d: %w", spec.Idx, err)
		}
		e := entry{spec, rep}
		switch rep.Verdict {
		case core.VerdictTriggered:
			urgent = append(urgent, e)
		case core.VerdictFailure:
			review = append(review, e)
		default:
			deferred = append(deferred, e)
		}
	}
	print := func(title string, entries []entry, note string) {
		fmt.Printf("%s (%d) — %s\n", title, len(entries), note)
		for _, e := range entries {
			fmt.Printf("  [%2d] %-42s %s (%s)\n", e.spec.Idx, e.spec.Label(), e.spec.CVE, e.rep.Type)
		}
		fmt.Println()
	}
	print("PATCH NOW", urgent, "the reformed PoC triggers the propagated vulnerability")
	print("MANUAL REVIEW", review, "no sound verdict; analyze by hand")
	print("DEFERRABLE", deferred, "proven not triggerable; patch during routine maintenance")
	return nil
}

func printReport(spec *corpus.PairSpec, rep *core.Report, verbose bool) {
	fmt.Printf("[%2d] %-40s %-16s %-9s", spec.Idx, spec.Label(), rep.Verdict, rep.Type)
	if rep.Reason != "" {
		fmt.Printf("  (%s)", rep.Reason)
	}
	fmt.Println()
	if !verbose {
		return
	}
	fmt.Printf("     vulnerability: %s (%s), ep: %s\n", spec.CVE, spec.CWE, rep.Ep)
	if rep.Static != nil {
		fmt.Printf("     static: %s\n", rep.Static)
	}
	if rep.SCrash != nil {
		fmt.Printf("     S crash: %s\n", rep.SCrash)
	}
	for _, b := range rep.Bunches {
		fmt.Printf("     bunch %d @%d: % x (ep args %v)\n", b.Seq, b.Start, b.Bytes, b.Args)
	}
	if rep.PoCGenerated() {
		fmt.Printf("     poc' (%d bytes): % x\n", len(rep.PoCPrime), rep.PoCPrime)
	}
	if rep.TCrash != nil {
		fmt.Printf("     T crash: %s\n", rep.TCrash)
	}
}
