package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"octopocs/internal/corpus"
	"octopocs/internal/service"
	"octopocs/internal/telemetry"
)

// runScan implements the `octopocs scan` mode: clone-detection retrieval
// over the built-in corpus followed by batch verification of every ranked
// candidate, using the same service queue as -all -workers.
//
//	octopocs scan -source 7              fan row 7's CVE across all 17 targets
//	octopocs scan -source 7 -find-ep     anchor candidates on the derived ep
//	octopocs scan -source 7 -retrieve-only  rank only, skip verification
//	octopocs scan -all-sources           scan every corpus CVE in turn
func runScan(args []string) error {
	fs := flag.NewFlagSet("octopocs scan", flag.ContinueOnError)
	var (
		source       = fs.Int("source", 0, "corpus row (1-17) whose CVE to scan for")
		allSources   = fs.Bool("all-sources", false, "scan every corpus CVE")
		retrieveOnly = fs.Bool("retrieve-only", false, "rank candidates without verifying them")
		findEp       = fs.Bool("find-ep", false, "derive the entry point from the S crash and anchor candidates on it")
		minScore     = fs.Float64("min-score", 0, "retrieval match threshold (0 = default)")
		topK         = fs.Int("top-k", 0, "bound ranked candidates per scan (0 = all)")
		workers      = fs.Int("workers", 2, "verification worker-pool size")
		jsonOut      = fs.String("json", "", "write the scan statuses as JSON to this file ('-' for stdout)")
		logLevel     = fs.String("log-level", "warn", "log level: debug, info, warn, error")
		logFormat    = fs.String("log-format", "text", "log format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	var sources []int
	switch {
	case *allSources:
		for _, spec := range append(corpus.All(), corpus.StaticSet()...) {
			sources = append(sources, spec.Idx)
		}
	case *source != 0:
		if corpus.ByIdx(*source) == nil {
			return fmt.Errorf("no corpus pair with index %d (valid: 1-17)", *source)
		}
		sources = []int{*source}
	default:
		fs.Usage()
		return fmt.Errorf("pass -source N or -all-sources")
	}

	svc := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: 17 * len(sources),
		Logger:     logger,
	})
	defer svc.Shutdown(context.Background())

	var statuses []service.ScanStatus
	for _, idx := range sources {
		sc, err := svc.StartScan(&service.ScanRequest{
			CorpusIdx:     idx,
			CorpusTargets: true,
			FindEp:        *findEp,
			RetrieveOnly:  *retrieveOnly,
			MinScore:      *minScore,
			TopK:          *topK,
		})
		if err != nil {
			return fmt.Errorf("scan source %d: %w", idx, err)
		}
		if err := sc.Wait(context.Background()); err != nil {
			return err
		}
		st := sc.Snapshot()
		statuses = append(statuses, st)
		printScan(idx, st, *retrieveOnly)
	}
	if *jsonOut != "" {
		return writeScanJSON(*jsonOut, statuses)
	}
	return nil
}

func printScan(idx int, st service.ScanStatus, retrieveOnly bool) {
	truth := corpus.CloneTruthByIdx(idx)
	fmt.Printf("scan %s: source [%2d] %s (family %s), %d targets indexed, %d candidates",
		st.ID, idx, st.Name, truth.Family, st.Index.Targets, len(st.Candidates))
	if st.Ep != "" {
		fmt.Printf(", ep %s", st.Ep)
	}
	if !retrieveOnly {
		fmt.Printf(", %d confirmed", st.Confirmed)
	}
	fmt.Println()
	for rank, c := range st.Candidates {
		fmt.Printf("  #%d %-12s score %.3f  ℓ=%v", rank+1, c.Target, c.Score, c.Lib)
		switch {
		case c.Error != "":
			fmt.Printf("  error: %s", c.Error)
		case c.Verdict != "":
			fmt.Printf("  %s (%s)", c.Verdict, c.Type)
		}
		fmt.Println()
	}
}

func writeScanJSON(path string, statuses []service.ScanStatus) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(statuses)
}
