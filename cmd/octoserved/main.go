// Command octoserved exposes the OCTOPOCS verification pipeline as an HTTP
// service: submit (S, T, poc) pairs, poll job status, fetch reports and
// reformed PoCs, and watch queue/cache statistics.
//
// Usage:
//
//	octoserved [-addr :8344] [-workers N] [-queue N] [-cache N] [-timeout D]
//
// The server drains in-flight verifications on SIGINT/SIGTERM before
// exiting; a second signal aborts them cooperatively.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"octopocs/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "octoserved:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("octoserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", service.DefaultQueueDepth, "job queue depth")
	cache := fs.Int("cache", service.DefaultCacheEntries, "artifact cache entries per class (negative disables)")
	timeout := fs.Duration("timeout", 0, "per-job deadline (0 = none)")
	drain := fs.Duration("drain", 30*time.Second, "max time to drain in-flight jobs on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return serve(ctx, ln, service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		JobTimeout:   *timeout,
	}, *drain, log.New(out, "octoserved: ", log.LstdFlags))
}

// serve runs the service on ln until ctx is cancelled, then shuts down:
// first the HTTP listener, then the worker pool, giving in-flight jobs up
// to drain before cancelling them cooperatively.
func serve(ctx context.Context, ln net.Listener, cfg service.Config, drain time.Duration, logger *log.Logger) error {
	svc := service.New(cfg)
	srv := &http.Server{Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Printf("listening on %s (workers=%d queue=%d)", ln.Addr(), cfg.Workers, cfg.QueueDepth)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Printf("shutting down, draining jobs (up to %s)", drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		logger.Printf("drain incomplete, jobs cancelled: %v", err)
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}
