// Command octoserved exposes the OCTOPOCS verification pipeline as an HTTP
// service: submit (S, T, poc) pairs, poll job status, fetch reports, reformed
// PoCs and per-job phase traces, and watch queue/cache statistics. POST
// /v1/scan additionally runs the clone-detection front end: one source CVE is
// matched against an indexed target corpus and every ranked candidate is
// fanned out as a verification job (see internal/clonedet). Metrics are
// served in Prometheus text form at /metrics; an optional debug listener
// exposes net/http/pprof.
//
// Usage:
//
//	octoserved [-addr :8344] [-workers N] [-symex-workers N] [-queue N]
//	           [-cache N] [-timeout D] [-traces N] [-drain D] [-static]
//	           [-journal N] [-journal-verbose]
//	           [-store-dir DIR] [-store-budget MIB]
//	           [-log-level info] [-log-format text] [-debug-addr ADDR]
//
// With -store-dir the phase artifacts (P1 crash primitives, P2/static
// preparation, finished-job journals, clone fingerprints) persist to a
// tiered on-disk store and survive restarts: a warm instance serves repeat
// verifications without recomputing. When the disk tier refuses writes,
// submissions answer 429 with a Retry-After header; see OPERATIONS.md.
//
// Every job records a verdict provenance journal served at GET
// /v1/jobs/{id}/events (JSON pages via ?after=, live following via
// ?stream=1 or Accept: text/event-stream); `octopocs explain -addr ... job-N`
// renders it as a narrative.
//
// The server drains in-flight verifications on SIGINT/SIGTERM before
// exiting; a second signal aborts them cooperatively. While draining,
// /healthz answers 503 so load balancers stop routing to the instance.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/faultinject"
	"octopocs/internal/service"
	"octopocs/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "octoserved:", err)
		os.Exit(1)
	}
}

func run(args []string, logOut *os.File) error {
	fs := flag.NewFlagSet("octoserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	symexWorkers := fs.Int("symex-workers", 0, "frontier explorer goroutines per job (0 = auto GOMAXPROCS/workers, negative = sequential engine)")
	queue := fs.Int("queue", service.DefaultQueueDepth, "job queue depth")
	cache := fs.Int("cache", service.DefaultCacheEntries, "artifact cache entries per class (negative disables)")
	timeout := fs.Duration("timeout", 0, "per-job deadline (0 = none)")
	drain := fs.Duration("drain", 30*time.Second, "max time to drain in-flight jobs on shutdown")
	traces := fs.Int("traces", 0, "retained finished job traces (0 = default, negative disables)")
	static := fs.Bool("static", false, "enable the static pre-analysis for all jobs (per-job \"static\" field overrides)")
	absintOn := fs.Bool("absint", false, "enable abstract-interpretation value ranges for all jobs: branch oracle for symbolic execution, plus stronger pruning with -static")
	hybridOn := fs.Bool("hybrid", false, "enable the directed-fuzzing fallback for all jobs: rescue theta- and budget-exhausted symex outcomes with a replay-confirmed campaign crash")
	journalCap := fs.Int("journal", 0, "events retained per job provenance journal (0 = default, negative disables journaling)")
	storeDir := fs.String("store-dir", "", "persistent artifact store directory; empty runs memory-only")
	storeBudget := fs.Int64("store-budget", 0, "persistent store disk budget in MiB across all classes (0 = default)")
	journalVerbose := fs.Bool("journal-verbose", false, "retain per-state frontier and per-call solver events in job journals")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	debugAddr := fs.String("debug-addr", "", "optional second listener serving net/http/pprof (e.g. 127.0.0.1:8345)")
	faultSched := fs.String("fault-schedule", "", "deterministic fault-injection schedule, e.g. 'seed=42;solver.sat:nth=2|5' (chaos testing; off by default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := telemetry.NewLogger(logOut, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	faultSchedule, err := faultinject.ParseSchedule(*faultSched)
	if err != nil {
		return fmt.Errorf("-fault-schedule: %w", err)
	}
	// One injector shared by the pipeline and the stores, so a schedule's
	// nth= counters fire once across the whole process.
	faults := faultinject.New(faultSchedule)

	var stores *service.Stores
	if *storeDir != "" {
		stores, err = service.OpenStores(service.StoreOptions{
			Dir:        *storeDir,
			DiskBudget: *storeBudget << 20,
			Faults:     faults,
			Logger:     logger,
		})
		if err != nil {
			return err
		}
		// The service only borrows the stores; close them after it drains.
		defer stores.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	var debugLn net.Listener
	if *debugAddr != "" {
		if debugLn, err = net.Listen("tcp", *debugAddr); err != nil {
			return err
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return serve(ctx, ln, debugLn, service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		JobTimeout:      *timeout,
		TraceCapacity:   *traces,
		SymexWorkers:    *symexWorkers,
		JournalCapacity: *journalCap,
		JournalVerbose:  *journalVerbose,
		Stores:          stores,
		Pipeline:        core.Config{StaticPrune: *static, Absint: *absintOn, HybridFuzz: *hybridOn, Faults: faults},
		Logger:          logger,
	}, *drain, logger)
}

// debugMux builds the pprof handler set on a private mux, so the profiling
// surface is bound only to the opt-in debug listener and never exposed on
// the API address.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the service on ln until ctx is cancelled, then shuts down:
// first the HTTP listeners, then the worker pool, giving in-flight jobs up
// to drain before cancelling them cooperatively. debugLn, when non-nil,
// serves pprof for the lifetime of the server.
func serve(ctx context.Context, ln, debugLn net.Listener, cfg service.Config, drain time.Duration, logger *slog.Logger) error {
	svc := service.New(cfg)
	srv := &http.Server{Handler: svc.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var dsrv *http.Server
	if debugLn != nil {
		dsrv = &http.Server{Handler: debugMux()}
		go func() {
			if err := dsrv.Serve(debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug server", "err", err.Error())
			}
		}()
		logger.Info("pprof listening", "addr", debugLn.Addr().String())
	}
	logger.Info("listening", "addr", ln.Addr().String(),
		"workers", cfg.Workers, "queue", cfg.QueueDepth)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining jobs", "drain", drain.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if dsrv != nil {
		dsrv.Close()
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		logger.Warn("drain incomplete, jobs cancelled", "err", err.Error())
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained cleanly")
	return nil
}
