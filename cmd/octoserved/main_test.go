package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"octopocs/internal/service"
	"octopocs/internal/telemetry"
)

// startServer runs serve on an ephemeral port and returns its base URL plus
// a shutdown func that triggers the drain path and waits for serve to exit.
func startServer(t *testing.T, cfg service.Config) (string, func() error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- serve(ctx, ln, nil, cfg, 30*time.Second, telemetry.DiscardLogger())
	}()
	url := "http://" + ln.Addr().String()
	waitHealthy(t, url)
	return url, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("serve did not exit after shutdown")
			return nil
		}
	}
}

func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestServerEndToEnd(t *testing.T) {
	url, shutdown := startServer(t, service.Config{Workers: 2})

	// Submit two corpus pairs and wait for completion inline.
	var statuses []service.JobStatus
	for _, idx := range []int{1, 2} {
		body := fmt.Sprintf(`{"corpus_idx": %d}`, idx)
		resp, err := http.Post(url+"/v1/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st service.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit idx %d: status %d: %+v", idx, resp.StatusCode, st)
		}
		if st.State != "done" {
			t.Fatalf("job for idx %d finished as %q (err %q), want done", idx, st.State, st.Error)
		}
		statuses = append(statuses, st)
	}
	if statuses[0].Verdict != "triggered" {
		t.Errorf("pair 1 verdict = %q, want triggered", statuses[0].Verdict)
	}

	// Pairs 1 and 2 share the same S and poc, so the second job must have
	// hit the P1 cache.
	if !statuses[1].P1Cached {
		t.Errorf("second job (shared S) did not hit the P1 cache: %+v", statuses[1])
	}

	// The report endpoint returns the full verdict.
	var rep service.ReportResponse
	getJSON(t, url+"/v1/jobs/"+statuses[0].ID+"/report", &rep)
	if rep.Report == nil || rep.Report.Verdict.String() != "triggered" {
		t.Fatalf("report endpoint: %+v", rep)
	}

	// The poc endpoint serves the reformed bytes.
	resp, err := http.Get(url + "/v1/jobs/" + statuses[0].ID + "/poc")
	if err != nil {
		t.Fatal(err)
	}
	poc, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(poc) == 0 {
		t.Fatalf("poc endpoint: status %d, %d bytes", resp.StatusCode, len(poc))
	}
	if len(poc) != statuses[0].PoCBytes {
		t.Errorf("poc endpoint returned %d bytes, status said %d", len(poc), statuses[0].PoCBytes)
	}

	// Stats reflect the completed jobs and the cache hit.
	var stats service.Stats
	getJSON(t, url+"/v1/stats", &stats)
	if stats.Completed != 2 {
		t.Errorf("stats.Completed = %d, want 2", stats.Completed)
	}
	if stats.P1Cache == nil || stats.P1Cache.Hits == 0 {
		t.Errorf("stats shows no P1 cache hits: %+v", stats.P1Cache)
	}

	// Job listing covers both submissions in order.
	var list []service.JobStatus
	getJSON(t, url+"/v1/jobs", &list)
	if len(list) != 2 || list[0].ID != statuses[0].ID {
		t.Errorf("job list = %+v", list)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDebugListener checks that pprof is served only on the opt-in debug
// address, never on the API address.
func TestDebugListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- serve(ctx, ln, debugLn, service.Config{Workers: 1}, 30*time.Second, telemetry.DiscardLogger())
	}()
	apiURL := "http://" + ln.Addr().String()
	waitHealthy(t, apiURL)

	resp, err := http.Get("http://" + debugLn.Addr().String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on debug listener: status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(apiURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof reachable on the API listener; it must be debug-only")
	}

	// The metrics exposition rides on the API listener.
	resp, err = http.Get(apiURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "octopocs_jobs_submitted_total") {
		t.Errorf("/metrics: status %d body %q", resp.StatusCode, body)
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	url, shutdown := startServer(t, service.Config{Workers: 1})
	defer shutdown()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"corpus_idx": 99}`, http.StatusBadRequest},
		{`{"s": "garbage"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"unknown_field": 1}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("submit %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}

	resp, err := http.Get(url + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}
