// Command mirrun assembles, disassembles and executes MIR programs — the
// miniature binaries the OCTOPOCS reproduction analyzes.
//
// Usage:
//
//	mirrun -run prog.mir -input poc.bin     assemble and execute
//	mirrun -run prog.mir -trace             print the call trace
//	mirrun -run prog.mir -ranges            dump abstract value ranges as JSON
//	mirrun -dump 8 -side t                  disassemble a corpus binary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"octopocs/internal/absint"
	"octopocs/internal/asm"
	"octopocs/internal/corpus"
	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mirrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mirrun", flag.ContinueOnError)
	var (
		runPath  = fs.String("run", "", "assemble and execute this .mir file")
		input    = fs.String("input", "", "input file fed to the program")
		trace    = fs.Bool("trace", false, "print call/return trace during execution")
		ranges   = fs.Bool("ranges", false, "with -run: print the abstract-interpretation value ranges as JSON instead of executing")
		maxSteps = fs.Int64("max-steps", 0, "instruction budget (0 = default)")
		dumpIdx  = fs.Int("dump", 0, "disassemble a corpus pair's binary (Table II row)")
		side     = fs.String("side", "s", "which binary to dump: s or t")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *dumpIdx != 0:
		spec := corpus.ByIdx(*dumpIdx)
		if spec == nil {
			return fmt.Errorf("no corpus pair %d", *dumpIdx)
		}
		prog := spec.Pair.S
		if *side == "t" {
			prog = spec.Pair.T
		}
		fmt.Print(asm.Format(prog))
		return nil

	case *runPath != "":
		src, err := os.ReadFile(*runPath)
		if err != nil {
			return err
		}
		prog, err := asm.Parse(string(src))
		if err != nil {
			return err
		}
		if *ranges {
			return dumpRanges(prog)
		}
		var data []byte
		if *input != "" {
			if data, err = os.ReadFile(*input); err != nil {
				return err
			}
		}
		cfg := vm.Config{Input: data, MaxSteps: *maxSteps}
		if *trace {
			depth := 0
			cfg.Hooks = &vm.Hooks{
				OnCall: func(_ isa.Loc, callee string, args []uint64, _, _ uint64, _ isa.Reg) {
					fmt.Printf("%*scall %s%v\n", depth*2, "", callee, args)
					depth++
				},
				OnRet: func(fn string, val uint64, _, _ uint64, _ isa.Reg) {
					depth--
					fmt.Printf("%*sret  %s = %d\n", depth*2, "", fn, val)
				},
			}
		}
		out := vm.New(prog, cfg).Run()
		fmt.Println(out)
		if out.Crash != nil {
			fmt.Println("backtrace:")
			for _, e := range out.Crash.Backtrace {
				fmt.Printf("  %s (called from %s)\n", e.Func, e.CallSite)
			}
		}
		if len(out.Output) > 0 {
			fmt.Printf("output: % x\n", out.Output)
		}
		return nil

	default:
		fs.Usage()
		return fmt.Errorf("pass -run or -dump")
	}
}

// rangesDump is the JSON shape of -ranges: the analysis summary plus, per
// function and reachable block, the rendered abstract value of every
// register that is neither ⊤ nor the constant 0 — ⊤ carries no information
// and 0 is the state of every untouched register, so both would drown the
// interesting rows.
type rangesDump struct {
	Summary absint.Summary          `json:"summary"`
	Funcs   map[string][]blockRange `json:"funcs"`
}

type blockRange struct {
	Block       int               `json:"block"`
	Unreachable bool              `json:"unreachable,omitempty"`
	ProvedTaken *int              `json:"proved_taken,omitempty"`
	Regs        map[string]string `json:"regs,omitempty"`
}

func dumpRanges(prog *isa.Program) error {
	res := absint.Analyze(prog)
	dump := rangesDump{Summary: res.Summary, Funcs: make(map[string][]blockRange, len(res.Funcs))}
	for name, fr := range res.Funcs {
		blocks := make([]blockRange, len(fr.Entry))
		for b := range fr.Entry {
			br := blockRange{Block: b}
			if fr.Entry[b] == nil {
				br.Unreachable = true
			} else {
				regs := make(map[string]string)
				for r, v := range fr.Entry[b] {
					if c, isConst := v.IsConst(); v.IsTop() || (isConst && c == 0) {
						continue
					}
					regs[fmt.Sprintf("r%d", r)] = v.String()
				}
				if len(regs) > 0 {
					br.Regs = regs
				}
				if fr.Branch[b] >= 0 {
					taken := fr.Branch[b]
					br.ProvedTaken = &taken
				}
			}
			blocks[b] = br
		}
		dump.Funcs[name] = blocks
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
