package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments should error")
	}
	if err := run([]string{"-dump", "42"}); err == nil {
		t.Error("bad dump index should error")
	}
	if err := run([]string{"-run", "/nonexistent.mir"}); err == nil {
		t.Error("missing file should error")
	}
}

func TestDumpCorpusBinary(t *testing.T) {
	if err := run([]string{"-dump", "9", "-side", "t"}); err != nil {
		t.Fatalf("dump: %v", err)
	}
}

func TestAssembleAndExecute(t *testing.T) {
	dir := t.TempDir()
	src := `
program demo
entry main

func main/0 {
entry:
  r0 = sys open()
  r1 = sys alloc(r2)
  r2 = const 4
  r1 = sys alloc(r2)
  r3 = sys read(r0, r1, r2)
  r4 = load1 r1+0
  ret r4
}
`
	path := filepath.Join(dir, "demo.mir")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	input := filepath.Join(dir, "in.bin")
	if err := os.WriteFile(input, []byte{0x2A}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", path, "-input", input, "-trace"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
