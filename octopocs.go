// Package octopocs is a from-scratch Go reproduction of OCTOPOCS (Kwon,
// Woo, Seong, Lee — DSN 2021): automatic verification of propagated
// vulnerable code using reformed proofs of concept.
//
// Given an original vulnerable binary S, a binary T that received a clone
// of S's vulnerable code, the malformed-file PoC that crashes S, and the
// shared function set ℓ, the pipeline decides whether the propagated
// vulnerability can still be triggered in T:
//
//	pipeline := octopocs.New(octopocs.Config{})
//	report, err := pipeline.Verify(&octopocs.Pair{
//	    Name: "s->t", S: progS, T: progT, PoC: poc,
//	    Lib: map[string]bool{"shared_decoder": true},
//	})
//
// A VerdictTriggered report carries the reformed PoC that crashes T; a
// VerdictNotTriggerable report explains why the clone is dead code
// (unreached entry point, dead program states, parameter mismatch, or
// unsatisfiable constraints); VerdictFailure means no sound verdict was
// possible (e.g. unresolvable indirect control flow).
//
// Because no native-binary taint or symbolic-execution substrate exists
// for Go, the package operates on MIR, a miniature instruction set with a
// deterministic VM (see BuildProgram and the internal/isa package). The
// Table II corpus of the paper is reproduced as 15 synthetic S/T pairs
// over that substrate, available through CorpusPairs.
package octopocs

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// Core pipeline types.
type (
	// Pair is one verification task: the (S, T, poc, ℓ) quadruple.
	Pair = core.Pair
	// Config tunes the pipeline; the zero value matches the paper.
	Config = core.Config
	// Report is the outcome of verifying one pair.
	Report = core.Report
	// Verdict is the top-level outcome class.
	Verdict = core.Verdict
	// ResultType is the paper's Table II classification.
	ResultType = core.ResultType
	// Reason explains non-triggered verdicts.
	Reason = core.Reason
	// Pipeline runs the four phases P1-P4.
	Pipeline = core.Pipeline
	// BunchBytes is one extracted crash primitive.
	BunchBytes = core.BunchBytes
)

// Verdicts.
const (
	VerdictTriggered      = core.VerdictTriggered
	VerdictNotTriggerable = core.VerdictNotTriggerable
	VerdictFailure        = core.VerdictFailure
)

// Result types.
const (
	TypeI       = core.TypeI
	TypeII      = core.TypeII
	TypeIII     = core.TypeIII
	TypeFailure = core.TypeFailure
)

// New returns a verification pipeline.
func New(cfg Config) *Pipeline { return core.New(cfg) }

// Program substrate types.
type (
	// Program is a MIR binary.
	Program = isa.Program
	// ProgramBuilder constructs programs with structured control flow.
	ProgramBuilder = asm.Builder
	// FunctionBuilder emits one function.
	FunctionBuilder = asm.Fn
	// Outcome is the result of a concrete run.
	Outcome = vm.Outcome
	// RunConfig parameterizes a concrete run.
	RunConfig = vm.Config
)

// BuildProgram starts a new program builder.
func BuildProgram(name string) *ProgramBuilder { return asm.NewBuilder(name) }

// ParseProgram assembles a program from its textual form.
func ParseProgram(src string) (*Program, error) { return asm.Parse(src) }

// FormatProgram disassembles a program to its textual form.
func FormatProgram(p *Program) string { return asm.Format(p) }

// Run executes a program concretely on the given input file.
func Run(p *Program, cfg RunConfig) *Outcome {
	return vm.New(p, cfg).Run()
}

// Corpus access.
type (
	// PairSpec couples a corpus pair with its Table II metadata.
	PairSpec = corpus.PairSpec
)

// CorpusPairs returns the 15 synthetic pairs mirroring the paper's
// Table II.
func CorpusPairs() []*PairSpec { return corpus.All() }

// CorpusPair returns the pair with the given Table II row number (1-15),
// or nil.
func CorpusPair(idx int) *PairSpec { return corpus.ByIdx(idx) }
