module octopocs

go 1.22
