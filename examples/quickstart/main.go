// Quickstart: build a vulnerable original S and a format-changed clone T
// with the public program builder, then let OCTOPOCS reform S's PoC into
// one that triggers the propagated vulnerability in T.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"octopocs"
	"octopocs/internal/isa"
)

// addDecoder emits the shared vulnerable library ℓ: a record decoder that
// copies a length-prefixed payload into a fixed 8-byte buffer.
func addDecoder(b *octopocs.ProgramBuilder) {
	g := b.Function("decode_record", 1) // (fd)
	fd := g.Param(0)
	buf := g.Sys(isa.SysAlloc, g.Const(8))
	lenBuf := g.Sys(isa.SysAlloc, g.Const(1))
	g.Sys(isa.SysRead, fd, lenBuf, g.Const(1))
	n := g.Load(1, lenBuf, 0)
	g.Sys(isa.SysRead, fd, buf, n) // overflow for n > 8
	g.Ret(n)
}

// buildS: the original tool reads an "RCRD" file and decodes one record.
func buildS() *octopocs.Program {
	b := octopocs.BuildProgram("recordtool-1.0")
	addDecoder(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	readMagic(f, fd, "RCRD")
	f.Call("decode_record", fd)
	f.Exit(0)
	b.Entry("main")
	return b.MustBuild()
}

// buildT: the clone wraps the same decoder in a different container: a
// "PKG0" archive whose records need a one-byte kind tag of 0x52.
func buildT() *octopocs.Program {
	b := octopocs.BuildProgram("packagetool-2.3")
	addDecoder(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	readMagic(f, fd, "PKG0")
	kindBuf := f.Sys(isa.SysAlloc, f.Const(1))
	f.Sys(isa.SysRead, fd, kindBuf, f.Const(1))
	kind := f.Load(1, kindBuf, 0)
	f.If(f.NeI(kind, 0x52), func() { f.Exit(1) })
	f.Call("decode_record", fd)
	f.Exit(0)
	b.Entry("main")
	return b.MustBuild()
}

func readMagic(f *octopocs.FunctionBuilder, fd isa.Reg, magic string) {
	buf := f.Sys(isa.SysAlloc, f.Const(int64(len(magic))))
	f.Sys(isa.SysRead, fd, buf, f.Const(int64(len(magic))))
	for i := 0; i < len(magic); i++ {
		f.If(f.NeI(f.Load(1, buf, int64(i)), int64(magic[i])), func() { f.Exit(1) })
	}
}

func main() {
	progS, progT := buildS(), buildT()

	// The disclosed PoC: an RCRD file whose record length 32 bursts the
	// decoder's 8-byte buffer.
	poc := append([]byte("RCRD"), 32)
	for i := 0; i < 32; i++ {
		poc = append(poc, byte('A'+i%26))
	}
	fmt.Printf("original poc (%d bytes): %q...\n", len(poc), poc[:10])

	out := octopocs.Run(progS, octopocs.RunConfig{Input: poc})
	fmt.Printf("S on poc:  %v\n", out)
	out = octopocs.Run(progT, octopocs.RunConfig{Input: poc})
	fmt.Printf("T on poc:  %v   <- the original PoC cannot verify T\n", out)

	pipeline := octopocs.New(octopocs.Config{})
	report, err := pipeline.Verify(&octopocs.Pair{
		Name: "recordtool->packagetool",
		S:    progS,
		T:    progT,
		PoC:  poc,
		Lib:  map[string]bool{"decode_record": true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nverdict: %v (%v)\n", report.Verdict, report.Type)
	fmt.Printf("entry point ep: %s\n", report.Ep)
	for _, b := range report.Bunches {
		fmt.Printf("crash primitive %d: % x\n", b.Seq, b.Bytes)
	}
	fmt.Printf("reformed poc' (%d bytes): % x\n", len(report.PoCPrime), report.PoCPrime[:16])

	out = octopocs.Run(progT, octopocs.RunConfig{Input: report.PoCPrime})
	fmt.Printf("T on poc': %v   <- propagated vulnerability verified\n", out)
}
