// Formatbridge walks through the paper's motivating mutool case (§ II-C,
// Table II Idx-8): a null-dereference found in OpenJPEG's raw-codestream
// decoder propagated into MuPDF, which only accepts PDF input and reaches
// the decoder through a stream-filter dispatch table. The original
// raw-codestream PoC cannot verify MuPDF; the reformed PoC wraps the crash
// primitive in the PDF container.
//
//	go run ./examples/formatbridge
package main

import (
	"fmt"
	"log"

	"octopocs"
)

func main() {
	spec := octopocs.CorpusPair(8)
	fmt.Printf("pair: %s %s -> %s %s (%s)\n",
		spec.SName, spec.SVersion, spec.TName, spec.TVersion, spec.CVE)

	pair := spec.Pair
	fmt.Printf("\noriginal PoC, a raw JPEG2000 codestream (%d bytes): %# x\n",
		len(pair.PoC), pair.PoC)

	fmt.Printf("S (%s) on poc:  %v\n", spec.SName,
		octopocs.Run(pair.S, octopocs.RunConfig{Input: pair.PoC}))
	fmt.Printf("T (%s) on poc:  %v   <- MuPDF rejects non-PDF input\n", spec.TName,
		octopocs.Run(pair.T, octopocs.RunConfig{Input: pair.PoC}))

	report, err := octopocs.New(octopocs.Config{}).Verify(pair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverdict: %v (%v)\n", report.Verdict, report.Type)
	fmt.Printf("ep (first shared function on the crash path): %s\n", report.Ep)
	for _, b := range report.Bunches {
		fmt.Printf("crash primitive %d (from poc offset %d): %# x\n", b.Seq, b.Start, b.Bytes)
	}

	poc := report.PoCPrime
	fmt.Printf("\nreformed poc' (%d bytes, minimized):\n", len(poc))
	fmt.Printf("  header     : %q          <- PDF magic, generated as guiding input\n", poc[:4])
	fmt.Printf("  options    : %# x  <- option flags walked by the directed executor\n", poc[4:20])
	fmt.Printf("  dispatch   : %q %d        <- object tag + the JPX filter slot\n", poc[20:21], poc[21])
	fmt.Printf("  primitive  : %# x  <- the codestream, placed at the file position indicator\n", poc[22:])

	fmt.Printf("\nT on poc': %v\n",
		octopocs.Run(pair.T, octopocs.RunConfig{Input: report.PoCPrime}))
	fmt.Println("the propagated vulnerability is verified: MuPDF needs the patch first")
}
