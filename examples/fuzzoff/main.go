// Fuzzoff reruns the Table V comparison on the artificial gif2png pair:
// AFLFast (coverage-guided), AFLGo (directed greybox), and OCTOPOCS all try
// to verify the propagated heap overflow, and the run prints who managed
// within the budget and how fast.
//
//	go run ./examples/fuzzoff
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"octopocs"
	"octopocs/internal/core"
	"octopocs/internal/fuzz"
)

func main() {
	spec := octopocs.CorpusPair(9)
	pair := spec.Pair
	fmt.Printf("pair: %s -> %s (%s)\n", spec.SName, spec.TName, spec.CVE)
	fmt.Println("the clone added a strict version check: the original PoC no longer works")

	pipeline := core.New(core.Config{})
	ep, err := pipeline.FindEp(pair)
	if err != nil {
		log.Fatal(err)
	}

	target := &fuzz.Target{Prog: pair.T, Lib: pair.Lib, MaxSteps: 200_000}
	budget := int64(400_000)
	cfg := fuzz.Config{Seeds: [][]byte{pair.PoC}, MaxExecs: budget, Seed: 3}

	fmt.Printf("\nfuzzing budget: %d executions\n\n", budget)

	start := time.Now()
	ff := fuzz.RunAFLFast(target, cfg)
	report("AFLFast", ff.Found, time.Since(start), ff.Execs, nil)

	start = time.Now()
	fg, gerr := fuzz.RunAFLGo(target, ep, cfg)
	if gerr != nil {
		report("AFLGo", false, time.Since(start), 0, gerr)
	} else {
		report("AFLGo", fg.Found, time.Since(start), fg.Execs, nil)
	}

	start = time.Now()
	rep, err := pipeline.Verify(pair)
	if err != nil {
		log.Fatal(err)
	}
	report("OCTOPOCS", rep.Verdict == octopocs.VerdictTriggered, time.Since(start), 0, nil)

	fmt.Println("\nOCTOPOCS reuses the crash primitive from the original PoC and only")
	fmt.Println("generates the guiding bytes, so it does not have to rediscover the")
	fmt.Println("deep input structure mutation by mutation.")
}

func report(tool string, found bool, elapsed time.Duration, execs int64, err error) {
	switch {
	case err != nil && errors.Is(err, fuzz.ErrNoDistance):
		fmt.Printf("%-9s tool error: %v\n", tool, err)
	case err != nil:
		fmt.Printf("%-9s error: %v\n", tool, err)
	case !found:
		fmt.Printf("%-9s N/A (budget exhausted after %d execs, %v)\n", tool, execs, elapsed.Round(time.Millisecond))
	case execs > 0:
		fmt.Printf("%-9s verified in %v (%d execs)\n", tool, elapsed.Round(time.Millisecond), execs)
	default:
		fmt.Printf("%-9s verified in %v\n", tool, elapsed.Round(time.Millisecond))
	}
}
