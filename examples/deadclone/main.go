// Deadclone reproduces the paper's non-triggered case (§ II-C, Table II
// Idx-10): tiffsplit's _TIFFVGetField overflow (CVE-2016-10095) was cloned
// into opj_compress, but the clone is only ever called with seven
// hard-coded tag values — never the 0x13D tag that reaches the overflow.
// OCTOPOCS proves the clone is not triggerable instead of generating a PoC.
//
//	go run ./examples/deadclone
package main

import (
	"fmt"
	"log"

	"octopocs"
)

func main() {
	spec := octopocs.CorpusPair(10)
	fmt.Printf("pair: %s -> %s (%s, %s)\n", spec.SName, spec.TName, spec.CVE, spec.CWE)

	pair := spec.Pair
	fmt.Printf("\nS on poc: %v\n", octopocs.Run(pair.S, octopocs.RunConfig{Input: pair.PoC}))
	fmt.Println("the PoC drives tag 0x13D into the shared reader and overflows its buffer")

	report, err := octopocs.New(octopocs.Config{}).Verify(pair)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nverdict: %v (%v)\n", report.Verdict, report.Type)
	fmt.Printf("reason:  %s\n", report.Reason)
	fmt.Printf("poc' generated: %v\n", report.PoCGenerated())

	fmt.Println("\nwhat happened:")
	fmt.Printf("  - P1 recorded the ep context of S: each entry's (tag) argument\n")
	for _, b := range report.Bunches {
		if len(b.Args) > 1 {
			fmt.Printf("      entry %d: tag %#x\n", b.Seq, b.Args[1])
		}
	}
	fmt.Printf("  - in T, %s is reused with hard-coded tags (0x100, 0x101, ...)\n", report.Ep)
	fmt.Println("  - the combining phase found the contexts irreconcilable:")
	fmt.Println("    the tag that causes the overflow cannot be delivered in T")
	fmt.Println("\nconclusion: patching this clone can be deprioritized — it is dead code")
}
