package cfg

import "octopocs/internal/isa"

// Pruner is the static-analysis view consumed by the pruned graph build
// (implemented by mirstatic.Analysis; cfg states only the contract to keep
// the dependency arrow pointing P2-ward). Both methods must be sound
// over-approximations of the concrete semantics: DeadBlock may return true
// only for blocks no execution enters, and BranchTaken may fold a branch
// only when every execution reaching it takes the same direction — whether
// because the condition is a propagated constant or because a value-range
// proof (interval/congruence abstract interpretation) decides it.
//
// Concurrency: implementations must be safe for unsynchronized concurrent
// reads; the graph build and every symex worker share one Pruner.
type Pruner interface {
	// DeadBlock reports whether block is statically unreachable in fn.
	DeadBlock(fn string, block int) bool
	// BranchTaken reports the always-taken successor of the conditional
	// branch terminating (fn, block), if the condition is constant.
	BranchTaken(fn string, block int) (taken int, folded bool)
}

// BuildPruned constructs the static graph restricted to the blocks and
// edges that survive static analysis: dead blocks contribute no successors
// and no call sites, and folded branches keep only their taken edge. The
// resulting distance maps (DistancesTo) therefore never route the symex
// frontier into provably dead regions, and call edges that exist only in
// dead code no longer make ep look reachable. A nil pruner degrades to
// Build.
func BuildPruned(prog *isa.Program, pv Pruner) *Graph {
	g := &Graph{
		Prog:     prog,
		succs:    make(map[string][][]int, len(prog.Funcs)),
		sites:    make(map[string][]*CallSite, len(prog.Funcs)),
		observed: make(map[string]map[string]bool),
	}
	for _, f := range prog.Funcs {
		succ := make([][]int, len(f.Blocks))
		for bi, b := range f.Blocks {
			if pv != nil && pv.DeadBlock(f.Name, bi) {
				continue // no edges out of, and no call sites in, dead code
			}
			term := b.Terminator()
			switch term.Op {
			case isa.OpJmp:
				succ[bi] = []int{term.ThenIdx}
			case isa.OpBr:
				if pv != nil {
					if taken, ok := pv.BranchTaken(f.Name, bi); ok {
						succ[bi] = []int{taken}
						break
					}
				}
				succ[bi] = []int{term.ThenIdx, term.ElseIdx}
			}
			for ii := range b.Insts {
				in := &b.Insts[ii]
				loc := isa.Loc{Func: f.Name, Block: bi, Inst: ii}
				switch in.Op {
				case isa.OpCall:
					g.sites[f.Name] = append(g.sites[f.Name], &CallSite{
						Loc:     loc,
						Targets: []string{in.Callee},
					})
				case isa.OpCallInd:
					g.sites[f.Name] = append(g.sites[f.Name], &CallSite{
						Loc:        loc,
						Indirect:   true,
						Unresolved: true,
					})
				}
			}
		}
		g.succs[f.Name] = succ
	}
	return g
}
