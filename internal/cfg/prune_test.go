package cfg_test

import (
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/cfg"
	"octopocs/internal/mirstatic"
)

// TestBuildPrunedDropsDeadCallEdges checks the distance-map contract of
// the static pre-analysis: a call to ep that lives only behind a
// constant-false guard must vanish from the pruned graph, flipping
// Reachable(ep) and removing the phantom ToEp distances that would
// otherwise steer the frontier at the guard.
func TestBuildPrunedDropsDeadCallEdges(t *testing.T) {
	b := asm.NewBuilder("deadcall")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	m := b.Function("main", 0)
	m.If(m.Const(0), func() {
		m.Call("ep")
	})
	m.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	a, err := mirstatic.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	full := cfg.Build(prog)
	if !full.Reachable("ep") {
		t.Fatal("unpruned graph must keep the dead call edge (static CFGs over-approximate)")
	}
	pruned := cfg.BuildPruned(prog, a)
	if pruned.Reachable("ep") {
		t.Fatal("pruned graph still reports ep reachable through dead code")
	}

	fullD := full.DistancesTo("ep")
	if _, ok := fullD.ToEp("main", 0); !ok {
		t.Error("unpruned entry block should see a (phantom) path to ep")
	}
	prunedD := pruned.DistancesTo("ep")
	if _, ok := prunedD.ToEp("main", 0); ok {
		t.Error("pruned entry block must have no path to ep")
	}
	// ToRet survives pruning: the live exit path is untouched.
	if _, ok := prunedD.ToRet("main", 0); !ok {
		t.Error("pruned graph lost the live path to the exit")
	}
}

// TestBuildPrunedKeepsFoldedEdge checks that a folded branch keeps exactly
// its taken edge and that live call sites are preserved.
func TestBuildPrunedKeepsFoldedEdge(t *testing.T) {
	b := asm.NewBuilder("fold")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	m := b.Function("main", 0)
	m.If(m.Const(1), func() {
		m.Call("ep")
	})
	m.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	a, err := mirstatic.Analyze(prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	pruned := cfg.BuildPruned(prog, a)
	if !pruned.Reachable("ep") {
		t.Fatal("constant-true guard: ep must stay reachable after pruning")
	}
	if got := len(pruned.Succs("main", 0)); got != 1 {
		t.Errorf("folded entry branch has %d successors, want 1", got)
	}
	full := cfg.Build(prog)
	if got := len(full.Succs("main", 0)); got != 2 {
		t.Errorf("unpruned entry branch has %d successors, want 2", got)
	}
}
