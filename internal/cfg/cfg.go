// Package cfg builds control-flow and call graphs for MIR programs and
// derives the artifacts OCTOPOCS needs from them: interprocedural
// reachability of the shared-code entry point ep, and per-block distance
// maps used by backward path finding (paper § III-B) and by the AFLGo-style
// directed fuzzer baseline.
//
// Like the paper's discussion of static versus dynamic CFGs (§ IV-B), the
// package distinguishes statically resolved edges from edges observed only
// at run time: direct calls are static, while indirect-call targets are
// invisible to static analysis ("a static CFG ... cannot contain the
// indirect call edge that appears only when a program is running").
// ObserveCall/RefineDynamic add run-time-discovered indirect edges the way
// angr's dynamic CFG does; an indirect site always remains marked
// Unresolved because no trace set proves completeness. The distance maps are
// the preparation step of phase P2: they are what directs the symbolic
// executor toward ep.
//
// Concurrency: graph construction and mutation (Build, ObserveCall,
// RefineDynamic) are confined to one goroutine. The distance maps returned
// by DistancesTo are plain values that are never mutated afterwards, so P2
// may share one map read-only across every parallel frontier worker.
package cfg

import (
	"errors"
	"fmt"
	"sort"

	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// ErrUnresolved reports that the target may only be reachable through
// indirect-call slots whose targets could not be resolved; this is the
// analog of the angr CFG-recovery failure on Idx-15 in the paper.
var ErrUnresolved = errors.New("cfg: target reachable only through unresolved indirect calls")

// CallSite is one call instruction.
type CallSite struct {
	Loc isa.Loc
	// Targets holds the known callees: the single static callee for a
	// direct call, or the dynamically observed targets for an indirect
	// call (empty until a trace resolves some).
	Targets []string
	// Indirect reports whether this is an OpCallInd site.
	Indirect bool
	// Unresolved reports that Targets may be incomplete: true for every
	// indirect site, since observed traces never prove completeness.
	Unresolved bool
}

// Graph is the combined control-flow graph and callgraph of one program.
type Graph struct {
	Prog *isa.Program
	// succs[fn][b] lists successor block indices of block b in fn.
	succs map[string][][]int
	// sites[fn] lists the call sites appearing in fn.
	sites map[string][]*CallSite
	// observed[site loc string] dedupes dynamic edges.
	observed map[string]map[string]bool
}

// Build constructs the static graph with no pruning; it is
// BuildPruned(prog, nil).
func Build(prog *isa.Program) *Graph {
	return BuildPruned(prog, nil)
}

// Succs returns the successor block indices of block b in fn.
func (g *Graph) Succs(fn string, b int) []int { return g.succs[fn][b] }

// Sites returns the call sites in fn.
func (g *Graph) Sites(fn string) []*CallSite { return g.sites[fn] }

// HasUnresolved reports whether any call site in the program has
// potentially missing targets.
func (g *Graph) HasUnresolved() bool {
	for _, sites := range g.sites {
		for _, s := range sites {
			if s.Unresolved {
				return true
			}
		}
	}
	return false
}

// siteAt returns the call site at loc, or nil.
func (g *Graph) siteAt(loc isa.Loc) *CallSite {
	for _, s := range g.sites[loc.Func] {
		if s.Loc == loc {
			return s
		}
	}
	return nil
}

// ObserveCall records a dynamically observed call edge (an indirect call
// resolving to callee at run time). Unknown sites and duplicate edges are
// ignored.
func (g *Graph) ObserveCall(site isa.Loc, callee string) {
	s := g.siteAt(site)
	if s == nil {
		return
	}
	key := site.String()
	if g.observed[key] == nil {
		g.observed[key] = make(map[string]bool)
	}
	if g.observed[key][callee] {
		return
	}
	g.observed[key][callee] = true
	for _, t := range s.Targets {
		if t == callee {
			return
		}
	}
	s.Targets = append(s.Targets, callee)
}

// ObservedEdge is one dynamically discovered indirect-call edge in the
// graph's externalized form, used by the persistent artifact store to
// rebuild a refined graph after a restart.
type ObservedEdge struct {
	Site   isa.Loc `json:"site"`
	Callee string  `json:"callee"`
}

// ObservedEdges lists every dynamically observed indirect-call edge in a
// deterministic order: program function order, call-site order within the
// function, and target order as observed. Replaying the list through
// ObserveCall on a freshly built graph of the same program reproduces the
// refined graph exactly (Targets slices included, element for element).
func (g *Graph) ObservedEdges() []ObservedEdge {
	var out []ObservedEdge
	for _, f := range g.Prog.Funcs {
		for _, s := range g.sites[f.Name] {
			if !s.Indirect {
				continue
			}
			for _, t := range s.Targets {
				if g.observed[s.Loc.String()][t] {
					out = append(out, ObservedEdge{Site: s.Loc, Callee: t})
				}
			}
		}
	}
	return out
}

// RefineDynamic is the concrete-trace flavor of dynamic CFG refinement,
// complementing the symbolic discovery in package symex (which the pipeline
// uses, so that a seed's incidental coverage cannot bless reachability the
// directed executor could not actually navigate).
//
// RefineDynamic executes the program concretely on each seed input and adds
// every observed indirect-call edge to the graph. This is the dynamic-CFG
// construction of § IV-B: edges that "appear only in execution time".
func (g *Graph) RefineDynamic(seeds [][]byte, maxSteps int64) {
	for _, seed := range seeds {
		var pending isa.Loc
		var pendingValid bool
		hooks := &vm.Hooks{
			OnInst: func(loc isa.Loc, _ uint64, in *isa.Inst) {
				if in.Op == isa.OpCallInd {
					pending, pendingValid = loc, true
				}
			},
			OnCall: func(_ isa.Loc, callee string, _ []uint64, _, _ uint64, _ isa.Reg) {
				if pendingValid {
					g.ObserveCall(pending, callee)
					pendingValid = false
				}
			},
		}
		m := vm.New(g.Prog, vm.Config{Input: seed, MaxSteps: maxSteps, Hooks: hooks})
		m.Run()
	}
}

// FuncDist returns, for every function, the minimum number of call edges to
// reach target (target itself maps to 0). Functions absent from the map
// cannot reach target.
func (g *Graph) FuncDist(target string) map[string]int {
	// Reverse-callgraph BFS from target.
	callers := make(map[string][]string)
	for fn, sites := range g.sites {
		for _, s := range sites {
			for _, t := range s.Targets {
				callers[t] = append(callers[t], fn)
			}
		}
	}
	dist := map[string]int{target: 0}
	queue := []string{target}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, caller := range callers[cur] {
			if _, seen := dist[caller]; !seen {
				dist[caller] = dist[cur] + 1
				queue = append(queue, caller)
			}
		}
	}
	return dist
}

// Reachable reports whether target is reachable from the program entry
// following call edges.
func (g *Graph) Reachable(target string) bool {
	_, ok := g.FuncDist(target)[g.Prog.Entry]
	return ok
}

// CheckResolvable inspects whether the reachability verdict for target can
// be trusted. If target is unreachable in the current graph but the program
// contains unresolved indirect sites, the CFG is inconclusive and
// ErrUnresolved is returned (the Idx-15 failure mode).
func (g *Graph) CheckResolvable(target string) error {
	if g.Reachable(target) {
		return nil
	}
	if g.HasUnresolved() {
		return fmt.Errorf("%w (target %s)", ErrUnresolved, target)
	}
	return nil
}

// unreachableDist marks blocks from which the objective cannot be reached.
const unreachableDist = int64(1) << 60

// callLevelWeight is the distance cost of descending one call level,
// dominating any intra-function path length so the directed executor
// prefers staying on course across functions.
const callLevelWeight = int64(10_000)

// Distances holds backward-path-finding results for one target function
// (the paper's ep). All distances are measured from the *start* of a block.
type Distances struct {
	Target string
	// funcDist is the callgraph distance of each function to Target.
	funcDist map[string]int
	// toEp[fn][b]: cost from block b of fn to a call that descends toward
	// Target, following only intra-function edges of fn.
	toEp map[string][]int64
	// toRet[fn][b]: cost from block b to a return from fn.
	toRet map[string][]int64
}

// DistancesTo runs backward path finding toward the target function and
// returns the distance maps used to direct symbolic execution.
func (g *Graph) DistancesTo(target string) *Distances {
	d := &Distances{
		Target:   target,
		funcDist: g.FuncDist(target),
		toEp:     make(map[string][]int64, len(g.Prog.Funcs)),
		toRet:    make(map[string][]int64, len(g.Prog.Funcs)),
	}
	for _, f := range g.Prog.Funcs {
		d.toEp[f.Name] = g.blockDists(f, g.epSeeds(f, d.funcDist))
		d.toRet[f.Name] = g.blockDists(f, retSeeds(f))
	}
	return d
}

// epSeeds returns per-block seed costs for the distance-to-ep-call
// computation: blocks containing a call site that descends toward the
// target get the weighted callee distance, others start unreachable.
func (g *Graph) epSeeds(f *isa.Function, funcDist map[string]int) []int64 {
	seeds := make([]int64, len(f.Blocks))
	for i := range seeds {
		seeds[i] = unreachableDist
	}
	for _, s := range g.sites[f.Name] {
		for _, t := range s.Targets {
			fd, ok := funcDist[t]
			if !ok {
				continue
			}
			if w := callLevelWeight * int64(fd); w < seeds[s.Loc.Block] {
				seeds[s.Loc.Block] = w
			}
		}
	}
	return seeds
}

// retSeeds seeds blocks ending in Ret (or process exit) with zero.
func retSeeds(f *isa.Function) []int64 {
	seeds := make([]int64, len(f.Blocks))
	for i, b := range f.Blocks {
		seeds[i] = unreachableDist
		term := b.Terminator()
		if term.Op == isa.OpRet || (term.Op == isa.OpSyscall && term.Sys == isa.SysExit) {
			seeds[i] = 0
		}
	}
	return seeds
}

// blockDists computes, for every block, the minimum cost to reach a seeded
// block following forward edges, where traversing an edge costs 1 and a
// seeded block contributes its seed cost. Implemented as a Bellman-Ford
// fixpoint; functions are small.
func (g *Graph) blockDists(f *isa.Function, seeds []int64) []int64 {
	n := len(f.Blocks)
	dist := make([]int64, n)
	copy(dist, seeds)
	succ := g.succs[f.Name]
	for changed := true; changed; {
		changed = false
		for b := 0; b < n; b++ {
			for _, s := range succ[b] {
				if dist[s] == unreachableDist {
					continue
				}
				if cand := dist[s] + 1; cand < dist[b] {
					dist[b] = cand
					changed = true
				}
			}
		}
	}
	return dist
}

// CanReach reports whether fn can reach the target through its callees.
func (d *Distances) CanReach(fn string) bool {
	_, ok := d.funcDist[fn]
	return ok
}

// FuncDist returns fn's callgraph distance to the target and whether fn can
// reach it.
func (d *Distances) FuncDist(fn string) (int, bool) {
	v, ok := d.funcDist[fn]
	return v, ok
}

// ToEp returns the cost from the start of block b in fn to a call site that
// descends toward the target; ok is false when no such path exists.
func (d *Distances) ToEp(fn string, b int) (int64, bool) {
	v := d.toEp[fn][b]
	return v, v < unreachableDist
}

// ToRet returns the cost from the start of block b in fn to a return.
func (d *Distances) ToRet(fn string, b int) (int64, bool) {
	v := d.toRet[fn][b]
	return v, v < unreachableDist
}

// FuncsSorted lists function names in deterministic order; used by reports.
func (g *Graph) FuncsSorted() []string {
	names := g.Prog.FuncNames()
	sort.Strings(names)
	return names
}
