package cfg_test

import (
	"errors"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/cfg"
	"octopocs/internal/isa"
)

// chainProg builds: main -> mid -> ep, with a side function never calling ep.
func chainProg(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("chain")

	ep := b.Function("ep", 1)
	ep.Ret(ep.Param(0))

	mid := b.Function("mid", 1)
	mid.IfElse(mid.GtI(mid.Param(0), 10),
		func() { mid.Ret(mid.Call("ep", mid.Param(0))) },
		func() { mid.RetI(0) })

	side := b.Function("side", 0)
	side.RetI(1)

	f := b.Function("main", 0)
	f.Call("side")
	f.Ret(f.Call("mid", f.Const(20)))
	b.Entry("main")

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestFuncDist(t *testing.T) {
	g := cfg.Build(chainProg(t))
	dist := g.FuncDist("ep")
	want := map[string]int{"ep": 0, "mid": 1, "main": 2}
	for fn, wd := range want {
		if got, ok := dist[fn]; !ok || got != wd {
			t.Errorf("FuncDist[%s] = %d (ok=%v), want %d", fn, got, ok, wd)
		}
	}
	if _, ok := dist["side"]; ok {
		t.Error("side should not reach ep")
	}
}

func TestReachable(t *testing.T) {
	g := cfg.Build(chainProg(t))
	if !g.Reachable("ep") {
		t.Error("Reachable(ep) = false, want true")
	}
	if g.Reachable("nosuch") {
		t.Error("Reachable(nosuch) = true, want false")
	}
	if !g.Reachable("side") {
		t.Error("Reachable(side) = false, want true")
	}
}

func TestDistancesDirectBranches(t *testing.T) {
	// main: if c { call ep } else { ret } — the then-block must be
	// strictly closer to ep than the else-block.
	b := asm.NewBuilder("p")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 1)
	f.IfElse(f.Param(0),
		func() { f.Call("ep") },
		func() { f.RetI(0) })
	f.RetI(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(prog)
	d := g.DistancesTo("ep")

	mainFn := prog.Func("main")
	thenIdx := mainFn.BlockIndex("then.1")
	joinIdx := mainFn.BlockIndex("join.2")
	if thenIdx < 0 || joinIdx < 0 {
		t.Fatalf("builder block names changed: %v", prog.Func("main").Blocks)
	}
	dThen, okThen := d.ToEp("main", thenIdx)
	if !okThen || dThen != 0 {
		t.Errorf("ToEp(then) = %d (ok=%v), want 0", dThen, okThen)
	}
	if _, ok := d.ToEp("ep", 0); ok {
		// ep itself contains no call toward ep.
		t.Error("ToEp inside ep should be unreachable (no self-call)")
	}
	dEntry, ok := d.ToEp("main", 0)
	if !ok || dEntry != 1 {
		t.Errorf("ToEp(entry) = %d (ok=%v), want 1", dEntry, ok)
	}
}

func TestDistancesToRet(t *testing.T) {
	g := cfg.Build(chainProg(t))
	d := g.DistancesTo("ep")
	// side's entry block returns immediately.
	if dist, ok := d.ToRet("side", 0); !ok || dist != 0 {
		t.Errorf("ToRet(side, 0) = %d (ok=%v), want 0", dist, ok)
	}
	if !d.CanReach("mid") || d.CanReach("side") {
		t.Errorf("CanReach: mid=%v side=%v, want true/false", d.CanReach("mid"), d.CanReach("side"))
	}
	if fd, ok := d.FuncDist("main"); !ok || fd != 2 {
		t.Errorf("FuncDist(main) = %d (ok=%v), want 2", fd, ok)
	}
}

func TestInterproceduralWeighting(t *testing.T) {
	// Two ways from main: call mid (which calls ep, depth 2) or call ep
	// directly (depth 1). The direct block must score lower.
	b := asm.NewBuilder("p")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	mid := b.Function("mid", 0)
	mid.Ret(mid.Call("ep"))
	f := b.Function("main", 1)
	f.IfElse(f.Param(0),
		func() { f.Call("ep") },  // then: depth 1
		func() { f.Call("mid") }) // else: depth 2
	f.RetI(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(prog)
	d := g.DistancesTo("ep")
	mainFn := prog.Func("main")
	dThen, _ := d.ToEp("main", mainFn.BlockIndex("then.1"))
	dElse, _ := d.ToEp("main", mainFn.BlockIndex("else.3"))
	if dThen >= dElse {
		t.Errorf("direct call dist %d should be < via-mid dist %d", dThen, dElse)
	}
}

func indirectProg(t *testing.T, table ...string) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("ind")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	other := b.Function("other", 0)
	other.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(1))
	idx := f.Load(1, buf, 0)
	f.CallInd(idx)
	f.RetI(0)
	b.Entry("main")
	b.FuncTable(table...)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestIndirectTargetsInvisibleStatically(t *testing.T) {
	// Even a fully populated function table is a run-time structure: the
	// static CFG must not see its targets, only flag the site unresolved.
	g := cfg.Build(indirectProg(t, "other", "ep"))
	if g.Reachable("ep") {
		t.Error("ep statically reachable through an indirect call, want false")
	}
	if !g.HasUnresolved() {
		t.Error("HasUnresolved() = false, want true")
	}
	err := g.CheckResolvable("ep")
	if !errors.Is(err, cfg.ErrUnresolved) {
		t.Errorf("CheckResolvable = %v, want ErrUnresolved", err)
	}
}

func TestDynamicRefinement(t *testing.T) {
	// Table slot 1 is ep but slot content unknown statically (empty), so
	// only a dynamic trace can discover the edge.
	prog := indirectProg(t, "", "ep")
	g := cfg.Build(prog)
	if g.Reachable("ep") {
		t.Fatal("precondition: ep must be statically unreachable")
	}
	// Seed input selecting table index 1 resolves the edge.
	g.RefineDynamic([][]byte{{1}}, 100_000)
	if !g.Reachable("ep") {
		t.Error("ep unreachable after dynamic refinement with resolving seed")
	}
	if err := g.CheckResolvable("ep"); err != nil {
		t.Errorf("CheckResolvable after refinement = %v, want nil", err)
	}
}

func TestDynamicRefinementWithoutResolvingSeed(t *testing.T) {
	prog := indirectProg(t, "", "ep")
	g := cfg.Build(prog)
	// Seed selects the empty slot 0: the run crashes (bad call) and no
	// edge is learned.
	g.RefineDynamic([][]byte{{0}}, 100_000)
	if g.Reachable("ep") {
		t.Error("ep became reachable from a non-resolving seed")
	}
	if err := g.CheckResolvable("ep"); !errors.Is(err, cfg.ErrUnresolved) {
		t.Errorf("CheckResolvable = %v, want ErrUnresolved", err)
	}
}

func TestObserveCallIgnoresUnknownSite(t *testing.T) {
	g := cfg.Build(chainProg(t))
	g.ObserveCall(isa.Loc{Func: "nosuch", Block: 0, Inst: 0}, "ep")
	// Must not panic and must not change reachability facts.
	if g.Reachable("nosuch") {
		t.Error("unknown site observation changed the graph")
	}
}

func TestObserveCallDedupes(t *testing.T) {
	prog := indirectProg(t, "", "ep")
	g := cfg.Build(prog)
	var site isa.Loc
	for _, s := range g.Sites("main") {
		if s.Indirect {
			site = s.Loc
		}
	}
	g.ObserveCall(site, "ep")
	g.ObserveCall(site, "ep")
	n := 0
	for _, s := range g.Sites("main") {
		for _, tgt := range s.Targets {
			if tgt == "ep" {
				n++
			}
		}
	}
	if n != 1 {
		t.Errorf("target ep recorded %d times, want 1", n)
	}
}

func TestSuccs(t *testing.T) {
	g := cfg.Build(chainProg(t))
	// mid's entry block branches: two successors.
	if got := len(g.Succs("mid", 0)); got != 2 {
		t.Errorf("mid entry has %d successors, want 2", got)
	}
	// ep's entry block returns: no successors.
	if got := len(g.Succs("ep", 0)); got != 0 {
		t.Errorf("ep entry has %d successors, want 0", got)
	}
}

func TestFuncsSorted(t *testing.T) {
	g := cfg.Build(chainProg(t))
	names := g.FuncsSorted()
	want := []string{"ep", "main", "mid", "side"}
	if len(names) != len(want) {
		t.Fatalf("FuncsSorted() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("FuncsSorted() = %v, want %v", names, want)
		}
	}
}
