// Package artifact is the persistent, tiered phase-artifact store behind
// the verification service: a bounded in-memory hot tier over a
// content-addressed, atomic-rename disk tier. It persists the expensive
// intermediate results of the pipeline — P1 crash-primitive bunches
// (S-side), P2 CFG/distance preparation (T-side), the pre-P2 static
// analyses, clone-detection fingerprints, and finished-job provenance
// journals — so a restarted node resumes warm instead of recomputing every
// artifact that P1–P4 already paid for.
//
// Soundness rests on the key discipline: callers address artifacts by
// content-derived keys that cover every input the artifact depends on, and
// the store additionally stamps its format version into every key before it
// touches disk. A format change therefore can never resurrect a
// stale verdict-bearing artifact — old entries simply stop matching and age
// out. Every disk entry carries a header and a SHA-256 checksum; writes go
// to a temp file, fsync, then rename, and the startup integrity scan drops
// any entry that is torn, truncated, corrupt, or from a different store
// version. A failed or corrupt read degrades to a miss (recompute — slower,
// never different), mirroring the cache-fault contract of the core
// pipeline.
//
// Concurrency: a Store is safe for concurrent Get/Put/Len/Counters from any
// number of goroutines; one mutex guards the hot tier, the disk index, and
// disk I/O, which is acceptable because artifact reads and writes are tiny
// compared to the verifications they save. Close is safe concurrently with
// readers; operations on a closed store degrade to misses and dropped
// writes.
package artifact

import (
	"fmt"
	"log/slog"
	"time"

	"octopocs/internal/faultinject"
)

// StoreVersion is the on-disk format version. It participates in every
// versioned key and in every entry header, so bumping it atomically
// invalidates all previously persisted artifacts (they are dropped by the
// startup integrity scan, never returned).
const StoreVersion = 1

// Defaults.
const (
	// DefaultHotEntries bounds the in-memory hot tier.
	DefaultHotEntries = 512
	// DefaultDiskBudget is the per-store disk budget in bytes.
	DefaultDiskBudget int64 = 256 << 20
	// DefaultSaturationHold is how long after a failed disk write the
	// store keeps reporting Saturated, giving admission control a window
	// to shed load while the volume recovers.
	DefaultSaturationHold = 5 * time.Second
)

// Codec turns one artifact class into a self-contained byte payload and
// back. Implementations must be safe for concurrent use. A Decode error is
// not fatal: the store treats the entry as corrupt, drops it, and reports a
// miss.
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// BytesCodec is the pass-through codec for artifact classes whose values
// are already []byte (persisted journals).
type BytesCodec struct{}

// Encode passes raw bytes through.
func (BytesCodec) Encode(v any) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("artifact: bytes codec: unexpected value type %T", v)
	}
	return b, nil
}

// Decode passes raw bytes through.
func (BytesCodec) Decode(data []byte) (any, error) { return data, nil }

// Options parameterizes Open.
type Options struct {
	// Dir is the store directory; created if absent. Each Store owns its
	// directory exclusively.
	Dir string
	// HotEntries bounds the in-memory hot tier; DefaultHotEntries when 0,
	// negative disables the hot tier (every hit decodes from disk).
	HotEntries int
	// DiskBudget bounds the bytes the disk tier may hold; DefaultDiskBudget
	// when 0. Least-recently-accessed entries are evicted to stay under it.
	DiskBudget int64
	// Codecs maps a key class — the prefix before the first ':' — to its
	// payload codec. Keys of classes without a codec live in the hot tier
	// only and never touch disk.
	Codecs map[string]Codec
	// Version overrides the key/format version; StoreVersion when 0.
	Version int
	// SaturationHold overrides how long a failed write keeps the store
	// saturated; DefaultSaturationHold when 0.
	SaturationHold time.Duration
	// Faults is the optional deterministic fault injector (disk-full,
	// torn-write, checksum-mismatch points). Nil never fires.
	Faults *faultinject.Injector
	// Logger receives integrity-scan and I/O warnings; nil discards them.
	Logger *slog.Logger
}

// Counters is a point-in-time snapshot of the store's accounting.
type Counters struct {
	// HotHits/DiskHits/Misses classify Get outcomes; a disk hit paid a
	// read, checksum verification, and a codec decode.
	HotHits  uint64 `json:"hot_hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	// Writes counts successful disk persists; WriteErrors counts failed
	// ones (each marks the store saturated for SaturationHold);
	// WriteSkips counts values larger than the whole disk budget.
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
	WriteSkips  uint64 `json:"write_skips"`
	// Evictions counts disk entries removed by the byte budget;
	// HotEvictions counts hot-tier LRU evictions.
	Evictions    uint64 `json:"evictions"`
	HotEvictions uint64 `json:"hot_evictions"`
	// CorruptDropped counts entries dropped for failing the header or
	// checksum validation (at startup scan or read time); StaleDropped
	// counts entries dropped for carrying a different store version or an
	// unknown class; DecodeErrors counts entries whose payload the codec
	// rejected.
	CorruptDropped uint64 `json:"corrupt_dropped"`
	StaleDropped   uint64 `json:"stale_dropped"`
	DecodeErrors   uint64 `json:"decode_errors"`
	// Tier occupancy.
	DiskBytes   int64 `json:"disk_bytes"`
	DiskEntries int   `json:"disk_entries"`
	HotEntries  int   `json:"hot_entries"`
}

// Hits is the total Get hits across tiers.
func (c Counters) Hits() uint64 { return c.HotHits + c.DiskHits }
