package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// On-disk entry layout (all integers big-endian):
//
//	magic    [4]byte  "OCAS"
//	version  uint32   store format version (also stamped in the key)
//	keyLen   uint32
//	key      [keyLen]byte   the versioned key
//	payLen   uint64
//	payload  [payLen]byte   codec output
//	sum      [32]byte       SHA-256 over everything above
//
// A torn or truncated file fails either the structural bounds checks or the
// checksum; both paths delete the file and report the entry gone.
var entryMagic = [4]byte{'O', 'C', 'A', 'S'}

const (
	entryExt    = ".art"
	tmpExt      = ".tmp"
	entryHeader = 4 + 4 + 4 // magic + version + keyLen
	entrySum    = sha256.Size
)

// entryOverhead is the non-payload byte cost of persisting vkey.
func entryOverhead(vkey string) int64 {
	return int64(entryHeader + len(vkey) + 8 + entrySum)
}

// encodeEntry builds the full file image for one entry.
func encodeEntry(version int, vkey string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(int(entryOverhead(vkey)) + len(payload))
	buf.Write(entryMagic[:])
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(version))
	buf.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], uint32(len(vkey)))
	buf.Write(u32[:])
	buf.WriteString(vkey)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(len(payload)))
	buf.Write(u64[:])
	buf.Write(payload)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes()
}

// parseEntry validates the structure and checksum of a file image and
// returns its version, key, and payload.
func parseEntry(data []byte) (version int, vkey string, payload []byte, err error) {
	if len(data) < entryHeader+8+entrySum {
		return 0, "", nil, fmt.Errorf("artifact: entry truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], entryMagic[:]) {
		return 0, "", nil, fmt.Errorf("artifact: bad magic")
	}
	body, sum := data[:len(data)-entrySum], data[len(data)-entrySum:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return 0, "", nil, fmt.Errorf("artifact: checksum mismatch")
	}
	version = int(binary.BigEndian.Uint32(data[4:8]))
	keyLen := int(binary.BigEndian.Uint32(data[8:12]))
	rest := body[entryHeader:]
	if keyLen < 0 || keyLen+8 > len(rest) {
		return 0, "", nil, fmt.Errorf("artifact: key length %d out of bounds", keyLen)
	}
	vkey = string(rest[:keyLen])
	rest = rest[keyLen:]
	payLen := binary.BigEndian.Uint64(rest[:8])
	if payLen != uint64(len(rest)-8) {
		return 0, "", nil, fmt.Errorf("artifact: payload length %d does not match body", payLen)
	}
	return version, vkey, rest[8:], nil
}

// writeEntry persists one entry crash-safely: full image to a temp file,
// fsync, rename into place, fsync the directory. When torn is set (fault
// injection) the image is cut mid-payload before writing, modeling a crash
// that made the rename durable but not the data pages; the resulting file
// fails its checksum on every future read. Returns the on-disk size.
func writeEntry(path string, version int, vkey string, payload []byte, torn bool) (int64, error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	img := encodeEntry(version, vkey, payload)
	if torn {
		img = img[:len(img)-entrySum-len(payload)/2-1]
	}
	tmp := path + tmpExt
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(dir)
	return int64(len(img)), nil
}

// readEntry loads and validates the entry at path, requiring the stored
// version and key to match what the index expects.
func readEntry(path string, wantVersion int, wantKey string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	version, vkey, payload, err := parseEntry(data)
	if err != nil {
		return nil, err
	}
	if version != wantVersion {
		return nil, fmt.Errorf("artifact: entry version %d, want %d", version, wantVersion)
	}
	if vkey != wantKey {
		return nil, fmt.Errorf("artifact: entry key mismatch")
	}
	return payload, nil
}

// scannedEntry pairs a validated entry with its file mtime for LRU seeding.
type scannedEntry struct {
	entry *diskEntry
	mtime time.Time
}

// scan is the startup integrity pass: it creates the store directory, walks
// every file a previous process left behind, deletes leftover temp files
// and every entry that is corrupt, stale-versioned, of an unknown class, or
// duplicated, and seeds the LRU from file mtimes so recency survives
// restarts.
func (s *Store) scan() error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("artifact: open %s: %w", s.dir, err)
	}
	var found []scannedEntry
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		switch {
		case strings.HasSuffix(path, tmpExt):
			s.log.Warn("artifact: removing leftover temp file", "path", path)
			removeFile(path)
			return nil
		case !strings.HasSuffix(path, entryExt):
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			s.log.Warn("artifact: scan cannot read entry", "path", path, "err", rerr)
			removeFile(path)
			s.ctr.CorruptDropped++
			return nil
		}
		version, vkey, _, perr := parseEntry(data)
		switch {
		case perr != nil:
			s.log.Warn("artifact: scan dropping corrupt entry", "path", path, "err", perr)
			removeFile(path)
			s.ctr.CorruptDropped++
		case version != s.version:
			removeFile(path)
			s.ctr.StaleDropped++
		case s.codecFor(callerKey(vkey)) == nil:
			removeFile(path)
			s.ctr.StaleDropped++
		default:
			found = append(found, scannedEntry{
				entry: &diskEntry{vkey: vkey, path: path, size: int64(len(data))},
				mtime: info.ModTime(),
			})
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("artifact: scan %s: %w", s.dir, err)
	}
	// Oldest first, so the newest entry ends up at the LRU front.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, se := range found {
		if s.disk[se.entry.vkey] != nil {
			removeFile(se.entry.path)
			s.ctr.StaleDropped++
			continue
		}
		se.entry.elem = s.lru.PushFront(se.entry)
		s.disk[se.entry.vkey] = se.entry
		s.bytes += se.entry.size
	}
	s.evictLocked(nil)
	return nil
}

// callerKey strips the "v<N>|" version stamp from a versioned key.
func callerKey(vkey string) string {
	if _, rest, ok := strings.Cut(vkey, "|"); ok {
		return rest
	}
	return vkey
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss;
// best-effort because some filesystems reject directory fsync.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// touchFile refreshes a file's mtime so LRU recency survives restarts;
// best-effort.
func touchFile(path string) {
	now := time.Now()
	os.Chtimes(path, now, now)
}

// removeFile deletes best-effort; a leftover file is re-dropped by the next
// integrity scan.
func removeFile(path string) {
	os.Remove(path)
}
