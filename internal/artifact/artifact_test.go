package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"octopocs/internal/faultinject"
)

func injector(t *testing.T, schedule string) *faultinject.Injector {
	t.Helper()
	sch, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", schedule, err)
	}
	return faultinject.New(sch)
}

// open opens a store over dir with a bytes codec for the jr class.
func open(t *testing.T, dir string, mod func(*Options)) *Store {
	t.Helper()
	opts := Options{Dir: dir, Codecs: map[string]Codec{"jr": BytesCodec{}}}
	if mod != nil {
		mod(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	s.Put("jr:abc", []byte("payload-1"))
	if v, ok := s.Get("jr:abc"); !ok || string(v.([]byte)) != "payload-1" {
		t.Fatalf("hot get = %v, %v", v, ok)
	}
	c := s.Counters()
	if c.HotHits != 1 || c.Writes != 1 {
		t.Fatalf("counters after hot hit: %+v", c)
	}
	s.Close()

	// A fresh store over the same directory serves the entry from disk.
	s2 := open(t, dir, nil)
	v, ok := s2.Get("jr:abc")
	if !ok || string(v.([]byte)) != "payload-1" {
		t.Fatalf("warm get = %v, %v", v, ok)
	}
	c = s2.Counters()
	if c.DiskHits != 1 || c.CorruptDropped != 0 {
		t.Fatalf("counters after warm get: %+v", c)
	}
	// Promoted to hot: second get must be a hot hit.
	if _, ok := s2.Get("jr:abc"); !ok {
		t.Fatal("promoted get missed")
	}
	if c = s2.Counters(); c.HotHits != 1 {
		t.Fatalf("promotion did not reach hot tier: %+v", c)
	}
}

func TestUnknownClassStaysMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	s.Put("zz:1", []byte("x"))
	if _, ok := s.Get("zz:1"); !ok {
		t.Fatal("hot get missed")
	}
	if c := s.Counters(); c.DiskEntries != 0 || c.Writes != 0 {
		t.Fatalf("unexpected disk activity: %+v", c)
	}
	s.Close()
	if _, ok := open(t, dir, nil).Get("zz:1"); ok {
		t.Fatal("memory-only entry survived restart")
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	s.Put("jr:v", []byte("old"))
	s.Close()
	s2 := open(t, dir, func(o *Options) { o.Version = StoreVersion + 1 })
	if _, ok := s2.Get("jr:v"); ok {
		t.Fatal("stale-version entry served")
	}
	if c := s2.Counters(); c.StaleDropped != 1 {
		t.Fatalf("stale entry not dropped at scan: %+v", c)
	}
}

// artFiles lists the .art files under dir.
func artFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, entryExt) {
			out = append(out, p)
		}
		return nil
	})
	return out
}

func TestScanDropsCorruptKeepsGood(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	s.Put("jr:good", []byte("keep me"))
	s.Put("jr:bad", []byte("corrupt me"))
	s.Close()

	// Flip a payload byte in one entry; its checksum no longer matches.
	var victim string
	for _, p := range artFiles(t, dir) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "corrupt me") {
			data[len(data)-entrySum-1] ^= 0xff
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			victim = p
		}
	}
	if victim == "" {
		t.Fatal("victim entry not found on disk")
	}

	s2 := open(t, dir, nil)
	if c := s2.Counters(); c.CorruptDropped != 1 || c.DiskEntries != 1 {
		t.Fatalf("scan counters: %+v", c)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not deleted: %v", err)
	}
	if v, ok := s2.Get("jr:good"); !ok || string(v.([]byte)) != "keep me" {
		t.Fatal("good entry lost")
	}
	if _, ok := s2.Get("jr:bad"); ok {
		t.Fatal("corrupt entry served")
	}
}

func TestScanRemovesLeftoverTemp(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(sub, "deadbeef"+entryExt+tmpExt)
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	open(t, dir, nil)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived scan: %v", err)
	}
}

func TestBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	payload := strings.Repeat("x", 256)
	s := open(t, dir, func(o *Options) {
		o.DiskBudget = 3 * (256 + entryOverhead("v1|jr:0"))
		o.HotEntries = -1 // force disk reads so recency is observable
	})
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("jr:%d", i), []byte(payload))
	}
	// Touch jr:0 so jr:1 is now least recently used.
	if _, ok := s.Get("jr:0"); !ok {
		t.Fatal("get jr:0 missed")
	}
	s.Put("jr:3", []byte(payload))
	c := s.Counters()
	if c.Evictions != 1 || c.DiskEntries != 3 {
		t.Fatalf("eviction counters: %+v", c)
	}
	if _, ok := s.Get("jr:1"); ok {
		t.Fatal("LRU entry jr:1 survived eviction")
	}
	for _, k := range []string{"jr:0", "jr:2", "jr:3"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("entry %s evicted out of LRU order", k)
		}
	}
	if c = s.Counters(); c.DiskBytes > s.budget {
		t.Fatalf("disk bytes %d exceed budget %d", c.DiskBytes, s.budget)
	}
}

func TestOversizedValueSkipsDisk(t *testing.T) {
	s := open(t, t.TempDir(), func(o *Options) { o.DiskBudget = 64 })
	s.Put("jr:big", []byte(strings.Repeat("x", 1024)))
	if c := s.Counters(); c.WriteSkips != 1 || c.Writes != 0 {
		t.Fatalf("oversized write not skipped: %+v", c)
	}
	if _, ok := s.Get("jr:big"); !ok {
		t.Fatal("oversized value lost from hot tier")
	}
}

func TestInjectedDiskFullSaturates(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, func(o *Options) {
		o.Faults = injector(t, "artifact.disk_full")
	})
	s.Put("jr:k", []byte("v"))
	if !s.Saturated() {
		t.Fatal("store not saturated after failed write")
	}
	c := s.Counters()
	if c.WriteErrors != 1 || c.Writes != 0 || c.DiskEntries != 0 {
		t.Fatalf("disk-full counters: %+v", c)
	}
	// The hot tier still serves the value: degradation, not data loss.
	if v, ok := s.Get("jr:k"); !ok || string(v.([]byte)) != "v" {
		t.Fatal("hot tier lost value under disk-full")
	}
	s.Close()
	if _, ok := open(t, dir, nil).Get("jr:k"); ok {
		t.Fatal("dropped write appeared on disk")
	}
}

func TestSaturationClearsOnSuccess(t *testing.T) {
	s := open(t, t.TempDir(), func(o *Options) {
		o.Faults = injector(t, "artifact.disk_full:nth=1")
	})
	s.Put("jr:a", []byte("v"))
	if !s.Saturated() {
		t.Fatal("not saturated after failure")
	}
	s.Put("jr:b", []byte("v"))
	if s.Saturated() {
		t.Fatal("still saturated after a successful write")
	}
}

func TestTornWriteDroppedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, func(o *Options) {
		o.Faults = injector(t, "artifact.torn_write")
	})
	s.Put("jr:torn", []byte("half of this payload will be missing"))
	// In-process, the hot tier masks the torn file entirely.
	if _, ok := s.Get("jr:torn"); !ok {
		t.Fatal("hot tier lost value under torn write")
	}
	s.Close()
	// After the "crash", the scan must detect and drop the torn entry.
	s2 := open(t, dir, nil)
	if c := s2.Counters(); c.CorruptDropped != 1 {
		t.Fatalf("torn entry not dropped at scan: %+v", c)
	}
	if _, ok := s2.Get("jr:torn"); ok {
		t.Fatal("torn entry served after reopen")
	}
	if files := artFiles(t, dir); len(files) != 0 {
		t.Fatalf("torn file left on disk: %v", files)
	}
}

func TestInjectedChecksumMismatchDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	s.Put("jr:k", []byte("v"))
	s.Close()
	s2 := open(t, dir, func(o *Options) {
		o.Faults = injector(t, "artifact.checksum")
	})
	if _, ok := s2.Get("jr:k"); ok {
		t.Fatal("checksum-faulted read served")
	}
	if c := s2.Counters(); c.CorruptDropped != 1 || c.Misses != 1 {
		t.Fatalf("checksum-fault counters: %+v", c)
	}
}

func TestDecodeErrorDropsEntry(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, nil)
	s.Put("jr:k", []byte("v"))
	s.Close()
	// Reopen with a codec that rejects every payload.
	s2 := open(t, dir, func(o *Options) {
		o.Codecs = map[string]Codec{"jr": failCodec{}}
	})
	if _, ok := s2.Get("jr:k"); ok {
		t.Fatal("undecodable entry served")
	}
	if c := s2.Counters(); c.DecodeErrors != 1 || c.DiskEntries != 0 {
		t.Fatalf("decode-error counters: %+v", c)
	}
}

type failCodec struct{}

func (failCodec) Encode(any) ([]byte, error) { return nil, fmt.Errorf("nope") }
func (failCodec) Decode([]byte) (any, error) { return nil, fmt.Errorf("nope") }

func TestLenCountsBothTiers(t *testing.T) {
	s := open(t, t.TempDir(), nil)
	s.Put("jr:disk", []byte("v")) // hot + disk
	s.Put("zz:mem", []byte("v"))  // hot only
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

func TestClosedStoreDegrades(t *testing.T) {
	s := open(t, t.TempDir(), nil)
	s.Put("jr:k", []byte("v"))
	s.Close()
	if _, ok := s.Get("jr:k"); ok {
		t.Fatal("closed store served a value")
	}
	s.Put("jr:late", []byte("v"))
	if c := s.Counters(); c.Writes != 1 {
		t.Fatalf("closed store accepted a write: %+v", c)
	}
}

func TestHotEvictionBounded(t *testing.T) {
	s := open(t, t.TempDir(), func(o *Options) { o.HotEntries = 2 })
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("zz:%d", i), i)
	}
	c := s.Counters()
	if c.HotEntries != 2 || c.HotEvictions != 3 {
		t.Fatalf("hot tier counters: %+v", c)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open accepted empty dir")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := open(t, t.TempDir(), nil)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("jr:%d", i%10)
				s.Put(key, []byte(fmt.Sprintf("v%d", g)))
				s.Get(key)
				s.Len()
				s.Counters()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
