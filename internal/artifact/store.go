package artifact

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"octopocs/internal/faultinject"
	"octopocs/internal/telemetry"
)

// Store is a two-tier artifact store: a bounded in-memory hot tier holding
// decoded values over a checksummed, budget-bounded disk tier holding
// encoded payloads. It implements the service cache contract (Get/Put/Len)
// so it can sit behind the existing p1:/p2:/ps:/jr: keys unchanged.
type Store struct {
	dir     string
	version int
	codecs  map[string]Codec
	budget  int64
	hold    time.Duration
	faults  *faultinject.Injector
	log     *slog.Logger

	mu      sync.Mutex
	closed  bool
	hot     *hotLRU
	disk    map[string]*diskEntry // versioned key → entry
	lru     *list.List            // *diskEntry, front = most recently used
	bytes   int64
	lastErr time.Time // zero when the last write succeeded
	ctr     Counters
}

// diskEntry indexes one on-disk artifact file.
type diskEntry struct {
	vkey string
	path string
	size int64
	elem *list.Element
}

// Open creates or reopens the store rooted at opts.Dir, running the
// integrity scan over any entries a previous process left behind. Corrupt,
// torn, stale-version, and unknown-class files are deleted (and counted);
// everything else becomes immediately servable.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("artifact: open: empty directory")
	}
	s := &Store{
		dir:     opts.Dir,
		version: opts.Version,
		codecs:  opts.Codecs,
		budget:  opts.DiskBudget,
		hold:    opts.SaturationHold,
		faults:  opts.Faults,
		log:     opts.Logger,
		disk:    make(map[string]*diskEntry),
		lru:     list.New(),
	}
	if s.version == 0 {
		s.version = StoreVersion
	}
	if s.budget == 0 {
		s.budget = DefaultDiskBudget
	}
	if s.hold == 0 {
		s.hold = DefaultSaturationHold
	}
	if s.log == nil {
		s.log = telemetry.DiscardLogger()
	}
	hot := opts.HotEntries
	if hot == 0 {
		hot = DefaultHotEntries
	}
	if hot > 0 {
		s.hot = newHotLRU(hot)
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// versionedKey stamps the store version into a caller key; this is the only
// form that ever addresses disk.
func (s *Store) versionedKey(key string) string {
	return fmt.Sprintf("v%d|%s", s.version, key)
}

// codecFor returns the codec of a caller key's class (the prefix before the
// first ':'), or nil when the class is hot-tier-only.
func (s *Store) codecFor(key string) Codec {
	class, _, ok := strings.Cut(key, ":")
	if !ok {
		return nil
	}
	return s.codecs[class]
}

// Get returns the artifact stored under key: from the hot tier when
// resident, otherwise verified, decoded, and promoted from disk. Any disk
// or decode failure drops the entry and degrades to a miss.
func (s *Store) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.ctr.Misses++
		return nil, false
	}
	if s.hot != nil {
		if v, ok := s.hot.get(key); ok {
			s.ctr.HotHits++
			if e := s.disk[s.versionedKey(key)]; e != nil {
				s.touchLocked(e)
			}
			return v, true
		}
	}
	e := s.disk[s.versionedKey(key)]
	if e == nil {
		s.ctr.Misses++
		return nil, false
	}
	if s.faults.Fire(faultinject.ArtifactChecksum) {
		s.log.Warn("artifact: injected checksum mismatch", "key", key)
		s.dropLocked(e, &s.ctr.CorruptDropped)
		s.ctr.Misses++
		return nil, false
	}
	payload, err := readEntry(e.path, s.version, e.vkey)
	if err != nil {
		s.log.Warn("artifact: dropping unreadable entry", "key", key, "err", err)
		s.dropLocked(e, &s.ctr.CorruptDropped)
		s.ctr.Misses++
		return nil, false
	}
	codec := s.codecFor(key)
	if codec == nil {
		// The class lost its codec since the entry was indexed; cannot
		// decode, treat as stale.
		s.dropLocked(e, &s.ctr.StaleDropped)
		s.ctr.Misses++
		return nil, false
	}
	v, err := codec.Decode(payload)
	if err != nil {
		s.log.Warn("artifact: dropping undecodable entry", "key", key, "err", err)
		s.dropLocked(e, &s.ctr.DecodeErrors)
		s.ctr.Misses++
		return nil, false
	}
	s.ctr.DiskHits++
	s.touchLocked(e)
	if s.hot != nil {
		s.ctr.HotEvictions += s.hot.put(key, v)
	}
	return v, true
}

// Put stores an artifact under key in the hot tier and, when the key's
// class has a codec, persists it to disk. Encode or write failures keep the
// hot copy and mark the store saturated; they never surface to the caller
// because a lost persist only costs a future recompute.
func (s *Store) Put(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if s.hot != nil {
		s.ctr.HotEvictions += s.hot.put(key, v)
	}
	codec := s.codecFor(key)
	if codec == nil {
		return
	}
	payload, err := codec.Encode(v)
	if err != nil {
		s.log.Warn("artifact: encode failed, entry stays memory-only", "key", key, "err", err)
		s.ctr.WriteErrors++
		return
	}
	s.writeLocked(key, payload)
}

// writeLocked persists one encoded payload and settles budget accounting.
func (s *Store) writeLocked(key string, payload []byte) {
	vkey := s.versionedKey(key)
	if int64(len(payload))+entryOverhead(vkey) > s.budget {
		s.ctr.WriteSkips++
		return
	}
	if s.faults.Fire(faultinject.ArtifactDiskFull) {
		s.log.Warn("artifact: injected disk-full, write dropped", "key", key)
		s.failWriteLocked()
		return
	}
	torn := s.faults.Fire(faultinject.ArtifactTornWrite)
	path := s.entryPath(vkey)
	size, err := writeEntry(path, s.version, vkey, payload, torn)
	if err != nil {
		s.log.Warn("artifact: disk write failed", "key", key, "err", err)
		s.failWriteLocked()
		return
	}
	if torn {
		s.log.Warn("artifact: injected torn write, entry is corrupt on disk", "key", key)
	}
	if old := s.disk[vkey]; old != nil {
		s.bytes -= old.size
		s.lru.Remove(old.elem)
	}
	e := &diskEntry{vkey: vkey, path: path, size: size}
	e.elem = s.lru.PushFront(e)
	s.disk[vkey] = e
	s.bytes += size
	s.ctr.Writes++
	s.lastErr = time.Time{}
	s.evictLocked(e)
}

// failWriteLocked records a failed persist and opens the saturation window.
func (s *Store) failWriteLocked() {
	s.ctr.WriteErrors++
	s.lastErr = time.Now()
}

// evictLocked removes least-recently-used entries (sparing keep) until the
// disk tier fits its budget.
func (s *Store) evictLocked(keep *diskEntry) {
	for s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*diskEntry)
		if e == keep {
			return
		}
		s.dropLocked(e, &s.ctr.Evictions)
	}
}

// touchLocked marks e most recently used and refreshes its on-disk mtime so
// recency survives a restart (best-effort).
func (s *Store) touchLocked(e *diskEntry) {
	s.lru.MoveToFront(e.elem)
	touchFile(e.path)
}

// dropLocked removes e from the index and from disk, bumping counter.
func (s *Store) dropLocked(e *diskEntry, counter *uint64) {
	delete(s.disk, e.vkey)
	s.lru.Remove(e.elem)
	s.bytes -= e.size
	removeFile(e.path)
	*counter++
}

// Len reports the number of distinct keys resident in either tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.disk)
	if s.hot != nil {
		for _, k := range s.hot.keys() {
			if _, ok := s.disk[s.versionedKey(k)]; !ok {
				n++
			}
		}
	}
	return n
}

// Saturated reports whether the most recent disk write failed within the
// saturation hold window; admission control uses it to shed load before the
// queue does.
func (s *Store) Saturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.lastErr.IsZero() && time.Since(s.lastErr) < s.hold
}

// Counters snapshots the store's accounting.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.ctr
	c.DiskBytes = s.bytes
	c.DiskEntries = len(s.disk)
	if s.hot != nil {
		c.HotEntries = s.hot.len()
	}
	return c
}

// Close marks the store closed; subsequent Gets miss and Puts drop. All
// writes are synchronous, so there is nothing to flush.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// hotLRU is the in-memory decoded-value tier.
type hotLRU struct {
	cap   int
	items map[string]*list.Element
	order *list.List // *hotItem, front = most recently used
}

type hotItem struct {
	key string
	val any
}

func newHotLRU(capacity int) *hotLRU {
	return &hotLRU{cap: capacity, items: make(map[string]*list.Element), order: list.New()}
}

func (h *hotLRU) get(key string) (any, bool) {
	el, ok := h.items[key]
	if !ok {
		return nil, false
	}
	h.order.MoveToFront(el)
	return el.Value.(*hotItem).val, true
}

// put inserts or refreshes key and returns how many entries were evicted.
func (h *hotLRU) put(key string, v any) uint64 {
	if el, ok := h.items[key]; ok {
		el.Value.(*hotItem).val = v
		h.order.MoveToFront(el)
		return 0
	}
	h.items[key] = h.order.PushFront(&hotItem{key: key, val: v})
	var evicted uint64
	for h.order.Len() > h.cap {
		back := h.order.Back()
		delete(h.items, back.Value.(*hotItem).key)
		h.order.Remove(back)
		evicted++
	}
	return evicted
}

func (h *hotLRU) len() int { return h.order.Len() }

func (h *hotLRU) keys() []string {
	out := make([]string, 0, len(h.items))
	for k := range h.items {
		out = append(out, k)
	}
	return out
}

// entryPath maps a versioned key to its file path: sha256 content address
// with a two-hex-digit fanout directory.
func (s *Store) entryPath(vkey string) string {
	sum := sha256.Sum256([]byte(vkey))
	name := hex.EncodeToString(sum[:])
	return s.dir + "/" + name[:2] + "/" + name + entryExt
}
