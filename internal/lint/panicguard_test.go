package lint

import (
	"strings"
	"testing"
)

// TestPanicGuardFlagsUnguarded checks the core finding: a goroutine without
// a deferred recover anywhere in its transitive same-package closure is
// flagged, for both the literal and named-function launch forms.
func TestPanicGuardFlagsUnguarded(t *testing.T) {
	cases := map[string]string{
		"literal": `package p
func launch() {
	go func() {
		work()
	}()
}
func work() {}
`,
		"named": `package p
func launch() {
	go worker()
}
func worker() {
	work()
}
func work() {}
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			diags := runFixture(t, "octopocs/internal/service", src, []*Analyzer{PanicGuard})
			if len(diags) != 1 {
				t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
			}
			if !strings.Contains(diags[0].Message, "recover") {
				t.Errorf("unexpected diagnostic: %v", diags[0])
			}
		})
	}
}

// TestPanicGuardAcceptsBoundaries checks each accepted containment idiom:
// an inline deferred recover, a recover reached through a helper the
// goroutine calls (the frontier's loop -> runNode shape), and a deferred
// named method that recovers (the service's recoverToLog shape).
func TestPanicGuardAcceptsBoundaries(t *testing.T) {
	cases := map[string]string{
		"inline": `package p
func launch() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				report(r)
			}
		}()
		work()
	}()
}
func work()          {}
func report(r any)   {}
`,
		"through helper": `package p
func launch() {
	go func() {
		loop()
	}()
}
func loop() {
	for i := 0; i < 10; i++ {
		runOne()
	}
}
func runOne() {
	defer func() {
		if r := recover(); r != nil {
			report(r)
		}
	}()
	work()
}
func work()        {}
func report(r any) {}
`,
		"deferred named func": `package p
func launch() {
	go func() {
		defer recoverToLog()
		work()
	}()
}
func recoverToLog() {
	if r := recover(); r != nil {
		report(r)
	}
}
func work()        {}
func report(r any) {}
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if diags := runFixture(t, "octopocs/internal/symex", src, []*Analyzer{PanicGuard}); len(diags) != 0 {
				t.Errorf("got diagnostics, want none: %v", diags)
			}
		})
	}
}

// TestPanicGuardScope checks goroutines outside the audited packages are
// left alone, and that an unresolvable goroutine target is flagged as
// unauditable.
func TestPanicGuardScope(t *testing.T) {
	unguarded := `package p
func launch() {
	go func() {
		work()
	}()
}
func work() {}
`
	if diags := runFixture(t, "octopocs/internal/corpus", unguarded, []*Analyzer{PanicGuard}); len(diags) != 0 {
		t.Errorf("out-of-scope package flagged: %v", diags)
	}
	unresolvable := `package p
func launch(f func()) {
	go f()
}
`
	diags := runFixture(t, "octopocs/internal/service", unresolvable, []*Analyzer{PanicGuard})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unresolvable") {
		t.Errorf("got %v, want one unresolvable-target diagnostic", diags)
	}
}
