package lint

import (
	"regexp"
	"strings"
)

// phaseRef matches a reference to a paper phase: "P1".."P4", including
// compounds like "P1–P4" or "P3.3". Kept in sync with internal/doccheck,
// which enforces the same contract as a plain test.
var phaseRef = regexp.MustCompile(`\bP[1-4]\b`)

// concurrencyRef matches the "Concurrency:" contract paragraph marker.
var concurrencyRef = regexp.MustCompile(`(?m)^Concurrency:`)

// PhaseDoc enforces the engine room's documentation contract: every
// internal package carries a package doc comment that (a) maps the package
// to the paper phase(s) P1–P4 it serves and (b) states its concurrency
// contract behind a "Concurrency:" marker. Command packages (package main)
// and packages outside internal/ are exempt.
var PhaseDoc = &Analyzer{
	Name: "phasedoc",
	Doc: "check that internal packages document their paper phase (P1–P4) " +
		"and a Concurrency: contract",
	Run: runPhaseDoc,
}

func runPhaseDoc(pass *Pass) error {
	if !strings.Contains(pass.ImportPath, "internal/") {
		return nil
	}
	if len(pass.Files) == 0 || pass.Files[0].Name.Name == "main" ||
		strings.HasSuffix(pass.Files[0].Name.Name, "_test") {
		return nil
	}
	// The package doc is the longest package comment across files, matching
	// the convention of a dedicated doc-bearing file.
	var doc string
	docAt := pass.Files[0].Package
	for _, f := range pass.Files {
		if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
			doc = f.Doc.Text()
			docAt = f.Package
		}
	}
	if doc == "" {
		pass.Reportf(docAt, "package %s has no package doc comment", pass.Files[0].Name.Name)
		return nil
	}
	if !phaseRef.MatchString(doc) {
		pass.Reportf(docAt, "package doc does not reference a paper phase (P1–P4)")
	}
	if !concurrencyRef.MatchString(doc) {
		pass.Reportf(docAt, "package doc has no \"Concurrency:\" contract paragraph")
	}
	return nil
}
