package lint

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestOpClassFlagsPartialSwitch checks the core finding: a switch over an
// ISA family that misses constants and has no default clause is flagged,
// naming the missing members.
func TestOpClassFlagsPartialSwitch(t *testing.T) {
	src := `package p
import "octopocs/internal/isa"
func f(op isa.BinOp) int {
	switch op {
	case isa.Add:
		return 1
	case isa.Sub:
		return 2
	}
	return 0
}
`
	diags := runFixture(t, "octopocs/internal/vm", src, []*Analyzer{OpClass})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "isa.BinOp") || !strings.Contains(msg, "Shl") {
		t.Errorf("diagnostic does not name the family and missing members: %s", msg)
	}
}

// TestOpClassAcceptsDefaultAndExhaustive checks the two compliant shapes:
// an explicit default clause, and full coverage of the family.
func TestOpClassAcceptsDefaultAndExhaustive(t *testing.T) {
	withDefault := `package p
import "octopocs/internal/isa"
func f(op isa.CmpOp) int {
	switch op {
	case isa.Eq:
		return 1
	default:
		return 0
	}
}
`
	exhaustive := `package p
import "octopocs/internal/isa"
func f(op isa.CmpOp) int {
	switch op {
	case isa.Eq, isa.Ne, isa.Lt, isa.Le:
		return 1
	case isa.Gt, isa.Ge, isa.SLt, isa.SLe:
		return 2
	}
	return 0
}
`
	for name, src := range map[string]string{"default": withDefault, "exhaustive": exhaustive} {
		if diags := runFixture(t, "octopocs/internal/symex", src, []*Analyzer{OpClass}); len(diags) != 0 {
			t.Errorf("%s: got diagnostics, want none: %v", name, diags)
		}
	}
}

// TestOpClassScope checks that non-ISA switches and out-of-scope packages
// are left alone.
func TestOpClassScope(t *testing.T) {
	partial := `package p
import "octopocs/internal/isa"
func f(op isa.Op) int {
	switch op {
	case isa.OpJmp:
		return 1
	}
	return 0
}
`
	if diags := runFixture(t, "octopocs/internal/corpus", partial, []*Analyzer{OpClass}); len(diags) != 0 {
		t.Errorf("out-of-scope package flagged: %v", diags)
	}
	nonISA := `package p
func f(x int) int {
	switch x {
	case 1:
		return 1
	}
	return 0
}
`
	if diags := runFixture(t, "octopocs/internal/vm", nonISA, []*Analyzer{OpClass}); len(diags) != 0 {
		t.Errorf("non-ISA switch flagged: %v", diags)
	}
}

// TestOpClassFamiliesMatchISA cross-checks the hardcoded family lists
// against the real internal/isa declarations, so adding an opcode without
// updating the analyzer fails here instead of silently weakening the lint.
func TestOpClassFamiliesMatchISA(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	isaDir := filepath.Join(filepath.Dir(filepath.Dir(self)), "isa")
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, isaDir, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", isaDir, err)
	}
	declared := map[string]bool{}
	for _, pkg := range pkgs {
		if pkg.Name != "isa" {
			continue
		}
		for _, f := range pkg.Files {
			for name := range f.Scope.Objects {
				declared[name] = true
			}
		}
	}
	for fam, members := range opClassFamilies {
		for _, name := range members {
			if !declared[name] {
				t.Errorf("%s member %s is not declared in internal/isa", fam, name)
			}
		}
	}
	// The reverse direction: every isa constant that looks like a family
	// member (matches the naming scheme) must be in a list. Op*/Sys* prefixes
	// identify those families; BinOp and CmpOp members have no prefix, so
	// they are covered by the forward check plus the exhaustiveness of the
	// iota blocks (a new member shifts no existing value).
	for name := range declared {
		if strings.HasPrefix(name, "Op") && name != "Op" && !strings.HasPrefix(name, "Opt") {
			if opClassMember[name] != "isa.Op" {
				t.Errorf("isa.%s looks like an Op constant but is not in the opclass family list", name)
			}
		}
		if strings.HasPrefix(name, "Sys") && name != "Sys" {
			if opClassMember[name] != "isa.Sys" {
				t.Errorf("isa.%s looks like a Sys constant but is not in the opclass family list", name)
			}
		}
	}
}
