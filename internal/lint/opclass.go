package lint

import (
	"go/ast"
	"strings"
)

// opClassScope names the interpreter-shaped packages whose ISA switches
// OpClass audits: the ones that give every opcode a meaning (the concrete
// VM, the symbolic executor) or a transfer function (constant propagation,
// abstract interpretation).
var opClassScope = []string{"internal/absint", "internal/mirstatic", "internal/vm", "internal/symex"}

// opClassFamilies hardcodes the ISA constant families by name. The analyzer
// is purely syntactic (no go/types), so membership is decided by the
// selector `isa.<Name>`; the lists must be kept in sync with internal/isa,
// which the opclass test cross-checks against the real package.
var opClassFamilies = map[string][]string{
	"isa.Op": {
		"OpConst", "OpMov", "OpBin", "OpBinImm", "OpCmp", "OpCmpImm",
		"OpLoad", "OpStore", "OpJmp", "OpBr", "OpCall", "OpCallInd",
		"OpRet", "OpSyscall", "OpTrap",
	},
	"isa.BinOp": {
		"Add", "Sub", "Mul", "Div", "Mod", "And", "Or", "Xor", "Shl", "Shr",
	},
	"isa.CmpOp": {
		"Eq", "Ne", "Lt", "Le", "Gt", "Ge", "SLt", "SLe",
	},
	"isa.Sys": {
		"SysOpen", "SysRead", "SysSeek", "SysTell", "SysSize", "SysMMap",
		"SysAlloc", "SysFree", "SysWrite", "SysExit", "SysArgRead", "SysArgLen",
	},
}

// opClassMember maps each constant name to its family. Built once; the
// four families have disjoint member names.
var opClassMember = func() map[string]string {
	m := make(map[string]string)
	for fam, members := range opClassFamilies {
		for _, name := range members {
			m[name] = fam
		}
	}
	return m
}()

// OpClass checks that every switch over an ISA opcode family in the
// interpreter-shaped packages is either exhaustive over that family or
// carries an explicit default clause. A new opcode added to internal/isa
// then fails the lint in every transfer function that silently ignores it,
// instead of miscomputing — the abstract interpreter must widen to ⊤, the
// VM must trap, the symbolic executor must concretize. The check is
// syntactic: a switch participates when one of its case expressions is a
// selector constant `isa.<Name>` from a known family.
var OpClass = &Analyzer{
	Name: "opclass",
	Doc: "check that switches over ISA opcode families (isa.Op, isa.BinOp, " +
		"isa.CmpOp, isa.Sys) are exhaustive or carry an explicit default clause",
	Run: runOpClass,
}

func runOpClass(pass *Pass) error {
	inScope := false
	for _, s := range opClassScope {
		if strings.HasSuffix(pass.ImportPath, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			family := ""
			covered := map[string]bool{}
			hasDefault := false
			for _, c := range sw.Body.List {
				cc := c.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if name, ok := isaSelector(e); ok {
						if fam, known := opClassMember[name]; known {
							family = fam
							covered[name] = true
						}
					}
				}
			}
			if family == "" || hasDefault {
				return true
			}
			var missing []string
			for _, name := range opClassFamilies[family] {
				if !covered[name] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Switch, "switch over %s covers %d of %d constants and has no default clause (missing: %s)",
					family, len(covered), len(opClassFamilies[family]), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// isaSelector matches the expression form `isa.<Name>` and returns the
// constant name.
func isaSelector(e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "isa" {
		return "", false
	}
	return sel.Sel.Name, true
}
