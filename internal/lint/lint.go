// Package lint is the repository's source-hygiene suite: a small,
// dependency-free analyzer framework plus the project's analyzers.
// PhaseDoc enforces the documentation contract of the engine room — every
// internal package must map itself to the paper phases P1–P4 and state its
// concurrency contract — CtxLoop guards the runtime packages against
// goroutine loops that can neither be cancelled nor woken, PanicGuard
// requires every launched goroutine to sit behind a recover boundary,
// JournalDoc keeps the provenance journal's event schema closed: every
// emitted event type must be an Ev* constant with a registry entry, and
// OpClass requires every switch over an ISA opcode family in the
// interpreter-shaped packages to be exhaustive or carry an explicit default
// clause. The suite runs three ways: as the doccheck test, as `go vet
// -vettool=octolint` in CI, and directly via RunDir in tests.
//
// Concurrency: analyses are read-only over parsed ASTs and keep no shared
// state; any number of Run calls may execute concurrently as long as each
// Pass value is confined to one goroutine.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned in the source tree.
type Diagnostic struct {
	Pos      token.Position // file:line:col of the offending node
	Analyzer string         // analyzer that produced the finding
	Message  string         // human-readable description
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one package: the parsed files plus enough
// identity (import path) for analyzers to scope themselves. Report appends
// findings; a Pass must not be shared across goroutines.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	ImportPath string

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// An Analyzer is one named check over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All is the suite: every analyzer octolint and the tests run.
var All = []*Analyzer{PhaseDoc, CtxLoop, PanicGuard, JournalDoc, OpClass}

// RunFiles runs the analyzers over an already-parsed package and returns
// the findings sorted by position.
func RunFiles(fset *token.FileSet, files []*ast.File, importPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Files: files, ImportPath: importPath, analyzer: a.Name, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunDir parses the non-test Go files of one directory and runs the
// analyzers over them. Test files (_test.go) are excluded: the contracts
// the suite enforces are about shipped code.
func RunDir(dir, importPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return RunFiles(fset, files, importPath, analyzers)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
