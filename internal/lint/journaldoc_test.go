package lint

import (
	"strings"
	"testing"
)

// TestJournalDocSchemaBijection checks the intra-journal-package rule: the
// Ev* constants of type Type and the registry literal's keys must coincide
// exactly, in both directions.
func TestJournalDocSchemaBijection(t *testing.T) {
	clean := `package journal
type Type string
type Spec struct{ Det bool }
const (
	EvAlpha Type = "alpha"
	EvBeta  Type = "beta"
)
var registry = map[Type]Spec{
	EvAlpha: {Det: true},
	EvBeta:  {},
}
`
	if diags := runFixture(t, "octopocs/internal/journal", clean, []*Analyzer{JournalDoc}); len(diags) != 0 {
		t.Errorf("clean schema flagged: %v", diags)
	}

	missingEntry := `package journal
type Type string
type Spec struct{ Det bool }
const (
	EvAlpha Type = "alpha"
	EvBeta  Type = "beta"
)
var registry = map[Type]Spec{
	EvAlpha: {Det: true},
}
`
	diags := runFixture(t, "octopocs/internal/journal", missingEntry, []*Analyzer{JournalDoc})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "EvBeta") ||
		!strings.Contains(diags[0].Message, "no schema registry entry") {
		t.Errorf("missing registry entry: got %v", diags)
	}

	strayKey := `package journal
type Type string
type Spec struct{ Det bool }
const (
	EvAlpha Type = "alpha"
)
var registry = map[Type]Spec{
	EvAlpha: {Det: true},
	EvGhost: {},
}
var EvGhost Type = "ghost"
`
	diags = runFixture(t, "octopocs/internal/journal", strayKey, []*Analyzer{JournalDoc})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "EvGhost") ||
		!strings.Contains(diags[0].Message, "not a declared Ev* event type") {
		t.Errorf("stray registry key: got %v", diags)
	}
}

// TestJournalDocEmitters checks the cross-package rule: Emit/EmitFinal
// calls must name their event type as a journal.Ev* selector, honoring a
// renamed import, and packages that never import the journal are ignored.
func TestJournalDocEmitters(t *testing.T) {
	clean := `package p
import "octopocs/internal/journal"
func f(rec *journal.Recorder) {
	rec.Emit(journal.EvAlpha, nil)
	rec.EmitFinal(journal.EvBeta, nil)
}
`
	if diags := runFixture(t, "octopocs/internal/core", clean, []*Analyzer{JournalDoc}); len(diags) != 0 {
		t.Errorf("clean emitter flagged: %v", diags)
	}

	renamed := `package p
import jr "octopocs/internal/journal"
func f(rec *jr.Recorder) {
	rec.Emit(jr.EvAlpha, nil)
}
`
	if diags := runFixture(t, "octopocs/internal/core", renamed, []*Analyzer{JournalDoc}); len(diags) != 0 {
		t.Errorf("renamed import flagged: %v", diags)
	}

	literal := `package p
import "octopocs/internal/journal"
func f(rec *journal.Recorder) {
	rec.Emit("ad.hoc", nil)
}
`
	diags := runFixture(t, "octopocs/internal/core", literal, []*Analyzer{JournalDoc})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "Ev*") {
		t.Errorf("string-literal event type: got %v", diags)
	}

	foreign := `package p
import (
	"octopocs/internal/journal"
	"octopocs/internal/other"
)
func f(rec *journal.Recorder) {
	rec.Emit(other.EvSomething, nil)
}
`
	diags = runFixture(t, "octopocs/internal/core", foreign, []*Analyzer{JournalDoc})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "other.EvSomething") {
		t.Errorf("foreign selector event type: got %v", diags)
	}

	// A package that does not import the journal can define its own Emit
	// with unrelated arguments; journaldoc must not touch it.
	unrelated := `package p
type bus struct{}
func (bus) Emit(topic string, payload any) {}
func f(b bus) { b.Emit("metrics", 1) }
`
	if diags := runFixture(t, "octopocs/internal/corpus", unrelated, []*Analyzer{JournalDoc}); len(diags) != 0 {
		t.Errorf("non-journal Emit flagged: %v", diags)
	}
}

// TestJournalDocRealSchema runs the analyzer over the shipped journal
// package itself — the live schema must satisfy its own contract.
func TestJournalDocRealSchema(t *testing.T) {
	diags, err := RunDir("../journal", "octopocs/internal/journal", []*Analyzer{JournalDoc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("shipped journal schema has findings: %v", diags)
	}
}
