package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// parseSrc parses one fixture file and wraps it for RunFiles.
func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return fset, []*ast.File{f}
}

func runFixture(t *testing.T, importPath, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset, files := parseSrc(t, src)
	diags, err := RunFiles(fset, files, importPath, analyzers)
	if err != nil {
		t.Fatalf("RunFiles: %v", err)
	}
	return diags
}

// TestCtxLoopFlagsBusyLoop checks the core finding: a goroutine spinning on
// work with no cancellation point is flagged, whether the loop sits in the
// launched literal or in a function the goroutine reaches transitively.
func TestCtxLoopFlagsBusyLoop(t *testing.T) {
	src := `package p

func spin() {
	for {
		work()
	}
}

func work() {}

func launch() {
	go func() {
		spin()
	}()
}
`
	diags := runFixture(t, "octopocs/internal/symex", src, []*Analyzer{CtxLoop})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 4 || !strings.Contains(diags[0].Message, "no cancellation point") {
		t.Errorf("unexpected diagnostic: %v", diags[0])
	}
}

// TestCtxLoopAcceptsCancellation checks each accepted cancellation idiom
// silences the analyzer: ctx.Err, a Stop-channel select (even reached
// through a helper), a channel receive, and a cond wait.
func TestCtxLoopAcceptsCancellation(t *testing.T) {
	cases := map[string]string{
		"ctx.Err": `package p
import "context"
func launch(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
		}
	}()
}
`,
		"select through helper": `package p
func stopHit(stop chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}
func launch(stop chan struct{}) {
	go func() {
		for {
			if stopHit(stop) {
				return
			}
		}
	}()
}
`,
		"receive": `package p
func launch(ch chan int) {
	go func() {
		for {
			if <-ch == 0 {
				return
			}
		}
	}()
}
`,
		"cond wait": `package p
import "sync"
func launch(c *sync.Cond, done *bool) {
	go func() {
		for !*done {
			c.Wait()
		}
	}()
}
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if diags := runFixture(t, "octopocs/internal/service", src, []*Analyzer{CtxLoop}); len(diags) != 0 {
				t.Errorf("got diagnostics, want none: %v", diags)
			}
		})
	}
}

// TestCtxLoopScope checks loops outside the audited packages and loops
// outside any goroutine are left alone, and that bounded loop forms are
// exempt even inside goroutines.
func TestCtxLoopScope(t *testing.T) {
	busy := `package p
func launch() {
	go func() {
		for {
		}
	}()
}
`
	if diags := runFixture(t, "octopocs/internal/corpus", busy, []*Analyzer{CtxLoop}); len(diags) != 0 {
		t.Errorf("out-of-scope package flagged: %v", diags)
	}
	noGoroutine := `package p
func mainLoop() {
	for {
		work()
	}
}
func work() {}
`
	if diags := runFixture(t, "octopocs/internal/core", noGoroutine, []*Analyzer{CtxLoop}); len(diags) != 0 {
		t.Errorf("non-goroutine loop flagged: %v", diags)
	}
	bounded := `package p
func launch(jobs chan int) {
	go func() {
		for range jobs {
		}
		for i := 0; i < 10; i++ {
		}
	}()
}
`
	if diags := runFixture(t, "octopocs/internal/core", bounded, []*Analyzer{CtxLoop}); len(diags) != 0 {
		t.Errorf("bounded loops flagged: %v", diags)
	}
}

// TestPhaseDocFixtures checks the three documentation findings and the two
// exemptions (package main, non-internal import path).
func TestPhaseDocFixtures(t *testing.T) {
	undocumented := `package p
func F() {}
`
	noPhase := `// Package p does things.
//
// Concurrency: safe.
package p
`
	noConcurrency := `// Package p implements P2.
package p
`
	good := `// Package p implements the P2 symbolic-execution search.
//
// Concurrency: safe for concurrent use.
package p
`
	for name, tc := range map[string]struct {
		src  string
		path string
		want int
	}{
		"undocumented":   {undocumented, "octopocs/internal/p", 1},
		"no phase":       {noPhase, "octopocs/internal/p", 1},
		"no concurrency": {noConcurrency, "octopocs/internal/p", 1},
		"good":           {good, "octopocs/internal/p", 0},
		"not internal":   {undocumented, "octopocs/cmd/p", 0},
	} {
		t.Run(name, func(t *testing.T) {
			diags := runFixture(t, tc.path, tc.src, []*Analyzer{PhaseDoc})
			if len(diags) != tc.want {
				t.Errorf("got %d diagnostics, want %d: %v", len(diags), tc.want, diags)
			}
		})
	}
	mainPkg := `package main
func main() {}
`
	if diags := runFixture(t, "octopocs/internal/tool", mainPkg, []*Analyzer{PhaseDoc}); len(diags) != 0 {
		t.Errorf("package main flagged: %v", diags)
	}
}

// TestRepoIsClean runs the whole suite over every internal package: the
// shipped tree must produce zero findings, so a regression in either
// contract fails this test even before CI's vettool step runs.
func TestRepoIsClean(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	internal := filepath.Dir(filepath.Dir(self))
	entries, err := os.ReadDir(internal)
	if err != nil {
		t.Fatalf("read %s: %v", internal, err)
	}
	checked := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(internal, e.Name())
		diags, err := RunDir(dir, "octopocs/internal/"+e.Name(), All)
		if err != nil {
			t.Fatalf("RunDir %s: %v", dir, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
		checked++
	}
	if checked < 15 {
		t.Fatalf("only %d internal packages found; expected the full engine room", checked)
	}
}
