package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// journalImportPath identifies the journal package in import declarations.
const journalImportPath = "octopocs/internal/journal"

// JournalDoc enforces the journal schema contract in both directions.
// Inside internal/journal it requires the Ev* event-type constants and the
// keys of the schema registry literal to coincide exactly — an event type
// without a registry entry would silently default to nondeterministic and
// vanish from the explain rendering. In every other package it requires the
// first argument of each Emit/EmitFinal call to be a journal.Ev* selector:
// a string literal or a computed value would bypass the schema entirely,
// producing events no rendering or determinism contract covers.
var JournalDoc = &Analyzer{
	Name: "journaldoc",
	Doc: "check that every emitted journal event type is an Ev* constant " +
		"declared in the schema registry, and that the registry covers " +
		"exactly the declared constants",
	Run: runJournalDoc,
}

func runJournalDoc(pass *Pass) error {
	if strings.HasSuffix(pass.ImportPath, journalImportPath) {
		checkJournalSchema(pass)
		return nil
	}
	checkJournalEmitters(pass)
	return nil
}

// checkJournalSchema verifies the Ev* constant set and the registry
// literal's key set are identical inside the journal package itself.
func checkJournalSchema(pass *Pass) {
	consts := map[string]ast.Node{}
	registry := map[string]ast.Node{}
	var registryLit ast.Node
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if id, ok := vs.Type.(*ast.Ident); ok && id.Name == "Type" && gd.Tok == token.CONST {
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "Ev") {
							consts[name.Name] = name
						}
					}
				}
				for i, name := range vs.Names {
					if name.Name != "registry" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						pass.Reportf(name.Pos(), "registry is not a composite literal; journaldoc cannot audit the schema")
						continue
					}
					registryLit = name
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok {
							registry[key.Name] = kv.Key
						}
					}
				}
			}
		}
	}
	if registryLit == nil {
		if len(consts) > 0 {
			for _, n := range []ast.Node{firstNode(consts)} {
				pass.Reportf(n.Pos(), "journal package declares Ev* types but no registry literal")
			}
		}
		return
	}
	for _, name := range sortedKeys(consts) {
		if _, ok := registry[name]; !ok {
			pass.Reportf(consts[name].Pos(), "event type %s has no schema registry entry", name)
		}
	}
	for _, name := range sortedKeys(registry) {
		if _, ok := consts[name]; !ok {
			pass.Reportf(registry[name].Pos(), "registry key %s is not a declared Ev* event type", name)
		}
	}
}

// checkJournalEmitters verifies that Emit/EmitFinal calls outside the
// journal package name their event type via a journal.Ev* selector.
func checkJournalEmitters(pass *Pass) {
	for _, f := range pass.Files {
		local := journalImportName(f)
		if local == "" {
			continue // package does not import the journal; nothing to emit
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Emit" && sel.Sel.Name != "EmitFinal") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			arg, ok := call.Args[0].(*ast.SelectorExpr)
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"%s call does not name its event type as %s.Ev*; "+
						"undeclared types bypass the journal schema", sel.Sel.Name, local)
				return true
			}
			pkg, ok := arg.X.(*ast.Ident)
			if !ok || pkg.Name != local || !strings.HasPrefix(arg.Sel.Name, "Ev") {
				pass.Reportf(arg.Pos(),
					"%s event type must be a %s.Ev* constant, got %s.%s",
					sel.Sel.Name, local, exprName(arg.X), arg.Sel.Name)
			}
			return true
		})
	}
}

// journalImportName returns the file-local name of the journal import, or
// "" when the file does not import it.
func journalImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != journalImportPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "journal"
	}
	return ""
}

func sortedKeys(m map[string]ast.Node) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func firstNode(m map[string]ast.Node) ast.Node {
	keys := sortedKeys(m)
	return m[keys[0]]
}

// exprName renders a selector base for a diagnostic.
func exprName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "<expr>"
}
