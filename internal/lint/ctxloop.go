package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ctxLoopScope names the runtime packages whose goroutines CtxLoop audits:
// the ones that launch long-lived workers (the P2 frontier explorers, the
// service pool) or drive whole verifications.
var ctxLoopScope = []string{"internal/symex", "internal/service", "internal/core"}

// CtxLoop flags unbounded loops inside goroutines that have no way to
// observe cancellation. For every `go` statement in the package it audits
// the goroutine's driver loops — each infinite (`for {}`) or condition-only
// (`for cond {}`) loop in the goroutine body itself or in a function the
// body calls directly; a loop is fine if its body — transitively, through
// same-package calls — contains a cancellation or wake-up point, and is
// flagged otherwise. Helpers deeper in the call graph (heap sifts, drain
// loops) are bounded by the data structures they walk and are not audited,
// though they do count as cancellation points for the driver loops that
// call them.
//
// Accepted cancellation points, chosen to match the repo's cooperative-stop
// idioms: a call to a method named Err or Done (ctx.Err(), ctx.Done()), a
// select statement with a channel-receive case (the Stop-channel pattern in
// the symex executor), a bare channel receive, and a call to a method named
// Wait (sync.Cond.Wait / sync.WaitGroup.Wait — blocking points that are
// woken by the party that sets the exit flag). Range loops and three-clause
// loops are exempt: the former end when their channel closes or their
// collection is exhausted, the latter are bounded by construction.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "check that unbounded loops in goroutines can observe cancellation " +
		"(ctx.Err/ctx.Done, a Stop-channel select, a receive, or a cond wait)",
	Run: runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	inScope := false
	for _, s := range ctxLoopScope {
		if strings.HasSuffix(pass.ImportPath, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	// Index the package's function and method declarations by name. Methods
	// on different types may collide; the over-approximation only widens the
	// searched closure, which errs toward accepting code.
	decls := map[string][]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = append(decls[fd.Name.Name], fd.Body)
			}
		}
	}

	// Collect the goroutine driver bodies: the body launched by each `go`
	// statement plus the bodies of the functions it calls directly.
	var roots []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				roots = append(roots, fun.Body)
			default:
				for _, b := range decls[calleeName(g.Call)] {
					roots = append(roots, b)
				}
			}
			return true
		})
	}
	audit := map[ast.Node]bool{}
	for _, r := range roots {
		audit[r] = true
		ast.Inspect(r, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				for _, b := range decls[calleeName(call)] {
					audit[b] = true
				}
			}
			return true
		})
	}

	// Audit every unbounded loop in the driver bodies.
	for body := range audit {
		ast.Inspect(body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Init != nil || loop.Post != nil {
				return true
			}
			if !hasCancelPoint(loop.Body, decls, map[ast.Node]bool{}) {
				kind := "infinite"
				if loop.Cond != nil {
					kind = "condition-only"
				}
				pass.Reportf(loop.For, "%s loop in a goroutine has no cancellation point "+
					"(no ctx.Err/ctx.Done call, select with receive, channel receive, or cond wait)", kind)
			}
			return true
		})
	}
	return nil
}

// calleeName extracts the resolvable name of a call target: the identifier
// of a plain call or the selector of a method / qualified call. Anything
// else (calling a function value, a call chain) is unresolvable and
// treated as marker-free.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// cancelMethods are the method names whose calls count as cancellation or
// wake-up points (see the CtxLoop doc for why Wait qualifies).
var cancelMethods = map[string]bool{"Err": true, "Done": true, "Wait": true}

// hasCancelPoint reports whether n — transitively, through same-package
// calls — contains a cancellation point. visited guards against recursion.
func hasCancelPoint(n ast.Node, decls map[string][]*ast.BlockStmt, visited map[ast.Node]bool) bool {
	if visited[n] {
		return false
	}
	visited[n] = true
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			for _, c := range m.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					if _, isSend := cc.Comm.(*ast.SendStmt); !isSend {
						found = true
					}
				}
			}
		case *ast.CallExpr:
			if cancelMethods[calleeName(m)] {
				found = true
				return false
			}
			for _, b := range decls[calleeName(m)] {
				if hasCancelPoint(b, decls, visited) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}
