package lint

import (
	"go/ast"
	"strings"
)

// panicGuardScope names the packages whose goroutines PanicGuard audits: the
// ones where a worker panic would otherwise strand peers (the symex frontier
// waits for active workers), poison the pool (service workers), or crash the
// chaos harness mid-schedule.
var panicGuardScope = []string{"internal/symex", "internal/service", "internal/faultinject"}

// PanicGuard checks that every goroutine launched in the audited packages
// installs a recover-and-report boundary: somewhere in the goroutine body —
// transitively, through same-package calls — there must be a deferred
// function whose body (again transitively) calls recover(). Without one, a
// panic on the goroutine terminates the whole process, which is exactly the
// failure mode the fault-injection layer exists to rule out: a worker panic
// must become a structured job error, never an exit.
//
// The check is an over-approximation in the accepting direction (any
// deferred recover in the transitive same-package closure satisfies it), so
// it can miss a goroutine whose recover is on a path not actually executed —
// but it cannot reject a guarded one.
var PanicGuard = &Analyzer{
	Name: "panicguard",
	Doc: "check that goroutines in worker/service packages install a deferred " +
		"recover boundary so a panic becomes a structured error, not a process exit",
	Run: runPanicGuard,
}

func runPanicGuard(pass *Pass) error {
	inScope := false
	for _, s := range panicGuardScope {
		if strings.HasSuffix(pass.ImportPath, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	// Index the package's function and method declarations by name, as in
	// ctxloop; name collisions only widen the closure toward acceptance.
	decls := map[string][]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = append(decls[fd.Name.Name], fd.Body)
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var roots []ast.Node
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				roots = append(roots, fun.Body)
			default:
				for _, b := range decls[calleeName(g.Call)] {
					roots = append(roots, b)
				}
			}
			if len(roots) == 0 {
				// Goroutine over a function value we cannot resolve: flag it —
				// an unauditable entry point is indistinguishable from an
				// unguarded one.
				pass.Reportf(g.Go, "goroutine target is unresolvable; cannot verify a recover boundary")
				return true
			}
			guarded := false
			for _, r := range roots {
				if hasRecoverBoundary(r, decls, map[ast.Node]bool{}) {
					guarded = true
					break
				}
			}
			if !guarded {
				pass.Reportf(g.Go, "goroutine has no deferred recover boundary "+
					"(a panic here terminates the process instead of becoming a structured error)")
			}
			return true
		})
	}
	return nil
}

// hasRecoverBoundary reports whether n — transitively, through same-package
// calls — contains a DeferStmt whose deferred function recovers. visited
// guards against recursion.
func hasRecoverBoundary(n ast.Node, decls map[string][]*ast.BlockStmt, visited map[ast.Node]bool) bool {
	if visited[n] {
		return false
	}
	visited[n] = true
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.DeferStmt:
			if deferredRecovers(m, decls) {
				found = true
				return false
			}
		case *ast.CallExpr:
			for _, b := range decls[calleeName(m)] {
				if hasRecoverBoundary(b, decls, visited) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// deferredRecovers reports whether a defer statement's target recovers: a
// deferred func literal whose body calls recover() (directly or through a
// same-package call), or a deferred call to a same-package function that
// does.
func deferredRecovers(d *ast.DeferStmt, decls map[string][]*ast.BlockStmt) bool {
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		return callsRecover(lit.Body, decls, map[ast.Node]bool{})
	}
	for _, b := range decls[calleeName(d.Call)] {
		if callsRecover(b, decls, map[ast.Node]bool{}) {
			return true
		}
	}
	return false
}

// callsRecover reports whether n — transitively, through same-package calls
// — contains a call to the recover builtin.
func callsRecover(n ast.Node, decls map[string][]*ast.BlockStmt, visited map[ast.Node]bool) bool {
	if visited[n] {
		return false
	}
	visited[n] = true
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
				found = true
				return false
			}
			for _, b := range decls[calleeName(call)] {
				if callsRecover(b, decls, visited) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}
