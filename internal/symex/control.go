package symex

import (
	"fmt"

	"octopocs/internal/expr"
	"octopocs/internal/isa"
	"octopocs/internal/journal"
)

// enterBlock moves the frame to a block, maintaining visit counts.
func (e *Executor) enterBlock(st *State, fr *Frame, block int) {
	fr.block = block
	fr.inst = 0
	fr.visits[block]++
}

// branch resolves an OpBr. Concrete conditions follow their value. Symbolic
// conditions are resolved by the directed policy: order the successors by
// backward-path distance (then by loop-escape preference), take the first
// feasible one, and record the corresponding constraint. When neither
// direction is feasible the state dies: loop-dead inside a revisited block,
// program-dead otherwise (paper § III-B states).
func (e *Executor) branch(st *State, fr *Frame, in *isa.Inst, directed bool) error {
	cond := reg(fr, in.A)
	if v, ok := cond.IsConst(); ok {
		if v != 0 {
			e.enterBlock(st, fr, in.ThenIdx)
		} else {
			e.enterBlock(st, fr, in.ElseIdx)
		}
		return nil
	}

	type option struct {
		block      int
		constraint *expr.Expr
	}
	opts := []option{
		{in.ThenIdx, expr.Bool(cond)},
		{in.ElseIdx, expr.Not(cond)},
	}
	if directed && e.preferElse(st, fr, in) {
		opts[0], opts[1] = opts[1], opts[0]
	}

	// A statically folded branch has exactly one direction any execution
	// can take; the other is infeasible on every path, so skipping it (and
	// never scheduling it as a backtrack alternative) cannot change the
	// outcome — it only saves the SAT checks that would refute it.
	prunedTaken := -1
	if e.cfg.Prune != nil && in.ThenIdx != in.ElseIdx {
		if t, ok := e.cfg.Prune.BranchTaken(fr.fn.Name, fr.block); ok {
			prunedTaken = t
		}
	}

	// An absint-proved branch is discharged without any solver call: the
	// proven direction is feasible (an active state's path condition is
	// invariantly satisfiable, and every concrete model of it takes the
	// proven arm), the other direction is infeasible on every path. The
	// branch constraint is still recorded, so the committed constraint set
	// — and hence the reformed PoC bytes — are identical either way.
	oracleTaken := -1
	if e.cfg.Oracle != nil && in.ThenIdx != in.ElseIdx {
		if t, ok := e.cfg.Oracle.BranchProved(fr.fn.Name, fr.block); ok {
			oracleTaken = t
			if e.cfg.Journal.Verbose() {
				e.cfg.Journal.Emit(journal.EvSymexAbsint, journal.Attrs{
					"fn": fr.fn.Name, "block": fr.block, "taken": t})
			}
		}
	}

	inLoop := fr.visits[fr.block] > 1
	for i, o := range opts {
		// θ bound: refuse to re-enter a block beyond the iteration cap.
		// This runs before the prune skip so the loop-dead/program-dead
		// classification of a dying state is identical with pruning off.
		if fr.visits[o.block] >= e.cfg.Theta {
			inLoop = true
			continue
		}
		if prunedTaken >= 0 && o.block != prunedTaken {
			e.stat.PrunedBranches++
			continue
		}
		var ok bool
		if oracleTaken >= 0 {
			e.stat.SatDischargedStatic++
			ok = o.block == oracleTaken
		} else {
			var err error
			ok, err = e.feasible(st, o.constraint)
			if err != nil {
				return err
			}
		}
		if ok {
			// Record the untried direction (if any) for backtracking
			// before this path commits. A frontier worker records it even
			// in naive mode, where the emitted alternative plays the role
			// of the fork's second child.
			if (directed || e.emit != nil) && i == 0 &&
				!(prunedTaken >= 0 && opts[1].block != prunedTaken) &&
				!(oracleTaken >= 0 && opts[1].block != oracleTaken) &&
				fr.visits[opts[1].block] < e.cfg.Theta {
				var d int64
				if directed {
					d = e.blockScore(fr, opts[1].block)
				}
				e.pushChoice(st, []*expr.Expr{opts[1].constraint}, []int64{d})
			}
			if fr.visits[o.block] > 0 {
				e.stat.LoopStates++ // the paper's transient loop state
			}
			st.AddConstraint(o.constraint)
			e.enterBlock(st, fr, o.block)
			return nil
		}
	}
	if inLoop {
		st.die(KindLoopDead, fmt.Sprintf("no feasible loop exit at %s within θ=%d", st.loc(), e.cfg.Theta))
	} else {
		st.die(KindProgramDead, fmt.Sprintf("no feasible branch at %s", st.loc()))
	}
	return nil
}

// preferElse reports whether the else successor should be tried first,
// according to the distance maps: smaller distance to the next objective
// wins; ties break toward the less-visited block (escaping loops), then
// toward the then branch.
func (e *Executor) preferElse(st *State, fr *Frame, in *isa.Inst) bool {
	dThen := e.blockScore(fr, in.ThenIdx)
	dElse := e.blockScore(fr, in.ElseIdx)
	if dElse != dThen {
		return dElse < dThen
	}
	return fr.visits[in.ElseIdx] < fr.visits[in.ThenIdx]
}

// blockScore ranks a successor block. Functions that can still descend
// toward the target use the to-ep map; others head for their return so the
// caller can continue. Unreachable blocks rank last.
func (e *Executor) blockScore(fr *Frame, block int) int64 {
	d := e.cfg.Distances
	fn := fr.fn.Name
	if fn != e.cfg.Target && d.CanReach(fn) {
		if v, ok := d.ToEp(fn, block); ok {
			return v
		}
		return 1 << 62
	}
	if v, ok := d.ToRet(fn, block); ok {
		return v
	}
	return 1 << 62
}

// call handles a direct call: if the callee is the objective, the visitor
// runs first and may stop the whole execution.
func (e *Executor) call(st *State, fr *Frame, in *isa.Inst, callee *isa.Function, visitor Visitor) (bool, error) {
	if callee == nil {
		return false, fmt.Errorf("symex: call to unknown function %q", in.Callee)
	}
	args := make([]*expr.Expr, len(in.Args))
	for i, r := range in.Args {
		args[i] = reg(fr, r)
	}
	if callee.Name == e.cfg.Target && visitor != nil {
		entry := EpEntry{
			Seq:     len(st.entries) + 1,
			Args:    args,
			FilePos: st.FilePos(),
		}
		st.entries = append(st.entries, entry)
		decision, err := visitor(entry, st)
		if err != nil {
			return false, err
		}
		switch decision {
		case Stop:
			return true, nil
		case Infeasible:
			st.die(KindInfeasible, fmt.Sprintf("objective placement infeasible at entry %d", entry.Seq))
			return false, nil
		}
	}
	nf := &Frame{fn: callee, retDst: in.Dst, visits: map[int]int{0: 1}}
	for i, a := range args {
		if i < isa.NumRegs {
			nf.regs[i] = a
		}
	}
	st.frames = append(st.frames, nf)
	return false, nil
}

// callIndirect resolves an indirect call. A symbolic index is directed: the
// executor picks, among feasible table slots, the target that minimizes the
// callgraph distance to the objective, and pins the index.
func (e *Executor) callIndirect(st *State, fr *Frame, in *isa.Inst, visitor Visitor, directed bool) (bool, error) {
	idx := reg(fr, in.A)
	table := e.prog.FuncTable

	resolve := func(v uint64) *isa.Function {
		if v >= uint64(len(table)) || table[v] == "" {
			return nil
		}
		return e.prog.Func(table[v])
	}

	if v, ok := idx.IsConst(); ok {
		callee := resolve(v)
		if callee == nil {
			st.die(KindCrashed, fmt.Sprintf("bad indirect call index %d", v))
			return false, nil
		}
		if e.onResolve != nil {
			e.onResolve(st.loc(), callee.Name)
		}
		return e.call(st, fr, in, callee, visitor)
	}

	// Symbolic index: enumerate candidate slots, ranked by callgraph
	// distance to the objective when directed.
	type cand struct {
		v    uint64
		rank int64
	}
	var cands []cand
	for v := range table {
		callee := resolve(uint64(v))
		if callee == nil {
			continue
		}
		rank := int64(1 << 30)
		if directed && e.cfg.Distances != nil {
			if fd, ok := e.cfg.Distances.FuncDist(callee.Name); ok {
				rank = int64(fd)
			}
		}
		cands = append(cands, cand{uint64(v), rank})
	}
	// Stable selection: sort by (rank, v).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].rank < cands[j-1].rank ||
			(cands[j].rank == cands[j-1].rank && cands[j].v < cands[j-1].v)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for i, c := range cands {
		pin := expr.Bin(expr.OpEq, idx, expr.Const(c.v))
		ok, err := e.feasible(st, pin)
		if err != nil {
			return false, err
		}
		if ok {
			if (directed || e.emit != nil) && i+1 < len(cands) {
				alts := make([]*expr.Expr, 0, len(cands)-i-1)
				dists := make([]int64, 0, len(cands)-i-1)
				for _, rest := range cands[i+1:] {
					alts = append(alts, expr.Bin(expr.OpEq, idx, expr.Const(rest.v)))
					dists = append(dists, rest.rank)
				}
				e.pushChoice(st, alts, dists)
			}
			st.AddConstraint(pin)
			callee := resolve(c.v)
			if e.onResolve != nil {
				e.onResolve(st.loc(), callee.Name)
			}
			return e.call(st, fr, in, callee, visitor)
		}
	}
	st.die(KindProgramDead, fmt.Sprintf("no feasible indirect-call target at %s", st.loc()))
	return false, nil
}

// ret pops the top frame; returning from the entry function exits.
func (e *Executor) ret(st *State, fr *Frame, val *expr.Expr) {
	st.frames = st.frames[:len(st.frames)-1]
	if len(st.frames) == 0 {
		st.die(KindExited, "returned from entry")
		return
	}
	caller := st.top()
	caller.regs[fr.retDst] = val
	caller.inst++
}

// syscall interprets one syscall symbolically. Sizes, offsets and addresses
// are concretized; file reads materialize fresh input symbols. A dead state
// (unsatisfiable concretization) returns early with no error so the caller
// can backtrack.
func (e *Executor) syscall(st *State, fr *Frame, in *isa.Inst) error {
	argE := func(i int) *expr.Expr { return reg(fr, in.Args[i]) }
	argC := func(i int) (uint64, bool, error) { return e.concretize(st, argE(i)) }

	switch in.Sys {
	case isa.SysOpen:
		st.filePos = append(st.filePos, 0)
		fd := uint64(len(st.filePos) + 2)
		fr.regs[in.Dst] = expr.Const(fd)

	case isa.SysRead:
		fd, ok, err := argC(0)
		if err != nil || !ok {
			return err
		}
		buf, ok, err := argC(1)
		if err != nil || !ok {
			return err
		}
		n, ok, err := argC(2)
		if err != nil || !ok {
			return err
		}
		fi := int(fd) - 3
		if fi < 0 || fi >= len(st.filePos) {
			fr.regs[in.Dst] = expr.Const(^uint64(0))
			break
		}
		st.lastReadFD = fi
		pos := st.filePos[fi]
		remain := int64(e.cfg.InputSize) - pos
		if remain < 0 {
			remain = 0
		}
		count := int64(n)
		if count > remain {
			count = remain
		}
		if count > 0 {
			bytes := make([]*expr.Expr, count)
			for i := range bytes {
				bytes[i] = expr.Sym(int(pos) + i)
			}
			if f := st.mem.setBytes(buf, bytes); f != nil {
				st.die(KindCrashed, f.String())
				return nil
			}
			st.filePos[fi] += count
		}
		fr.regs[in.Dst] = expr.Const(uint64(count))

	case isa.SysSeek:
		fd, ok, err := argC(0)
		if err != nil || !ok {
			return err
		}
		off, ok, err := argC(1)
		if err != nil || !ok {
			return err
		}
		fi := int(fd) - 3
		if fi < 0 || fi >= len(st.filePos) {
			fr.regs[in.Dst] = expr.Const(^uint64(0))
			break
		}
		pos := int64(off)
		if pos < 0 {
			pos = 0
		}
		if pos > int64(e.cfg.InputSize) {
			pos = int64(e.cfg.InputSize)
		}
		st.filePos[fi] = pos
		st.lastReadFD = fi
		fr.regs[in.Dst] = expr.Const(uint64(pos))

	case isa.SysTell:
		fd, ok, err := argC(0)
		if err != nil || !ok {
			return err
		}
		fi := int(fd) - 3
		if fi < 0 || fi >= len(st.filePos) {
			fr.regs[in.Dst] = expr.Const(^uint64(0))
			break
		}
		fr.regs[in.Dst] = expr.Const(uint64(st.filePos[fi]))

	case isa.SysSize:
		fr.regs[in.Dst] = expr.Const(uint64(e.cfg.InputSize))

	case isa.SysMMap:
		base := st.mem.mapSymbolicFile(e.cfg.InputSize)
		fr.regs[in.Dst] = expr.Const(base)

	case isa.SysAlloc:
		n, ok, err := argC(0)
		if err != nil || !ok {
			return err
		}
		fr.regs[in.Dst] = expr.Const(st.mem.alloc(n))

	case isa.SysFree:
		addr, ok, err := argC(0)
		if err != nil || !ok {
			return err
		}
		if f := st.mem.free(addr); f != nil {
			st.die(KindCrashed, f.String())
			return nil
		}
		fr.regs[in.Dst] = expr.Zero

	case isa.SysWrite:
		// Output is irrelevant to path feasibility; validate nothing.
		fr.regs[in.Dst] = argE(1)

	case isa.SysExit:
		st.die(KindExited, "sys exit")
		return nil

	case isa.SysArgRead:
		buf, ok, err := argC(0)
		if err != nil || !ok {
			return err
		}
		n, ok, err := argC(1)
		if err != nil || !ok {
			return err
		}
		remain := int64(e.cfg.InputSize) - st.argPos
		if remain < 0 {
			remain = 0
		}
		count := int64(n)
		if count > remain {
			count = remain
		}
		if count > 0 {
			bytes := make([]*expr.Expr, count)
			for i := range bytes {
				bytes[i] = expr.Sym(int(st.argPos) + i)
			}
			if f := st.mem.setBytes(buf, bytes); f != nil {
				st.die(KindCrashed, f.String())
				return nil
			}
			st.argPos += count
		}
		st.lastReadFD = argChannel
		fr.regs[in.Dst] = expr.Const(uint64(count))

	case isa.SysArgLen:
		fr.regs[in.Dst] = expr.Const(uint64(e.cfg.InputSize))

	default:
		return fmt.Errorf("symex: unknown syscall %d", in.Sys)
	}
	return nil
}
