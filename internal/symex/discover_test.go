package symex_test

import (
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
	"octopocs/internal/symex"
)

// dispatchProg dispatches through a table indexed directly by an input
// byte (resolvable) or through a runtime memory table (the angr-defect
// analog, unresolvable for a concretizing explorer).
func dispatchProg(t *testing.T, viaMemoryTable bool) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("disp")
	for _, name := range []string{"h0", "h1", "h2"} {
		h := b.Function(name, 0)
		h.RetI(0)
	}
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(1))
	f.Sys(isa.SysRead, fd, buf, f.Const(1))
	sel := f.Load(1, buf, 0)
	f.If(f.GtI(sel, 2), func() { f.Exit(1) })
	if viaMemoryTable {
		table := f.Sys(isa.SysAlloc, f.Const(4))
		j := f.VarI(0)
		f.While(func() isa.Reg { return f.LtI(j, 4) }, func() {
			f.Store(1, f.Add(table, j), 0, f.AndI(j, 3))
			f.Assign(j, f.AddI(j, 1))
		})
		sel = f.Load(1, f.Add(table, sel), 0)
	}
	f.CallInd(sel)
	f.Exit(0)
	b.Entry("main")
	b.FuncTable("h0", "h1", "h2")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestDiscoverFindsAllDirectDispatchTargets(t *testing.T) {
	prog := dispatchProg(t, false)
	edges, err := symex.Discover(prog, symex.NaiveConfig{InputSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{}
	for _, e := range edges {
		targets[e.Callee] = true
	}
	for _, want := range []string{"h0", "h1", "h2"} {
		if !targets[want] {
			t.Errorf("edge to %s not discovered (got %v)", want, edges)
		}
	}
}

func TestDiscoverPartialThroughMemoryTable(t *testing.T) {
	// The memory-table indirection forces address concretization: only
	// the slot of the concretized path is discovered — the Idx-15
	// failure ingredient.
	prog := dispatchProg(t, true)
	edges, err := symex.Discover(prog, symex.NaiveConfig{InputSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{}
	for _, e := range edges {
		targets[e.Callee] = true
	}
	if len(targets) >= 3 {
		t.Errorf("discovery should be partial through a memory table, got %v", edges)
	}
	if len(edges) == 0 {
		t.Error("discovery should still resolve the concretized slot")
	}
}

func TestDiscoverDeduplicatesEdges(t *testing.T) {
	prog := dispatchProg(t, false)
	edges, err := symex.Discover(prog, symex.NaiveConfig{InputSize: 8, MaxStates: 512})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[symex.IndirectEdge]bool{}
	for _, e := range edges {
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestDiscoverHonorsBudgets(t *testing.T) {
	prog := dispatchProg(t, false)
	// A one-state budget cannot reach the dispatch.
	edges, err := symex.Discover(prog, symex.NaiveConfig{InputSize: 8, MaxStates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 0 {
		t.Errorf("edges = %v with a one-state budget", edges)
	}
}
