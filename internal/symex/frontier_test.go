package symex_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"octopocs/internal/asm"
	"octopocs/internal/cfg"
	"octopocs/internal/isa"
	"octopocs/internal/solver"
	"octopocs/internal/symex"
)

// resultIdentity renders everything of a Result that the determinism
// contract covers — Kind, Why, entries, and the path condition — but not
// Stats, which legitimately varies with scheduling.
func resultIdentity(res *symex.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%v why=%q entries=%d\n", res.Kind, res.Why, len(res.Entries))
	for _, e := range res.Entries {
		fmt.Fprintf(&b, "entry seq=%d pos=%d args=%d", e.Seq, e.FilePos, len(e.Args))
		for _, a := range e.Args {
			fmt.Fprintf(&b, " %x", a.Fingerprint())
		}
		b.WriteString("\n")
	}
	for _, c := range res.Constraints {
		fmt.Fprintf(&b, "c %x\n", c.Fingerprint())
	}
	return b.String()
}

// runFrontierDirected runs directed execution with the given worker count.
func runFrontierDirected(t *testing.T, prog *isa.Program, c symex.Config, workers int, visitor symex.Visitor) *symex.Result {
	t.Helper()
	g := cfg.Build(prog)
	c.Distances = g.DistancesTo(c.Target)
	c.Workers = workers
	res, err := symex.New(prog, c).Run(visitor)
	if err != nil {
		t.Fatalf("Run(workers=%d) error: %v", workers, err)
	}
	return res
}

// detourProg forces real backtracking: the preferred (closer) call to ep is
// gated on a contradiction, so only the farther call site is feasible.
func detourProg(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("detour")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(4))
	a := f.Load(1, buf, 0)
	f.If(f.EqI(a, 5), func() {
		f.If(f.EqI(a, 9), func() { f.Call("ep") }) // contradiction
	})
	f.If(f.EqI(a, 7), func() { f.Call("ep") })
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// unreachableProg has no feasible path to ep at all: the run must end in a
// deterministic dead verdict.
func unreachableProg(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("unreach")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(4))
	a := f.Load(1, buf, 0)
	b0 := f.Load(1, buf, 1)
	f.IfElse(f.GtI(a, 100),
		func() {
			f.If(f.EqI(b0, 3), func() {
				f.If(f.EqI(a, 50), func() { f.Call("ep") }) // contradicts a > 100
			})
		},
		func() {
			f.If(f.EqI(a, 200), func() { f.Call("ep") }) // contradicts a <= 100
		})
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestFrontierDirectedDeterminism: 1, 4, and 8 workers must produce the
// identical Result (modulo Stats) on reachable, detour, and unreachable
// programs. Run with -count=2 in CI to catch map-iteration luck.
func TestFrontierDirectedDeterminism(t *testing.T) {
	progs := map[string]*isa.Program{
		"header":      headerProg(t),
		"branchy":     branchyProg(t, 10),
		"detour":      detourProg(t),
		"unreachable": unreachableProg(t),
	}
	for name, prog := range progs {
		ref := resultIdentity(runFrontierDirected(t, prog, symex.Config{Target: "ep", InputSize: 64}, 1, stopAtFirst))
		for _, workers := range []int{4, 8} {
			got := resultIdentity(runFrontierDirected(t, prog, symex.Config{Target: "ep", InputSize: 64}, workers, stopAtFirst))
			if got != ref {
				t.Errorf("%s: workers=%d result differs from workers=1:\n--- 1 worker\n%s--- %d workers\n%s",
					name, workers, ref, workers, got)
			}
		}
	}
}

// TestFrontierSolvesSameInput: the parallel engine's constraints must solve
// to an input satisfying the program's gate, and the detour program must
// actually have backtracked to the feasible site.
func TestFrontierSolvesSameInput(t *testing.T) {
	res := runFrontierDirected(t, headerProg(t), symex.Config{Target: "ep", InputSize: 16}, 4, stopAtFirst)
	if !res.Reached() {
		t.Fatalf("header: kind=%v (%s), want reached", res.Kind, res.Why)
	}
	if in := solveInput(t, res, 16); string(in[:4]) != "MJPG" {
		t.Errorf("header: solved %q, want MJPG", in[:4])
	}
	if res.Stats.Workers != 4 {
		t.Errorf("Stats.Workers = %d, want 4", res.Stats.Workers)
	}

	res = runFrontierDirected(t, detourProg(t), symex.Config{Target: "ep", InputSize: 8}, 4, stopAtFirst)
	if !res.Reached() {
		t.Fatalf("detour: kind=%v (%s), want reached", res.Kind, res.Why)
	}
	if in := solveInput(t, res, 8); in[0] != 7 {
		t.Errorf("detour: in[0] = %d, want 7", in[0])
	}
}

// TestFrontierNaiveDeterminism: parallel naive exploration commits the same
// minimal-path success regardless of worker count.
func TestFrontierNaiveDeterminism(t *testing.T) {
	prog := branchyProg(t, 8)
	run := func(workers int) *symex.Result {
		res, err := symex.RunNaive(prog, symex.NaiveConfig{Target: "ep", InputSize: 64, Workers: workers})
		if err != nil {
			t.Fatalf("RunNaive(workers=%d) = %v", workers, err)
		}
		if !res.Reached() {
			t.Fatalf("RunNaive(workers=%d): kind=%v (%s)", workers, res.Kind, res.Why)
		}
		return res
	}
	ref := resultIdentity(run(1))
	for _, workers := range []int{2, 4, 8} {
		if got := resultIdentity(run(workers)); got != ref {
			t.Errorf("naive workers=%d differs from workers=1:\n%s\nvs\n%s", workers, ref, got)
		}
	}
}

// TestFrontierNaiveBudgets: the parallel naive engine still honors the
// memory and state budget contracts. Note the frontier's memory profile is
// DFS-like (pending nodes, not a full BFS wave), so unlike the sequential
// baseline a 1 MiB budget no longer trips on the 2^14-path program; a
// 1-byte budget makes the very first emission exceed it deterministically.
func TestFrontierNaiveBudgets(t *testing.T) {
	res, err := symex.RunNaive(branchyProg(t, 14), symex.NaiveConfig{
		Target:    "ep",
		InputSize: 64,
		MemBudget: 1,
		Workers:   4,
	})
	if !errors.Is(err, symex.ErrMemBudget) {
		t.Fatalf("RunNaive() = %v, want ErrMemBudget", err)
	}
	if res == nil || res.Kind != symex.KindHung {
		t.Fatalf("result = %+v, want KindHung", res)
	}

	res, err = symex.RunNaive(unreachableProg(t), symex.NaiveConfig{
		Target:    "ep",
		InputSize: 8,
		MaxStates: 2,
		Workers:   1,
	})
	if err != nil {
		t.Fatalf("RunNaive(MaxStates=2) = %v", err)
	}
	if res.Kind != symex.KindHung || res.Why != "state budget exhausted" {
		t.Fatalf("result = %v (%s), want state budget exhaustion", res.Kind, res.Why)
	}
}

// TestFrontierSharedSolverCache: workers sharing one solver cache must agree
// with the uncached run and actually hit the cache (re-checked conditions
// recur across sibling states).
func TestFrontierSharedSolverCache(t *testing.T) {
	prog := branchyProg(t, 10)
	cache := solver.NewCache(1024)
	g := cfg.Build(prog)
	c := symex.Config{
		Target:      "ep",
		InputSize:   64,
		Distances:   g.DistancesTo("ep"),
		Workers:     4,
		SolverCache: cache,
	}
	res, err := symex.New(prog, c).Run(stopAtFirst)
	if err != nil {
		t.Fatalf("Run() = %v", err)
	}
	plain := runFrontierDirected(t, prog, symex.Config{Target: "ep", InputSize: 64}, 4, stopAtFirst)
	if resultIdentity(res) != resultIdentity(plain) {
		t.Errorf("cached run differs from uncached:\n%s\nvs\n%s", resultIdentity(res), resultIdentity(plain))
	}
	// A second identical run must be answered largely from the cache.
	if _, err := symex.New(prog, c).Run(stopAtFirst); err != nil {
		t.Fatalf("second Run() = %v", err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("expected sat-cache hits across repeated runs, got %+v", st)
	}
}

// TestFrontierCancellation closes the Stop channel at staggered points and
// expects either a clean completion or ErrStopped — never a wedge or a data
// race (run under -race in CI).
func TestFrontierCancellation(t *testing.T) {
	prog := branchyProg(t, 12)
	g := cfg.Build(prog)
	dists := g.DistancesTo("ep")
	for i := 0; i < 6; i++ {
		stop := make(chan struct{})
		go func(delay time.Duration) {
			time.Sleep(delay)
			close(stop)
		}(time.Duration(i) * 200 * time.Microsecond)
		c := symex.Config{Target: "ep", InputSize: 64, Distances: dists, Workers: 4, Stop: stop}
		res, err := symex.New(prog, c).Run(stopAtFirst)
		if err != nil {
			if !errors.Is(err, symex.ErrStopped) {
				t.Fatalf("iteration %d: err = %v, want ErrStopped or nil", i, err)
			}
			continue
		}
		if res == nil {
			t.Fatalf("iteration %d: nil result with nil error", i)
		}
	}
}
