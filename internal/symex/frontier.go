package symex

// frontier.go implements the parallel exploration engine selected by
// Config.Workers >= 1: a bounded pool of explorer goroutines sharing one
// priority heap of pending decision alternatives ("nodes").
//
// Protocol. Every state carries a path — the sequence of emission ordinals
// from the root — and emitted children extend their parent's path by one
// element, so a parent's path is a proper prefix of (hence lexicographically
// smaller than) every descendant's. Workers pop the minimal-(distance, path)
// node, check its alternative's feasibility against the shared snapshot
// (read-only), clone, add the constraint, and run the state with a private
// Executor; branches encountered while running emit fresh nodes back into
// the heap. A successful arrival at the objective commits if its path is
// smaller than the best committed so far; nodes and in-flight states whose
// path exceeds the best are pruned and abandoned.
//
// Determinism. The committed success is the minimal-path success of the
// whole decision tree, independent of worker count and scheduling: a node is
// only pruned when its path exceeds the current best, the best only
// decreases, and every descendant of a pruned node has a still-larger path —
// so no potential minimum is ever discarded. When no success exists nothing
// is pruned, every state runs to termination, and the reported death is the
// (deathRank-descending, path-ascending) minimum over all deaths — again
// schedule-independent. The one caveat is MaxBacktracks: the cap is checked
// at pop time but incremented after the feasibility check commits, so a
// run that hits the cap may overshoot it by up to the worker count and its
// result can depend on scheduling. Runs that stay under the cap — all of
// the verification corpus — are exactly reproducible across worker counts.
//
// Concurrency: one mutex guards the heap, the accounting, and the committed
// outcomes; workers hold it only for heap operations and commits, never
// while stepping or solving. Each worker owns a private Executor (its own
// Stats and solver value); they share only the program, the immutable
// snapshots, and the optional solver.Cache, which is safe for concurrent
// use.

import (
	"fmt"
	"sync"

	"octopocs/internal/expr"
	"octopocs/internal/faultinject"
	"octopocs/internal/isa"
	"octopocs/internal/journal"
)

// node is one pending alternative in the shared frontier: a snapshot whose
// program counter is still at the deciding instruction, plus the constraint
// selecting the untried direction. Nodes emitted by one decision share their
// snapshot; snapshots are immutable once emitted.
type node struct {
	snap *State
	// alt is nil only for the root node.
	alt   *expr.Expr
	dist  int64
	path  []uint32
	owner int // emitting worker; -1 for the root
	mem   int64
}

// frontierBudgets carries the naive-mode resource bounds; zero values mean
// unbounded (directed mode).
type frontierBudgets struct {
	mem    int64
	states int
}

// frontier is the shared engine state.
type frontier struct {
	prog     *isa.Program
	cfg      Config
	visitor  Visitor
	directed bool
	budgets  frontierBudgets

	mu   sync.Mutex
	cond *sync.Cond
	heap []*node
	// active counts workers between pop and done.
	active int
	// draining stops pops but lets in-flight states finish (backtrack cap).
	draining bool
	// aborting stops pops and abandons in-flight states (cancel, hard
	// error, memory or state budget).
	aborting bool
	err      error

	states, backtracks      int
	loopDeads, programDeads int
	frontierMem, peakMem    int64
	frontierPeak            int
	steals                  uint64
	memExceeded             bool
	statesExceeded          bool

	// best is the minimal-path successful terminal state.
	best *State
	// bestDeath is the maximal-deathRank, then minimal-path dead state.
	bestDeath *State
}

// fWorker is one explorer goroutine's private context.
type fWorker struct {
	id    int
	ex    *Executor
	f     *frontier
	steps int64
}

// pathCmp orders paths lexicographically; a proper prefix sorts before its
// extensions, so a parent always precedes its emitted children.
func pathCmp(a, b []uint32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) == len(b):
		return 0
	case len(a) < len(b):
		return -1
	default:
		return 1
	}
}

func pathLess(a, b []uint32) bool { return pathCmp(a, b) < 0 }

// nodeLess is the heap order: minimal backward-path distance first, then the
// path tie-break that makes the 1-worker pop sequence a total order.
func nodeLess(a, b *node) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return pathLess(a.path, b.path)
}

func heapPush(h *[]*node, nd *node) {
	*h = append(*h, nd)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nodeLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func heapPop(h *[]*node) *node {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && nodeLess(old[l], old[small]) {
			small = l
		}
		if r < n && nodeLess(old[r], old[small]) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// runFrontier explores prog with cfg.Workers explorer goroutines. directed
// mode is selected by cfg.Distances being required (the caller decides);
// here it is inferred from budgets: directed runs pass zero budgets.
func runFrontier(prog *isa.Program, cfg Config, visitor Visitor, budgets frontierBudgets, onResolve func(isa.Loc, string)) (*Result, error) {
	cfg = normalize(cfg)
	directed := budgets == frontierBudgets{}
	if directed && cfg.Distances == nil {
		return nil, ErrNoDistances
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	// Indirect-call resolution observers are written for sequential runs;
	// serialize calls so a parallel run cannot corrupt them.
	if onResolve != nil {
		var omu sync.Mutex
		orig := onResolve
		onResolve = func(l isa.Loc, c string) {
			omu.Lock()
			defer omu.Unlock()
			orig(l, c)
		}
	}

	f := &frontier{prog: prog, cfg: cfg, visitor: visitor, directed: directed, budgets: budgets}
	f.cond = sync.NewCond(&f.mu)

	initial := newState()
	initial.frames = append(initial.frames, &Frame{fn: prog.Func(prog.Entry), visits: map[int]int{0: 1}})
	root := &node{snap: initial, path: []uint32{}, owner: -1, mem: initial.footprint()}
	f.heap = []*node{root}
	f.frontierMem = root.mem
	f.peakMem = root.mem
	f.frontierPeak = 1

	ws := make([]*fWorker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		w := &fWorker{id: i, f: f}
		wcfg := cfg
		wcfg.Workers = 0 // the worker executor is sequential internals only
		w.ex = New(prog, wcfg)
		w.ex.onResolve = onResolve
		w.ex.emit = func(st *State, alts []*expr.Expr, dists []int64) {
			f.emit(w.id, st, alts, dists)
		}
		ws[i] = w
		wg.Add(1)
		go func(w *fWorker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	wg.Wait()

	return f.finish(ws, workers)
}

// loop is the worker body: pop, materialize, run, repeat.
func (w *fWorker) loop() {
	f := w.f
	for {
		nd := f.pop(w.id)
		if nd == nil {
			return
		}
		w.runNode(nd)
	}
}

// runNode materializes and runs one popped node, always retiring the
// in-flight slot. A panic while materializing or stepping — injected or
// real — must not strand the other workers: pop's termination condition
// waits on active == 0, so the deferred done keeps the accounting
// consistent while the deferred recover converts the panic into the run's
// hard error instead of tearing the process down.
func (w *fWorker) runNode(nd *node) {
	f := w.f
	defer f.done()
	defer func() {
		if r := recover(); r != nil {
			f.fail(faultinject.Recovered("symex.worker", r))
			w.ex.cfg.Faults.CountRecovered()
		}
	}()
	st, ok := w.materialize(nd)
	if !ok {
		return
	}
	f.commitTake(nd)
	w.run(st)
}

// pop blocks until a runnable node is available or the exploration is over,
// returning nil in the latter case. It prunes beaten nodes, enforces the
// backtrack and state budgets, and counts steals.
func (f *frontier) pop(wid int) *node {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.aborting {
			f.cond.Broadcast()
			return nil
		}
		for len(f.heap) > 0 && f.best != nil && !pathLess(f.heap[0].path, f.best.path) {
			nd := heapPop(&f.heap)
			f.frontierMem -= nd.mem
			if f.cfg.Journal.Verbose() {
				f.cfg.Journal.Emit(journal.EvSymexPrune, journal.Attrs{"why": "beaten", "path": PathString(nd.path)})
			}
		}
		if !f.draining && len(f.heap) > 0 {
			if f.directed && f.backtracks >= f.cfg.MaxBacktracks {
				f.draining = true
				continue
			}
			if f.budgets.states > 0 && f.states >= f.budgets.states {
				f.statesExceeded = true
				f.aborting = true
				continue
			}
			nd := heapPop(&f.heap)
			f.frontierMem -= nd.mem
			if nd.owner >= 0 && nd.owner != wid {
				f.steals++
			}
			f.active++
			return nd
		}
		if f.active == 0 {
			f.cond.Broadcast()
			return nil
		}
		f.cond.Wait()
	}
}

// materialize turns a popped node into a runnable state: feasibility check
// against the shared snapshot (read-only), then clone and constrain. An
// infeasible alternative is dropped without counting a state.
func (w *fWorker) materialize(nd *node) (*State, bool) {
	if nd.alt != nil {
		ok, err := w.ex.feasible(nd.snap, nd.alt)
		if err != nil {
			w.f.fail(err)
			return nil, false
		}
		if !ok {
			if w.f.cfg.Journal.Verbose() {
				w.f.cfg.Journal.Emit(journal.EvSymexPrune, journal.Attrs{"why": "infeasible", "worker": w.id, "path": PathString(nd.path)})
			}
			return nil, false
		}
	}
	st := nd.snap.clone()
	st.path = nd.path
	st.emitSeq = 0
	if nd.alt != nil {
		st.AddConstraint(nd.alt)
	}
	return st, true
}

// commitTake accounts a node that passed feasibility and is about to run.
// The backtrack cap may overshoot by up to the worker count because the gate
// is at pop and the increment is here, after the solver call.
func (f *frontier) commitTake(nd *node) {
	f.mu.Lock()
	f.states++
	if nd.alt != nil {
		f.backtracks++
	}
	f.mu.Unlock()
}

// run executes one state to success, death, or abandonment.
func (w *fWorker) run(st *State) {
	f, e := w.f, w.ex
	start := st.steps
	defer func() { w.steps += st.steps - start }()
	for st.kind == KindActive {
		if st.steps&stopCheckMask == 0 {
			if e.stopHit() {
				f.fail(ErrStopped)
				return
			}
			if f.abandoned(st.path) {
				return
			}
			// Scheduled chaos, in escalating order: a worker panic
			// (recovered by runNode), a stall, a forced cancellation.
			e.cfg.Faults.Panic(faultinject.SymexWorkerPanic)
			e.cfg.Faults.Sleep(faultinject.SymexFrontierStall)
			if e.cfg.Faults.Fire(faultinject.SymexCancel) {
				f.fail(ErrStopped)
				return
			}
		}
		if st.steps >= e.cfg.MaxSteps {
			st.die(KindHung, fmt.Sprintf("step budget exhausted at %s", st.loc()))
			break
		}
		stop, err := e.step(st, f.visitor, f.directed)
		if err != nil {
			f.fail(err)
			return
		}
		if stop {
			f.commitSuccess(st)
			return
		}
	}
	f.commitDeath(st)
}

// emit pushes one decision's untried alternatives into the shared heap. The
// running state's emitSeq assigns each child its path ordinal; the snapshot
// is cloned once and shared (immutably) by all alternatives.
func (f *frontier) emit(owner int, st *State, alts []*expr.Expr, dists []int64) {
	snap := st.clone()
	snap.emitSeq = 0
	nodes := make([]*node, len(alts))
	mem := snap.footprint()
	for i, alt := range alts {
		path := make([]uint32, len(st.path)+1)
		copy(path, st.path)
		path[len(st.path)] = st.emitSeq
		st.emitSeq++
		var d int64
		if dists != nil {
			d = dists[i]
		}
		nodes[i] = &node{snap: snap, alt: alt, dist: d, path: path, owner: owner, mem: mem}
	}
	if f.cfg.Journal.Verbose() {
		f.cfg.Journal.Emit(journal.EvSymexFork, journal.Attrs{"worker": owner, "children": len(alts), "path": PathString(st.path)})
	}
	f.mu.Lock()
	for _, nd := range nodes {
		if f.best != nil && !pathLess(nd.path, f.best.path) {
			continue // already beaten
		}
		heapPush(&f.heap, nd)
		f.frontierMem += nd.mem
	}
	if len(f.heap) > f.frontierPeak {
		f.frontierPeak = len(f.heap)
	}
	if f.frontierMem > f.peakMem {
		f.peakMem = f.frontierMem
	}
	if f.budgets.mem > 0 && f.frontierMem > f.budgets.mem {
		f.memExceeded = true
		f.aborting = true
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// abandoned reports whether an in-flight state should stop: the exploration
// is aborting, or a strictly better success has already committed.
func (f *frontier) abandoned(path []uint32) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.aborting || (f.best != nil && !pathLess(path, f.best.path))
}

// commitSuccess installs a successful terminal state if its path beats the
// best so far.
func (f *frontier) commitSuccess(st *State) {
	f.mu.Lock()
	if f.best == nil || pathLess(st.path, f.best.path) {
		f.best = st
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	if f.cfg.Journal.Verbose() {
		f.cfg.Journal.Emit(journal.EvSymexCommit, journal.Attrs{"kind": "success", "path": PathString(st.path)})
	}
}

// commitDeath records a dead terminal state, keeping the most diagnostic
// (deathRank-descending, path-ascending) one.
func (f *frontier) commitDeath(st *State) {
	f.mu.Lock()
	switch st.kind {
	case KindLoopDead:
		f.loopDeads++
	case KindProgramDead:
		f.programDeads++
	}
	if f.bestDeath == nil ||
		deathRank(st.kind) > deathRank(f.bestDeath.kind) ||
		(deathRank(st.kind) == deathRank(f.bestDeath.kind) && pathLess(st.path, f.bestDeath.path)) {
		f.bestDeath = st
	}
	if fp := st.footprint(); fp > f.peakMem {
		f.peakMem = fp
	}
	f.mu.Unlock()
	if f.cfg.Journal.Verbose() {
		f.cfg.Journal.Emit(journal.EvSymexCommit, journal.Attrs{"kind": st.kind.String(), "path": PathString(st.path)})
	}
}

// done retires a worker's in-flight slot and wakes poppers that may now
// observe termination.
func (f *frontier) done() {
	f.mu.Lock()
	f.active--
	f.cond.Broadcast()
	f.mu.Unlock()
}

// fail records the first hard error and aborts the exploration.
func (f *frontier) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.aborting = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// finish merges worker statistics and assembles the Result, flushing
// metrics exactly once.
func (f *frontier) finish(ws []*fWorker, workers int) (*Result, error) {
	stat := Stats{
		States:       f.states,
		Backtracks:   f.backtracks,
		LoopDeads:    f.loopDeads,
		ProgramDeads: f.programDeads,
		PeakMemBytes: f.peakMem,
		Workers:      workers,
		Steals:       f.steals,
		FrontierPeak: f.frontierPeak,
	}
	workerSteps := make([]int64, len(ws))
	for i, w := range ws {
		stat.Steps += w.steps
		stat.SatChecks += w.ex.stat.SatChecks
		stat.LoopStates += w.ex.stat.LoopStates
		stat.PrunedBranches += w.ex.stat.PrunedBranches
		stat.SatDischargedStatic += w.ex.stat.SatDischargedStatic
		workerSteps[i] = w.steps
	}

	res, err := f.assemble(stat)
	kind := KindActive
	if res != nil {
		kind = res.Kind
	}
	f.cfg.Metrics.observe(&stat, kind)
	f.cfg.Metrics.observeWorkers(workerSteps)
	if res != nil && res.Kind != KindActive {
		f.cfg.Logger.Debug("frontier run ended dead",
			"kind", res.Kind.String(), "why", res.Why,
			"states", stat.States, "backtracks", stat.Backtracks,
			"workers", workers, "steals", stat.Steals)
	}
	return res, err
}

// assemble picks the run outcome per the commit protocol.
func (f *frontier) assemble(stat Stats) (*Result, error) {
	fromState := func(st *State, kind StateKind) *Result {
		entries := make([]EpEntry, len(st.entries))
		copy(entries, st.entries)
		return &Result{
			Kind:        kind,
			Why:         st.why,
			Constraints: st.constraints,
			Entries:     entries,
			Path:        st.path,
			Stats:       stat,
		}
	}
	switch {
	case f.err != nil:
		return nil, f.err
	case f.memExceeded:
		return &Result{Kind: KindHung, Why: "mem budget", Stats: stat}, ErrMemBudget
	case f.statesExceeded:
		return &Result{Kind: KindHung, Why: "state budget exhausted", Stats: stat}, nil
	case f.best != nil:
		return fromState(f.best, KindActive), nil
	case f.directed && f.bestDeath != nil:
		return fromState(f.bestDeath, f.bestDeath.kind), nil
	case f.directed:
		// Unreachable in practice: the root state always terminates.
		return &Result{Kind: KindProgramDead, Why: "no state terminated", Stats: stat}, nil
	default:
		return &Result{Kind: KindProgramDead, Why: "frontier exhausted without reaching target", Stats: stat}, nil
	}
}
