package symex

import (
	"errors"
	"fmt"

	"octopocs/internal/cfg"
	"octopocs/internal/expr"
	"octopocs/internal/faultinject"
	"octopocs/internal/isa"
	"octopocs/internal/solver"
)

// ErrMemBudget reports that naive exploration exceeded its memory budget —
// the "MemError" column of Table IV, i.e. the path-explosion failure mode
// that directed symbolic execution exists to avoid.
var ErrMemBudget = errors.New("symex: naive exploration exceeded memory budget")

// DefaultMemBudget is the naive-mode retained-memory budget in (estimated)
// bytes.
const DefaultMemBudget = 64 << 20

// NaiveConfig parameterizes naive (undirected) exploration.
type NaiveConfig struct {
	// InputSize, MaxSteps as in Config.
	InputSize int
	MaxSteps  int64
	// Theta still bounds per-frame block revisits per state, or the
	// frontier would grow unboundedly inside a single loop.
	Theta int
	// SatBudget per feasibility check.
	SatBudget int64
	// Target is the function to reach.
	Target string
	// MemBudget bounds the estimated retained bytes of the frontier.
	MemBudget int64
	// MaxStates bounds total states processed.
	MaxStates int
	// DFS pops the newest state first instead of the oldest. Breadth-first
	// order models undirected whole-program exploration (the Table IV
	// baseline); depth-first order is what the dynamic-CFG discovery pass
	// uses to get past wide-but-shallow branching.
	DFS bool
	// Stop is a cooperative cancellation signal; when it closes, the
	// exploration returns ErrStopped promptly. May be nil.
	Stop <-chan struct{}
	// Metrics receives run-level counters, flushed once per exploration;
	// may be nil.
	Metrics *Metrics
	// Workers selects the engine: 0 (default) runs the sequential
	// BFS/DFS fork loop; >= 1 runs the parallel frontier engine, where
	// DFS is ignored (the frontier pops in deterministic path order).
	Workers int
	// SolverCache, when non-nil, memoizes satisfiability verdicts across
	// feasibility checks; safe to share between explorations.
	SolverCache *solver.Cache
	// Prune, when non-nil, skips statically dead branch directions exactly
	// as in Config.Prune; the fork set is unchanged because a pruned
	// direction is infeasible and would be dropped by its SAT check.
	Prune cfg.Pruner
	// Oracle, when non-nil, discharges absint-proved branches without a
	// solver call exactly as in Config.Oracle; the fork set is unchanged.
	Oracle StaticOracle
	// Faults, when non-nil, injects scheduled faults exactly as in
	// Config.Faults. Nil in production.
	Faults *faultinject.Injector
}

// RunNaive explores the program breadth-first, forking at every feasible
// symbolic branch, until some state calls Target ("proceeding with only an
// address of the vulnerable location", § V-C). It reports the resources
// consumed; exceeding the memory budget returns ErrMemBudget with the stats
// collected so far.
func RunNaive(prog *isa.Program, cfg NaiveConfig) (*Result, error) {
	return runNaive(prog, cfg, nil)
}

// runNaive is RunNaive with an optional indirect-call resolution collector.
func runNaive(prog *isa.Program, cfg NaiveConfig, onResolve func(isa.Loc, string)) (res *Result, err error) {
	if cfg.InputSize <= 0 {
		cfg.InputSize = DefaultInputSize
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.Theta <= 0 {
		cfg.Theta = DefaultTheta
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = DefaultMemBudget
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 1 << 20
	}
	// The parallel frontier engine handles naive exploration as an
	// undirected instance of the same decision tree. Dynamic-CFG discovery
	// (onResolve != nil) stays sequential: its artifact must be a pure
	// function of the program, independent of worker scheduling.
	if cfg.Workers >= 1 && onResolve == nil {
		stopVisitor := func(EpEntry, *State) (Decision, error) { return Stop, nil }
		return runFrontier(prog, Config{
			InputSize:   cfg.InputSize,
			MaxSteps:    cfg.MaxSteps,
			Theta:       cfg.Theta,
			SatBudget:   cfg.SatBudget,
			Target:      cfg.Target,
			Stop:        cfg.Stop,
			Metrics:     cfg.Metrics,
			Workers:     cfg.Workers,
			SolverCache: cfg.SolverCache,
			Prune:       cfg.Prune,
			Oracle:      cfg.Oracle,
			Faults:      cfg.Faults,
		}, stopVisitor, frontierBudgets{mem: cfg.MemBudget, states: cfg.MaxStates}, nil)
	}
	e := New(prog, Config{
		InputSize: cfg.InputSize,
		MaxSteps:  cfg.MaxSteps,
		Theta:     cfg.Theta,
		SatBudget: cfg.SatBudget,
		Target:    cfg.Target,
		Stop:      cfg.Stop,
		Metrics:   cfg.Metrics,
		Prune:     cfg.Prune,
		Oracle:    cfg.Oracle,
		Faults:    cfg.Faults,
	})
	e.onResolve = onResolve
	defer func() {
		kind := KindActive
		if res != nil {
			kind = res.Kind
		}
		e.cfg.Metrics.observe(&e.stat, kind)
	}()

	initial := newState()
	e.pushEntry(initial)
	frontier := []*State{initial}
	frontierMem := initial.footprint()
	e.stat.PeakMemBytes = frontierMem

	bump := func(delta int64) error {
		frontierMem += delta
		if frontierMem > e.stat.PeakMemBytes {
			e.stat.PeakMemBytes = frontierMem
		}
		if frontierMem > cfg.MemBudget {
			return ErrMemBudget
		}
		return nil
	}

	reached := func(st *State) *Result {
		res := e.result(st)
		res.Kind = KindActive
		return res
	}
	// stopVisitor halts a state arriving at the target through any call,
	// including indirect dispatch.
	stopVisitor := func(EpEntry, *State) (Decision, error) { return Stop, nil }

	for len(frontier) > 0 {
		if e.stopHit() {
			return nil, ErrStopped
		}
		if e.stat.States >= cfg.MaxStates {
			return e.resultWhy(KindHung, "state budget exhausted"), nil
		}
		var st *State
		if cfg.DFS {
			st = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		} else {
			st = frontier[0]
			frontier = frontier[1:]
		}
		if err := bump(-st.footprint()); err != nil {
			return e.resultWhy(KindHung, "mem budget"), err
		}
		e.stat.States++

		// Run the state forward until it terminates, reaches the
		// target, or forks.
		for st.kind == KindActive {
			if st.steps&stopCheckMask == 0 && e.stopHit() {
				return nil, ErrStopped
			}
			if st.steps >= e.cfg.MaxSteps {
				st.die(KindHung, "step budget exhausted")
				break
			}
			fr := st.top()
			in := &fr.fn.Blocks[fr.block].Insts[fr.inst]

			if in.Op == isa.OpCall && in.Callee == e.cfg.Target {
				e.stat.Steps += st.steps
				return reached(st), nil
			}
			var forks []*State
			var forked bool
			if in.Op == isa.OpBr {
				if _, ok := reg(fr, in.A).IsConst(); !ok {
					var err error
					forks, err = e.fork(st, fr, in)
					if err != nil {
						return nil, err
					}
					forked = true
				}
			}
			if in.Op == isa.OpCallInd && !st.pinnedDispatch {
				if _, ok := reg(fr, in.A).IsConst(); !ok {
					var err error
					forks, err = e.forkIndirect(st, fr, in)
					if err != nil {
						return nil, err
					}
					forked = true
				}
			}
			st.pinnedDispatch = false
			if forked {
				for _, f := range forks {
					frontier = append(frontier, f)
					if err := bump(f.footprint()); err != nil {
						e.stat.Steps += st.steps
						return e.resultWhy(KindHung, "mem budget"), err
					}
				}
				break // this state was consumed by the fork
			}
			stop, err := e.step(st, stopVisitor, false)
			if err != nil {
				return nil, err
			}
			if stop {
				e.stat.Steps += st.steps
				return reached(st), nil
			}
		}
		switch st.kind {
		case KindLoopDead:
			e.stat.LoopDeads++
		case KindProgramDead:
			e.stat.ProgramDeads++
		}
		e.stat.Steps += st.steps
	}
	return e.resultWhy(KindProgramDead, "frontier exhausted without reaching target"), nil
}

// resultWhy builds a target-less terminal result carrying the stats.
func (e *Executor) resultWhy(kind StateKind, why string) *Result {
	return &Result{Kind: kind, Why: why, Stats: e.stat}
}

// fork splits a state at a symbolic branch into the feasible successors.
func (e *Executor) fork(st *State, fr *Frame, in *isa.Inst) ([]*State, error) {
	cond := reg(fr, in.A)
	type option struct {
		block      int
		constraint *expr.Expr
	}
	prunedTaken := -1
	if e.cfg.Prune != nil && in.ThenIdx != in.ElseIdx {
		if t, ok := e.cfg.Prune.BranchTaken(fr.fn.Name, fr.block); ok {
			prunedTaken = t
		}
	}
	oracleTaken := -1
	if e.cfg.Oracle != nil && in.ThenIdx != in.ElseIdx {
		if t, ok := e.cfg.Oracle.BranchProved(fr.fn.Name, fr.block); ok {
			oracleTaken = t
		}
	}
	var out []*State
	for _, o := range []option{
		{in.ThenIdx, expr.Bool(cond)},
		{in.ElseIdx, expr.Not(cond)},
	} {
		if fr.visits[o.block] >= e.cfg.Theta {
			continue
		}
		if prunedTaken >= 0 && o.block != prunedTaken {
			// Statically dead direction: the feasibility check below
			// would refute it; skip the SAT call.
			e.stat.PrunedBranches++
			continue
		}
		var ok bool
		if oracleTaken >= 0 {
			// Absint-discharged: the proven arm is feasible, the other
			// is not, with no solver call either way (see Config.Oracle).
			e.stat.SatDischargedStatic++
			ok = o.block == oracleTaken
		} else {
			var err error
			ok, err = e.feasible(st, o.constraint)
			if err != nil {
				return nil, err
			}
		}
		if !ok {
			continue
		}
		ns := st.clone()
		ns.AddConstraint(o.constraint)
		nf := ns.top()
		e.enterBlock(ns, nf, o.block)
		out = append(out, ns)
	}
	return out, nil
}

// forkIndirect splits a state at an indirect call with a symbolic index
// into one successor per feasible function-table slot, pinning the index.
// The program counter stays at the call, which then dispatches under the
// pin. Infeasible and empty slots are dropped.
func (e *Executor) forkIndirect(st *State, fr *Frame, in *isa.Inst) ([]*State, error) {
	idx := reg(fr, in.A)
	var out []*State
	for v, name := range e.prog.FuncTable {
		if name == "" {
			continue
		}
		pin := expr.Bin(expr.OpEq, idx, expr.Const(uint64(v)))
		ok, err := e.feasible(st, pin)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		ns := st.clone()
		ns.AddConstraint(pin)
		ns.pinnedDispatch = true
		out = append(out, ns)
	}
	return out, nil
}

// String renders naive failure context in errors.
func (c NaiveConfig) String() string {
	return fmt.Sprintf("naive{target=%s mem=%d}", c.Target, c.MemBudget)
}
