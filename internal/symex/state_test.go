package symex

import (
	"testing"

	"octopocs/internal/expr"
)

func TestSymMemLoadStore(t *testing.T) {
	m := newMem()
	base := m.alloc(16)
	if base == 0 {
		t.Fatal("alloc returned null")
	}

	// Concrete round trip through byte decomposition.
	if f := m.store(base, 4, expr.Const(0xAABBCCDD)); f != nil {
		t.Fatalf("store: %v", f)
	}
	v, f := m.load(base, 4)
	if f != nil {
		t.Fatalf("load: %v", f)
	}
	if got := v.EvalConcrete(nil); got != 0xAABBCCDD {
		t.Errorf("load value = %#x, want 0xAABBCCDD", got)
	}

	// Unwritten bytes read as zero.
	v, f = m.load(base+8, 8)
	if f != nil {
		t.Fatalf("load: %v", f)
	}
	if got := v.EvalConcrete(nil); got != 0 {
		t.Errorf("uninitialized load = %#x, want 0", got)
	}

	// Symbolic byte round trip.
	if f := m.store(base, 1, expr.Sym(3)); f != nil {
		t.Fatalf("store sym: %v", f)
	}
	v, _ = m.load(base, 1)
	if got := v.EvalConcrete([]byte{0, 0, 0, 0x5A}); got != 0x5A {
		t.Errorf("symbolic byte load = %#x, want 0x5A", got)
	}
}

func TestSymMemFaults(t *testing.T) {
	m := newMem()
	base := m.alloc(8)

	if _, f := m.load(0x10, 1); f == nil || f.kind != "null-deref" {
		t.Errorf("null load fault = %v", f)
	}
	if _, f := m.load(base+8, 1); f == nil || f.kind != "out-of-bounds" {
		t.Errorf("oob load fault = %v", f)
	}
	if _, f := m.load(base+4, 8); f == nil || f.kind != "out-of-bounds" {
		t.Errorf("straddling load fault = %v", f)
	}
	if f := m.free(base); f != nil {
		t.Fatalf("free: %v", f)
	}
	if _, f := m.load(base, 1); f == nil || f.kind != "use-after-free" {
		t.Errorf("UAF load fault = %v", f)
	}
	if f := m.free(base); f == nil || f.kind != "use-after-free" {
		t.Errorf("double free fault = %v", f)
	}
	if f := m.free(0x999999); f == nil || f.kind != "out-of-bounds" {
		t.Errorf("bad free fault = %v", f)
	}

	ro := m.mapSymbolicFile(4)
	if f := m.store(ro, 1, expr.Zero); f == nil || f.kind != "readonly-write" {
		t.Errorf("readonly write fault = %v", f)
	}
	v, f := m.load(ro+2, 1)
	if f != nil {
		t.Fatalf("mapped load: %v", f)
	}
	if v.Op != expr.OpSym || v.Sym != 2 {
		t.Errorf("mapped byte = %v, want in[2]", v)
	}
}

func TestIsByteSized(t *testing.T) {
	tests := []struct {
		e    *expr.Expr
		want bool
	}{
		{expr.Const(0xFF), true},
		{expr.Const(0x100), false},
		{expr.Sym(0), true},
		{expr.Bin(expr.OpEq, expr.Sym(0), expr.Sym(1)), true},
		{expr.Bin(expr.OpAdd, expr.Sym(0), expr.Sym(1)), false},
	}
	for _, tt := range tests {
		if got := isByteSized(tt.e); got != tt.want {
			t.Errorf("isByteSized(%v) = %v, want %v", tt.e, got, tt.want)
		}
	}
}

func TestStateCloneIndependence(t *testing.T) {
	st := newState()
	st.frames = append(st.frames, &Frame{visits: map[int]int{0: 1}})
	base := st.mem.alloc(8)
	st.mem.store(base, 1, expr.Const(7))
	st.AddConstraint(expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(1)))
	st.filePos = append(st.filePos, 5)

	cl := st.clone()
	cl.top().visits[0] = 99
	cl.top().regs[3] = expr.Const(42)
	cl.mem.store(base, 1, expr.Const(9))
	cl.AddConstraint(expr.Bin(expr.OpEq, expr.Sym(1), expr.Const(2)))
	cl.filePos[0] = 77

	if st.top().visits[0] != 1 {
		t.Error("clone shared the visits map")
	}
	if st.top().regs[3] != nil {
		t.Error("clone shared the register file")
	}
	if v, _ := st.mem.load(base, 1); v.EvalConcrete(nil) != 7 {
		t.Error("clone shared memory")
	}
	if len(st.constraints) != 1 {
		t.Error("clone shared the constraint slice")
	}
	if st.filePos[0] != 5 {
		t.Error("clone shared the file positions")
	}
}

func TestStateFootprintGrows(t *testing.T) {
	st := newState()
	st.frames = append(st.frames, &Frame{visits: map[int]int{}})
	base := st.footprint()
	if base <= 0 {
		t.Fatalf("footprint = %d, want positive", base)
	}
	st.mem.alloc(64)
	st.mem.store(heapBase, 8, expr.Const(1))
	st.AddConstraint(expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(1)))
	if grown := st.footprint(); grown <= base {
		t.Errorf("footprint did not grow: %d -> %d", base, grown)
	}
}

func TestStateKindStrings(t *testing.T) {
	for k := KindActive; k <= KindInfeasible; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("kind %d renders as %q", k, s)
		}
	}
}

func TestFilePosDefaults(t *testing.T) {
	st := newState()
	if st.FilePos() != 0 {
		t.Error("no-fd FilePos should be 0")
	}
	st.filePos = append(st.filePos, 9)
	st.lastReadFD = 0
	if st.FilePos() != 9 {
		t.Error("FilePos should track the last-read descriptor")
	}
}
