package symex

import (
	"octopocs/internal/solver"
	"octopocs/internal/telemetry"
)

// Metrics is the optional counter sink for symbolic execution. The executor
// aggregates into its local Stats during the run and flushes here exactly
// once when Run or RunNaive returns, so instrumentation adds nothing to the
// per-step cost. A nil *Metrics is a valid no-op sink.
type Metrics struct {
	// Runs counts finished executions (directed and naive).
	Runs *telemetry.Counter
	// States counts states explored (paper Table IV "states").
	States *telemetry.Counter
	// Steps counts symbolic instructions stepped.
	Steps *telemetry.Counter
	// Backtracks counts directed-mode decision reversals — the paper's
	// "increase the number of iterations and repeat" θ-retry policy; each
	// backtrack is one forked alternative taken.
	Backtracks *telemetry.Counter
	// LoopStates counts decisions that re-entered a visited block (the
	// paper's transient loop state).
	LoopStates *telemetry.Counter
	// LoopDeads counts loop-dead state terminations (no feasible loop
	// exit within θ).
	LoopDeads *telemetry.Counter
	// ProgramDeads counts program-dead state terminations (no feasible
	// branch at all).
	ProgramDeads *telemetry.Counter
	// ThetaExhausted counts whole runs whose final state was loop-dead:
	// every retry up to θ iterations failed to escape, the § VII
	// loop-bound limitation surfacing at run granularity.
	ThetaExhausted *telemetry.Counter
	// SatChecks counts feasibility queries issued to the solver.
	SatChecks *telemetry.Counter
	// PrunedBranches counts branch directions skipped because the static
	// pre-analysis (P2 pre-phase) proved them dead.
	PrunedBranches *telemetry.Counter
	// SatDischargedStatic counts solver calls avoided because the
	// abstract-interpretation oracle decided the branch first.
	SatDischargedStatic *telemetry.Counter
	// Steals counts frontier nodes executed by a worker other than the one
	// that emitted them (parallel engine only).
	Steals *telemetry.Counter
	// FrontierPeak records the peak pending-node depth of the shared
	// frontier heap of the most recent parallel run.
	FrontierPeak *telemetry.Gauge
	// WorkerSteps observes the per-worker symbolic step count of each
	// parallel run — a flat distribution means the work-stealing frontier
	// balanced the exploration.
	WorkerSteps *telemetry.Histogram
	// Solver, when set, is threaded into the executor's internal solver so
	// its SAT/UNSAT/budget outcomes are counted alongside standalone
	// solver use.
	Solver *solver.Metrics
}

// observe flushes one finished run. finalKind is the terminal state kind
// (KindActive for a run stopped successfully at the objective).
func (m *Metrics) observe(st *Stats, finalKind StateKind) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	m.States.Add(uint64(st.States))
	m.Steps.Add(uint64(st.Steps))
	m.Backtracks.Add(uint64(st.Backtracks))
	m.LoopStates.Add(uint64(st.LoopStates))
	m.LoopDeads.Add(uint64(st.LoopDeads))
	m.ProgramDeads.Add(uint64(st.ProgramDeads))
	m.SatChecks.Add(uint64(st.SatChecks))
	m.PrunedBranches.Add(uint64(st.PrunedBranches))
	m.SatDischargedStatic.Add(uint64(st.SatDischargedStatic))
	m.Solver.ObserveDischarged(st.SatDischargedStatic)
	if finalKind == KindLoopDead {
		m.ThetaExhausted.Inc()
	}
	if st.Workers >= 1 {
		m.Steals.Add(st.Steals)
		m.FrontierPeak.Set(int64(st.FrontierPeak))
	}
}

// observeWorkers flushes the per-worker step distribution of one parallel
// run.
func (m *Metrics) observeWorkers(steps []int64) {
	if m == nil {
		return
	}
	for _, s := range steps {
		m.WorkerSteps.Observe(float64(s))
	}
}
