package symex_test

import (
	"errors"
	"testing"

	"octopocs/internal/cfg"
	"octopocs/internal/faultinject"
	"octopocs/internal/isa"
	"octopocs/internal/symex"
	"octopocs/internal/testutil"
)

func injector(t *testing.T, schedule string) *faultinject.Injector {
	t.Helper()
	sch, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", schedule, err)
	}
	return faultinject.New(sch)
}

func directedConfig(prog *isa.Program, workers int, in *faultinject.Injector) symex.Config {
	g := cfg.Build(prog)
	return symex.Config{
		Target:    "ep",
		InputSize: 64,
		Distances: g.DistancesTo("ep"),
		Workers:   workers,
		Faults:    in,
	}
}

// TestWorkerPanicContained checks an injected frontier-worker panic is
// recovered into a structured transient error — the process survives, no
// worker wedges — and a retry with the consumed schedule reproduces the
// fault-free result exactly.
func TestWorkerPanicContained(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	prog := branchyProg(t, 10)
	base := runFrontierDirected(t, prog, symex.Config{Target: "ep", InputSize: 64}, 4, stopAtFirst)

	in := injector(t, "symex.worker_panic:nth=1")
	c := directedConfig(prog, 4, in)
	_, err := symex.New(prog, c).Run(stopAtFirst)
	if err == nil {
		t.Fatal("Run with injected panic returned nil error")
	}
	var pe *faultinject.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if !faultinject.IsTransient(err) {
		t.Errorf("injected panic not classified transient: %v", err)
	}
	if in.RecoveredCount() != 1 {
		t.Errorf("RecoveredCount = %d, want 1", in.RecoveredCount())
	}

	// The schedule's single ordinal is consumed: the retry runs clean and
	// must commit the identical result.
	res, err := symex.New(prog, c).Run(stopAtFirst)
	if err != nil {
		t.Fatalf("retry Run: %v", err)
	}
	if got := resultIdentity(res); got != resultIdentity(base) {
		t.Errorf("post-panic retry differs from fault-free run:\n%s\nvs\n%s", got, resultIdentity(base))
	}
}

// TestRealPanicSurfaces checks a genuine bug — a visitor panicking inside a
// worker — is contained into a *PanicError that is NOT transient: callers
// must fail the job, not retry a deterministic crash.
func TestRealPanicSurfaces(t *testing.T) {
	prog := headerProg(t)
	boom := func(symex.EpEntry, *symex.State) (symex.Decision, error) {
		panic("visitor bug")
	}
	_, err := symex.New(prog, directedConfig(prog, 4, nil)).Run(boom)
	if err == nil {
		t.Fatal("Run with panicking visitor returned nil error")
	}
	var pe *faultinject.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if faultinject.IsTransient(err) || faultinject.IsDegraded(err) {
		t.Errorf("real panic misclassified as injectable fault: %v", err)
	}
}

// TestInjectedCancel checks a symex.cancel fault is indistinguishable from
// the Stop channel closing, on both engines.
func TestInjectedCancel(t *testing.T) {
	prog := branchyProg(t, 10)
	for _, workers := range []int{0, 4} {
		in := injector(t, "symex.cancel:nth=1")
		_, err := symex.New(prog, directedConfig(prog, workers, in)).Run(stopAtFirst)
		if !errors.Is(err, symex.ErrStopped) {
			t.Errorf("workers=%d: err = %v, want ErrStopped", workers, err)
		}
	}
}

// TestFrontierStallOnlyDelays checks a stall fault changes timing but not
// the committed result.
func TestFrontierStallOnlyDelays(t *testing.T) {
	prog := branchyProg(t, 8)
	base := runFrontierDirected(t, prog, symex.Config{Target: "ep", InputSize: 64}, 4, stopAtFirst)
	in := injector(t, "symex.frontier_stall:nth=1|3,delay=2ms")
	res, err := symex.New(prog, directedConfig(prog, 4, in)).Run(stopAtFirst)
	if err != nil {
		t.Fatalf("stalled Run: %v", err)
	}
	if got := resultIdentity(res); got != resultIdentity(base) {
		t.Errorf("stalled run differs from fault-free run:\n%s\nvs\n%s", got, resultIdentity(base))
	}
	if in.Injected() == 0 {
		t.Error("stall schedule never fired")
	}
}

// TestDiscoverSurfacesTransient checks dynamic-CFG discovery propagates an
// injected solver fault instead of silently returning a partial edge set.
func TestDiscoverSurfacesTransient(t *testing.T) {
	prog := branchyProg(t, 6)
	_, err := symex.Discover(prog, symex.NaiveConfig{
		InputSize: 64,
		Faults:    injector(t, "solver.sat:nth=1"),
	})
	if !faultinject.IsTransient(err) {
		t.Fatalf("Discover err = %v, want transient fault", err)
	}
	// And without faults the same discovery is clean.
	if _, err := symex.Discover(prog, symex.NaiveConfig{InputSize: 64}); err != nil {
		t.Fatalf("fault-free Discover: %v", err)
	}
}
