package symex

import (
	"errors"
	"fmt"
	"log/slog"

	"octopocs/internal/cfg"
	"octopocs/internal/expr"
	"octopocs/internal/faultinject"
	"octopocs/internal/isa"
	"octopocs/internal/journal"
	"octopocs/internal/solver"
	"octopocs/internal/telemetry"
)

// Defaults.
const (
	DefaultInputSize = 256
	DefaultMaxSteps  = 400_000
	// DefaultTheta is the paper's θ: the maximum number of loop
	// iterations attempted when searching for a loop exit (§ IV-B).
	DefaultTheta = 120
)

// Errors.
var (
	// ErrNoDistances means directed execution was requested without
	// backward-path-finding results.
	ErrNoDistances = errors.New("symex: directed execution requires distance maps")
	// ErrStopped reports that the Config.Stop channel was closed mid-run;
	// the execution was cancelled, not completed.
	ErrStopped = errors.New("symex: execution stopped")
)

// stopCheckMask throttles Stop polling: the state loop checks the channel
// when steps&stopCheckMask == 0. Symbolic steps are orders of magnitude
// heavier than concrete ones, so a small interval keeps cancellation prompt
// without measurable overhead.
const stopCheckMask = 255

// Config parameterizes an Executor.
type Config struct {
	// InputSize is the length of the symbolic input file.
	InputSize int
	// MaxSteps bounds instructions per state.
	MaxSteps int64
	// Theta is the maximum number of times a block may be re-entered
	// within one frame before the state is classified loop-dead.
	Theta int
	// SatBudget is the solver evaluation budget per feasibility check.
	SatBudget int64
	// Target is the objective function (the paper's ep).
	Target string
	// Distances holds backward path finding results for Target; required
	// by Run, unused by RunNaive.
	Distances *cfg.Distances
	// Prune, when non-nil, supplies sound static facts (folded branches,
	// dead blocks) from the pre-P2 analysis: the executor skips branch
	// directions the pruner proves dead instead of spending SAT checks and
	// backtrack slots on them. Because a pruned direction is infeasible on
	// every path, the committed path, constraint set and result are
	// identical with and without a pruner; only the work differs.
	Prune cfg.Pruner
	// Oracle, when non-nil, supplies abstract-interpretation branch proofs
	// (interval∧congruence value ranges): a branch the oracle decides is
	// resolved without consulting the solver at all. Soundness matches
	// Prune: the proven direction is feasible on exactly the paths the
	// solver would accept (an active state's path condition is invariantly
	// satisfiable, and every concrete execution takes the proven arm), so
	// the committed path, constraint set and result are byte-identical with
	// the oracle on or off; only the SAT checks differ.
	Oracle StaticOracle
	// MaxBacktracks bounds directed-mode decision reversals.
	MaxBacktracks int
	// Workers selects the exploration engine. 0 (the default) runs the
	// sequential backtracking loop. Workers >= 1 runs the parallel frontier
	// engine with that many explorer goroutines; 1 is the deterministic
	// reference configuration, and any N >= 1 produces the same Result
	// (modulo Stats) as long as MaxBacktracks is not hit mid-run. When
	// Workers > 1 the Visitor may be invoked from multiple goroutines
	// concurrently and must be safe for that.
	Workers int
	// SolverCache, when non-nil, memoizes satisfiability verdicts across
	// feasibility checks. Sharing one cache between executors (and between
	// the frontier engine's workers) is safe and is the intended
	// configuration.
	SolverCache *solver.Cache
	// Stop is a cooperative cancellation signal; when it closes, Run and
	// RunNaive return ErrStopped promptly. May be nil.
	Stop <-chan struct{}
	// Metrics receives run-level counters, flushed once per run; may be
	// nil.
	Metrics *Metrics
	// Logger receives structured diagnostics (dead-state context,
	// backtrack exhaustion); nil means discard.
	Logger *slog.Logger
	// Faults, when non-nil, injects scheduled faults at the step-loop
	// checkpoints (worker panic, frontier stall, forced cancellation) and
	// into the executor's solver. Nil in production.
	Faults *faultinject.Injector
	// Journal, when non-nil and verbose, receives per-node frontier events
	// (fork/prune/commit) and the solver's cache events. These are
	// worker-attributed and schedule-dependent, so they are verbose-class:
	// the journal's deterministic rendering never includes them. Nil
	// (no-op) in production.
	Journal *journal.Recorder
}

// DefaultMaxBacktracks bounds how many decision reversals directed
// execution attempts before giving up.
const DefaultMaxBacktracks = 512

// EpEntry describes one arrival at the objective function.
type EpEntry struct {
	// Seq is 1-based arrival ordinal.
	Seq int
	// Args are the symbolic argument expressions of the call.
	Args []*expr.Expr
	// FilePos is the input file position indicator at the call.
	FilePos int64
}

// Decision tells the executor how to proceed after an ep entry.
type Decision int

// Visitor decisions.
const (
	// Continue executes through the objective function and keeps going.
	Continue Decision = iota + 1
	// Stop ends the run successfully with the current constraints.
	Stop
	// Infeasible reports that the constraints the visitor just added
	// contradict the path condition: the state dies and directed
	// execution backtracks to try another path to the objective.
	Infeasible
)

// Visitor observes each arrival at the objective function. It may add
// constraints to the state (phase P3 bunch placement) before deciding.
type Visitor func(entry EpEntry, st *State) (Decision, error)

// StaticOracle answers "which successor does every execution of fn take at
// the conditional branch ending block?" — the contract implemented by
// absint.Result. Implementations must be safe for unsynchronized concurrent
// use: every frontier worker queries the same oracle.
type StaticOracle interface {
	BranchProved(fn string, block int) (taken int, ok bool)
}

// Stats captures resource usage for the Table IV comparison.
type Stats struct {
	Steps     int64
	SatChecks int64
	// States is the number of states explored (directed mode counts the
	// initial path plus one per backtrack).
	States int
	// Backtracks counts directed-mode decision reversals (the paper's
	// "increase the number of iterations and repeat" loop policy).
	Backtracks int
	// LoopStates counts symbolic decisions that re-entered an
	// already-visited block — the paper's transient "loop" state.
	LoopStates int64
	// LoopDeads and ProgramDeads count dead states encountered.
	LoopDeads    int
	ProgramDeads int
	// PrunedBranches counts branch directions skipped because the static
	// pre-analysis proved them dead (no SAT check, no backtrack slot).
	PrunedBranches int64
	// SatDischargedStatic counts solver calls avoided because the
	// abstract-interpretation oracle proved the branch direction before the
	// solver ever saw it (one per discharged feasibility query).
	SatDischargedStatic int64
	// PeakMemBytes is the peak estimated retained memory across live
	// states (naive mode) or the final state footprint (directed mode).
	PeakMemBytes int64
	// Workers is the number of explorer goroutines used; 0 means the
	// sequential engine ran.
	Workers int
	// Steals counts frontier nodes executed by a worker other than the one
	// that emitted them (parallel engine only).
	Steals uint64
	// FrontierPeak is the maximum number of pending nodes in the shared
	// frontier heap (parallel engine only).
	FrontierPeak int
}

// Result is the outcome of a symbolic run.
type Result struct {
	// Kind is KindActive when the visitor stopped the run at the
	// objective (success); otherwise the terminal state kind.
	Kind StateKind
	// Why explains dead kinds.
	Why string
	// Constraints is the full path condition of the final state.
	Constraints []*expr.Expr
	// Entries lists the objective arrivals observed.
	Entries []EpEntry
	// Path is the committed state's frontier identity: the sequence of
	// emission ordinals from the root. It is the same for every worker
	// count N >= 1 by the commit protocol (nil under the sequential
	// engine, which does not track paths).
	Path  []uint32
	Stats Stats
}

// Reached reports whether the run stopped at the objective by visitor
// decision.
func (r *Result) Reached() bool { return r.Kind == KindActive }

// pathStringMax bounds PathString's rendered elements so journal events
// stay small on pathological decision trees.
const pathStringMax = 96

// PathString renders a frontier path as dotted ordinals ("0.2.1"), "root"
// for the empty path, and "" for nil (sequential engine). Long paths are
// truncated with a trailing ellipsis.
func PathString(path []uint32) string {
	if path == nil {
		return ""
	}
	if len(path) == 0 {
		return "root"
	}
	n := len(path)
	truncated := false
	if n > pathStringMax {
		n, truncated = pathStringMax, true
	}
	var b []byte
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, '.')
		}
		b = fmt.Appendf(b, "%d", path[i])
	}
	if truncated {
		b = append(b, "…"...)
	}
	return string(b)
}

// choice is a pending alternative at a past decision point: a snapshot of
// the state with the program counter still at the deciding instruction,
// plus the constraints that select the untried directions. Re-executing the
// instruction under an added alternative constraint makes the executor take
// that direction.
type choice struct {
	snap *State
	alts []*expr.Expr
}

// Executor runs symbolic execution over one program.
type Executor struct {
	prog *isa.Program
	cfg  Config
	sol  solver.Solver
	stat Stats
	// stack holds pending decision alternatives for directed backtracking.
	stack []choice
	// emit, when set, redirects pushChoice into the parallel frontier
	// instead of the local stack (set per worker by the frontier engine).
	emit func(st *State, alts []*expr.Expr, dists []int64)
	// onResolve observes indirect-call resolutions (dynamic CFG discovery).
	onResolve func(site isa.Loc, callee string)
}

// normalize fills Config defaults; shared by New and the frontier engine.
func normalize(cfg Config) Config {
	if cfg.InputSize <= 0 {
		cfg.InputSize = DefaultInputSize
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.Theta <= 0 {
		cfg.Theta = DefaultTheta
	}
	if cfg.MaxBacktracks <= 0 {
		cfg.MaxBacktracks = DefaultMaxBacktracks
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.DiscardLogger()
	}
	return cfg
}

// New returns an executor. The program must be validated.
func New(prog *isa.Program, cfg Config) *Executor {
	cfg = normalize(cfg)
	e := &Executor{prog: prog, cfg: cfg}
	e.sol = solver.Solver{Budget: cfg.SatBudget, Cache: cfg.SolverCache, Faults: cfg.Faults, Journal: cfg.Journal}
	if cfg.Metrics != nil {
		e.sol.Metrics = cfg.Metrics.Solver
	}
	return e
}

// stopHit reports whether the cancellation channel has closed.
func (e *Executor) stopHit() bool {
	if e.cfg.Stop == nil {
		return false
	}
	select {
	case <-e.cfg.Stop:
		return true
	default:
		return false
	}
}

// sat checks satisfiability of the conjunction of cs.
func (e *Executor) sat(cs []*expr.Expr) (bool, error) {
	e.stat.SatChecks++
	return e.sol.Sat(cs)
}

// feasible checks whether adding extra to the state's path condition keeps
// it satisfiable.
func (e *Executor) feasible(st *State, extra *expr.Expr) (bool, error) {
	if v, ok := extra.IsConst(); ok {
		return v != 0, nil
	}
	return e.sat(append(append([]*expr.Expr{}, st.constraints...), extra))
}

// concretize pins a symbolic expression to one concrete value consistent
// with the path condition, adding the pin as a constraint (the standard
// address-concretization strategy). An unsatisfiable path condition kills
// the state (ok=false) so directed execution can backtrack; only solver
// budget exhaustion is a hard error.
func (e *Executor) concretize(st *State, v *expr.Expr) (val uint64, ok bool, err error) {
	if c, isConst := v.IsConst(); isConst {
		return c, true, nil
	}
	e.stat.SatChecks++
	model, err := e.sol.Solve(st.constraints)
	if err != nil {
		if errors.Is(err, solver.ErrUnsat) {
			st.die(KindProgramDead, fmt.Sprintf("path condition unsatisfiable at %s", st.loc()))
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("concretize %v: %w", v, err)
	}
	val, evalOK := v.Eval(func(sym int) (uint64, bool) {
		if b, present := model[sym]; present {
			return uint64(b), true
		}
		return 0, true // unconstrained symbols default to zero
	})
	if !evalOK {
		return 0, false, fmt.Errorf("concretize %v: expression not evaluable", v)
	}
	st.AddConstraint(expr.Bin(expr.OpEq, v, expr.Const(val)))
	return val, true, nil
}

// Run performs directed symbolic execution toward cfg.Target, invoking the
// visitor at every arrival. It implements Algorithm 2 of the paper: the
// state follows the backward-path preference at every decision, and a dead
// state (loop-dead, program-dead, crash or premature exit) backtracks to
// the most recent decision with an untried feasible alternative — which is
// how the paper's "increase the number of iterations from one to θ"
// loop-state handling manifests here.
//
// With Config.Workers >= 1 the run is delegated to the parallel frontier
// engine, which explores the same decision tree concurrently and commits the
// minimal-path outcome (see frontier.go for the determinism argument).
func (e *Executor) Run(visitor Visitor) (*Result, error) {
	if e.cfg.Workers >= 1 {
		return runFrontier(e.prog, e.cfg, visitor, frontierBudgets{}, e.onResolve)
	}
	res, err := e.run(visitor)
	kind := KindActive
	if res != nil {
		kind = res.Kind
	}
	e.cfg.Metrics.observe(&e.stat, kind)
	if res != nil && res.Kind != KindActive {
		e.cfg.Logger.Debug("directed run ended dead",
			"kind", res.Kind.String(), "why", res.Why,
			"states", e.stat.States, "backtracks", e.stat.Backtracks)
	}
	return res, err
}

func (e *Executor) run(visitor Visitor) (*Result, error) {
	if e.cfg.Distances == nil {
		return nil, ErrNoDistances
	}
	st := newState()
	e.pushEntry(st)
	e.stat.States = 1

	var firstDeath *State
	for {
		for st.kind == KindActive {
			if st.steps&stopCheckMask == 0 {
				if e.stopHit() {
					return nil, ErrStopped
				}
				// An injected forced cancellation is indistinguishable
				// from the Stop channel closing mid-step.
				if e.cfg.Faults.Fire(faultinject.SymexCancel) {
					return nil, ErrStopped
				}
			}
			if st.steps >= e.cfg.MaxSteps {
				st.die(KindHung, fmt.Sprintf("step budget exhausted at %s", st.loc()))
				break
			}
			stop, err := e.step(st, visitor, true)
			if err != nil {
				return nil, err
			}
			if stop {
				res := e.result(st)
				res.Kind = KindActive
				return res, nil
			}
		}
		switch st.kind {
		case KindLoopDead:
			e.stat.LoopDeads++
		case KindProgramDead:
			e.stat.ProgramDeads++
		}
		if firstDeath == nil || deathRank(st.kind) > deathRank(firstDeath.kind) {
			firstDeath = st
		}
		next, err := e.backtrack()
		if err != nil {
			return nil, err
		}
		if next == nil {
			return e.result(firstDeath), nil
		}
		st = next
	}
}

// deathRank orders terminal kinds by diagnostic value: an infeasible
// objective placement is the strongest "cannot be triggered" signal
// (§ III-C P3.3), then program-dead (§ III-B), then the θ-bounded
// loop-dead.
func deathRank(k StateKind) int {
	switch k {
	case KindInfeasible:
		return 6
	case KindProgramDead:
		return 5
	case KindLoopDead:
		return 4
	case KindHung:
		return 3
	case KindCrashed:
		return 2
	case KindExited:
		return 1
	default:
		return 0
	}
}

// pushChoice records untried alternatives at the current instruction,
// snapshotting st with the program counter still at the deciding instruction
// so that resuming re-executes it under the added alternative constraint.
// dists carries the per-alternative frontier priority (backward-path
// distance of the block the alternative leads to); the sequential stack
// ignores it. When the executor belongs to a frontier worker the
// alternatives go to the shared heap instead of the local stack.
func (e *Executor) pushChoice(st *State, alts []*expr.Expr, dists []int64) {
	if len(alts) == 0 {
		return
	}
	if e.emit != nil {
		e.emit(st, alts, dists)
		return
	}
	e.stack = append(e.stack, choice{snap: st.clone(), alts: alts})
}

// backtrack resumes the most recent decision that still has a feasible
// untried alternative, or returns nil when exhausted.
func (e *Executor) backtrack() (*State, error) {
	for len(e.stack) > 0 {
		if e.stopHit() {
			return nil, ErrStopped
		}
		if e.stat.Backtracks >= e.cfg.MaxBacktracks {
			return nil, nil
		}
		top := &e.stack[len(e.stack)-1]
		if len(top.alts) == 0 {
			e.stack = e.stack[:len(e.stack)-1]
			continue
		}
		alt := top.alts[0]
		top.alts = top.alts[1:]
		base := top.snap
		if len(top.alts) > 0 {
			base = base.clone()
		} else {
			e.stack = e.stack[:len(e.stack)-1]
		}
		ok, err := e.feasible(base, alt)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		e.stat.Backtracks++
		e.stat.States++
		base.AddConstraint(alt)
		return base, nil
	}
	return nil, nil
}

func (e *Executor) result(st *State) *Result {
	e.stat.Steps = st.steps
	if fp := st.footprint(); fp > e.stat.PeakMemBytes {
		e.stat.PeakMemBytes = fp
	}
	entries := make([]EpEntry, len(st.entries))
	copy(entries, st.entries)
	return &Result{
		Kind:        st.kind,
		Why:         st.why,
		Constraints: st.constraints,
		Entries:     entries,
		Stats:       e.stat,
	}
}

func (e *Executor) pushEntry(st *State) {
	entry := e.prog.Func(e.prog.Entry)
	st.frames = append(st.frames, &Frame{fn: entry, visits: map[int]int{0: 1}})
}

// step executes one instruction of st. directed selects the branch policy.
// The boolean result is true when the visitor stopped the run.
func (e *Executor) step(st *State, visitor Visitor, directed bool) (bool, error) {
	st.steps++
	fr := st.top()
	in := &fr.fn.Blocks[fr.block].Insts[fr.inst]
	advance := true

	switch in.Op {
	case isa.OpConst:
		fr.regs[in.Dst] = expr.Const(uint64(in.Imm))
	case isa.OpMov:
		fr.regs[in.Dst] = reg(fr, in.A)
	case isa.OpBin:
		v, err := e.binOp(st, in.Bin, reg(fr, in.A), reg(fr, in.B))
		if err != nil {
			return false, err
		}
		if st.kind != KindActive {
			return false, nil
		}
		fr.regs[in.Dst] = v
	case isa.OpBinImm:
		v, err := e.binOp(st, in.Bin, reg(fr, in.A), expr.Const(uint64(in.Imm)))
		if err != nil {
			return false, err
		}
		if st.kind != KindActive {
			return false, nil
		}
		fr.regs[in.Dst] = v
	case isa.OpCmp:
		fr.regs[in.Dst] = cmpExpr(in.Cmp, reg(fr, in.A), reg(fr, in.B))
	case isa.OpCmpImm:
		fr.regs[in.Dst] = cmpExpr(in.Cmp, reg(fr, in.A), expr.Const(uint64(in.Imm)))
	case isa.OpLoad:
		addr, ok, err := e.concretize(st, expr.Bin(expr.OpAdd, reg(fr, in.A), expr.Const(uint64(in.Imm))))
		if err != nil || !ok {
			return false, err
		}
		v, f := st.mem.load(addr, in.Size)
		if f != nil {
			st.die(KindCrashed, f.String())
			return false, nil
		}
		fr.regs[in.Dst] = v
	case isa.OpStore:
		addr, ok, err := e.concretize(st, expr.Bin(expr.OpAdd, reg(fr, in.A), expr.Const(uint64(in.Imm))))
		if err != nil || !ok {
			return false, err
		}
		if f := st.mem.store(addr, in.Size, reg(fr, in.B)); f != nil {
			st.die(KindCrashed, f.String())
			return false, nil
		}
	case isa.OpJmp:
		e.enterBlock(st, fr, in.ThenIdx)
		advance = false
	case isa.OpBr:
		if err := e.branch(st, fr, in, directed); err != nil {
			return false, err
		}
		advance = false
	case isa.OpCall:
		stop, err := e.call(st, fr, in, e.prog.Func(in.Callee), visitor)
		if err != nil || stop {
			return stop, err
		}
		advance = false
	case isa.OpCallInd:
		stop, err := e.callIndirect(st, fr, in, visitor, directed)
		if err != nil || stop {
			return stop, err
		}
		advance = false
	case isa.OpRet:
		e.ret(st, fr, reg(fr, in.A))
		advance = false
	case isa.OpTrap:
		st.die(KindCrashed, fmt.Sprintf("trap %d at %s", in.Imm, st.loc()))
		return false, nil
	case isa.OpSyscall:
		if err := e.syscall(st, fr, in); err != nil {
			return false, err
		}
	default:
		return false, fmt.Errorf("symex: unknown opcode %d", in.Op)
	}
	if advance && st.kind == KindActive {
		fr.inst++
	}
	return false, nil
}

// reg reads a register, defaulting unset registers to zero.
func reg(fr *Frame, r isa.Reg) *expr.Expr {
	if v := fr.regs[r]; v != nil {
		return v
	}
	return expr.Zero
}

// cmpExpr builds the boolean expression for a MIR comparison, mapping the
// Gt/Ge forms onto swapped Lt/Le.
func cmpExpr(op isa.CmpOp, a, b *expr.Expr) *expr.Expr {
	switch op {
	case isa.Eq:
		return expr.Bin(expr.OpEq, a, b)
	case isa.Ne:
		return expr.Bin(expr.OpNe, a, b)
	case isa.Lt:
		return expr.Bin(expr.OpLt, a, b)
	case isa.Le:
		return expr.Bin(expr.OpLe, a, b)
	case isa.Gt:
		return expr.Bin(expr.OpLt, b, a)
	case isa.Ge:
		return expr.Bin(expr.OpLe, b, a)
	case isa.SLt:
		return expr.Bin(expr.OpSLt, a, b)
	case isa.SLe:
		return expr.Bin(expr.OpSLe, a, b)
	default:
		panic(fmt.Sprintf("symex: unknown cmp %d", op))
	}
}

// binOp builds the result expression, handling symbolic division guards: a
// division whose divisor could be zero constrains it non-zero when
// feasible, and crashes the state otherwise.
func (e *Executor) binOp(st *State, op isa.BinOp, a, b *expr.Expr) (*expr.Expr, error) {
	var eop expr.Op
	switch op {
	case isa.Add:
		eop = expr.OpAdd
	case isa.Sub:
		eop = expr.OpSub
	case isa.Mul:
		eop = expr.OpMul
	case isa.Div, isa.Mod:
		eop = expr.OpDiv
		if op == isa.Mod {
			eop = expr.OpMod
		}
		if v, ok := b.IsConst(); ok {
			if v == 0 {
				st.die(KindCrashed, "div-by-zero")
				return nil, nil
			}
		} else {
			nz := expr.Bin(expr.OpNe, b, expr.Zero)
			ok, err := e.feasible(st, nz)
			if err != nil {
				return nil, err
			}
			if !ok {
				st.die(KindCrashed, "div-by-zero")
				return nil, nil
			}
			st.AddConstraint(nz)
		}
	case isa.And:
		eop = expr.OpAnd
	case isa.Or:
		eop = expr.OpOr
	case isa.Xor:
		eop = expr.OpXor
	case isa.Shl:
		eop = expr.OpShl
	case isa.Shr:
		eop = expr.OpShr
	default:
		return nil, fmt.Errorf("symex: unknown binop %d", op)
	}
	return expr.Bin(eop, a, b), nil
}
