package symex_test

import (
	"errors"
	"strings"
	"testing"

	"octopocs/internal/absint"
	"octopocs/internal/asm"
	"octopocs/internal/cfg"
	"octopocs/internal/expr"
	"octopocs/internal/isa"
	"octopocs/internal/journal"
	"octopocs/internal/solver"
	"octopocs/internal/symex"
	"octopocs/internal/vm"
)

// runDirected builds distances for ep and runs directed execution with the
// given visitor.
func runDirected(t *testing.T, prog *isa.Program, c symex.Config, visitor symex.Visitor) *symex.Result {
	t.Helper()
	g := cfg.Build(prog)
	c.Distances = g.DistancesTo(c.Target)
	ex := symex.New(prog, c)
	res, err := ex.Run(visitor)
	if err != nil {
		t.Fatalf("Run() error: %v", err)
	}
	return res
}

// stopAtFirst stops at the first ep arrival.
func stopAtFirst(symex.EpEntry, *symex.State) (symex.Decision, error) {
	return symex.Stop, nil
}

// solveInput solves the result constraints into a concrete input.
func solveInput(t *testing.T, res *symex.Result, n int) []byte {
	t.Helper()
	var s solver.Solver
	m, err := s.Solve(res.Constraints)
	if err != nil {
		t.Fatalf("Solve(constraints) = %v", err)
	}
	return m.Fill(n, 0)
}

// headerProg requires the 4-byte magic "MJPG" before calling ep.
func headerProg(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("hdr")
	ep := b.Function("ep", 1)
	ep.Ret(ep.Param(0))

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(16))
	f.Sys(isa.SysRead, fd, buf, f.Const(4))
	magic := f.Load(4, buf, 0)
	f.IfElse(f.EqI(magic, 0x47504A4D), // "MJPG" little-endian
		func() { f.Call("ep", fd) },
		func() { f.Exit(1) })
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestDirectedReachesThroughMagicHeader(t *testing.T) {
	prog := headerProg(t)
	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 16}, stopAtFirst)
	if !res.Reached() {
		t.Fatalf("result = %v (%s), want reached", res.Kind, res.Why)
	}
	if len(res.Entries) != 1 || res.Entries[0].Seq != 1 {
		t.Fatalf("entries = %v, want one with Seq 1", res.Entries)
	}
	if res.Entries[0].FilePos != 4 {
		t.Errorf("FilePos = %d, want 4 (after the header read)", res.Entries[0].FilePos)
	}
	in := solveInput(t, res, 16)
	if string(in[:4]) != "MJPG" {
		t.Errorf("solved header = %q, want MJPG", in[:4])
	}
	// The guiding input must actually drive the concrete binary to ep.
	entered := false
	hooks := &vm.Hooks{OnCall: func(_ isa.Loc, callee string, _ []uint64, _, _ uint64, _ isa.Reg) {
		if callee == "ep" {
			entered = true
		}
	}}
	vm.New(prog, vm.Config{Input: in, Hooks: hooks}).Run()
	if !entered {
		t.Error("solved input did not reach ep concretely")
	}
}

func TestProgramDeadOnContradiction(t *testing.T) {
	// ep requires byte0 == 5 AND byte0 == 9 on the same path.
	b := asm.NewBuilder("dead")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(1))
	v := f.Load(1, buf, 0)
	f.IfElse(f.EqI(v, 5), func() {
		f.IfElse(f.EqI(v, 9),
			func() { f.Call("ep") },
			func() { f.Exit(1) })
	}, func() { f.Exit(1) })
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 8}, stopAtFirst)
	if res.Reached() {
		t.Fatal("reached ep through a contradiction")
	}
	// The directed policy exits via the feasible alternative and the
	// program exits without ep: that is KindExited, which the pipeline
	// treats as ep-not-reached. (Program-dead arises when no feasible
	// direction exists at all; see the loop test.)
	if res.Kind != symex.KindExited && res.Kind != symex.KindProgramDead {
		t.Fatalf("kind = %v, want exited or program-dead", res.Kind)
	}
}

func TestLoopEntriesAndBunchPlacement(t *testing.T) {
	// main loops reading a 1-byte tag: tag 1 → call ep (reads 2 bytes);
	// tag 0 → end. Visitor pins each ep chunk to distinct bytes and stops
	// after two entries.
	b := asm.NewBuilder("loop")
	ep := b.Function("ep", 1) // (fd)
	buf := ep.Sys(isa.SysAlloc, ep.Const(8))
	ep.Sys(isa.SysRead, ep.Param(0), buf, ep.Const(2))
	ep.Ret(ep.Load(1, buf, 0))

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	tag := f.Sys(isa.SysAlloc, f.Const(8))
	done := f.VarI(0)
	f.While(func() isa.Reg { return f.EqI(done, 0) }, func() {
		n := f.Sys(isa.SysRead, fd, tag, f.Const(1))
		f.IfElse(f.EqI(n, 0), func() { f.AssignI(done, 1) }, func() {
			tv := f.Load(1, tag, 0)
			f.IfElse(f.EqI(tv, 1),
				func() { f.Call("ep", fd) },
				func() { f.AssignI(done, 1) })
		})
	})
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	bunches := [][]byte{{0xAA, 0xBB}, {0xCC, 0xDD}}
	var positions []int64
	visitor := func(entry symex.EpEntry, st *symex.State) (symex.Decision, error) {
		positions = append(positions, entry.FilePos)
		for i, bv := range bunches[entry.Seq-1] {
			st.AddConstraint(expr.Bin(expr.OpEq,
				expr.Sym(int(entry.FilePos)+i), expr.Const(uint64(bv))))
		}
		if entry.Seq == len(bunches) {
			return symex.Stop, nil
		}
		return symex.Continue, nil
	}
	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 16}, visitor)
	if !res.Reached() {
		t.Fatalf("result = %v (%s), want reached", res.Kind, res.Why)
	}
	if len(positions) != 2 {
		t.Fatalf("ep entries = %d, want 2", len(positions))
	}
	// Entry 1 after reading 1 tag byte → pos 1; ep consumes 2 → next tag
	// at 3 → entry 2 at pos 4.
	if positions[0] != 1 || positions[1] != 4 {
		t.Fatalf("positions = %v, want [1 4]", positions)
	}
	in := solveInput(t, res, 16)
	if in[0] != 1 || in[3] != 1 {
		t.Errorf("tags = %d,%d want 1,1 (guiding input)", in[0], in[3])
	}
	if in[1] != 0xAA || in[2] != 0xBB || in[4] != 0xCC || in[5] != 0xDD {
		t.Errorf("bunches misplaced: % x", in[:6])
	}
}

func TestLoopDeadWhenExitImpossible(t *testing.T) {
	// The loop exit requires byte0 == 7, but an earlier guard already
	// pinned byte0 != 7: no iteration count can exit, and every further
	// iteration re-reads the same decision → loop-dead within θ.
	b := asm.NewBuilder("loopdead")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(1))
	v := f.Load(1, buf, 0)
	f.IfElse(f.EqI(v, 7), func() { f.Exit(1) }, func() {})
	// Loop: only exits when v == 7 (impossible now); body does nothing.
	f.While(func() isa.Reg { return f.NeI(v, 7) }, func() {})
	f.Call("ep")
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 8, Theta: 16}, stopAtFirst)
	if res.Reached() {
		t.Fatal("reached ep through an impossible loop exit")
	}
	if res.Kind != symex.KindLoopDead {
		t.Fatalf("kind = %v (%s), want loop-dead", res.Kind, res.Why)
	}
}

func TestThetaBoundsSymbolicLoop(t *testing.T) {
	// Loop consumes one byte per iteration and exits on byte==0; ep is
	// called after. Directed execution must find an exit within θ
	// iterations — via the backtracking retry policy — and produce a
	// guiding input whose concrete run reaches ep.
	b := asm.NewBuilder("theta")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	going := f.VarI(1)
	f.While(func() isa.Reg { return going }, func() {
		f.Sys(isa.SysRead, fd, buf, f.Const(1))
		v := f.Load(1, buf, 0)
		f.If(f.EqI(v, 0), func() { f.AssignI(going, 0) })
	})
	f.Call("ep")
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 8}, stopAtFirst)
	if !res.Reached() {
		t.Fatalf("result = %v (%s), want reached", res.Kind, res.Why)
	}
	in := solveInput(t, res, 8)
	// Some byte must be zero so the loop exits.
	hasZero := false
	for _, v := range in {
		hasZero = hasZero || v == 0
	}
	if !hasZero {
		t.Errorf("input % x has no loop-exit byte", in)
	}
	// The guiding input must drive the concrete binary to ep.
	entered := false
	hooks := &vm.Hooks{OnCall: func(_ isa.Loc, callee string, _ []uint64, _, _ uint64, _ isa.Reg) {
		entered = entered || callee == "ep"
	}}
	vm.New(prog, vm.Config{Input: in, Hooks: hooks}).Run()
	if !entered {
		t.Error("solved input did not reach ep concretely")
	}
}

func TestIndirectCallPinnedTowardTarget(t *testing.T) {
	// calli through a table: slot 2 leads to ep. The symbolic index must
	// be pinned to 2.
	b := asm.NewBuilder("ind")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	h1 := b.Function("h1", 0)
	h1.RetI(0)
	h2 := b.Function("h2", 0)
	h2.Call("ep")
	h2.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(1))
	idx := f.Load(1, buf, 0)
	f.CallInd(idx)
	f.Exit(0)
	b.Entry("main")
	b.FuncTable("h1", "", "h2")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 8}, stopAtFirst)
	if !res.Reached() {
		t.Fatalf("result = %v (%s), want reached", res.Kind, res.Why)
	}
	in := solveInput(t, res, 8)
	if in[0] != 2 {
		t.Errorf("in[0] = %d, want 2 (table slot reaching ep)", in[0])
	}
}

func TestEpArgsExposed(t *testing.T) {
	// ep(tag) where tag comes from the input; the visitor must see the
	// symbolic argument and be able to pin it.
	b := asm.NewBuilder("args")
	ep := b.Function("ep", 1)
	ep.Ret(ep.Param(0))
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(1))
	f.Call("ep", f.Load(1, buf, 0))
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	visitor := func(entry symex.EpEntry, st *symex.State) (symex.Decision, error) {
		if len(entry.Args) != 1 {
			t.Fatalf("args = %d, want 1", len(entry.Args))
		}
		st.AddConstraint(expr.Bin(expr.OpEq, entry.Args[0], expr.Const(0x5D)))
		return symex.Stop, nil
	}
	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 8}, visitor)
	if !res.Reached() {
		t.Fatalf("result = %v, want reached", res.Kind)
	}
	in := solveInput(t, res, 8)
	if in[0] != 0x5D {
		t.Errorf("in[0] = %#x, want 0x5D (pinned ep arg)", in[0])
	}
}

func TestHardcodedArgVisible(t *testing.T) {
	// T calls ep with a constant 0x77: the visitor sees a concrete arg it
	// can compare against recorded context (the Idx-10..12 mechanism).
	b := asm.NewBuilder("hard")
	ep := b.Function("ep", 1)
	ep.Ret(ep.Param(0))
	f := b.Function("main", 0)
	f.Call("ep", f.Const(0x77))
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var seen uint64
	visitor := func(entry symex.EpEntry, st *symex.State) (symex.Decision, error) {
		v, ok := entry.Args[0].IsConst()
		if !ok {
			t.Fatal("arg should be concrete")
		}
		seen = v
		return symex.Stop, nil
	}
	res := runDirected(t, prog, symex.Config{Target: "ep"}, visitor)
	if !res.Reached() || seen != 0x77 {
		t.Fatalf("reached=%v seen=%#x, want true/0x77", res.Reached(), seen)
	}
}

func TestExitedBeforeTarget(t *testing.T) {
	b := asm.NewBuilder("exit")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runDirected(t, prog, symex.Config{Target: "ep"}, stopAtFirst)
	if res.Reached() || res.Kind != symex.KindExited {
		t.Fatalf("kind = %v, want exited", res.Kind)
	}
}

func TestCrashedState(t *testing.T) {
	b := asm.NewBuilder("crash")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	f.Ret(f.Load(8, f.Const(0), 8)) // null deref before ep
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runDirected(t, prog, symex.Config{Target: "ep"}, stopAtFirst)
	if res.Kind != symex.KindCrashed {
		t.Fatalf("kind = %v, want crashed", res.Kind)
	}
}

func TestRunRequiresDistances(t *testing.T) {
	prog := headerProg(t)
	ex := symex.New(prog, symex.Config{Target: "ep"})
	if _, err := ex.Run(stopAtFirst); !errors.Is(err, symex.ErrNoDistances) {
		t.Fatalf("Run() = %v, want ErrNoDistances", err)
	}
}

func TestNaiveReachesSmallProgram(t *testing.T) {
	prog := headerProg(t)
	res, err := symex.RunNaive(prog, symex.NaiveConfig{Target: "ep", InputSize: 16})
	if err != nil {
		t.Fatalf("RunNaive() = %v", err)
	}
	if !res.Reached() {
		t.Fatalf("kind = %v (%s), want reached", res.Kind, res.Why)
	}
	if res.Stats.States < 1 {
		t.Error("no states recorded")
	}
}

// branchyProg has k sequential independent symbolic branches before ep —
// 2^k paths for naive exploration.
func branchyProg(t *testing.T, k int) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("branchy")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(64))
	f.Sys(isa.SysRead, fd, buf, f.Const(int64(k+1)))
	acc := f.VarI(0)
	for i := 0; i < k; i++ {
		v := f.Load(1, buf, int64(i))
		f.IfElse(f.GtI(v, 100),
			func() { f.Assign(acc, f.AddI(acc, 1)) },
			func() { f.Assign(acc, f.AddI(acc, 2)) })
	}
	// ep gated on the last byte so the target sits past the blowup.
	last := f.Load(1, buf, int64(k))
	f.If(f.EqI(last, 0x42), func() { f.Call("ep") })
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestNaiveMemoryBlowup(t *testing.T) {
	prog := branchyProg(t, 14)
	_, err := symex.RunNaive(prog, symex.NaiveConfig{
		Target:    "ep",
		InputSize: 64,
		MemBudget: 1 << 20, // 1 MiB simulated budget
	})
	if !errors.Is(err, symex.ErrMemBudget) {
		t.Fatalf("RunNaive() = %v, want ErrMemBudget", err)
	}
}

func TestDirectedHandlesBranchyProgram(t *testing.T) {
	prog := branchyProg(t, 14)
	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 64}, stopAtFirst)
	if !res.Reached() {
		t.Fatalf("kind = %v (%s), want reached", res.Kind, res.Why)
	}
	if res.Stats.States != 1 {
		t.Errorf("states = %d, want 1 (single directed path)", res.Stats.States)
	}
	in := solveInput(t, res, 64)
	if in[14] != 0x42 {
		t.Errorf("in[14] = %#x, want 0x42", in[14])
	}
}

// oracleProg gates ep behind a branch absint proves: the sum of a loaded
// byte with itself is at most 510, so the bound check can never fail. The
// condition is symbolic to the executor (it depends on input) and composite
// enough that the expression simplifier cannot fold it, so without the
// oracle it costs SAT checks.
func oracleProg(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("oracle")
	ep := b.Function("ep", 1)
	ep.Ret(ep.Param(0))

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(16))
	f.Sys(isa.SysRead, fd, buf, f.Const(4))
	x := f.Load(1, buf, 0)
	y := f.Add(x, x) // [0, 510] by the load width
	f.IfElse(f.CmpI(isa.Lt, y, 1024),
		func() {
			f.IfElse(f.EqI(f.Load(1, buf, 1), 0x4D),
				func() { f.Call("ep", fd) },
				func() { f.Exit(2) })
		},
		func() { f.Exit(1) }) // absint-refuted arm
	f.Exit(0)
	b.Entry("main")
	return b.MustBuild()
}

// TestOracleDischargesBranch pins the absint oracle contract end to end:
// with the oracle on, the run reaches ep with an identical constraint set
// and solved input, spends fewer SAT checks, and counts the discharges.
func TestOracleDischargesBranch(t *testing.T) {
	prog := oracleProg(t)
	off := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 16}, stopAtFirst)
	on := runDirected(t, prog, symex.Config{
		Target: "ep", InputSize: 16, Oracle: absint.Analyze(prog),
	}, stopAtFirst)

	if !off.Reached() || !on.Reached() {
		t.Fatalf("reached: off=%v on=%v", off.Kind, on.Kind)
	}
	inOff := solveInput(t, off, 16)
	inOn := solveInput(t, on, 16)
	if string(inOff) != string(inOn) {
		t.Errorf("solved inputs diverge: %x vs %x", inOff, inOn)
	}
	if len(on.Constraints) != len(off.Constraints) {
		t.Errorf("constraint sets diverge: %d vs %d", len(on.Constraints), len(off.Constraints))
	}
	if on.Stats.SatDischargedStatic == 0 {
		t.Error("oracle run discharged nothing")
	}
	if off.Stats.SatDischargedStatic != 0 {
		t.Error("oracle-off run counted discharges")
	}
	if on.Stats.SatChecks >= off.Stats.SatChecks {
		t.Errorf("oracle did not reduce SAT checks: on=%d off=%d",
			on.Stats.SatChecks, off.Stats.SatChecks)
	}
}

// TestOracleJournalsDischarges pins the provenance trail: a verbose
// journal records one symex.absint_discharged event per discharge, and
// the generic renderer shows it under the symex phase.
func TestOracleJournalsDischarges(t *testing.T) {
	prog := oracleProg(t)
	jr := journal.New("test", journal.Options{Verbosity: journal.VerbVerbose})
	res := runDirected(t, prog, symex.Config{
		Target: "ep", InputSize: 16, Oracle: absint.Analyze(prog), Journal: jr,
	}, stopAtFirst)
	var discharged int64
	for _, ev := range jr.Events() {
		if ev.Type == journal.EvSymexAbsint {
			discharged++
		}
	}
	if discharged != res.Stats.SatDischargedStatic || discharged == 0 {
		t.Fatalf("journal records %d discharges, stats say %d",
			discharged, res.Stats.SatDischargedStatic)
	}
	out := journal.Render(jr.Events(), journal.RenderOptions{All: true})
	if !strings.Contains(out, "symex.absint_discharged") {
		t.Errorf("rendered journal does not show the discharge:\n%s", out)
	}
}

// TestOracleNaiveAndFrontier pins the same contract on the naive fork loop
// and the parallel frontier engine.
func TestOracleNaiveAndFrontier(t *testing.T) {
	prog := oracleProg(t)
	oracle := absint.Analyze(prog)
	for _, workers := range []int{0, 2} {
		off, err := symex.RunNaive(prog, symex.NaiveConfig{Target: "ep", InputSize: 16, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d off: %v", workers, err)
		}
		on, err := symex.RunNaive(prog, symex.NaiveConfig{Target: "ep", InputSize: 16, Workers: workers, Oracle: oracle})
		if err != nil {
			t.Fatalf("workers=%d on: %v", workers, err)
		}
		if !off.Reached() || !on.Reached() {
			t.Fatalf("workers=%d reached: off=%v on=%v", workers, off.Kind, on.Kind)
		}
		if string(solveInput(t, off, 16)) != string(solveInput(t, on, 16)) {
			t.Errorf("workers=%d solved inputs diverge", workers)
		}
		if on.Stats.SatDischargedStatic == 0 {
			t.Errorf("workers=%d: nothing discharged", workers)
		}
		if on.Stats.SatChecks >= off.Stats.SatChecks {
			t.Errorf("workers=%d: SAT checks not reduced (on=%d off=%d)",
				workers, on.Stats.SatChecks, off.Stats.SatChecks)
		}
	}
}
