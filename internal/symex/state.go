// Package symex implements symbolic execution of MIR programs: the engine
// behind OCTOPOCS phases P2 (guiding-input generation) and P3 (combining),
// and the naive-exploration baseline of Table IV.
//
// The input file is fully symbolic: byte i of the file is the expression
// symbol in[i]. Execution mirrors the concrete vm package, but registers and
// memory bytes hold expressions; branch decisions on symbolic conditions are
// resolved by the directed policy (backward-path distances plus
// satisfiability checks) or, in naive mode, by forking.
//
// Two engines share the stepping core. Config.Workers == 0 selects the
// sequential backtracking loop (Algorithm 2 of the paper, one state at a
// time); Workers >= 1 selects the parallel frontier engine of frontier.go,
// which explores the same decision tree with a pool of explorer goroutines
// over a shared minimal-distance work heap.
//
// Concurrency: an Executor and its States are confined to one goroutine and
// are not safe for concurrent use. The parallel engine gets its concurrency
// by giving every worker a private Executor and exchanging only immutable
// state snapshots through the frontier heap; the only caller-visible
// consequence is that a Visitor runs concurrently when Config.Workers > 1
// and must be safe for that.
package symex

import (
	"fmt"
	"sort"

	"octopocs/internal/expr"
	"octopocs/internal/isa"
)

// Frame is one symbolic activation record.
type Frame struct {
	fn     *isa.Function
	regs   [isa.NumRegs]*expr.Expr
	block  int
	inst   int
	retDst isa.Reg
	// visits counts how many times each block was entered in this frame,
	// for loop-state detection and the θ bound.
	visits map[int]int
}

func (f *Frame) clone() *Frame {
	nf := &Frame{
		fn:     f.fn,
		regs:   f.regs,
		block:  f.block,
		inst:   f.inst,
		retDst: f.retDst,
		visits: make(map[int]int, len(f.visits)),
	}
	for k, v := range f.visits {
		nf.visits[k] = v
	}
	return nf
}

// region is a symbolic memory region. Bytes are expressions; a nil entry
// reads as the concrete zero byte.
type region struct {
	base     uint64
	size     uint64
	data     map[uint64]*expr.Expr // keyed by offset within the region
	freed    bool
	readOnly bool
}

func (r *region) end() uint64 { return r.base + r.size }

func (r *region) clone() *region {
	nr := &region{base: r.base, size: r.size, freed: r.freed, readOnly: r.readOnly}
	nr.data = make(map[uint64]*expr.Expr, len(r.data))
	for k, v := range r.data {
		nr.data[k] = v
	}
	return nr
}

// Mem is the symbolic address space. Layout constants mirror the concrete
// machine so crash behavior matches.
type Mem struct {
	regions []*region
	next    uint64
}

const (
	nullGuard = 0x1000
	heapBase  = 0x10000
	regionGap = 64
	maxAlloc  = 1 << 26
)

// newMem returns an empty symbolic address space.
func newMem() *Mem {
	return &Mem{next: heapBase}
}

func (m *Mem) clone() *Mem {
	nm := &Mem{next: m.next, regions: make([]*region, len(m.regions))}
	for i, r := range m.regions {
		nm.regions[i] = r.clone()
	}
	return nm
}

// footprint estimates the heap bytes this address space retains; used by
// the naive-mode memory budget.
func (m *Mem) footprint() int64 {
	total := int64(0)
	for _, r := range m.regions {
		total += 64 + int64(len(r.data))*48
	}
	return total
}

func (m *Mem) alloc(n uint64) uint64 {
	if n > maxAlloc {
		return 0
	}
	if n == 0 {
		n = 1
	}
	r := &region{base: m.next, size: n, data: make(map[uint64]*expr.Expr)}
	m.regions = append(m.regions, r)
	m.next += (n + regionGap + 15) &^ 15
	return r.base
}

func (m *Mem) find(addr uint64) *region {
	i := sort.Search(len(m.regions), func(i int) bool {
		return m.regions[i].base > addr
	})
	if i == 0 {
		return nil
	}
	r := m.regions[i-1]
	if addr >= r.end() {
		return nil
	}
	return r
}

// fault mirrors vm crash kinds for the symbolic machine.
type fault struct {
	kind string
	addr uint64
}

func (f *fault) String() string { return fmt.Sprintf("%s at %#x", f.kind, f.addr) }

func (m *Mem) check(addr, size uint64, write bool) (*region, *fault) {
	if addr < nullGuard {
		return nil, &fault{kind: "null-deref", addr: addr}
	}
	r := m.find(addr)
	if r == nil {
		return nil, &fault{kind: "out-of-bounds", addr: addr}
	}
	if r.freed {
		return nil, &fault{kind: "use-after-free", addr: addr}
	}
	if addr+size > r.end() || addr+size < addr {
		return nil, &fault{kind: "out-of-bounds", addr: addr}
	}
	if write && r.readOnly {
		return nil, &fault{kind: "readonly-write", addr: addr}
	}
	return r, nil
}

// load reads a little-endian value of the given width as an expression.
func (m *Mem) load(addr uint64, size uint8) (*expr.Expr, *fault) {
	r, f := m.check(addr, uint64(size), false)
	if f != nil {
		return nil, f
	}
	var out *expr.Expr
	for i := uint64(0); i < uint64(size); i++ {
		b := r.data[addr-r.base+i]
		if b == nil {
			b = expr.Zero
		}
		shifted := expr.Bin(expr.OpShl, b, expr.Const(8*i))
		if out == nil {
			out = shifted
		} else {
			out = expr.Bin(expr.OpOr, out, shifted)
		}
	}
	return out, nil
}

// store writes a little-endian value of the given width.
func (m *Mem) store(addr uint64, size uint8, val *expr.Expr) *fault {
	r, f := m.check(addr, uint64(size), true)
	if f != nil {
		return f
	}
	for i := uint64(0); i < uint64(size); i++ {
		var b *expr.Expr
		if size == 1 && isByteSized(val) {
			b = val
		} else {
			b = expr.Bin(expr.OpAnd, expr.Bin(expr.OpShr, val, expr.Const(8*i)), expr.Const(0xFF))
		}
		r.data[addr-r.base+i] = b
	}
	return nil
}

// isByteSized reports expressions statically known to fit in one byte, so
// single-byte stores can skip the masking wrapper.
func isByteSized(e *expr.Expr) bool {
	if v, ok := e.IsConst(); ok {
		return v <= 0xFF
	}
	if e.Op == expr.OpSym {
		return true
	}
	return e.IsBool()
}

// setBytes writes raw expression bytes starting at addr (used by reads from
// the symbolic file).
func (m *Mem) setBytes(addr uint64, bytes []*expr.Expr) *fault {
	if len(bytes) == 0 {
		return nil
	}
	r, f := m.check(addr, uint64(len(bytes)), true)
	if f != nil {
		return f
	}
	for i, b := range bytes {
		r.data[addr-r.base+uint64(i)] = b
	}
	return nil
}

// free releases a region, with the same strictness as the concrete VM.
func (m *Mem) free(base uint64) *fault {
	r := m.find(base)
	if r == nil || r.base != base {
		return &fault{kind: "out-of-bounds", addr: base}
	}
	if r.freed {
		return &fault{kind: "use-after-free", addr: base}
	}
	r.freed = true
	return nil
}

// mapSymbolicFile creates a read-only region whose byte i is in[i].
func (m *Mem) mapSymbolicFile(size int) uint64 {
	base := m.alloc(uint64(size))
	r := m.regions[len(m.regions)-1]
	r.readOnly = true
	for i := 0; i < size; i++ {
		r.data[uint64(i)] = expr.Sym(i)
	}
	return base
}

// StateKind classifies a symbolic execution state, matching the four state
// types of paper § III-B plus terminal bookkeeping kinds.
type StateKind int

// State kinds.
const (
	KindActive StateKind = iota + 1
	// KindLoop is the paper's transient loop state: a decision that
	// re-enters a visited block. The executor counts these in
	// Stats.LoopStates rather than parking the state, since the
	// directed policy resolves them in place.
	KindLoop
	KindLoopDead
	KindProgramDead
	KindExited
	KindCrashed
	KindHung
	// KindInfeasible marks a state whose objective-placement constraints
	// contradicted the path condition (visitor returned Infeasible).
	KindInfeasible
)

// String renders the kind.
func (k StateKind) String() string {
	switch k {
	case KindActive:
		return "active"
	case KindLoop:
		return "loop"
	case KindLoopDead:
		return "loop-dead"
	case KindProgramDead:
		return "program-dead"
	case KindExited:
		return "exited"
	case KindCrashed:
		return "crashed"
	case KindHung:
		return "hung"
	case KindInfeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// argChannel is the lastReadFD sentinel selecting the argument-string
// cursor instead of a file descriptor.
const argChannel = -2

// State is one symbolic machine state.
type State struct {
	frames     []*Frame
	mem        *Mem
	filePos    []int64 // per-fd position
	lastReadFD int     // index into filePos of the most recent read/seek
	// argPos is the argument-string channel cursor.
	argPos      int64
	constraints []*expr.Expr
	steps       int64
	kind        StateKind
	// why records the reason for a dead/terminal kind.
	why string
	// entries records the objective-function arrivals observed so far.
	entries []EpEntry
	// pinnedDispatch marks a state produced by an indirect-call fork: its
	// program counter is still at the call, and the naive loop must
	// execute it rather than fork it again.
	pinnedDispatch bool
	// path is the state's identity in the parallel frontier: the sequence
	// of emission ordinals taken from the root. A state's emitted children
	// extend its path by one element, so a path is always lexicographically
	// greater than every proper prefix — the property the commit protocol's
	// determinism argument rests on. The slice is immutable once assigned
	// and may be shared between clones.
	path []uint32
	// emitSeq numbers the alternatives this state has emitted so far; the
	// next emitted child gets path+[emitSeq].
	emitSeq uint32
}

func newState() *State {
	return &State{mem: newMem(), kind: KindActive, lastReadFD: -1}
}

func (s *State) clone() *State {
	ns := &State{
		frames:      make([]*Frame, len(s.frames)),
		mem:         s.mem.clone(),
		filePos:     append([]int64(nil), s.filePos...),
		lastReadFD:  s.lastReadFD,
		argPos:      s.argPos,
		constraints: append([]*expr.Expr(nil), s.constraints...),
		steps:       s.steps,
		kind:        s.kind,
		why:         s.why,
		entries:     append([]EpEntry(nil), s.entries...),
		path:        s.path,
		emitSeq:     s.emitSeq,
	}
	for i, f := range s.frames {
		ns.frames[i] = f.clone()
	}
	return ns
}

// footprint estimates retained bytes for the naive-mode memory budget.
func (s *State) footprint() int64 {
	total := s.mem.footprint()
	total += int64(len(s.frames)) * (isa.NumRegs*8 + 128)
	for _, f := range s.frames {
		total += int64(len(f.visits)) * 16
	}
	for _, c := range s.constraints {
		total += int64(c.Size()) * 40
	}
	return total
}

func (s *State) top() *Frame { return s.frames[len(s.frames)-1] }

func (s *State) loc() isa.Loc {
	f := s.top()
	return isa.Loc{Func: f.fn.Name, Block: f.block, Inst: f.inst}
}

// Constraints returns the path constraints accumulated so far. The caller
// must not modify the returned slice.
func (s *State) Constraints() []*expr.Expr { return s.constraints }

// AddConstraint appends a constraint to the path condition; used by the
// combining phase to bind crash-primitive bytes.
func (s *State) AddConstraint(c *expr.Expr) {
	s.constraints = append(s.constraints, c)
}

// FilePos returns the position indicator of the most recently used input
// channel — the paper's "file position indicator" read on ep entry. For
// argument-string programs this is the argument cursor.
func (s *State) FilePos() int64 {
	if s.lastReadFD == argChannel {
		return s.argPos
	}
	if s.lastReadFD < 0 || s.lastReadFD >= len(s.filePos) {
		return 0
	}
	return s.filePos[s.lastReadFD]
}

// Kind returns the state's classification.
func (s *State) Kind() StateKind { return s.kind }

// Why explains terminal kinds.
func (s *State) Why() string { return s.why }

func (s *State) die(kind StateKind, why string) {
	s.kind = kind
	s.why = why
}
