package symex

import (
	"errors"

	"octopocs/internal/faultinject"
	"octopocs/internal/isa"
)

// IndirectEdge is a dynamically discovered indirect-call resolution.
type IndirectEdge struct {
	Site   isa.Loc
	Callee string
}

// Discover performs bounded undirected symbolic exploration of the program
// and records every indirect-call resolution it observes. This implements
// the paper's dynamic CFG construction (§ IV-B: "a dynamic CFG is generated
// with symbolic execution; transition appears only in execution time").
//
// Discovery is inherently partial: a site whose index reaches it through a
// transformation the executor must concretize (say, a memory-table lookup
// keyed by input bytes) only reveals the edges of the concretized paths —
// the faithful analog of the angr CFG defect behind the paper's Idx-15
// failure case. Budget exhaustion is expected and non-fatal. The one error
// Discover does surface is an injected transient fault: absorbing it would
// silently yield a different dynamic CFG than the fault-free run, so the
// caller must retry instead of using the partial edge set.
func Discover(prog *isa.Program, cfg NaiveConfig) ([]IndirectEdge, error) {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 128
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 16 << 20
	}
	// Explore with an unmatchable target so the frontier drains or the
	// budgets cap the walk. Depth-first order dives through shallow
	// branching fans to the dispatch sites instead of drowning in them.
	cfg.Target = "\x00discover"
	cfg.DFS = true

	var edges []IndirectEdge
	seen := make(map[IndirectEdge]bool)
	collector := func(site isa.Loc, callee string) {
		e := IndirectEdge{Site: site, Callee: callee}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	res, err := runNaive(prog, cfg, collector)
	_ = res
	if err != nil && !errors.Is(err, ErrMemBudget) {
		if faultinject.IsTransient(err) {
			return edges, err
		}
		// Solver budget blowups etc. leave partial discovery; that is
		// the intended degradation.
		return edges, nil
	}
	return edges, nil
}
