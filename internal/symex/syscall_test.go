package symex_test

import (
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/expr"
	"octopocs/internal/isa"
	"octopocs/internal/symex"
	"octopocs/internal/vm"
)

// TestSymbolicSyscallSurface drives every syscall through directed
// execution in one program: mmap, seek/tell/size, free, write, and both
// input channels, ending at ep with a solvable constraint.
func TestSymbolicSyscallSurface(t *testing.T) {
	b := asm.NewBuilder("sys")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	size := f.Sys(isa.SysSize, fd)
	f.If(f.EqI(size, 0), func() { f.Exit(1) })
	base := f.Sys(isa.SysMMap, fd)
	first := f.Load(1, base, 0)
	f.If(f.NeI(first, 'Q'), func() { f.Exit(1) })

	f.Sys(isa.SysSeek, fd, f.Const(2))
	pos := f.Sys(isa.SysTell, fd)
	f.If(f.NeI(pos, 2), func() { f.Exit(1) })

	scratch := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, scratch, f.Const(1))
	f.Sys(isa.SysWrite, scratch, f.Const(1))
	f.Sys(isa.SysFree, scratch)

	f.Call("ep")
	f.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 8}, stopAtFirst)
	if !res.Reached() {
		t.Fatalf("kind = %v (%s), want reached", res.Kind, res.Why)
	}
	in := solveInput(t, res, 8)
	if in[0] != 'Q' {
		t.Errorf("in[0] = %q, want Q (mmap-derived constraint)", in[0])
	}
	// The solved input must concretely reach ep.
	entered := false
	hooks := &vm.Hooks{OnCall: func(_ isa.Loc, callee string, _ []uint64, _, _ uint64, _ isa.Reg) {
		entered = entered || callee == "ep"
	}}
	vm.New(prog, vm.Config{Input: in, Hooks: hooks}).Run()
	if !entered {
		t.Error("solved input did not reach ep concretely")
	}
}

// TestSymbolicArgChannel reaches ep through the argument-string channel:
// the guiding input lands on the same symbol space and the position
// indicator tracks the argument cursor.
func TestSymbolicArgChannel(t *testing.T) {
	b := asm.NewBuilder("argch")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	n := f.Sys(isa.SysArgLen)
	f.If(f.LtI(n, 3), func() { f.Exit(1) })
	buf := f.Sys(isa.SysAlloc, f.Const(4))
	f.Sys(isa.SysArgRead, buf, f.Const(2))
	f.If(f.NeI(f.Load(1, buf, 0), '-'), func() { f.Exit(1) })
	f.If(f.NeI(f.Load(1, buf, 1), 'X'), func() { f.Exit(1) })
	f.Call("ep")
	f.Exit(0)
	b.Entry("main")
	prog := b.MustBuild()

	var pos int64 = -1
	visitor := func(entry symex.EpEntry, st *symex.State) (symex.Decision, error) {
		pos = entry.FilePos
		st.AddConstraint(expr.Bin(expr.OpEq, expr.Sym(2), expr.Const('z')))
		return symex.Stop, nil
	}
	res := runDirected(t, prog, symex.Config{Target: "ep", InputSize: 8}, visitor)
	if !res.Reached() {
		t.Fatalf("kind = %v (%s), want reached", res.Kind, res.Why)
	}
	if pos != 2 {
		t.Errorf("arg position indicator = %d, want 2", pos)
	}
	in := solveInput(t, res, 8)
	if in[0] != '-' || in[1] != 'X' || in[2] != 'z' {
		t.Errorf("solved prefix = %q, want -Xz", in[:3])
	}
}
