// Package faultinject is the deterministic fault-injection layer behind
// the chaos test suite: named injection points threaded through the hot
// paths of every pipeline phase — the solver behind the P2 feasibility
// checks and the final P3.3 constraint solving, the P2 symbolic-execution
// workers, the core phase-artifact caches and the pre-P2 static analysis,
// and the service queue/job/HTTP layer around P1–P4 — fire faults on a
// seed-driven schedule so that retries, panic containment, and degradation
// paths are exercised reproducibly in tests and never by accident in
// production (an Injector is nil unless a schedule was explicitly parsed).
//
// Determinism. Every point keeps an atomic call counter; whether the n-th
// call fires is a pure function of (seed, point, n) — an explicit ordinal
// list or a hash-thresholded rate — so a schedule replays identically run
// over run. Under concurrency the assignment of ordinals to callers can
// vary with scheduling, but the fired set per point cannot.
//
// Classification. Each point has a Class that tells the hardened layers
// what recovery is sound: Transient faults are retried (the phases are
// pure recomputation, so a retry restores the fault-free result),
// Degraded faults fall back to a slower-but-equivalent path (cache miss,
// unpruned CFG) that provably cannot change the verdict, Fatal faults
// surface as explicit errors, and Delay faults only stall.
//
// Concurrency: an Injector is immutable after New except for its atomic
// counters, so any number of goroutines may call Fire/Err/Panic/Sleep
// concurrently; a nil *Injector is a valid never-fires instance and is the
// production configuration.
package faultinject

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"octopocs/internal/telemetry"
)

// Point names one injection site. The set is closed: ParseSchedule rejects
// unknown points so schedule typos fail fast.
type Point string

// Injection points, grouped by layer.
const (
	// SolverSat makes Solver.Sat return a transient fault before consulting
	// the cache or solving.
	SolverSat Point = "solver.sat"
	// SolverTimeout makes Solver.Solve return a transient fault, modelling
	// a solver timeout mid-phase.
	SolverTimeout Point = "solver.timeout"
	// SolverCache disables the sat-verdict cache for one Sat call: the
	// degraded path solves uncached, which cannot change the verdict.
	SolverCache Point = "solver.cache"

	// SymexWorkerPanic panics inside a frontier explorer goroutine at a
	// step-loop checkpoint; the worker's recover converts it into a
	// structured error and the phase retry restores the run.
	SymexWorkerPanic Point = "symex.worker_panic"
	// SymexFrontierStall sleeps a frontier worker at a step-loop
	// checkpoint, modelling a stalled explorer; timing-only.
	SymexFrontierStall Point = "symex.frontier_stall"
	// SymexCancel forces a cancellation mid-step: the run returns
	// ErrStopped exactly as if the Stop channel had closed.
	SymexCancel Point = "symex.cancel"

	// CoreCacheGet makes one phase-artifact cache read behave as a miss.
	CoreCacheGet Point = "core.cache_get"
	// CoreCachePut drops one phase-artifact cache write.
	CoreCachePut Point = "core.cache_put"
	// CoreStatic fails the pre-P2 static analysis; the pipeline falls back
	// to the unpruned CFG.
	CoreStatic Point = "core.static"

	// ServiceQueueFull rejects one submission as if the queue were at
	// capacity (a queue-full burst).
	ServiceQueueFull Point = "service.queue_full"
	// ServiceJobDeadline expires one job's deadline almost immediately.
	ServiceJobDeadline Point = "service.job_deadline"
	// ServiceHandlerPanic panics inside the HTTP handler chain; the
	// recovery middleware answers 500.
	ServiceHandlerPanic Point = "service.handler_panic"

	// ArtifactDiskFull fails one artifact-store disk write as if the volume
	// were out of space; the store drops the write (the hot tier still
	// serves the value) and reports saturation to admission control.
	ArtifactDiskFull Point = "artifact.disk_full"
	// ArtifactTornWrite truncates one artifact-store disk write mid-payload
	// but lets the rename complete, modelling a crash after rename but
	// before the data reached stable storage; the startup integrity scan
	// detects and drops the partial entry.
	ArtifactTornWrite Point = "artifact.torn_write"
	// ArtifactChecksum makes one artifact-store disk read behave as a
	// checksum mismatch: the entry is dropped and the read degrades to a
	// miss.
	ArtifactChecksum Point = "artifact.checksum"
)

// Points lists every known injection point in a stable order.
func Points() []Point {
	return []Point{
		SolverSat, SolverTimeout, SolverCache,
		SymexWorkerPanic, SymexFrontierStall, SymexCancel,
		CoreCacheGet, CoreCachePut, CoreStatic,
		ServiceQueueFull, ServiceJobDeadline, ServiceHandlerPanic,
		ArtifactDiskFull, ArtifactTornWrite, ArtifactChecksum,
	}
}

// Class tells the hardened layers what recovery is sound for a point.
type Class int

// Fault classes.
const (
	// ClassTransient faults are safe to retry: the failed phase is pure
	// recomputation and error paths never populate caches.
	ClassTransient Class = iota + 1
	// ClassDegraded faults fall back to a slower path that provably
	// produces the same verdict (uncached solving, unpruned CFG).
	ClassDegraded
	// ClassFatal faults surface as explicit errors or cancellations; they
	// are never retried and never silently absorbed.
	ClassFatal
	// ClassDelay faults only stall; they change timing, never results.
	ClassDelay
)

// Class returns the point's fault class; 0 for unknown points.
func (p Point) Class() Class {
	switch p {
	case SolverSat, SolverTimeout, SymexWorkerPanic:
		return ClassTransient
	case SolverCache, CoreCacheGet, CoreCachePut, CoreStatic,
		ArtifactDiskFull, ArtifactTornWrite, ArtifactChecksum:
		return ClassDegraded
	case SymexCancel, ServiceQueueFull, ServiceJobDeadline, ServiceHandlerPanic:
		return ClassFatal
	case SymexFrontierStall:
		return ClassDelay
	}
	return 0
}

// DefaultStallDelay is the sleep applied by delay-class points whose rule
// does not set one.
const DefaultStallDelay = 10 * time.Millisecond

// Fault is the error injected at a point. It travels through phase error
// chains (fmt %w wrapping preserved) so IsTransient/IsDegraded can classify
// it at the recovery site.
type Fault struct {
	Point Point
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s", f.Point)
}

// PanicError is the structured form a recovered panic takes on its way into
// a job error: the recovery site, the panic value, and the stack captured at
// recovery. When the panic value is itself an error (every injected panic
// carries a *Fault) it is exposed via Unwrap so errors.As classification
// works through the panic boundary.
type PanicError struct {
	Site  string
	Value any
	Stack []byte
}

// Recovered wraps a recover() result into a PanicError, capturing the stack.
func Recovered(site string, value any) *PanicError {
	return &PanicError{Site: site, Value: value, Stack: debug.Stack()}
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", p.Site, p.Value)
}

// Unwrap exposes an error panic value for errors.Is/As chains.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Describe extracts the injected fault carried by err (including one
// thrown as a panic and recovered): the point it fired at and its class.
// ok is false when err carries no injected fault. Observability layers use
// it to attribute retries and degradations to their injection site.
func Describe(err error) (p Point, c Class, ok bool) {
	var f *Fault
	if !errors.As(err, &f) {
		return "", 0, false
	}
	return f.Point, f.Point.Class(), true
}

// IsTransient reports whether err carries an injected fault that is safe to
// retry (including one thrown as a panic and recovered).
func IsTransient(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Point.Class() == ClassTransient
}

// IsDegraded reports whether err carries an injected fault whose sound
// recovery is a fallback path rather than a retry or a hard failure.
func IsDegraded(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Point.Class() == ClassDegraded
}

// Counters mirrors the injector's aggregate accounting into telemetry
// counter families (octopocs_faults_*). All fields are nil-tolerant.
type Counters struct {
	// Injected counts faults fired at any point.
	Injected *telemetry.Counter
	// Recovered counts panics converted into structured errors.
	Recovered *telemetry.Counter
	// Retried counts phase retries triggered by transient faults.
	Retried *telemetry.Counter
	// Degraded counts fallbacks to a degraded-but-equivalent path.
	Degraded *telemetry.Counter
}

// ruleState is one point's rule plus its atomic counters.
type ruleState struct {
	rule  Rule
	calls atomic.Uint64
	fired atomic.Uint64
}

// Injector decides, deterministically, which calls at which points fire.
// The zero of the type is never used; a nil *Injector never fires.
type Injector struct {
	seed     uint64
	rules    map[Point]*ruleState
	counters atomic.Pointer[Counters]

	injected  atomic.Uint64
	recovered atomic.Uint64
	retried   atomic.Uint64
	degraded  atomic.Uint64
}

// New builds an injector for a schedule. A nil schedule or one with no
// rules yields a nil injector (production: zero overhead, nothing fires).
func New(s *Schedule) *Injector {
	if s == nil || len(s.Rules) == 0 {
		return nil
	}
	in := &Injector{seed: s.Seed, rules: make(map[Point]*ruleState, len(s.Rules))}
	for _, r := range s.Rules {
		in.rules[r.Point] = &ruleState{rule: r}
	}
	return in
}

// SetCounters attaches telemetry mirrors for the aggregate counts. Safe to
// call on a nil injector and safe concurrently with firing.
func (in *Injector) SetCounters(c Counters) {
	if in == nil {
		return
	}
	in.counters.Store(&c)
}

// Fire consumes one call ordinal at p and reports whether the fault fires.
// Nil-safe; the nil receiver never fires.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	rs := in.rules[p]
	if rs == nil {
		return false
	}
	ord := rs.calls.Add(1)
	if !decide(&rs.rule, in.seed, ord) {
		return false
	}
	if n := rs.fired.Add(1); rs.rule.Count > 0 && n > rs.rule.Count {
		rs.fired.Add(^uint64(0)) // undo: the cap held this fault back
		return false
	}
	in.injected.Add(1)
	c := in.counters.Load()
	if c != nil {
		c.Injected.Inc()
	}
	if p.Class() == ClassDegraded {
		in.degraded.Add(1)
		if c != nil {
			c.Degraded.Inc()
		}
	}
	return true
}

// Err returns the injected *Fault when p fires, else nil.
func (in *Injector) Err(p Point) error {
	if in.Fire(p) {
		return &Fault{Point: p}
	}
	return nil
}

// Panic panics with the injected *Fault when p fires. The recovery site is
// expected to wrap the value via Recovered so the fault classifies as
// transient through the panic boundary.
func (in *Injector) Panic(p Point) {
	if in.Fire(p) {
		panic(&Fault{Point: p})
	}
}

// Sleep stalls the caller for the rule's Delay (DefaultStallDelay if unset)
// when p fires.
func (in *Injector) Sleep(p Point) {
	if in == nil || !in.Fire(p) {
		return
	}
	d := in.rules[p].rule.Delay
	if d <= 0 {
		d = DefaultStallDelay
	}
	time.Sleep(d)
}

// CountRecovered records one panic converted into a structured error.
func (in *Injector) CountRecovered() {
	if in == nil {
		return
	}
	in.recovered.Add(1)
	if c := in.counters.Load(); c != nil {
		c.Recovered.Inc()
	}
}

// CountRetried records one phase retry triggered by a transient fault.
func (in *Injector) CountRetried() {
	if in == nil {
		return
	}
	in.retried.Add(1)
	if c := in.counters.Load(); c != nil {
		c.Retried.Inc()
	}
}

// Injected returns the total faults fired.
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

// RecoveredCount returns the panics recovered into structured errors.
func (in *Injector) RecoveredCount() uint64 {
	if in == nil {
		return 0
	}
	return in.recovered.Load()
}

// RetriedCount returns the phase retries triggered by transient faults.
func (in *Injector) RetriedCount() uint64 {
	if in == nil {
		return 0
	}
	return in.retried.Load()
}

// DegradedCount returns the degraded-path fallbacks taken.
func (in *Injector) DegradedCount() uint64 {
	if in == nil {
		return 0
	}
	return in.degraded.Load()
}

// PointStats is the per-point accounting exposed by Stats.
type PointStats struct {
	// Calls is how many times the point was evaluated.
	Calls uint64 `json:"calls"`
	// Fired is how many of those calls injected the fault.
	Fired uint64 `json:"fired"`
}

// Stats snapshots per-point counters for scheduled points.
func (in *Injector) Stats() map[Point]PointStats {
	if in == nil {
		return nil
	}
	out := make(map[Point]PointStats, len(in.rules))
	for p, rs := range in.rules {
		out[p] = PointStats{Calls: rs.calls.Load(), Fired: rs.fired.Load()}
	}
	return out
}

// decide is the pure firing function: ordinal membership for Nth rules,
// a seed-hashed threshold for Rate rules.
func decide(r *Rule, seed, ord uint64) bool {
	if len(r.Nth) > 0 {
		for _, n := range r.Nth {
			if n == ord {
				return true
			}
		}
		return false
	}
	if r.Rate <= 0 {
		return false
	}
	if r.Rate >= 1 {
		return true
	}
	h := mix(seed ^ pointHash(r.Point) ^ ord)
	return float64(h>>11)/float64(1<<53) < r.Rate
}

// mix is splitmix64's finalizer: a cheap, well-distributed 64-bit hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pointHash folds a point name into the decision hash (FNV-1a).
func pointHash(p Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}
