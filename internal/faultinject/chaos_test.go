package faultinject_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/faultinject"
	"octopocs/internal/service"
	"octopocs/internal/testutil"
)

// chaosCorpus is the full 17-pair set: Table II plus the statically-dead
// pairs.
func chaosCorpus() []*corpus.PairSpec {
	return append(corpus.All(), corpus.StaticSet()...)
}

// baselineReports verifies every pair fault-free with the exact pipeline
// configuration the chaos sweeps use (SymexWorkers pinned to 1 so the
// frontier result identity is schedule-independent) and returns the reports
// keyed by corpus index, Timings zeroed.
func baselineReports(t *testing.T, base core.Config) map[int]*core.Report {
	t.Helper()
	base.Faults = nil
	base.SymexWorkers = 1
	p := core.New(base)
	out := make(map[int]*core.Report)
	for _, spec := range chaosCorpus() {
		rep, err := p.Verify(spec.Pair)
		if err != nil {
			t.Fatalf("baseline idx %d (%s): %v", spec.Idx, spec.Pair.Name, err)
		}
		rep.Timings = core.PhaseTimings{}
		out[spec.Idx] = rep
	}
	return out
}

// chaosSchedules is the deterministic sweep: each entry is one full pass of
// the 17-pair corpus through the service under the named schedule. Every
// fault here is transient or degraded, so the contract is strict: each job
// must end byte-identical to its fault-free baseline.
var chaosSchedules = []struct {
	name     string
	schedule string
	static   bool
}{
	{"solver-transients", "seed=11;solver.sat:nth=3|9|27;solver.timeout:nth=2", false},
	{"worker-panics", "seed=12;symex.worker_panic:nth=1|4", false},
	{"cache-chaos", "seed=13;solver.cache:rate=0.5;core.cache_get:rate=0.5;core.cache_put:rate=0.5", false},
	{"static-degrade", "seed=14;core.static:rate=0.4;solver.sat:nth=5", true},
	{"stalls-and-retries", "seed=15;symex.frontier_stall:nth=2|6,delay=1ms;solver.timeout:nth=3", false},
}

// TestChaosSweepDeterministicOutcomes is the tentpole chaos harness: for
// each schedule, run the whole corpus through a real Service with fault
// injection on, and assert the robustness contract — no hang past the
// deadline, no goroutine leaks, and every job's verdict/type/poc' equal to
// the fault-free baseline. Reason is compared too, except under static
// degradation where falling back to the unpruned pipeline legitimately
// rewrites ReasonStaticUnreachable into the dynamic equivalent.
func TestChaosSweepDeterministicOutcomes(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)

	for _, tc := range chaosSchedules {
		t.Run(tc.name, func(t *testing.T) {
			sch, err := faultinject.ParseSchedule(tc.schedule)
			if err != nil {
				t.Fatal(err)
			}
			in := faultinject.New(sch)
			plCfg := core.Config{StaticPrune: tc.static}
			base := baselineReports(t, plCfg)

			plCfg.Faults = in
			svc := service.New(service.Config{
				Workers:      2,
				SymexWorkers: 1,
				QueueDepth:   4,
				Pipeline:     plCfg,
			})
			defer svc.Shutdown(context.Background())

			jobs := make(map[int]*service.Job)
			for _, spec := range chaosCorpus() {
				jobs[spec.Idx] = submitWithRetry(t, svc, spec)
			}
			deadline, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			for _, spec := range chaosCorpus() {
				rep, err := jobs[spec.Idx].Wait(deadline)
				if err != nil {
					t.Errorf("idx %d (%s): job error %v, want clean completion", spec.Idx, spec.Pair.Name, err)
					continue
				}
				rep.Timings = core.PhaseTimings{}
				want := base[spec.Idx]
				if tc.static {
					// A degraded static phase reruns the pair unpruned; only
					// the final verdict/type/poc' are contractual then.
					if rep.Verdict != want.Verdict || rep.Type != want.Type ||
						string(rep.PoCPrime) != string(want.PoCPrime) {
						t.Errorf("idx %d (%s): degraded outcome %v/%v diverged from %v/%v",
							spec.Idx, spec.Pair.Name, rep.Verdict, rep.Type, want.Verdict, want.Type)
					}
					continue
				}
				rep.Static = want.Static
				if !reflect.DeepEqual(rep, want) {
					t.Errorf("idx %d (%s): faulted report diverged\n got %+v\nwant %+v",
						spec.Idx, spec.Pair.Name, rep, want)
				}
			}
			if in.Injected() == 0 {
				t.Errorf("schedule %q never fired a fault — sweep proves nothing", tc.schedule)
			}
			if err := svc.Shutdown(context.Background()); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		})
	}
}

// submitWithRetry tolerates injected or real queue-full rejections by
// backing off, mirroring what a well-behaved client does.
func submitWithRetry(t *testing.T, svc *service.Service, spec *corpus.PairSpec) *service.Job {
	t.Helper()
	var job *service.Job
	testutil.WaitFor(t, func() bool {
		j, err := svc.Submit(spec.Pair)
		if errors.Is(err, service.ErrQueueFull) {
			return false
		}
		if err != nil {
			t.Fatalf("submit idx %d: %v", spec.Idx, err)
		}
		job = j
		return true
	}, time.Minute, "idx %d never left the queue-full state", spec.Idx)
	return job
}

// TestChaosFatalFaultsAreExplicit checks the other half of the contract:
// fatal-class faults never silently alter a verdict — each job ends in an
// explicit, classified error.
func TestChaosFatalFaultsAreExplicit(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)

	sch, err := faultinject.ParseSchedule("seed=21;symex.cancel:nth=1")
	if err != nil {
		t.Fatal(err)
	}
	p := core.New(core.Config{SymexWorkers: 1, Faults: faultinject.New(sch)})
	spec := corpus.ByIdx(1)
	rep, err := p.Verify(spec.Pair)
	if err == nil {
		t.Fatalf("cancelled run returned report %+v, want explicit error", rep)
	}
	if faultinject.IsTransient(err) || faultinject.IsDegraded(err) {
		t.Errorf("fatal cancellation misclassified: %v", err)
	}
}

// TestChaosSeedReproducibility checks the harness's core promise: the same
// seed and schedule replay the same fault sequence, fire for fire.
func TestChaosSeedReproducibility(t *testing.T) {
	run := func() string {
		sch, err := faultinject.ParseSchedule("seed=33;solver.sat:rate=0.2;solver.cache:rate=0.3")
		if err != nil {
			t.Fatal(err)
		}
		in := faultinject.New(sch)
		p := core.New(core.Config{SymexWorkers: 1, Faults: in})
		for _, spec := range corpus.All()[:5] {
			if _, err := p.Verify(spec.Pair); err != nil && !faultinject.IsTransient(err) {
				t.Fatalf("idx %d: %v", spec.Idx, err)
			}
		}
		return fmt.Sprintf("%+v", in.Stats())
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical schedules diverged:\n%s\nvs\n%s", a, b)
	}
}
