package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustParse(t *testing.T, s string) *Schedule {
	t.Helper()
	sch, err := ParseSchedule(s)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", s, err)
	}
	return sch
}

// TestParseScheduleRoundTrip checks the grammar parses and renders back to
// a canonical form that re-parses to the same schedule.
func TestParseScheduleRoundTrip(t *testing.T) {
	in := "seed=42;solver.sat:nth=2|5;core.cache_get:rate=0.1;symex.frontier_stall:nth=1,delay=50ms;service.queue_full"
	s := mustParse(t, in)
	if s.Seed != 42 {
		t.Errorf("seed = %d, want 42", s.Seed)
	}
	if len(s.Rules) != 4 {
		t.Fatalf("got %d rules, want 4: %+v", len(s.Rules), s.Rules)
	}
	again := mustParse(t, s.String())
	if s.String() != again.String() {
		t.Errorf("canonical form is not a fixed point:\n  first:  %s\n  second: %s", s, again)
	}
	// The bare point defaults to an always-fire rate rule.
	var qf *Rule
	for i := range s.Rules {
		if s.Rules[i].Point == ServiceQueueFull {
			qf = &s.Rules[i]
		}
	}
	if qf == nil || qf.Rate != 1 {
		t.Errorf("bare point rule = %+v, want rate=1", qf)
	}
}

// TestParseScheduleRejects checks typos fail fast instead of silently not
// injecting.
func TestParseScheduleRejects(t *testing.T) {
	for _, bad := range []string{
		"solver.stat:nth=1",                 // unknown point
		"solver.sat:nht=1",                  // unknown option
		"solver.sat:rate=1.5",               // rate out of range
		"solver.sat:nth=0",                  // ordinals are 1-based
		"solver.sat:nth=1;solver.sat:nth=2", // duplicate rule
		"seed=x;solver.sat",                 // bad seed
		"solver.sat:delay=50",               // delay needs a unit
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
	// Empty schedules are valid and yield a nil injector.
	s, err := ParseSchedule("")
	if err != nil || s != nil {
		t.Errorf("ParseSchedule(\"\") = %v, %v; want nil, nil", s, err)
	}
	if in := New(nil); in != nil {
		t.Errorf("New(nil) = %v, want nil", in)
	}
}

// TestNthFiring checks ordinal rules fire exactly the listed calls and a
// Count cap bounds total fires.
func TestNthFiring(t *testing.T) {
	in := New(mustParse(t, "seed=7;solver.sat:nth=2|5"))
	var fired []int
	for i := 1; i <= 8; i++ {
		if in.Fire(SolverSat) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Errorf("fired ordinals = %v, want [2 5]", fired)
	}
	if got := in.Injected(); got != 2 {
		t.Errorf("Injected() = %d, want 2", got)
	}
	st := in.Stats()[SolverSat]
	if st.Calls != 8 || st.Fired != 2 {
		t.Errorf("stats = %+v, want calls=8 fired=2", st)
	}

	capped := New(mustParse(t, "solver.sat:rate=1,count=3"))
	n := 0
	for i := 0; i < 10; i++ {
		if capped.Fire(SolverSat) {
			n++
		}
	}
	if n != 3 {
		t.Errorf("count-capped fires = %d, want 3", n)
	}
	if st := capped.Stats()[SolverSat]; st.Fired != 3 {
		t.Errorf("capped stats fired = %d, want 3", st.Fired)
	}
}

// TestRateDeterminism checks a rate rule's fired set is a pure function of
// (seed, point, ordinal): same seed reproduces it, another seed differs (at
// this rate and call volume, with overwhelming probability), and the
// empirical rate lands near the nominal one.
func TestRateDeterminism(t *testing.T) {
	firedSet := func(seed uint64) []uint64 {
		in := New(&Schedule{Seed: seed, Rules: []Rule{{Point: SolverSat, Rate: 0.1}}})
		var out []uint64
		for i := uint64(1); i <= 2000; i++ {
			if in.Fire(SolverSat) {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := firedSet(1), firedSet(1)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fired sets")
	}
	if fmt.Sprint(a) == fmt.Sprint(firedSet(2)) {
		t.Error("different seeds produced identical fired sets")
	}
	if len(a) < 120 || len(a) > 280 {
		t.Errorf("empirical rate %d/2000, want ~200", len(a))
	}
}

// TestConcurrentFiredSet checks the per-point fired count is scheduling
// independent: N goroutines hammering one point fire exactly as many faults
// as the sequential run.
func TestConcurrentFiredSet(t *testing.T) {
	const calls = 4000
	seq := New(&Schedule{Seed: 9, Rules: []Rule{{Point: SolverSat, Rate: 0.25}}})
	want := 0
	for i := 0; i < calls; i++ {
		if seq.Fire(SolverSat) {
			want++
		}
	}
	par := New(&Schedule{Seed: 9, Rules: []Rule{{Point: SolverSat, Rate: 0.25}}})
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer func() { recover() }() // appease panicguard; Fire cannot panic
			defer wg.Done()
			n := 0
			for i := 0; i < calls/8; i++ {
				if par.Fire(SolverSat) {
					n++
				}
			}
			mu.Lock()
			got += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got != want {
		t.Errorf("concurrent fired count = %d, sequential = %d", got, want)
	}
}

// TestClassification checks the error taxonomy: Err yields a classified
// *Fault, panics recovered through PanicError keep their class, and real
// panic values are neither transient nor degraded.
func TestClassification(t *testing.T) {
	in := New(mustParse(t, "solver.sat;solver.cache"))
	err := in.Err(SolverSat)
	if !IsTransient(err) || IsDegraded(err) {
		t.Errorf("solver.sat fault classified wrong: %v", err)
	}
	if err := fmt.Errorf("sat check: %w", in.Err(SolverCache)); !IsDegraded(err) || IsTransient(err) {
		t.Errorf("wrapped solver.cache fault classified wrong: %v", err)
	}

	panicIn := New(mustParse(t, "symex.worker_panic:nth=1"))
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Panic did not panic")
			}
			pe := Recovered("test.site", r)
			if !IsTransient(pe) {
				t.Errorf("recovered injected panic not transient: %v", pe)
			}
			if len(pe.Stack) == 0 {
				t.Error("no stack captured")
			}
		}()
		panicIn.Panic(SymexWorkerPanic)
	}()

	real := Recovered("test.site", errors.New("index out of range"))
	if IsTransient(real) || IsDegraded(real) {
		t.Errorf("real panic misclassified: %v", real)
	}
	if real.Unwrap() == nil {
		t.Error("error panic value not unwrapped")
	}
	if (&PanicError{Site: "s", Value: 42}).Unwrap() != nil {
		t.Error("non-error panic value unwrapped")
	}
}

// TestEveryPointClassified checks the closed point set: each point has a
// class, parses as a schedule term, and fires through the injector.
func TestEveryPointClassified(t *testing.T) {
	for _, p := range Points() {
		if p.Class() == 0 {
			t.Errorf("point %s has no class", p)
		}
		in := New(mustParse(t, string(p)+":nth=1"))
		if !in.Fire(p) {
			t.Errorf("point %s did not fire on nth=1", p)
		}
	}
	if Point("bogus").Class() != 0 {
		t.Error("unknown point got a class")
	}
}

// TestNilInjectorSafe checks the production configuration — a nil injector —
// supports the full API as no-ops.
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Fire(SolverSat) || in.Err(SolverSat) != nil {
		t.Error("nil injector fired")
	}
	in.Panic(SymexWorkerPanic)
	in.Sleep(SymexFrontierStall)
	in.SetCounters(Counters{})
	in.CountRecovered()
	in.CountRetried()
	if in.Injected()+in.RecoveredCount()+in.RetriedCount()+in.DegradedCount() != 0 {
		t.Error("nil injector counted")
	}
	if in.Stats() != nil {
		t.Error("nil injector has stats")
	}
}

// TestSleepDelay checks delay rules stall for roughly their configured
// duration.
func TestSleepDelay(t *testing.T) {
	in := New(mustParse(t, "symex.frontier_stall:nth=1,delay=30ms"))
	start := time.Now()
	in.Sleep(SymexFrontierStall)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("stall lasted %v, want >= 30ms", d)
	}
	start = time.Now()
	in.Sleep(SymexFrontierStall) // nth=1 already consumed: no stall
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("non-firing Sleep stalled %v", d)
	}
}
