package faultinject

// schedule.go parses the -fault-schedule flag syntax into a Schedule. The
// grammar is a semicolon-separated rule list:
//
//	seed=42;solver.sat:nth=2|5;core.cache_get:rate=0.1;symex.frontier_stall:nth=1,delay=50ms
//
// One leading seed=N term sets the decision seed (default 0). Every other
// term is <point>[:opt,opt,...] with options rate=FLOAT (deterministic
// hash-thresholded firing probability), nth=A|B|C (explicit 1-based call
// ordinals that fire), count=N (cap on total fires), and delay=DURATION
// (stall length for delay-class points). A point with neither rate nor nth
// fires on every call (rate=1). Unknown points and malformed options are
// errors, so schedule typos fail at flag parsing, not silently mid-run.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Rule schedules faults at one point.
type Rule struct {
	// Point is the injection site.
	Point Point
	// Rate is the deterministic firing probability in [0,1]; ignored when
	// Nth is set.
	Rate float64
	// Nth lists the exact 1-based call ordinals that fire.
	Nth []uint64
	// Count caps the total fires at the point; 0 means uncapped.
	Count uint64
	// Delay is the stall length for delay-class points; DefaultStallDelay
	// when 0.
	Delay time.Duration
}

// Schedule is a parsed fault schedule: a seed plus one rule per point.
type Schedule struct {
	Seed  uint64
	Rules []Rule
}

// ParseSchedule parses the -fault-schedule flag syntax. An empty string
// yields a nil schedule (no injection).
func ParseSchedule(s string) (*Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	known := make(map[Point]bool, len(Points()))
	for _, p := range Points() {
		known[p] = true
	}
	sched := &Schedule{}
	seen := make(map[Point]bool)
	for _, term := range strings.Split(s, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(term, "seed="); ok {
			seed, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault schedule: bad seed %q: %v", rest, err)
			}
			sched.Seed = seed
			continue
		}
		name, opts, _ := strings.Cut(term, ":")
		p := Point(strings.TrimSpace(name))
		if !known[p] {
			return nil, fmt.Errorf("fault schedule: unknown point %q (known: %s)", name, pointList())
		}
		if seen[p] {
			return nil, fmt.Errorf("fault schedule: duplicate rule for %s", p)
		}
		seen[p] = true
		r := Rule{Point: p}
		for _, opt := range strings.Split(opts, ",") {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			key, val, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("fault schedule: %s: option %q is not key=value", p, opt)
			}
			switch key {
			case "rate":
				rate, err := strconv.ParseFloat(val, 64)
				if err != nil || rate < 0 || rate > 1 {
					return nil, fmt.Errorf("fault schedule: %s: rate %q is not in [0,1]", p, val)
				}
				r.Rate = rate
			case "nth":
				for _, part := range strings.Split(val, "|") {
					n, err := strconv.ParseUint(part, 10, 64)
					if err != nil || n == 0 {
						return nil, fmt.Errorf("fault schedule: %s: nth ordinal %q is not a positive integer", p, part)
					}
					r.Nth = append(r.Nth, n)
				}
			case "count":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault schedule: %s: bad count %q", p, val)
				}
				r.Count = n
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault schedule: %s: bad delay %q", p, val)
				}
				r.Delay = d
			default:
				return nil, fmt.Errorf("fault schedule: %s: unknown option %q (rate, nth, count, delay)", p, key)
			}
		}
		if len(r.Nth) == 0 && r.Rate == 0 {
			r.Rate = 1 // a bare point fires every call
		}
		sort.Slice(r.Nth, func(i, j int) bool { return r.Nth[i] < r.Nth[j] })
		sched.Rules = append(sched.Rules, r)
	}
	if len(sched.Rules) == 0 {
		return nil, nil
	}
	return sched, nil
}

// String renders the schedule back into the flag syntax; the render parses
// to an equal schedule.
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d", s.Seed)
	for _, r := range s.Rules {
		fmt.Fprintf(&sb, ";%s:", r.Point)
		var opts []string
		if len(r.Nth) > 0 {
			parts := make([]string, len(r.Nth))
			for i, n := range r.Nth {
				parts[i] = strconv.FormatUint(n, 10)
			}
			opts = append(opts, "nth="+strings.Join(parts, "|"))
		} else {
			opts = append(opts, "rate="+strconv.FormatFloat(r.Rate, 'g', -1, 64))
		}
		if r.Count > 0 {
			opts = append(opts, "count="+strconv.FormatUint(r.Count, 10))
		}
		if r.Delay > 0 {
			opts = append(opts, "delay="+r.Delay.String())
		}
		sb.WriteString(strings.Join(opts, ","))
	}
	return sb.String()
}

func pointList() string {
	ps := Points()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = string(p)
	}
	return strings.Join(names, ", ")
}
