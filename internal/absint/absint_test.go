package absint

import (
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
)

func TestValNormAndContains(t *testing.T) {
	cases := []struct {
		v    Val
		in   []uint64
		out  []uint64
		desc string
	}{
		{Const(7), []uint64{7}, []uint64{6, 8, 0}, "constant"},
		{Range(3, 9), []uint64{3, 5, 9}, []uint64{2, 10}, "interval"},
		{norm(0, 10, 2, 0), []uint64{0, 2, 10}, []uint64{1, 3, 11}, "even"},
		{norm(1, 10, 2, 1), []uint64{1, 3, 9}, []uint64{0, 2, 10}, "odd"},
		{Top(), []uint64{0, 1, ^uint64(0)}, nil, "top"},
	}
	for _, c := range cases {
		for _, x := range c.in {
			if !c.v.Contains(x) {
				t.Errorf("%s: %v should contain %d", c.desc, c.v, x)
			}
		}
		for _, x := range c.out {
			if c.v.Contains(x) {
				t.Errorf("%s: %v should not contain %d", c.desc, c.v, x)
			}
		}
	}
	// norm tightens endpoints onto the congruence class.
	v := norm(1, 11, 4, 2)
	if v.Lo != 2 || v.Hi != 10 {
		t.Errorf("norm(1,11,4,2) = %v, want endpoints 2,10", v)
	}
	// An empty reduced product widens to ⊤.
	if v := norm(3, 4, 8, 1); !v.IsTop() {
		t.Errorf("empty product = %v, want T", v)
	}
	// A singleton collapses to a constant.
	if c, ok := norm(5, 6, 3, 2).IsConst(); !ok || c != 5 {
		t.Errorf("norm(5,6,3,2) did not collapse to const 5")
	}
}

func TestJoinAndWiden(t *testing.T) {
	// Join of two constants yields their congruence class.
	j := Join(Const(3), Const(7))
	if j.Lo != 3 || j.Hi != 7 || j.M != 4 || j.R != 3 {
		t.Errorf("Join(3,7) = %v, want [3,7] mod 4 = 3", j)
	}
	// Join with itself is identity.
	if v := norm(0, 100, 4, 2); Join(v, v) != v {
		t.Errorf("Join(v,v) != v for %v", v)
	}
	// Join bounds both operands.
	a, b := Range(5, 10), Range(20, 30)
	j = Join(a, b)
	for _, x := range []uint64{5, 10, 20, 30} {
		if !j.Contains(x) {
			t.Errorf("Join misses %d: %v", x, j)
		}
	}
	// Widen jumps a moving upper bound to max but keeps congruence.
	w := Widen(Join(Const(0), Const(2)), Join(Const(0), Const(4)))
	if w.Lo != 0 || w.Hi != ^uint64(0)-1 || w.M != 2 || w.R != 0 {
		t.Errorf("Widen even chain = %v, want [0,max-1] mod 2 = 0", w)
	}
	if !w.Contains(1 << 40) {
		t.Errorf("widened even misses 2^40")
	}
	if w.Contains(3) {
		t.Errorf("widened even contains odd 3")
	}
}

func TestBinTransferSoundnessCases(t *testing.T) {
	even := norm(0, 100, 2, 0)
	// even & 1 == 0 — the motivating proof.
	if c, ok := Bin(isa.And, even, Const(1)).IsConst(); !ok || c != 0 {
		t.Errorf("even&1 = %v, want const 0", Bin(isa.And, even, Const(1)))
	}
	// even % 2 == 0.
	if c, ok := Bin(isa.Mod, even, Const(2)).IsConst(); !ok || c != 0 {
		t.Errorf("even%%2 not proved 0")
	}
	// x / 0 and x % 0 trap everywhere: ⊤ is the sound result.
	if !Bin(isa.Div, even, Const(0)).IsTop() {
		t.Errorf("div by zero should be T")
	}
	// Wrapping add keeps a pow2 congruence but drops others.
	big := norm(0, ^uint64(0), 3, 0)
	sum := Bin(isa.Add, big, big)
	if sum.M > 1 {
		t.Errorf("mod-3 congruence survived a possible wrap: %v", sum)
	}
	evenTop := norm(0, ^uint64(0), 2, 0)
	sum = Bin(isa.Add, evenTop, evenTop)
	if sum.M != 2 || sum.R != 0 {
		t.Errorf("pow2 congruence lost across wrap: %v", sum)
	}
	// Shl knows its low zero bits even on overflow.
	v := Bin(isa.Shl, Top(), Const(3))
	if v.M != 8 || v.R != 0 {
		t.Errorf("x<<3 = %v, want ≡ 0 mod 8", v)
	}
	// Shift semantics match the VM: >= 64 zeroes.
	if c, ok := Bin(isa.Shl, Range(1, 5), Const(64)).IsConst(); !ok || c != 0 {
		t.Errorf("x<<64 != 0")
	}
}

func TestCmpTransferDecisions(t *testing.T) {
	lo, hi := Range(0, 9), Range(10, 20)
	if c, _ := Cmp(isa.Lt, lo, hi).IsConst(); c != 1 {
		t.Errorf("[0,9] < [10,20] not proved")
	}
	if c, _ := Cmp(isa.Ge, lo, hi).IsConst(); c != 0 {
		t.Errorf("[0,9] >= [10,20] not refuted")
	}
	if c, _ := Cmp(isa.Eq, lo, hi).IsConst(); c != 0 {
		t.Errorf("disjoint Eq not refuted")
	}
	// Congruence-based disequality: even vs odd over overlapping intervals.
	even := norm(0, 100, 2, 0)
	odd := norm(1, 99, 2, 1)
	if c, _ := Cmp(isa.Eq, even, odd).IsConst(); c != 0 {
		t.Errorf("even == odd not refuted")
	}
	if c, _ := Cmp(isa.Ne, even, odd).IsConst(); c != 1 {
		t.Errorf("even != odd not proved")
	}
	// Signed comparisons refuse to decide across the sign boundary.
	span := Range(0, ^uint64(0))
	if v := Cmp(isa.SLt, span, Const(5)); v.M == 0 {
		t.Errorf("SLt decided across sign boundary: %v", v)
	}
	// But decide within a band: negative < nonnegative.
	neg := Range(^uint64(0)-5, ^uint64(0)) // [-6, -1] signed
	pos := Range(0, 100)
	if c, _ := Cmp(isa.SLt, neg, pos).IsConst(); c != 1 {
		t.Errorf("negative band < positive band not proved")
	}
}

// TestAnalyzeEvenStrideLoop pins the flagship precision case: after an
// even-stride loop the analysis proves i&1 == 0 and folds the branch that
// guards the dead region.
func TestAnalyzeEvenStrideLoop(t *testing.T) {
	b := asm.NewBuilder("evenstride")
	b.Entry("main")
	f := b.Function("main", 0)
	n := f.Const(100)
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, n) }, func() {
		f.Assign(i, f.AddI(i, 2))
	})
	odd := f.AndI(i, 1)
	cond := f.NeI(odd, 0) // provably false
	f.If(cond, func() {
		f.Trap(0x99) // dead
	})
	f.RetI(0)
	prog := b.MustBuild()

	res := Analyze(prog)
	fr := res.Funcs["main"]
	if fr == nil {
		t.Fatal("main not analyzed")
	}
	proved := 0
	deadTrap := false
	for bi, blk := range prog.Func("main").Blocks {
		if fr.Branch[bi] >= 0 {
			proved++
		}
		for _, in := range blk.Insts {
			if in.Op == isa.OpTrap && in.Imm == 0x99 && fr.Entry[bi] == nil {
				deadTrap = true
			}
		}
	}
	if proved == 0 {
		t.Errorf("no branch proved; summary %v", res.Summary)
	}
	if !deadTrap {
		t.Errorf("trap block not proved unreachable; summary %v", res.Summary)
	}
	if res.Summary.ProvedBranches == 0 || res.Summary.Unreachable == 0 {
		t.Errorf("summary did not count the proofs: %v", res.Summary)
	}
}

// TestAnalyzeParamsAreTop pins the entry-state contract: parameter
// registers are unconstrained, everything else starts at constant zero.
func TestAnalyzeParamsAreTop(t *testing.T) {
	b := asm.NewBuilder("params")
	b.Entry("main")
	g := b.Function("g", 2)
	g.Ret(g.Add(g.Param(0), g.Param(1)))
	m := b.Function("main", 0)
	m.Call("g", m.Const(1), m.Const(2))
	m.RetI(0)
	prog := b.MustBuild()

	res := Analyze(prog)
	st := res.BlockEntry("g", 0)
	if st == nil {
		t.Fatal("g entry state missing")
	}
	if !st[0].IsTop() || !st[1].IsTop() {
		t.Errorf("params not T: %v %v", st[0], st[1])
	}
	if c, ok := st[2].IsConst(); !ok || c != 0 {
		t.Errorf("non-param register not const 0: %v", st[2])
	}
}

// TestAnalyzeUnknownOpWidens pins the robustness rule: an instruction the
// transfer function does not recognize widens to ⊤ instead of halting.
func TestAnalyzeUnknownOpWidens(t *testing.T) {
	st := new(RegState)
	for i := range st {
		st[i] = Const(42)
	}
	transfer(st, &isa.Inst{Op: isa.Op(250)})
	for i := range st {
		if !st[i].IsTop() {
			t.Fatalf("register %d not widened after unknown opcode: %v", i, st[i])
		}
	}
}

// TestBranchProvedOracle pins the oracle accessor contract used by symex.
func TestBranchProvedOracle(t *testing.T) {
	b := asm.NewBuilder("oracle")
	b.Entry("main")
	f := b.Function("main", 0)
	x := f.Const(4)
	f.If(f.GtI(f.AndI(x, 1), 0), func() { f.Trap(1) })
	f.RetI(0)
	prog := b.MustBuild()

	res := Analyze(prog)
	fn := prog.Func("main")
	found := false
	for bi := range fn.Blocks {
		term := fn.Blocks[bi].Terminator()
		if term.Op != isa.OpBr {
			continue
		}
		taken, ok := res.BranchProved("main", bi)
		if !ok {
			t.Fatalf("constant-guarded branch at block %d not proved", bi)
		}
		if taken != term.ElseIdx {
			t.Fatalf("proved direction %d, want else %d", taken, term.ElseIdx)
		}
		found = true
	}
	if !found {
		t.Fatal("no conditional branch in program")
	}
	if _, ok := res.BranchProved("nosuch", 0); ok {
		t.Error("unknown function reported a proof")
	}
	if _, ok := res.BranchProved("main", 99); ok {
		t.Error("out-of-range block reported a proof")
	}
}
