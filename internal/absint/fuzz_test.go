package absint_test

// FuzzAbsintVsConcrete is the differential soundness check for the
// interval∧congruence domain: decode the fuzz bytes into a random (but
// well-formed) MIR program, run the abstract interpretation once, then run
// the concrete VM on a random input and assert that every register value
// observed at every block entry lies inside the computed abstraction — and
// that no concretely-entered block was proven unreachable.

import (
	"testing"

	"octopocs/internal/absint"
	"octopocs/internal/asm"
	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// genCursor deals deterministic bytes out of the fuzz payload, zero-padded
// past the end so every payload decodes to some program.
type genCursor struct {
	data []byte
	pos  int
}

func (g *genCursor) next() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *genCursor) u16() uint16 {
	return uint16(g.next()) | uint16(g.next())<<8
}

// buildFuzzProgram grows one function from the payload: straight-line
// arithmetic and comparisons over a rolling register pool, bounded loops
// with data-dependent strides (the congruence-domain stressor), nested
// conditionals, allocation/store/load round trips, and syscalls. Register
// pressure is capped well under isa.NumRegs so the builder never errors.
func buildFuzzProgram(data []byte) *isa.Program {
	g := &genCursor{data: data}
	b := asm.NewBuilder("fuzz")
	b.Entry("main")
	f := b.Function("main", 0)

	allocs := 0
	regs := []isa.Reg{f.Const(int64(int8(g.next())))}
	allocs++
	pick := func() isa.Reg { return regs[int(g.next())%len(regs)] }
	push := func(r isa.Reg) {
		regs = append(regs, r)
	}

	var emit func(depth int, budget int)
	emit = func(depth int, budget int) {
		for op := 0; op < budget; op++ {
			if allocs > 140 {
				return
			}
			switch g.next() % 9 {
			case 0:
				push(f.Const(int64(int16(g.u16()))))
				allocs++
			case 1:
				push(f.Bin(isa.BinOp(g.next()%10+1), pick(), pick()))
				allocs++
			case 2:
				push(f.BinI(isa.BinOp(g.next()%10+1), pick(), int64(int8(g.next()))))
				allocs++
			case 3:
				push(f.Cmp(isa.CmpOp(g.next()%8+1), pick(), pick()))
				allocs++
			case 4:
				push(f.CmpI(isa.CmpOp(g.next()%8+1), pick(), int64(g.next())))
				allocs++
			case 5:
				if depth < 2 {
					inner := int(g.next() % 3)
					f.If(pick(), func() { emit(depth+1, inner) })
				}
			case 6:
				if depth < 2 {
					i := f.VarI(int64(g.next() % 4))
					lim := int64(g.next() % 24)
					stride := int64(g.next()%4 + 1)
					inner := int(g.next() % 2)
					allocs += 4
					f.While(func() isa.Reg { return f.CmpI(isa.Lt, i, lim) }, func() {
						emit(depth+1, inner)
						f.Assign(i, f.AddI(i, stride))
					})
					push(i)
				}
			case 7:
				push(f.Sys(isa.SysArgLen))
				allocs++
			case 8:
				size := uint8(1) << (g.next() % 3) // 1, 2 or 4 bytes
				addr := f.Sys(isa.SysAlloc, f.Const(64))
				f.Store(size, addr, int64(g.next()%32), pick())
				push(f.Load(size, addr, int64(g.next()%32)))
				allocs += 3
			}
		}
	}
	emit(0, 24)
	f.RetI(0)
	return b.MustBuild()
}

func FuzzAbsintVsConcrete(f *testing.F) {
	// Seed corpus: arithmetic chains, an even-stride loop, nested control
	// flow, memory round trips, and a payload that exercises every opcode
	// class at least once.
	f.Add([]byte{7, 0, 10, 0, 1, 1, 2, 3}, []byte{1, 2, 3, 4})
	f.Add([]byte{9, 6, 0, 20, 2, 1, 2, 5, 1, 3, 3, 7}, []byte{0xff, 0x00})
	f.Add([]byte{3, 5, 2, 1, 4, 9, 5, 1, 6, 0, 16, 2, 0}, []byte{42})
	f.Add([]byte{11, 8, 0, 8, 1, 8, 2, 5, 8, 1, 7, 4, 4}, []byte{})
	f.Add([]byte{2, 1, 9, 2, 2, 7, 1, 4, 2, 3, 6, 1, 30, 3, 1, 0, 8, 0}, []byte{9, 9})

	f.Fuzz(func(t *testing.T, progData, input []byte) {
		if len(progData) > 1<<10 || len(input) > 1<<10 {
			t.Skip("oversized payload")
		}
		prog := buildFuzzProgram(progData)
		res := absint.Analyze(prog)

		hooks := &vm.Hooks{
			OnBlockRegs: func(fn string, block int, regs []uint64) {
				st := res.BlockEntry(fn, block)
				if st == nil {
					t.Errorf("concrete execution entered %s/%d, which the analysis proved unreachable", fn, block)
					return
				}
				for i, v := range regs {
					if !st[i].Contains(v) {
						t.Errorf("%s/%d r%d: concrete value %d outside abstraction %v",
							fn, block, i, v, st[i])
					}
				}
			},
		}
		vm.New(prog, vm.Config{Input: input, MaxSteps: 4000, Hooks: hooks}).Run()
	})
}
