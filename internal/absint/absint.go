// Package absint is the abstract-interpretation value-range layer: a
// forward dataflow pass over MIR computing, per block and per register, a
// reduced product of an unsigned interval domain and a congruence domain
// (value ≡ R mod M), with sound joins and widening at loop heads.
//
// The results strengthen the P2 preparation twice over: mirstatic folds
// branches the reduced product proves one-sided (beyond plain constant
// propagation, e.g. x&1 == 0 after an even-stride loop), and symex consults
// the per-branch proofs as a static oracle that discharges feasibility
// checks before the solver ever runs. Transfer functions cover the full
// ISA; anything unknown widens to ⊤ and the analysis never kills a path,
// so a ⊤-respecting consumer can only skip work, never change a verdict.
// P1, P3 and P4 are untouched.
//
// Concurrency: Analyze runs on one goroutine; the Result it returns is
// immutable and safe for unsynchronized concurrent reads, which is how
// parallel frontier workers share one branch oracle.
package absint

import (
	"fmt"
	"math/bits"

	"octopocs/internal/isa"
)

const top = ^uint64(0)

// Val is one abstract value: the reduced product of an unsigned interval
// [Lo, Hi] and a congruence class (value ≡ R mod M).
//
// Representation invariants, established by norm:
//   - Lo <= Hi always.
//   - M == 0: the value is the constant R, and Lo == Hi == R.
//   - M == 1: no congruence information; R == 0.
//   - M >= 2: every concrete value v satisfies v % M == R, with R < M, and
//     Lo and Hi themselves lie in the congruence class.
//
// The zero Val is Const(0), so fresh register files start sound for the
// VM's zero-initialized registers.
type Val struct {
	Lo, Hi uint64
	M, R   uint64
}

// Top returns the unconstrained value ⊤.
func Top() Val { return Val{0, top, 1, 0} }

// Const returns the singleton abstraction of v.
func Const(v uint64) Val { return Val{v, v, 0, v} }

// Range returns the interval [lo, hi] with no congruence information.
func Range(lo, hi uint64) Val { return norm(lo, hi, 1, 0) }

// norm establishes the representation invariants for an interval plus
// congruence pair, reducing the product: the interval endpoints are pulled
// onto the congruence class, and a singleton collapses to a constant. An
// inconsistent pair (empty concretization) widens to ⊤, which is sound:
// such a state is only ever computed for vacuously unreachable code.
func norm(lo, hi, m, r uint64) Val {
	if lo > hi {
		return Top()
	}
	if m == 0 {
		if lo != hi {
			m, r = 1, 0
		} else {
			return Val{lo, lo, 0, lo}
		}
	}
	if m == 1 {
		r = 0
	} else {
		r %= m
		lm := lo % m
		var d uint64
		if lm <= r {
			d = r - lm
		} else {
			d = m - (lm - r)
		}
		if d > hi-lo {
			return Top() // no value in [lo,hi] is ≡ r (mod m)
		}
		lo += d
		hm := hi % m
		if hm >= r {
			hi -= hm - r
		} else {
			hi -= m - (r - hm)
		}
	}
	if lo == hi {
		return Val{lo, lo, 0, lo}
	}
	return Val{lo, hi, m, r}
}

// IsConst reports whether v abstracts exactly one value, and which.
func (v Val) IsConst() (uint64, bool) {
	if v.M == 0 {
		return v.R, true
	}
	return 0, false
}

// IsTop reports whether v carries no information at all.
func (v Val) IsTop() bool { return v.Lo == 0 && v.Hi == top && v.M == 1 }

// Contains reports whether the concrete value x lies in v's concretization.
// This is the soundness predicate the differential fuzz target checks.
func (v Val) Contains(x uint64) bool {
	if x < v.Lo || x > v.Hi {
		return false
	}
	switch {
	case v.M == 0:
		return x == v.R
	case v.M == 1:
		return true
	default:
		return x%v.M == v.R
	}
}

// congr projects v onto the congruence lattice, where modulus 0 encodes a
// constant (the class {r}).
func (v Val) congr() (m, r uint64) {
	if v.M == 0 {
		return 0, v.R
	}
	return v.M, v.R
}

// Decide classifies v as a branch condition: +1 if provably nonzero, -1 if
// provably zero, 0 if unknown.
func (v Val) Decide() int {
	if c, ok := v.IsConst(); ok {
		if c != 0 {
			return 1
		}
		return -1
	}
	if v.Lo >= 1 {
		return 1
	}
	if v.M > 1 && v.R != 0 {
		return 1 // 0 is not in the congruence class
	}
	return 0
}

// String renders v compactly: "T", a constant, "[lo,hi]", or
// "[lo,hi] mod m = r".
func (v Val) String() string {
	if v.IsTop() {
		return "T"
	}
	if c, ok := v.IsConst(); ok {
		return fmt.Sprintf("%d", c)
	}
	var s string
	if v.Hi == top {
		s = fmt.Sprintf("[%d,max]", v.Lo)
	} else {
		s = fmt.Sprintf("[%d,%d]", v.Lo, v.Hi)
	}
	if v.M > 1 {
		s += fmt.Sprintf(" mod %d = %d", v.M, v.R)
	}
	return s
}

// Join returns the least upper bound of a and b: the enclosing interval and
// the Granger join of the congruences (g = gcd(Ma, Mb, |Ra-Rb|)).
func Join(a, b Val) Val {
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	am, ar := a.congr()
	bm, br := b.congr()
	g := gcd(gcd(am, bm), absDiff(ar, br))
	r := ar
	if g != 0 {
		r = ar % g
	}
	return norm(lo, hi, g, r)
}

// Widen accelerates convergence at loop heads: any endpoint that moved
// since prev jumps straight to its extreme. The congruence component needs
// no widening — its join walks a strictly decreasing divisor chain, which
// is finite.
func Widen(prev, next Val) Val {
	j := Join(prev, next)
	lo, hi := j.Lo, j.Hi
	if lo < prev.Lo {
		lo = 0
	}
	if hi > prev.Hi {
		hi = top
	}
	m, r := j.congr()
	return norm(lo, hi, m, r)
}

// ---- arithmetic helpers ----

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func absDiff(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return b - a
}

func pow2(g uint64) bool { return g != 0 && g&(g-1) == 0 }

// addMod returns (x + y) mod m for x, y < m, without overflow.
func addMod(x, y, m uint64) uint64 {
	s, c := bits.Add64(x, y, 0)
	if c == 1 || s >= m {
		s -= m
	}
	return s
}

// subMod returns (x - y) mod m for x, y < m.
func subMod(x, y, m uint64) uint64 {
	if x >= y {
		return x - y
	}
	return m - (y - x)
}

// mulMod returns (x * y) mod m for x, y < m, via the 128-bit product.
func mulMod(x, y, m uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	_, r := bits.Div64(hi, lo, m)
	return r
}

// mulCheck returns x*y and whether it fit in 64 bits.
func mulCheck(x, y uint64) (uint64, bool) {
	hi, lo := bits.Mul64(x, y)
	return lo, hi == 0
}

// ---- transfer functions ----

// binConst mirrors the VM's binOp exactly; ok is false when the operation
// traps (division by zero) or the operator is unknown.
func binConst(op isa.BinOp, a, b uint64) (v uint64, ok bool) {
	switch op {
	case isa.Add:
		return a + b, true
	case isa.Sub:
		return a - b, true
	case isa.Mul:
		return a * b, true
	case isa.Div:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case isa.Mod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.And:
		return a & b, true
	case isa.Or:
		return a | b, true
	case isa.Xor:
		return a ^ b, true
	case isa.Shl:
		if b >= 64 {
			return 0, true
		}
		return a << b, true
	case isa.Shr:
		if b >= 64 {
			return 0, true
		}
		return a >> b, true
	default:
		return 0, false
	}
}

// cmpConst mirrors the VM's cmpOp exactly; ok is false for an unknown
// comparator.
func cmpConst(op isa.CmpOp, a, b uint64) (v uint64, ok bool) {
	var t bool
	switch op {
	case isa.Eq:
		t = a == b
	case isa.Ne:
		t = a != b
	case isa.Lt:
		t = a < b
	case isa.Le:
		t = a <= b
	case isa.Gt:
		t = a > b
	case isa.Ge:
		t = a >= b
	case isa.SLt:
		t = int64(a) < int64(b)
	case isa.SLe:
		t = int64(a) <= int64(b)
	default:
		return 0, false
	}
	if t {
		return 1, true
	}
	return 0, true
}

// Bin abstracts dst = a <op> b. Constant operands fold through the exact VM
// semantics; a folding that traps (div/mod by zero) yields ⊤, which is
// sound because no execution survives to observe the destination.
//
// Wrapping rule: arithmetic is mod 2^64, and a congruence class mod g
// survives wrapping only when g is a power of two (g divides 2^64) or no
// operand pair can wrap; every transfer below enforces this before keeping
// congruence information.
func Bin(op isa.BinOp, a, b Val) Val {
	if av, aok := a.IsConst(); aok {
		if bv, bok := b.IsConst(); bok {
			if v, ok := binConst(op, av, bv); ok {
				return Const(v)
			}
			return Top()
		}
	}
	switch op {
	case isa.Add:
		return vAdd(a, b)
	case isa.Sub:
		return vSub(a, b)
	case isa.Mul:
		return vMul(a, b)
	case isa.Div:
		return vDiv(a, b)
	case isa.Mod:
		return vMod(a, b)
	case isa.And:
		return vAnd(a, b)
	case isa.Or:
		return vOr(a, b)
	case isa.Xor:
		return vXor(a, b)
	case isa.Shl:
		return vShl(a, b)
	case isa.Shr:
		return vShr(a, b)
	default:
		// Unknown operator: widen to ⊤, never halt.
		return Top()
	}
}

func vAdd(a, b Val) Val {
	lo, cLo := bits.Add64(a.Lo, b.Lo, 0)
	hi, cHi := bits.Add64(a.Hi, b.Hi, 0)
	am, ar := a.congr()
	bm, br := b.congr()
	g := gcd(am, bm)
	if cHi != 0 && !pow2(g) {
		g = 1 // a wrap is possible and g does not divide 2^64
	}
	var r uint64
	if g > 1 {
		r = addMod(ar%g, br%g, g)
	}
	if cLo != cHi {
		// Some sums wrap and some do not: the image is not an interval.
		return norm(0, top, g, r)
	}
	// Either no sum wraps or every sum wraps (the true sums span less than
	// 2^64); either way [lo, hi] encloses the wrapped image.
	return norm(lo, hi, g, r)
}

func vSub(a, b Val) Val {
	lo, wLo := bits.Sub64(a.Lo, b.Hi, 0)
	hi, wHi := bits.Sub64(a.Hi, b.Lo, 0)
	am, ar := a.congr()
	bm, br := b.congr()
	g := gcd(am, bm)
	if wLo != 0 && !pow2(g) {
		g = 1 // a borrow is possible (a.Lo < b.Hi) and g is not pow2
	}
	var r uint64
	if g > 1 {
		r = subMod(ar%g, br%g, g)
	}
	if wLo != wHi {
		return norm(0, top, g, r)
	}
	return norm(lo, hi, g, r)
}

func vMul(a, b Val) Val {
	h, hiProd := bits.Mul64(a.Hi, b.Hi)
	overflow := h != 0
	lo, hi := uint64(0), top
	if !overflow {
		lo, hi = a.Lo*b.Lo, hiProd
	}
	am, ar := a.congr()
	bm, br := b.congr()
	// Granger product congruence: x·y ≡ Ra·Rb mod gcd(Ra·Mb, Rb·Ma, Ma·Mb).
	g := uint64(1)
	if t1, ok1 := mulCheck(ar, bm); ok1 {
		if t2, ok2 := mulCheck(br, am); ok2 {
			if t3, ok3 := mulCheck(am, bm); ok3 {
				g = gcd(gcd(t1, t2), t3)
			}
		}
	}
	if overflow && !pow2(g) {
		g = 1
	}
	var r uint64
	if g > 1 {
		r = mulMod(ar%g, br%g, g)
	}
	return norm(lo, hi, g, r)
}

func vDiv(a, b Val) Val {
	if c, ok := b.IsConst(); ok {
		if c == 0 {
			return Top() // every execution traps; nothing to constrain
		}
		lo, hi := a.Lo/c, a.Hi/c
		am, ar := a.congr()
		if am > 0 && am%c == 0 && ar%c == 0 {
			// x = ar + k·am with c | am and c | ar divides exactly.
			return norm(lo, hi, am/c, ar/c)
		}
		return norm(lo, hi, 1, 0)
	}
	if b.Hi == 0 {
		return Top() // the only possible divisor traps
	}
	bl := b.Lo
	if bl == 0 {
		bl = 1 // surviving executions divide by at least 1
	}
	return norm(a.Lo/b.Hi, a.Hi/bl, 1, 0)
}

func vMod(a, b Val) Val {
	if c, ok := b.IsConst(); ok {
		if c == 0 {
			return Top()
		}
		if a.Hi < c {
			return a // identity: already reduced
		}
		am, ar := a.congr()
		if am > 0 && am%c == 0 {
			// x ≡ ar (mod am) and c | am pin the remainder exactly.
			return Const(ar % c)
		}
		return norm(0, c-1, 1, 0)
	}
	if b.Hi == 0 {
		return Top()
	}
	return norm(0, b.Hi-1, 1, 0)
}

func vAnd(a, b Val) Val {
	if _, ok := a.IsConst(); ok {
		a, b = b, a
	}
	if c, ok := b.IsConst(); ok {
		if c == top {
			return a // identity mask
		}
		if mask := c + 1; mask&(mask-1) == 0 {
			// c = 2^k - 1: x & c == x mod 2^k.
			if a.Hi <= c {
				return a
			}
			am, ar := a.congr()
			if am > 0 && am%mask == 0 {
				return Const(ar & c) // the even-stride case: x&1 after i += 2
			}
		}
		hi := c
		if a.Hi < hi {
			hi = a.Hi
		}
		return norm(0, hi, 1, 0)
	}
	hi := a.Hi
	if b.Hi < hi {
		hi = b.Hi
	}
	return norm(0, hi, 1, 0)
}

// orCeil bounds x|y from above: the all-ones value of the wider operand's
// bit length.
func orCeil(x, y uint64) uint64 {
	n := bits.Len64(x | y)
	if n >= 64 {
		return top
	}
	return uint64(1)<<n - 1
}

func vOr(a, b Val) Val {
	lo := a.Lo
	if b.Lo > lo {
		lo = b.Lo
	}
	return norm(lo, orCeil(a.Hi, b.Hi), 1, 0)
}

func vXor(a, b Val) Val {
	return norm(0, orCeil(a.Hi, b.Hi), 1, 0)
}

func vShl(a, b Val) Val {
	if c, ok := b.IsConst(); ok {
		if c >= 64 {
			return Const(0)
		}
		if c == 0 {
			return a
		}
		g := uint64(1) << c // x<<c ≡ 0 mod 2^c even after wrapping
		if a.Hi>>(64-c) != 0 {
			return norm(0, top, g, 0) // shift can overflow
		}
		am, ar := a.congr()
		if am > 0 {
			if m2, ok2 := mulCheck(am, g); ok2 {
				if r2, ok3 := mulCheck(ar, g); ok3 {
					return norm(a.Lo<<c, a.Hi<<c, m2, r2)
				}
			}
		}
		return norm(a.Lo<<c, a.Hi<<c, g, 0)
	}
	if b.Lo >= 64 {
		return Const(0) // every shift amount zeroes the value
	}
	// Any amount >= b.Lo leaves at least b.Lo low zero bits (a >=64 shift
	// gives 0, which is in every pow2 class).
	return norm(0, top, uint64(1)<<b.Lo, 0)
}

func vShr(a, b Val) Val {
	if c, ok := b.IsConst(); ok {
		if c >= 64 {
			return Const(0)
		}
		return norm(a.Lo>>c, a.Hi>>c, 1, 0)
	}
	return norm(0, a.Hi, 1, 0)
}

// boolTop is the unknown comparison result.
func boolTop() Val { return norm(0, 1, 1, 0) }

// disjoint reports whether a and b provably share no concrete value:
// separated intervals, or incompatible congruences modulo gcd(Ma, Mb).
func disjoint(a, b Val) bool {
	if a.Hi < b.Lo || b.Hi < a.Lo {
		return true
	}
	am, ar := a.congr()
	bm, br := b.congr()
	g := gcd(am, bm)
	return g > 1 && ar%g != br%g
}

// crossesSign reports whether v spans the signed boundary 2^63, in which
// case int64 casts of its endpoints do not bound the signed image.
func crossesSign(v Val) bool {
	const half = uint64(1) << 63
	return v.Lo < half && v.Hi >= half
}

// Cmp abstracts dst = (a <op> b), proving the result 0 or 1 where the
// domains allow and returning the unknown boolean otherwise.
func Cmp(op isa.CmpOp, a, b Val) Val {
	if av, aok := a.IsConst(); aok {
		if bv, bok := b.IsConst(); bok {
			if v, ok := cmpConst(op, av, bv); ok {
				return Const(v)
			}
			return boolTop()
		}
	}
	switch op {
	case isa.Eq:
		if disjoint(a, b) {
			return Const(0)
		}
	case isa.Ne:
		if disjoint(a, b) {
			return Const(1)
		}
	case isa.Lt:
		if a.Hi < b.Lo {
			return Const(1)
		}
		if a.Lo >= b.Hi {
			return Const(0)
		}
	case isa.Le:
		if a.Hi <= b.Lo {
			return Const(1)
		}
		if a.Lo > b.Hi {
			return Const(0)
		}
	case isa.Gt:
		if b.Hi < a.Lo {
			return Const(1)
		}
		if b.Lo >= a.Hi {
			return Const(0)
		}
	case isa.Ge:
		if b.Hi <= a.Lo {
			return Const(1)
		}
		if b.Lo > a.Hi {
			return Const(0)
		}
	case isa.SLt:
		if !crossesSign(a) && !crossesSign(b) {
			if int64(a.Hi) < int64(b.Lo) {
				return Const(1)
			}
			if int64(a.Lo) >= int64(b.Hi) {
				return Const(0)
			}
		}
	case isa.SLe:
		if !crossesSign(a) && !crossesSign(b) {
			if int64(a.Hi) <= int64(b.Lo) {
				return Const(1)
			}
			if int64(a.Lo) > int64(b.Hi) {
				return Const(0)
			}
		}
	default:
		// Unknown comparator: fall through to the unknown boolean.
	}
	return boolTop()
}
