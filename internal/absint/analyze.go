package absint

import (
	"fmt"

	"octopocs/internal/isa"
)

// DefaultWidenAfter is how many refining joins a block's entry state
// absorbs before further refinements widen to force convergence.
const DefaultWidenAfter = 4

// Options parameterizes Analyze.
type Options struct {
	// WidenAfter overrides DefaultWidenAfter when positive.
	WidenAfter int
}

// RegState is the abstract register file at one program point.
type RegState [isa.NumRegs]Val

// FuncRanges is the per-function analysis result.
type FuncRanges struct {
	// Fn is the analyzed function.
	Fn *isa.Function
	// Entry[b] is the abstract register state on entry to block b; nil when
	// the analysis proves b unreachable from the function entry for every
	// argument vector.
	Entry []*RegState
	// Branch[b] is the proven successor of the two-way conditional branch
	// terminating block b, or -1 when the analysis cannot decide it (or the
	// block ends in something else).
	Branch []int
}

// Summary counts what one analysis proved, for telemetry and reports.
type Summary struct {
	Funcs          int `json:"funcs"`
	Blocks         int `json:"blocks"`
	Unreachable    int `json:"unreachable_blocks"`
	ProvedBranches int `json:"proved_branches"`
}

func (s Summary) String() string {
	return fmt.Sprintf("absint: %d funcs, %d blocks (%d unreachable), %d branches proved",
		s.Funcs, s.Blocks, s.Unreachable, s.ProvedBranches)
}

// Result is one whole-program analysis: every function analyzed
// independently under ⊤ arguments, so every fact holds for every call.
type Result struct {
	Prog    *isa.Program
	Funcs   map[string]*FuncRanges
	Summary Summary
}

// Analyze runs the abstract interpretation over every function of prog
// with default options.
func Analyze(prog *isa.Program) *Result { return AnalyzeOpts(prog, Options{}) }

// AnalyzeOpts runs the abstract interpretation with explicit options.
func AnalyzeOpts(prog *isa.Program, opts Options) *Result {
	widenAfter := opts.WidenAfter
	if widenAfter <= 0 {
		widenAfter = DefaultWidenAfter
	}
	res := &Result{Prog: prog, Funcs: make(map[string]*FuncRanges, len(prog.Funcs))}
	for _, f := range prog.Funcs {
		fr := analyzeFunc(f, widenAfter)
		res.Funcs[f.Name] = fr
		res.Summary.Funcs++
		res.Summary.Blocks += len(f.Blocks)
		for b := range f.Blocks {
			if fr.Entry[b] == nil {
				res.Summary.Unreachable++
			}
			if fr.Branch[b] >= 0 {
				res.Summary.ProvedBranches++
			}
		}
	}
	return res
}

// entryState is the sound function-entry abstraction: parameter registers
// are ⊤ (callers pass anything), every other register is the constant 0 —
// the VM zero-initializes frames, and the MIR verifier rejects calls whose
// argument count disagrees with NParams.
func entryState(f *isa.Function) *RegState {
	st := new(RegState)
	for i := range st {
		if i < f.NParams {
			st[i] = Top()
		} else {
			st[i] = Const(0)
		}
	}
	return st
}

// analyzeFunc runs the conditional-flow worklist fixpoint over one
// function. Edges out of a branch whose condition the abstract state
// decides flow only in the proven direction, which is what lets the
// analysis prove blocks unreachable.
func analyzeFunc(f *isa.Function, widenAfter int) *FuncRanges {
	n := len(f.Blocks)
	fr := &FuncRanges{Fn: f, Entry: make([]*RegState, n), Branch: make([]int, n)}
	for i := range fr.Branch {
		fr.Branch[i] = -1
	}
	if n == 0 {
		return fr
	}
	fr.Entry[0] = entryState(f)

	joins := make([]int, n)
	inWork := make([]bool, n)
	work := []int{0}
	inWork[0] = true

	flow := func(to int, st *RegState) {
		cur := fr.Entry[to]
		if cur == nil {
			cp := *st
			fr.Entry[to] = &cp
		} else {
			changed := false
			widen := joins[to] >= widenAfter
			for i := range cur {
				var nv Val
				if widen {
					nv = Widen(cur[i], st[i])
				} else {
					nv = Join(cur[i], st[i])
				}
				if nv != cur[i] {
					cur[i] = nv
					changed = true
				}
			}
			if !changed {
				return
			}
			joins[to]++
		}
		if !inWork[to] {
			work = append(work, to)
			inWork[to] = true
		}
	}

	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false

		st := *fr.Entry[b]
		blk := f.Blocks[b]
		for i := range blk.Insts {
			transfer(&st, &blk.Insts[i])
		}
		term := blk.Terminator()
		switch term.Op {
		case isa.OpJmp:
			flow(term.ThenIdx, &st)
		case isa.OpBr:
			if term.ThenIdx == term.ElseIdx {
				flow(term.ThenIdx, &st)
				break
			}
			switch st[term.A].Decide() {
			case 1:
				flow(term.ThenIdx, &st)
			case -1:
				flow(term.ElseIdx, &st)
			default:
				flow(term.ThenIdx, &st)
				flow(term.ElseIdx, &st)
			}
		default:
			// Ret, Trap and exiting syscalls have no successors.
		}
	}

	// Post-pass: decide each reachable two-way branch from the fixpoint.
	for b := range f.Blocks {
		if fr.Entry[b] == nil {
			continue
		}
		blk := f.Blocks[b]
		term := blk.Terminator()
		if term.Op != isa.OpBr || term.ThenIdx == term.ElseIdx {
			continue
		}
		st := *fr.Entry[b]
		for i := range blk.Insts {
			transfer(&st, &blk.Insts[i])
		}
		switch st[term.A].Decide() {
		case 1:
			fr.Branch[b] = term.ThenIdx
		case -1:
			fr.Branch[b] = term.ElseIdx
		}
	}
	return fr
}

// transfer applies one instruction to the abstract register file. Every
// opcode is covered; anything unrecognized widens the whole file to ⊤
// rather than halting — the ROADMAP robustness rule.
func transfer(st *RegState, in *isa.Inst) {
	switch in.Op {
	case isa.OpConst:
		st[in.Dst] = Const(uint64(in.Imm))
	case isa.OpMov:
		st[in.Dst] = st[in.A]
	case isa.OpBin:
		st[in.Dst] = Bin(in.Bin, st[in.A], st[in.B])
	case isa.OpBinImm:
		st[in.Dst] = Bin(in.Bin, st[in.A], Const(uint64(in.Imm)))
	case isa.OpCmp:
		st[in.Dst] = Cmp(in.Cmp, st[in.A], st[in.B])
	case isa.OpCmpImm:
		st[in.Dst] = Cmp(in.Cmp, st[in.A], Const(uint64(in.Imm)))
	case isa.OpLoad:
		st[in.Dst] = loadVal(in.Size)
	case isa.OpStore:
		// No register effect; memory is not modeled.
	case isa.OpCall, isa.OpCallInd, isa.OpSyscall:
		// Callee return values and syscall results are unconstrained.
		st[in.Dst] = Top()
	case isa.OpJmp, isa.OpBr, isa.OpRet, isa.OpTrap:
		// Control transfer; no register effect.
	default:
		// Unknown opcode: widen every register to ⊤, never halt.
		for i := range st {
			st[i] = Top()
		}
	}
}

// loadVal bounds a memory load by its width: narrow loads zero-extend.
func loadVal(size uint8) Val {
	switch size {
	case 1, 2, 4:
		return Range(0, uint64(1)<<(8*uint(size))-1)
	default:
		return Top()
	}
}

// BranchProved implements the symex static-oracle contract: the successor
// block every execution of fn takes at the conditional branch ending block,
// if the analysis proved one.
func (r *Result) BranchProved(fn string, block int) (taken int, ok bool) {
	fr := r.Funcs[fn]
	if fr == nil || block < 0 || block >= len(fr.Branch) || fr.Branch[block] < 0 {
		return -1, false
	}
	return fr.Branch[block], true
}

// BlockEntry returns the abstract register state at (fn, block) entry, or
// nil when the block was proven unreachable (or fn is unknown).
func (r *Result) BlockEntry(fn string, block int) *RegState {
	fr := r.Funcs[fn]
	if fr == nil || block < 0 || block >= len(fr.Entry) {
		return nil
	}
	return fr.Entry[block]
}

// Unreachable reports whether the analysis proved (fn, block) unreachable
// from fn's entry for every argument vector.
func (r *Result) Unreachable(fn string, block int) bool {
	fr := r.Funcs[fn]
	return fr != nil && block >= 0 && block < len(fr.Entry) && fr.Entry[block] == nil
}
