package taint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	var nilSet *Set
	if !nilSet.IsEmpty() || nilSet.Len() != 0 {
		t.Error("nil set must be empty")
	}
	if NewSet() != nil {
		t.Error("NewSet() with no offsets must be nil")
	}

	s := NewSet(5, 3, 5, 1)
	if got := s.Offsets(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Offsets() = %v, want [1 3 5]", got)
	}
	if !s.Contains(3) || s.Contains(4) {
		t.Error("Contains wrong")
	}
	if nilSet.Contains(0) {
		t.Error("nil set contains nothing")
	}
}

func TestSetUnion(t *testing.T) {
	a := NewSet(1, 3)
	b := NewSet(2, 3, 9)
	u := a.Union(b)
	want := []uint32{1, 2, 3, 9}
	got := u.Offsets()
	if len(got) != len(want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Union = %v, want %v", got, want)
		}
	}
	if a.Union(nil) != a || (*Set)(nil).Union(b) != b {
		t.Error("union with empty must reuse the operand")
	}
}

func TestSetEqual(t *testing.T) {
	if !NewSet(1, 2).Equal(NewSet(2, 1)) {
		t.Error("order-insensitive equality failed")
	}
	if NewSet(1).Equal(NewSet(2)) {
		t.Error("distinct sets compared equal")
	}
	if !(*Set)(nil).Equal(NewSet()) {
		t.Error("two empties must be equal")
	}
}

// Property: union is commutative, associative, idempotent, and its length
// is bounded by the sum and at least the max of operand lengths.
func TestSetUnionProperties(t *testing.T) {
	gen := func(r *rand.Rand) *Set {
		n := r.Intn(8)
		offs := make([]uint32, n)
		for i := range offs {
			offs[i] = uint32(r.Intn(16))
		}
		return NewSet(offs...)
	}
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		ab, ba := a.Union(b), b.Union(a)
		if !ab.Equal(ba) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		if !a.Union(a).Equal(a) {
			return false
		}
		if ab.Len() > a.Len()+b.Len() || ab.Len() < max(a.Len(), b.Len()) {
			return false
		}
		// Membership is the union of memberships.
		for o := uint32(0); o < 16; o++ {
			if ab.Contains(o) != (a.Contains(o) || b.Contains(o)) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
