package taint

import (
	"sort"

	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// Config parameterizes an Engine.
type Config struct {
	// Lib is the shared function set ℓ: offsets consumed while executing
	// one of these functions count as crash-primitive bytes.
	Lib map[string]bool
	// Ep is the entry point of ℓ (the first ℓ function on the crashing
	// call stack), whose entries delimit bunches.
	Ep string
	// ContextAware selects the paper's context-aware mode. When false,
	// every used offset lands in a single bunch and ep arguments are not
	// recorded — the Table III baseline.
	ContextAware bool
}

// Bunch groups the crash-primitive offsets consumed during one entry into ℓ
// (paper § III-A): the byte characters of the PoC "used in ℓ at the same
// sequence".
type Bunch struct {
	// Seq is the 1-based ordinal of the ep entry this bunch belongs to.
	Seq int
	// Offsets are the input-file offsets consumed during this entry,
	// sorted ascending.
	Offsets []uint32
	// Args is the ep argument vector observed at this entry; nil in
	// context-free mode.
	Args []uint64
}

// Result is the outcome of P1: the crash primitives of the PoC.
type Result struct {
	// Bunches is ordered by Seq. Context-free mode yields exactly one.
	Bunches []Bunch
	// EpEntries is how many times execution entered ep.
	EpEntries int
}

// AllOffsets returns the union of all bunch offsets, sorted.
func (r *Result) AllOffsets() []uint32 {
	var all []uint32
	for _, b := range r.Bunches {
		all = append(all, b.Offsets...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, o := range all {
		if i == 0 || o != out[len(out)-1] {
			out = append(out, o)
		}
	}
	return out
}

// Engine performs the taint analysis over one concrete run. Create with
// NewEngine, pass Hooks() to vm.Config, run the machine, then read Result.
type Engine struct {
	cfg Config

	// regs[frameID] is the per-frame register taint file.
	regs map[uint64]*[isa.NumRegs]*Set
	// mem is per-byte memory taint.
	mem map[uint64]*Set

	// marks[seq] accumulates used offsets per ep entry.
	marks map[int]map[uint32]bool
	// epArgs[seq-1] is the recorded argument vector of each ep entry.
	epArgs [][]uint64
	// epCount is the number of ep entries so far.
	epCount int

	// pendingCall carries argument taints from the OpCall/OpCallInd
	// instruction observation to the matching OnCall event.
	pendingCall []*Set
	// pendingRet carries the return-value taint from OpRet to OnRet.
	pendingRet *Set
}

// NewEngine returns a fresh engine for one run.
func NewEngine(cfg Config) *Engine {
	return &Engine{
		cfg:   cfg,
		regs:  make(map[uint64]*[isa.NumRegs]*Set),
		mem:   make(map[uint64]*Set),
		marks: make(map[int]map[uint32]bool),
	}
}

// Result finalizes and returns the crash primitives. In context-aware mode
// every ep entry yields a bunch, even an empty one, so that bunch ordinals
// stay aligned with entry ordinals during the combining phase.
func (e *Engine) Result() *Result {
	res := &Result{EpEntries: e.epCount}
	maxSeq := e.epCount
	if !e.cfg.ContextAware {
		maxSeq = 0
		if len(e.marks) > 0 || e.epCount > 0 {
			maxSeq = 1
		}
	}
	for seq := 1; seq <= maxSeq; seq++ {
		offs := make([]uint32, 0, len(e.marks[seq]))
		for o := range e.marks[seq] {
			offs = append(offs, o)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		b := Bunch{Seq: seq, Offsets: offs}
		if e.cfg.ContextAware && seq-1 < len(e.epArgs) {
			b.Args = e.epArgs[seq-1]
		}
		res.Bunches = append(res.Bunches, b)
	}
	return res
}

// EpArgs returns the recorded argument vectors, one per ep entry.
func (e *Engine) EpArgs() [][]uint64 { return e.epArgs }

// frame returns (allocating) the register taint file of a frame.
func (e *Engine) frame(id uint64) *[isa.NumRegs]*Set {
	fr := e.regs[id]
	if fr == nil {
		fr = new([isa.NumRegs]*Set)
		e.regs[id] = fr
	}
	return fr
}

// inLib reports whether offsets used at loc count as crash primitives:
// execution must be inside an ℓ function and, in context-aware mode, ep
// must have been entered at least once.
func (e *Engine) inLib(fn string) bool {
	if !e.cfg.Lib[fn] {
		return false
	}
	return e.epCount >= 1
}

// seq returns the bunch key for a use happening now.
func (e *Engine) seq() int {
	if e.cfg.ContextAware {
		return e.epCount
	}
	return 1
}

// mark records that the offsets in s were used inside ℓ.
func (e *Engine) mark(s *Set) {
	if s.IsEmpty() {
		return
	}
	seq := e.seq()
	m := e.marks[seq]
	if m == nil {
		m = make(map[uint32]bool)
		e.marks[seq] = m
	}
	for _, o := range s.Offsets() {
		m[o] = true
	}
}

// memTaint unions the taint of size bytes at addr.
func (e *Engine) memTaint(addr uint64, size uint8) *Set {
	var s *Set
	for i := uint64(0); i < uint64(size); i++ {
		s = s.Union(e.mem[addr+i])
	}
	return s
}

// setMemTaint assigns t to each of size bytes at addr.
func (e *Engine) setMemTaint(addr uint64, size uint8, t *Set) {
	for i := uint64(0); i < uint64(size); i++ {
		if t.IsEmpty() {
			delete(e.mem, addr+i)
		} else {
			e.mem[addr+i] = t
		}
	}
}

// Hooks returns the vm instrumentation that drives this engine. The
// returned hooks are single-run: use a fresh engine per execution.
func (e *Engine) Hooks() *vm.Hooks {
	return &vm.Hooks{
		OnInst:  e.onInst,
		OnLoad:  e.onLoad,
		OnStore: e.onStore,
		OnCall:  e.onCall,
		OnRet:   e.onRet,
		OnRead:  e.onRead,
		OnMMap:  e.onMMap,
	}
}

// onInst propagates register-to-register taint and marks in-ℓ uses. Loads
// and stores are completed by onLoad/onStore, which know the effective
// address.
func (e *Engine) onInst(loc isa.Loc, frameID uint64, in *isa.Inst) {
	fr := e.frame(frameID)
	use := func(s *Set) {
		if e.inLib(loc.Func) {
			e.mark(s)
		}
	}
	switch in.Op {
	case isa.OpConst:
		fr[in.Dst] = nil
	case isa.OpMov:
		use(fr[in.A])
		fr[in.Dst] = fr[in.A]
	case isa.OpBin, isa.OpCmp:
		t := fr[in.A].Union(fr[in.B])
		use(t)
		fr[in.Dst] = t
	case isa.OpBinImm, isa.OpCmpImm:
		use(fr[in.A])
		fr[in.Dst] = fr[in.A]
	case isa.OpBr:
		use(fr[in.A])
	case isa.OpRet:
		use(fr[in.A])
		e.pendingRet = fr[in.A]
	case isa.OpCall, isa.OpCallInd:
		args := make([]*Set, len(in.Args))
		for i, r := range in.Args {
			args[i] = fr[r]
			use(fr[r])
		}
		if in.Op == isa.OpCallInd {
			use(fr[in.A])
		}
		e.pendingCall = args
	case isa.OpSyscall:
		for _, r := range in.Args {
			use(fr[r])
		}
		// Syscall results are concrete system values, not input data;
		// input-derived memory effects are applied by onRead/onMMap.
		fr[in.Dst] = nil
	case isa.OpLoad, isa.OpStore:
		// Address-register use; value effects happen in onLoad/onStore.
		use(fr[in.A])
	}
}

func (e *Engine) onLoad(loc isa.Loc, frameID uint64, in *isa.Inst, addr uint64, _ uint64) {
	fr := e.frame(frameID)
	// A value loaded through a tainted pointer is input-derived too
	// (table-lookup propagation), so the address taint joins in.
	t := e.memTaint(addr, in.Size).Union(fr[in.A])
	if e.inLib(loc.Func) {
		e.mark(t)
	}
	fr[in.Dst] = t
}

func (e *Engine) onStore(loc isa.Loc, frameID uint64, in *isa.Inst, addr uint64, _ uint64) {
	fr := e.frame(frameID)
	t := fr[in.B]
	if e.inLib(loc.Func) {
		e.mark(t)
	}
	e.setMemTaint(addr, in.Size, t)
}

func (e *Engine) onCall(_ isa.Loc, callee string, args []uint64, _, calleeID uint64, _ isa.Reg) {
	fr := e.frame(calleeID)
	for i, t := range e.pendingCall {
		if i < isa.NumRegs {
			fr[i] = t
		}
	}
	e.pendingCall = nil
	if callee == e.cfg.Ep {
		e.epCount++
		e.epArgs = append(e.epArgs, append([]uint64(nil), args...))
	}
}

func (e *Engine) onRet(_ string, _ uint64, callerID, calleeID uint64, dst isa.Reg) {
	delete(e.regs, calleeID)
	if callerID != 0 {
		e.frame(callerID)[dst] = e.pendingRet
	}
	e.pendingRet = nil
}

// onRead is the taint source: file bytes from fileOff land at bufAddr.
func (e *Engine) onRead(_ uint64, fileOff int64, bufAddr uint64, n int) {
	for i := 0; i < n; i++ {
		e.mem[bufAddr+uint64(i)] = NewSet(uint32(fileOff) + uint32(i))
	}
}

// onMMap taints the whole mapping with the identity offsets.
func (e *Engine) onMMap(_ uint64, base uint64, size int) {
	for i := 0; i < size; i++ {
		e.mem[base+uint64(i)] = NewSet(uint32(i))
	}
}
