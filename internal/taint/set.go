// Package taint implements the byte-granular dynamic taint analysis of
// OCTOPOCS phase P1 (paper § III-A). It consumes the vm package's
// instrumentation hooks — the same observation surface the original work
// gets from Intel PIN — and tracks, for every register and every memory
// byte, the set of input-file offsets that influenced it.
//
// In context-aware mode (the paper's key refinement), the engine counts
// entries into the shared-code entry point ep, records the argument vector
// of each entry, and groups the input offsets used inside the shared
// function set ℓ into per-entry bunches. In context-free mode (the baseline
// of Table III) all used offsets collapse into a single bunch.
//
// Concurrency: an analysis run (engine plus the vm.Hooks it installs) is
// confined to one goroutine. The P1 artifacts it produces — crash
// primitives and bunches — are not mutated after the run and may be shared,
// which is how the service's artifact cache hands one P1 result to many
// concurrent jobs.
package taint

import "sort"

// Set is an immutable set of input-file byte offsets. The zero value and
// nil are both the empty set. Offsets are kept sorted and unique.
type Set struct {
	offs []uint32
}

// NewSet builds a set from arbitrary offsets.
func NewSet(offs ...uint32) *Set {
	if len(offs) == 0 {
		return nil
	}
	sorted := append([]uint32(nil), offs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:1]
	for _, o := range sorted[1:] {
		if o != out[len(out)-1] {
			out = append(out, o)
		}
	}
	return &Set{offs: out}
}

// IsEmpty reports whether s has no offsets.
func (s *Set) IsEmpty() bool { return s == nil || len(s.offs) == 0 }

// Len returns the number of offsets.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.offs)
}

// Contains reports membership.
func (s *Set) Contains(off uint32) bool {
	if s == nil {
		return false
	}
	i := sort.Search(len(s.offs), func(i int) bool { return s.offs[i] >= off })
	return i < len(s.offs) && s.offs[i] == off
}

// Offsets returns a copy of the sorted offsets.
func (s *Set) Offsets() []uint32 {
	if s == nil {
		return nil
	}
	return append([]uint32(nil), s.offs...)
}

// Union returns s ∪ t, reusing an operand when the other is empty.
func (s *Set) Union(t *Set) *Set {
	if s.IsEmpty() {
		return t
	}
	if t.IsEmpty() {
		return s
	}
	merged := make([]uint32, 0, len(s.offs)+len(t.offs))
	i, j := 0, 0
	for i < len(s.offs) && j < len(t.offs) {
		a, b := s.offs[i], t.offs[j]
		switch {
		case a < b:
			merged = append(merged, a)
			i++
		case b < a:
			merged = append(merged, b)
			j++
		default:
			merged = append(merged, a)
			i++
			j++
		}
	}
	merged = append(merged, s.offs[i:]...)
	merged = append(merged, t.offs[j:]...)
	return &Set{offs: merged}
}

// Equal reports whether two sets hold the same offsets.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	if s.IsEmpty() {
		return true
	}
	for i := range s.offs {
		if s.offs[i] != t.offs[i] {
			return false
		}
	}
	return true
}
