package taint_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
	"octopocs/internal/taint"
	"octopocs/internal/vm"
)

// TestTaintRelayProperty: a randomly chosen input byte is relayed through a
// random chain of register moves, arithmetic and memory hops before being
// consumed inside ℓ; the extracted bunch must contain exactly that byte's
// offset, never the decoy byte that is read but dropped.
func TestTaintRelayProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const inputLen = 16
		target := uint32(rng.Intn(inputLen - 1))
		decoy := target + 1

		b := asm.NewBuilder("relay")
		sink := b.Function("sink", 1)
		sink.Ret(sink.AddI(sink.Param(0), 1)) // the use inside ℓ

		f := b.Function("main", 0)
		fd := f.Sys(isa.SysOpen)
		buf := f.Sys(isa.SysAlloc, f.Const(inputLen))
		f.Sys(isa.SysRead, fd, buf, f.Const(inputLen))
		val := f.Var(f.Load(1, buf, int64(target)))
		dead := f.Load(1, buf, int64(decoy)) // decoy: read, never relayed
		_ = dead

		hops := 1 + rng.Intn(6)
		for i := 0; i < hops; i++ {
			switch rng.Intn(4) {
			case 0: // register move
				f.Assign(val, f.Bin(isa.Or, val, val))
			case 1: // arithmetic that keeps the dependency
				f.Assign(val, f.SubI(f.AddI(val, 3), 3))
			case 2: // memory round trip through a fresh cell
				cell := f.Sys(isa.SysAlloc, f.Const(8))
				f.Store(1, cell, 0, val)
				f.Assign(val, f.Load(1, cell, 0))
			case 3: // via a helper-style double move
				tmp := f.Var(val)
				f.Assign(val, tmp)
			}
		}
		f.Call("sink", val)
		f.Exit(0)
		b.Entry("main")
		prog, err := b.Build()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		eng := taint.NewEngine(taint.Config{
			Lib: map[string]bool{"sink": true}, Ep: "sink", ContextAware: true,
		})
		input := make([]byte, inputLen)
		rng.Read(input)
		vm.New(prog, vm.Config{Input: input, Hooks: eng.Hooks()}).Run()
		res := eng.Result()
		if len(res.Bunches) != 1 {
			return false
		}
		bunch := res.Bunches[0]
		foundTarget, foundDecoy := false, false
		for _, off := range bunch.Offsets {
			if off == target {
				foundTarget = true
			}
			if off == decoy {
				foundDecoy = true
			}
		}
		return foundTarget && !foundDecoy
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
