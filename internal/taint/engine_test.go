package taint_test

import (
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
	"octopocs/internal/taint"
	"octopocs/internal/vm"
)

// analyze runs prog on input under a taint engine and returns the result.
func analyze(t *testing.T, prog *isa.Program, input []byte, cfg taint.Config) *taint.Result {
	t.Helper()
	e := taint.NewEngine(cfg)
	m := vm.New(prog, vm.Config{Input: input, Hooks: e.Hooks(), MaxSteps: 500_000})
	m.Run()
	return e.Result()
}

func wantOffsets(t *testing.T, got []uint32, want ...uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", got, want)
		}
	}
}

// libProg: main reads a 2-byte header, then calls ep(headerByte0) which
// reads `count` bytes and sums them. ℓ = {ep}.
func libProg(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("p")

	ep := b.Function("ep", 2) // (fd, count)
	buf := ep.Sys(isa.SysAlloc, ep.Const(64))
	n := ep.Sys(isa.SysRead, ep.Param(0), buf, ep.Param(1))
	i := ep.VarI(0)
	sum := ep.VarI(0)
	ep.While(func() isa.Reg { return ep.Cmp(isa.Lt, i, n) }, func() {
		addr := ep.Add(buf, i)
		ep.Assign(sum, ep.Add(sum, ep.Load(1, addr, 0)))
		ep.Assign(i, ep.AddI(i, 1))
	})
	ep.Ret(sum)

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	hdr := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, hdr, f.Const(2))
	count := f.Load(1, hdr, 1) // header byte 1 = how many payload bytes
	f.Call("ep", fd, count)
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBunchCapturesBytesUsedInLib(t *testing.T) {
	prog := libProg(t)
	// header: [magic, count=3], payload: 3 bytes at offsets 2,3,4.
	input := []byte{0x7F, 3, 10, 20, 30, 99, 99}
	res := analyze(t, prog, input, taint.Config{
		Lib: map[string]bool{"ep": true}, Ep: "ep", ContextAware: true,
	})
	if res.EpEntries != 1 {
		t.Fatalf("EpEntries = %d, want 1", res.EpEntries)
	}
	if len(res.Bunches) != 1 {
		t.Fatalf("bunches = %d, want 1", len(res.Bunches))
	}
	b := res.Bunches[0]
	if b.Seq != 1 {
		t.Errorf("Seq = %d, want 1", b.Seq)
	}
	// Payload bytes 2,3,4 are loaded inside ep. Offset 1 (count) flows
	// into ep as a parameter used by the read syscall inside ℓ, so it is
	// marked too (indirect use, the paper's candidate-address case).
	wantOffsets(t, b.Offsets, 1, 2, 3, 4)
	// The recorded ep args: fd=3, count=3.
	if len(b.Args) != 2 || b.Args[1] != 3 {
		t.Errorf("Args = %v, want [fd 3]", b.Args)
	}
}

// multiProg calls ep twice, consuming different file regions.
func multiProg(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.NewBuilder("p")

	ep := b.Function("ep", 1) // (fd): reads 2 bytes, returns their sum
	buf := ep.Sys(isa.SysAlloc, ep.Const(8))
	ep.Sys(isa.SysRead, ep.Param(0), buf, ep.Const(2))
	ep.Ret(ep.Add(ep.Load(1, buf, 0), ep.Load(1, buf, 1)))

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	hdr := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, hdr, f.Const(1)) // offset 0: guiding byte
	f.Call("ep", fd)                        // consumes offsets 1,2
	f.Sys(isa.SysRead, fd, hdr, f.Const(1)) // offset 3: separator, unused
	f.Call("ep", fd)                        // consumes offsets 4,5
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestContextAwareSeparatesBunches(t *testing.T) {
	input := []byte{9, 1, 2, 9, 4, 5}
	res := analyze(t, multiProg(t), input, taint.Config{
		Lib: map[string]bool{"ep": true}, Ep: "ep", ContextAware: true,
	})
	if res.EpEntries != 2 {
		t.Fatalf("EpEntries = %d, want 2", res.EpEntries)
	}
	if len(res.Bunches) != 2 {
		t.Fatalf("bunches = %d, want 2", len(res.Bunches))
	}
	wantOffsets(t, res.Bunches[0].Offsets, 1, 2)
	wantOffsets(t, res.Bunches[1].Offsets, 4, 5)
	wantOffsets(t, res.AllOffsets(), 1, 2, 4, 5)
}

func TestContextFreeCollapsesBunches(t *testing.T) {
	input := []byte{9, 1, 2, 9, 4, 5}
	res := analyze(t, multiProg(t), input, taint.Config{
		Lib: map[string]bool{"ep": true}, Ep: "ep", ContextAware: false,
	})
	if len(res.Bunches) != 1 {
		t.Fatalf("bunches = %d, want 1 in context-free mode", len(res.Bunches))
	}
	wantOffsets(t, res.Bunches[0].Offsets, 1, 2, 4, 5)
	if res.Bunches[0].Args != nil {
		t.Error("context-free mode must not record args")
	}
}

func TestIndirectUseViaMemory(t *testing.T) {
	// main reads a byte pre-ep, stashes it in memory, and ep later loads
	// it: the offset must still be attributed to the bunch (the paper's
	// "indirectly used" bytes, P1.2 candidate addresses).
	b := asm.NewBuilder("p")
	ep := b.Function("ep", 1) // (stash addr)
	ep.Ret(ep.Load(1, ep.Param(0), 0))

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	stash := f.Sys(isa.SysAlloc, f.Const(8))
	tmp := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, tmp, f.Const(1))
	v := f.Load(1, tmp, 0)
	doubled := f.MulI(v, 2) // derived value
	f.Store(1, stash, 4, doubled)
	f.Call("ep", f.AddI(stash, 4))
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := analyze(t, prog, []byte{21}, taint.Config{
		Lib: map[string]bool{"ep": true}, Ep: "ep", ContextAware: true,
	})
	if len(res.Bunches) != 1 {
		t.Fatalf("bunches = %d, want 1", len(res.Bunches))
	}
	wantOffsets(t, res.Bunches[0].Offsets, 0)
}

func TestMMapTaintSource(t *testing.T) {
	b := asm.NewBuilder("p")
	ep := b.Function("ep", 1) // (mapping base): loads byte 2
	ep.Ret(ep.Load(1, ep.Param(0), 2))

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	base := f.Sys(isa.SysMMap, fd)
	f.Call("ep", base)
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := analyze(t, prog, []byte{1, 2, 3, 4}, taint.Config{
		Lib: map[string]bool{"ep": true}, Ep: "ep", ContextAware: true,
	})
	if len(res.Bunches) != 1 {
		t.Fatalf("bunches = %d, want 1", len(res.Bunches))
	}
	wantOffsets(t, res.Bunches[0].Offsets, 2)
}

func TestUsesBeforeEpAreNotMarked(t *testing.T) {
	// Offsets consumed before the first ep entry (and outside ℓ) must not
	// appear in any bunch.
	b := asm.NewBuilder("p")
	ep := b.Function("ep", 0)
	ep.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(4))
	v := f.Load(4, buf, 0)
	f.If(f.EqI(v, 0x41414141), func() { f.Call("ep") })
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := analyze(t, prog, []byte("AAAA"), taint.Config{
		Lib: map[string]bool{"ep": true}, Ep: "ep", ContextAware: true,
	})
	if res.EpEntries != 1 {
		t.Fatalf("EpEntries = %d, want 1", res.EpEntries)
	}
	// The entry still yields a bunch (ordinal alignment), but an empty
	// one: guiding bytes are not crash primitives.
	if len(res.Bunches) != 1 || len(res.Bunches[0].Offsets) != 0 {
		t.Fatalf("bunches = %v, want one empty bunch", res.Bunches)
	}
}

func TestConstOverwriteClearsTaint(t *testing.T) {
	// A register overwritten with a constant must drop its taint.
	b := asm.NewBuilder("p")
	ep := b.Function("ep", 1)
	ep.Ret(ep.Param(0))
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(1))
	v := f.Var(f.Load(1, buf, 0))
	f.AssignI(v, 7) // kill the taint
	f.Call("ep", v)
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := analyze(t, prog, []byte{5}, taint.Config{
		Lib: map[string]bool{"ep": true}, Ep: "ep", ContextAware: true,
	})
	if len(res.Bunches) != 1 || len(res.Bunches[0].Offsets) != 0 {
		t.Fatalf("bunches = %v, want one empty bunch after constant overwrite", res.Bunches)
	}
}

func TestReturnValuePropagatesTaint(t *testing.T) {
	// helper returns an input-derived value; main hands it to ep where it
	// is used: the offset must be marked.
	b := asm.NewBuilder("p")
	helper := b.Function("helper", 1) // (fd) -> first byte
	buf := helper.Sys(isa.SysAlloc, helper.Const(8))
	helper.Sys(isa.SysRead, helper.Param(0), buf, helper.Const(1))
	helper.Ret(helper.Load(1, buf, 0))

	ep := b.Function("ep", 1)
	ep.Ret(ep.AddI(ep.Param(0), 1)) // uses the value

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	v := f.Call("helper", fd)
	f.Call("ep", v)
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := analyze(t, prog, []byte{0x41}, taint.Config{
		Lib: map[string]bool{"ep": true}, Ep: "ep", ContextAware: true,
	})
	if len(res.Bunches) != 1 {
		t.Fatalf("bunches = %d, want 1", len(res.Bunches))
	}
	wantOffsets(t, res.Bunches[0].Offsets, 0)
}
