package fuzz

// RunAFLFast runs a coverage-guided campaign with the AFLFast "fast" power
// schedule: a seed's energy grows exponentially with how often it has been
// picked and shrinks with how often its path has been exercised, steering
// effort toward rarely-hit paths (Böhme et al., "Coverage-based Greybox
// Fuzzing as Markov Chain").
func RunAFLFast(t *Target, cfg Config) *Result {
	return runShards(t, cfg, nil, aflfastEnergy)
}

// aflfastEnergy is the fast schedule: min(α · 2^s(i) / f(i), M).
func aflfastEnergy(s *seedInfo, h *harness, _ float64) int {
	const (
		alpha = 32
		limit = 1024
	)
	f := h.pathFreq[s.pathID]
	if f < 1 {
		f = 1
	}
	pow := s.fuzzed
	if pow > 16 {
		pow = 16
	}
	e := int64(alpha) << pow / f
	if e < 8 {
		e = 8
	}
	if e > limit {
		e = limit
	}
	return int(e)
}
