package fuzz_test

import (
	"errors"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/corpus"
	"octopocs/internal/fuzz"
	"octopocs/internal/isa"
)

// trivialTarget crashes whenever byte 0 is 0x42.
func trivialTarget(t *testing.T) *fuzz.Target {
	t.Helper()
	b := asm.NewBuilder("trivial")
	ep := b.Function("vuln", 1)
	ep.If(ep.EqI(ep.Param(0), 0x42), func() {
		ep.Ret(ep.Load(8, ep.Const(0), 0)) // null deref
	})
	ep.RetI(0)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(1))
	f.Call("vuln", f.Load(1, buf, 0))
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &fuzz.Target{Prog: prog, Lib: map[string]bool{"vuln": true}, MaxSteps: 10_000}
}

func TestAFLFastFindsTrivialCrash(t *testing.T) {
	res := fuzz.RunAFLFast(trivialTarget(t), fuzz.Config{
		Seeds:    [][]byte{{0x00}},
		MaxExecs: 50_000,
		Seed:     1,
	})
	if !res.Found {
		t.Fatalf("not found in %d execs", res.Execs)
	}
	if res.Crash[0] != 0x42 {
		t.Errorf("crash input % x, want first byte 0x42", res.Crash)
	}
	if res.CrashLoc.Func != "vuln" {
		t.Errorf("crash loc = %v, want vuln", res.CrashLoc)
	}
}

func TestAFLGoFindsTrivialCrash(t *testing.T) {
	res, err := fuzz.RunAFLGo(trivialTarget(t), "vuln", fuzz.Config{
		Seeds:    [][]byte{{0x00}},
		MaxExecs: 50_000,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("not found in %d execs", res.Execs)
	}
}

func TestAFLGoToolErrorOnIndirectDispatch(t *testing.T) {
	// The MuPDF target reaches ℓ only through a function-pointer table:
	// static distance instrumentation must fail (Table V row 2).
	spec := corpus.ByIdx(8)
	target := &fuzz.Target{Prog: spec.Pair.T, Lib: spec.Pair.Lib, MaxSteps: 100_000}
	_, err := fuzz.RunAFLGo(target, "j2k_decode", fuzz.Config{
		Seeds: [][]byte{spec.Pair.PoC}, MaxExecs: 10, Seed: 1,
	})
	if !errors.Is(err, fuzz.ErrNoDistance) {
		t.Fatalf("RunAFLGo = %v, want ErrNoDistance", err)
	}
}

func TestCrashingSeedDetectedImmediately(t *testing.T) {
	res := fuzz.RunAFLFast(trivialTarget(t), fuzz.Config{
		Seeds:    [][]byte{{0x42}},
		MaxExecs: 100,
		Seed:     1,
	})
	if !res.Found || res.Execs != 1 {
		t.Fatalf("found=%v execs=%d, want immediate detection", res.Found, res.Execs)
	}
}

func TestBudgetRespected(t *testing.T) {
	// A target that never crashes: the campaign must stop at MaxExecs.
	b := asm.NewBuilder("safe")
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(8))
	f.Sys(isa.SysRead, fd, buf, f.Const(4))
	f.Exit(0)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	target := &fuzz.Target{Prog: prog, Lib: map[string]bool{"none": true}, MaxSteps: 10_000}
	res := fuzz.RunAFLFast(target, fuzz.Config{Seeds: [][]byte{{1, 2, 3}}, MaxExecs: 2_000, Seed: 7})
	if res.Found {
		t.Fatal("found a crash in a crash-free target")
	}
	if res.Execs < 2_000 {
		t.Errorf("execs = %d, want the full budget", res.Execs)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *fuzz.Result {
		return fuzz.RunAFLFast(trivialTarget(t), fuzz.Config{
			Seeds:    [][]byte{{0x00, 0x10, 0x20}},
			MaxExecs: 20_000,
			Seed:     99,
		})
	}
	a, b := run(), run()
	if a.Found != b.Found || a.Execs != b.Execs {
		t.Errorf("campaigns diverged: %+v vs %+v", a, b)
	}
}

// TestTableVGifFindable: the artificial gif2png clone needs only a one-byte
// version fix from the original PoC — within reach of a havoc campaign
// (the paper's AFLFast-verifies-gif2png row).
func TestTableVGifFindable(t *testing.T) {
	spec := corpus.ByIdx(9)
	target := &fuzz.Target{Prog: spec.Pair.T, Lib: spec.Pair.Lib, MaxSteps: 200_000}
	res := fuzz.RunAFLFast(target, fuzz.Config{
		Seeds:    [][]byte{spec.Pair.PoC},
		MaxExecs: 400_000,
		Seed:     3,
	})
	if !res.Found {
		t.Fatalf("AFLFast did not verify gif2png-artificial in %d execs", res.Execs)
	}
	t.Logf("found after %d execs, queue %d", res.Execs, res.QueueLen)
}

// TestTableVDeepMagicNotFindable: opj_dump requires five exact codestream
// bytes from a PDF-wrapped seed; a modest budget must not find it (the
// N/A rows of Table V).
func TestTableVDeepMagicNotFindable(t *testing.T) {
	spec := corpus.ByIdx(7)
	target := &fuzz.Target{Prog: spec.Pair.T, Lib: spec.Pair.Lib, MaxSteps: 100_000}
	res := fuzz.RunAFLFast(target, fuzz.Config{
		Seeds:    [][]byte{spec.Pair.PoC},
		MaxExecs: 60_000,
		Seed:     3,
	})
	if res.Found {
		t.Fatalf("AFLFast unexpectedly verified opj_dump after %d execs", res.Execs)
	}
}
