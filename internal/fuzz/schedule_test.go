package fuzz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBucketClassification(t *testing.T) {
	tests := []struct {
		hits uint32
		want uint8
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 4}, {4, 8}, {7, 8},
		{8, 16}, {15, 16}, {16, 32}, {31, 32}, {32, 64},
		{127, 64}, {128, 128}, {100000, 128},
	}
	for _, tt := range tests {
		if got := bucket(tt.hits); got != tt.want {
			t.Errorf("bucket(%d) = %d, want %d", tt.hits, got, tt.want)
		}
	}
}

func TestAFLFastEnergyShape(t *testing.T) {
	h := newHarness(&Target{})
	s := &seedInfo{pathID: 1}

	// Energy grows exponentially with how often the seed was picked.
	h.pathFreq[1] = 1
	prev := 0
	for fuzzed := 0; fuzzed <= 6; fuzzed++ {
		s.fuzzed = fuzzed
		e := aflfastEnergy(s, h, 0)
		if e < prev {
			t.Errorf("energy decreased at s(i)=%d: %d -> %d", fuzzed, prev, e)
		}
		prev = e
	}

	// Energy shrinks as the path gets hammered.
	s.fuzzed = 6
	h.pathFreq[1] = 1
	hot := aflfastEnergy(s, h, 0)
	h.pathFreq[1] = 1 << 20
	cold := aflfastEnergy(s, h, 0)
	if cold >= hot {
		t.Errorf("hammered path energy %d should undercut rare path energy %d", cold, hot)
	}

	// Bounds hold everywhere.
	err := quick.Check(func(fuzzed uint8, freq uint32) bool {
		s.fuzzed = int(fuzzed)
		h.pathFreq[1] = int64(freq) + 1
		e := aflfastEnergy(s, h, 0)
		return e >= 8 && e <= 1024
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAFLGoEnergyAnnealing(t *testing.T) {
	h := newHarness(&Target{})
	h.pathFreq[1] = 4
	near := &seedInfo{pathID: 1, fuzzed: 3, dist: 1}
	far := &seedInfo{pathID: 1, fuzzed: 3, dist: 100000}

	// Early in the campaign (exploration) the distance barely matters;
	// late (exploitation) the near seed must dominate.
	lateNear := aflgoEnergy(near, h, 0.95)
	lateFar := aflgoEnergy(far, h, 0.95)
	if lateNear <= lateFar {
		t.Errorf("late campaign: near %d should outrank far %d", lateNear, lateFar)
	}

	// Unreachable seeds still get a sliver of energy.
	inf := &seedInfo{pathID: 1, fuzzed: 3, dist: math.Inf(1)}
	if e := aflgoEnergy(inf, h, 0.5); e < 1 {
		t.Errorf("unreachable seed energy = %d, want >= 1", e)
	}
}

func TestMutatorInvariants(t *testing.T) {
	err := quick.Check(func(seedVal int64, base []byte) bool {
		rng := rand.New(rand.NewSource(seedVal))
		m := newMutator(rng, 64, nil)
		if len(base) > 48 {
			base = base[:48]
		}
		other := []byte{1, 2, 3, 4}
		for k := 0; k < 16; k++ {
			out := m.havoc(base, other)
			if len(out) > 64 {
				return false // max length violated
			}
		}
		for k := 0; k < 16; k++ {
			out := m.deterministic(base, k)
			if len(base) > 0 && len(out) != len(base) {
				return false // deterministic stages preserve length
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestMutatorDeterministicWalksBits(t *testing.T) {
	m := newMutator(rand.New(rand.NewSource(1)), 64, nil)
	seed := []byte{0x00, 0x00}
	// Stage k=0 flips bit 0; k=2 flips bit 1.
	if out := m.deterministic(seed, 0); out[0] != 0x01 {
		t.Errorf("k=0 -> % x, want bit 0 flipped", out)
	}
	if out := m.deterministic(seed, 2); out[0] != 0x02 {
		t.Errorf("k=2 -> % x, want bit 1 flipped", out)
	}
	// Odd stages write interesting values.
	if out := m.deterministic(seed, 1); out[0] == 0 && out[1] == 0 {
		t.Errorf("k=1 -> % x, want an interesting byte", out)
	}
}

func TestBlockIDStability(t *testing.T) {
	a := blockID("fn", 1)
	if a != blockID("fn", 1) {
		t.Error("blockID not deterministic")
	}
	if a == blockID("fn", 2) || a == blockID("other", 1) {
		t.Error("blockID collisions on trivially distinct blocks")
	}
	if a&1 == 0 {
		t.Error("blockID must be odd (non-zero prev marker)")
	}
}
