// Package fuzz implements the two greybox-fuzzing baselines OCTOPOCS is
// compared against in Table V: a coverage-guided fuzzer with AFLFast power
// schedules and a directed fuzzer with AFLGo-style distance annealing. Both
// run MIR binaries in the concrete VM with edge-coverage instrumentation
// and deterministic, seeded randomness. They are the alternatives the
// paper measures P2's guiding-input generation against.
//
// Concurrency: a single campaign shard is confined to one goroutine (its
// RNG and corpus are unsynchronized); multi-shard campaigns run independent
// shards on Config.Workers goroutines and merge results deterministically —
// the same Config.Seed yields byte-identical results at any worker count.
package fuzz

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// MapSize is the coverage bitmap size (entries), as in AFL.
const MapSize = 1 << 16

// Target is the binary under test plus the success predicate: a crash
// inside the shared vulnerable code ℓ verifies the propagated
// vulnerability.
type Target struct {
	Prog *isa.Program
	// Lib is ℓ; a crash whose innermost frame is in Lib counts.
	Lib map[string]bool
	// MaxSteps bounds each execution (also the hang detector).
	MaxSteps int64
}

// Span marks a half-open byte range [Start, Start+Len) of the input.
type Span struct {
	Start int
	Len   int
}

// Config tunes a campaign.
type Config struct {
	// Seeds is the initial corpus (the original PoC, typically).
	Seeds [][]byte
	// MaxExecs is the execution budget — the analog of the paper's 20 h
	// wall-clock cap.
	MaxExecs int64
	// Seed seeds the PRNG; campaigns are deterministic given a seed.
	Seed int64
	// MaxInputLen bounds generated inputs.
	MaxInputLen int
	// Frozen lists input regions the mutator must preserve (the P1 bunch
	// offsets: the propagated crash primitive). With a non-empty mask the
	// mutator only applies length-preserving edits and restores frozen
	// spans afterwards, so only reformable regions mutate.
	Frozen []Span
	// Shards splits MaxExecs across this many independent sub-campaigns
	// with derived PRNG seeds. The schedule unit is the shard, not the
	// goroutine, so results do not depend on Workers. 0 or 1 means one
	// shard with the legacy single-campaign behavior.
	Shards int
	// Workers bounds the goroutines running shards (0 means 1). Purely a
	// throughput knob: any value yields byte-identical results.
	Workers int
}

func (c *Config) defaults() {
	if c.MaxExecs <= 0 {
		c.MaxExecs = 200_000
	}
	if c.MaxInputLen <= 0 {
		c.MaxInputLen = 512
	}
	if len(c.Seeds) == 0 {
		c.Seeds = [][]byte{{0}}
	}
}

// Result reports a campaign.
type Result struct {
	// Found reports whether a verifying crash was produced.
	Found bool
	// Crash is the crashing input when Found.
	Crash []byte
	// Execs is the number of executions performed.
	Execs int64
	// QueueLen is the final number of interesting seeds (summed over all
	// completed shards when no crash was found, the winning shard's queue
	// otherwise).
	QueueLen int
	// CrashLoc is where the verifying crash fired.
	CrashLoc isa.Loc
	// WinnerShard is the index of the shard that found the crash, or -1.
	WinnerShard int
}

// seedInfo is one queue entry with its schedule bookkeeping.
type seedInfo struct {
	data []byte
	// pathID is the hash of the execution's coverage signature.
	pathID uint64
	// fuzzed counts how many times this seed was selected (AFLFast s(i)).
	fuzzed int
	// dist is the AFLGo seed distance (mean block distance to target).
	dist float64
}

// harness drives executions with coverage instrumentation.
type harness struct {
	target *Target
	// virgin is the global coverage map of hit-count buckets seen.
	virgin [MapSize]uint8
	// pathFreq counts executions per path signature (AFLFast f(i)).
	pathFreq map[uint64]int64
	execs    int64
}

func newHarness(t *Target) *harness {
	return &harness{target: t, pathFreq: make(map[uint64]int64)}
}

// bucket classifies a hit count the way AFL does.
func bucket(n uint32) uint8 {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	case n == 2:
		return 2
	case n == 3:
		return 4
	case n <= 7:
		return 8
	case n <= 15:
		return 16
	case n <= 31:
		return 32
	case n <= 127:
		return 64
	default:
		return 128
	}
}

// execResult summarizes one run.
type execResult struct {
	newCov  bool
	pathID  uint64
	crashed bool
	loc     isa.Loc
	// blocks lists distinct (func, block) pairs executed, for AFLGo
	// distance computation.
	blocks map[blockKey]bool
}

type blockKey struct {
	fn string
	b  int
}

// run executes one input and folds its coverage into the global state.
func (h *harness) run(input []byte, wantBlocks bool) *execResult {
	h.execs++
	var local [MapSize]uint32
	prev := uint32(0)
	res := &execResult{}
	if wantBlocks {
		res.blocks = make(map[blockKey]bool)
	}
	hooks := &vm.Hooks{
		OnBlock: func(fn string, b int) {
			cur := blockID(fn, b)
			local[(prev^cur)&(MapSize-1)]++
			prev = cur >> 1
			if wantBlocks {
				res.blocks[blockKey{fn, b}] = true
			}
		},
	}
	m := vm.New(h.target.Prog, vm.Config{
		Input:    input,
		MaxSteps: h.target.MaxSteps,
		Hooks:    hooks,
	})
	out := m.Run()

	// Fold buckets; detect new coverage and compute the path signature.
	var pathHash uint64 = 1469598103934665603 // FNV offset basis
	for i, n := range local {
		if n == 0 {
			continue
		}
		b := bucket(n)
		pathHash ^= uint64(i)*31 + uint64(b)
		pathHash *= 1099511628211
		if h.virgin[i]&b != b {
			h.virgin[i] |= b
			res.newCov = true
		}
	}
	res.pathID = pathHash
	h.pathFreq[pathHash]++

	if out.Crashed() && out.CrashedIn(h.target.Lib) {
		res.crashed = true
		res.loc = out.Crash.Loc
	}
	return res
}

// blockID hashes a block identity into a stable 32-bit id.
func blockID(fn string, b int) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(fn); i++ {
		h = (h ^ uint32(fn[i])) * 16777619
	}
	return (h ^ uint32(b)*2654435761) | 1
}

// campaign is the common fuzzing loop for one shard; the energy callback
// implements the scheduler difference between AFLFast and AFLGo. A non-nil
// stop aborts the shard early (only used when a lower-indexed shard has
// already won, so an aborted shard's result is never consumed).
func campaign(t *Target, cfg Config, rng *rand.Rand,
	seedDist func(blocks map[blockKey]bool) float64,
	energy func(s *seedInfo, h *harness, progress float64) int,
	stop func() bool,
) *Result {
	cfg.defaults()
	h := newHarness(t)
	var queue []*seedInfo

	admit := func(data []byte, er *execResult) {
		info := &seedInfo{data: append([]byte(nil), data...), pathID: er.pathID}
		if seedDist != nil {
			info.dist = seedDist(er.blocks)
		}
		queue = append(queue, info)
	}

	// Dry-run the seeds.
	for _, s := range cfg.Seeds {
		er := h.run(s, seedDist != nil)
		if er.crashed {
			return &Result{Found: true, Crash: s, Execs: h.execs, QueueLen: len(queue), CrashLoc: er.loc}
		}
		admit(s, er)
	}

	mut := newMutator(rng, cfg.MaxInputLen, cfg.Frozen)
	for h.execs < cfg.MaxExecs {
		// Pick the next seed round-robin; energy decides how many
		// mutants it spawns this cycle.
		for qi := 0; qi < len(queue) && h.execs < cfg.MaxExecs; qi++ {
			if stop != nil && stop() {
				return &Result{Execs: h.execs, QueueLen: len(queue), WinnerShard: -1}
			}
			s := queue[qi]
			progress := float64(h.execs) / float64(cfg.MaxExecs)
			n := energy(s, h, progress)
			s.fuzzed++
			for k := 0; k < n && h.execs < cfg.MaxExecs; k++ {
				var cand []byte
				if k < len(s.data)*2 {
					cand = mut.deterministic(s.data, k)
				} else {
					other := queue[rng.Intn(len(queue))].data
					cand = mut.havoc(s.data, other)
				}
				er := h.run(cand, seedDist != nil)
				if er.crashed {
					return &Result{Found: true, Crash: cand, Execs: h.execs, QueueLen: len(queue), CrashLoc: er.loc}
				}
				if er.newCov {
					admit(cand, er)
				}
			}
		}
	}
	return &Result{Execs: h.execs, QueueLen: len(queue), WinnerShard: -1}
}

// shardSeed derives shard i's PRNG seed from the campaign seed with a
// splitmix64 finalizer, decorrelating the shard streams.
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// runShards runs a campaign as Config.Shards independent sub-campaigns on
// Config.Workers goroutines and merges the results deterministically.
//
// The winner is the lowest-indexed shard that found a crash, independent of
// scheduling: shard i may abort early only once a shard with a smaller
// index has found (so every shard at or below the winner runs its full
// deterministic course), and Result.Execs sums exactly shards 0..winner.
// With one shard this reduces to the legacy single-campaign behavior,
// including using Config.Seed unmixed.
func runShards(t *Target, c Config,
	seedDist func(blocks map[blockKey]bool) float64,
	energy func(s *seedInfo, h *harness, progress float64) int,
) *Result {
	c.defaults()
	if c.Shards <= 1 {
		res := campaign(t, c, rand.New(rand.NewSource(c.Seed)), seedDist, energy, nil)
		if res.Found {
			res.WinnerShard = 0
		} else {
			res.WinnerShard = -1
		}
		return res
	}

	shards := c.Shards
	workers := c.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	base := c.MaxExecs / int64(shards)

	results := make([]*Result, shards)
	var next int64 = -1
	minFound := int64(shards) // lowest shard index that found a crash
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(shards) {
					return
				}
				sc := c
				sc.MaxExecs = base
				if i == 0 {
					sc.MaxExecs += c.MaxExecs % int64(shards)
				}
				stop := func() bool { return atomic.LoadInt64(&minFound) < i }
				rng := rand.New(rand.NewSource(shardSeed(c.Seed, int(i))))
				res := campaign(t, sc, rng, seedDist, energy, stop)
				results[i] = res
				if res.Found {
					for {
						cur := atomic.LoadInt64(&minFound)
						if i >= cur || atomic.CompareAndSwapInt64(&minFound, cur, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	if w := int(minFound); w < shards {
		win := results[w]
		out := &Result{
			Found:       true,
			Crash:       win.Crash,
			CrashLoc:    win.CrashLoc,
			QueueLen:    win.QueueLen,
			Execs:       win.Execs,
			WinnerShard: w,
		}
		for i := 0; i < w; i++ {
			out.Execs += results[i].Execs
		}
		return out
	}
	out := &Result{WinnerShard: -1}
	for _, r := range results {
		out.Execs += r.Execs
		out.QueueLen += r.QueueLen
	}
	return out
}
