// Package fuzz implements the two greybox-fuzzing baselines OCTOPOCS is
// compared against in Table V: a coverage-guided fuzzer with AFLFast power
// schedules and a directed fuzzer with AFLGo-style distance annealing. Both
// run MIR binaries in the concrete VM with edge-coverage instrumentation
// and deterministic, seeded randomness. They are the alternatives the
// paper measures P2's guiding-input generation against.
//
// Concurrency: a Fuzzer instance is confined to one goroutine (its RNG and
// corpus are unsynchronized); run independent Fuzzer instances to fuzz
// campaigns in parallel.
package fuzz

import (
	"math/rand"

	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// MapSize is the coverage bitmap size (entries), as in AFL.
const MapSize = 1 << 16

// Target is the binary under test plus the success predicate: a crash
// inside the shared vulnerable code ℓ verifies the propagated
// vulnerability.
type Target struct {
	Prog *isa.Program
	// Lib is ℓ; a crash whose innermost frame is in Lib counts.
	Lib map[string]bool
	// MaxSteps bounds each execution (also the hang detector).
	MaxSteps int64
}

// Config tunes a campaign.
type Config struct {
	// Seeds is the initial corpus (the original PoC, typically).
	Seeds [][]byte
	// MaxExecs is the execution budget — the analog of the paper's 20 h
	// wall-clock cap.
	MaxExecs int64
	// Seed seeds the PRNG; campaigns are deterministic given a seed.
	Seed int64
	// MaxInputLen bounds generated inputs.
	MaxInputLen int
}

func (c *Config) defaults() {
	if c.MaxExecs <= 0 {
		c.MaxExecs = 200_000
	}
	if c.MaxInputLen <= 0 {
		c.MaxInputLen = 512
	}
	if len(c.Seeds) == 0 {
		c.Seeds = [][]byte{{0}}
	}
}

// Result reports a campaign.
type Result struct {
	// Found reports whether a verifying crash was produced.
	Found bool
	// Crash is the crashing input when Found.
	Crash []byte
	// Execs is the number of executions performed.
	Execs int64
	// QueueLen is the final number of interesting seeds.
	QueueLen int
	// CrashLoc is where the verifying crash fired.
	CrashLoc isa.Loc
}

// seedInfo is one queue entry with its schedule bookkeeping.
type seedInfo struct {
	data []byte
	// pathID is the hash of the execution's coverage signature.
	pathID uint64
	// fuzzed counts how many times this seed was selected (AFLFast s(i)).
	fuzzed int
	// dist is the AFLGo seed distance (mean block distance to target).
	dist float64
}

// harness drives executions with coverage instrumentation.
type harness struct {
	target *Target
	// virgin is the global coverage map of hit-count buckets seen.
	virgin [MapSize]uint8
	// pathFreq counts executions per path signature (AFLFast f(i)).
	pathFreq map[uint64]int64
	execs    int64
}

func newHarness(t *Target) *harness {
	return &harness{target: t, pathFreq: make(map[uint64]int64)}
}

// bucket classifies a hit count the way AFL does.
func bucket(n uint32) uint8 {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	case n == 2:
		return 2
	case n == 3:
		return 4
	case n <= 7:
		return 8
	case n <= 15:
		return 16
	case n <= 31:
		return 32
	case n <= 127:
		return 64
	default:
		return 128
	}
}

// execResult summarizes one run.
type execResult struct {
	newCov  bool
	pathID  uint64
	crashed bool
	loc     isa.Loc
	// blocks lists distinct (func, block) pairs executed, for AFLGo
	// distance computation.
	blocks map[blockKey]bool
}

type blockKey struct {
	fn string
	b  int
}

// run executes one input and folds its coverage into the global state.
func (h *harness) run(input []byte, wantBlocks bool) *execResult {
	h.execs++
	var local [MapSize]uint32
	prev := uint32(0)
	res := &execResult{}
	if wantBlocks {
		res.blocks = make(map[blockKey]bool)
	}
	hooks := &vm.Hooks{
		OnBlock: func(fn string, b int) {
			cur := blockID(fn, b)
			local[(prev^cur)&(MapSize-1)]++
			prev = cur >> 1
			if wantBlocks {
				res.blocks[blockKey{fn, b}] = true
			}
		},
	}
	m := vm.New(h.target.Prog, vm.Config{
		Input:    input,
		MaxSteps: h.target.MaxSteps,
		Hooks:    hooks,
	})
	out := m.Run()

	// Fold buckets; detect new coverage and compute the path signature.
	var pathHash uint64 = 1469598103934665603 // FNV offset basis
	for i, n := range local {
		if n == 0 {
			continue
		}
		b := bucket(n)
		pathHash ^= uint64(i)*31 + uint64(b)
		pathHash *= 1099511628211
		if h.virgin[i]&b != b {
			h.virgin[i] |= b
			res.newCov = true
		}
	}
	res.pathID = pathHash
	h.pathFreq[pathHash]++

	if out.Crashed() && out.CrashedIn(h.target.Lib) {
		res.crashed = true
		res.loc = out.Crash.Loc
	}
	return res
}

// blockID hashes a block identity into a stable 32-bit id.
func blockID(fn string, b int) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(fn); i++ {
		h = (h ^ uint32(fn[i])) * 16777619
	}
	return (h ^ uint32(b)*2654435761) | 1
}

// campaign is the common fuzzing loop; the energy callback implements the
// scheduler difference between AFLFast and AFLGo.
func campaign(t *Target, cfg Config, rng *rand.Rand,
	seedDist func(blocks map[blockKey]bool) float64,
	energy func(s *seedInfo, h *harness, progress float64) int,
) *Result {
	cfg.defaults()
	h := newHarness(t)
	var queue []*seedInfo

	admit := func(data []byte, er *execResult) {
		info := &seedInfo{data: append([]byte(nil), data...), pathID: er.pathID}
		if seedDist != nil {
			info.dist = seedDist(er.blocks)
		}
		queue = append(queue, info)
	}

	// Dry-run the seeds.
	for _, s := range cfg.Seeds {
		er := h.run(s, seedDist != nil)
		if er.crashed {
			return &Result{Found: true, Crash: s, Execs: h.execs, QueueLen: len(queue), CrashLoc: er.loc}
		}
		admit(s, er)
	}

	mut := newMutator(rng, cfg.MaxInputLen)
	for h.execs < cfg.MaxExecs {
		// Pick the next seed round-robin; energy decides how many
		// mutants it spawns this cycle.
		for qi := 0; qi < len(queue) && h.execs < cfg.MaxExecs; qi++ {
			s := queue[qi]
			progress := float64(h.execs) / float64(cfg.MaxExecs)
			n := energy(s, h, progress)
			s.fuzzed++
			for k := 0; k < n && h.execs < cfg.MaxExecs; k++ {
				var cand []byte
				if k < len(s.data)*2 {
					cand = mut.deterministic(s.data, k)
				} else {
					other := queue[rng.Intn(len(queue))].data
					cand = mut.havoc(s.data, other)
				}
				er := h.run(cand, seedDist != nil)
				if er.crashed {
					return &Result{Found: true, Crash: cand, Execs: h.execs, QueueLen: len(queue), CrashLoc: er.loc}
				}
				if er.newCov {
					admit(cand, er)
				}
			}
		}
	}
	return &Result{Execs: h.execs, QueueLen: len(queue)}
}
