package fuzz

import (
	"encoding/binary"
	"math/rand"
)

// interesting holds the classic AFL interesting byte/word values.
var interesting = []int64{-128, -1, 0, 1, 16, 32, 64, 100, 127, 128, 255, 256, 512, 1000, 1024, 4096, 32767, 65535}

// mutator produces candidate inputs. Deterministic stages walk the seed
// bytes systematically; havoc stacks random edits. A non-empty frozen mask
// confines every edit to the unfrozen (reformable) byte positions.
type mutator struct {
	rng    *rand.Rand
	maxLen int
	frozen []Span
}

func newMutator(rng *rand.Rand, maxLen int, frozen []Span) *mutator {
	return &mutator{rng: rng, maxLen: maxLen, frozen: frozen}
}

// isFrozen reports whether byte position p lies inside a frozen span.
func (m *mutator) isFrozen(p int) bool {
	for _, s := range m.frozen {
		if p >= s.Start && p < s.Start+s.Len {
			return true
		}
	}
	return false
}

// allowed lists the mutable byte positions of an n-byte input: every
// position when no mask is set, the unfrozen ones otherwise.
func (m *mutator) allowed(n int) []int {
	out := make([]int, 0, n)
	for p := 0; p < n; p++ {
		if !m.isFrozen(p) {
			out = append(out, p)
		}
	}
	return out
}

// restoreFrozen copies the frozen spans of the seed back into the mutant.
// Masked havoc only applies length-preserving edits, so positions line up.
func (m *mutator) restoreFrozen(out, seed []byte) {
	for _, s := range m.frozen {
		for p := s.Start; p < s.Start+s.Len && p < len(out) && p < len(seed); p++ {
			out[p] = seed[p]
		}
	}
}

// deterministic applies the k-th deterministic mutation of the seed:
// even k walk single-bit flips, odd k walk byte replacements with
// interesting values. Both walks range over the allowed positions only,
// which is the identity mapping when no mask is set.
func (m *mutator) deterministic(seed []byte, k int) []byte {
	out := append([]byte(nil), seed...)
	if len(out) == 0 {
		return []byte{byte(k)}
	}
	pos := m.allowed(len(out))
	if len(pos) == 0 {
		return out
	}
	switch k % 2 {
	case 0:
		bit := (k / 2) % (len(pos) * 8)
		out[pos[bit/8]] ^= 1 << (bit % 8)
	default:
		p := (k / 2) % len(pos)
		out[pos[p]] = byte(interesting[(k/2/len(pos))%len(interesting)])
	}
	return out
}

// havocCases enumerates the edit kinds available to one havoc step; with a
// frozen mask the length-changing edits (delete/insert/duplicate) are
// excluded so frozen spans keep their offsets.
var havocMaskCases = []int{0, 1, 2, 3, 4, 8}

// havoc applies 1..32 stacked random edits; other donates splice content.
func (m *mutator) havoc(seed, other []byte) []byte {
	out := append([]byte(nil), seed...)
	edits := 1 + m.rng.Intn(32)
	for e := 0; e < edits; e++ {
		if len(out) == 0 {
			out = append(out, byte(m.rng.Intn(256)))
			continue
		}
		c := m.rng.Intn(9)
		if len(m.frozen) > 0 {
			c = havocMaskCases[m.rng.Intn(len(havocMaskCases))]
		}
		switch c {
		case 0: // bit flip
			bit := m.rng.Intn(len(out) * 8)
			out[bit/8] ^= 1 << (bit % 8)
		case 1: // random byte
			out[m.rng.Intn(len(out))] = byte(m.rng.Intn(256))
		case 2: // interesting byte
			out[m.rng.Intn(len(out))] = byte(interesting[m.rng.Intn(len(interesting))])
		case 3: // arith on byte
			p := m.rng.Intn(len(out))
			out[p] += byte(m.rng.Intn(71)) - 35
		case 4: // arith on u16
			if len(out) >= 2 {
				p := m.rng.Intn(len(out) - 1)
				v := binary.LittleEndian.Uint16(out[p:])
				v += uint16(m.rng.Intn(71)) - 35
				binary.LittleEndian.PutUint16(out[p:], v)
			}
		case 5: // delete span
			if len(out) > 1 {
				p := m.rng.Intn(len(out))
				n := 1 + m.rng.Intn(len(out)-p)
				out = append(out[:p], out[p+n:]...)
			}
		case 6: // insert random span
			if len(out) < m.maxLen {
				p := m.rng.Intn(len(out) + 1)
				n := 1 + m.rng.Intn(8)
				ins := make([]byte, n)
				for i := range ins {
					ins[i] = byte(m.rng.Intn(256))
				}
				out = append(out[:p], append(ins, out[p:]...)...)
			}
		case 7: // duplicate span
			if len(out) < m.maxLen && len(out) > 0 {
				p := m.rng.Intn(len(out))
				n := 1 + m.rng.Intn(min(8, len(out)-p))
				dup := append([]byte(nil), out[p:p+n]...)
				out = append(out[:p], append(dup, out[p:]...)...)
			}
		case 8: // splice from another seed
			if len(other) > 0 {
				p := m.rng.Intn(len(out))
				q := m.rng.Intn(len(other))
				n := min(len(other)-q, len(out)-p)
				if n > 0 {
					n = 1 + m.rng.Intn(n)
					copy(out[p:p+n], other[q:q+n])
				}
			}
		}
		if len(out) > m.maxLen {
			out = out[:m.maxLen]
		}
	}
	if len(m.frozen) > 0 {
		m.restoreFrozen(out, seed)
	}
	return out
}
