package fuzz

import (
	"encoding/binary"
	"math/rand"
)

// interesting holds the classic AFL interesting byte/word values.
var interesting = []int64{-128, -1, 0, 1, 16, 32, 64, 100, 127, 128, 255, 256, 512, 1000, 1024, 4096, 32767, 65535}

// mutator produces candidate inputs. Deterministic stages walk the seed
// bytes systematically; havoc stacks random edits.
type mutator struct {
	rng    *rand.Rand
	maxLen int
}

func newMutator(rng *rand.Rand, maxLen int) *mutator {
	return &mutator{rng: rng, maxLen: maxLen}
}

// deterministic applies the k-th deterministic mutation of the seed:
// even k walk single-bit flips, odd k walk byte replacements with
// interesting values.
func (m *mutator) deterministic(seed []byte, k int) []byte {
	out := append([]byte(nil), seed...)
	if len(out) == 0 {
		return []byte{byte(k)}
	}
	switch k % 2 {
	case 0:
		bit := (k / 2) % (len(out) * 8)
		out[bit/8] ^= 1 << (bit % 8)
	default:
		pos := (k / 2) % len(out)
		out[pos] = byte(interesting[(k/2/len(out))%len(interesting)])
	}
	return out
}

// havoc applies 1..32 stacked random edits; other donates splice content.
func (m *mutator) havoc(seed, other []byte) []byte {
	out := append([]byte(nil), seed...)
	edits := 1 + m.rng.Intn(32)
	for e := 0; e < edits; e++ {
		if len(out) == 0 {
			out = append(out, byte(m.rng.Intn(256)))
			continue
		}
		switch m.rng.Intn(9) {
		case 0: // bit flip
			bit := m.rng.Intn(len(out) * 8)
			out[bit/8] ^= 1 << (bit % 8)
		case 1: // random byte
			out[m.rng.Intn(len(out))] = byte(m.rng.Intn(256))
		case 2: // interesting byte
			out[m.rng.Intn(len(out))] = byte(interesting[m.rng.Intn(len(interesting))])
		case 3: // arith on byte
			p := m.rng.Intn(len(out))
			out[p] += byte(m.rng.Intn(71)) - 35
		case 4: // arith on u16
			if len(out) >= 2 {
				p := m.rng.Intn(len(out) - 1)
				v := binary.LittleEndian.Uint16(out[p:])
				v += uint16(m.rng.Intn(71)) - 35
				binary.LittleEndian.PutUint16(out[p:], v)
			}
		case 5: // delete span
			if len(out) > 1 {
				p := m.rng.Intn(len(out))
				n := 1 + m.rng.Intn(len(out)-p)
				out = append(out[:p], out[p+n:]...)
			}
		case 6: // insert random span
			if len(out) < m.maxLen {
				p := m.rng.Intn(len(out) + 1)
				n := 1 + m.rng.Intn(8)
				ins := make([]byte, n)
				for i := range ins {
					ins[i] = byte(m.rng.Intn(256))
				}
				out = append(out[:p], append(ins, out[p:]...)...)
			}
		case 7: // duplicate span
			if len(out) < m.maxLen && len(out) > 0 {
				p := m.rng.Intn(len(out))
				n := 1 + m.rng.Intn(min(8, len(out)-p))
				dup := append([]byte(nil), out[p:p+n]...)
				out = append(out[:p], append(dup, out[p:]...)...)
			}
		case 8: // splice from another seed
			if len(other) > 0 {
				p := m.rng.Intn(len(out))
				q := m.rng.Intn(len(other))
				n := min(len(other)-q, len(out)-p)
				if n > 0 {
					n = 1 + m.rng.Intn(n)
					copy(out[p:p+n], other[q:q+n])
				}
			}
		}
		if len(out) > m.maxLen {
			out = out[:m.maxLen]
		}
	}
	return out
}
