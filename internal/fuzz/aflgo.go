package fuzz

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"octopocs/internal/cfg"
)

// ErrNoDistance reports that the AFLGo-style instrumentation could not
// compute distances to the target: the static CFG contains no path from
// the entry to the target function. This is the "tool error" of Table V's
// MuPDF row — AFLGo's compile-time distance instrumentation cannot see
// through indirect dispatch.
var ErrNoDistance = errors.New("fuzz: target unreachable in the static CFG, cannot instrument distances")

// RunAFLGo runs a directed campaign toward the target function with
// AFLGo-style annealing: seed energy is scaled by the seed's normalized
// distance to the target, with the exploitation weight growing as the
// campaign progresses (Böhme et al., "Directed Greybox Fuzzing").
//
// Distances come from the static CFG only, mirroring AFLGo's compile-time
// instrumentation pass.
func RunAFLGo(t *Target, targetFn string, c Config) (*Result, error) {
	graph := cfg.Build(t.Prog)
	if !graph.Reachable(targetFn) {
		return nil, fmt.Errorf("%w (target %s)", ErrNoDistance, targetFn)
	}
	return RunDirected(t, targetFn, graph.DistancesTo(targetFn), c), nil
}

// RunDirected runs the AFLGo-style annealing campaign with caller-provided
// block distances — for callers that already own a distance map (the hybrid
// fallback reuses P2's dynamically refined `cfg.DistancesTo` result rather
// than recomputing from the static CFG). A nil dists degrades to the plain
// AFLFast schedule.
func RunDirected(t *Target, targetFn string, dists *cfg.Distances, c Config) *Result {
	if dists == nil {
		return runShards(t, c, nil, aflfastEnergy)
	}

	// blockDist returns the normalized distance of one executed block.
	blockDist := func(k blockKey) (float64, bool) {
		if k.fn == targetFn {
			return 0, true
		}
		if v, ok := dists.ToEp(k.fn, k.b); ok {
			return float64(v), true
		}
		return 0, false
	}
	seedDist := func(blocks map[blockKey]bool) float64 {
		// Sum in sorted key order: float addition is not associative, so
		// ranging over the map directly would make the seed distance — and
		// with it the whole campaign trajectory — depend on Go's randomized
		// map iteration order.
		keys := make([]blockKey, 0, len(blocks))
		for k := range blocks {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].fn != keys[j].fn {
				return keys[i].fn < keys[j].fn
			}
			return keys[i].b < keys[j].b
		})
		sum, n := 0.0, 0
		for _, k := range keys {
			if d, ok := blockDist(k); ok {
				sum += d
				n++
			}
		}
		if n == 0 {
			return math.Inf(1)
		}
		return sum / float64(n)
	}

	return runShards(t, c, seedDist, aflgoEnergy)
}

// aflgoEnergy anneals between exploration and distance-driven
// exploitation: energy = base^((1-d̃)·(1-T)+T·0.5) style weighting,
// simplified to a power-of-ten factor over the normalized distance.
func aflgoEnergy(s *seedInfo, h *harness, progress float64) int {
	base := aflfastEnergy(s, h, progress)
	if math.IsInf(s.dist, 1) {
		return base / 4
	}
	// Normalize against a nominal distance scale; closer seeds approach
	// weight 10^progress, farther seeds 10^-progress.
	norm := s.dist / (s.dist + 100)
	w := math.Pow(10, (1-2*norm)*progress)
	e := int(float64(base) * w)
	if e < 4 {
		e = 4
	}
	if e > 4096 {
		e = 4096
	}
	return e
}
