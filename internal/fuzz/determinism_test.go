package fuzz

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
)

// maskTarget is a program whose crash needs a two-byte edit: byte 0 must
// become 0x80 (bit flip from 0) and byte 3 must exceed 8 (read length into
// an 8-byte buffer).
func maskTarget() *Target {
	b := asm.NewBuilder("mask-target")
	g := b.Function("sink", 1)
	fd := g.Param(0)
	buf := g.Sys(isa.SysAlloc, g.Const(8))
	lb := g.Sys(isa.SysAlloc, g.Const(1))
	g.Sys(isa.SysRead, fd, lb, g.Const(1))
	g.Sys(isa.SysRead, fd, buf, g.Load(1, lb, 0))
	g.RetI(0)

	f := b.Function("main", 0)
	fd2 := f.Sys(isa.SysOpen)
	hb := f.Sys(isa.SysAlloc, f.Const(3))
	f.Sys(isa.SysRead, fd2, hb, f.Const(3))
	f.If(f.EqI(f.AndI(f.Load(1, hb, 0), 0x80), 0), func() { f.Exit(1) })
	f.Call("sink", fd2)
	f.Exit(0)
	b.Entry("main")

	return &Target{
		Prog:     b.MustBuild(),
		Lib:      map[string]bool{"sink": true},
		MaxSteps: 10_000,
	}
}

// resultKey renders the deterministic fields of a Result for comparison.
func resultKey(r *Result) string {
	return fmt.Sprintf("found=%v crash=%x execs=%d queue=%d loc=%v winner=%d",
		r.Found, r.Crash, r.Execs, r.QueueLen, r.CrashLoc, r.WinnerShard)
}

// TestCampaignDeterministicAcrossWorkers is the campaign determinism
// contract of the package doc, mirroring clonedet's
// TestScanDeterministicAcrossWorkers: the same Config.Seed must yield
// byte-identical campaign results (crash bytes, exec counts, queue sizes,
// winning shard) for any worker count, and across repeated runs. The
// schedule unit is the shard, so Workers is purely a throughput knob.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	target := maskTarget()
	seeds := [][]byte{make([]byte, 24)}
	var want string
	for run := 0; run < 2; run++ {
		for _, workers := range []int{0, 1, 4, 9} {
			res := RunAFLFast(target, Config{
				Seeds:       seeds,
				MaxExecs:    40_000,
				Seed:        7,
				MaxInputLen: 24,
				Shards:      4,
				Workers:     workers,
			})
			got := resultKey(res)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("run %d workers=%d: campaign result differs\n got %s\nwant %s",
					run, workers, got, want)
			}
		}
	}
}

// TestShardedFindsCrash pins that the sharded schedule still finds the
// two-edit crash and reports the deterministic winning shard.
func TestShardedFindsCrash(t *testing.T) {
	res := RunAFLFast(maskTarget(), Config{
		Seeds:       [][]byte{make([]byte, 24)},
		MaxExecs:    200_000,
		Seed:        7,
		MaxInputLen: 24,
		Shards:      4,
		Workers:     4,
	})
	if !res.Found {
		t.Fatalf("sharded campaign did not find the crash: %+v", res)
	}
	if res.WinnerShard < 0 || res.WinnerShard > 3 {
		t.Fatalf("winner shard out of range: %d", res.WinnerShard)
	}
	if res.Crash[0]&0x80 == 0 {
		t.Fatalf("crash input does not pass the flag gate: %x", res.Crash)
	}
}

// TestSingleShardMatchesLegacy pins that Shards ≤ 1 is the legacy
// single-campaign code path bit for bit: same RNG stream, same result.
func TestSingleShardMatchesLegacy(t *testing.T) {
	target := maskTarget()
	cfg := Config{
		Seeds:       [][]byte{make([]byte, 24)},
		MaxExecs:    10_000,
		Seed:        3,
		MaxInputLen: 24,
	}
	legacy := campaign(target, cfg, rand.New(rand.NewSource(cfg.Seed)), nil, aflfastEnergy, nil)
	for _, shards := range []int{0, 1} {
		c := cfg
		c.Shards = shards
		got := RunAFLFast(target, c)
		if got.Found != legacy.Found || got.Execs != legacy.Execs ||
			got.QueueLen != legacy.QueueLen || !bytes.Equal(got.Crash, legacy.Crash) {
			t.Fatalf("shards=%d diverges from the legacy campaign:\n got %s\nwant %s",
				shards, resultKey(got), resultKey(legacy))
		}
	}
}

// TestFrozenMaskPreserved is the mutation-mask invariant: every candidate
// the mutator emits keeps the frozen spans byte-identical to the seed, in
// both the deterministic and havoc stages, and never changes length.
func TestFrozenMaskPreserved(t *testing.T) {
	seed := []byte("ABCDEFGHIJKLMNOPQRSTUVWX")
	other := []byte("zyxwvutsrqponmlkjihgfedc")
	frozen := []Span{{Start: 4, Len: 6}, {Start: 16, Len: 4}}
	m := newMutator(rand.New(rand.NewSource(11)), 64, frozen)

	check := func(stage string, cand []byte) {
		t.Helper()
		if len(cand) != len(seed) {
			t.Fatalf("%s: masked mutation changed length: %d != %d", stage, len(cand), len(seed))
		}
		for _, s := range frozen {
			for p := s.Start; p < s.Start+s.Len; p++ {
				if cand[p] != seed[p] {
					t.Fatalf("%s: frozen byte %d mutated: %q -> %q (cand %q)",
						stage, p, seed[p], cand[p], cand)
				}
			}
		}
	}
	for k := 0; k < len(seed)*4; k++ {
		check("deterministic", m.deterministic(seed, k))
	}
	for i := 0; i < 2_000; i++ {
		check("havoc", m.havoc(seed, other))
	}
}

// TestNoMaskMatchesLegacyDeterministic pins that an empty mask leaves the
// deterministic walk identical to the unmasked formulation (bit i of byte
// i/8, then interesting-value sweeps), so pre-mask campaigns reproduce.
func TestNoMaskMatchesLegacyDeterministic(t *testing.T) {
	seed := []byte{0, 0, 0, 0}
	m := newMutator(rand.New(rand.NewSource(1)), 16, nil)
	for k := 0; k < len(seed)*16; k += 2 {
		got := m.deterministic(seed, k)
		bit := (k / 2) % (len(seed) * 8)
		want := append([]byte(nil), seed...)
		want[bit/8] ^= 1 << (bit % 8)
		if !bytes.Equal(got, want) {
			t.Fatalf("k=%d: got %x want %x", k, got, want)
		}
	}
}
