package clonedet

import (
	"errors"
	"fmt"
	"sync"

	"octopocs/internal/cfg"
	"octopocs/internal/isa"
	"octopocs/internal/mirstatic"
)

// Defaults for the retrieval knobs.
const (
	// DefaultMinScore is the per-function match threshold. Genuine clones
	// (even patched or constant-retuned variants) score well above it;
	// coincidental boilerplate overlap, down-weighted by shingle rarity,
	// stays well below.
	DefaultMinScore = 0.35
)

// Ranking-signal weights. Containment dominates because it is the signal
// that survives propagation edits (a patch inserted into the clone adds
// shingles to the target but removes few source shingles); the
// callgraph-context and CFG-shape terms break ties between structurally
// similar library routines.
const (
	weightContainment = 0.60
	weightContext     = 0.25
	weightShape       = 0.15
)

// Config tunes retrieval. The zero value gives the defaults.
type Config struct {
	// K is the shingle width in instructions; DefaultK when 0.
	K int
	// MinScore is the minimum combined score for a function match to count
	// toward a candidate; DefaultMinScore when 0, negative admits all.
	MinScore float64
	// TopK bounds the candidates returned per scan (0 = all).
	TopK int
	// Workers parallelizes Add and Scan internally; <= 1 is sequential.
	// Any value produces byte-identical results.
	Workers int
	// Metrics, when non-nil, receives retrieval counters, flushed once per
	// Add/Scan call.
	Metrics *Metrics
	// Cache, when non-nil, stores program fingerprints under their
	// content-addressed ci: keys (see FingerprintKey), so repeated index
	// builds and scans over the same programs — including across process
	// restarts, through the persistent artifact store — skip the
	// fingerprinting pass.
	Cache Cache
}

func (c Config) k() int {
	if c.K <= 0 {
		return DefaultK
	}
	return c.K
}

func (c Config) minScore() float64 {
	if c.MinScore == 0 {
		return DefaultMinScore
	}
	return c.MinScore
}

// Shape is the CFG-shape signature of one function: coarse structural
// counts that are cheap to compare and stable under register/constant
// rewrites. Loops counts back edges (successors that dominate their
// predecessor, via the mirstatic dominator tree).
type Shape struct {
	Blocks   int `json:"blocks"`
	Branches int `json:"branches"`
	Loops    int `json:"loops"`
	Calls    int `json:"calls"`
	Insts    int `json:"insts"`
}

// fnFP is the indexed form of one function: its shingle fingerprint, shape,
// and the merged fingerprints of its callgraph neighborhood.
type fnFP struct {
	name    string
	hashes  []uint64
	shape   Shape
	calleeU []uint64 // union of direct-callee fingerprints
	callerU []uint64 // union of caller fingerprints
}

// progFP fingerprints every function of one program.
type progFP struct {
	fns   []*fnFP
	byFn  map[string]*fnFP
	insts int
}

// fingerprintProgram computes per-function fingerprints, shapes, and
// callgraph-context unions for one linked program.
func fingerprintProgram(prog *isa.Program, k int) *progFP {
	g := cfg.Build(prog)
	p := &progFP{byFn: make(map[string]*fnFP, len(prog.Funcs))}
	callees := make(map[string][]string, len(prog.Funcs))
	for _, f := range prog.Funcs {
		fp := &fnFP{
			name:   f.Name,
			hashes: FingerprintFn(f, k),
			shape:  shapeOf(f, g),
		}
		for _, site := range g.Sites(f.Name) {
			callees[f.Name] = append(callees[f.Name], site.Targets...)
		}
		p.fns = append(p.fns, fp)
		p.byFn[f.Name] = fp
		p.insts += fp.shape.Insts
	}
	// Second pass: merge the neighborhood fingerprints. Callers are the
	// reverse edges of the same call sites.
	callers := make(map[string][]string, len(prog.Funcs))
	for _, f := range prog.Funcs {
		for _, t := range callees[f.Name] {
			callers[t] = append(callers[t], f.Name)
		}
	}
	for _, fp := range p.fns {
		for _, c := range callees[fp.name] {
			if n := p.byFn[c]; n != nil {
				fp.calleeU = mergeSorted(fp.calleeU, n.hashes)
			}
		}
		for _, c := range callers[fp.name] {
			if n := p.byFn[c]; n != nil {
				fp.callerU = mergeSorted(fp.callerU, n.hashes)
			}
		}
	}
	return p
}

// shapeOf derives the CFG-shape signature of f using the graph's successor
// lists and the dominator tree.
func shapeOf(f *isa.Function, g *cfg.Graph) Shape {
	s := Shape{Blocks: len(f.Blocks)}
	idom := mirstatic.Dominators(f)
	for bi, b := range f.Blocks {
		s.Insts += len(b.Insts)
		for i := range b.Insts {
			switch b.Insts[i].Op {
			case isa.OpCall, isa.OpCallInd:
				s.Calls++
			case isa.OpBr:
				s.Branches++
			}
		}
		for _, succ := range g.Succs(f.Name, bi) {
			if dominates(idom, succ, bi) {
				s.Loops++
			}
		}
	}
	return s
}

// dominates walks the idom tree upward from y looking for x (a node
// dominates itself; -1 entries dominate nothing).
func dominates(idom []int, x, y int) bool {
	for {
		if y == x {
			return true
		}
		if y < 0 || y >= len(idom) || idom[y] == y || idom[y] < 0 {
			return false
		}
		y = idom[y]
	}
}

// target is one indexed program.
type target struct {
	key  string
	prog *isa.Program
	fp   *progFP
}

// Index holds the fingerprinted target corpus. Create with NewIndex, fill
// with Add/AddAll, then Scan sources against it.
type Index struct {
	cfg     Config
	targets []*target
	keys    map[string]bool
	// df counts, per shingle hash, the number of indexed target functions
	// containing it: the document-frequency table behind the similarity
	// weights (rare shingles dominate, boilerplate is discounted).
	df map[uint64]int
}

// Target names one program to index or scan.
type Target struct {
	// Key identifies the program in candidates; unique per index.
	Key string
	// Prog is the linked program.
	Prog *isa.Program
}

// NewIndex returns an empty index.
func NewIndex(cfg Config) *Index {
	return &Index{cfg: cfg, keys: make(map[string]bool), df: make(map[uint64]int)}
}

// Add indexes one program.
func (ix *Index) Add(key string, prog *isa.Program) error {
	return ix.AddAll([]Target{{Key: key, Prog: prog}})
}

// AddAll indexes a batch of programs, fingerprinting them with Workers
// goroutines. The document-frequency merge runs in input order, so the
// resulting index is independent of the worker count.
func (ix *Index) AddAll(ts []Target) error {
	for _, t := range ts {
		if t.Prog == nil {
			return fmt.Errorf("clonedet: target %q has no program", t.Key)
		}
		if t.Key == "" {
			return errors.New("clonedet: target key must not be empty")
		}
		if ix.keys[t.Key] {
			return fmt.Errorf("clonedet: duplicate target key %q", t.Key)
		}
		ix.keys[t.Key] = true
	}
	fps := make([]*progFP, len(ts))
	ix.parallel(len(ts), func(i int) {
		fps[i] = ix.fingerprint(ts[i].Prog)
	})
	indexed := 0
	for i, t := range ts {
		ix.targets = append(ix.targets, &target{key: t.Key, prog: t.Prog, fp: fps[i]})
		for _, fn := range fps[i].fns {
			for _, h := range fn.hashes {
				ix.df[h]++
			}
		}
		indexed += len(fps[i].fns)
	}
	ix.cfg.Metrics.observeIndexed(indexed)
	return nil
}

// IndexStats summarizes the built index.
type IndexStats struct {
	Targets   int `json:"targets"`
	Functions int `json:"functions"`
	Shingles  int `json:"shingles"`
}

// Stats reports index size.
func (ix *Index) Stats() IndexStats {
	st := IndexStats{Targets: len(ix.targets), Shingles: len(ix.df)}
	for _, t := range ix.targets {
		st.Functions += len(t.fp.fns)
	}
	return st
}

// parallel runs fn(0..n-1) on min(Workers, n) goroutines. Results must be
// written to disjoint slots; the call returns after all complete.
func (ix *Index) parallel(n int, fn func(i int)) {
	w := ix.cfg.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// weight is the inverse document frequency of one shingle: 1 for shingles
// unique to (or absent from) the corpus, 1/df for shared ones.
func (ix *Index) weight(h uint64) float64 {
	if df := ix.df[h]; df > 1 {
		return 1 / float64(df)
	}
	return 1
}

// similarity computes the weighted containment |A∩B|w/|A|w and weighted
// Jaccard |A∩B|w/|A∪B|w of two sorted fingerprints, where A is the source
// side. Containment is the ranking signal (robust to code inserted into the
// clone); Jaccard is reported for diagnostics.
func (ix *Index) similarity(a, b []uint64) (containment, jaccard float64) {
	if len(a) == 0 {
		return 0, 0
	}
	var inter, onlyA, onlyB float64
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			onlyA += ix.weight(a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			onlyB += ix.weight(b[j])
			j++
		default:
			inter += ix.weight(a[i])
			i++
			j++
		}
	}
	if inter == 0 {
		return 0, 0
	}
	return inter / (inter + onlyA), inter / (inter + onlyA + onlyB)
}

// containOrVacuous is similarity restricted to containment, treating an
// empty source side as vacuously satisfied (a leaf function has no callees
// to compare).
func (ix *Index) containOrVacuous(a, b []uint64) float64 {
	if len(a) == 0 {
		return 1
	}
	c, _ := ix.similarity(a, b)
	return c
}

// shapeSim compares two shape signatures with a Canberra-style normalized
// distance over the component counts.
func shapeSim(a, b Shape) float64 {
	num := 0.0
	den := 0.0
	for _, c := range [5][2]int{
		{a.Blocks, b.Blocks}, {a.Branches, b.Branches}, {a.Loops, b.Loops},
		{a.Calls, b.Calls}, {a.Insts, b.Insts},
	} {
		d := c[0] - c[1]
		if d < 0 {
			d = -d
		}
		num += float64(d)
		den += float64(c[0] + c[1])
	}
	if den == 0 {
		return 1
	}
	return 1 - num/den
}
