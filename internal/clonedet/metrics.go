package clonedet

import "octopocs/internal/telemetry"

// Metrics is the optional counter sink for retrieval. Add and Scan
// aggregate locally and flush here exactly once per call (the engine
// pattern used by vm/symex/solver), and the verification driver reports
// each candidate's fate through ObserveVerdict when its job finishes. A
// nil *Metrics is a valid no-op sink.
type Metrics struct {
	// FunctionsIndexed counts target functions fingerprinted into an index.
	FunctionsIndexed *telemetry.Counter
	// Scans counts completed Scan calls.
	Scans *telemetry.Counter
	// CandidatesRanked counts candidates emitted by Scan (post-threshold,
	// post-TopK).
	CandidatesRanked *telemetry.Counter
	// Confirmed counts candidates whose verification verdict was
	// triggered; Refuted counts not-triggerable verdicts. Failed
	// verifications count toward neither.
	Confirmed *telemetry.Counter
	Refuted   *telemetry.Counter
}

// NewMetrics registers the retrieval counter family on reg under its
// canonical octopocs_clonedet_* names. A nil registry yields a nil bundle
// (instrumentation off).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		FunctionsIndexed: reg.Counter("octopocs_clonedet_functions_indexed_total",
			"Target functions fingerprinted into a clone-detection index.", nil),
		Scans: reg.Counter("octopocs_clonedet_scans_total",
			"Clone-detection scans completed.", nil),
		CandidatesRanked: reg.Counter("octopocs_clonedet_candidates_ranked_total",
			"Candidate (T, ℓ, ep) tuples emitted by clone-detection scans.", nil),
		Confirmed: reg.Counter("octopocs_clonedet_confirmed_total",
			"Scan candidates confirmed triggerable by pipeline verification.", nil),
		Refuted: reg.Counter("octopocs_clonedet_refuted_total",
			"Scan candidates refuted (not-triggerable) by pipeline verification.", nil),
	}
}

// observeIndexed flushes one AddAll call.
func (m *Metrics) observeIndexed(functions int) {
	if m == nil {
		return
	}
	m.FunctionsIndexed.Add(uint64(functions))
}

// observeScan flushes one Scan call.
func (m *Metrics) observeScan(candidates int) {
	if m == nil {
		return
	}
	m.Scans.Inc()
	m.CandidatesRanked.Add(uint64(candidates))
}

// ObserveVerdict records one verified candidate: confirmed when the
// pipeline triggered the vulnerability in the target, refuted when it
// proved the clone not triggerable.
func (m *Metrics) ObserveVerdict(confirmed bool) {
	if m == nil {
		return
	}
	if confirmed {
		m.Confirmed.Inc()
	} else {
		m.Refuted.Inc()
	}
}
