package clonedet

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/corpus"
	"octopocs/internal/isa"
	"octopocs/internal/telemetry"
)

// rawSampleFn builds one hand-written function through a register transform
// and an immediate transform, so tests can compare the fingerprint of the
// identity build against rewritten builds.
func rawSampleFn(p func(isa.Reg) isa.Reg, imm func(int64) int64) *isa.Function {
	return &isa.Function{
		Name: "sample",
		Blocks: []*isa.Block{
			{Name: "b0", Insts: []isa.Inst{
				{Op: isa.OpConst, Dst: p(3), Imm: imm(40)},
				{Op: isa.OpBinImm, Bin: isa.Add, Dst: p(4), A: p(3), Imm: imm(300)},
				{Op: isa.OpCmpImm, Cmp: isa.Lt, Dst: p(5), A: p(4), Imm: imm(100000)},
				{Op: isa.OpBr, A: p(5), Then: "b1", Else: "b2"},
			}},
			{Name: "b1", Insts: []isa.Inst{
				{Op: isa.OpCall, Dst: p(6), Callee: "helper", Args: []isa.Reg{p(3), p(4)}},
				{Op: isa.OpLoad, Size: 4, Dst: p(7), A: p(6), Imm: imm(8)},
				{Op: isa.OpStore, Size: 4, A: p(6), B: p(7), Imm: imm(16)},
				{Op: isa.OpBin, Bin: isa.Mul, Dst: p(9), A: p(7), B: p(4)},
				{Op: isa.OpCmp, Cmp: isa.Eq, Dst: p(10), A: p(9), B: p(3)},
				{Op: isa.OpJmp, Then: "b2"},
			}},
			{Name: "b2", Insts: []isa.Inst{
				{Op: isa.OpMov, Dst: p(11), A: p(4)},
				{Op: isa.OpSyscall, Sys: isa.SysExit, Dst: p(12), Args: []isa.Reg{p(11)}},
				{Op: isa.OpRet, A: p(12)},
			}},
		},
	}
}

func ident(r isa.Reg) isa.Reg   { return r }
func identImm(v int64) int64    { return v }
func permute(r isa.Reg) isa.Reg { return isa.Reg((int(r)*17 + 5) % isa.NumRegs) }

// classRepr maps an immediate to a fixed representative of its magnitude
// class — a different value, same class.
func classRepr(v int64) int64 {
	switch constClass(v) {
	case "z":
		return 0
	case "k8":
		return 171
	case "k16":
		return 0x1234
	case "k32":
		return 0x12345678
	default:
		return -1
	}
}

// TestFingerprintRegisterRenamingInvariance: any bijective register renaming
// yields byte-identical fingerprints.
func TestFingerprintRegisterRenamingInvariance(t *testing.T) {
	base := FingerprintFn(rawSampleFn(ident, identImm), 0)
	ren := FingerprintFn(rawSampleFn(permute, identImm), 0)
	if len(base) == 0 {
		t.Fatal("empty fingerprint for sample function")
	}
	if !reflect.DeepEqual(base, ren) {
		t.Errorf("fingerprint changed under register renaming:\n base %v\n renamed %v", base, ren)
	}
	for _, k := range []int{1, 2, 3, 7} {
		if !reflect.DeepEqual(FingerprintFn(rawSampleFn(ident, identImm), k), FingerprintFn(rawSampleFn(permute, identImm), k)) {
			t.Errorf("k=%d: fingerprint changed under register renaming", k)
		}
	}
}

// TestFingerprintConstReencodingInvariance: re-encoding every immediate
// within its magnitude class preserves the fingerprint; moving one constant
// across classes perturbs it.
func TestFingerprintConstReencodingInvariance(t *testing.T) {
	base := FingerprintFn(rawSampleFn(ident, identImm), 0)
	reenc := FingerprintFn(rawSampleFn(ident, classRepr), 0)
	if !reflect.DeepEqual(base, reenc) {
		t.Errorf("fingerprint changed under in-class constant re-encoding:\n base %v\n reenc %v", base, reenc)
	}
	crossClass := FingerprintFn(rawSampleFn(ident, func(v int64) int64 {
		if v == 40 {
			return 300 // k8 -> k16
		}
		return v
	}), 0)
	if reflect.DeepEqual(base, crossClass) {
		t.Error("fingerprint did not change when a constant crossed magnitude classes")
	}
	// Both rewrites together still match the base.
	both := FingerprintFn(rawSampleFn(permute, classRepr), 0)
	if !reflect.DeepEqual(base, both) {
		t.Error("fingerprint changed under combined renaming + re-encoding")
	}
}

// TestConstClass pins the magnitude buckets.
func TestConstClass(t *testing.T) {
	cases := []struct {
		v    int64
		want string
	}{
		{0, "z"}, {1, "k8"}, {255, "k8"}, {256, "k16"}, {65535, "k16"},
		{65536, "k32"}, {1 << 31, "k32"}, {1 << 32, "k64"}, {-1, "k64"}, {-300, "k64"},
	}
	for _, c := range cases {
		if got := constClass(c.v); got != c.want {
			t.Errorf("constClass(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

// corpusIndex builds the standard test index over all 17 corpus targets,
// keyed tNN.
func corpusIndex(t *testing.T, cfg Config) (*Index, []*corpus.PairSpec) {
	t.Helper()
	specs := append(corpus.All(), corpus.StaticSet()...)
	ix := NewIndex(cfg)
	var ts []Target
	for _, s := range specs {
		ts = append(ts, Target{Key: targetKey(s.Idx), Prog: s.Pair.T})
	}
	if err := ix.AddAll(ts); err != nil {
		t.Fatalf("AddAll: %v", err)
	}
	return ix, specs
}

func targetKey(idx int) string { return fmt.Sprintf("t%02d", idx) }

// TestCorpusRetrieval is the acceptance check for the retrieval stage:
// scanning every source against the full 17-target index must place the true
// clone pair (its own row's target, including the Type-variant rows 13, 14,
// 16, 17) in the candidate set with the full ℓ recovered, and on this corpus
// must return no cross-family candidates at all.
func TestCorpusRetrieval(t *testing.T) {
	ix, specs := corpusIndex(t, Config{})
	for _, spec := range specs {
		truth := corpus.CloneTruthByIdx(spec.Idx)
		if truth == nil {
			t.Fatalf("row %d: no clone truth", spec.Idx)
		}
		cands, err := ix.Scan(Source{Name: spec.SName, Prog: spec.Pair.S, Vuln: truth.Lib})
		if err != nil {
			t.Fatalf("row %d: Scan: %v", spec.Idx, err)
		}
		family := map[string]bool{}
		for _, idx := range corpus.FamilyTargets(truth.Family) {
			family[targetKey(idx)] = true
		}
		var diag *Candidate
		for i := range cands {
			c := &cands[i]
			if !family[c.Target] {
				t.Errorf("row %d: cross-family candidate %s (score %.3f)", spec.Idx, c.Target, c.Score)
			}
			if c.Target == targetKey(spec.Idx) {
				diag = c
			}
		}
		if diag == nil {
			t.Errorf("row %d (%s): true pair %s not retrieved", spec.Idx, spec.Label(), targetKey(spec.Idx))
			continue
		}
		if !reflect.DeepEqual(diag.Lib, truth.Lib) {
			t.Errorf("row %d: discovered ℓ %v, want %v", spec.Idx, diag.Lib, truth.Lib)
		}
		if diag.Coverage != 1 {
			t.Errorf("row %d: coverage %.2f, want 1.00", spec.Idx, diag.Coverage)
		}
		for _, m := range diag.Funcs {
			if m.Renamed {
				t.Errorf("row %d: unexpected renamed match %s->%s on the true pair", spec.Idx, m.SrcFn, m.DstFn)
			}
		}
	}
}

// epPrograms builds a three-program fixture: a source whose ℓ is
// {lib_decode, lib_skip} with lib_decode as entry point, a full clone
// carrying both functions, and a partial clone carrying only lib_skip.
func epPrograms() (src, full, partial *isa.Program) {
	build := func(name string, withDecode bool) *isa.Program {
		b := asm.NewBuilder(name)
		sk := b.Function("lib_skip", 2)
		n := sk.Param(1)
		pos := sk.Sys(isa.SysTell, sk.Param(0))
		sk.Sys(isa.SysSeek, sk.Param(0), sk.Add(pos, n))
		sk.Ret(n)
		if withDecode {
			de := b.Function("lib_decode", 2)
			fd, length := de.Param(0), de.Param(1)
			buf := de.Sys(isa.SysAlloc, de.Const(64))
			de.Sys(isa.SysRead, fd, buf, length)
			de.Call("lib_skip", fd, length)
			de.Ret(de.Load(1, buf, 0))
		}
		m := b.Function("main", 0)
		fd := m.Const(0)
		if withDecode {
			m.Call("lib_decode", fd, m.Const(16))
		}
		m.Call("lib_skip", fd, m.Const(4))
		m.Exit(0)
		b.Entry("main")
		return b.MustBuild()
	}
	return build("ep_src", true), build("ep_full", true), build("ep_partial", false)
}

// TestEpAnchoring: when the source entry point is known, a target without a
// match for the entry-point function must not qualify, however well the
// other ℓ functions match.
func TestEpAnchoring(t *testing.T) {
	src, full, partial := epPrograms()
	ix := NewIndex(Config{})
	if err := ix.AddAll([]Target{{Key: "full", Prog: full}, {Key: "partial", Prog: partial}}); err != nil {
		t.Fatalf("AddAll: %v", err)
	}
	vuln := []string{"lib_decode", "lib_skip"}

	free, err := ix.Scan(Source{Name: "src", Prog: src, Vuln: vuln})
	if err != nil {
		t.Fatalf("Scan (no ep): %v", err)
	}
	if got := candTargets(free); !reflect.DeepEqual(got, []string{"full", "partial"}) {
		t.Fatalf("unanchored scan candidates = %v, want [full partial]", got)
	}

	anchored, err := ix.Scan(Source{Name: "src", Prog: src, Vuln: vuln, Ep: "lib_decode"})
	if err != nil {
		t.Fatalf("Scan (ep): %v", err)
	}
	if got := candTargets(anchored); !reflect.DeepEqual(got, []string{"full"}) {
		t.Fatalf("anchored scan candidates = %v, want [full]", got)
	}
	if anchored[0].Ep != "lib_decode" {
		t.Errorf("anchored candidate Ep = %q, want lib_decode", anchored[0].Ep)
	}
}

func candTargets(cands []Candidate) []string {
	var out []string
	for _, c := range cands {
		out = append(out, c.Target)
	}
	sort.Strings(out)
	return out
}

// TestScanAndIndexErrors covers the validation surface.
func TestScanAndIndexErrors(t *testing.T) {
	src, full, _ := epPrograms()
	ix := NewIndex(Config{})
	if err := ix.Add("full", full); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := ix.Add("full", full); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate key: err = %v", err)
	}
	if err := ix.Add("", full); err == nil {
		t.Error("empty key accepted")
	}
	if err := ix.Add("nilprog", nil); err == nil {
		t.Error("nil program accepted")
	}
	for _, bad := range []Source{
		{Name: "no-prog", Vuln: []string{"lib_skip"}},
		{Name: "no-vuln", Prog: src},
		{Name: "missing-fn", Prog: src, Vuln: []string{"no_such_fn"}},
		{Name: "missing-ep", Prog: src, Vuln: []string{"lib_skip"}, Ep: "no_such_fn"},
	} {
		if _, err := ix.Scan(bad); err == nil {
			t.Errorf("source %q: Scan accepted invalid input", bad.Name)
		}
	}
}

// TestTopKAndMinScore: TopK truncates the ranking; a prohibitive MinScore
// empties it.
func TestTopKAndMinScore(t *testing.T) {
	specs := append(corpus.All(), corpus.StaticSet()...)
	spec := specs[6] // row 7, j2k family: three targets match
	truth := corpus.CloneTruthByIdx(spec.Idx)

	ix, _ := corpusIndex(t, Config{TopK: 1})
	cands, err := ix.Scan(Source{Name: spec.SName, Prog: spec.Pair.S, Vuln: truth.Lib})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(cands) != 1 {
		t.Fatalf("TopK=1: got %d candidates", len(cands))
	}

	strict, _ := corpusIndex(t, Config{MinScore: 0.999999})
	cands, err = strict.Scan(Source{Name: spec.SName, Prog: spec.Pair.S, Vuln: truth.Lib})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for _, c := range cands {
		for _, m := range c.Funcs {
			if m.Score < 0.999999 {
				t.Errorf("MinScore: candidate %s carries match below threshold (%.3f)", c.Target, m.Score)
			}
		}
	}
}

// TestMetricsFlush checks the flush-once counter contract across Add, Scan
// and ObserveVerdict.
func TestMetricsFlush(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	src, full, partial := epPrograms()
	ix := NewIndex(Config{Metrics: m})
	if err := ix.AddAll([]Target{{Key: "full", Prog: full}, {Key: "partial", Prog: partial}}); err != nil {
		t.Fatalf("AddAll: %v", err)
	}
	if got := m.FunctionsIndexed.Value(); got != 5 {
		t.Errorf("FunctionsIndexed = %d, want 5", got)
	}
	cands, err := ix.Scan(Source{Name: "src", Prog: src, Vuln: []string{"lib_decode", "lib_skip"}})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if got := m.Scans.Value(); got != 1 {
		t.Errorf("Scans = %d, want 1", got)
	}
	if got := m.CandidatesRanked.Value(); got != uint64(len(cands)) {
		t.Errorf("CandidatesRanked = %d, want %d", got, len(cands))
	}
	m.ObserveVerdict(true)
	m.ObserveVerdict(false)
	m.ObserveVerdict(false)
	if m.Confirmed.Value() != 1 || m.Refuted.Value() != 2 {
		t.Errorf("verdict counters = %d/%d, want 1/2", m.Confirmed.Value(), m.Refuted.Value())
	}
	// A nil bundle is a valid sink.
	var nilM *Metrics
	nilM.observeIndexed(3)
	nilM.observeScan(1)
	nilM.ObserveVerdict(true)
}
