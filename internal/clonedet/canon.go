// Package clonedet is the clone-detection front end of the pipeline: it
// discovers the shared function set ℓ instead of requiring it as an input.
// The paper assumes a vulnerable-clone detector (VUDDY) has already produced
// the (S, T, ℓ) triple; this package supplies that step over MIR, in the
// retrieval-plus-validation style of VulCoCo: every function is normalized
// into canonical instruction shingles, hashed into a per-function
// fingerprint set, and indexed, so the vulnerable functions of a source
// program can be matched against a target corpus by weighted
// Jaccard/containment similarity refined with callgraph-context and
// CFG-shape signals. Matches are ranked and emitted as candidate (T, ℓ, ep)
// tuples that flow directly into the P1–P4 verification pipeline of
// internal/core — retrieval provides recall, OCTOPOCS verification restores
// precision by confirming or refuting every candidate.
//
// Canonicalization makes fingerprints invariant under the two rewrites a
// compiler (or a copy-pasting maintainer) applies most freely: registers are
// renamed to first-use ordinals, so any bijective register renaming yields
// the same shingles, and immediates are abstracted to magnitude classes, so
// re-encoding a constant at a different width within its class does not
// perturb the fingerprint. Function and block names never enter a shingle —
// only ℓ membership (which the pipeline resolves by name) requires the
// propagated code to keep its symbol names.
//
// Concurrency: an Index is built by one goroutine (NewIndex/Add are not
// safe to interleave with Scan); Config.Workers only parallelizes the
// inside of Add and Scan, and any worker count produces byte-identical
// candidate rankings. A fully built Index is immutable during Scan, so many
// goroutines may Scan one Index concurrently. The optional Metrics sink is
// internally synchronized and flushed once per Add/Scan call.
package clonedet

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"

	"octopocs/internal/isa"
)

// DefaultK is the shingle width in instructions. Four-instruction windows
// are long enough that boilerplate prologue patterns rarely collide and
// short enough that an inserted patch only invalidates the shingles that
// overlap it.
const DefaultK = 4

// canonRegs assigns canonical ordinals to registers in first-use order over
// the serialized operand visit order (Dst, A, B, Args). Any bijective
// renaming of the register file preserves first-use order and therefore the
// canonical stream.
type canonRegs struct {
	ids  map[isa.Reg]int
	next int
}

func (c *canonRegs) of(r isa.Reg) int {
	if id, ok := c.ids[r]; ok {
		return id
	}
	c.ids[r] = c.next
	c.next++
	return c.ids[r]
}

// constClass buckets an immediate by the magnitude of its unsigned
// encoding: z for zero, then 8/16/32/64-bit classes. Two constants in the
// same class canonicalize to the same token, which is exactly the
// "constant-width re-encoding" invariance the fuzz target pins.
func constClass(v int64) string {
	u := uint64(v)
	switch l := bits.Len64(u); {
	case l == 0:
		return "z"
	case l <= 8:
		return "k8"
	case l <= 16:
		return "k16"
	case l <= 32:
		return "k32"
	default:
		return "k64"
	}
}

// CanonTokens serializes a function into its canonical token stream: one
// token per instruction, blocks in definition order with a boundary marker.
// Callee and block names are abstracted away (call arity and syscall
// numbers stay, since they are semantic); registers become first-use
// ordinals and immediates become magnitude classes.
func CanonTokens(f *isa.Function) []string {
	regs := &canonRegs{ids: make(map[isa.Reg]int)}
	var out []string
	for _, b := range f.Blocks {
		out = append(out, "|")
		for i := range b.Insts {
			out = append(out, canonInst(&b.Insts[i], regs))
		}
	}
	return out
}

// canonInst renders one instruction's canonical token.
func canonInst(in *isa.Inst, regs *canonRegs) string {
	r := regs.of
	switch in.Op {
	case isa.OpConst:
		return fmt.Sprintf("c %d %s", r(in.Dst), constClass(in.Imm))
	case isa.OpMov:
		return fmt.Sprintf("m %d %d", r(in.Dst), r(in.A))
	case isa.OpBin:
		return fmt.Sprintf("b%d %d %d %d", in.Bin, r(in.Dst), r(in.A), r(in.B))
	case isa.OpBinImm:
		return fmt.Sprintf("bi%d %d %d %s", in.Bin, r(in.Dst), r(in.A), constClass(in.Imm))
	case isa.OpCmp:
		return fmt.Sprintf("p%d %d %d %d", in.Cmp, r(in.Dst), r(in.A), r(in.B))
	case isa.OpCmpImm:
		return fmt.Sprintf("pi%d %d %d %s", in.Cmp, r(in.Dst), r(in.A), constClass(in.Imm))
	case isa.OpLoad:
		return fmt.Sprintf("ld%d %d %d %s", in.Size, r(in.Dst), r(in.A), constClass(in.Imm))
	case isa.OpStore:
		return fmt.Sprintf("st%d %d %d %s", in.Size, r(in.A), r(in.B), constClass(in.Imm))
	case isa.OpJmp:
		return "j"
	case isa.OpBr:
		return fmt.Sprintf("br %d", r(in.A))
	case isa.OpCall:
		return fmt.Sprintf("call/%d %d%s", len(in.Args), r(in.Dst), canonArgs(in.Args, regs))
	case isa.OpCallInd:
		return fmt.Sprintf("calli/%d %d %d%s", len(in.Args), r(in.Dst), r(in.A), canonArgs(in.Args, regs))
	case isa.OpRet:
		return fmt.Sprintf("ret %d", r(in.A))
	case isa.OpSyscall:
		return fmt.Sprintf("sys%d/%d %d%s", in.Sys, len(in.Args), r(in.Dst), canonArgs(in.Args, regs))
	case isa.OpTrap:
		return fmt.Sprintf("trap %s", constClass(in.Imm))
	default:
		return fmt.Sprintf("op%d", in.Op)
	}
}

func canonArgs(args []isa.Reg, regs *canonRegs) string {
	s := ""
	for _, a := range args {
		s += fmt.Sprintf(" %d", regs.of(a))
	}
	return s
}

// FingerprintFn hashes a function's canonical token stream into its shingle
// fingerprint: the sorted, deduplicated FNV-64 hashes of every k-token
// window. Streams shorter than k contribute a single whole-stream shingle,
// so even tiny helpers are matchable.
func FingerprintFn(f *isa.Function, k int) []uint64 {
	if k <= 0 {
		k = DefaultK
	}
	tokens := CanonTokens(f)
	if len(tokens) == 0 {
		return nil
	}
	n := len(tokens) - k + 1
	if n < 1 {
		n = 1
	}
	set := make(map[uint64]struct{}, n)
	for i := 0; i < n; i++ {
		h := fnv.New64a()
		for j := i; j < i+k && j < len(tokens); j++ {
			h.Write([]byte(tokens[j]))
			h.Write([]byte{0x1f})
		}
		set[h.Sum64()] = struct{}{}
	}
	out := make([]uint64, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeSorted unions two sorted hash slices into a fresh sorted slice.
func mergeSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
