package clonedet

import (
	"bytes"
	"encoding/json"
	"testing"

	"octopocs/internal/corpus"
)

// TestScanDeterministicAcrossWorkers is the determinism contract of the
// package doc: building the index and scanning the full corpus must produce
// byte-identical candidate rankings for any worker count, and across
// repeated runs.
func TestScanDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for run := 0; run < 2; run++ {
		for _, workers := range []int{0, 1, 4, 9} {
			got := scanCorpusJSON(t, workers)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("run %d workers=%d: scan output differs from baseline\n got %d bytes\nwant %d bytes",
					run, workers, len(got), len(want))
			}
		}
	}
}

// scanCorpusJSON indexes all 17 targets and scans all 17 sources with the
// given worker count, returning the JSON rendering of every ranking.
func scanCorpusJSON(t *testing.T, workers int) []byte {
	t.Helper()
	ix, specs := corpusIndex(t, Config{Workers: workers})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(ix.Stats()); err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		truth := corpus.CloneTruthByIdx(spec.Idx)
		cands, err := ix.Scan(Source{Name: spec.SName, Prog: spec.Pair.S, Vuln: truth.Lib})
		if err != nil {
			t.Fatalf("row %d: Scan: %v", spec.Idx, err)
		}
		if err := enc.Encode(cands); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}
