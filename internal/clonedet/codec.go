package clonedet

// codec.go connects clone detection to the persistent artifact store:
// program fingerprints are pure functions of the linked program text and
// the shingle width, so they are content-addressed under ci: keys and
// reused across index builds, scans, and process restarts. The wire form
// carries the actual fingerprint data (hashes, shapes, neighborhood
// unions) because recomputing it is exactly the work the cache exists to
// skip.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
)

// Cache stores fingerprint artifacts under content-addressed keys.
// Implementations must be safe for concurrent use: AddAll fingerprints
// targets on Workers goroutines, each probing and filling the cache.
type Cache interface {
	Get(key string) (any, bool)
	Put(key string, v any)
}

// FingerprintKey derives the content address of a program's fingerprint
// artifact: the assembled program text and the shingle width are the only
// inputs fingerprintProgram reads.
func FingerprintKey(prog *isa.Program, k int) string {
	h := sha256.New()
	io.WriteString(h, asm.Format(prog))
	fmt.Fprintf(h, "|k:%d", k)
	return "ci:" + hex.EncodeToString(h.Sum(nil))
}

// fingerprint computes (or loads) the fingerprint of one program through
// the configured cache. Cache misses and type mismatches fall back to
// recomputation; fingerprints are deterministic, so a stale-typed hit can
// never change scan results, only cost the recompute.
func (ix *Index) fingerprint(prog *isa.Program) *progFP {
	k := ix.cfg.k()
	if ix.cfg.Cache == nil {
		return fingerprintProgram(prog, k)
	}
	key := FingerprintKey(prog, k)
	if v, ok := ix.cfg.Cache.Get(key); ok {
		if fp, ok := v.(*progFP); ok {
			return fp
		}
	}
	fp := fingerprintProgram(prog, k)
	ix.cfg.Cache.Put(key, fp)
	return fp
}

// FingerprintCodec encodes *progFP values for the artifact store's disk
// tier. Unlike the pipeline codecs, it persists the derived data itself:
// the fingerprint is small, plain, and exactly the computation worth
// saving.
type FingerprintCodec struct{}

// fpWire is the on-disk form of a progFP.
type fpWire struct {
	Fns   []fnWire `json:"fns"`
	Insts int      `json:"insts"`
}

// fnWire is the on-disk form of one function fingerprint.
type fnWire struct {
	Name    string   `json:"name"`
	Hashes  []uint64 `json:"hashes"`
	Shape   Shape    `json:"shape"`
	CalleeU []uint64 `json:"callee_u,omitempty"`
	CallerU []uint64 `json:"caller_u,omitempty"`
}

// Encode marshals a *progFP.
func (FingerprintCodec) Encode(v any) ([]byte, error) {
	fp, ok := v.(*progFP)
	if !ok {
		return nil, fmt.Errorf("clonedet: fingerprint codec: unexpected value type %T", v)
	}
	w := fpWire{Insts: fp.insts, Fns: make([]fnWire, len(fp.fns))}
	for i, fn := range fp.fns {
		w.Fns[i] = fnWire{
			Name: fn.name, Hashes: fn.hashes, Shape: fn.shape,
			CalleeU: fn.calleeU, CallerU: fn.callerU,
		}
	}
	return json.Marshal(w)
}

// Decode unmarshals a *progFP, rebuilding the by-name lookup.
func (FingerprintCodec) Decode(data []byte) (any, error) {
	var w fpWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("clonedet: fingerprint codec: %w", err)
	}
	fp := &progFP{insts: w.Insts, byFn: make(map[string]*fnFP, len(w.Fns))}
	for _, fn := range w.Fns {
		f := &fnFP{
			name: fn.Name, hashes: fn.Hashes, shape: fn.Shape,
			calleeU: fn.CalleeU, callerU: fn.CallerU,
		}
		fp.fns = append(fp.fns, f)
		fp.byFn[f.name] = f
	}
	return fp, nil
}
