package clonedet

import (
	"reflect"
	"testing"

	"octopocs/internal/isa"
)

// decodeFuzzFn interprets an arbitrary byte stream as a MIR function, four
// bytes per instruction (opcode selector, then three operand bytes). Every
// input decodes to something; validity does not matter because
// canonicalization never executes the code.
func decodeFuzzFn(data []byte) *isa.Function {
	f := &isa.Function{Name: "fuzz"}
	blk := &isa.Block{Name: "b0"}
	f.Blocks = []*isa.Block{blk}
	sizes := [4]uint8{1, 2, 4, 8}
	for i := 0; i+4 <= len(data); i += 4 {
		op, x, y, z := data[i], data[i+1], data[i+2], data[i+3]
		dst := isa.Reg(x % isa.NumRegs)
		a := isa.Reg(y % isa.NumRegs)
		b := isa.Reg(z % isa.NumRegs)
		// Spread immediates across every magnitude class, negatives included.
		imm := (int64(x) << (y % 60)) - int64(z)
		var in isa.Inst
		switch op % 15 {
		case 0:
			in = isa.Inst{Op: isa.OpConst, Dst: dst, Imm: imm}
		case 1:
			in = isa.Inst{Op: isa.OpMov, Dst: dst, A: a}
		case 2:
			in = isa.Inst{Op: isa.OpBin, Bin: isa.BinOp(z % 8), Dst: dst, A: a, B: b}
		case 3:
			in = isa.Inst{Op: isa.OpBinImm, Bin: isa.BinOp(z % 8), Dst: dst, A: a, Imm: imm}
		case 4:
			in = isa.Inst{Op: isa.OpCmp, Cmp: isa.CmpOp(z % 6), Dst: dst, A: a, B: b}
		case 5:
			in = isa.Inst{Op: isa.OpCmpImm, Cmp: isa.CmpOp(z % 6), Dst: dst, A: a, Imm: imm}
		case 6:
			in = isa.Inst{Op: isa.OpLoad, Size: sizes[z%4], Dst: dst, A: a, Imm: imm}
		case 7:
			in = isa.Inst{Op: isa.OpStore, Size: sizes[z%4], A: a, B: b, Imm: imm}
		case 8:
			in = isa.Inst{Op: isa.OpJmp, Then: "b0"}
		case 9:
			in = isa.Inst{Op: isa.OpBr, A: a, Then: "b0", Else: "b0"}
		case 10:
			in = isa.Inst{Op: isa.OpCall, Dst: dst, Callee: "callee", Args: []isa.Reg{a, b}}
		case 11:
			in = isa.Inst{Op: isa.OpCallInd, Dst: dst, A: a, Args: []isa.Reg{b}}
		case 12:
			in = isa.Inst{Op: isa.OpRet, A: a}
		case 13:
			in = isa.Inst{Op: isa.OpSyscall, Sys: isa.Sys(z % 12), Dst: dst, Args: []isa.Reg{a, b}}
		default:
			// Block boundary.
			blk = &isa.Block{Name: "b"}
			f.Blocks = append(f.Blocks, blk)
			continue
		}
		blk.Insts = append(blk.Insts, in)
	}
	return f
}

// mapRegs deep-copies f with every register operand passed through pi.
func mapRegs(f *isa.Function, pi func(isa.Reg) isa.Reg) *isa.Function {
	out := &isa.Function{Name: f.Name, NParams: f.NParams}
	for _, b := range f.Blocks {
		nb := &isa.Block{Name: b.Name, Insts: append([]isa.Inst(nil), b.Insts...)}
		for i := range nb.Insts {
			in := &nb.Insts[i]
			in.Dst, in.A, in.B = pi(in.Dst), pi(in.A), pi(in.B)
			if len(in.Args) > 0 {
				args := make([]isa.Reg, len(in.Args))
				for j, r := range in.Args {
					args[j] = pi(r)
				}
				in.Args = args
			}
		}
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}

// mapImms deep-copies f with every immediate passed through fn.
func mapImms(f *isa.Function, fn func(int64) int64) *isa.Function {
	out := &isa.Function{Name: f.Name, NParams: f.NParams}
	for _, b := range f.Blocks {
		nb := &isa.Block{Name: b.Name, Insts: append([]isa.Inst(nil), b.Insts...)}
		for i := range nb.Insts {
			nb.Insts[i].Imm = fn(nb.Insts[i].Imm)
		}
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}

// FuzzShingleCanon pins the two canonicalization invariants on arbitrary
// decoded functions: fingerprints are unchanged by any bijective register
// renaming and by re-encoding every immediate within its magnitude class —
// and the combination of both.
func FuzzShingleCanon(f *testing.F) {
	f.Add([]byte{})
	// One instruction of every opcode selector.
	var all []byte
	for op := byte(0); op < 15; op++ {
		all = append(all, op, 3, 5, 7)
	}
	f.Add(all)
	f.Add([]byte{10, 1, 2, 3, 0, 255, 16, 32, 14, 0, 0, 0, 6, 68, 85, 102, 9, 17, 34, 51})
	f.Fuzz(func(t *testing.T, data []byte) {
		fn := decodeFuzzFn(data)
		base := FingerprintFn(fn, 0)

		shift := 1
		if len(data) > 0 {
			shift = int(data[0]) % isa.NumRegs
		}
		// r -> 17r+shift mod 224 is bijective (gcd(17, 224) = 1).
		pi := func(r isa.Reg) isa.Reg { return isa.Reg((int(r)*17 + shift) % isa.NumRegs) }
		if got := FingerprintFn(mapRegs(fn, pi), 0); !reflect.DeepEqual(base, got) {
			t.Fatalf("fingerprint not invariant under register renaming (shift %d)", shift)
		}
		if got := FingerprintFn(mapImms(fn, classRepr), 0); !reflect.DeepEqual(base, got) {
			t.Fatal("fingerprint not invariant under in-class constant re-encoding")
		}
		if got := FingerprintFn(mapImms(mapRegs(fn, pi), classRepr), 0); !reflect.DeepEqual(base, got) {
			t.Fatal("fingerprint not invariant under combined rewrite")
		}
	})
}
