package clonedet

import (
	"errors"
	"fmt"
	"sort"

	"octopocs/internal/isa"
)

// Source is the scan query: a vulnerable program and the advisory's
// vulnerable function names (the ℓ functions on the S side). Ep, when
// known (the pipeline's FindEp reports it from the S crash backtrace),
// anchors candidates: a target only qualifies when the entry-point function
// itself has a match there.
type Source struct {
	// Name labels the source in candidates and logs.
	Name string
	// Prog is the linked source program S.
	Prog *isa.Program
	// Vuln lists the vulnerable (ℓ-side) function names of S.
	Vuln []string
	// Ep is the entry-point function of ℓ, or "" when unknown.
	Ep string
}

// FuncMatch is one source-function-to-target-function match.
type FuncMatch struct {
	SrcFn string `json:"src_fn"`
	DstFn string `json:"dst_fn"`
	// Renamed marks a best match whose target function name differs from
	// the source name. Renamed matches are diagnostics only: the
	// verification pipeline resolves ℓ by name, so they never enter Lib.
	Renamed bool `json:"renamed,omitempty"`
	// Containment is the weighted fraction of source shingles present in
	// the target function; Jaccard the symmetric variant.
	Containment float64 `json:"containment"`
	Jaccard     float64 `json:"jaccard"`
	// Context is the callgraph-context signal (callee/caller neighborhood
	// similarity); Shape the CFG-shape signal.
	Context float64 `json:"context"`
	Shape   float64 `json:"shape"`
	// Score is the combined ranking score.
	Score float64 `json:"score"`
}

// Candidate is one ranked (T, ℓ, ep) tuple: a target program that appears
// to contain clones of the source's vulnerable functions, ready to be
// confirmed or refuted by the verification pipeline.
type Candidate struct {
	// Target is the index key of the matched program.
	Target string `json:"target"`
	// Score ranks the candidate: coverage times the mean matched-function
	// score.
	Score float64 `json:"score"`
	// Lib is the discovered shared function set ℓ — the name-preserving
	// matches — sorted.
	Lib []string `json:"lib"`
	// Ep echoes the source entry point when it is part of Lib.
	Ep string `json:"ep,omitempty"`
	// Coverage is the fraction of source vulnerable functions matched.
	Coverage float64 `json:"coverage"`
	// Funcs details every function match, in source Vuln order.
	Funcs []FuncMatch `json:"funcs"`
}

// Scan matches the source's vulnerable functions against every indexed
// target and returns ranked candidates. A target qualifies when at least
// one vulnerable function has a name-preserving match above MinScore and,
// if the source entry point is known, the entry point is among them.
// Candidates are ordered by descending score with the target key as the
// deterministic tie-break; any Workers count produces identical output.
func (ix *Index) Scan(src Source) ([]Candidate, error) {
	if src.Prog == nil {
		return nil, errors.New("clonedet: source has no program")
	}
	if len(src.Vuln) == 0 {
		return nil, errors.New("clonedet: source has no vulnerable functions")
	}
	sfp := ix.fingerprint(src.Prog)
	vuln := append([]string(nil), src.Vuln...)
	sort.Strings(vuln)
	for _, fn := range vuln {
		if sfp.byFn[fn] == nil {
			return nil, fmt.Errorf("clonedet: vulnerable function %q not in source program %s", fn, src.Prog.Name)
		}
	}
	if src.Ep != "" && sfp.byFn[src.Ep] == nil {
		return nil, fmt.Errorf("clonedet: entry point %q not in source program %s", src.Ep, src.Prog.Name)
	}

	results := make([]*Candidate, len(ix.targets))
	ix.parallel(len(ix.targets), func(i int) {
		results[i] = ix.matchTarget(sfp, vuln, src.Ep, ix.targets[i])
	})
	var out []Candidate
	for _, c := range results {
		if c != nil {
			out = append(out, *c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Target < out[j].Target
	})
	if ix.cfg.TopK > 0 && len(out) > ix.cfg.TopK {
		out = out[:ix.cfg.TopK]
	}
	ix.cfg.Metrics.observeScan(len(out))
	return out, nil
}

// matchTarget scores one target against the source's vulnerable functions,
// returning nil when the target does not qualify.
func (ix *Index) matchTarget(sfp *progFP, vuln []string, ep string, t *target) *Candidate {
	cand := &Candidate{Target: t.key}
	var scoreSum float64
	for _, fn := range vuln {
		s := sfp.byFn[fn]
		best, bestScore := ix.bestMatch(s, t)
		if best == nil || bestScore < ix.cfg.minScore() {
			continue
		}
		m := ix.matchDetail(s, best)
		if !m.Renamed {
			cand.Lib = append(cand.Lib, fn)
			scoreSum += m.Score
		}
		cand.Funcs = append(cand.Funcs, m)
	}
	if len(cand.Lib) == 0 {
		return nil
	}
	if ep != "" {
		found := false
		for _, fn := range cand.Lib {
			if fn == ep {
				found = true
				break
			}
		}
		if !found {
			// Without the entry point the pipeline has nothing to verify
			// against; the remaining matches alone cannot carry a crash.
			return nil
		}
		cand.Ep = ep
	}
	cand.Coverage = float64(len(cand.Lib)) / float64(len(vuln))
	cand.Score = cand.Coverage * (scoreSum / float64(len(cand.Lib)))
	return cand
}

// bestMatch finds the highest-scoring target function for one source
// function, preferring the name-preserving match when it ties the best
// score (propagated code usually keeps its symbols; a tie must not rank a
// coincidental twin above the real clone).
func (ix *Index) bestMatch(s *fnFP, t *target) (*fnFP, float64) {
	var best *fnFP
	var bestScore float64
	for _, d := range t.fp.fns {
		score := ix.score(s, d)
		switch {
		case best == nil || score > bestScore:
			best, bestScore = d, score
		case score == bestScore && d.name == s.name && best.name != s.name:
			best = d
		}
	}
	return best, bestScore
}

// score combines the three ranking signals for one function pair.
func (ix *Index) score(s, d *fnFP) float64 {
	containment, _ := ix.similarity(s.hashes, d.hashes)
	if containment == 0 {
		return 0
	}
	ctx := 0.5*ix.containOrVacuous(s.calleeU, d.calleeU) + 0.5*ix.containOrVacuous(s.callerU, d.callerU)
	return weightContainment*containment + weightContext*ctx + weightShape*shapeSim(s.shape, d.shape)
}

// matchDetail expands one accepted match into its reported form.
func (ix *Index) matchDetail(s, d *fnFP) FuncMatch {
	containment, jaccard := ix.similarity(s.hashes, d.hashes)
	return FuncMatch{
		SrcFn:       s.name,
		DstFn:       d.name,
		Renamed:     s.name != d.name,
		Containment: containment,
		Jaccard:     jaccard,
		Context:     0.5*ix.containOrVacuous(s.calleeU, d.calleeU) + 0.5*ix.containOrVacuous(s.callerU, d.callerU),
		Shape:       shapeSim(s.shape, d.shape),
		Score:       ix.score(s, d),
	}
}
