package solver_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"octopocs/internal/expr"
	"octopocs/internal/solver"
)

func mustSolve(t *testing.T, cs []*expr.Expr) solver.Model {
	t.Helper()
	var s solver.Solver
	m, err := s.Solve(cs)
	if err != nil {
		t.Fatalf("Solve() = %v, want model", err)
	}
	// Soundness: the model must satisfy every constraint.
	for _, c := range cs {
		v, ok := c.Eval(func(sym int) (uint64, bool) {
			b, present := m[sym]
			if !present {
				return 0, true // unconstrained default
			}
			return uint64(b), true
		})
		if !ok || v == 0 {
			t.Fatalf("model %v does not satisfy %v", m, c)
		}
	}
	return m
}

func wantUnsat(t *testing.T, cs []*expr.Expr) {
	t.Helper()
	var s solver.Solver
	if _, err := s.Solve(cs); !errors.Is(err, solver.ErrUnsat) {
		t.Fatalf("Solve() = %v, want ErrUnsat", err)
	}
}

func TestEmptySystem(t *testing.T) {
	m := mustSolve(t, nil)
	if len(m) != 0 {
		t.Errorf("model = %v, want empty", m)
	}
}

func TestConstantConstraints(t *testing.T) {
	mustSolve(t, []*expr.Expr{expr.Const(1), expr.Const(42)})
	wantUnsat(t, []*expr.Expr{expr.Const(1), expr.Const(0)})
}

func TestSingleByteEquality(t *testing.T) {
	c := expr.Bin(expr.OpEq, expr.Sym(2), expr.Const(0x41))
	m := mustSolve(t, []*expr.Expr{c})
	if m[2] != 0x41 {
		t.Errorf("m[2] = %#x, want 0x41", m[2])
	}
}

func TestWordEqualityAcrossBytes(t *testing.T) {
	// in[0] | in[1]<<8 == 0xBEEF
	word := expr.Bin(expr.OpOr,
		expr.Sym(0),
		expr.Bin(expr.OpShl, expr.Sym(1), expr.Const(8)))
	c := expr.Bin(expr.OpEq, word, expr.Const(0xBEEF))
	m := mustSolve(t, []*expr.Expr{c})
	if m[0] != 0xEF || m[1] != 0xBE {
		t.Errorf("m = %v, want [0]=0xEF [1]=0xBE", m)
	}
}

func TestRangeAndDisequality(t *testing.T) {
	cs := []*expr.Expr{
		expr.Bin(expr.OpLt, expr.Sym(0), expr.Const(10)), // in[0] < 10
		expr.Bin(expr.OpLt, expr.Const(7), expr.Sym(0)),  // in[0] > 7
		expr.Bin(expr.OpNe, expr.Sym(0), expr.Const(8)),  // in[0] != 8
	}
	m := mustSolve(t, cs)
	if m[0] != 9 {
		t.Errorf("m[0] = %d, want 9 (only value in (7,10)\\{8})", m[0])
	}
}

func TestUnsatRange(t *testing.T) {
	wantUnsat(t, []*expr.Expr{
		expr.Bin(expr.OpLt, expr.Sym(0), expr.Const(5)),
		expr.Bin(expr.OpLt, expr.Const(5), expr.Sym(0)),
	})
}

func TestArithmeticRelation(t *testing.T) {
	// in[0] + in[1] == 300 with in[0] == 250
	cs := []*expr.Expr{
		expr.Bin(expr.OpEq, expr.Bin(expr.OpAdd, expr.Sym(0), expr.Sym(1)), expr.Const(300)),
		expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(250)),
	}
	m := mustSolve(t, cs)
	if m[1] != 50 {
		t.Errorf("m[1] = %d, want 50", m[1])
	}
}

func TestMultiplication(t *testing.T) {
	// in[0] * in[1] == 221 = 13*17 (both prime)
	cs := []*expr.Expr{
		expr.Bin(expr.OpEq, expr.Bin(expr.OpMul, expr.Sym(0), expr.Sym(1)), expr.Const(221)),
		expr.Bin(expr.OpLt, expr.Sym(0), expr.Sym(1)), // order them
		expr.Bin(expr.OpNe, expr.Sym(0), expr.Const(1)),
	}
	m := mustSolve(t, cs)
	if m[0] != 13 || m[1] != 17 {
		t.Errorf("m = %v, want 13*17", m)
	}
}

func TestThreeSymbolSum(t *testing.T) {
	// in[0]+in[1]+in[2] == 600, each >= 190: forces values near 200.
	sum := expr.Bin(expr.OpAdd, expr.Bin(expr.OpAdd, expr.Sym(0), expr.Sym(1)), expr.Sym(2))
	cs := []*expr.Expr{
		expr.Bin(expr.OpEq, sum, expr.Const(600)),
		expr.Bin(expr.OpLe, expr.Const(190), expr.Sym(0)),
		expr.Bin(expr.OpLe, expr.Const(190), expr.Sym(1)),
		expr.Bin(expr.OpLe, expr.Const(190), expr.Sym(2)),
	}
	m := mustSolve(t, cs)
	total := int(m[0]) + int(m[1]) + int(m[2])
	if total != 600 {
		t.Errorf("sum = %d, want 600", total)
	}
}

func TestUnsatParity(t *testing.T) {
	// (in[0] & 1) == 0 and (in[0] & 1) == 1
	low := expr.Bin(expr.OpAnd, expr.Sym(0), expr.Const(1))
	wantUnsat(t, []*expr.Expr{
		expr.Bin(expr.OpEq, low, expr.Const(0)),
		expr.Bin(expr.OpEq, low, expr.Const(1)),
	})
}

func TestSharedSymbolChain(t *testing.T) {
	// A chain: in[i] == in[i+1] + 1 for i in 0..5, in[5] == 10.
	var cs []*expr.Expr
	for i := 0; i < 5; i++ {
		cs = append(cs, expr.Bin(expr.OpEq,
			expr.Sym(i),
			expr.Bin(expr.OpAdd, expr.Sym(i+1), expr.Const(1))))
	}
	cs = append(cs, expr.Bin(expr.OpEq, expr.Sym(5), expr.Const(10)))
	m := mustSolve(t, cs)
	for i := 0; i <= 5; i++ {
		if int(m[i]) != 15-i {
			t.Fatalf("m[%d] = %d, want %d", i, m[i], 15-i)
		}
	}
}

func TestSignedComparison(t *testing.T) {
	// As a signed byte-in-word, every byte value is positive, so
	// (in[0] <s 0) is unsat while (0 <=s in[0]) is trivially sat.
	wantUnsat(t, []*expr.Expr{
		expr.Bin(expr.OpSLt, expr.Sym(0), expr.Const(0)),
	})
	mustSolve(t, []*expr.Expr{
		expr.Bin(expr.OpSLe, expr.Const(0), expr.Sym(0)),
	})
}

func TestBudgetExhaustion(t *testing.T) {
	s := solver.Solver{Budget: 10}
	// Force more than 10 evaluations.
	var cs []*expr.Expr
	for i := 0; i < 8; i++ {
		cs = append(cs, expr.Bin(expr.OpLt, expr.Sym(i), expr.Const(200)))
	}
	_, err := s.Solve(cs)
	if !errors.Is(err, solver.ErrBudget) {
		t.Fatalf("Solve() = %v, want ErrBudget", err)
	}
}

func TestSat(t *testing.T) {
	var s solver.Solver
	ok, err := s.Sat([]*expr.Expr{expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(7))})
	if err != nil || !ok {
		t.Errorf("Sat = %v,%v want true,nil", ok, err)
	}
	ok, err = s.Sat([]*expr.Expr{expr.Const(0)})
	if err != nil || ok {
		t.Errorf("Sat = %v,%v want false,nil", ok, err)
	}
}

func TestModelFill(t *testing.T) {
	m := solver.Model{1: 0xAA, 3: 0xBB, 99: 0xCC}
	out := m.Fill(4, 0x00)
	want := []byte{0x00, 0xAA, 0x00, 0xBB}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Fill = %v, want %v", out, want)
		}
	}
}

// Property: systems generated from a known assignment are satisfiable, and
// returned models satisfy all constraints.
func TestSolverCompletenessOnGeneratedSystems(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nsyms := 1 + r.Intn(6)
		secret := make([]byte, nsyms)
		for i := range secret {
			secret[i] = byte(r.Intn(256))
		}
		// Build constraints all true under secret.
		var cs []*expr.Expr
		ncons := 1 + r.Intn(6)
		for i := 0; i < ncons; i++ {
			a, b := r.Intn(nsyms), r.Intn(nsyms)
			sa, sb := expr.Sym(a), expr.Sym(b)
			switch r.Intn(4) {
			case 0: // sym == its value
				cs = append(cs, expr.Bin(expr.OpEq, sa, expr.Const(uint64(secret[a]))))
			case 1: // sum relation
				sum := uint64(secret[a]) + uint64(secret[b])
				cs = append(cs, expr.Bin(expr.OpEq, expr.Bin(expr.OpAdd, sa, sb), expr.Const(sum)))
			case 2: // xor relation
				x := uint64(secret[a]) ^ uint64(secret[b])
				cs = append(cs, expr.Bin(expr.OpEq, expr.Bin(expr.OpXor, sa, sb), expr.Const(x)))
			case 3: // range facts
				cs = append(cs, expr.Bin(expr.OpLe, sa, expr.Const(uint64(secret[a]))))
				cs = append(cs, expr.Bin(expr.OpLe, expr.Const(uint64(secret[a])), sa))
			}
		}
		var s solver.Solver
		m, err := s.Solve(cs)
		if err != nil {
			return false
		}
		for _, c := range cs {
			v, ok := c.Eval(func(sym int) (uint64, bool) {
				if b, present := m[sym]; present {
					return uint64(b), true
				}
				return 0, true
			})
			if !ok || v == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a pinned contradiction is always detected.
func TestSolverSoundnessOnContradictions(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sym := expr.Sym(r.Intn(4))
		v := uint64(r.Intn(256))
		w := (v + 1 + uint64(r.Intn(254))) % 256
		cs := []*expr.Expr{
			expr.Bin(expr.OpEq, sym, expr.Const(v)),
			expr.Bin(expr.OpEq, sym, expr.Const(w)),
		}
		var s solver.Solver
		_, err := s.Solve(cs)
		return errors.Is(err, solver.ErrUnsat)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestComplementPairShortCircuits pins the syntactic-complement scan: a set
// holding a constraint and its exact negation must be refuted without any
// search, even when the pair sits behind unrelated wide-domain symbols that
// would make an enumerative refutation cost their full cross product. The
// tiny budget fails the test if the scan ever regresses to search.
func TestComplementPairShortCircuits(t *testing.T) {
	congruence := func(i int, m uint64) *expr.Expr {
		sum := expr.Bin(expr.OpAdd,
			expr.Bin(expr.OpMul, expr.Sym(2*i), expr.Const(17)),
			expr.Bin(expr.OpMul, expr.Sym(2*i+1), expr.Const(31)))
		return expr.Bin(expr.OpEq, expr.Bin(expr.OpAnd, sum, expr.Const(63)), expr.Const(m))
	}
	cs := []*expr.Expr{
		congruence(0, 3),  // unrelated satisfiable pair (in[0], in[1])
		congruence(1, 14), // unrelated satisfiable pair (in[2], in[3])
		congruence(2, 25),
		expr.Not(congruence(2, 25)), // direct contradiction on (in[4], in[5])
	}
	s := solver.Solver{Budget: 1_000}
	sat, err := s.Sat(cs)
	if err != nil {
		t.Fatalf("Sat() error: %v (complement scan should decide before the budget matters)", err)
	}
	if sat {
		t.Fatal("Sat() = true for a set containing c and ¬c")
	}
	// The same set without the contradiction stays satisfiable.
	s = solver.Solver{}
	sat, err = s.Sat(cs[:3])
	if err != nil || !sat {
		t.Fatalf("Sat(without contradiction) = %v, %v; want true", sat, err)
	}
}
