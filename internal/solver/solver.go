// Package solver decides satisfiability of byte-symbol constraint systems
// and produces concrete models: the decision procedure behind every branch
// feasibility check of phase P2 (guiding-input generation) and the final
// constraint solving of phase P3.3 that materializes poc'. It is the
// stand-in for the SMT solving that angr delegates to Z3 in the original
// OCTOPOCS implementation.
//
// The algorithm is a classic finite-domain constraint solver: every symbol
// is a byte with a 256-value domain; constraints whose support has at most
// two unassigned symbols are filtered by enumeration; the remainder is
// handled by backtracking search with smallest-domain-first variable
// selection. Work is bounded by an evaluation budget so callers can treat
// "too hard" separately from "unsatisfiable". Sat verdicts can additionally
// be memoized in a sharded LRU keyed by canonical constraint-set identity
// (cache.go), which is what makes repeated feasibility checks across
// sibling frontier states and across service jobs cheap.
//
// Concurrency: a Solver value is stateless between calls — each Solve
// builds private search state — so one Solver may be used from many
// goroutines, and the attached Metrics (atomic counters) and Cache
// (sharded, mutex-guarded) are safe to share. Solutions are deterministic:
// the search enumerates domains in ascending order, so the same constraint
// set always yields the same model.
package solver

import (
	"errors"
	"fmt"
	"math/bits"

	"octopocs/internal/expr"
	"octopocs/internal/faultinject"
	"octopocs/internal/journal"
)

// Errors returned by Solve.
var (
	// ErrUnsat means the constraint system has no model.
	ErrUnsat = errors.New("solver: unsatisfiable")
	// ErrBudget means the solver exhausted its work budget before
	// reaching a verdict.
	ErrBudget = errors.New("solver: work budget exhausted")
)

// DefaultBudget is the default number of constraint evaluations.
const DefaultBudget = 8_000_000

// Model assigns a concrete byte to each constrained symbol. Symbols not
// present were unconstrained.
type Model map[int]byte

// Fill materializes an input of length n from the model, defaulting
// unconstrained bytes to fill.
func (m Model) Fill(n int, fill byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = fill
	}
	for sym, v := range m {
		if sym >= 0 && sym < n {
			out[sym] = v
		}
	}
	return out
}

// Solver holds tuning knobs. The zero value uses defaults.
type Solver struct {
	// Budget bounds the number of constraint evaluations; DefaultBudget
	// if zero.
	Budget int64
	// Metrics receives per-Solve outcome counters; may be nil.
	Metrics *Metrics
	// Cache, when non-nil, memoizes Sat verdicts by canonical constraint-set
	// key. Solve is never cached — its callers need a model, and models are
	// not canonical. Sharing one Cache between solvers (and between jobs) is
	// safe and is the intended configuration.
	Cache *Cache
	// Faults, when non-nil, injects scheduled solver faults: transient Sat
	// and Solve failures and cache-bypass degradations. Nil in production.
	Faults *faultinject.Injector
	// Journal, when non-nil and verbose, receives per-call SAT-memo and
	// complement-short-circuit events. Nil (no-op) in production.
	Journal *journal.Recorder
}

// domain is a 256-bit set of candidate byte values.
type domain [4]uint64

func fullDomain() domain {
	return domain{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

func (d *domain) has(v byte) bool { return d[v>>6]&(1<<(v&63)) != 0 }
func (d *domain) remove(v byte)   { d[v>>6] &^= 1 << (v & 63) }
func (d *domain) count() int {
	return bits.OnesCount64(d[0]) + bits.OnesCount64(d[1]) + bits.OnesCount64(d[2]) + bits.OnesCount64(d[3])
}

// first returns the smallest value in the domain; ok is false when empty.
func (d *domain) first() (byte, bool) {
	for w := 0; w < 4; w++ {
		if d[w] != 0 {
			return byte(w*64 + bits.TrailingZeros64(d[w])), true
		}
	}
	return 0, false
}

// values iterates the domain in ascending order.
func (d *domain) values(yield func(byte) bool) {
	for w := 0; w < 4; w++ {
		word := d[w]
		for word != 0 {
			v := byte(w*64 + bits.TrailingZeros64(word))
			if !yield(v) {
				return
			}
			word &= word - 1
		}
	}
}

// state is the mutable search state.
type state struct {
	constraints []*expr.Expr
	support     [][]int // per-constraint sorted syms
	symIdx      map[int]int
	syms        []int // all syms, sorted by first appearance
	domains     []domain
	assigned    []bool
	values      []byte
	// assignedSym/valueSym mirror assigned/values indexed directly by
	// symbol id, so expression evaluation avoids map lookups on the hot
	// path.
	assignedSym []bool
	valueSym    []byte
	// watch[i] lists constraint indices mentioning symbol index i.
	watch  [][]int
	budget int64
}

// assign sets symbol index si to v, updating both views.
func (st *state) assign(si int, v byte) {
	st.assigned[si] = true
	st.values[si] = v
	sym := st.syms[si]
	st.assignedSym[sym] = true
	st.valueSym[sym] = v
}

// unassign clears symbol index si in both views.
func (st *state) unassign(si int) {
	st.assigned[si] = false
	st.assignedSym[st.syms[si]] = false
}

// Solve returns a model satisfying every constraint (each must evaluate to
// a non-zero value), ErrUnsat, or ErrBudget.
func (s *Solver) Solve(constraints []*expr.Expr) (Model, error) {
	if err := s.Faults.Err(faultinject.SolverTimeout); err != nil {
		s.Metrics.observe(err)
		return nil, err
	}
	model, err := s.solve(constraints)
	s.Metrics.observe(err)
	return model, err
}

func (s *Solver) solve(constraints []*expr.Expr) (Model, error) {
	st := &state{
		symIdx: make(map[int]int),
		budget: s.Budget,
	}
	if st.budget <= 0 {
		st.budget = DefaultBudget
	}

	// Constant constraints decide immediately; others register.
	for _, c := range decompose(constraints) {
		if v, ok := c.IsConst(); ok {
			if v == 0 {
				return nil, ErrUnsat
			}
			continue
		}
		st.constraints = append(st.constraints, c)
		st.support = append(st.support, c.Syms())
	}
	// Directly contradictory pairs — a constraint alongside its exact
	// negation — are routine in backtracking sets: re-executing a branch
	// under an alternative pin re-records the direction the pin already
	// excludes. Arc-consistency filters each constraint of such a pair
	// separately and sees supports for both, so refuting the set through
	// search costs the full cross product of every unrelated domain. A
	// linear syntactic scan decides these for free. Not is involutive on
	// comparison nodes, so the complement of a branch constraint is
	// structurally canonical; fingerprints prefilter, Equal confirms.
	byFp := make(map[uint64][]*expr.Expr, len(st.constraints))
	for _, c := range st.constraints {
		byFp[c.Fingerprint()] = append(byFp[c.Fingerprint()], c)
	}
	for _, c := range st.constraints {
		neg := expr.Not(c)
		for _, o := range byFp[neg.Fingerprint()] {
			if neg.Equal(o) {
				if s.Journal.Verbose() {
					s.Journal.Emit(journal.EvSolverComplement, journal.Attrs{"constraints": len(st.constraints)})
				}
				return nil, ErrUnsat
			}
		}
	}

	for _, sup := range st.support {
		for _, sym := range sup {
			if _, ok := st.symIdx[sym]; !ok {
				st.symIdx[sym] = len(st.syms)
				st.syms = append(st.syms, sym)
			}
		}
	}
	n := len(st.syms)
	maxSym := -1
	for _, sym := range st.syms {
		if sym > maxSym {
			maxSym = sym
		}
	}
	st.assignedSym = make([]bool, maxSym+1)
	st.valueSym = make([]byte, maxSym+1)
	st.domains = make([]domain, n)
	for i := range st.domains {
		st.domains[i] = fullDomain()
	}
	st.assigned = make([]bool, n)
	st.values = make([]byte, n)
	st.watch = make([][]int, n)
	for ci, sup := range st.support {
		for _, sym := range sup {
			si := st.symIdx[sym]
			st.watch[si] = append(st.watch[si], ci)
		}
	}

	// Initial propagation over all constraints.
	if err := st.propagateAll(); err != nil {
		return nil, err
	}
	if err := st.search(); err != nil {
		return nil, err
	}

	model := make(Model, n)
	for i, sym := range st.syms {
		model[sym] = st.values[i]
	}
	return model, nil
}

// lookup is the partial-assignment view used by expr.Eval. It reads the
// symbol-indexed mirror arrays: no map access on the hot path.
func (st *state) lookup(sym int) (uint64, bool) {
	if sym < 0 || sym >= len(st.assignedSym) || !st.assignedSym[sym] {
		return 0, false
	}
	return uint64(st.valueSym[sym]), true
}

// unassignedIn returns the indices (into st.syms) of unassigned symbols in
// the constraint's support.
func (st *state) unassignedIn(ci int) []int {
	var out []int
	for _, sym := range st.support[ci] {
		si := st.symIdx[sym]
		if !st.assigned[si] {
			out = append(out, si)
		}
	}
	return out
}

// checkConstraint evaluates constraint ci under the current assignment.
// Returns (satisfied, decidable).
func (st *state) checkConstraint(ci int) (bool, bool, error) {
	st.budget--
	if st.budget < 0 {
		return false, false, ErrBudget
	}
	v, ok := st.constraints[ci].Eval(st.lookup)
	if !ok {
		return false, false, nil
	}
	return v != 0, true, nil
}

// propagateAll runs constraint filtering to fixpoint over every constraint.
func (st *state) propagateAll() error {
	queue := make([]int, len(st.constraints))
	for i := range queue {
		queue[i] = i
	}
	return st.propagate(queue)
}

// propagate filters domains using the queued constraints, enqueueing
// neighbors of narrowed symbols, until fixpoint or wipeout.
func (st *state) propagate(queue []int) error {
	inQueue := make(map[int]bool, len(queue))
	for _, ci := range queue {
		inQueue[ci] = true
	}
	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		delete(inQueue, ci)

		narrowed, err := st.filter(ci)
		if err != nil {
			return err
		}
		for _, si := range narrowed {
			if st.domains[si].count() == 0 {
				return ErrUnsat
			}
			// Singleton domains become assignments.
			if !st.assigned[si] && st.domains[si].count() == 1 {
				v, _ := st.domains[si].first()
				st.assign(si, v)
			}
			for _, next := range st.watch[si] {
				if !inQueue[next] {
					inQueue[next] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return nil
}

// filter narrows the domains of the constraint's unassigned symbols and
// returns the narrowed symbol indices. Only constraints with at most two
// unassigned symbols are enumerated; larger supports wait for the search to
// assign more symbols. Fully assigned constraints act as checks.
func (st *state) filter(ci int) ([]int, error) {
	un := st.unassignedIn(ci)
	switch len(un) {
	case 0:
		sat, decidable, err := st.checkConstraint(ci)
		if err != nil {
			return nil, err
		}
		if decidable && !sat {
			return nil, ErrUnsat
		}
		return nil, nil

	case 1:
		si := un[0]
		var narrowed bool
		var remove []byte
		d := st.domains[si]
		var iterErr error
		d.values(func(v byte) bool {
			st.assign(si, v)
			sat, decidable, err := st.checkConstraint(ci)
			st.unassign(si)
			if err != nil {
				iterErr = err
				return false
			}
			if decidable && !sat {
				remove = append(remove, v)
				narrowed = true
			}
			return true
		})
		if iterErr != nil {
			return nil, iterErr
		}
		for _, v := range remove {
			st.domains[si].remove(v)
		}
		if narrowed {
			return []int{si}, nil
		}
		return nil, nil

	case 2:
		return st.filterPair(ci, un[0], un[1])

	default:
		return nil, nil
	}
}

// filterPair removes values of the two unassigned symbols that participate
// in no satisfying pair. Each side is scanned with early exit: a value is
// kept as soon as one support is found, so satisfiable-everywhere
// constraints cost O(|domain|) while genuinely tight ones still get full
// pruning.
func (st *state) filterPair(ci, a, b int) ([]int, error) {
	if int64(st.domains[a].count())*int64(st.domains[b].count()) > st.budget {
		return nil, nil
	}
	supported := func(x, y int) (domain, error) {
		var ok domain
		var iterErr error
		st.domains[x].values(func(vx byte) bool {
			st.assign(x, vx)
			st.domains[y].values(func(vy byte) bool {
				st.assign(y, vy)
				sat, decidable, err := st.checkConstraint(ci)
				st.unassign(y)
				if err != nil {
					iterErr = err
					return false
				}
				if !decidable || sat {
					ok[vx>>6] |= 1 << (vx & 63)
					return false // first support suffices
				}
				return true
			})
			st.unassign(x)
			return iterErr == nil
		})
		return ok, iterErr
	}
	okA, err := supported(a, b)
	if err != nil {
		return nil, err
	}
	okB, err := supported(b, a)
	if err != nil {
		return nil, err
	}
	var narrowed []int
	if intersect(&st.domains[a], &okA) {
		narrowed = append(narrowed, a)
	}
	if intersect(&st.domains[b], &okB) {
		narrowed = append(narrowed, b)
	}
	return narrowed, nil
}

// intersect ands ok into d and reports whether d changed.
func intersect(d, ok *domain) bool {
	changed := false
	for w := 0; w < 4; w++ {
		nv := d[w] & ok[w]
		if nv != d[w] {
			changed = true
			d[w] = nv
		}
	}
	return changed
}

// search assigns remaining symbols by backtracking.
func (st *state) search() error {
	si := st.pickVar()
	if si < 0 {
		return st.verifyAll()
	}

	saveDomains := make([]domain, len(st.domains))
	saveAssigned := make([]bool, len(st.assigned))
	saveValues := make([]byte, len(st.values))
	saveAssignedSym := make([]bool, len(st.assignedSym))
	saveValueSym := make([]byte, len(st.valueSym))

	var lastErr error = ErrUnsat
	tryVal := func(v byte) (bool, error) {
		copy(saveDomains, st.domains)
		copy(saveAssigned, st.assigned)
		copy(saveValues, st.values)
		copy(saveAssignedSym, st.assignedSym)
		copy(saveValueSym, st.valueSym)

		st.assign(si, v)
		err := st.propagate(append([]int(nil), st.watch[si]...))
		if err == nil {
			err = st.search()
		}
		if err == nil {
			return true, nil
		}
		copy(st.domains, saveDomains)
		copy(st.assigned, saveAssigned)
		copy(st.values, saveValues)
		copy(st.assignedSym, saveAssignedSym)
		copy(st.valueSym, saveValueSym)
		if errors.Is(err, ErrBudget) {
			return false, err
		}
		lastErr = err
		return false, nil
	}

	var done bool
	var fatal error
	st.domains[si].values(func(v byte) bool {
		ok, err := tryVal(v)
		if err != nil {
			fatal = err
			return false
		}
		done = ok
		return !ok
	})
	if fatal != nil {
		return fatal
	}
	if done {
		return nil
	}
	return lastErr
}

// pickVar chooses the unassigned symbol with the smallest domain, or -1.
func (st *state) pickVar() int {
	best, bestCount := -1, 257
	for si := range st.syms {
		if st.assigned[si] {
			continue
		}
		if c := st.domains[si].count(); c < bestCount {
			best, bestCount = si, c
		}
	}
	return best
}

// verifyAll re-checks every constraint under the now-total assignment.
func (st *state) verifyAll() error {
	for ci := range st.constraints {
		sat, decidable, err := st.checkConstraint(ci)
		if err != nil {
			return err
		}
		if !decidable || !sat {
			return ErrUnsat
		}
	}
	return nil
}

// Sat reports whether the constraints are satisfiable without returning a
// model. The error distinguishes budget exhaustion. When a Cache is
// attached, the verdict is served from (and recorded into) it; only
// definite sat/unsat answers are memoized, so cached and fresh verdicts
// always agree for solvers sharing a budget.
func (s *Solver) Sat(constraints []*expr.Expr) (bool, error) {
	if err := s.Faults.Err(faultinject.SolverSat); err != nil {
		return false, fmt.Errorf("sat check: %w", err)
	}
	// An injected cache fault degrades this one check to uncached solving:
	// cached and fresh verdicts are always identical, so only the work
	// changes, never the answer.
	cache := s.Cache
	if cache != nil && s.Faults.Fire(faultinject.SolverCache) {
		cache = nil
	}
	var key CacheKey
	if cache != nil {
		key = SatKey(constraints)
		if sat, ok := cache.Lookup(key); ok {
			s.Metrics.observeCache(true)
			if s.Journal.Verbose() {
				s.Journal.Emit(journal.EvSolverSatCache, journal.Attrs{"hit": true, "sat": sat})
			}
			return sat, nil
		}
		s.Metrics.observeCache(false)
		if s.Journal.Verbose() {
			s.Journal.Emit(journal.EvSolverSatCache, journal.Attrs{"hit": false})
		}
	}
	_, err := s.Solve(constraints)
	if err == nil {
		cache.Store(key, true)
		return true, nil
	}
	if errors.Is(err, ErrUnsat) {
		cache.Store(key, false)
		return false, nil
	}
	return false, fmt.Errorf("sat check: %w", err)
}
