package solver

import (
	"container/list"
	"sync"
	"sync/atomic"

	"octopocs/internal/expr"
)

// DefaultCacheEntries is the default satisfiability-cache capacity; sized
// for the constraint-set churn of one corpus-wide verification sweep.
const DefaultCacheEntries = 4096

// cacheShards is the number of independently locked cache segments. Sixteen
// keeps lock contention negligible for the worker counts the symbolic
// frontier runs (bounded by GOMAXPROCS) without wasting memory on
// per-shard bookkeeping.
const cacheShards = 16

// CacheKey is the canonical 128-bit identity of a constraint set under
// satisfiability: the per-constraint structural fingerprints, sorted and
// deduplicated, mixed through two independent 64-bit lanes. Sorting and
// deduplication are sound because Sat decides a conjunction, and
// conjunction is commutative and idempotent: reordering constraints or
// asserting one twice cannot change the verdict. The 128-bit width makes
// accidental collisions (the only kind — every expression is built by the
// executor from program text, never from attacker-chosen structures)
// vanishingly unlikely at cache-lifetime scales.
type CacheKey [2]uint64

// SatKey canonicalizes a constraint set into its cache key.
func SatKey(constraints []*expr.Expr) CacheKey {
	fps := make([]uint64, len(constraints))
	for i, c := range constraints {
		fps[i] = c.Fingerprint()
	}
	// Insertion sort: constraint sets are small and mostly sorted between
	// consecutive checks on the same path.
	for i := 1; i < len(fps); i++ {
		for j := i; j > 0 && fps[j] < fps[j-1]; j-- {
			fps[j], fps[j-1] = fps[j-1], fps[j]
		}
	}
	// Two FNV-1a lanes with distinct offset bases over the deduplicated
	// sequence; sortedness makes the key order-insensitive, the skip makes
	// it multiplicity-insensitive.
	const (
		fnvPrime = 1099511628211
		offsetA  = 14695981039346656037
		offsetB  = 0x6c62272e07bb0142
	)
	a, b := uint64(offsetA), uint64(offsetB)
	var prev uint64
	for i, fp := range fps {
		if i > 0 && fp == prev {
			continue
		}
		prev = fp
		for s := 0; s < 64; s += 8 {
			byteVal := (fp >> s) & 0xFF
			a = (a ^ byteVal) * fnvPrime
			b = (b ^ byteVal) * fnvPrime
		}
		b = fpMixLane(b)
	}
	return CacheKey{a, b}
}

// fpMixLane decorrelates the second FNV lane from the first so the two
// halves of the key fail independently.
func fpMixLane(x uint64) uint64 {
	x ^= x >> 29
	x *= 0xff51afd7ed558ccd
	x ^= x >> 32
	return x
}

// CacheStats is a point-in-time snapshot of the cache accounting.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// HitRate returns hits / (hits + misses), or 0 when the cache is unused.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache memoizes satisfiability verdicts across Sat calls. Keys are
// canonical constraint-set identities (see CacheKey), values the definite
// verdicts: only sat/unsat results are stored, never budget exhaustion, so
// a cached answer always equals what a fresh solve within budget would
// return. The structure is a sharded LRU — each shard a mutex-guarded
// list.List plus index map, the same shape as the service's phase-artifact
// cache, split sixteen ways because Sat checks are issued from every
// frontier worker on the branch-decision hot path.
//
// Concurrency: safe for unrestricted concurrent use; a nil *Cache is a
// valid no-op (every lookup misses, stores are dropped).
type Cache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheShard struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[CacheKey]*list.Element
}

type cacheEntry struct {
	key CacheKey
	sat bool
}

// NewCache returns a cache holding at most entries verdicts in total
// (DefaultCacheEntries when entries <= 0), spread across the shards.
func NewCache(entries int) *Cache {
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	per := (entries + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{max: per, ll: list.New(), items: make(map[CacheKey]*list.Element)}
	}
	return c
}

func (c *Cache) shard(key CacheKey) *cacheShard {
	return &c.shards[key[0]%cacheShards]
}

// Lookup returns the cached verdict for key, if present.
func (c *Cache) Lookup(key CacheKey) (sat, ok bool) {
	if c == nil {
		return false, false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if ok {
		sh.ll.MoveToFront(el)
		sat = el.Value.(*cacheEntry).sat
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return sat, ok
}

// Store records a definite verdict for key, evicting the least recently
// used entry of the shard when full.
func (c *Cache) Store(key CacheKey, sat bool) {
	if c == nil {
		return
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value.(*cacheEntry).sat = sat
		sh.ll.MoveToFront(el)
		return
	}
	sh.items[key] = sh.ll.PushFront(&cacheEntry{key: key, sat: sat})
	if sh.ll.Len() > sh.max {
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.items, back.Value.(*cacheEntry).key)
	}
}

// Stats snapshots the cache accounting.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	entries := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += sh.ll.Len()
		sh.mu.Unlock()
	}
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: entries}
}
