package solver

import "octopocs/internal/expr"

// decompose rewrites constraints into equivalent conjunctions of simpler
// ones before solving. The important case is word equality over
// concatenated input bytes — Eq(b0 | b1<<8 | ..., C) — produced whenever a
// parser compares a multi-byte load against a magic number: it splits into
// independent per-byte equalities, which propagation then solves without
// search.
//
// Rewrites (x is any expression, c/k constants):
//
//	Eq(Or(a,b), c)  → Eq(a, c&maskA), Eq(b, c&maskB)   when masks disjoint
//	                  (and UNSAT when c has bits outside maskA|maskB)
//	Eq(Shl(a,k), c) → Eq(a, c>>k)     (UNSAT when c has low bits set)
//	Eq(Add(a,k), c) → Eq(a, c-k)
//	Eq(Xor(a,k), c) → Eq(a, c^k)
func decompose(cs []*expr.Expr) []*expr.Expr {
	out := make([]*expr.Expr, 0, len(cs))
	for _, c := range cs {
		out = appendDecomposed(out, c)
	}
	return out
}

func appendDecomposed(out []*expr.Expr, c *expr.Expr) []*expr.Expr {
	if c.Op != expr.OpEq {
		return append(out, c)
	}
	lhs, rhs := c.X, c.Y
	cv, ok := rhs.IsConst()
	if !ok {
		return append(out, c)
	}
	switch lhs.Op {
	case expr.OpOr:
		ma, okA := lhs.X.Mask()
		mb, okB := lhs.Y.Mask()
		if okA && okB && ma&mb == 0 {
			if cv&^(ma|mb) != 0 {
				return append(out, expr.Zero) // impossible
			}
			out = appendDecomposed(out, expr.Bin(expr.OpEq, lhs.X, expr.Const(cv&ma)))
			return appendDecomposed(out, expr.Bin(expr.OpEq, lhs.Y, expr.Const(cv&mb)))
		}
	case expr.OpShl:
		if k, ok := lhs.Y.IsConst(); ok && k < 64 {
			if cv&((1<<k)-1) != 0 {
				return append(out, expr.Zero)
			}
			if m, ok := lhs.X.Mask(); ok && m<<k>>k == m {
				return appendDecomposed(out, expr.Bin(expr.OpEq, lhs.X, expr.Const(cv>>k)))
			}
		}
	case expr.OpAdd:
		if k, ok := lhs.Y.IsConst(); ok {
			return appendDecomposed(out, expr.Bin(expr.OpEq, lhs.X, expr.Const(cv-k)))
		}
	case expr.OpXor:
		if k, ok := lhs.Y.IsConst(); ok {
			return appendDecomposed(out, expr.Bin(expr.OpEq, lhs.X, expr.Const(cv^k)))
		}
	}
	return append(out, c)
}
