package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"octopocs/internal/expr"
)

func TestDecomposeWordEquality(t *testing.T) {
	// in0 | in1<<8 | in2<<16 == 0x00CCBBAA must split into three byte
	// equalities.
	word := expr.Bin(expr.OpOr,
		expr.Bin(expr.OpOr,
			expr.Sym(0),
			expr.Bin(expr.OpShl, expr.Sym(1), expr.Const(8))),
		expr.Bin(expr.OpShl, expr.Sym(2), expr.Const(16)))
	cs := decompose([]*expr.Expr{expr.Bin(expr.OpEq, word, expr.Const(0xCCBBAA))})
	if len(cs) != 3 {
		t.Fatalf("decomposed into %d constraints, want 3: %v", len(cs), cs)
	}
	for _, c := range cs {
		if len(c.Syms()) != 1 {
			t.Errorf("constraint %v not single-symbol", c)
		}
	}
}

func TestDecomposeDetectsImpossibleBits(t *testing.T) {
	// Bits outside the representable mask make the equality impossible.
	word := expr.Bin(expr.OpOr, expr.Sym(0), expr.Bin(expr.OpShl, expr.Sym(1), expr.Const(8)))
	cs := decompose([]*expr.Expr{expr.Bin(expr.OpEq, word, expr.Const(0x1_0000))})
	if len(cs) != 1 {
		t.Fatalf("constraints = %v", cs)
	}
	if v, ok := cs[0].IsConst(); !ok || v != 0 {
		t.Errorf("impossible equality should fold to constant 0, got %v", cs[0])
	}
}

func TestDecomposeShiftLowBits(t *testing.T) {
	// (in0 << 8) == 0x1234 is impossible: low bits set.
	c := expr.Bin(expr.OpEq, expr.Bin(expr.OpShl, expr.Sym(0), expr.Const(8)), expr.Const(0x1234))
	cs := decompose([]*expr.Expr{c})
	if v, ok := cs[0].IsConst(); !ok || v != 0 {
		t.Errorf("want constant-0, got %v", cs[0])
	}
	// (in0 << 8) == 0x1200 pins in0 == 0x12.
	c = expr.Bin(expr.OpEq, expr.Bin(expr.OpShl, expr.Sym(0), expr.Const(8)), expr.Const(0x1200))
	cs = decompose([]*expr.Expr{c})
	want := expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(0x12))
	if len(cs) != 1 || !cs[0].Equal(want) {
		t.Errorf("got %v, want %v", cs, want)
	}
}

func TestDecomposeAddXor(t *testing.T) {
	cs := decompose([]*expr.Expr{
		expr.Bin(expr.OpEq, expr.Bin(expr.OpAdd, expr.Sym(0), expr.Const(5)), expr.Const(12)),
		expr.Bin(expr.OpEq, expr.Bin(expr.OpXor, expr.Sym(1), expr.Const(0xF0)), expr.Const(0xFF)),
	})
	if !cs[0].Equal(expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(7))) {
		t.Errorf("add inversion: %v", cs[0])
	}
	if !cs[1].Equal(expr.Bin(expr.OpEq, expr.Sym(1), expr.Const(0x0F))) {
		t.Errorf("xor inversion: %v", cs[1])
	}
}

func TestDecomposeLeavesOthersAlone(t *testing.T) {
	keep := []*expr.Expr{
		expr.Bin(expr.OpLt, expr.Sym(0), expr.Const(9)),
		expr.Bin(expr.OpNe, expr.Sym(0), expr.Sym(1)),
		expr.Bin(expr.OpEq, expr.Sym(0), expr.Sym(1)), // rhs not const
	}
	cs := decompose(keep)
	if len(cs) != len(keep) {
		t.Fatalf("constraints = %v", cs)
	}
	for i := range keep {
		if cs[i] != keep[i] {
			t.Errorf("constraint %d was rewritten: %v", i, cs[i])
		}
	}
}

// Property: decomposition preserves satisfaction for every assignment.
func TestDecomposeEquisatisfiable(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random word shape over ≤4 bytes compared to a random constant.
		var word *expr.Expr
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			part := expr.Bin(expr.OpShl, expr.Sym(i), expr.Const(uint64(8*i)))
			if word == nil {
				word = part
			} else {
				word = expr.Bin(expr.OpOr, word, part)
			}
		}
		c := expr.Bin(expr.OpEq, word, expr.Const(rng.Uint64()>>(64-8*n)))
		cs := decompose([]*expr.Expr{c})

		input := make([]byte, 4)
		rng.Read(input)
		orig := c.EvalConcrete(input) != 0
		all := true
		for _, d := range cs {
			all = all && d.EvalConcrete(input) != 0
		}
		return orig == all
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaskReasoning(t *testing.T) {
	tests := []struct {
		e    *expr.Expr
		want uint64
		ok   bool
	}{
		{expr.Sym(0), 0xFF, true},
		{expr.Const(0x1234), 0x1234, true},
		{expr.Bin(expr.OpShl, expr.Sym(0), expr.Const(8)), 0xFF00, true},
		{expr.Bin(expr.OpOr, expr.Sym(0), expr.Bin(expr.OpShl, expr.Sym(1), expr.Const(8))), 0xFFFF, true},
		{expr.Bin(expr.OpAnd, expr.Sym(0), expr.Const(0x0F)), 0x0F, true},
		{expr.Bin(expr.OpEq, expr.Sym(0), expr.Sym(1)), 1, true},
		// Sums of bounded values get a power-of-two bound.
		{expr.Bin(expr.OpAdd, expr.Sym(0), expr.Sym(1)), 0x1FF, true},
	}
	for _, tt := range tests {
		got, ok := tt.e.Mask()
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("Mask(%v) = %#x,%v want %#x,%v", tt.e, got, ok, tt.want, tt.ok)
		}
	}
}
