package solver_test

import (
	"errors"
	"testing"

	"octopocs/internal/expr"
	"octopocs/internal/faultinject"
	"octopocs/internal/solver"
)

func injector(t *testing.T, schedule string) *faultinject.Injector {
	t.Helper()
	sch, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", schedule, err)
	}
	return faultinject.New(sch)
}

// TestSatTransientFault checks an injected solver.sat fault surfaces as a
// classified transient error and that the very next call — the retry —
// produces the fault-free verdict.
func TestSatTransientFault(t *testing.T) {
	cs := []*expr.Expr{expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(7))}
	s := solver.Solver{Faults: injector(t, "solver.sat:nth=1")}
	if _, err := s.Sat(cs); !faultinject.IsTransient(err) {
		t.Fatalf("first Sat err = %v, want transient fault", err)
	}
	ok, err := s.Sat(cs)
	if err != nil || !ok {
		t.Fatalf("retried Sat = %v, %v; want true, nil", ok, err)
	}
}

// TestSolveTransientFault checks an injected solver.timeout fault fails
// Solve transiently without corrupting later calls.
func TestSolveTransientFault(t *testing.T) {
	cs := []*expr.Expr{expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(7))}
	s := solver.Solver{Faults: injector(t, "solver.timeout:nth=1")}
	if _, err := s.Solve(cs); !faultinject.IsTransient(err) {
		t.Fatalf("first Solve err = %v, want transient fault", err)
	}
	m, err := s.Solve(cs)
	if err != nil || m[0] != 7 {
		t.Fatalf("retried Solve = %v, %v; want model with sym0=7", m, err)
	}
	// The real error taxonomy is untouched: unsat is still unsat, not a
	// fault.
	unsat := []*expr.Expr{
		expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(1)),
		expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(2)),
	}
	if _, err := s.Solve(unsat); !errors.Is(err, solver.ErrUnsat) || faultinject.IsTransient(err) {
		t.Fatalf("unsat Solve err = %v, want plain ErrUnsat", err)
	}
}

// TestCacheBypassDegradation checks an injected solver.cache fault makes
// Sat solve uncached — same verdict, no cache traffic — and counts as a
// degradation, not an error.
func TestCacheBypassDegradation(t *testing.T) {
	cs := []*expr.Expr{expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(7))}
	cache := solver.NewCache(64)
	in := injector(t, "solver.cache:rate=1")
	s := solver.Solver{Cache: cache, Faults: in}
	for i := 0; i < 3; i++ {
		ok, err := s.Sat(cs)
		if err != nil || !ok {
			t.Fatalf("bypassed Sat #%d = %v, %v; want true, nil", i, ok, err)
		}
	}
	if st := cache.Stats(); st.Hits != 0 {
		t.Errorf("cache hits = %d under full bypass, want 0", st.Hits)
	}
	if in.DegradedCount() != 3 {
		t.Errorf("DegradedCount = %d, want 3", in.DegradedCount())
	}
	// With the injector consumed to a nil one, the cache works again.
	s2 := solver.Solver{Cache: cache}
	s2.Sat(cs)
	if ok, err := s2.Sat(cs); err != nil || !ok {
		t.Fatalf("cached Sat = %v, %v", ok, err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Error("cache never hit once the bypass fault was gone")
	}
}
