package solver

import (
	"errors"

	"octopocs/internal/telemetry"
)

// Metrics is the optional counter sink for solver activity: one increment
// per Solve call (Sat goes through Solve), classified by outcome. A nil
// *Metrics is a valid no-op sink.
type Metrics struct {
	// Solves counts Solve calls regardless of outcome.
	Solves *telemetry.Counter
	// Sat counts satisfiable results (a model was produced).
	Sat *telemetry.Counter
	// Unsat counts ErrUnsat results.
	Unsat *telemetry.Counter
	// Budget counts ErrBudget results (work bound hit before a verdict).
	Budget *telemetry.Counter
}

// observe classifies one finished Solve.
func (m *Metrics) observe(err error) {
	if m == nil {
		return
	}
	m.Solves.Inc()
	switch {
	case err == nil:
		m.Sat.Inc()
	case errors.Is(err, ErrUnsat):
		m.Unsat.Inc()
	case errors.Is(err, ErrBudget):
		m.Budget.Inc()
	}
}
