package solver

import (
	"errors"

	"octopocs/internal/telemetry"
)

// Metrics is the optional counter sink for solver activity: one increment
// per Solve call (an uncached Sat goes through Solve), classified by
// outcome, plus the memoization accounting of cache-backed Sat calls. A nil
// *Metrics is a valid no-op sink.
type Metrics struct {
	// Solves counts Solve calls regardless of outcome.
	Solves *telemetry.Counter
	// Sat counts satisfiable results (a model was produced).
	Sat *telemetry.Counter
	// Unsat counts ErrUnsat results.
	Unsat *telemetry.Counter
	// Budget counts ErrBudget results (work bound hit before a verdict).
	Budget *telemetry.Counter
	// CacheHits counts Sat calls answered from the memoization cache
	// without touching the propagation engine.
	CacheHits *telemetry.Counter
	// CacheMisses counts cache-backed Sat calls that had to solve.
	CacheMisses *telemetry.Counter
	// StaticDischarged counts queries that never reached the solver because
	// a static layer (the absint branch oracle) already knew the verdict.
	// The solver cannot increment this itself — discharged queries are
	// never issued — so the discharging layer calls ObserveDischarged.
	StaticDischarged *telemetry.Counter
}

// ObserveDischarged records n queries answered statically instead of being
// solved. Safe on a nil receiver.
func (m *Metrics) ObserveDischarged(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.StaticDischarged.Add(uint64(n))
}

// observeCache classifies one cache-backed Sat lookup.
func (m *Metrics) observeCache(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.CacheHits.Inc()
	} else {
		m.CacheMisses.Inc()
	}
}

// observe classifies one finished Solve.
func (m *Metrics) observe(err error) {
	if m == nil {
		return
	}
	m.Solves.Inc()
	switch {
	case err == nil:
		m.Sat.Inc()
	case errors.Is(err, ErrUnsat):
		m.Unsat.Inc()
	case errors.Is(err, ErrBudget):
		m.Budget.Inc()
	}
}
