package solver_test

import (
	"errors"
	"testing"

	"octopocs/internal/expr"
	"octopocs/internal/solver"
)

// fuzzSystem decodes fuzz bytes into a small constraint system: each
// 4-byte chunk becomes one constraint (sym ⊕ k) cmp c over a handful of
// arithmetic and comparison operators. The decoding is total — any input
// yields a system — so the mutator explores the solver, not the decoder.
func fuzzSystem(data []byte) []*expr.Expr {
	arith := []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpAnd, expr.OpOr, expr.OpXor}
	cmp := []expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe}
	var cs []*expr.Expr
	for i := 0; i+4 <= len(data) && len(cs) < 6; i += 4 {
		sym := int(data[i] % 8)
		lhs := expr.Bin(arith[int(data[i+1])%len(arith)], expr.Sym(sym), expr.Const(uint64(data[i+2])))
		cs = append(cs, expr.Bin(cmp[int(data[i+1]>>4)%len(cmp)], lhs, expr.Const(uint64(data[i+3]))))
	}
	return cs
}

// FuzzSolverRoundTrip checks the solver's two contracts on arbitrary
// constraint systems: a returned model actually satisfies every constraint
// (verified independently by concrete evaluation), and Sat agrees with
// Solve on satisfiability. The solver sits under every feasibility check in
// the pipeline, so a model that does not evaluate true would silently
// corrupt poc' reform.
func FuzzSolverRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0x10, 5, 5, 1, 0x10, 5, 6})     // sym1+5==5 ∧ sym1+5==6: unsat
	f.Add([]byte{2, 0x21, 3, 200, 3, 0x35, 7, 100}) // mixed ops
	f.Add([]byte{7, 0xF2, 0xFF, 0x00, 7, 0x43, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		cs := fuzzSystem(data)
		if len(cs) == 0 {
			return
		}
		s := solver.Solver{Budget: 1 << 16}
		model, err := s.Solve(cs)
		switch {
		case err == nil:
			input := model.Fill(8, 0)
			for i, c := range cs {
				if c.EvalConcrete(input) == 0 {
					t.Fatalf("model %v violates constraint %d: %v", model, i, c)
				}
			}
			ok, serr := s.Sat(cs)
			if serr == nil && !ok {
				t.Fatalf("Solve found a model but Sat says unsat: %v", cs)
			}
		case errors.Is(err, solver.ErrUnsat):
			ok, serr := s.Sat(cs)
			if serr == nil && ok {
				t.Fatalf("Solve says unsat but Sat found the system satisfiable: %v", cs)
			}
		case errors.Is(err, solver.ErrBudget):
			// Budget exhaustion is a legitimate, explicit outcome.
		default:
			t.Fatalf("Solve returned unclassified error: %v", err)
		}
	})
}
