package solver

import (
	"math/rand"
	"testing"

	"octopocs/internal/expr"
)

// randConstraintSet builds a deterministic pseudo-random constraint set
// over a handful of byte symbols. Roughly half the generated sets are
// satisfiable.
func randConstraintSet(rng *rand.Rand) []*expr.Expr {
	n := 2 + rng.Intn(5)
	cs := make([]*expr.Expr, 0, n)
	for i := 0; i < n; i++ {
		a := expr.Sym(rng.Intn(4))
		switch rng.Intn(4) {
		case 0:
			cs = append(cs, expr.Bin(expr.OpEq, a, expr.Const(uint64(rng.Intn(256)))))
		case 1:
			cs = append(cs, expr.Bin(expr.OpLt, a, expr.Const(uint64(1+rng.Intn(255)))))
		case 2:
			b := expr.Sym(rng.Intn(4))
			cs = append(cs, expr.Bin(expr.OpNe, expr.Bin(expr.OpAdd, a, b), expr.Const(uint64(rng.Intn(512)))))
		default:
			b := expr.Sym(rng.Intn(4))
			cs = append(cs, expr.Bin(expr.OpEq,
				expr.Bin(expr.OpAnd, expr.Bin(expr.OpMul, a, expr.Const(17)), expr.Const(63)),
				expr.Bin(expr.OpAnd, b, expr.Const(63))))
		}
	}
	return cs
}

func shuffled(rng *rand.Rand, cs []*expr.Expr) []*expr.Expr {
	out := append([]*expr.Expr(nil), cs...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TestSatKeyCanonical: the cache key must be insensitive to constraint
// order and duplication — the canonicalization the soundness argument
// rests on.
func TestSatKeyCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		cs := randConstraintSet(rng)
		key := SatKey(cs)
		for p := 0; p < 5; p++ {
			perm := shuffled(rng, cs)
			if got := SatKey(perm); got != key {
				t.Fatalf("trial %d: permuted key %v != %v", trial, got, key)
			}
		}
		dup := append(append([]*expr.Expr(nil), cs...), cs[rng.Intn(len(cs))])
		if got := SatKey(dup); got != key {
			t.Fatalf("trial %d: duplicated key %v != %v", trial, got, key)
		}
	}
}

// TestSatKeyDistinguishes: structurally different sets should (for these
// simple generators) get different keys.
func TestSatKeyDistinguishes(t *testing.T) {
	a := []*expr.Expr{expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(1))}
	b := []*expr.Expr{expr.Bin(expr.OpEq, expr.Sym(0), expr.Const(2))}
	c := []*expr.Expr{expr.Bin(expr.OpEq, expr.Sym(1), expr.Const(1))}
	if SatKey(a) == SatKey(b) || SatKey(a) == SatKey(c) || SatKey(b) == SatKey(c) {
		t.Fatalf("distinct constraint sets share a key: %v %v %v", SatKey(a), SatKey(b), SatKey(c))
	}
}

// TestCachedVerdictMatchesFresh: for randomized constraint sets checked in
// randomized permutation order, a cache-backed solver must return exactly
// the verdict a fresh solver returns.
func TestCachedVerdictMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cached := Solver{Cache: NewCache(256)}
	fresh := Solver{}
	sets := make([][]*expr.Expr, 60)
	for i := range sets {
		sets[i] = randConstraintSet(rng)
	}
	// Check every set several times in shuffled forms: later rounds hit
	// the cache and must agree with the fresh verdict each time.
	for round := 0; round < 3; round++ {
		for i, cs := range sets {
			perm := shuffled(rng, cs)
			want, err1 := fresh.Sat(cs)
			got, err2 := cached.Sat(perm)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("set %d round %d: error mismatch: fresh=%v cached=%v", i, round, err1, err2)
			}
			if err1 == nil && got != want {
				t.Fatalf("set %d round %d: cached verdict %v != fresh %v", i, round, got, want)
			}
		}
	}
	st := cached.Cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("expected cache hits after repeated rounds, got %+v", st)
	}
	if st.Entries == 0 {
		t.Fatalf("expected cached entries, got %+v", st)
	}
}

// TestCacheNeverStoresBudget: budget exhaustion must not be memoized — a
// later call with a bigger budget has to be able to reach a verdict.
func TestCacheNeverStoresBudget(t *testing.T) {
	// A three-symbol constraint with wide support forces search work past
	// a tiny budget.
	cs := []*expr.Expr{
		expr.Bin(expr.OpEq,
			expr.Bin(expr.OpAdd, expr.Bin(expr.OpAdd, expr.Sym(0), expr.Sym(1)), expr.Sym(2)),
			expr.Const(511)),
		expr.Bin(expr.OpNe, expr.Bin(expr.OpMul, expr.Sym(0), expr.Sym(1)), expr.Const(6)),
	}
	cache := NewCache(16)
	tiny := Solver{Budget: 4, Cache: cache}
	if _, err := tiny.Sat(cs); err == nil {
		t.Fatal("tiny budget unexpectedly reached a verdict")
	}
	big := Solver{Cache: cache}
	sat, err := big.Sat(cs)
	if err != nil {
		t.Fatalf("full-budget Sat errored: %v", err)
	}
	want, _ := (&Solver{}).Sat(cs)
	if sat != want {
		t.Fatalf("verdict after budget failure: got %v want %v", sat, want)
	}
}

// TestCacheLRUBounded: the cache must not grow past its capacity.
func TestCacheLRUBounded(t *testing.T) {
	cache := NewCache(32)
	s := Solver{Cache: cache}
	for i := 0; i < 500; i++ {
		cs := []*expr.Expr{expr.Bin(expr.OpEq, expr.Sym(i%8), expr.Const(uint64(i)))}
		if _, err := s.Sat(cs); err != nil {
			t.Fatalf("sat %d: %v", i, err)
		}
	}
	st := cache.Stats()
	// Capacity is split across shards with ceiling division, so allow the
	// rounded-up total.
	if st.Entries > 48 {
		t.Fatalf("cache exceeded capacity: %d entries", st.Entries)
	}
}

// TestNilCache: a nil cache is a no-op sink, not a crash.
func TestNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.Lookup(CacheKey{1, 2}); ok {
		t.Fatal("nil cache reported a hit")
	}
	c.Store(CacheKey{1, 2}, true)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("nil cache stats: %+v", st)
	}
}
