package eval_test

import (
	"strings"
	"testing"

	"octopocs/internal/eval"
)

// TestLatestShape asserts the § V-B result: three latest-at-disclosure
// binaries still triggerable, two post-report releases verified fixed.
func TestLatestShape(t *testing.T) {
	rows, err := eval.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	triggered, fixed := 0, 0
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s %s: not verified", r.TName, r.TVersion)
		}
		if r.Triggered {
			triggered++
			if r.PostReport {
				t.Errorf("%s %s: post-report release still triggerable", r.TName, r.TVersion)
			}
		} else {
			fixed++
		}
	}
	if triggered != 3 || fixed != 2 {
		t.Errorf("triggered=%d fixed=%d, want 3 and 2", triggered, fixed)
	}
	out := eval.FormatLatest(rows)
	if !strings.Contains(out, "CVE-2020-35376") {
		t.Errorf("formatted output missing the assigned CVE:\n%s", out)
	}
}
