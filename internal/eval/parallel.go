package eval

import (
	"context"
	"errors"
	"fmt"

	"octopocs/internal/corpus"
	"octopocs/internal/service"
)

// TableIIParallel runs the Table II verification through a service worker
// pool. Pairs sharing an S package or a T package reuse each other's phase
// artifacts via the service cache, so the batch does strictly less work
// than 15 isolated runs while producing identical verdicts (cached
// artifacts are pure functions of their inputs).
//
// Per-pair failures do not discard the batch: the returned rows hold every
// pair that verified, in Table II order, and the error aggregates the
// failures with errors.Join. workers <= 0 selects GOMAXPROCS.
func TableIIParallel(workers int) ([]TableIIRow, error) {
	specs := corpus.All()
	svc := service.New(service.Config{
		Workers:    workers,
		QueueDepth: len(specs),
	})
	defer svc.Shutdown(context.Background())

	jobs := make([]*service.Job, len(specs))
	errs := make([]error, 0, len(specs))
	for i, spec := range specs {
		job, err := svc.Submit(spec.Pair)
		if err != nil {
			errs = append(errs, fmt.Errorf("idx %d (%s): submit: %w", spec.Idx, spec.Label(), err))
			continue
		}
		jobs[i] = job
	}

	rows := make([]TableIIRow, 0, len(specs))
	for i, job := range jobs {
		if job == nil {
			continue
		}
		spec := specs[i]
		rep, err := job.Wait(context.Background())
		if err != nil {
			errs = append(errs, fmt.Errorf("idx %d (%s): %w", spec.Idx, spec.Label(), err))
			continue
		}
		rows = append(rows, TableIIRow{
			Idx:      spec.Idx,
			Type:     rep.Type,
			S:        fmt.Sprintf("%s %s", spec.SName, spec.SVersion),
			T:        fmt.Sprintf("%s %s", spec.TName, spec.TVersion),
			Vuln:     spec.CVE,
			CWE:      spec.CWE,
			PoCMade:  rep.PoCGenerated(),
			Verified: rep.Verified(),
			Report:   rep,
			Elapsed:  job.Elapsed(),
		})
	}
	return rows, errors.Join(errs...)
}
