package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
)

// TableIIParallel runs the Table II verification with a bounded worker
// pool. Every pair is an independent task — pipelines share no state — so
// the rows come back identical to the sequential run, just faster on
// multicore hosts. workers <= 0 selects GOMAXPROCS.
func TableIIParallel(workers int) ([]TableIIRow, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	specs := corpus.All()
	rows := make([]TableIIRow, len(specs))
	errs := make([]error, len(specs))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pipeline := core.New(core.Config{})
			for i := range jobs {
				spec := specs[i]
				start := time.Now()
				rep, err := pipeline.Verify(spec.Pair)
				if err != nil {
					errs[i] = fmt.Errorf("idx %d (%s): %w", spec.Idx, spec.Label(), err)
					continue
				}
				rows[i] = TableIIRow{
					Idx:      spec.Idx,
					Type:     rep.Type,
					S:        fmt.Sprintf("%s %s", spec.SName, spec.SVersion),
					T:        fmt.Sprintf("%s %s", spec.TName, spec.TVersion),
					Vuln:     spec.CVE,
					CWE:      spec.CWE,
					PoCMade:  rep.PoCGenerated(),
					Verified: rep.Verified(),
					Report:   rep,
					Elapsed:  time.Since(start),
				}
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
