package eval_test

import (
	"testing"

	"octopocs/internal/eval"
)

// TestParallelMatchesSequential checks the worker-pool run produces the
// same verdicts as the sequential one: pipelines must be fully independent.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := eval.TableII()
	if err != nil {
		t.Fatal(err)
	}
	par, err := eval.TableIIParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Idx != p.Idx || s.Type != p.Type || s.Verified != p.Verified || s.PoCMade != p.PoCMade {
			t.Errorf("row %d diverged: seq=%+v par=%+v", i, s, p)
		}
	}
}

func TestParallelSingleWorker(t *testing.T) {
	rows, err := eval.TableIIParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	verified := 0
	for _, r := range rows {
		if r.Verified {
			verified++
		}
	}
	if verified != 14 {
		t.Errorf("verified = %d, want 14", verified)
	}
}
