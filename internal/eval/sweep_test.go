package eval_test

import (
	"strings"
	"testing"

	"octopocs/internal/eval"
)

// TestSweepThetaShape: verification of the 20-iteration clone must fail
// for small loop bounds and succeed at the paper's default θ=120.
func TestSweepThetaShape(t *testing.T) {
	points, err := eval.SweepTheta([]int{2, 16, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	if !points[2].Verified {
		t.Error("θ=120 (the paper default) must verify the pair")
	}
	// Monotone in this range: success never degrades as θ grows.
	for i := 1; i < len(points); i++ {
		if points[i-1].Verified && !points[i].Verified {
			t.Errorf("success degraded from θ=%d to θ=%d", points[i-1].Theta, points[i].Theta)
		}
	}
	out := eval.FormatThetaSweep(points)
	if !strings.Contains(out, "theta") {
		t.Errorf("formatted sweep missing header:\n%s", out)
	}
}

// TestSweepNaiveMemShape: naive exploration must hit MemError at small
// budgets; growing the budget only increases explored states.
func TestSweepNaiveMemShape(t *testing.T) {
	points, err := eval.SweepNaiveMem([]int64{1 << 18, 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	if !points[0].MemError {
		t.Errorf("256KiB budget should exhaust: %+v", points[0])
	}
	if points[1].States < points[0].States {
		t.Errorf("states decreased with a larger budget: %+v", points)
	}
	out := eval.FormatMemSweep(points)
	if !strings.Contains(out, "budget") {
		t.Errorf("formatted sweep missing header:\n%s", out)
	}
}
