// Package eval reproduces every quantitative artifact of the paper's
// evaluation (§ V): Tables II through V and the § II-A PoC-type survey.
// Each TableN function runs the corresponding experiment over the synthetic
// corpus and returns structured rows; the Format functions render them the
// way the paper's tables read. The octobench command and the repository's
// top-level benchmarks are thin wrappers over this package. Each experiment
// drives the full P1–P4 pipeline (or an ablated variant of it).
//
// Concurrency: every TableN/Sweep function builds its own pipelines and
// may run concurrently with the others; TableIIParallel fans its rows out
// through a service worker pool internally.
package eval

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/fuzz"
	"octopocs/internal/symex"
)

// TableIIRow is one row of Table II: the verification verdict for a pair.
type TableIIRow struct {
	Idx      int
	Type     core.ResultType
	S, T     string
	Vuln     string
	CWE      string
	PoCMade  bool
	Verified bool
	Report   *core.Report
	Elapsed  time.Duration
}

// TableII runs the full pipeline over all 15 pairs.
func TableII() ([]TableIIRow, error) {
	pipeline := core.New(core.Config{})
	rows := make([]TableIIRow, 0, 15)
	for _, spec := range corpus.All() {
		start := time.Now()
		rep, err := pipeline.Verify(spec.Pair)
		if err != nil {
			return nil, fmt.Errorf("idx %d (%s): %w", spec.Idx, spec.Label(), err)
		}
		rows = append(rows, TableIIRow{
			Idx:      spec.Idx,
			Type:     rep.Type,
			S:        fmt.Sprintf("%s %s", spec.SName, spec.SVersion),
			T:        fmt.Sprintf("%s %s", spec.TName, spec.TVersion),
			Vuln:     spec.CVE,
			CWE:      spec.CWE,
			PoCMade:  rep.PoCGenerated(),
			Verified: rep.Verified(),
			Report:   rep,
			Elapsed:  time.Since(start),
		})
	}
	return rows, nil
}

// FormatTableII renders the verification results.
func FormatTableII(rows []TableIIRow) string {
	var sb strings.Builder
	sb.WriteString("Table II: Vulnerability verification results of OCTOPOCS\n")
	fmt.Fprintf(&sb, "%-9s %-4s %-32s %-28s %-22s %-8s %-5s %-13s %s\n",
		"Type", "Idx", "S", "T", "Vulnerability", "CWE", "poc'", "Verification", "Time")
	verified := 0
	for _, r := range rows {
		if r.Verified {
			verified++
		}
		fmt.Fprintf(&sb, "%-9s %-4d %-32s %-28s %-22s %-8s %-5s %-13s %v\n",
			r.Type, r.Idx, r.S, r.T, r.Vuln, r.CWE, mark(r.PoCMade), mark(r.Verified), r.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(&sb, "Verified %d of %d pairs (paper: 14 of 15)\n", verified, len(rows))
	return sb.String()
}

// TableIIIRow is one row of Table III: context-free versus context-aware
// taint analysis on the nine triggered pairs.
type TableIIIRow struct {
	Idx          int
	S, T         string
	Plain        bool // taint analysis without context information
	ContextAware bool
}

// TableIII runs both taint modes over the triggered pairs (Idx 1-9).
func TableIII() ([]TableIIIRow, error) {
	rows := make([]TableIIIRow, 0, 9)
	for idx := 1; idx <= 9; idx++ {
		aware := corpus.ByIdx(idx)
		plain := corpus.ByIdx(idx)
		repA, err := core.New(core.Config{}).Verify(aware.Pair)
		if err != nil {
			return nil, fmt.Errorf("idx %d aware: %w", idx, err)
		}
		repP, err := core.New(core.Config{ContextFree: true}).Verify(plain.Pair)
		if err != nil {
			return nil, fmt.Errorf("idx %d plain: %w", idx, err)
		}
		rows = append(rows, TableIIIRow{
			Idx:          idx,
			S:            aware.SName,
			T:            aware.TName,
			Plain:        repP.Verdict == core.VerdictTriggered,
			ContextAware: repA.Verdict == core.VerdictTriggered,
		})
	}
	return rows, nil
}

// FormatTableIII renders the taint-mode comparison.
func FormatTableIII(rows []TableIIIRow) string {
	var sb strings.Builder
	sb.WriteString("Table III: Effectiveness of context-aware taint analysis\n")
	fmt.Fprintf(&sb, "%-4s %-26s %-24s %-16s %s\n", "Idx", "S", "T", "Taint analysis", "Context-aware")
	plainOK, awareOK := 0, 0
	for _, r := range rows {
		if r.Plain {
			plainOK++
		}
		if r.ContextAware {
			awareOK++
		}
		fmt.Fprintf(&sb, "%-4d %-26s %-24s %-16s %s\n", r.Idx, r.S, r.T, mark(r.Plain), mark(r.ContextAware))
	}
	fmt.Fprintf(&sb, "Plain taint generated a working poc' for %d/%d; context-aware for %d/%d (paper: 6/9 vs 9/9)\n",
		plainOK, len(rows), awareOK, len(rows))
	return sb.String()
}

// tableIVPairs are the Type-II pairs used for Tables IV and V, with their
// entry points.
var tableIVPairs = []int{7, 8, 9}

// TableIVRow compares naive and directed symbolic execution on one pair.
type TableIVRow struct {
	S, T string
	// Naive (undirected) exploration.
	SETime     time.Duration
	SEMemBytes int64
	SEMemError bool
	SEReached  bool
	// Directed symbolic execution (the full P2+P3 of the pipeline).
	DSETime     time.Duration
	DSEMemBytes int64
	DSEOk       bool
}

// TableIV measures both execution styles on the three Type-II pairs.
// memBudget is the naive-mode memory cap (the 32 GB testbed analog);
// DefaultMemBudget when zero.
func TableIV(memBudget int64) ([]TableIVRow, error) {
	rows := make([]TableIVRow, 0, len(tableIVPairs))
	for _, idx := range tableIVPairs {
		spec := corpus.ByIdx(idx)
		pipeline := core.New(core.Config{})
		ep, err := pipeline.FindEp(spec.Pair)
		if err != nil {
			return nil, fmt.Errorf("idx %d: %w", idx, err)
		}
		row := TableIVRow{S: spec.SName, T: spec.TName}

		start := time.Now()
		res, nerr := symex.RunNaive(spec.Pair.T, symex.NaiveConfig{
			Target:    ep,
			InputSize: len(spec.Pair.PoC) + 64,
			MemBudget: memBudget,
			MaxSteps:  spec.Pair.MaxSteps,
		})
		row.SETime = time.Since(start)
		if res != nil {
			row.SEMemBytes = res.Stats.PeakMemBytes
			row.SEReached = res.Reached()
		}
		row.SEMemError = errors.Is(nerr, symex.ErrMemBudget)

		start = time.Now()
		rep, err := pipeline.Verify(spec.Pair)
		if err != nil {
			return nil, fmt.Errorf("idx %d directed: %w", idx, err)
		}
		row.DSETime = time.Since(start)
		row.DSEMemBytes = rep.Stats.PeakMemBytes
		row.DSEOk = rep.Verdict == core.VerdictTriggered
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTableIV renders the symbolic-execution comparison.
func FormatTableIV(rows []TableIVRow) string {
	var sb strings.Builder
	sb.WriteString("Table IV: Effectiveness of directed symbolic execution\n")
	fmt.Fprintf(&sb, "%-14s %-22s | %-12s %-12s | %-12s %-12s\n",
		"S", "T", "SE time", "SE mem", "D-SE time", "D-SE mem")
	for _, r := range rows {
		se := fmt.Sprintf("%v", r.SETime.Round(time.Microsecond))
		seMem := fmt.Sprintf("%dKB", r.SEMemBytes/1024)
		if r.SEMemError {
			se, seMem = "N/A", "MemError"
		}
		fmt.Fprintf(&sb, "%-14s %-22s | %-12s %-12s | %-12v %-12s\n",
			r.S, r.T, se, seMem,
			r.DSETime.Round(time.Microsecond), fmt.Sprintf("%dKB", r.DSEMemBytes/1024))
	}
	sb.WriteString("(paper: naive SE hits MemError on MuPDF and gif2png-artificial; D-SE succeeds on all three)\n")
	return sb.String()
}

// TableVRow compares the fuzzing baselines with OCTOPOCS on one pair.
type TableVRow struct {
	S, T string
	// Per-tool outcome; Err carries AFLGo's tool error.
	AFLFast ToolOutcome
	AFLGo   ToolOutcome
	Octo    ToolOutcome
}

// ToolOutcome is one verification attempt.
type ToolOutcome struct {
	Verified bool
	Elapsed  time.Duration
	Execs    int64
	Err      string
}

// TableV runs the comparison with the given fuzzing execution budget (the
// paper's 20-hour cap analog).
func TableV(maxExecs int64) ([]TableVRow, error) {
	if maxExecs <= 0 {
		maxExecs = 300_000
	}
	rows := make([]TableVRow, 0, len(tableIVPairs))
	for _, idx := range tableIVPairs {
		spec := corpus.ByIdx(idx)
		pipeline := core.New(core.Config{})
		ep, err := pipeline.FindEp(spec.Pair)
		if err != nil {
			return nil, fmt.Errorf("idx %d: %w", idx, err)
		}
		row := TableVRow{S: spec.SName, T: spec.TName}
		maxSteps := spec.Pair.MaxSteps
		if maxSteps <= 0 {
			maxSteps = 200_000
		}
		target := &fuzz.Target{Prog: spec.Pair.T, Lib: spec.Pair.Lib, MaxSteps: maxSteps}
		// The campaign seed is fixed for reproducibility; whether a
		// havoc campaign cracks the one-byte gif2png check within a
		// given budget is seed-dependent, exactly as the paper's
		// wall-clock numbers were machine- and run-dependent.
		cfg := fuzz.Config{Seeds: [][]byte{spec.Pair.PoC}, MaxExecs: maxExecs, Seed: 3}

		start := time.Now()
		ff := fuzz.RunAFLFast(target, cfg)
		row.AFLFast = ToolOutcome{Verified: ff.Found, Elapsed: time.Since(start), Execs: ff.Execs}

		start = time.Now()
		fg, gerr := fuzz.RunAFLGo(target, ep, cfg)
		if gerr != nil {
			row.AFLGo = ToolOutcome{Err: "Error", Elapsed: time.Since(start)}
		} else {
			row.AFLGo = ToolOutcome{Verified: fg.Found, Elapsed: time.Since(start), Execs: fg.Execs}
		}

		start = time.Now()
		rep, err := pipeline.Verify(spec.Pair)
		if err != nil {
			return nil, fmt.Errorf("idx %d octopocs: %w", idx, err)
		}
		row.Octo = ToolOutcome{Verified: rep.Verdict == core.VerdictTriggered, Elapsed: time.Since(start)}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTableV renders the tool comparison.
func FormatTableV(rows []TableVRow) string {
	var sb strings.Builder
	sb.WriteString("Table V: Elapsed effort for verifying the propagated vulnerability\n")
	fmt.Fprintf(&sb, "%-14s %-22s | %-22s %-22s %-12s\n", "S", "T", "AFLFast", "AFLGo", "OCTOPOCS")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-22s | %-22s %-22s %-12s\n",
			r.S, r.T, toolCell(r.AFLFast), toolCell(r.AFLGo), toolCell(r.Octo))
	}
	sb.WriteString("(paper: AFLFast verifies only gif2png; AFLGo verifies none and errors on MuPDF; OCTOPOCS verifies all three)\n")
	return sb.String()
}

func toolCell(o ToolOutcome) string {
	if o.Err != "" {
		return o.Err
	}
	if !o.Verified {
		return "N/A"
	}
	if o.Execs > 0 {
		return fmt.Sprintf("%v (%d execs)", o.Elapsed.Round(time.Millisecond), o.Execs)
	}
	return o.Elapsed.Round(time.Millisecond).String()
}

func mark(ok bool) string {
	if ok {
		return "O"
	}
	return "X"
}
