package eval

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/symex"
)

// ThetaPoint is one sample of the θ sweep: whether verification of the
// iteration pair (a clone demanding 20 guided loop iterations before ℓ)
// succeeds with the given loop bound, and the effort spent.
type ThetaPoint struct {
	Theta      int
	Verified   bool
	Backtracks int
	Elapsed    time.Duration
}

// thetaSweepNeed is the iteration requirement of the sweep subject.
const thetaSweepNeed = 20

// SweepTheta measures verification of the iteration pair across loop
// bounds. The series shows the § VII crossover: verification fails while
// θ < the required iteration count and succeeds above it, with the
// paper's default θ=120 leaving ample headroom.
func SweepTheta(thetas []int) ([]ThetaPoint, error) {
	if len(thetas) == 0 {
		thetas = []int{4, 8, 16, 24, 32, 64, 120}
	}
	out := make([]ThetaPoint, 0, len(thetas))
	for _, theta := range thetas {
		pair := corpus.IterationPair(thetaSweepNeed)
		start := time.Now()
		rep, err := core.New(core.Config{Theta: theta}).Verify(pair)
		if err != nil {
			return nil, fmt.Errorf("θ=%d: %w", theta, err)
		}
		out = append(out, ThetaPoint{
			Theta:      theta,
			Verified:   rep.Verdict == core.VerdictTriggered,
			Backtracks: rep.Stats.Backtracks,
			Elapsed:    time.Since(start),
		})
	}
	return out, nil
}

// FormatThetaSweep renders the θ series.
func FormatThetaSweep(points []ThetaPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "θ sweep (loop-iteration bound) on a clone needing %d iterations\n", thetaSweepNeed)
	fmt.Fprintf(&sb, "%-8s %-10s %-12s %s\n", "theta", "verified", "backtracks", "time")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-8d %-10s %-12d %v\n", p.Theta, mark(p.Verified), p.Backtracks, p.Elapsed.Round(time.Millisecond))
	}
	return sb.String()
}

// MemPoint is one sample of the naive-SE memory sweep: whether undirected
// exploration reaches ep within the given budget (Table IV's MemError
// threshold).
type MemPoint struct {
	BudgetBytes int64
	Reached     bool
	MemError    bool
	States      int
}

// SweepNaiveMem locates the memory threshold below which naive symbolic
// execution fails on the gif2png-artificial binary.
func SweepNaiveMem(budgets []int64) ([]MemPoint, error) {
	if len(budgets) == 0 {
		budgets = []int64{1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26}
	}
	spec := corpus.ByIdx(9)
	pipeline := core.New(core.Config{})
	ep, err := pipeline.FindEp(spec.Pair)
	if err != nil {
		return nil, err
	}
	out := make([]MemPoint, 0, len(budgets))
	for _, budget := range budgets {
		res, nerr := symex.RunNaive(spec.Pair.T, symex.NaiveConfig{
			Target:    ep,
			InputSize: len(spec.Pair.PoC) + 64,
			MemBudget: budget,
		})
		p := MemPoint{BudgetBytes: budget, MemError: errors.Is(nerr, symex.ErrMemBudget)}
		if res != nil {
			p.Reached = res.Reached()
			p.States = res.Stats.States
		}
		out = append(out, p)
	}
	return out, nil
}

// FormatMemSweep renders the memory series.
func FormatMemSweep(points []MemPoint) string {
	var sb strings.Builder
	sb.WriteString("naive-SE memory sweep on gif2png (artificial)\n")
	fmt.Fprintf(&sb, "%-12s %-10s %-10s %s\n", "budget", "reached", "memerror", "states")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-12s %-10s %-10s %d\n",
			fmt.Sprintf("%dKiB", p.BudgetBytes/1024), mark(p.Reached), mark(p.MemError), p.States)
	}
	return sb.String()
}
