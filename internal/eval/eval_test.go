package eval_test

import (
	"strings"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/eval"
)

// TestTableIIShape asserts the paper's headline result: 14 of 15 pairs
// verified, with the published per-type counts and poc' column.
func TestTableIIShape(t *testing.T) {
	rows, err := eval.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	byType := map[core.ResultType]int{}
	verified, pocs := 0, 0
	for _, r := range rows {
		byType[r.Type]++
		if r.Verified {
			verified++
		}
		if r.PoCMade {
			pocs++
		}
	}
	if verified != 14 {
		t.Errorf("verified = %d, want 14", verified)
	}
	if pocs != 9 {
		t.Errorf("poc' generated for %d pairs, want 9", pocs)
	}
	want := map[core.ResultType]int{
		core.TypeI: 6, core.TypeII: 3, core.TypeIII: 5, core.TypeFailure: 1,
	}
	for ty, n := range want {
		if byType[ty] != n {
			t.Errorf("%v count = %d, want %d", ty, byType[ty], n)
		}
	}
	out := eval.FormatTableII(rows)
	if !strings.Contains(out, "Verified 14 of 15") {
		t.Errorf("formatted table missing verification summary:\n%s", out)
	}
}

// TestTableIIIShape asserts the ablation result: context-free taint fails
// on exactly the multi-entry pairs (Idx 3, 4, 9), context-aware on none.
func TestTableIIIShape(t *testing.T) {
	rows, err := eval.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	wantPlainFail := map[int]bool{3: true, 4: true, 9: true}
	for _, r := range rows {
		if !r.ContextAware {
			t.Errorf("idx %d: context-aware failed", r.Idx)
		}
		if r.Plain == wantPlainFail[r.Idx] {
			t.Errorf("idx %d: plain taint = %v, want %v", r.Idx, r.Plain, !wantPlainFail[r.Idx])
		}
	}
	out := eval.FormatTableIII(rows)
	if !strings.Contains(out, "6/9") || !strings.Contains(out, "9/9") {
		t.Errorf("formatted table missing summary:\n%s", out)
	}
}

// TestTableIVShape asserts the symbolic-execution comparison: naive SE
// handles only the small opj_dump binary and exhausts memory on the other
// two, while directed SE verifies all three.
func TestTableIVShape(t *testing.T) {
	rows, err := eval.TableIV(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, r := range rows {
		if !r.DSEOk {
			t.Errorf("row %d (%s): directed SE failed", i, r.T)
		}
	}
	if rows[0].SEMemError || !rows[0].SEReached {
		t.Errorf("opj_dump: naive SE should succeed (memError=%v reached=%v)",
			rows[0].SEMemError, rows[0].SEReached)
	}
	for _, i := range []int{1, 2} {
		if !rows[i].SEMemError {
			t.Errorf("%s: naive SE should exhaust memory", rows[i].T)
		}
	}
	out := eval.FormatTableIV(rows)
	if !strings.Contains(out, "MemError") {
		t.Errorf("formatted table missing MemError cells:\n%s", out)
	}
}

// TestTableVShape asserts the tool comparison: OCTOPOCS verifies all three
// pairs; the fuzzers cannot verify the two deep-magic pairs within budget;
// AFLGo reports a tool error on the indirect-dispatch MuPDF binary.
func TestTableVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing campaigns are slow")
	}
	rows, err := eval.TableV(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, r := range rows {
		if !r.Octo.Verified {
			t.Errorf("row %d (%s): OCTOPOCS failed to verify", i, r.T)
		}
	}
	// opj_dump and MuPDF: deep magic, fuzzers fail.
	for _, i := range []int{0, 1} {
		if rows[i].AFLFast.Verified {
			t.Errorf("%s: AFLFast verified unexpectedly", rows[i].T)
		}
	}
	if rows[1].AFLGo.Err == "" {
		t.Errorf("MuPDF: AFLGo should report a tool error, got %+v", rows[1].AFLGo)
	}
	// gif2png: AFLFast gets there (the paper's 201 s row).
	if !rows[2].AFLFast.Verified {
		t.Errorf("gif2png: AFLFast should verify within budget")
	}
	// OCTOPOCS is far faster than any successful fuzzing campaign.
	if rows[2].AFLFast.Verified && rows[2].Octo.Elapsed*10 > rows[2].AFLFast.Elapsed {
		t.Errorf("OCTOPOCS (%v) not clearly faster than AFLFast (%v)",
			rows[2].Octo.Elapsed, rows[2].AFLFast.Elapsed)
	}
	out := eval.FormatTableV(rows)
	if !strings.Contains(out, "Error") || !strings.Contains(out, "N/A") {
		t.Errorf("formatted table missing expected cells:\n%s", out)
	}
}
