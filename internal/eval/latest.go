package eval

import (
	"fmt"
	"strings"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
)

// LatestRow is one § V-B latest-version verification.
type LatestRow struct {
	TName      string
	TVersion   string
	PostReport bool
	NewCVE     string
	Triggered  bool
	Verified   bool
	Reason     core.Reason
	Elapsed    time.Duration
}

// Latest reruns verification against the latest (at disclosure) and
// post-report versions of the § V-B binaries.
func Latest() ([]LatestRow, error) {
	pipeline := core.New(core.Config{})
	var rows []LatestRow
	for _, spec := range corpus.LatestVersions() {
		start := time.Now()
		rep, err := pipeline.Verify(spec.Pair)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", spec.TName, spec.TVersion, err)
		}
		rows = append(rows, LatestRow{
			TName:      spec.TName,
			TVersion:   spec.TVersion,
			PostReport: spec.PostReport,
			NewCVE:     spec.NewCVE,
			Triggered:  rep.Verdict == core.VerdictTriggered,
			Verified:   rep.Verified(),
			Reason:     rep.Reason,
			Elapsed:    time.Since(start),
		})
	}
	return rows, nil
}

// FormatLatest renders the latest-version findings.
func FormatLatest(rows []LatestRow) string {
	var sb strings.Builder
	sb.WriteString("§ V-B: propagated vulnerabilities in latest versions\n")
	fmt.Fprintf(&sb, "%-20s %-32s %-12s %-10s %s\n", "T", "Version", "Triggered", "Time", "Notes")
	for _, r := range rows {
		notes := ""
		if r.NewCVE != "" {
			notes = "assigned " + r.NewCVE
		} else if r.PostReport {
			notes = "fixed after report"
		}
		if !r.Triggered && r.Reason != "" {
			notes += " (" + string(r.Reason) + ")"
		}
		fmt.Fprintf(&sb, "%-20s %-32s %-12s %-10v %s\n",
			r.TName, r.TVersion, mark(r.Triggered), r.Elapsed.Round(time.Millisecond), strings.TrimSpace(notes))
	}
	sb.WriteString("(paper: libgdx, mozjpeg tjbench and Xpdf pdftops were still triggerable at disclosure;\n")
	sb.WriteString(" libgdx and Xpdf shipped fixes after the report, Xpdf's receiving CVE-2020-35376)\n")
	return sb.String()
}
