package core_test

import (
	"sync"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/faultinject"
)

func injector(t *testing.T, schedule string) *faultinject.Injector {
	t.Helper()
	sch, err := faultinject.ParseSchedule(schedule)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", schedule, err)
	}
	return faultinject.New(sch)
}

// sameOutcome asserts the fault-free and faulted reports agree on
// everything the soundness contract covers: verdict, type, reason, and the
// exact poc' bytes. Timings legitimately differ.
func sameOutcome(t *testing.T, label string, want, got *core.Report) {
	t.Helper()
	if got.Verdict != want.Verdict || got.Type != want.Type || got.Reason != want.Reason {
		t.Errorf("%s: verdict/type/reason = %v/%v/%q, want %v/%v/%q",
			label, got.Verdict, got.Type, got.Reason, want.Verdict, want.Type, want.Reason)
	}
	if string(got.PoCPrime) != string(want.PoCPrime) {
		t.Errorf("%s: poc' differs (%d bytes vs %d)", label, len(got.PoCPrime), len(want.PoCPrime))
	}
}

// TestRetryRestoresVerdict checks transient solver faults mid-pipeline are
// retried away: the verdict and poc' are byte-identical to the fault-free
// run and the retries are accounted.
func TestRetryRestoresVerdict(t *testing.T) {
	base, err := core.New(core.Config{}).Verify(simplePair(t, "BB"))
	if err != nil {
		t.Fatal(err)
	}
	in := injector(t, "seed=5;solver.sat:nth=3|7;solver.timeout:nth=1")
	rep, err := core.New(core.Config{Faults: in}).Verify(simplePair(t, "BB"))
	if err != nil {
		t.Fatalf("faulted Verify: %v", err)
	}
	sameOutcome(t, "transient solver faults", base, rep)
	if in.RetriedCount() == 0 {
		t.Error("no retries recorded despite scheduled transient faults")
	}
}

// TestRetryExhaustionIsExplicit checks an unrecoverable transient schedule
// (every Solve fails) surfaces as a classified retryable error — never a
// silently degraded verdict.
func TestRetryExhaustionIsExplicit(t *testing.T) {
	in := injector(t, "solver.timeout:rate=1")
	p := core.New(core.Config{
		Faults: in,
		Retry:  core.RetryPolicy{Max: 2, BaseDelay: 1},
	})
	rep, err := p.Verify(simplePair(t, "BB"))
	if err == nil {
		t.Fatalf("Verify returned %+v, want error after retry exhaustion", rep)
	}
	if !faultinject.IsTransient(err) {
		t.Errorf("exhaustion error not transient-classified: %v", err)
	}
	if in.RetriedCount() != 2 {
		t.Errorf("RetriedCount = %d, want 2 (Max)", in.RetriedCount())
	}
}

// TestStaticDegradeKeepsVerdict checks an injected static-analysis failure
// falls back to the unpruned pipeline: same verdict and poc', no Static
// summary, degradation counted.
func TestStaticDegradeKeepsVerdict(t *testing.T) {
	base, err := core.New(core.Config{StaticPrune: true}).Verify(simplePair(t, "BB"))
	if err != nil {
		t.Fatal(err)
	}
	in := injector(t, "core.static:rate=1")
	rep, err := core.New(core.Config{StaticPrune: true, Faults: in}).Verify(simplePair(t, "BB"))
	if err != nil {
		t.Fatalf("degraded Verify: %v", err)
	}
	sameOutcome(t, "static degrade", base, rep)
	if rep.Static != nil {
		t.Error("degraded run still reports a static summary")
	}
	if in.DegradedCount() == 0 {
		t.Error("degradation not counted")
	}
}

// mapStore is a minimal concurrency-safe Cache for the degradation tests.
type mapStore struct {
	mu sync.Mutex
	m  map[string]any
}

func newMapStore() *mapStore { return &mapStore{m: map[string]any{}} }

func (s *mapStore) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *mapStore) Put(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = v
}

// TestCacheFaultsDegradeToRecompute checks injected artifact-cache faults
// only cost recomputation: dropped writes and missed reads leave every run
// equal to the fault-free one.
func TestCacheFaultsDegradeToRecompute(t *testing.T) {
	base, err := core.New(core.Config{}).Verify(simplePair(t, "BB"))
	if err != nil {
		t.Fatal(err)
	}
	in := injector(t, "core.cache_get:rate=1;core.cache_put:rate=1")
	p := core.New(core.Config{Faults: in})
	p.SetCaches(newMapStore(), newMapStore())
	for i := 0; i < 2; i++ {
		rep, err := p.Verify(simplePair(t, "BB"))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		sameOutcome(t, "cache faults", base, rep)
		if rep.Timings.P1Cached || rep.Timings.P2Cached {
			t.Errorf("run %d reported a cache hit under full cache-fault injection", i)
		}
	}
	if in.DegradedCount() == 0 {
		t.Error("cache degradations not counted")
	}
}

// TestNthOrdinalsSurviveRetry checks retry soundness end to end: a single
// nth-based fault fires once, the retry re-runs the phase with fresh
// ordinals past the consumed one, and the final report is fault-free.
func TestNthOrdinalsSurviveRetry(t *testing.T) {
	base, err := core.New(core.Config{}).Verify(simplePair(t, "BB"))
	if err != nil {
		t.Fatal(err)
	}
	in := injector(t, "solver.sat:nth=1")
	rep, err := core.New(core.Config{Faults: in}).Verify(simplePair(t, "BB"))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	sameOutcome(t, "nth retry", base, rep)
	st := in.Stats()[faultinject.SolverSat]
	if st.Fired != 1 {
		t.Errorf("solver.sat fired %d times, want exactly 1", st.Fired)
	}
}
