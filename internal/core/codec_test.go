package core_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"octopocs/internal/core"
)

// mapCache is a minimal concurrency-safe core.Cache for codec tests.
type mapCache struct {
	mu sync.Mutex
	m  map[string]any
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string]any)} }

func (c *mapCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *mapCache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// roundTrip re-encodes every cached artifact through its disk codec and
// returns a cache holding only the decoded copies — exactly what a restarted
// process would load from the artifact store's disk tier.
func roundTrip(t *testing.T, src *mapCache) *mapCache {
	t.Helper()
	codecs := map[string]interface {
		Encode(any) ([]byte, error)
		Decode([]byte) (any, error)
	}{
		"p1": core.P1Codec{},
		"p2": core.P2Codec{},
		"ps": core.StaticCodec{},
	}
	dst := newMapCache()
	for key, v := range src.m {
		class, _, _ := strings.Cut(key, ":")
		codec, ok := codecs[class]
		if !ok {
			t.Fatalf("no codec for cached key %q", key)
		}
		data, err := codec.Encode(v)
		if err != nil {
			t.Fatalf("encode %q: %v", key, err)
		}
		decoded, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("decode %q: %v", key, err)
		}
		dst.m[key] = decoded
	}
	return dst
}

// TestCodecRoundTripPreservesReports runs a verification cold with caches
// attached, round-trips every artifact through its wire codec, and re-runs
// the verification against the decoded artifacts: the warm report must be
// identical (timings aside) and must be served from the caches. This is the
// restart scenario of the persistent artifact store, in miniature.
func TestCodecRoundTripPreservesReports(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{
		{"dynamic", core.Config{}},
		{"static_prune", core.Config{StaticPrune: true}},
		{"static_cfg_only", core.Config{StaticCFGOnly: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pair := simplePair(t, "BB")

			p1c, p2c := newMapCache(), newMapCache()
			cold := core.New(tc.cfg)
			cold.SetCaches(p1c, p2c)
			coldRep, err := cold.Verify(pair)
			if err != nil {
				t.Fatalf("cold verify: %v", err)
			}
			if len(p1c.m) == 0 || len(p2c.m) == 0 {
				t.Fatalf("cold run cached nothing (p1=%d p2=%d)", len(p1c.m), len(p2c.m))
			}

			warm := core.New(tc.cfg)
			warm.SetCaches(roundTrip(t, p1c), roundTrip(t, p2c))
			warmRep, err := warm.Verify(simplePair(t, "BB"))
			if err != nil {
				t.Fatalf("warm verify: %v", err)
			}
			if !warmRep.Timings.P1Cached || !warmRep.Timings.P2Cached {
				t.Errorf("warm run recomputed artifacts (p1=%v p2=%v)",
					warmRep.Timings.P1Cached, warmRep.Timings.P2Cached)
			}
			if tc.cfg.StaticPrune && !warmRep.Timings.StaticCached {
				t.Error("warm run recomputed static analysis")
			}
			c, w := *coldRep, *warmRep
			c.Timings, w.Timings = core.PhaseTimings{}, core.PhaseTimings{}
			if !reflect.DeepEqual(c, w) {
				t.Errorf("decoded artifacts changed the report\ncold %+v\nwarm %+v", c, w)
			}
		})
	}
}

// TestCodecRejectsGarbage ensures decode failures surface as errors (the
// store maps them to misses) instead of returning half-built artifacts.
func TestCodecRejectsGarbage(t *testing.T) {
	for _, tc := range []struct {
		name  string
		codec interface {
			Decode([]byte) (any, error)
		}
	}{
		{"p1", core.P1Codec{}},
		{"p2", core.P2Codec{}},
		{"ps", core.StaticCodec{}},
	} {
		for _, payload := range [][]byte{nil, []byte("{"), []byte(`{"t":"not a program"}`)} {
			if v, err := tc.codec.Decode(payload); err == nil {
				t.Errorf("%s codec accepted %q: %v", tc.name, payload, v)
			}
		}
	}
}

// TestCodecEncodeRejectsWrongType ensures a mistyped cache value cannot be
// silently persisted as an empty artifact.
func TestCodecEncodeRejectsWrongType(t *testing.T) {
	for _, tc := range []struct {
		name  string
		codec interface {
			Encode(any) ([]byte, error)
		}
	}{
		{"p1", core.P1Codec{}},
		{"p2", core.P2Codec{}},
		{"ps", core.StaticCodec{}},
	} {
		if _, err := tc.codec.Encode("wrong"); err == nil {
			t.Errorf("%s codec encoded a string", tc.name)
		}
	}
}
