package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"octopocs/internal/asm"
	"octopocs/internal/cfg"
	"octopocs/internal/faultinject"
	"octopocs/internal/vm"
)

// Cache stores phase artifacts under content-addressed keys. Implementations
// must be safe for concurrent use; the pipeline treats stored artifacts as
// immutable and shares them freely between verifications.
type Cache interface {
	// Get returns the artifact stored under key, if any.
	Get(key string) (any, bool)
	// Put stores an artifact under key, evicting at its discretion.
	Put(key string, v any)
}

// P1Artifact is the cached output of preprocessing plus phase P1: the S-side
// work of a verification. It is a pure function of the cache key inputs
// (S program text, poc bytes, ℓ, taint mode, step budget), so two pairs
// sharing the same S-side quadruple — the common case when one original
// package propagates into many targets — reuse one artifact.
type P1Artifact struct {
	// Ep is the entry point of ℓ found on the S crash backtrace.
	Ep string
	// SCrash is the crash S exhibits on the poc.
	SCrash *vm.Crash
	// Bunches are the materialized crash primitives.
	Bunches []BunchBytes
}

// P2Artifact is the cached phase-P2 preparation for one (T, ep) target: the
// CFG with dynamically discovered indirect-call edges and the backward
// distance maps toward ep. Dist is nil when ep is statically and dynamically
// unreachable; Graph is kept so the verdict logic can distinguish the
// unresolved-CFG failure from a sound not-triggerable verdict.
type P2Artifact struct {
	Graph *cfg.Graph
	// Dist holds the distances to Ep; nil when ep is unreachable.
	Dist *cfg.Distances
	// Ep is the target entry point the artifact was prepared for, and
	// Pruned records whether Graph was built over the statically pruned
	// CFG view. Both are already encoded in the cache key; they are
	// carried on the artifact so the disk codec can rebuild the graph
	// without access to the key's preimage.
	Ep     string
	Pruned bool
	// Absint records whether the pruned view was strengthened with
	// abstract-interpretation value ranges. Only meaningful when Pruned is
	// set; like Ep and Pruned it is carried for the disk codec.
	Absint bool
}

// SetCaches installs artifact caches for the P1 (S-side) and P2-prep
// (T-side) results. Either may be nil to disable that class. Artifacts put
// into a cache are never mutated afterward, so a single cache may back any
// number of concurrent pipelines.
func (p *Pipeline) SetCaches(p1, p2 Cache) {
	p.p1Cache = p1
	p.p2Cache = p2
}

// SetAbsintCache installs the artifact cache for abstract-interpretation
// value ranges. Nil disables the class. Kept separate from SetCaches so
// existing call sites need no change.
func (p *Pipeline) SetAbsintCache(c Cache) {
	p.aiCache = c
}

// SetHybridCache installs the artifact cache for hybrid-campaign outcomes
// (the hy: class). Nil disables the class. Cached rescues are replayed on
// the concrete VM before reuse, so a damaged artifact degrades to a
// recompute, never to a wrong verdict.
func (p *Pipeline) SetHybridCache(c Cache) {
	p.hyCache = c
}

// cacheGet reads an artifact through the fault injector: an injected
// cache-read failure degrades to a miss, so the phase recomputes the
// artifact it would have loaded — slower, never different.
func (p *Pipeline) cacheGet(c Cache, key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	if p.cfg.Faults.Fire(faultinject.CoreCacheGet) {
		return nil, false
	}
	return c.Get(key)
}

// cachePut stores an artifact through the fault injector: an injected
// cache-write failure drops the write. Later verifications recompute
// instead of hitting; verdicts are unaffected because only complete
// artifacts are ever stored.
func (p *Pipeline) cachePut(c Cache, key string, v any) {
	if c == nil {
		return
	}
	if p.cfg.Faults.Fire(faultinject.CoreCachePut) {
		return
	}
	c.Put(key, v)
}

// p1Key derives the content address of the S-side artifact. Every input
// that influences the artifact participates: the S program (its assembled
// text), the poc bytes, the ℓ set (it selects ep and scopes the taint
// engine), the taint mode, and the effective step budget.
func (p *Pipeline) p1Key(pair *Pair) string {
	h := sha256.New()
	io.WriteString(h, asm.Format(pair.S))
	h.Write(pair.PoC)
	libs := make([]string, 0, len(pair.Lib))
	for fn := range pair.Lib {
		libs = append(libs, fn)
	}
	sort.Strings(libs)
	for _, fn := range libs {
		fmt.Fprintf(h, "|lib:%s", fn)
	}
	fmt.Fprintf(h, "|ctxfree:%v|steps:%d", p.cfg.ContextFree, p.maxSteps(pair))
	return "p1:" + hex.EncodeToString(h.Sum(nil))
}

// p2Key derives the content address of the T-side preparation artifact:
// the T program, the target ep, every knob the dynamic CFG discovery pass
// reads (symbolic input size, step budget, solver budget, and whether
// discovery is disabled outright), whether the graph was built over the
// statically pruned CFG view, and whether that view was strengthened with
// abstract-interpretation value ranges.
func (p *Pipeline) p2Key(pair *Pair, ep string, pruned, absint bool) string {
	h := sha256.New()
	io.WriteString(h, asm.Format(pair.T))
	fmt.Fprintf(h, "|ep:%s|static:%v|insize:%d|steps:%d|sat:%d|prune:%v|absint:%v",
		ep, p.cfg.StaticCFGOnly, p.discoverInputSize(pair), p.maxSteps(pair), p.cfg.SatBudget, pruned, absint)
	return "p2:" + hex.EncodeToString(h.Sum(nil))
}
