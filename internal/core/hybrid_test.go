package core

import (
	"testing"

	"octopocs/internal/hybrid"
)

// TestHybridEligibleBoundary is the fallback's firing table over every
// reason code: exactly the two resource-exhaustion outcomes (loop-dead
// θ-exhaustion and analysis budget, which also covers the hung default
// mapping) qualify; every sound not-triggerable argument and every
// structural failure is excluded.
func TestHybridEligibleBoundary(t *testing.T) {
	cases := []struct {
		reason Reason
		want   bool
	}{
		{ReasonLoopDead, true},
		{ReasonBudget, true},
		{ReasonNone, false},
		{ReasonEpMissing, false},
		{ReasonEpNotCalled, false},
		{ReasonProgramDead, false},
		{ReasonParamMismatch, false},
		{ReasonUnsat, false},
		{ReasonCFGUnresolved, false},
		{ReasonNoCrash, false},
		{ReasonStaticUnreachable, false},
	}
	for _, c := range cases {
		if got := hybridEligible(c.reason); got != c.want {
			t.Errorf("hybridEligible(%q) = %v, want %v", c.reason, got, c.want)
		}
	}
}

// TestPartialSeedGating checks partialSeed stays nil unless the fallback is
// on, the reason is eligible, and constraints exist — the partial solve
// must never run (and never emit solver work) on a fallback-off pipeline.
func TestPartialSeedGating(t *testing.T) {
	off := New(Config{})
	on := New(Config{HybridFuzz: true})
	if got := off.partialSeed(nil, 16, ReasonLoopDead); got != nil {
		t.Errorf("fallback-off partialSeed = %x, want nil", got)
	}
	if got := on.partialSeed(nil, 16, ReasonLoopDead); got != nil {
		t.Errorf("no-constraints partialSeed = %x, want nil", got)
	}
	if got := on.partialSeed(nil, 16, ReasonUnsat); got != nil {
		t.Errorf("ineligible-reason partialSeed = %x, want nil", got)
	}
}

// TestVerifiedCountsFuzzingRescue pins that a triggered-by-fuzzing report
// counts as verified (Table II verification column) and renders its own
// distinct verdict string.
func TestVerifiedCountsFuzzingRescue(t *testing.T) {
	r := &Report{Verdict: VerdictTriggeredByFuzzing}
	if !r.Verified() {
		t.Error("triggered-by-fuzzing report does not count as verified")
	}
	if got := VerdictTriggeredByFuzzing.String(); got != "triggered-by-fuzzing" {
		t.Errorf("verdict string = %q", got)
	}
}

// TestHybridCodecRoundTrip checks the hy: disk codec reproduces outcomes
// bit for bit and rejects structurally corrupted payloads.
func TestHybridCodecRoundTrip(t *testing.T) {
	o := &hybrid.Outcome{
		Rescued:     true,
		Confirmed:   true,
		PoCPrime:    []byte{1, 2, 3},
		CrashLoc:    "decode:0:7",
		Execs:       1234,
		MaskedArm:   true,
		WinnerShard: 1,
	}
	data, err := (HybridCodec{}).Encode(o)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	v, err := (HybridCodec{}).Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got, ok := v.(*hybrid.Outcome)
	if !ok {
		t.Fatalf("Decode returned %T", v)
	}
	if got.Rescued != o.Rescued || got.Execs != o.Execs || string(got.PoCPrime) != string(o.PoCPrime) ||
		got.CrashLoc != o.CrashLoc || got.MaskedArm != o.MaskedArm || got.WinnerShard != o.WinnerShard {
		t.Errorf("round trip diverged: %+v vs %+v", got, o)
	}
	if _, err := (HybridCodec{}).Encode("wrong"); err == nil {
		t.Error("Encode accepted a non-outcome value")
	}
	if _, err := (HybridCodec{}).Decode([]byte(`{"rescued":true}`)); err == nil {
		t.Error("Decode accepted a rescued outcome without a poc'")
	}
	if _, err := (HybridCodec{}).Decode([]byte("{garbage")); err == nil {
		t.Error("Decode accepted malformed JSON")
	}
}
