package core

// retry.go is the transient-fault recovery of the pipeline: phases P1, P2
// preparation, and the P2+P3 reform run are wrapped in a bounded retry loop
// with capped exponential backoff. A retry is sound because every phase is
// pure recomputation of its inputs and error paths never populate the
// artifact or sat caches — re-running a failed phase reproduces exactly the
// result the fault-free run would have produced.

import (
	"context"
	"time"

	"octopocs/internal/faultinject"
	"octopocs/internal/journal"
	"octopocs/internal/telemetry"
)

// Retry defaults.
const (
	// DefaultRetryMax is the number of retries (attempts beyond the first)
	// per phase for transient faults.
	DefaultRetryMax = 3
	// DefaultRetryBaseDelay is the backoff before the first retry.
	DefaultRetryBaseDelay = 2 * time.Millisecond
	// retryMaxDelay caps the exponential backoff.
	retryMaxDelay = 250 * time.Millisecond
)

// RetryPolicy bounds the per-phase retry loop for faults classified
// transient. The zero value uses the defaults; Max < 0 disables retries.
type RetryPolicy struct {
	// Max is the retries per phase; DefaultRetryMax when 0, none when
	// negative.
	Max int
	// BaseDelay is the first backoff; doubled per retry up to an internal
	// cap, with deterministic jitter. DefaultRetryBaseDelay when 0.
	BaseDelay time.Duration
}

func (r RetryPolicy) max() int {
	switch {
	case r.Max > 0:
		return r.Max
	case r.Max < 0:
		return 0
	}
	return DefaultRetryMax
}

func (r RetryPolicy) base() time.Duration {
	if r.BaseDelay > 0 {
		return r.BaseDelay
	}
	return DefaultRetryBaseDelay
}

// retryTransient runs fn, retrying when it returns an error carrying a
// transient injected fault (including a recovered worker panic). Any other
// error — and a transient one that survives every retry — is returned as
// is, so exhausted retries surface as an explicit retryable error, never a
// silently different verdict.
func (p *Pipeline) retryTransient(ctx context.Context, phase string, fn func() error) error {
	maxRetries := p.cfg.Retry.max()
	base := p.cfg.Retry.base()
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil || attempt >= maxRetries || !faultinject.IsTransient(err) {
			return err
		}
		if ctx.Err() != nil {
			return ctxErr(ctx)
		}
		p.cfg.Faults.CountRetried()
		delay := backoffDelay(base, attempt, phase)
		if rec := journal.FromContext(ctx); rec != nil {
			attrs := journal.Attrs{"phase": phase}
			if point, class, ok := faultinject.Describe(err); ok {
				attrs["point"] = string(point)
				attrs["class"] = int(class)
			}
			rec.Emit(journal.EvFaultTransient, attrs)
			rec.Emit(journal.EvFaultRetry, journal.Attrs{"phase": phase, "attempt": attempt + 1})
		}
		telemetry.Logger(ctx).Warn("transient fault; retrying phase",
			"phase", phase, "attempt", attempt+1, "delay", delay.String(), "err", err.Error())
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctxErr(ctx)
		}
	}
}

// backoffDelay is capped exponential backoff with deterministic jitter in
// [d/2, d]: the jitter decorrelates concurrent jobs retrying the same
// shared resource without consulting the global RNG, keeping runs
// reproducible.
func backoffDelay(base time.Duration, attempt int, phase string) time.Duration {
	d := base << uint(attempt)
	if d <= 0 || d > retryMaxDelay {
		d = retryMaxDelay
	}
	h := uint64(1469598103934665603)
	for i := 0; i < len(phase); i++ {
		h ^= uint64(phase[i])
		h *= 1099511628211
	}
	h ^= uint64(attempt + 1)
	h *= 1099511628211
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + int64(h%uint64(half+1)))
}
