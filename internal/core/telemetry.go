package core

import (
	"time"

	"octopocs/internal/absint"
	"octopocs/internal/hybrid"
	"octopocs/internal/mirstatic"
	"octopocs/internal/solver"
	"octopocs/internal/symex"
	"octopocs/internal/telemetry"
	"octopocs/internal/vm"
)

// Metrics bundles the engine counter sinks threaded through one pipeline:
// the concrete VM, the symbolic executor, and the constraint solver. A nil
// *Metrics disables engine instrumentation entirely — the accessors return
// nil sinks, which the engines treat as no-ops — so an unregistered
// pipeline pays nothing on the hot path.
type Metrics struct {
	VM     *vm.Metrics
	Symex  *symex.Metrics
	Solver *solver.Metrics

	// Static pre-analysis counters (the P2 pre-phase). All fields are
	// nil-tolerant, so a partially populated bundle is valid.
	StaticAnalyses      *telemetry.Counter
	StaticFolded        *telemetry.Counter
	StaticDeadBlocks    *telemetry.Counter
	StaticDeadRegions   *telemetry.Counter
	StaticShortCircuits *telemetry.Counter
	StaticLatency       *telemetry.Histogram

	// Abstract-interpretation counters (interval∧congruence value ranges).
	AbsintAnalyses       *telemetry.Counter
	AbsintProvedBranches *telemetry.Counter
	AbsintUnreachable    *telemetry.Counter
	AbsintLatency        *telemetry.Histogram

	// Hybrid-fallback counters (the directed-fuzzing campaign).
	HybridCampaigns *telemetry.Counter
	HybridRescued   *telemetry.Counter
	HybridRejected  *telemetry.Counter
	HybridExecs     *telemetry.Counter
	HybridLatency   *telemetry.Histogram

	// Fault-injection counters (populated by the chaos harness; always zero
	// in production, where no injector is attached).
	FaultsInjected  *telemetry.Counter
	FaultsRecovered *telemetry.Counter
	FaultsRetried   *telemetry.Counter
	FaultsDegraded  *telemetry.Counter
}

// NewMetrics registers the engine counter families on reg under their
// canonical octopocs_* names and returns the bundle. A nil registry yields
// a nil bundle (instrumentation off).
//
// The symex counters carry the paper's § III/IV state taxonomy into the
// exposition: loop-dead and program-dead terminations, transient loop
// states, and θ-retry exhaustion (runs whose every backtrack up to θ
// iterations still ended loop-dead).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	sol := &solver.Metrics{
		Solves: reg.Counter("octopocs_solver_solves_total",
			"Constraint solver Solve calls.", nil),
		Sat: reg.Counter("octopocs_solver_sat_total",
			"Solver calls that produced a model.", nil),
		Unsat: reg.Counter("octopocs_solver_unsat_total",
			"Solver calls that proved the constraints unsatisfiable.", nil),
		Budget: reg.Counter("octopocs_solver_budget_exhausted_total",
			"Solver calls that hit the evaluation budget before a verdict.", nil),
		CacheHits: reg.Counter("octopocs_solver_sat_cache_hits_total",
			"Sat checks answered from the memoized verdict cache.", nil),
		CacheMisses: reg.Counter("octopocs_solver_sat_cache_misses_total",
			"Cache-backed Sat checks that had to solve.", nil),
		StaticDischarged: reg.Counter("octopocs_solver_static_discharged_total",
			"Feasibility queries answered by the absint branch oracle without a solver call.", nil),
	}
	return &Metrics{
		VM: &vm.Metrics{
			Runs: reg.Counter("octopocs_vm_runs_total",
				"Concrete VM executions.", nil),
			Insts: reg.Counter("octopocs_vm_instructions_total",
				"Concrete VM instructions retired.", nil),
			Crashes: reg.Counter("octopocs_vm_crashes_total",
				"Concrete VM runs that ended in a crash.", nil),
			Hangs: reg.Counter("octopocs_vm_hangs_total",
				"Concrete VM runs that exhausted their step budget.", nil),
		},
		Symex: &symex.Metrics{
			Runs: reg.Counter("octopocs_symex_runs_total",
				"Symbolic executions completed (directed and naive).", nil),
			States: reg.Counter("octopocs_symex_states_total",
				"Symbolic states explored.", nil),
			Steps: reg.Counter("octopocs_symex_steps_total",
				"Symbolic instructions stepped.", nil),
			Backtracks: reg.Counter("octopocs_symex_backtracks_total",
				"Directed-mode decision reversals.", nil),
			LoopStates: reg.Counter("octopocs_symex_loop_states_total",
				"Decisions that re-entered a visited block (transient loop states).", nil),
			LoopDeads: reg.Counter("octopocs_symex_loop_dead_total",
				"Loop-dead state terminations (no feasible loop exit within theta).", nil),
			ProgramDeads: reg.Counter("octopocs_symex_program_dead_total",
				"Program-dead state terminations (no feasible branch).", nil),
			ThetaExhausted: reg.Counter("octopocs_symex_theta_exhausted_total",
				"Runs whose every retry up to theta iterations ended loop-dead.", nil),
			SatChecks: reg.Counter("octopocs_symex_sat_checks_total",
				"Feasibility queries issued during symbolic execution.", nil),
			Steals: reg.Counter("octopocs_symex_frontier_steals_total",
				"Frontier nodes executed by a worker other than their emitter.", nil),
			FrontierPeak: reg.Gauge("octopocs_symex_frontier_peak_nodes",
				"Peak pending-node depth of the most recent parallel run.", nil),
			WorkerSteps: reg.Histogram("octopocs_symex_worker_steps",
				"Per-worker symbolic step counts of parallel runs.", nil,
				[]float64{0, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}),
			Solver: sol,
		},
		Solver: sol,
		StaticAnalyses: reg.Counter("octopocs_static_analyses_total",
			"Static pre-analyses computed (cache hits excluded).", nil),
		StaticFolded: reg.Counter("octopocs_static_branches_folded_total",
			"Branches proven one-sided by constant propagation.", nil),
		StaticDeadBlocks: reg.Counter("octopocs_static_blocks_pruned_total",
			"Basic blocks proven dead and pruned from the CFG view.", nil),
		StaticDeadRegions: reg.Counter("octopocs_static_dead_regions_total",
			"Dominator-closed dead regions behind folded branches.", nil),
		StaticShortCircuits: reg.Counter("octopocs_static_short_circuits_total",
			"Verifications concluded statically-unreachable without symbolic execution.", nil),
		StaticLatency: reg.Histogram("octopocs_static_latency_seconds",
			"Wall-clock seconds of one static pre-analysis.", nil,
			[]float64{0.0001, 0.001, 0.01, 0.1, 1, 10}),
		AbsintAnalyses: reg.Counter("octopocs_absint_analyses_total",
			"Abstract-interpretation analyses computed (cache hits excluded).", nil),
		AbsintProvedBranches: reg.Counter("octopocs_absint_proved_branches_total",
			"Conditional branches proven one-sided by value-range analysis.", nil),
		AbsintUnreachable: reg.Counter("octopocs_absint_unreachable_blocks_total",
			"Basic blocks proven unreachable by value-range analysis.", nil),
		AbsintLatency: reg.Histogram("octopocs_absint_latency_seconds",
			"Wall-clock seconds of one abstract-interpretation analysis.", nil,
			[]float64{0.0001, 0.001, 0.01, 0.1, 1, 10}),
		HybridCampaigns: reg.Counter("octopocs_hybrid_campaigns_total",
			"Directed-fuzzing fallback campaigns run (cache hits excluded).", nil),
		HybridRescued: reg.Counter("octopocs_hybrid_rescued_total",
			"Campaigns whose replay-confirmed crash upgraded a symex failure.", nil),
		HybridRejected: reg.Counter("octopocs_hybrid_rejected_total",
			"Cached hybrid outcomes discarded because their poc' no longer reproduced.", nil),
		HybridExecs: reg.Counter("octopocs_hybrid_execs_total",
			"Concrete executions spent by fallback campaigns.", nil),
		HybridLatency: reg.Histogram("octopocs_hybrid_latency_seconds",
			"Wall-clock seconds of one fallback campaign.", nil,
			[]float64{0.001, 0.01, 0.1, 1, 10, 60, 600}),
		FaultsInjected: reg.Counter("octopocs_faults_injected_total",
			"Faults fired by the injection schedule.", nil),
		FaultsRecovered: reg.Counter("octopocs_faults_recovered_total",
			"Panics recovered by containment boundaries (workers, job runners, HTTP handlers).", nil),
		FaultsRetried: reg.Counter("octopocs_faults_retried_total",
			"Phase retries triggered by transient faults.", nil),
		FaultsDegraded: reg.Counter("octopocs_faults_degraded_total",
			"Degraded-mode fallbacks taken (cache bypassed, static pruning skipped).", nil),
	}
}

// vmSink, symexSink and solverSink are the nil-tolerant accessors the
// pipeline threads into engine configs.
func (m *Metrics) vmSink() *vm.Metrics {
	if m == nil {
		return nil
	}
	return m.VM
}

func (m *Metrics) symexSink() *symex.Metrics {
	if m == nil {
		return nil
	}
	return m.Symex
}

func (m *Metrics) solverSink() *solver.Metrics {
	if m == nil {
		return nil
	}
	return m.Solver
}

// staticObserve flushes one freshly computed static pre-analysis.
func (m *Metrics) staticObserve(s *mirstatic.Summary, d time.Duration) {
	if m == nil {
		return
	}
	m.StaticAnalyses.Inc()
	m.StaticFolded.Add(uint64(s.FoldedBranches))
	m.StaticDeadBlocks.Add(uint64(s.DeadBlocks))
	m.StaticDeadRegions.Add(uint64(s.DeadRegions))
	m.StaticLatency.ObserveDuration(d)
}

// absintObserve flushes one freshly computed abstract interpretation.
func (m *Metrics) absintObserve(s *absint.Summary, d time.Duration) {
	if m == nil {
		return
	}
	m.AbsintAnalyses.Inc()
	m.AbsintProvedBranches.Add(uint64(s.ProvedBranches))
	m.AbsintUnreachable.Add(uint64(s.Unreachable))
	m.AbsintLatency.ObserveDuration(d)
}

// hybridObserve flushes one freshly run fallback campaign.
func (m *Metrics) hybridObserve(o *hybrid.Outcome, d time.Duration) {
	if m == nil {
		return
	}
	m.HybridCampaigns.Inc()
	if o.Rescued {
		m.HybridRescued.Inc()
	}
	m.HybridExecs.Add(uint64(o.Execs))
	m.HybridLatency.ObserveDuration(d)
}

// hybridRejected counts one corrupted cached outcome discarded by the
// replay gate.
func (m *Metrics) hybridRejected() {
	if m == nil {
		return
	}
	m.HybridRejected.Inc()
}

// staticShortCircuit counts one statically-unreachable verdict emitted
// without running symbolic execution.
func (m *Metrics) staticShortCircuit() {
	if m == nil {
		return
	}
	m.StaticShortCircuits.Inc()
}
