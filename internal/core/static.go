package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"octopocs/internal/asm"
	"octopocs/internal/cfg"
	"octopocs/internal/faultinject"
	"octopocs/internal/journal"
	"octopocs/internal/mirstatic"
)

// staticEnabled resolves whether the static pre-analysis runs for a pair:
// a per-pair override wins, then the pipeline configuration.
func (p *Pipeline) staticEnabled(pair *Pair) bool {
	if pair.StaticPrune != nil {
		return *pair.StaticPrune
	}
	return p.cfg.StaticPrune
}

// staticKey derives the content address of the static pre-analysis artifact.
// The analysis is a pure function of the T program, so only its assembled
// text participates.
func staticKey(pair *Pair) string {
	h := sha256.New()
	io.WriteString(h, asm.Format(pair.T))
	return "ps:" + hex.EncodeToString(h.Sum(nil))
}

// phaseStatic produces (or retrieves) the static pre-analysis of T: the MIR
// verifier, constant folding with dead-block elimination, dominator trees,
// and the may-call-anything reachability closure. The boolean result reports
// a cache hit. A verifier rejection is a hard error — a malformed T cannot
// be verified soundly by any later phase either.
func (p *Pipeline) phaseStatic(ctx context.Context, pair *Pair) (*mirstatic.Analysis, bool, error) {
	var key string
	if p.p2Cache != nil {
		key = staticKey(pair)
		v, hit := p.cacheGet(p.p2Cache, key)
		journal.FromContext(ctx).Emit(journal.EvCacheProbe,
			journal.Attrs{"phase": "static", "key": key, "hit": hit})
		if hit {
			if sa, ok := v.(*mirstatic.Analysis); ok {
				return sa, true, nil
			}
		}
	}
	if err := p.cfg.Faults.Err(faultinject.CoreStatic); err != nil {
		return nil, false, fmt.Errorf("pair %s: static pre-analysis of T: %w", pair.Name, err)
	}
	start := time.Now()
	sa, err := mirstatic.Analyze(pair.T)
	if err != nil {
		return nil, false, fmt.Errorf("pair %s: static pre-analysis of T: %w", pair.Name, err)
	}
	p.cfg.Metrics.staticObserve(&sa.Summary, time.Since(start))
	if p.p2Cache != nil {
		p.cachePut(p.p2Cache, key, sa)
	}
	return sa, false, nil
}

// prunerOf adapts an optional analysis to the cfg.Pruner interface without
// producing a non-nil interface around a nil pointer.
func prunerOf(sa *mirstatic.Analysis) cfg.Pruner {
	if sa == nil {
		return nil
	}
	return sa
}
