package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"octopocs/internal/absint"
	"octopocs/internal/asm"
	"octopocs/internal/cfg"
	"octopocs/internal/faultinject"
	"octopocs/internal/journal"
	"octopocs/internal/mirstatic"
	"octopocs/internal/symex"
)

// staticEnabled resolves whether the static pre-analysis runs for a pair:
// a per-pair override wins, then the pipeline configuration.
func (p *Pipeline) staticEnabled(pair *Pair) bool {
	if pair.StaticPrune != nil {
		return *pair.StaticPrune
	}
	return p.cfg.StaticPrune
}

// staticKey derives the content address of the static pre-analysis artifact.
// The analysis is a pure function of the T program and of whether the
// abstract-interpretation strengthening ran, so both participate.
func staticKey(pair *Pair, absint bool) string {
	h := sha256.New()
	io.WriteString(h, asm.Format(pair.T))
	fmt.Fprintf(h, "|absint:%v", absint)
	return "ps:" + hex.EncodeToString(h.Sum(nil))
}

// absintKey derives the content address of the abstract-interpretation
// artifact: a pure function of the T program text.
func absintKey(pair *Pair) string {
	h := sha256.New()
	io.WriteString(h, asm.Format(pair.T))
	return "ai:" + hex.EncodeToString(h.Sum(nil))
}

// phaseAbsint produces (or retrieves) the interval∧congruence value ranges
// of T. The boolean result reports a cache hit. The analysis is total —
// malformed opcodes widen to ⊤ instead of failing — so there is no error
// path.
func (p *Pipeline) phaseAbsint(ctx context.Context, pair *Pair) (*absint.Result, bool) {
	var key string
	if p.aiCache != nil {
		key = absintKey(pair)
		v, hit := p.cacheGet(p.aiCache, key)
		journal.FromContext(ctx).Emit(journal.EvCacheProbe,
			journal.Attrs{"phase": "absint", "key": key, "hit": hit})
		if hit {
			if ai, ok := v.(*absint.Result); ok {
				return ai, true
			}
		}
	}
	start := time.Now()
	ai := absint.Analyze(pair.T)
	p.cfg.Metrics.absintObserve(&ai.Summary, time.Since(start))
	if p.aiCache != nil {
		p.cachePut(p.aiCache, key, ai)
	}
	return ai, false
}

// phaseStatic produces (or retrieves) the static pre-analysis of T: the MIR
// verifier, constant folding with dead-block elimination, dominator trees,
// and the may-call-anything reachability closure. The boolean result reports
// a cache hit. A verifier rejection is a hard error — a malformed T cannot
// be verified soundly by any later phase either.
func (p *Pipeline) phaseStatic(ctx context.Context, pair *Pair, ai *absint.Result) (*mirstatic.Analysis, bool, error) {
	var key string
	if p.p2Cache != nil {
		key = staticKey(pair, ai != nil)
		v, hit := p.cacheGet(p.p2Cache, key)
		journal.FromContext(ctx).Emit(journal.EvCacheProbe,
			journal.Attrs{"phase": "static", "key": key, "hit": hit})
		if hit {
			if sa, ok := v.(*mirstatic.Analysis); ok {
				return sa, true, nil
			}
		}
	}
	if err := p.cfg.Faults.Err(faultinject.CoreStatic); err != nil {
		return nil, false, fmt.Errorf("pair %s: static pre-analysis of T: %w", pair.Name, err)
	}
	start := time.Now()
	sa, err := mirstatic.AnalyzeOpts(pair.T, mirstatic.Options{Absint: ai != nil, Ranges: ai})
	if err != nil {
		return nil, false, fmt.Errorf("pair %s: static pre-analysis of T: %w", pair.Name, err)
	}
	p.cfg.Metrics.staticObserve(&sa.Summary, time.Since(start))
	if p.p2Cache != nil {
		p.cachePut(p.p2Cache, key, sa)
	}
	return sa, false, nil
}

// prunerOf adapts an optional analysis to the cfg.Pruner interface without
// producing a non-nil interface around a nil pointer.
func prunerOf(sa *mirstatic.Analysis) cfg.Pruner {
	if sa == nil {
		return nil
	}
	return sa
}

// oracleOf adapts optional value ranges to the symex.StaticOracle interface
// without producing a non-nil interface around a nil pointer.
func oracleOf(ai *absint.Result) symex.StaticOracle {
	if ai == nil {
		return nil
	}
	return ai
}
