package core_test

import (
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
)

// TestThetaLimitation documents the paper's § VII loop-bound limitation:
// when reaching ep needs more loop iterations than θ allows, verification
// degrades; with a sufficient θ the same pair verifies. The subject is the
// corpus iteration pair, whose T demands 20 guided loop iterations before
// calling the shared decoder.
func TestThetaLimitation(t *testing.T) {
	const need = 20

	t.Run("theta too small", func(t *testing.T) {
		rep, err := core.New(core.Config{Theta: 8}).Verify(corpus.IterationPair(need))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict == core.VerdictTriggered {
			t.Fatalf("verified despite θ=8 < %d required iterations: %v", need, rep)
		}
		t.Logf("degraded as the paper describes: %v", rep)
	})

	t.Run("theta sufficient", func(t *testing.T) {
		rep, err := core.New(core.Config{Theta: 64}).Verify(corpus.IterationPair(need))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != core.VerdictTriggered {
			t.Fatalf("θ=64 should verify the %d-iteration pair: %v (reason %q)", need, rep, rep.Reason)
		}
	})
}
