package core_test

import (
	"math/rand"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/vm"
)

// TestPipelineRobustToMutatedPoCs feeds the pipeline corrupted variants of
// real PoCs. Any individual verification may legitimately error (the
// mutant may no longer crash S) or change verdict, but the pipeline must
// never panic and must keep its invariants: a Triggered verdict implies a
// generated poc' that concretely crashes T inside ℓ.
func TestPipelineRobustToMutatedPoCs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pipeline := core.New(core.Config{})

	mutate := func(poc []byte) []byte {
		out := append([]byte(nil), poc...)
		switch rng.Intn(4) {
		case 0: // flip random bytes
			for k := 0; k < 1+rng.Intn(3); k++ {
				out[rng.Intn(len(out))] ^= byte(1 << rng.Intn(8))
			}
		case 1: // truncate
			out = out[:rng.Intn(len(out))]
		case 2: // extend with garbage
			for k := 0; k < 1+rng.Intn(16); k++ {
				out = append(out, byte(rng.Intn(256)))
			}
		case 3: // random byte overwrite
			if len(out) > 0 {
				out[rng.Intn(len(out))] = byte(rng.Intn(256))
			}
		}
		return out
	}

	trials := 0
	for _, idx := range []int{4, 7, 9, 10} {
		for k := 0; k < 6; k++ {
			spec := corpus.ByIdx(idx)
			spec.Pair.PoC = mutate(spec.Pair.PoC)
			rep, err := pipeline.Verify(spec.Pair)
			trials++
			if err != nil {
				continue // e.g. the mutant no longer crashes S — fine
			}
			if rep.Verdict == core.VerdictTriggered {
				out := vm.New(spec.Pair.T, vm.Config{
					Input:    rep.PoCPrime,
					MaxSteps: spec.Pair.MaxSteps,
				}).Run()
				if !out.Crashed() || !out.CrashedIn(spec.Pair.Lib) {
					t.Errorf("idx %d mutant %d: triggered verdict but poc' outcome %v", idx, k, out)
				}
			}
			if rep.PoCGenerated() && rep.Verdict == core.VerdictNotTriggerable {
				t.Errorf("idx %d mutant %d: not-triggerable verdict with a poc'", idx, k)
			}
		}
	}
	if trials != 24 {
		t.Fatalf("trials = %d, want 24", trials)
	}
}
