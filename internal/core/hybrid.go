package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"octopocs/internal/asm"
	"octopocs/internal/cfg"
	"octopocs/internal/expr"
	"octopocs/internal/fuzz"
	"octopocs/internal/hybrid"
	"octopocs/internal/journal"
	"octopocs/internal/solver"
)

// hybridSeed fixes the campaign RNG: the fallback must be a pure function
// of the pair (for the hy: artifact cache and for run-to-run determinism),
// so the seed is a constant rather than a knob.
const hybridSeed = 1

// hybridEligible reports whether a reform failure reason may be handed to
// the directed-fuzzing fallback. Only θ-exhaustion (loop-dead) and
// budget exhaustion qualify: both mean the analysis ran out of resources,
// not that it proved anything about T. Every other reason is either a
// sound not-triggerable argument (unsat, program-dead, param-mismatch,
// ep-not-called) that fuzzing must never override, or a structural failure
// (no-crash) the campaign could not repair.
func hybridEligible(r Reason) bool {
	return r == ReasonLoopDead || r == ReasonBudget
}

// partialSeed solves whatever constraints the failed exploration gathered
// into a concrete input — the partially-solved poc′ that seeds the hybrid
// campaign past the gates symex did manage to pass (magic bytes, checksum
// preimages, pinned counts). Best-effort: nil when the fallback is off,
// the reason is not eligible, no constraints survived, or the solve fails.
func (p *Pipeline) partialSeed(constraints []*expr.Expr, inputSize int, reason Reason) []byte {
	if !p.cfg.HybridFuzz || !hybridEligible(reason) || len(constraints) == 0 {
		return nil
	}
	sol := solver.Solver{Budget: p.cfg.SatBudget, Metrics: p.cfg.Metrics.solverSink()}
	model, err := sol.Solve(constraints)
	if err != nil {
		return nil
	}
	return model.Fill(inputSize, p.cfg.PadByte)
}

// hyKey derives the content address of a hybrid-campaign outcome. Every
// input that influences the campaign participates: the T program, the
// target ep, the seeds (partial and original poc), the frozen bunch spans,
// and every exec/step/size budget. Workers is deliberately absent — shard
// results are byte-identical for any worker count.
func (p *Pipeline) hyKey(pair *Pair, ep string, c *hybrid.Campaign) string {
	h := sha256.New()
	io.WriteString(h, asm.Format(pair.T))
	fmt.Fprintf(h, "|ep:%s|execs:%d|steps:%d|insize:%d|seed:%d|shards:%d",
		ep, c.MaxExecs, c.MaxSteps, c.MaxInputLen, c.Seed, c.Shards)
	for _, s := range c.Seeds {
		fmt.Fprintf(h, "|seed:%d:", len(s))
		h.Write(s)
	}
	for _, sp := range c.Frozen {
		fmt.Fprintf(h, "|frozen:%d+%d", sp.Start, sp.Len)
	}
	return "hy:" + hex.EncodeToString(h.Sum(nil))
}

// phaseHybrid runs (or retrieves) the directed-fuzzing fallback campaign
// for a hybrid-eligible reform failure. The boolean result reports a cache
// hit. A cached outcome claiming a rescue is replayed on the concrete VM
// before it is trusted; a corrupted artifact (poc′ no longer crashing T
// inside ℓ) is discarded and the campaign recomputed, so cache damage can
// cost time but never a wrong verdict.
func (p *Pipeline) phaseHybrid(ctx context.Context, pair *Pair, ep string, dist *cfg.Distances, bunches []BunchBytes, partial []byte, reason Reason) (*hybrid.Outcome, bool) {
	rec := journal.FromContext(ctx)
	var seeds [][]byte
	if len(partial) > 0 {
		seeds = append(seeds, partial)
	}
	seeds = append(seeds, pair.PoC)
	frozen := make([]fuzz.Span, 0, len(bunches))
	for _, b := range bunches {
		if len(b.Bytes) == 0 {
			continue
		}
		frozen = append(frozen, fuzz.Span{Start: int(b.Start), Len: len(b.Bytes)})
	}
	// Resolve the default budget here rather than inside Run, so the hy:
	// cache key and the journaled budget reflect the effective value.
	execs := p.cfg.HybridExecs
	if execs <= 0 {
		execs = hybrid.DefaultMaxExecs
	}
	c := &hybrid.Campaign{
		Prog:        pair.T,
		Lib:         pair.Lib,
		TargetFn:    ep,
		Dist:        dist,
		Seeds:       seeds,
		Frozen:      frozen,
		MaxExecs:    execs,
		MaxSteps:    p.maxSteps(pair),
		MaxInputLen: p.symInputSize(pair),
		Seed:        hybridSeed,
		Shards:      hybrid.DefaultShards,
		Workers:     p.cfg.HybridWorkers,
	}

	var key string
	if p.hyCache != nil {
		key = p.hyKey(pair, ep, c)
		v, hit := p.cacheGet(p.hyCache, key)
		rec.Emit(journal.EvCacheProbe,
			journal.Attrs{"phase": "hybrid", "key": key, "hit": hit})
		if hit {
			if o, ok := v.(*hybrid.Outcome); ok {
				if hybrid.Revalidate(c, o) {
					rec.Emit(journal.EvHybridConfirm, journal.Attrs{
						"confirmed": true, "cached": true, "crash_loc": o.CrashLoc})
					return o, true
				}
				// A rescue whose poc′ no longer reproduces: discard and
				// recompute rather than report a stale crash.
				p.cfg.Metrics.hybridRejected()
				rec.Emit(journal.EvHybridConfirm, journal.Attrs{
					"confirmed": false, "cached": true, "crash_loc": o.CrashLoc})
			}
		}
	}

	rec.Emit(journal.EvHybridStart, journal.Attrs{
		"reason": string(reason),
		"seeds":  len(seeds),
		"frozen": len(frozen),
		"execs":  c.MaxExecs,
	})
	start := time.Now()
	out := c.Run()
	p.cfg.Metrics.hybridObserve(out, time.Since(start))
	rec.Emit(journal.EvHybridDone, journal.Attrs{
		"rescued":    out.Rescued,
		"execs":      out.Execs,
		"masked_arm": out.MaskedArm,
		"winner":     out.WinnerShard,
		"crash_loc":  out.CrashLoc,
	})
	if p.hyCache != nil {
		p.cachePut(p.hyCache, key, out)
	}
	return out, false
}
