package core

import (
	"errors"
	"fmt"

	"octopocs/internal/cfg"
	"octopocs/internal/expr"
	"octopocs/internal/isa"
	"octopocs/internal/solver"
	"octopocs/internal/symex"
	"octopocs/internal/taint"
	"octopocs/internal/vm"
)

// Config tunes the pipeline. The zero value gives the paper's defaults;
// the ablation switches exist for the Table III/IV experiments.
type Config struct {
	// Theta is the loop-iteration bound θ (default 120, § IV-B).
	Theta int
	// MaxSteps is the per-run instruction budget.
	MaxSteps int64
	// SatBudget is the per-check solver budget.
	SatBudget int64
	// ContextFree disables context-aware taint analysis (Table III
	// baseline).
	ContextFree bool
	// StaticCFGOnly disables dynamic CFG refinement (§ IV-B discusses
	// using the static CFG as a fallback option).
	StaticCFGOnly bool
	// PadByte fills unconstrained poc' bytes.
	PadByte byte
}

// Pipeline verifies pairs. Create with New.
type Pipeline struct {
	cfg    Config
	debugf func(format string, args ...any)
}

// New returns a pipeline with the given configuration.
func New(cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg}
}

// SetDebugf installs a diagnostic logger for internal analysis errors that
// degrade into budget-class verdicts.
func (p *Pipeline) SetDebugf(f func(format string, args ...any)) { p.debugf = f }

// errParamMismatch aborts P2/P3 when T enters ep with context parameters
// that differ from the recorded S context (the Idx-10..12 mechanism).
var errParamMismatch = errors.New("ep context parameter mismatch")

// inputSlack is added to len(poc) for the symbolic poc' size, making room
// for a longer guiding prefix in T.
const inputSlack = 64

// FindEp runs the preprocessing step alone: crash S with the PoC and
// return the entry point of ℓ (the bottom-most ℓ function on the crash
// backtrace).
func (p *Pipeline) FindEp(pair *Pair) (string, error) {
	out := p.runConcrete(pair.S, pair.PoC, pair.MaxSteps)
	if !out.Crashed() {
		return "", fmt.Errorf("pair %s: poc does not crash S (%s)", pair.Name, out)
	}
	ep, ok := epFromBacktrace(out.Crash.Backtrace, pair.Lib)
	if !ok {
		return "", fmt.Errorf("pair %s: no ℓ function on the S crash backtrace", pair.Name)
	}
	return ep, nil
}

// Verify runs the full pipeline on one pair.
func (p *Pipeline) Verify(pair *Pair) (*Report, error) {
	rep := &Report{Pair: pair.Name}

	// Preprocessing: crash S with the PoC, find ep on the backtrace.
	sOut := p.runConcrete(pair.S, pair.PoC, pair.MaxSteps)
	if !sOut.Crashed() {
		return nil, fmt.Errorf("pair %s: poc does not crash S (%s)", pair.Name, sOut)
	}
	rep.SCrash = sOut.Crash
	ep, ok := epFromBacktrace(sOut.Crash.Backtrace, pair.Lib)
	if !ok {
		return nil, fmt.Errorf("pair %s: no ℓ function on the S crash backtrace", pair.Name)
	}
	rep.Ep = ep

	// P1: context-aware taint analysis over the S run.
	bunches, err := p.extractPrimitives(pair, ep)
	if err != nil {
		return nil, fmt.Errorf("pair %s: P1: %w", pair.Name, err)
	}
	rep.Bunches = bunches

	// ep must exist in T at all (ℓ is shared, but be defensive).
	if pair.T.Func(ep) == nil {
		rep.Verdict, rep.Type, rep.Reason = VerdictNotTriggerable, TypeIII, ReasonEpMissing
		return rep, nil
	}

	// Backward path finding over T's CFG. Indirect-call edges are
	// invisible statically; the dynamic CFG adds edges observed by a
	// bounded symbolic exploration, matching § IV-B ("a dynamic CFG is
	// generated with symbolic execution"). Discovery is partial — when
	// it misses the edge to ep, verification fails (the Idx-15 angr
	// analog) rather than risking an unsound not-triggerable verdict.
	graph := cfg.Build(pair.T)
	if !p.cfg.StaticCFGOnly {
		for _, e := range symex.Discover(pair.T, symex.NaiveConfig{
			InputSize: len(pair.PoC) + inputSlack,
			MaxSteps:  p.maxSteps(pair),
			SatBudget: p.cfg.SatBudget,
		}) {
			graph.ObserveCall(e.Site, e.Callee)
		}
	}
	if !graph.Reachable(ep) {
		if err := graph.CheckResolvable(ep); err != nil {
			// The Idx-15 case: the CFG tool cannot rule reachability
			// out, so no sound verdict exists.
			rep.Verdict, rep.Type, rep.Reason = VerdictFailure, TypeFailure, ReasonCFGUnresolved
			return rep, nil
		}
		// Case (ii): ep is never called in T.
		rep.Verdict, rep.Type, rep.Reason = VerdictNotTriggerable, TypeIII, ReasonEpNotCalled
		return rep, nil
	}

	// P2 + P3: directed symbolic execution with bunch placement.
	pocPrime, stats, reason := p.reform(pair, ep, graph, bunches)
	rep.Stats = stats
	if reason != ReasonNone {
		switch reason {
		case ReasonProgramDead, ReasonLoopDead, ReasonParamMismatch, ReasonUnsat, ReasonEpNotCalled:
			rep.Verdict, rep.Type, rep.Reason = VerdictNotTriggerable, TypeIII, reason
		default:
			rep.Verdict, rep.Type, rep.Reason = VerdictFailure, TypeFailure, reason
		}
		return rep, nil
	}
	rep.PoCPrime = pocPrime

	// P4: verify the propagated vulnerability with poc'.
	tOut := p.runConcrete(pair.T, pocPrime, pair.MaxSteps)
	if !tOut.Crashed() || !tOut.CrashedIn(pair.Lib) {
		rep.Verdict, rep.Type, rep.Reason = VerdictFailure, TypeFailure, ReasonNoCrash
		return rep, nil
	}
	rep.TCrash = tOut.Crash
	rep.Verdict = VerdictTriggered
	// The paper observes that poc' "did not contain unnecessary bytes";
	// trim trailing padding while the crash is preserved. Every candidate
	// is re-verified concretely, so minimization cannot invalidate the
	// verdict.
	rep.PoCPrime = p.minimize(pair, rep.PoCPrime, tOut.Crash)

	// Type classification: Type-I when the original poc already triggers
	// T (its guiding input needs no reform).
	origOut := p.runConcrete(pair.T, pair.PoC, pair.MaxSteps)
	rep.GuidingSame = origOut.Crashed() && origOut.CrashedIn(pair.Lib)
	if rep.GuidingSame {
		rep.Type = TypeI
	} else {
		rep.Type = TypeII
	}
	return rep, nil
}

// minimize shortens a verified poc' from the tail while the crash at the
// same location survives, first by halving and then byte by byte.
func (p *Pipeline) minimize(pair *Pair, poc []byte, want *vm.Crash) []byte {
	stillCrashes := func(candidate []byte) bool {
		out := p.runConcrete(pair.T, candidate, pair.MaxSteps)
		return out.Crashed() && out.Crash.Loc == want.Loc
	}
	best := poc
	for len(best) > 0 {
		half := best[:len(best)/2]
		if !stillCrashes(half) {
			break
		}
		best = half
	}
	for len(best) > 0 && stillCrashes(best[:len(best)-1]) {
		best = best[:len(best)-1]
	}
	return best
}

func (p *Pipeline) maxSteps(pair *Pair) int64 {
	if pair.MaxSteps > 0 {
		return pair.MaxSteps
	}
	if p.cfg.MaxSteps > 0 {
		return p.cfg.MaxSteps
	}
	return vm.DefaultMaxSteps
}

func (p *Pipeline) runConcrete(prog *isa.Program, input []byte, maxSteps int64) *vm.Outcome {
	if maxSteps <= 0 {
		maxSteps = p.cfg.MaxSteps
	}
	m := vm.New(prog, vm.Config{Input: input, MaxSteps: maxSteps})
	return m.Run()
}

// extractPrimitives is P1: rerun S under the taint engine and materialize
// bunches.
func (p *Pipeline) extractPrimitives(pair *Pair, ep string) ([]BunchBytes, error) {
	eng := taint.NewEngine(taint.Config{
		Lib:          pair.Lib,
		Ep:           ep,
		ContextAware: !p.cfg.ContextFree,
	})
	m := vm.New(pair.S, vm.Config{
		Input:    pair.PoC,
		MaxSteps: p.maxSteps(pair),
		Hooks:    eng.Hooks(),
	})
	out := m.Run()
	if !out.Crashed() {
		return nil, fmt.Errorf("S did not crash under taint instrumentation (%s)", out)
	}
	res := eng.Result()
	if len(res.Bunches) == 0 {
		return nil, errors.New("no crash primitives extracted (ep never entered)")
	}
	return materializeBunches(pair.PoC, res)
}

// reform is P2+P3: directed symbolic execution of T toward ep with bunch
// placement at each entry, then constraint solving into poc'.
func (p *Pipeline) reform(pair *Pair, ep string, graph *cfg.Graph, bunches []BunchBytes) ([]byte, symex.Stats, Reason) {
	inputSize := pair.InputSize
	if inputSize <= 0 {
		inputSize = len(pair.PoC) + inputSlack
	}
	ex := symex.New(pair.T, symex.Config{
		InputSize: inputSize,
		MaxSteps:  p.maxSteps(pair),
		Theta:     p.cfg.Theta,
		SatBudget: p.cfg.SatBudget,
		Target:    ep,
		Distances: graph.DistancesTo(ep),
	})

	placeSol := solver.Solver{Budget: p.cfg.SatBudget}
	visitor := func(entry symex.EpEntry, st *symex.State) (symex.Decision, error) {
		if entry.Seq > len(bunches) {
			return symex.Stop, nil
		}
		b := bunches[entry.Seq-1]
		// "OCTOPOCS executes ep in T with the same parameters as those
		// used in S": compare/pin the semantic context arguments.
		for _, idx := range pair.CtxArgs {
			if idx >= len(entry.Args) || idx >= len(b.Args) {
				continue
			}
			want := b.Args[idx]
			if got, ok := entry.Args[idx].IsConst(); ok {
				if got != want {
					return symex.Stop, errParamMismatch
				}
				continue
			}
			st.AddConstraint(expr.Bin(expr.OpEq, entry.Args[idx], expr.Const(want)))
		}
		// P3.1: bind the bunch at the current file position indicator.
		pos := entry.FilePos
		if int(pos)+len(b.Bytes) > inputSize {
			return symex.Stop, fmt.Errorf("bunch %d does not fit at position %d (input size %d)", b.Seq, pos, inputSize)
		}
		for i, bv := range b.Bytes {
			st.AddConstraint(expr.Bin(expr.OpEq,
				expr.Sym(int(pos)+i), expr.Const(uint64(bv))))
		}
		// Placement feasibility: a contradiction between the guiding
		// constraints and the crash primitive makes this path useless;
		// dying here lets directed execution backtrack to a longer or
		// different path (the paper's iterate-until-not-loop-dead
		// policy subsumed by decision reversal).
		if ok, err := placeSol.Sat(st.Constraints()); err == nil && !ok {
			return symex.Infeasible, nil
		}
		if entry.Seq == len(bunches) {
			return symex.Stop, nil
		}
		return symex.Continue, nil
	}

	res, err := ex.Run(visitor)
	if err != nil {
		if errors.Is(err, errParamMismatch) {
			return nil, symex.Stats{}, ReasonParamMismatch
		}
		if p.debugf != nil {
			p.debugf("reform %s: %v", pair.Name, err)
		}
		return nil, symex.Stats{}, ReasonBudget
	}
	if !res.Reached() {
		switch res.Kind {
		case symex.KindInfeasible:
			return nil, res.Stats, ReasonUnsat
		case symex.KindProgramDead:
			return nil, res.Stats, ReasonProgramDead
		case symex.KindLoopDead:
			return nil, res.Stats, ReasonLoopDead
		case symex.KindExited, symex.KindCrashed:
			return nil, res.Stats, ReasonEpNotCalled
		default:
			return nil, res.Stats, ReasonBudget
		}
	}

	// P3.3: solve everything into concrete bytes.
	sol := solver.Solver{Budget: p.cfg.SatBudget}
	model, err := sol.Solve(res.Constraints)
	if err != nil {
		if errors.Is(err, solver.ErrUnsat) {
			return nil, res.Stats, ReasonUnsat
		}
		return nil, res.Stats, ReasonBudget
	}
	// The reformed PoC keeps its full symbolic length: trailing padding
	// may still be consumed by ℓ past the final ep entry (the symbolic
	// run stops there, so nothing constrains those bytes — but a
	// truncated file would turn an overflowing read into a harmless
	// short read).
	return model.Fill(inputSize, p.cfg.PadByte), res.Stats, ReasonNone
}
