package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"octopocs/internal/absint"
	"octopocs/internal/cfg"
	"octopocs/internal/expr"
	"octopocs/internal/faultinject"
	"octopocs/internal/isa"
	"octopocs/internal/journal"
	"octopocs/internal/mirstatic"
	"octopocs/internal/solver"
	"octopocs/internal/symex"
	"octopocs/internal/taint"
	"octopocs/internal/telemetry"
	"octopocs/internal/vm"
)

// Config tunes the pipeline. The zero value gives the paper's defaults;
// the ablation switches exist for the Table III/IV experiments.
type Config struct {
	// Theta is the loop-iteration bound θ (default 120, § IV-B).
	Theta int
	// MaxSteps is the per-run instruction budget.
	MaxSteps int64
	// SatBudget is the per-check solver budget.
	SatBudget int64
	// ContextFree disables context-aware taint analysis (Table III
	// baseline).
	ContextFree bool
	// StaticCFGOnly disables dynamic CFG refinement (§ IV-B discusses
	// using the static CFG as a fallback option).
	StaticCFGOnly bool
	// StaticPrune enables the static pre-analysis of T before P2: the MIR
	// verifier, constant folding with dead-block elimination, and dominator
	// computation. When the verified T provably cannot reach ep — even with
	// every unresolved indirect call over-approximated as may-call-anything
	// — the pipeline short-circuits to a sound statically-unreachable
	// verdict without running symbolic execution; otherwise the pruned CFG
	// view is fed to the distance maps and the symex frontier so provably
	// dead branches are never scheduled. Pruning never changes a verdict or
	// the poc' bytes: a statically dead direction is semantically
	// infeasible, so the only thing skipped is its SAT refutation.
	StaticPrune bool
	// Absint enables the abstract-interpretation value-range layer: a
	// whole-program interval∧congruence analysis of T whose branch proofs
	// are consulted by the symbolic executor before the solver ever sees a
	// feasibility query (a proved branch is discharged with zero SAT
	// checks), and — when StaticPrune is also on — strengthen the static
	// pre-analysis beyond constant propagation (parity guards after
	// even-stride loops, width-bounded loads). Like StaticPrune, the layer
	// never changes a verdict or the poc' bytes: the oracle's proofs hold on
	// every concrete execution, so only the SAT checks differ.
	Absint bool
	// PadByte fills unconstrained poc' bytes.
	PadByte byte
	// HybridFuzz enables the directed-fuzzing fallback (internal/hybrid):
	// when symbolic execution ends θ-exhausted (loop-dead) or out of solver
	// budget — the two outcomes where the failure is a bound of the
	// analysis, not a proof about T — a deterministic campaign seeded with
	// the partially-solved poc' and the original PoC, masked by the P1
	// bunch offsets and annealed toward ep with P2's distance maps, tries
	// to produce the crash symex could not reach. A campaign crash is
	// replayed on the concrete VM before it is reported, and only upgrades
	// those two failure outcomes; sound verdicts are never revisited.
	HybridFuzz bool
	// HybridExecs bounds the fallback campaign's executions (0 means
	// hybrid.DefaultMaxExecs).
	HybridExecs int64
	// HybridWorkers bounds the goroutines running campaign shards; purely
	// a throughput knob (results are identical for any value).
	HybridWorkers int
	// SymexWorkers selects the P2/P3 exploration engine: 0 (default) keeps
	// the sequential backtracking loop; >= 1 runs the parallel frontier
	// engine with that many explorer goroutines. Any N >= 1 produces the
	// same verdict and poc' bytes as N = 1 (the frontier commit protocol is
	// deterministic); 0 and 1 may legitimately differ on pairs that
	// backtrack, because the sequential engine commits its first success
	// while the frontier commits the minimal-path one.
	SymexWorkers int
	// SatCacheEntries sizes the shared satisfiability-verdict cache used by
	// every feasibility check of this pipeline (directed execution, bunch
	// placement, dynamic-CFG discovery). 0 means solver.DefaultCacheEntries;
	// negative disables memoization. Cached verdicts are always identical
	// to fresh ones, so this is purely a performance knob.
	SatCacheEntries int
	// Metrics, when non-nil, receives engine counters (VM, symbolic
	// executor, solver) from every run. Leave nil to disable engine
	// instrumentation entirely; the hot paths then contain no telemetry
	// calls at all.
	Metrics *Metrics
	// Retry bounds the per-phase retry loop for transient faults (injected
	// SAT failures, recovered worker panics). The zero value retries
	// DefaultRetryMax times; Max < 0 disables retries.
	Retry RetryPolicy
	// Faults, when non-nil, injects the scheduled faults at every named
	// injection point threaded through the pipeline: the solver, the symex
	// engines, the artifact caches, and the static pre-analysis. Nil in
	// production — every Fire call on a nil injector is a no-op.
	Faults *faultinject.Injector
}

// Pipeline verifies pairs. Create with New. A Pipeline holds no per-run
// state, so one instance may verify many pairs concurrently; attached
// caches must be concurrency-safe (see SetCaches).
type Pipeline struct {
	cfg     Config
	p1Cache Cache
	p2Cache Cache
	aiCache Cache
	hyCache Cache
	// satCache memoizes satisfiability verdicts across all phases and all
	// concurrent verifications sharing this pipeline; nil when disabled.
	satCache *solver.Cache
}

// New returns a pipeline with the given configuration.
func New(cfg Config) *Pipeline {
	p := &Pipeline{cfg: cfg}
	if cfg.SatCacheEntries >= 0 {
		p.satCache = solver.NewCache(cfg.SatCacheEntries)
	}
	if cfg.Faults != nil && cfg.Metrics != nil {
		cfg.Faults.SetCounters(faultinject.Counters{
			Injected:  cfg.Metrics.FaultsInjected,
			Recovered: cfg.Metrics.FaultsRecovered,
			Retried:   cfg.Metrics.FaultsRetried,
			Degraded:  cfg.Metrics.FaultsDegraded,
		})
	}
	return p
}

// SatCache exposes the pipeline's shared satisfiability cache (nil when
// disabled) so callers can surface its hit-rate statistics.
func (p *Pipeline) SatCache() *solver.Cache { return p.satCache }

// errParamMismatch aborts P2/P3 when T enters ep with context parameters
// that differ from the recorded S context (the Idx-10..12 mechanism).
var errParamMismatch = errors.New("ep context parameter mismatch")

// inputSlack is added to len(poc) for the symbolic poc' size, making room
// for a longer guiding prefix in T.
const inputSlack = 64

// FindEp runs the preprocessing step alone: crash S with the PoC and
// return the entry point of ℓ (the bottom-most ℓ function on the crash
// backtrace).
func (p *Pipeline) FindEp(pair *Pair) (string, error) {
	out := p.runConcrete(context.Background(), pair.S, pair.PoC, pair.MaxSteps)
	if !out.Crashed() {
		return "", fmt.Errorf("pair %s: poc does not crash S (%s)", pair.Name, out)
	}
	ep, ok := epFromBacktrace(out.Crash.Backtrace, pair.Lib)
	if !ok {
		return "", fmt.Errorf("pair %s: no ℓ function on the S crash backtrace", pair.Name)
	}
	return ep, nil
}

// Verify runs the full pipeline on one pair.
func (p *Pipeline) Verify(pair *Pair) (*Report, error) {
	return p.VerifyContext(context.Background(), pair)
}

// VerifyContext runs the full pipeline on one pair under a context. When
// the context is cancelled or its deadline passes, the run stops
// cooperatively mid-phase — the stop signal is threaded through the
// concrete VM, the taint run, and every symbolic step loop — and the
// method returns the context's error.
//
// When ctx carries a journal.Recorder (journal.With), every phase emits
// its decision events into it and the run closes with a verdict (or
// job.error) event whose evidence attribute links the verdict to the
// deterministic events that produced it.
func (p *Pipeline) VerifyContext(ctx context.Context, pair *Pair) (*Report, error) {
	rec := journal.FromContext(ctx)
	rec.Emit(journal.EvJobStart, journal.Attrs{"pair": pair.Name})
	rep, err := p.verifyCtx(ctx, pair, rec)
	if err != nil {
		rec.EmitFinal(journal.EvJobError, journal.Attrs{"err": err.Error()})
		return rep, err
	}
	attrs := journal.Attrs{"verdict": rep.Verdict.String(), "type": rep.Type.String()}
	if rep.Reason != ReasonNone {
		attrs["reason"] = string(rep.Reason)
	}
	if rep.Verdict == VerdictTriggered || rep.Verdict == VerdictTriggeredByFuzzing {
		attrs["poc_bytes"] = len(rep.PoCPrime)
		attrs["guiding_same"] = rep.GuidingSame
	}
	rec.EmitFinal(journal.EvVerdict, attrs)
	return rep, nil
}

// verifyCtx is the phase body of VerifyContext; the wrapper owns the
// journal's terminal event so every return path below is linked to its
// evidence at exactly one place.
func (p *Pipeline) verifyCtx(ctx context.Context, pair *Pair, rec *journal.Recorder) (*Report, error) {
	rep := &Report{Pair: pair.Name}
	tr := telemetry.TraceFrom(ctx)
	root := tr.Start("verify", nil)
	root.SetAttr("pair", pair.Name)
	defer root.End()

	// Preprocessing + P1 (cache-aware): crash S with the PoC, find ep on
	// the backtrace, extract crash primitives.
	t0 := time.Now()
	sp := tr.Start("p1", root)
	var p1 *P1Artifact
	var p1Cached bool
	err := p.retryTransient(ctx, "p1", func() error {
		var rerr error
		p1, p1Cached, rerr = p.phase1(ctx, pair, sp)
		return rerr
	})
	sp.SetAttr("cached", p1Cached)
	sp.End()
	rep.Timings.P1 = time.Since(t0)
	rep.Timings.P1Cached = p1Cached
	if err != nil {
		return nil, err
	}
	rep.SCrash = p1.SCrash
	ep := p1.Ep
	rep.Ep = ep
	rep.Bunches = p1.Bunches
	rec.Emit(journal.EvP1Done, journal.Attrs{"ep": ep, "bunches": len(p1.Bunches), "cached": p1Cached})

	// ep must exist in T at all (ℓ is shared, but be defensive).
	if pair.T.Func(ep) == nil {
		rep.Verdict, rep.Type, rep.Reason = VerdictNotTriggerable, TypeIII, ReasonEpMissing
		return rep, nil
	}

	// Abstract interpretation (cache-aware): the interval∧congruence value
	// ranges of T. A pure function of the program with no failure modes —
	// unknown opcodes widen to ⊤ — so there is no degraded path to manage.
	var ai *absint.Result
	if p.cfg.Absint {
		t0 = time.Now()
		asp := tr.Start("absint", root)
		var aiCached bool
		ai, aiCached = p.phaseAbsint(ctx, pair)
		asp.SetAttr("cached", aiCached)
		asp.SetAttr("proved_branches", ai.Summary.ProvedBranches)
		asp.End()
		rep.Timings.Absint = time.Since(t0)
		rep.Timings.AbsintCached = aiCached
		rep.Absint = &ai.Summary
	}

	// Static pre-analysis (cache-aware): verify T, fold constants, prune
	// dead blocks, and — when even the may-call-anything over-approximation
	// of indirect calls cannot reach ep — short-circuit to the sound
	// statically-unreachable verdict with zero symbolic execution.
	var sa *mirstatic.Analysis
	if p.staticEnabled(pair) {
		t0 = time.Now()
		ssp := tr.Start("static", root)
		var staticCached bool
		sa, staticCached, err = p.phaseStatic(ctx, pair, ai)
		ssp.SetAttr("cached", staticCached)
		if sa != nil {
			ssp.SetAttr("dead_blocks", sa.Summary.DeadBlocks)
		}
		ssp.End()
		rep.Timings.Static = time.Since(t0)
		rep.Timings.StaticCached = staticCached
		if err != nil {
			if !faultinject.IsDegraded(err) {
				return nil, err
			}
			// Graceful degradation: the pipeline is complete without the
			// static layer — pruning only skips SAT refutations of
			// semantically infeasible directions — so an injected analysis
			// failure falls back to the unpruned CFG view. The verdict is
			// unchanged; only Timings and the pruned-branch counters differ.
			telemetry.Logger(ctx).Warn("static pre-analysis degraded; continuing unpruned",
				"pair", pair.Name, "err", err.Error())
			attrs := journal.Attrs{"phase": "static", "fallback": "unpruned-cfg"}
			if point, _, ok := faultinject.Describe(err); ok {
				attrs["point"] = string(point)
			}
			rec.Emit(journal.EvFaultDegraded, attrs)
			sa = nil
		}
		if sa != nil {
			rep.Static = &sa.Summary
			rec.Emit(journal.EvStaticDone, journal.Attrs{
				"cached":      staticCached,
				"dead_blocks": sa.Summary.DeadBlocks,
				"folded":      sa.Summary.FoldedBranches,
				"regions":     sa.Summary.DeadRegions,
				"reachable":   sa.Summary.ReachableFuncs,
			})
			mirstatic.RecordProofs(rec, sa)
			if sa.EpUnreachable(ep) {
				p.cfg.Metrics.staticShortCircuit()
				rec.Emit(journal.EvStaticShortCircuit, journal.Attrs{"ep": ep})
				rep.Verdict, rep.Type, rep.Reason = VerdictNotTriggerable, TypeIII, ReasonStaticUnreachable
				return rep, nil
			}
		}
	}

	// P2 preparation (cache-aware): backward path finding over T's CFG.
	// Indirect-call edges are invisible statically; the dynamic CFG adds
	// edges observed by a bounded symbolic exploration, matching § IV-B
	// ("a dynamic CFG is generated with symbolic execution"). Discovery is
	// partial — when it misses the edge to ep, verification fails (the
	// Idx-15 angr analog) rather than risking an unsound not-triggerable
	// verdict.
	t0 = time.Now()
	sp = tr.Start("p2_prep", root)
	var prep *P2Artifact
	var p2Cached bool
	err = p.retryTransient(ctx, "p2_prep", func() error {
		var rerr error
		prep, p2Cached, rerr = p.phase2Prep(ctx, pair, ep, sa, ai, sp)
		return rerr
	})
	sp.SetAttr("cached", p2Cached)
	sp.End()
	rep.Timings.P2Prep = time.Since(t0)
	rep.Timings.P2Cached = p2Cached
	if err != nil {
		return nil, err
	}
	rec.Emit(journal.EvP2Done, journal.Attrs{"cached": p2Cached, "reachable": prep.Dist != nil})
	if prep.Dist == nil {
		if err := prep.Graph.CheckResolvable(ep); err != nil {
			// The Idx-15 case: the CFG tool cannot rule reachability
			// out, so no sound verdict exists.
			rep.Verdict, rep.Type, rep.Reason = VerdictFailure, TypeFailure, ReasonCFGUnresolved
			return rep, nil
		}
		// Case (ii): ep is never called in T.
		rep.Verdict, rep.Type, rep.Reason = VerdictNotTriggerable, TypeIII, ReasonEpNotCalled
		return rep, nil
	}

	// P2 + P3: directed symbolic execution with bunch placement.
	rec.Emit(journal.EvSymexStart, journal.Attrs{"ep": ep, "input_size": p.symInputSize(pair)})
	t0 = time.Now()
	sp = tr.Start("reform", root)
	var pocPrime, partial []byte
	var stats symex.Stats
	var reason Reason
	err = p.retryTransient(ctx, "reform", func() error {
		var rerr error
		pocPrime, partial, stats, reason, rerr = p.reform(ctx, pair, ep, prep.Dist, p1.Bunches, prunerOf(sa), oracleOf(ai), sp)
		return rerr
	})
	sp.End()
	rep.Timings.Reform = time.Since(t0)
	if err != nil {
		return nil, err
	}
	rep.Stats = stats
	if reason != ReasonNone {
		// Hybrid fallback: a θ-exhaustion or solver-budget outcome is a
		// bound of the analysis, not a proof about T — exactly the two
		// outcomes a directed fuzzing campaign may still resolve. Sound
		// reasons (unsat, program-dead, param-mismatch, ep-not-called)
		// never reach the campaign.
		if p.cfg.HybridFuzz && hybridEligible(reason) {
			t0 = time.Now()
			hsp := tr.Start("hybrid", root)
			hout, hyCached := p.phaseHybrid(ctx, pair, ep, prep.Dist, p1.Bunches, partial, reason)
			hsp.SetAttr("cached", hyCached)
			hsp.SetAttr("rescued", hout.Rescued)
			hsp.End()
			rep.Timings.Hybrid = time.Since(t0)
			rep.Timings.HybridCached = hyCached
			rep.Hybrid = hout
			if hout.Rescued {
				rep.PoCPrime = append([]byte(nil), hout.PoCPrime...)
				crashed, p4err := p.phase4(ctx, pair, rep, VerdictTriggeredByFuzzing, root, rec)
				if p4err != nil {
					return nil, p4err
				}
				if crashed {
					// Keep the symex failure reason as provenance: it
					// records why the fallback had to run.
					rep.Reason = reason
					return rep, nil
				}
				// The replay-confirmed crash did not reproduce — a
				// corrupted outcome; fall through to the symex verdict.
				rep.PoCPrime = nil
			}
		}
		switch reason {
		case ReasonProgramDead, ReasonLoopDead, ReasonParamMismatch, ReasonUnsat, ReasonEpNotCalled:
			rep.Verdict, rep.Type, rep.Reason = VerdictNotTriggerable, TypeIII, reason
		default:
			rep.Verdict, rep.Type, rep.Reason = VerdictFailure, TypeFailure, reason
		}
		return rep, nil
	}
	rep.PoCPrime = pocPrime

	// P4: verify the propagated vulnerability with poc'.
	crashed, err := p.phase4(ctx, pair, rep, VerdictTriggered, root, rec)
	if err != nil {
		return nil, err
	}
	if !crashed {
		rep.Verdict, rep.Type, rep.Reason = VerdictFailure, TypeFailure, ReasonNoCrash
	}
	return rep, nil
}

// phase4 is the concrete verification tail shared by the reform path and
// the hybrid fallback: replay rep.PoCPrime on T, and on a crash inside ℓ
// set the given verdict, minimize, and classify Type-I/Type-II. It reports
// whether the crash held; the caller owns the no-crash verdict.
func (p *Pipeline) phase4(ctx context.Context, pair *Pair, rep *Report, verdict Verdict, root *telemetry.Span, rec *journal.Recorder) (bool, error) {
	tr := telemetry.TraceFrom(ctx)
	t0 := time.Now()
	p4 := tr.Start("p4", root)
	defer func() { rep.Timings.P4 = time.Since(t0) }()
	defer p4.End()
	tOut := p.runConcrete(ctx, pair.T, rep.PoCPrime, pair.MaxSteps)
	if tOut.Status == vm.StatusStopped {
		return false, ctxErr(ctx)
	}
	rec.Emit(journal.EvP4Verify, journal.Attrs{
		"crashed": tOut.Crashed(),
		"in_lib":  tOut.Crashed() && tOut.CrashedIn(pair.Lib),
		"bytes":   len(rep.PoCPrime),
	})
	if !tOut.Crashed() || !tOut.CrashedIn(pair.Lib) {
		return false, nil
	}
	rep.TCrash = tOut.Crash
	rep.Verdict = verdict
	// The paper observes that poc' "did not contain unnecessary bytes";
	// trim trailing padding while the crash is preserved. Every candidate
	// is re-verified concretely, so minimization cannot invalidate the
	// verdict.
	msp := tr.Start("minimize", p4)
	before := len(rep.PoCPrime)
	rep.PoCPrime = p.minimize(ctx, pair, rep.PoCPrime, tOut.Crash)
	msp.SetAttr("bytes", len(rep.PoCPrime))
	msp.End()
	rec.Emit(journal.EvP4Minimize, journal.Attrs{"from": before, "to": len(rep.PoCPrime)})
	if err := ctx.Err(); err != nil {
		return false, err
	}

	// Type classification: Type-I when the original poc already triggers
	// T (its guiding input needs no reform).
	csp := tr.Start("classify", p4)
	defer csp.End()
	origOut := p.runConcrete(ctx, pair.T, pair.PoC, pair.MaxSteps)
	if origOut.Status == vm.StatusStopped {
		return false, ctxErr(ctx)
	}
	rep.GuidingSame = origOut.Crashed() && origOut.CrashedIn(pair.Lib)
	if rep.GuidingSame {
		rep.Type = TypeI
	} else {
		rep.Type = TypeII
	}
	rec.Emit(journal.EvP4Classify, journal.Attrs{"guiding_same": rep.GuidingSame})
	return true, nil
}

// phase1 produces (or retrieves) the S-side artifact: preprocessing plus
// the P1 taint run. The boolean result reports a cache hit. Only complete
// artifacts are cached; error paths never populate the cache.
func (p *Pipeline) phase1(ctx context.Context, pair *Pair, parent *telemetry.Span) (*P1Artifact, bool, error) {
	var key string
	if p.p1Cache != nil {
		key = p.p1Key(pair)
		v, hit := p.cacheGet(p.p1Cache, key)
		journal.FromContext(ctx).Emit(journal.EvCacheProbe,
			journal.Attrs{"phase": "p1", "key": key, "hit": hit})
		if hit {
			if art, ok := v.(*P1Artifact); ok {
				return art, true, nil
			}
		}
	}
	tr := telemetry.TraceFrom(ctx)
	sp := tr.Start("crash_s", parent)
	sOut := p.runConcrete(ctx, pair.S, pair.PoC, pair.MaxSteps)
	sp.End()
	if sOut.Status == vm.StatusStopped {
		return nil, false, ctxErr(ctx)
	}
	if !sOut.Crashed() {
		return nil, false, fmt.Errorf("pair %s: poc does not crash S (%s)", pair.Name, sOut)
	}
	ep, ok := epFromBacktrace(sOut.Crash.Backtrace, pair.Lib)
	if !ok {
		return nil, false, fmt.Errorf("pair %s: no ℓ function on the S crash backtrace", pair.Name)
	}
	sp = tr.Start("taint", parent)
	sp.SetAttr("ep", ep)
	bunches, err := p.extractPrimitives(ctx, pair, ep)
	sp.End()
	if err != nil {
		return nil, false, fmt.Errorf("pair %s: P1: %w", pair.Name, err)
	}
	art := &P1Artifact{Ep: ep, SCrash: sOut.Crash, Bunches: bunches}
	if p.p1Cache != nil {
		p.cachePut(p.p1Cache, key, art)
	}
	return art, false, nil
}

// phase2Prep produces (or retrieves) the T-side preparation artifact: the
// CFG with discovered indirect-call edges and the distance maps to ep. The
// boolean result reports a cache hit. When a static analysis is supplied the
// graph omits provably dead blocks and folded-away branch edges, so the
// distance maps never route through unreachable code.
func (p *Pipeline) phase2Prep(ctx context.Context, pair *Pair, ep string, sa *mirstatic.Analysis, ai *absint.Result, parent *telemetry.Span) (*P2Artifact, bool, error) {
	var key string
	if p.p2Cache != nil {
		key = p.p2Key(pair, ep, sa != nil, sa != nil && sa.Ranges != nil)
		v, hit := p.cacheGet(p.p2Cache, key)
		journal.FromContext(ctx).Emit(journal.EvCacheProbe,
			journal.Attrs{"phase": "p2_prep", "key": key, "hit": hit})
		if hit {
			if art, ok := v.(*P2Artifact); ok {
				return art, true, nil
			}
		}
	}
	tr := telemetry.TraceFrom(ctx)
	graph := cfg.BuildPruned(pair.T, prunerOf(sa))
	if !p.cfg.StaticCFGOnly {
		sp := tr.Start("discover", parent)
		edges, derr := symex.Discover(pair.T, symex.NaiveConfig{
			InputSize:   p.discoverInputSize(pair),
			MaxSteps:    p.maxSteps(pair),
			SatBudget:   p.cfg.SatBudget,
			Stop:        ctx.Done(),
			Metrics:     p.cfg.Metrics.symexSink(),
			SolverCache: p.satCache,
			Prune:       prunerOf(sa),
			Oracle:      oracleOf(ai),
			Faults:      p.cfg.Faults,
		})
		for _, e := range edges {
			graph.ObserveCall(e.Site, e.Callee)
		}
		sp.End()
		// A transiently faulted discovery leaves a partial edge set: a
		// different dynamic CFG than the fault-free run would build.
		// Surface it so the caller retries the whole phase.
		if derr != nil {
			return nil, false, derr
		}
		// A cancelled discovery leaves a partial edge set: usable for
		// nothing, and in particular not cacheable — a cached artifact
		// must be a pure function of its key.
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	art := &P2Artifact{Graph: graph, Ep: ep, Pruned: sa != nil, Absint: sa != nil && sa.Ranges != nil}
	if graph.Reachable(ep) {
		sp := tr.Start("distance_map", parent)
		art.Dist = graph.DistancesTo(ep)
		sp.End()
	}
	if p.p2Cache != nil {
		p.cachePut(p.p2Cache, key, art)
	}
	return art, false, nil
}

// minimize shortens a verified poc' from the tail while the crash at the
// same location survives, first by halving and then byte by byte. A
// cancelled run fails the crash check, so cancellation simply stops the
// shrinking early with the best candidate so far.
func (p *Pipeline) minimize(ctx context.Context, pair *Pair, poc []byte, want *vm.Crash) []byte {
	stillCrashes := func(candidate []byte) bool {
		out := p.runConcrete(ctx, pair.T, candidate, pair.MaxSteps)
		return out.Crashed() && out.Crash.Loc == want.Loc
	}
	best := poc
	for len(best) > 0 {
		half := best[:len(best)/2]
		if !stillCrashes(half) {
			break
		}
		best = half
	}
	for len(best) > 0 && stillCrashes(best[:len(best)-1]) {
		best = best[:len(best)-1]
	}
	return best
}

// effectiveMaxSteps resolves the per-run instruction budget: a positive
// override (typically Pair.MaxSteps) wins, then the pipeline config, then
// vm.DefaultMaxSteps. Every budget consumer goes through this one helper.
func (p *Pipeline) effectiveMaxSteps(override int64) int64 {
	if override > 0 {
		return override
	}
	if p.cfg.MaxSteps > 0 {
		return p.cfg.MaxSteps
	}
	return vm.DefaultMaxSteps
}

func (p *Pipeline) maxSteps(pair *Pair) int64 { return p.effectiveMaxSteps(pair.MaxSteps) }

// discoverInputSize is the symbolic input size used by the dynamic-CFG
// discovery pass (always poc plus slack; the Pair.InputSize override
// applies only to the reform phase).
func (p *Pipeline) discoverInputSize(pair *Pair) int { return len(pair.PoC) + inputSlack }

// symInputSize is the symbolic size of poc' used by the reform phase.
func (p *Pipeline) symInputSize(pair *Pair) int {
	if pair.InputSize > 0 {
		return pair.InputSize
	}
	return len(pair.PoC) + inputSlack
}

func (p *Pipeline) runConcrete(ctx context.Context, prog *isa.Program, input []byte, maxSteps int64) *vm.Outcome {
	m := vm.New(prog, vm.Config{
		Input:    input,
		MaxSteps: p.effectiveMaxSteps(maxSteps),
		Stop:     ctx.Done(),
		Metrics:  p.cfg.Metrics.vmSink(),
	})
	return m.Run()
}

// journalSymexDone records the committed exploration outcome — kind, why
// and the committed frontier path, all deterministic for any worker count
// N >= 1 by the commit protocol — plus, as a separate nondeterministic
// event, the schedule-dependent resource counters.
func journalSymexDone(rec *journal.Recorder, res *symex.Result) {
	if rec == nil {
		return
	}
	attrs := journal.Attrs{"kind": res.Kind.String(), "entries": len(res.Entries)}
	if res.Why != "" {
		attrs["why"] = res.Why
	}
	if ps := symex.PathString(res.Path); ps != "" {
		attrs["path"] = ps
	}
	rec.Emit(journal.EvSymexDone, attrs)
	rec.Emit(journal.EvSymexStats, journal.Attrs{
		"steps":          res.Stats.Steps,
		"sat_checks":     res.Stats.SatChecks,
		"states":         res.Stats.States,
		"backtracks":     res.Stats.Backtracks,
		"pruned":         res.Stats.PrunedBranches,
		"sat_discharged": res.Stats.SatDischargedStatic,
		"workers":        res.Stats.Workers,
		"steals":         res.Stats.Steals,
	})
}

// ctxErr maps an observed stop back to the context's error, defaulting to
// context.Canceled for the (theoretical) race where the stop fired before
// the context recorded its error.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// extractPrimitives is P1: rerun S under the taint engine and materialize
// bunches.
func (p *Pipeline) extractPrimitives(ctx context.Context, pair *Pair, ep string) ([]BunchBytes, error) {
	eng := taint.NewEngine(taint.Config{
		Lib:          pair.Lib,
		Ep:           ep,
		ContextAware: !p.cfg.ContextFree,
	})
	m := vm.New(pair.S, vm.Config{
		Input:    pair.PoC,
		MaxSteps: p.maxSteps(pair),
		Hooks:    eng.Hooks(),
		Stop:     ctx.Done(),
		Metrics:  p.cfg.Metrics.vmSink(),
	})
	out := m.Run()
	if out.Status == vm.StatusStopped {
		return nil, ctxErr(ctx)
	}
	if !out.Crashed() {
		return nil, fmt.Errorf("S did not crash under taint instrumentation (%s)", out)
	}
	res := eng.Result()
	if len(res.Bunches) == 0 {
		return nil, errors.New("no crash primitives extracted (ep never entered)")
	}
	return materializeBunches(pair.PoC, res)
}

// reform is P2+P3: directed symbolic execution of T toward ep with bunch
// placement at each entry, then constraint solving into poc'. A non-nil
// error is returned for cancellation, for transient injected faults (so
// the caller's retry loop re-runs the phase instead of accepting a
// fault-altered verdict), and for real worker panics (which must fail the
// job explicitly, never degrade into a verdict); all other analysis
// failures degrade into Reason codes.
//
// The second byte slice is the partially-solved seed for the hybrid
// fallback: when exploration ends hybrid-eligible (loop-dead or budget)
// with path constraints in hand, the model of those constraints pins the
// bytes symex did manage to derive (magic values, checksums, gate
// preimages) so the fuzzing campaign starts past the gates it cannot
// guess. It is nil whenever the fallback is off, the reason is not
// eligible, or no constraints survived (the hard-error degrade path).
func (p *Pipeline) reform(ctx context.Context, pair *Pair, ep string, dist *cfg.Distances, bunches []BunchBytes, prune cfg.Pruner, oracle symex.StaticOracle, parent *telemetry.Span) ([]byte, []byte, symex.Stats, Reason, error) {
	inputSize := p.symInputSize(pair)
	tr := telemetry.TraceFrom(ctx)
	rec := journal.FromContext(ctx)
	ex := symex.New(pair.T, symex.Config{
		InputSize:   inputSize,
		MaxSteps:    p.maxSteps(pair),
		Theta:       p.cfg.Theta,
		SatBudget:   p.cfg.SatBudget,
		Target:      ep,
		Distances:   dist,
		Stop:        ctx.Done(),
		Metrics:     p.cfg.Metrics.symexSink(),
		Logger:      telemetry.Logger(ctx),
		Workers:     p.cfg.SymexWorkers,
		SolverCache: p.satCache,
		Prune:       prune,
		Oracle:      oracle,
		Faults:      p.cfg.Faults,
		Journal:     rec,
	})

	// The visitor below runs concurrently when SymexWorkers > 1; it only
	// touches state-local data, mutex-guarded trace spans, and placeSol,
	// whose Sat is safe for concurrent use.
	placeSol := solver.Solver{Budget: p.cfg.SatBudget, Metrics: p.cfg.Metrics.solverSink(), Cache: p.satCache, Faults: p.cfg.Faults, Journal: rec}
	visitor := func(entry symex.EpEntry, st *symex.State) (symex.Decision, error) {
		esp := tr.Start("ep_entry", parent)
		defer esp.End()
		esp.SetAttr("seq", entry.Seq)
		esp.SetAttr("file_pos", entry.FilePos)
		if entry.Seq > len(bunches) {
			return symex.Stop, nil
		}
		b := bunches[entry.Seq-1]
		// "OCTOPOCS executes ep in T with the same parameters as those
		// used in S": compare/pin the semantic context arguments.
		for _, idx := range pair.CtxArgs {
			if idx >= len(entry.Args) || idx >= len(b.Args) {
				continue
			}
			want := b.Args[idx]
			if got, ok := entry.Args[idx].IsConst(); ok {
				if got != want {
					return symex.Stop, errParamMismatch
				}
				continue
			}
			st.AddConstraint(expr.Bin(expr.OpEq, entry.Args[idx], expr.Const(want)))
		}
		// P3.1: bind the bunch at the current file position indicator.
		pos := entry.FilePos
		if int(pos)+len(b.Bytes) > inputSize {
			return symex.Stop, fmt.Errorf("bunch %d does not fit at position %d (input size %d)", b.Seq, pos, inputSize)
		}
		for i, bv := range b.Bytes {
			st.AddConstraint(expr.Bin(expr.OpEq,
				expr.Sym(int(pos)+i), expr.Const(uint64(bv))))
		}
		// Placement feasibility: a contradiction between the guiding
		// constraints and the crash primitive makes this path useless;
		// dying here lets directed execution backtrack to a longer or
		// different path (the paper's iterate-until-not-loop-dead
		// policy subsumed by decision reversal).
		ok, serr := placeSol.Sat(st.Constraints())
		if serr != nil && faultinject.IsTransient(serr) {
			// Ignoring the failed check would place the bunch on a path
			// the fault-free run might refute; abort so the phase retries.
			return symex.Stop, serr
		}
		if serr == nil && !ok {
			return symex.Infeasible, nil
		}
		if entry.Seq == len(bunches) {
			return symex.Stop, nil
		}
		return symex.Continue, nil
	}

	res, err := ex.Run(visitor)
	if err != nil {
		if errors.Is(err, symex.ErrStopped) {
			return nil, nil, symex.Stats{}, ReasonNone, ctxErr(ctx)
		}
		if errors.Is(err, errParamMismatch) {
			return nil, nil, symex.Stats{}, ReasonParamMismatch, nil
		}
		if faultinject.IsTransient(err) {
			return nil, nil, symex.Stats{}, ReasonNone, err
		}
		var pe *faultinject.PanicError
		if errors.As(err, &pe) {
			// A real (non-injected) worker panic: a bug, not a budget
			// exhaustion. Degrading it into a verdict would hide it.
			return nil, nil, symex.Stats{}, ReasonNone, err
		}
		telemetry.Logger(ctx).Warn("reform degraded to budget verdict",
			"pair", pair.Name, "err", err.Error())
		return nil, nil, symex.Stats{}, ReasonBudget, nil
	}
	journalSymexDone(rec, res)
	if !res.Reached() {
		switch res.Kind {
		case symex.KindInfeasible:
			return nil, nil, res.Stats, ReasonUnsat, nil
		case symex.KindProgramDead:
			return nil, nil, res.Stats, ReasonProgramDead, nil
		case symex.KindLoopDead:
			return nil, p.partialSeed(res.Constraints, inputSize, ReasonLoopDead), res.Stats, ReasonLoopDead, nil
		case symex.KindExited, symex.KindCrashed:
			return nil, nil, res.Stats, ReasonEpNotCalled, nil
		default:
			return nil, p.partialSeed(res.Constraints, inputSize, ReasonBudget), res.Stats, ReasonBudget, nil
		}
	}

	// P3.3: solve everything into concrete bytes.
	ssp := tr.Start("solve", parent)
	ssp.SetAttr("constraints", len(res.Constraints))
	sol := solver.Solver{Budget: p.cfg.SatBudget, Metrics: p.cfg.Metrics.solverSink(), Faults: p.cfg.Faults, Journal: rec}
	model, err := sol.Solve(res.Constraints)
	ssp.End()
	if err != nil {
		if errors.Is(err, solver.ErrUnsat) {
			rec.Emit(journal.EvSolverSolve, journal.Attrs{"constraints": len(res.Constraints), "status": "unsat"})
			return nil, nil, res.Stats, ReasonUnsat, nil
		}
		if faultinject.IsTransient(err) {
			return nil, nil, res.Stats, ReasonNone, err
		}
		rec.Emit(journal.EvSolverSolve, journal.Attrs{"constraints": len(res.Constraints), "status": "budget"})
		return nil, p.partialSeed(res.Constraints, inputSize, ReasonBudget), res.Stats, ReasonBudget, nil
	}
	rec.Emit(journal.EvSolverSolve, journal.Attrs{"constraints": len(res.Constraints), "status": "sat"})
	// The reformed PoC keeps its full symbolic length: trailing padding
	// may still be consumed by ℓ past the final ep entry (the symbolic
	// run stops there, so nothing constrains those bytes — but a
	// truncated file would turn an overflowing read into a harmless
	// short read).
	return model.Fill(inputSize, p.cfg.PadByte), nil, res.Stats, ReasonNone, nil
}
