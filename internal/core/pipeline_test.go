package core_test

import (
	"strings"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/isa"
)

// simplePair builds an S/T pair with a shared overflow reader; mutate
// customizes T before building.
func simplePair(t *testing.T, tMagic string) *core.Pair {
	t.Helper()
	build := func(name, magic string) *isa.Program {
		b := asm.NewBuilder(name)
		g := b.Function("reader", 1)
		fd := g.Param(0)
		buf := g.Sys(isa.SysAlloc, g.Const(4))
		lb := g.Sys(isa.SysAlloc, g.Const(1))
		g.Sys(isa.SysRead, fd, lb, g.Const(1))
		g.Sys(isa.SysRead, fd, buf, g.Load(1, lb, 0))
		g.RetI(0)

		f := b.Function("main", 0)
		fd2 := f.Sys(isa.SysOpen)
		mb := f.Sys(isa.SysAlloc, f.Const(2))
		f.Sys(isa.SysRead, fd2, mb, f.Const(2))
		for i := 0; i < 2; i++ {
			f.If(f.NeI(f.Load(1, mb, int64(i)), int64(magic[i])), func() { f.Exit(1) })
		}
		f.Call("reader", fd2)
		f.Exit(0)
		b.Entry("main")
		return b.MustBuild()
	}
	return &core.Pair{
		Name: "simple",
		S:    build("s", "AA"),
		T:    build("t", tMagic),
		PoC:  append([]byte("AA"), 12, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12),
		Lib:  map[string]bool{"reader": true},
	}
}

func TestVerifyErrorWhenPoCDoesNotCrashS(t *testing.T) {
	pair := simplePair(t, "BB")
	pair.PoC = append([]byte("AA"), 2, 9, 9) // length 2: no overflow
	_, err := core.New(core.Config{}).Verify(pair)
	if err == nil || !strings.Contains(err.Error(), "does not crash") {
		t.Fatalf("Verify = %v, want does-not-crash error", err)
	}
}

func TestVerifyErrorWhenCrashOutsideLib(t *testing.T) {
	pair := simplePair(t, "BB")
	pair.Lib = map[string]bool{"unrelated": true}
	_, err := core.New(core.Config{}).Verify(pair)
	if err == nil || !strings.Contains(err.Error(), "backtrace") {
		t.Fatalf("Verify = %v, want no-ℓ-on-backtrace error", err)
	}
}

func TestVerifySameFormatIsTypeI(t *testing.T) {
	pair := simplePair(t, "AA") // T accepts the same magic
	rep, err := core.New(core.Config{}).Verify(pair)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != core.TypeI || !rep.GuidingSame {
		t.Fatalf("report = %v (guidingSame=%v), want Type-I", rep, rep.GuidingSame)
	}
}

func TestVerifyEpMissingInT(t *testing.T) {
	pair := simplePair(t, "BB")
	// Replace T with a binary that lacks the shared function entirely.
	b := asm.NewBuilder("t-without-lib")
	f := b.Function("main", 0)
	f.Exit(0)
	b.Entry("main")
	pair.T = b.MustBuild()
	rep, err := core.New(core.Config{}).Verify(pair)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != core.VerdictNotTriggerable || rep.Reason != core.ReasonEpMissing {
		t.Fatalf("report = %v, want not-triggerable/ep-missing", rep)
	}
}

func TestVerifyEpNeverCalledInT(t *testing.T) {
	pair := simplePair(t, "BB")
	// T contains the shared function but never calls it.
	b := asm.NewBuilder("t-dead-lib")
	g := b.Function("reader", 1)
	g.Ret(g.Param(0))
	f := b.Function("main", 0)
	f.Sys(isa.SysOpen)
	f.Exit(0)
	b.Entry("main")
	pair.T = b.MustBuild()
	rep, err := core.New(core.Config{}).Verify(pair)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != core.VerdictNotTriggerable || rep.Reason != core.ReasonEpNotCalled {
		t.Fatalf("report = %v, want not-triggerable/ep-not-called", rep)
	}
}

func TestStaticCFGOnlyAblation(t *testing.T) {
	// T dispatches to the shared reader through an indirect call; with
	// dynamic discovery disabled the verdict must degrade to Failure.
	pair := simplePair(t, "BB")
	b := asm.NewBuilder("t-indirect")
	g := b.Function("reader", 1)
	fd := g.Param(0)
	buf := g.Sys(isa.SysAlloc, g.Const(4))
	lb := g.Sys(isa.SysAlloc, g.Const(1))
	g.Sys(isa.SysRead, fd, lb, g.Const(1))
	g.Sys(isa.SysRead, fd, buf, g.Load(1, lb, 0))
	g.RetI(0)
	f := b.Function("main", 0)
	fd2 := f.Sys(isa.SysOpen)
	kb := f.Sys(isa.SysAlloc, f.Const(1))
	f.Sys(isa.SysRead, fd2, kb, f.Const(1))
	f.CallInd(f.Load(1, kb, 0), fd2)
	f.Exit(0)
	b.Entry("main")
	b.FuncTable("reader")
	pair.T = b.MustBuild()

	repStatic, err := core.New(core.Config{StaticCFGOnly: true}).Verify(pair)
	if err != nil {
		t.Fatal(err)
	}
	if repStatic.Verdict != core.VerdictFailure || repStatic.Reason != core.ReasonCFGUnresolved {
		t.Fatalf("static-only report = %v, want failure/cfg-unresolved", repStatic)
	}

	repDyn, err := core.New(core.Config{}).Verify(pair)
	if err != nil {
		t.Fatal(err)
	}
	if repDyn.Verdict != core.VerdictTriggered {
		t.Fatalf("dynamic report = %v, want triggered", repDyn)
	}
}

func TestFindEp(t *testing.T) {
	pair := simplePair(t, "BB")
	ep, err := core.New(core.Config{}).FindEp(pair)
	if err != nil || ep != "reader" {
		t.Fatalf("FindEp = %q,%v want reader,nil", ep, err)
	}
	pair.PoC = []byte("AA")
	if _, err := core.New(core.Config{}).FindEp(pair); err == nil {
		t.Fatal("FindEp on non-crashing poc should error")
	}
}
