// Package core implements the OCTOPOCS pipeline: given original software S,
// propagated software T, the original PoC, and the shared function set ℓ,
// it extracts crash primitives (P1), generates guiding inputs (P2), combines
// them into a reformed PoC (P3), and verifies the propagated vulnerability
// (P4), producing the verdict taxonomy of the paper's Table II.
//
// Concurrency: one Pipeline is safe for concurrent Verify calls — the
// service worker pool shares a single instance. Per-verification state is
// local to each call; the components a Pipeline shares across calls (the
// memoized SAT cache, metrics sinks, loggers) are internally synchronized
// or atomic. The SymexWorkers knob additionally parallelizes the inside of
// one P2/P3 run via the symex frontier engine.
package core

import (
	"fmt"

	"octopocs/internal/isa"
	"octopocs/internal/taint"
	"octopocs/internal/vm"
)

// Pair is one verification task: the paper's (S, T, poc, ℓ) quadruple. The
// existing vulnerable-clone detection step (VUDDY in the paper) is assumed
// to have produced it.
type Pair struct {
	// Name identifies the pair in reports, e.g. "tiffsplit->opj_compress".
	Name string
	// S is the original vulnerable binary, T the propagated one.
	S *isa.Program
	T *isa.Program
	// PoC is the malformed input file that triggers the vulnerability
	// in S.
	PoC []byte
	// Lib is ℓ, the set of function names shared by S and T.
	Lib map[string]bool
	// CtxArgs lists the ep parameter indices that carry semantic context
	// (tags, modes, lengths) and must match between S and T. Resource
	// handles such as file descriptors or buffer addresses, whose values
	// legitimately differ between binaries, are excluded.
	CtxArgs []int
	// InputSize is the symbolic size of poc'; when zero it defaults to
	// len(PoC) plus slack for a longer guiding prefix.
	InputSize int
	// MaxSteps overrides the per-run instruction budget (0 = default).
	// Pairs whose S-crash is a hang (CWE-835) keep this small so the
	// hang detection stays fast.
	MaxSteps int64
	// StaticPrune overrides Config.StaticPrune for this pair when non-nil
	// (the service's per-job static knob).
	StaticPrune *bool
}

// epFromBacktrace returns the paper's ep: the bottom-most call-stack entry
// that belongs to ℓ, i.e. the first ℓ function called while triggering the
// vulnerability.
func epFromBacktrace(bt []vm.StackEntry, lib map[string]bool) (string, bool) {
	for _, e := range bt {
		if lib[e.Func] {
			return e.Func, true
		}
	}
	return "", false
}

// BunchBytes is a crash primitive materialized as bytes: the contiguous PoC
// slice spanning the offsets used during one ℓ entry, plus the recorded ep
// argument vector.
type BunchBytes struct {
	Seq   int
	Start uint32
	Bytes []byte
	Args  []uint64
}

// materializeBunches converts taint offsets into byte slices of the PoC.
// Each bunch becomes the contiguous span from its smallest to largest used
// offset: streaming parsers consume their input sequentially, so gap bytes
// inside the span travel with the primitive.
func materializeBunches(poc []byte, res *taint.Result) ([]BunchBytes, error) {
	out := make([]BunchBytes, 0, len(res.Bunches))
	for _, b := range res.Bunches {
		bb := BunchBytes{Seq: b.Seq, Args: b.Args}
		if len(b.Offsets) > 0 {
			lo, hi := b.Offsets[0], b.Offsets[len(b.Offsets)-1]
			if int(hi) >= len(poc) {
				return nil, fmt.Errorf("bunch %d offset %d beyond poc size %d", b.Seq, hi, len(poc))
			}
			bb.Start = lo
			bb.Bytes = append([]byte(nil), poc[lo:hi+1]...)
		}
		out = append(out, bb)
	}
	return out, nil
}
