package core

// codec.go externalizes the phase artifacts for the persistent artifact
// store (internal/artifact): each codec turns a cached value into a
// self-contained byte payload and back. The wire forms deliberately avoid
// serializing derived graph structure where a cheap deterministic rebuild
// exists — the P2 codec stores the program text plus the dynamically
// observed call edges (the only part that cost symbolic execution to
// discover) and replays them onto a freshly built graph, and the static
// codec stores only the program text because the whole analysis is a pure
// function of it. Decode failures are reported as errors and treated by the
// store as a miss, so a truncated or stale payload can only cost a
// recomputation, never a wrong artifact.

import (
	"encoding/json"
	"fmt"

	"octopocs/internal/absint"
	"octopocs/internal/asm"
	"octopocs/internal/cfg"
	"octopocs/internal/hybrid"
	"octopocs/internal/mirstatic"
	"octopocs/internal/vm"
)

// P1Codec encodes *P1Artifact values for the disk tier. The artifact is
// plain data (entry point, crash, materialized bunches), so the wire form
// is its direct JSON encoding.
type P1Codec struct{}

// p1Wire is the on-disk form of a P1Artifact.
type p1Wire struct {
	Ep      string       `json:"ep"`
	SCrash  *vm.Crash    `json:"s_crash"`
	Bunches []BunchBytes `json:"bunches"`
}

// Encode marshals a *P1Artifact.
func (P1Codec) Encode(v any) ([]byte, error) {
	art, ok := v.(*P1Artifact)
	if !ok {
		return nil, fmt.Errorf("core: p1 codec: unexpected value type %T", v)
	}
	return json.Marshal(p1Wire{Ep: art.Ep, SCrash: art.SCrash, Bunches: art.Bunches})
}

// Decode unmarshals a *P1Artifact.
func (P1Codec) Decode(data []byte) (any, error) {
	var w p1Wire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: p1 codec: %w", err)
	}
	if w.SCrash == nil {
		return nil, fmt.Errorf("core: p1 codec: payload has no crash")
	}
	return &P1Artifact{Ep: w.Ep, SCrash: w.SCrash, Bunches: w.Bunches}, nil
}

// P2Codec encodes *P2Artifact values for the disk tier. Only the inputs
// that cost real work travel: the assembled T text, the target ep, the
// pruned flag, and the dynamically observed indirect-call edges. Decode
// re-parses the program, rebuilds the (possibly pruned) graph, replays the
// edges in their recorded order, and recomputes the distance maps — all
// cheap static passes; the symbolic discovery whose result the edges carry
// is what the artifact saves.
type P2Codec struct{}

// p2Wire is the on-disk form of a P2Artifact.
type p2Wire struct {
	T        string             `json:"t"`
	Ep       string             `json:"ep"`
	Pruned   bool               `json:"pruned"`
	Absint   bool               `json:"absint,omitempty"`
	Observed []cfg.ObservedEdge `json:"observed,omitempty"`
	HasDist  bool               `json:"has_dist"`
}

// Encode marshals a *P2Artifact.
func (P2Codec) Encode(v any) ([]byte, error) {
	art, ok := v.(*P2Artifact)
	if !ok {
		return nil, fmt.Errorf("core: p2 codec: unexpected value type %T", v)
	}
	if art.Graph == nil || art.Graph.Prog == nil {
		return nil, fmt.Errorf("core: p2 codec: artifact has no graph")
	}
	return json.Marshal(p2Wire{
		T:        asm.Format(art.Graph.Prog),
		Ep:       art.Ep,
		Pruned:   art.Pruned,
		Absint:   art.Absint,
		Observed: art.Graph.ObservedEdges(),
		HasDist:  art.Dist != nil,
	})
}

// Decode rebuilds a *P2Artifact from its wire form.
func (P2Codec) Decode(data []byte) (any, error) {
	var w p2Wire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: p2 codec: %w", err)
	}
	prog, err := asm.Parse(w.T)
	if err != nil {
		return nil, fmt.Errorf("core: p2 codec: parse T: %w", err)
	}
	var pruner cfg.Pruner
	if w.Pruned {
		sa, aerr := mirstatic.AnalyzeOpts(prog, mirstatic.Options{Absint: w.Absint})
		if aerr != nil {
			return nil, fmt.Errorf("core: p2 codec: reanalyze T: %w", aerr)
		}
		pruner = sa
	}
	graph := cfg.BuildPruned(prog, pruner)
	for _, e := range w.Observed {
		graph.ObserveCall(e.Site, e.Callee)
	}
	art := &P2Artifact{Graph: graph, Ep: w.Ep, Pruned: w.Pruned, Absint: w.Absint}
	if w.HasDist {
		art.Dist = graph.DistancesTo(w.Ep)
	}
	return art, nil
}

// HybridCodec encodes *hybrid.Outcome values for the disk tier. The outcome
// is plain data (rescue flag, poc' bytes, exec counts), so the wire form is
// its direct JSON encoding. A decoded outcome claiming a rescue is not
// trusted on its own: the pipeline replays its poc' on the concrete VM
// before reuse and discards the artifact if the crash does not reproduce.
type HybridCodec struct{}

// Encode marshals a *hybrid.Outcome.
func (HybridCodec) Encode(v any) ([]byte, error) {
	o, ok := v.(*hybrid.Outcome)
	if !ok {
		return nil, fmt.Errorf("core: hybrid codec: unexpected value type %T", v)
	}
	return json.Marshal(o)
}

// Decode unmarshals a *hybrid.Outcome.
func (HybridCodec) Decode(data []byte) (any, error) {
	o := new(hybrid.Outcome)
	if err := json.Unmarshal(data, o); err != nil {
		return nil, fmt.Errorf("core: hybrid codec: %w", err)
	}
	if o.Rescued && len(o.PoCPrime) == 0 {
		return nil, fmt.Errorf("core: hybrid codec: rescued outcome has no poc'")
	}
	return o, nil
}

// StaticCodec encodes *mirstatic.Analysis values for the disk tier. The
// analysis is a pure deterministic function of the program, so the wire
// form is just the assembled text; Decode re-runs the analysis.
type StaticCodec struct{}

// staticWire is the on-disk form of a static pre-analysis.
type staticWire struct {
	T      string `json:"t"`
	Absint bool   `json:"absint,omitempty"`
}

// Encode marshals a *mirstatic.Analysis.
func (StaticCodec) Encode(v any) ([]byte, error) {
	sa, ok := v.(*mirstatic.Analysis)
	if !ok {
		return nil, fmt.Errorf("core: static codec: unexpected value type %T", v)
	}
	return json.Marshal(staticWire{T: asm.Format(sa.Prog), Absint: sa.Ranges != nil})
}

// Decode re-derives a *mirstatic.Analysis from the stored program text.
func (StaticCodec) Decode(data []byte) (any, error) {
	var w staticWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: static codec: %w", err)
	}
	prog, err := asm.Parse(w.T)
	if err != nil {
		return nil, fmt.Errorf("core: static codec: parse T: %w", err)
	}
	sa, err := mirstatic.AnalyzeOpts(prog, mirstatic.Options{Absint: w.Absint})
	if err != nil {
		return nil, fmt.Errorf("core: static codec: reanalyze T: %w", err)
	}
	return sa, nil
}

// AbsintCodec encodes *absint.Result values for the disk tier. The analysis
// is a pure deterministic function of the program, so the wire form is just
// the assembled text; Decode re-runs the fixpoint.
type AbsintCodec struct{}

// absintWire is the on-disk form of an abstract interpretation.
type absintWire struct {
	T string `json:"t"`
}

// Encode marshals an *absint.Result.
func (AbsintCodec) Encode(v any) ([]byte, error) {
	ai, ok := v.(*absint.Result)
	if !ok {
		return nil, fmt.Errorf("core: absint codec: unexpected value type %T", v)
	}
	return json.Marshal(absintWire{T: asm.Format(ai.Prog)})
}

// Decode re-derives an *absint.Result from the stored program text.
func (AbsintCodec) Decode(data []byte) (any, error) {
	var w absintWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: absint codec: %w", err)
	}
	prog, err := asm.Parse(w.T)
	if err != nil {
		return nil, fmt.Errorf("core: absint codec: parse T: %w", err)
	}
	return absint.Analyze(prog), nil
}
