package core

import (
	"strings"
	"testing"

	"octopocs/internal/taint"
	"octopocs/internal/vm"
)

func TestEpFromBacktrace(t *testing.T) {
	lib := map[string]bool{"dec": true, "dec_inner": true}
	tests := []struct {
		name   string
		bt     []vm.StackEntry
		want   string
		wantOK bool
	}{
		{
			name:   "bottom-most lib frame wins",
			bt:     []vm.StackEntry{{Func: "main"}, {Func: "dec"}, {Func: "dec_inner"}},
			want:   "dec",
			wantOK: true,
		},
		{
			name:   "no lib frame",
			bt:     []vm.StackEntry{{Func: "main"}, {Func: "other"}},
			wantOK: false,
		},
		{
			name:   "lib entry is innermost",
			bt:     []vm.StackEntry{{Func: "main"}, {Func: "helper"}, {Func: "dec_inner"}},
			want:   "dec_inner",
			wantOK: true,
		},
		{
			name:   "empty backtrace",
			wantOK: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := epFromBacktrace(tt.bt, lib)
			if ok != tt.wantOK || got != tt.want {
				t.Errorf("epFromBacktrace = %q,%v want %q,%v", got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

func TestMaterializeBunches(t *testing.T) {
	poc := []byte{10, 11, 12, 13, 14, 15}

	t.Run("contiguous span with gaps", func(t *testing.T) {
		res := &taint.Result{Bunches: []taint.Bunch{
			{Seq: 1, Offsets: []uint32{1, 3}, Args: []uint64{7}},
		}}
		bb, err := materializeBunches(poc, res)
		if err != nil {
			t.Fatal(err)
		}
		if len(bb) != 1 || bb[0].Start != 1 {
			t.Fatalf("bunches = %+v", bb)
		}
		// Offsets 1..3 inclusive, gap byte 2 travels with the span.
		if want := []byte{11, 12, 13}; string(bb[0].Bytes) != string(want) {
			t.Errorf("bytes = %v, want %v", bb[0].Bytes, want)
		}
		if len(bb[0].Args) != 1 || bb[0].Args[0] != 7 {
			t.Errorf("args = %v, want [7]", bb[0].Args)
		}
	})

	t.Run("empty bunch keeps its slot", func(t *testing.T) {
		res := &taint.Result{Bunches: []taint.Bunch{
			{Seq: 1},
			{Seq: 2, Offsets: []uint32{0}},
		}}
		bb, err := materializeBunches(poc, res)
		if err != nil {
			t.Fatal(err)
		}
		if len(bb) != 2 || bb[0].Bytes != nil || len(bb[1].Bytes) != 1 {
			t.Fatalf("bunches = %+v", bb)
		}
	})

	t.Run("offset beyond poc errors", func(t *testing.T) {
		res := &taint.Result{Bunches: []taint.Bunch{
			{Seq: 1, Offsets: []uint32{99}},
		}}
		if _, err := materializeBunches(poc, res); err == nil {
			t.Fatal("want error for out-of-range offset")
		}
	})
}

func TestVerdictAndTypeStrings(t *testing.T) {
	if VerdictTriggered.String() != "triggered" ||
		VerdictNotTriggerable.String() != "not-triggerable" ||
		VerdictFailure.String() != "failure" {
		t.Error("verdict strings wrong")
	}
	if TypeI.String() != "Type-I" || TypeFailure.String() != "Failure" {
		t.Error("type strings wrong")
	}
	if !strings.Contains(Verdict(99).String(), "99") {
		t.Error("unknown verdict should render numerically")
	}
	if !strings.Contains(ResultType(99).String(), "99") {
		t.Error("unknown type should render numerically")
	}
}

func TestReportAccessors(t *testing.T) {
	r := &Report{Pair: "x", Verdict: VerdictTriggered, Type: TypeII, Ep: "f"}
	if r.PoCGenerated() {
		t.Error("empty PoCPrime reported as generated")
	}
	r.PoCPrime = []byte{1}
	if !r.PoCGenerated() || !r.Verified() {
		t.Error("accessors wrong on triggered report")
	}
	r2 := &Report{Verdict: VerdictFailure}
	if r2.Verified() {
		t.Error("failure report counted as verified")
	}
	if s := r.String(); !strings.Contains(s, "Type-II") || !strings.Contains(s, "triggered") {
		t.Errorf("Report.String() = %q", s)
	}
}
