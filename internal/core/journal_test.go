package core_test

// Journal determinism and completeness over the built-in corpus: the
// default explain rendering must be byte-identical for any frontier worker
// count (the deterministic event classes are emitted from the job's own
// goroutine and the commit protocol fixes the reported path), and every
// verdict must link a non-empty deterministic evidence chain.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/journal"
)

// runJournaled verifies one corpus pair with journaling attached and
// returns the closed journal plus the report.
func runJournaled(t *testing.T, spec *corpus.PairSpec, workers int, opts journal.Options) ([]journal.Event, *core.Report) {
	t.Helper()
	pl := core.New(core.Config{SymexWorkers: workers, StaticPrune: true})
	rec := journal.New(fmt.Sprintf("pair-%d", spec.Idx), opts)
	ctx := journal.With(context.Background(), rec)
	rep, err := pl.VerifyContext(ctx, spec.Pair)
	if err != nil {
		t.Fatalf("pair %d: %v", spec.Idx, err)
	}
	rec.Close()
	return rec.Events(), rep
}

// TestJournalReplayByteIdentical runs every corpus pair under 1, 2 and 4
// frontier workers at verbose verbosity — so workers race to emit
// interleaved fork/prune/commit events — and requires the default
// rendering to stay byte-identical to the single-worker run.
func TestJournalReplayByteIdentical(t *testing.T) {
	specs := append(corpus.All(), corpus.StaticSet()...)
	for _, spec := range specs {
		t.Run(fmt.Sprintf("pair-%02d", spec.Idx), func(t *testing.T) {
			t.Parallel()
			ev1, _ := runJournaled(t, spec, 1, journal.Options{Verbosity: journal.VerbVerbose})
			base := journal.Render(ev1, journal.RenderOptions{})
			for _, workers := range []int{2, 4} {
				evN, _ := runJournaled(t, spec, workers, journal.Options{Verbosity: journal.VerbVerbose})
				if got := journal.Render(evN, journal.RenderOptions{}); got != base {
					t.Errorf("workers=%d rendering differs\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
						workers, base, workers, got)
				}
			}
		})
	}
}

// TestExplainAllPairs checks the full evidence chain for all 17 corpus
// pairs: the journal ends in a verdict event whose evidence links only
// retained deterministic events, the rendering names the report's verdict,
// and the JSONL round trip reproduces the rendering byte for byte.
func TestExplainAllPairs(t *testing.T) {
	specs := append(corpus.All(), corpus.StaticSet()...)
	for _, spec := range specs {
		t.Run(fmt.Sprintf("pair-%02d", spec.Idx), func(t *testing.T) {
			t.Parallel()
			events, rep := runJournaled(t, spec, 1, journal.Options{})
			if len(events) == 0 {
				t.Fatal("empty journal")
			}
			last := events[len(events)-1]
			if last.Type != journal.EvVerdict {
				t.Fatalf("journal ends in %s, want %s", last.Type, journal.EvVerdict)
			}
			if got, want := last.Attrs["verdict"], rep.Verdict.String(); got != want {
				t.Fatalf("verdict event says %v, report says %s", got, want)
			}
			det := make(map[uint64]bool)
			for _, ev := range events[:len(events)-1] {
				if ev.Det {
					det[ev.Seq] = true
				}
			}
			evidence, ok := last.Attrs["evidence"].([]uint64)
			if !ok || len(evidence) == 0 {
				t.Fatalf("verdict carries no evidence chain: %v", last.Attrs["evidence"])
			}
			if len(evidence) != len(det) {
				t.Fatalf("evidence links %d events, journal retains %d deterministic ones",
					len(evidence), len(det))
			}
			for _, seq := range evidence {
				if !det[seq] {
					t.Fatalf("evidence seq %d is not a retained deterministic event", seq)
				}
			}

			rendered := journal.Render(events, journal.RenderOptions{})
			if want := "verdict: " + rep.Verdict.String(); !containsLine(rendered, want) {
				t.Fatalf("rendering lacks %q:\n%s", want, rendered)
			}
			data, err := journal.MarshalJSONL(events)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			decoded, err := journal.DecodeJSONL(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got := journal.Render(decoded, journal.RenderOptions{}); got != rendered {
				t.Fatalf("persisted rendering differs\n--- live ---\n%s--- decoded ---\n%s", rendered, got)
			}
		})
	}
}

// containsLine reports whether any rendered line starts with prefix.
func containsLine(s, prefix string) bool {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}
