package core

import (
	"fmt"
	"time"

	"octopocs/internal/absint"
	"octopocs/internal/hybrid"
	"octopocs/internal/mirstatic"
	"octopocs/internal/symex"
	"octopocs/internal/vm"
)

// Verdict is the top-level verification outcome.
type Verdict int

// Verdicts.
const (
	// VerdictTriggered: poc' crashes T inside ℓ — the propagated
	// vulnerability is real and needs patching first (case i).
	VerdictTriggered Verdict = iota + 1
	// VerdictNotTriggerable: OCTOPOCS established that the propagated
	// code cannot be triggered (cases ii and iii).
	VerdictNotTriggerable
	// VerdictFailure: no sound verdict (e.g. unresolvable CFG).
	VerdictFailure
	// VerdictTriggeredByFuzzing: symbolic execution gave up (θ-exhaustion
	// or solver budget), but the directed-fuzzing fallback produced an
	// input that crashes T inside ℓ, replay-confirmed on the concrete VM.
	// Kept distinct from VerdictTriggered because the poc' was found, not
	// derived — the crash witness is equally concrete, but no reform
	// argument links it to the S-side primitives.
	VerdictTriggeredByFuzzing
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictTriggered:
		return "triggered"
	case VerdictNotTriggerable:
		return "not-triggerable"
	case VerdictFailure:
		return "failure"
	case VerdictTriggeredByFuzzing:
		return "triggered-by-fuzzing"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// ResultType is the paper's Table II classification.
type ResultType int

// Result types.
const (
	// TypeI: triggered, and the original poc also works on T.
	TypeI ResultType = iota + 1
	// TypeII: triggered, but only the reformed poc' works.
	TypeII
	// TypeIII: verified not triggerable.
	TypeIII
	// TypeFailure: verification failed.
	TypeFailure
)

// String renders the type the way Table II spells it.
func (t ResultType) String() string {
	switch t {
	case TypeI:
		return "Type-I"
	case TypeII:
		return "Type-II"
	case TypeIII:
		return "Type-III"
	case TypeFailure:
		return "Failure"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Reason codes for non-triggered verdicts.
type Reason string

// Reasons.
const (
	ReasonNone          Reason = ""
	ReasonEpMissing     Reason = "ep not present in T"
	ReasonEpNotCalled   Reason = "ep not called in T" // case (ii)
	ReasonProgramDead   Reason = "program-dead state" // case (iii)
	ReasonLoopDead      Reason = "loop-dead state within θ"
	ReasonParamMismatch Reason = "ep called with mismatching context parameters"
	ReasonUnsat         Reason = "combined constraints unsatisfiable"
	ReasonCFGUnresolved Reason = "CFG construction failed (unresolved indirect calls)"
	ReasonNoCrash       Reason = "generated poc' did not crash T"
	ReasonBudget        Reason = "analysis budget exhausted"
	// ReasonStaticUnreachable is the static-prune short-circuit: the
	// verified T cannot reach ep even with every unresolved indirect call
	// over-approximated as may-call-anything, so the not-triggerable
	// verdict is sound without running symbolic execution (case ii).
	ReasonStaticUnreachable Reason = "statically-unreachable"
)

// Report is the full result of verifying one pair.
type Report struct {
	Pair    string
	Verdict Verdict
	Type    ResultType
	Reason  Reason

	// Ep is the discovered entry point of ℓ.
	Ep string
	// Bunches are the crash primitives extracted in P1.
	Bunches []BunchBytes
	// PoCPrime is the reformed PoC; nil when none was generated.
	PoCPrime []byte
	// GuidingSame reports whether the original poc also triggers T
	// (the Type-I condition).
	GuidingSame bool

	// SCrash is the crash observed in S during preprocessing; TCrash the
	// one produced by poc' in T (nil unless triggered).
	SCrash *vm.Crash
	TCrash *vm.Crash

	// Stats aggregates symbolic-execution effort (P2+P3).
	Stats symex.Stats

	// Static summarizes the pre-P2 static analysis of T (blocks folded and
	// pruned, dead regions, reachable functions); nil when static pruning
	// was disabled for this pair.
	Static *mirstatic.Summary

	// Absint summarizes the abstract-interpretation value-range analysis of
	// T (branches proved, blocks unreachable); nil when absint was disabled.
	Absint *absint.Summary

	// Hybrid is the directed-fuzzing fallback outcome; nil unless the
	// fallback ran (HybridFuzz on and symex ended θ- or budget-exhausted).
	Hybrid *hybrid.Outcome

	// Timings records per-phase wall clock and cache reuse. Unlike every
	// other Report field it is not a pure function of the pair, so
	// report-equality comparisons should zero it first.
	Timings PhaseTimings
}

// PhaseTimings is the per-phase wall-clock breakdown of one verification,
// plus which phases were served from an artifact cache.
type PhaseTimings struct {
	// P1 covers preprocessing plus crash-primitive extraction (S-side).
	P1 time.Duration
	// Static covers the pre-P2 static analysis of T (verifier, constant
	// folding, dominators, reachability); zero when disabled.
	Static time.Duration
	// Absint covers the abstract-interpretation value-range analysis of T;
	// zero when disabled.
	Absint time.Duration
	// P2Prep covers CFG construction, dynamic edge discovery, and
	// backward path finding (T-side preparation).
	P2Prep time.Duration
	// Reform covers directed symbolic execution with bunch placement and
	// constraint solving (P2+P3 proper).
	Reform time.Duration
	// P4 covers concrete re-verification, minimization, and Type
	// classification.
	P4 time.Duration
	// Hybrid covers the directed-fuzzing fallback campaign (both arms plus
	// the replay confirmation); zero when the fallback did not run.
	Hybrid time.Duration
	// P1Cached/P2Cached/StaticCached/AbsintCached/HybridCached report
	// whether the corresponding artifact came from a cache instead of
	// being recomputed.
	P1Cached     bool
	P2Cached     bool
	StaticCached bool
	AbsintCached bool
	HybridCached bool
}

// PoCGenerated reports whether a reformed PoC was produced (the poc' column
// of Table II).
func (r *Report) PoCGenerated() bool { return len(r.PoCPrime) > 0 }

// Verified reports whether OCTOPOCS reached a sound verdict (the
// verification column of Table II).
func (r *Report) Verified() bool { return r.Verdict != VerdictFailure }

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %s (%s) reason=%q ep=%s poc'=%v",
		r.Pair, r.Verdict, r.Type, string(r.Reason), r.Ep, r.PoCGenerated())
}
