package asm_test

import (
	"strings"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/vm"
)

func TestParseNegativeOffsets(t *testing.T) {
	src := `
program neg
entry main

func main/0 {
entry:
  r1 = sys alloc(r0)
  r0 = const 16
  r1 = sys alloc(r0)
  r2 = add r1, 8
  r3 = const 77
  store1 r2+-4, r3
  r4 = load1 r2+-4
  ret r4
}
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := vm.New(prog, vm.Config{}).Run()
	if out.Status != vm.StatusExit || out.ExitCode != 77 {
		t.Fatalf("outcome = %v, want exit(77)", out)
	}
	// Negative offsets must survive a format/parse cycle.
	again, err := asm.Parse(asm.Format(prog))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	out2 := vm.New(again, vm.Config{}).Run()
	if out2.ExitCode != 77 {
		t.Fatalf("round-tripped outcome = %v", out2)
	}
}

func TestParseArgChannelSyscalls(t *testing.T) {
	src := `
program args
entry main

func main/0 {
entry:
  r0 = const 4
  r1 = sys alloc(r0)
  r2 = sys argread(r1, r0)
  r3 = sys arglen()
  r4 = add r2, r3
  ret r4
}
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := vm.New(prog, vm.Config{Input: []byte{1, 2}}).Run()
	// argread returns 2 (clamped), arglen returns 2.
	if out.ExitCode != 4 {
		t.Fatalf("outcome = %v, want exit(4)", out)
	}
}

func TestFormatIncludesFunctable(t *testing.T) {
	b := asm.NewBuilder("ft")
	h := b.Function("h", 0)
	h.RetI(0)
	f := b.Function("main", 0)
	f.CallInd(f.Const(0))
	f.Exit(0)
	b.Entry("main")
	b.FuncTable("h", "")
	text := asm.Format(b.MustBuild())
	if !strings.Contains(text, "functable h, -") {
		t.Errorf("functable line missing:\n%s", text)
	}
}

// FuzzParse checks the assembler never panics on arbitrary text and that
// anything it accepts formats and re-parses to the same rendering.
func FuzzParse(f *testing.F) {
	f.Add("program p\nentry main\nfunc main/0 {\ne:\n  ret r0\n}\n")
	f.Add("program q\nfunc f/2 {\nblk:\n  r2 = add r0, r1\n  ret r2\n}\nentry f\n")
	f.Add("garbage")
	f.Add("program p\nfunctable -, a\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.Parse(src)
		if err != nil {
			return
		}
		text := asm.Format(prog)
		again, err := asm.Parse(text)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse: %v\n%s", err, text)
		}
		if asm.Format(again) != text {
			t.Fatal("format not stable")
		}
	})
}
