// Package asm provides two ways to construct MIR programs: a fluent builder
// with structured control flow (If/While/etc.), used by the synthetic corpus,
// and a textual assembler/disassembler used by the mirrun tool and tests.
// It is construction tooling only — the binaries it produces are what the
// P1–P4 pipeline analyzes.
//
// Concurrency: a Builder (and its Fn handles) is confined to one goroutine;
// the isa.Program it builds is immutable and may be shared freely, including
// by parallel frontier workers.
package asm

import (
	"fmt"

	"octopocs/internal/isa"
)

// Builder accumulates a program. Errors are sticky: the first construction
// error is remembered and returned by Build, so call sites stay clean.
type Builder struct {
	prog *isa.Program
	fns  []*Fn
	err  error
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &isa.Program{Name: name}}
}

// Entry sets the program's entry function name.
func (b *Builder) Entry(name string) { b.prog.Entry = name }

// FuncTable sets the indirect-call table. Empty strings model slots whose
// target cannot be resolved statically.
func (b *Builder) FuncTable(names ...string) { b.prog.FuncTable = names }

// setErr records the first error.
func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build seals every function, validates the program, and returns it.
func (b *Builder) Build() (*isa.Program, error) {
	for _, fn := range b.fns {
		fn.finish()
	}
	if b.err != nil {
		return nil, b.err
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build for statically-known-good programs, such as the corpus
// binaries constructed in this repository; it panics on error.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("asm: MustBuild %s: %v", b.prog.Name, err))
	}
	return p
}

// Function starts a new function and returns its builder. Code is emitted
// into the function's current block; structured-control-flow helpers manage
// block creation and joining.
func (b *Builder) Function(name string, nparams int) *Fn {
	f := &isa.Function{Name: name, NParams: nparams}
	b.prog.Funcs = append(b.prog.Funcs, f)
	fn := &Fn{b: b, f: f, nextReg: nparams}
	fn.cur = fn.newBlock("entry")
	b.fns = append(b.fns, fn)
	return fn
}

// Fn builds one function. Registers are bump-allocated: every value-producing
// helper returns a fresh register, and Var reserves a mutable one.
type Fn struct {
	b          *Builder
	f          *isa.Function
	cur        *isa.Block
	terminated bool
	finished   bool
	nextReg    int
	nextBlk    int
}

func (f *Fn) newBlock(hint string) *isa.Block {
	name := fmt.Sprintf("%s.%d", hint, f.nextBlk)
	f.nextBlk++
	blk := &isa.Block{Name: name}
	f.f.Blocks = append(f.f.Blocks, blk)
	return blk
}

func (f *Fn) alloc() isa.Reg {
	if f.nextReg >= isa.NumRegs {
		f.b.setErr(fmt.Errorf("asm: function %s: out of registers", f.f.Name))
		return 0
	}
	r := isa.Reg(f.nextReg)
	f.nextReg++
	return r
}

func (f *Fn) emit(in isa.Inst) {
	if f.terminated {
		// Code after a terminator in the same structured scope is
		// unreachable; emit it into a fresh dead block so the program
		// remains well formed.
		f.cur = f.newBlock("dead")
		f.terminated = false
	}
	f.cur.Insts = append(f.cur.Insts, in)
	if in.IsTerminator() {
		f.terminated = true
	}
}

// switchTo makes blk the current emission target.
func (f *Fn) switchTo(blk *isa.Block) {
	f.cur = blk
	f.terminated = false
}

// finish seals the function: it flags control falling off the end and
// terminates any builder-created block left empty (an unreachable join, e.g.
// when both arms of an IfElse return) with an unreachable trap so validation
// passes. Build calls it for every function.
func (f *Fn) finish() {
	if f.finished {
		return
	}
	f.finished = true
	if !f.terminated && len(f.cur.Insts) > 0 {
		f.b.setErr(fmt.Errorf("asm: function %s: control falls off the end", f.f.Name))
	}
	for _, blk := range f.f.Blocks {
		if len(blk.Insts) == 0 {
			blk.Insts = append(blk.Insts, isa.Inst{Op: isa.OpTrap, Imm: TrapUnreachable})
		}
	}
}

// TrapUnreachable is the trap code used to seal builder-generated
// unreachable blocks.
const TrapUnreachable = 0xFE

// Param returns the register holding the i-th parameter.
func (f *Fn) Param(i int) isa.Reg {
	if i < 0 || i >= f.f.NParams {
		f.b.setErr(fmt.Errorf("asm: function %s: parameter %d out of range", f.f.Name, i))
		return 0
	}
	return isa.Reg(i)
}

// Const materializes a constant into a fresh register.
func (f *Fn) Const(v int64) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpConst, Dst: dst, Imm: v})
	return dst
}

// Var reserves a mutable register initialized from init. Reassign it with
// Assign.
func (f *Fn) Var(init isa.Reg) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpMov, Dst: dst, A: init})
	return dst
}

// VarI reserves a mutable register initialized to the constant v.
func (f *Fn) VarI(v int64) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpConst, Dst: dst, Imm: v})
	return dst
}

// Assign emits dst = src.
func (f *Fn) Assign(dst, src isa.Reg) {
	f.emit(isa.Inst{Op: isa.OpMov, Dst: dst, A: src})
}

// AssignI emits dst = v.
func (f *Fn) AssignI(dst isa.Reg, v int64) {
	f.emit(isa.Inst{Op: isa.OpConst, Dst: dst, Imm: v})
}

// Bin emits dst = a <op> b into a fresh register.
func (f *Fn) Bin(op isa.BinOp, a, b isa.Reg) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpBin, Dst: dst, Bin: op, A: a, B: b})
	return dst
}

// BinI emits dst = a <op> imm into a fresh register.
func (f *Fn) BinI(op isa.BinOp, a isa.Reg, imm int64) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpBinImm, Dst: dst, Bin: op, A: a, Imm: imm})
	return dst
}

// Arithmetic convenience wrappers.

// Add emits a+b.
func (f *Fn) Add(a, b isa.Reg) isa.Reg { return f.Bin(isa.Add, a, b) }

// AddI emits a+imm.
func (f *Fn) AddI(a isa.Reg, imm int64) isa.Reg { return f.BinI(isa.Add, a, imm) }

// Sub emits a-b.
func (f *Fn) Sub(a, b isa.Reg) isa.Reg { return f.Bin(isa.Sub, a, b) }

// SubI emits a-imm.
func (f *Fn) SubI(a isa.Reg, imm int64) isa.Reg { return f.BinI(isa.Sub, a, imm) }

// Mul emits a*b.
func (f *Fn) Mul(a, b isa.Reg) isa.Reg { return f.Bin(isa.Mul, a, b) }

// MulI emits a*imm.
func (f *Fn) MulI(a isa.Reg, imm int64) isa.Reg { return f.BinI(isa.Mul, a, imm) }

// AndI emits a&imm.
func (f *Fn) AndI(a isa.Reg, imm int64) isa.Reg { return f.BinI(isa.And, a, imm) }

// OrI emits a|imm.
func (f *Fn) OrI(a isa.Reg, imm int64) isa.Reg { return f.BinI(isa.Or, a, imm) }

// ShlI emits a<<imm.
func (f *Fn) ShlI(a isa.Reg, imm int64) isa.Reg { return f.BinI(isa.Shl, a, imm) }

// ShrI emits a>>imm.
func (f *Fn) ShrI(a isa.Reg, imm int64) isa.Reg { return f.BinI(isa.Shr, a, imm) }

// Cmp emits dst = (a <op> b) into a fresh register.
func (f *Fn) Cmp(op isa.CmpOp, a, b isa.Reg) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpCmp, Dst: dst, Cmp: op, A: a, B: b})
	return dst
}

// CmpI emits dst = (a <op> imm) into a fresh register.
func (f *Fn) CmpI(op isa.CmpOp, a isa.Reg, imm int64) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpCmpImm, Dst: dst, Cmp: op, A: a, Imm: imm})
	return dst
}

// EqI emits a == imm.
func (f *Fn) EqI(a isa.Reg, imm int64) isa.Reg { return f.CmpI(isa.Eq, a, imm) }

// NeI emits a != imm.
func (f *Fn) NeI(a isa.Reg, imm int64) isa.Reg { return f.CmpI(isa.Ne, a, imm) }

// LtI emits a < imm (unsigned).
func (f *Fn) LtI(a isa.Reg, imm int64) isa.Reg { return f.CmpI(isa.Lt, a, imm) }

// GtI emits a > imm (unsigned).
func (f *Fn) GtI(a isa.Reg, imm int64) isa.Reg { return f.CmpI(isa.Gt, a, imm) }

// GeI emits a >= imm (unsigned).
func (f *Fn) GeI(a isa.Reg, imm int64) isa.Reg { return f.CmpI(isa.Ge, a, imm) }

// Load emits dst = mem[addr+off] of the given width.
func (f *Fn) Load(size uint8, addr isa.Reg, off int64) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpLoad, Dst: dst, Size: size, A: addr, Imm: off})
	return dst
}

// Store emits mem[addr+off] = val of the given width.
func (f *Fn) Store(size uint8, addr isa.Reg, off int64, val isa.Reg) {
	f.emit(isa.Inst{Op: isa.OpStore, Size: size, A: addr, Imm: off, B: val})
}

// Call emits a direct call.
func (f *Fn) Call(callee string, args ...isa.Reg) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpCall, Dst: dst, Callee: callee, Args: args})
	return dst
}

// CallInd emits an indirect call through the program function table.
func (f *Fn) CallInd(idx isa.Reg, args ...isa.Reg) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpCallInd, Dst: dst, A: idx, Args: args})
	return dst
}

// Sys emits a syscall.
func (f *Fn) Sys(s isa.Sys, args ...isa.Reg) isa.Reg {
	dst := f.alloc()
	f.emit(isa.Inst{Op: isa.OpSyscall, Dst: dst, Sys: s, Args: args})
	return dst
}

// Ret emits a return of v.
func (f *Fn) Ret(v isa.Reg) { f.emit(isa.Inst{Op: isa.OpRet, A: v}) }

// RetI returns the constant v.
func (f *Fn) RetI(v int64) { f.Ret(f.Const(v)) }

// Trap emits an explicit abort with the given code.
func (f *Fn) Trap(code int64) { f.emit(isa.Inst{Op: isa.OpTrap, Imm: code}) }

// Exit emits sys exit(code).
func (f *Fn) Exit(code int64) { f.Sys(isa.SysExit, f.Const(code)) }

// If emits: if cond != 0 { then }.
func (f *Fn) If(cond isa.Reg, then func()) {
	f.IfElse(cond, then, nil)
}

// IfElse emits a two-armed conditional. Either arm may end in its own
// terminator (Ret/Exit/Trap); the join block is then sealed automatically.
func (f *Fn) IfElse(cond isa.Reg, then, els func()) {
	thenBlk := f.newBlock("then")
	joinBlk := f.newBlock("join")
	elseBlk := joinBlk
	if els != nil {
		elseBlk = f.newBlock("else")
	}
	f.emit(isa.Inst{Op: isa.OpBr, A: cond, Then: thenBlk.Name, Else: elseBlk.Name})

	f.switchTo(thenBlk)
	then()
	if !f.terminated {
		f.emit(isa.Inst{Op: isa.OpJmp, Then: joinBlk.Name})
	}
	if els != nil {
		f.switchTo(elseBlk)
		els()
		if !f.terminated {
			f.emit(isa.Inst{Op: isa.OpJmp, Then: joinBlk.Name})
		}
	}
	f.switchTo(joinBlk)
}

// While emits: for cond() != 0 { body() }. The condition callback runs at the
// loop head and must return the register holding the condition.
func (f *Fn) While(cond func() isa.Reg, body func()) {
	headBlk := f.newBlock("while.head")
	bodyBlk := f.newBlock("while.body")
	exitBlk := f.newBlock("while.exit")

	f.emit(isa.Inst{Op: isa.OpJmp, Then: headBlk.Name})
	f.switchTo(headBlk)
	c := cond()
	f.emit(isa.Inst{Op: isa.OpBr, A: c, Then: bodyBlk.Name, Else: exitBlk.Name})

	f.switchTo(bodyBlk)
	body()
	if !f.terminated {
		f.emit(isa.Inst{Op: isa.OpJmp, Then: headBlk.Name})
	}
	f.switchTo(exitBlk)
}

// Forever emits an unconditional loop; body must eventually terminate the
// block itself (or the VM instruction budget classifies the run as a hang,
// which is exactly how the CWE-835 corpus cases crash).
func (f *Fn) Forever(body func()) {
	headBlk := f.newBlock("loop.head")
	exitBlk := f.newBlock("loop.exit")

	f.emit(isa.Inst{Op: isa.OpJmp, Then: headBlk.Name})
	f.switchTo(headBlk)
	body()
	if !f.terminated {
		f.emit(isa.Inst{Op: isa.OpJmp, Then: headBlk.Name})
	}
	f.switchTo(exitBlk)
}
