package asm_test

import (
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

// evalMain builds main with the body and returns its exit code.
func evalMain(t *testing.T, body func(f *asm.Fn)) uint64 {
	t.Helper()
	b := asm.NewBuilder("t")
	f := b.Function("main", 0)
	body(f)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out := vm.New(prog, vm.Config{MaxSteps: 100_000}).Run()
	if out.Status != vm.StatusExit {
		t.Fatalf("outcome = %v, want exit", out)
	}
	return out.ExitCode
}

// TestBuilderArithmeticHelpers drives every convenience wrapper through the
// VM and checks its semantics.
func TestBuilderArithmeticHelpers(t *testing.T) {
	tests := []struct {
		name string
		body func(f *asm.Fn) isa.Reg
		want uint64
	}{
		{"AddI", func(f *asm.Fn) isa.Reg { return f.AddI(f.Const(40), 2) }, 42},
		{"Sub", func(f *asm.Fn) isa.Reg { return f.Sub(f.Const(50), f.Const(8)) }, 42},
		{"SubI", func(f *asm.Fn) isa.Reg { return f.SubI(f.Const(45), 3) }, 42},
		{"Mul", func(f *asm.Fn) isa.Reg { return f.Mul(f.Const(6), f.Const(7)) }, 42},
		{"MulI", func(f *asm.Fn) isa.Reg { return f.MulI(f.Const(21), 2) }, 42},
		{"AndI", func(f *asm.Fn) isa.Reg { return f.AndI(f.Const(0xFF), 0x2A) }, 42},
		{"OrI", func(f *asm.Fn) isa.Reg { return f.OrI(f.Const(0x20), 0x0A) }, 42},
		{"ShlI", func(f *asm.Fn) isa.Reg { return f.ShlI(f.Const(21), 1) }, 42},
		{"ShrI", func(f *asm.Fn) isa.Reg { return f.ShrI(f.Const(84), 1) }, 42},
		{"NeI true", func(f *asm.Fn) isa.Reg { return f.NeI(f.Const(1), 2) }, 1},
		{"GtI false", func(f *asm.Fn) isa.Reg { return f.GtI(f.Const(1), 2) }, 0},
		{"GeI equal", func(f *asm.Fn) isa.Reg { return f.GeI(f.Const(2), 2) }, 1},
		{"LtI true", func(f *asm.Fn) isa.Reg { return f.LtI(f.Const(1), 2) }, 1},
		{"EqI true", func(f *asm.Fn) isa.Reg { return f.EqI(f.Const(5), 5) }, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := evalMain(t, func(f *asm.Fn) { f.Ret(tt.body(f)) })
			if got != tt.want {
				t.Errorf("= %d, want %d", got, tt.want)
			}
		})
	}
}

func TestBuilderMemoryAndVars(t *testing.T) {
	got := evalMain(t, func(f *asm.Fn) {
		buf := f.Sys(isa.SysAlloc, f.Const(8))
		v := f.Var(f.Const(7))
		f.AssignI(v, 40)
		f.Store(4, buf, 0, v)
		loaded := f.Load(4, buf, 0)
		f.Ret(f.AddI(loaded, 2))
	})
	if got != 42 {
		t.Errorf("= %d, want 42", got)
	}
}

func TestBuilderForeverWithExit(t *testing.T) {
	got := evalMain(t, func(f *asm.Fn) {
		i := f.VarI(0)
		f.Forever(func() {
			f.Assign(i, f.AddI(i, 1))
			f.If(f.GeI(i, 5), func() { f.Ret(i) })
		})
		f.RetI(0)
	})
	if got != 5 {
		t.Errorf("= %d, want 5", got)
	}
}

func TestBuilderTrap(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Function("main", 0)
	f.Trap(9)
	b.Entry("main")
	out := vm.New(b.MustBuild(), vm.Config{}).Run()
	if out.Status != vm.StatusCrash || out.Crash.Code != 9 {
		t.Fatalf("outcome = %v, want trap 9", out)
	}
}
