package asm_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
	"octopocs/internal/vm"
)

func TestBuilderProducesValidPrograms(t *testing.T) {
	b := asm.NewBuilder("demo")
	helper := b.Function("helper", 2)
	helper.Ret(helper.Add(helper.Param(0), helper.Param(1)))

	f := b.Function("main", 0)
	x := f.VarI(0)
	f.IfElse(f.EqI(x, 0),
		func() { f.Assign(x, f.Const(1)) },
		func() { f.Assign(x, f.Const(2)) })
	f.While(func() isa.Reg { return f.LtI(x, 5) }, func() {
		f.Assign(x, f.Call("helper", x, f.Const(2)))
	})
	f.Ret(x)
	b.Entry("main")

	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build() = %v", err)
	}
	out := vm.New(prog, vm.Config{}).Run()
	if out.Status != vm.StatusExit || out.ExitCode != 5 {
		t.Fatalf("outcome = %v, want exit(5)", out)
	}
}

func TestBuilderStickyErrors(t *testing.T) {
	t.Run("falls off end", func(t *testing.T) {
		b := asm.NewBuilder("bad")
		f := b.Function("main", 0)
		f.Const(1) // no terminator
		b.Entry("main")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "falls off") {
			t.Errorf("Build() = %v, want falls-off-the-end error", err)
		}
	})
	t.Run("bad param index", func(t *testing.T) {
		b := asm.NewBuilder("bad")
		f := b.Function("main", 1)
		f.Ret(f.Param(3))
		b.Entry("main")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "parameter") {
			t.Errorf("Build() = %v, want parameter error", err)
		}
	})
	t.Run("register exhaustion", func(t *testing.T) {
		b := asm.NewBuilder("bad")
		f := b.Function("main", 0)
		for i := 0; i < isa.NumRegs+1; i++ {
			f.Const(int64(i))
		}
		f.RetI(0)
		b.Entry("main")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "registers") {
			t.Errorf("Build() = %v, want register exhaustion error", err)
		}
	})
}

func TestBuilderSealsUnreachableJoin(t *testing.T) {
	b := asm.NewBuilder("seal")
	f := b.Function("main", 0)
	f.IfElse(f.Const(1),
		func() { f.RetI(1) },
		func() { f.RetI(2) })
	// join block is unreachable and left empty; Build must seal it.
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build() = %v", err)
	}
	out := vm.New(prog, vm.Config{}).Run()
	if out.Status != vm.StatusExit || out.ExitCode != 1 {
		t.Fatalf("outcome = %v, want exit(1)", out)
	}
}

func TestDeadCodeAfterTerminator(t *testing.T) {
	b := asm.NewBuilder("dead")
	f := b.Function("main", 0)
	f.RetI(7)
	f.Const(1) // dead, must go to a fresh sealed block
	f.RetI(8)
	b.Entry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build() = %v", err)
	}
	out := vm.New(prog, vm.Config{}).Run()
	if out.ExitCode != 7 {
		t.Fatalf("outcome = %v, want exit(7)", out)
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid program")
		}
	}()
	b := asm.NewBuilder("bad")
	b.Entry("missing")
	b.MustBuild()
}

func TestParseFormatFixed(t *testing.T) {
	src := `
program demo
entry main
functable f, -, g

func f/1 {
e:
  r1 = add r0, 1
  ret r1
}

func g/1 {
e:
  r1 = const -2
  r2 = mul r0, r1
  ret r2
}

func main/0 {
entry:
  r0 = const 1
  r1 = calli r0(r0)   ; comment here
  br r1, yes, no
yes:
  r2 = sys exit(r1)
no:
  trap 3
}
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("Parse() = %v", err)
	}
	if prog.Name != "demo" || prog.Entry != "main" {
		t.Errorf("got name=%q entry=%q", prog.Name, prog.Entry)
	}
	if len(prog.FuncTable) != 3 || prog.FuncTable[1] != "" {
		t.Errorf("functable = %v, want [f,'',g]", prog.FuncTable)
	}
	// Round-trip.
	again, err := asm.Parse(asm.Format(prog))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if asm.Format(again) != asm.Format(prog) {
		t.Error("Format not stable across Parse(Format(p))")
	}
	// Execute: functable[1] is empty, calli r0 with r0==1 → bad call.
	out := vm.New(prog, vm.Config{}).Run()
	if out.Status != vm.StatusCrash || out.Crash.Kind != vm.CrashBadCall {
		t.Fatalf("outcome = %v, want bad-indirect-call", out)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"no program header", "entry main\n", "expected 'program"},
		{"garbage top level", "program p\nwhatever\n", "unexpected line"},
		{"func without brace", "program p\nfunc f/0\ne:\n ret r0\n}\n", "'{'"},
		{"func without slash", "program p\nfunc f {\ne:\n ret r0\n}\n", "nparams"},
		{"bad param count", "program p\nfunc f/x {\ne:\n ret r0\n}\n", "parameter count"},
		{"inst before label", "program p\nfunc f/0 {\n ret r0\n}\n", "before any block"},
		{"eof in func", "program p\nfunc f/0 {\ne:\n ret r0\n", "EOF"},
		{"unknown op", "program p\nfunc f/0 {\ne:\n r1 = frob r0\n ret r0\n}\n", "unknown operation"},
		{"unknown stmt", "program p\nfunc f/0 {\ne:\n frob r0\n}\n", "unknown statement"},
		{"bad register", "program p\nfunc f/0 {\ne:\n ret r9999\n}\n", "bad register"},
		{"bad immediate", "program p\nfunc f/0 {\ne:\n r1 = const zz\n ret r0\n}\n", "bad immediate"},
		{"bad width", "program p\nfunc f/0 {\ne:\n r1 = load3 r0+0\n ret r0\n}\n", "width"},
		{"bad syscall", "program p\nfunc f/0 {\ne:\n r1 = sys nope()\n ret r0\n}\n", "unknown syscall"},
		{"br arity", "program p\nfunc f/0 {\ne:\n br r0, x\n}\n", "3 operands"},
		{"store arity", "program p\nfunc f/0 {\ne:\n store1 r0+0\n}\n", "store needs"},
		{"call syntax", "program p\nentry f\nfunc f/0 {\ne:\n r1 = call g\n ret r0\n}\n", "call syntax"},
		{"validation failure surfaces", "program p\nentry f\nfunc f/0 {\ne:\n r1 = const 0\n}\n", "terminator"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := asm.Parse(tt.src)
			if err == nil {
				t.Fatal("Parse() = nil error, want failure")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Parse() error = %q, want substring %q", err, tt.want)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := asm.Parse("program p\nfunc f/0 {\ne:\n r1 = frob r0\n ret r0\n}\n")
	var pe *asm.ParseError
	if ok := errorsAs(err, &pe); !ok {
		t.Fatalf("error %T, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4", pe.Line)
	}
}

// errorsAs avoids importing errors for one call.
func errorsAs(err error, target **asm.ParseError) bool {
	for err != nil {
		if pe, ok := err.(*asm.ParseError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// randomProgram generates a structurally valid random program for the
// round-trip property test.
func randomProgram(rng *rand.Rand) *isa.Program {
	b := asm.NewBuilder("rnd")
	nFuncs := 1 + rng.Intn(3)
	names := make([]string, nFuncs)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	for _, name := range names {
		nparams := rng.Intn(3)
		f := b.Function(name, nparams)
		vals := []isa.Reg{f.Const(int64(rng.Uint64()))}
		for j := 0; j < nparams; j++ {
			vals = append(vals, f.Param(j))
		}
		pick := func() isa.Reg { return vals[rng.Intn(len(vals))] }
		nops := rng.Intn(12)
		for j := 0; j < nops; j++ {
			switch rng.Intn(6) {
			case 0:
				vals = append(vals, f.Bin(isa.BinOp(1+rng.Intn(10)), pick(), pick()))
			case 1:
				vals = append(vals, f.BinI(isa.BinOp(1+rng.Intn(10)), pick(), int64(rng.Int31())))
			case 2:
				vals = append(vals, f.Cmp(isa.CmpOp(1+rng.Intn(8)), pick(), pick()))
			case 3:
				vals = append(vals, f.CmpI(isa.CmpOp(1+rng.Intn(8)), pick(), int64(rng.Int31())))
			case 4:
				f.If(pick(), func() { vals = append(vals, f.Const(int64(rng.Intn(100)))) })
			case 5:
				vals = append(vals, f.Const(int64(rng.Intn(1000))))
			}
		}
		f.Ret(pick())
	}
	b.Entry(names[len(names)-1])
	return b.MustBuild()
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		text := asm.Format(p)
		q, err := asm.Parse(text)
		if err != nil {
			t.Logf("Parse failed on:\n%s\nerr: %v", text, err)
			return false
		}
		return asm.Format(q) == text
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Error(err)
	}
}

// TestRoundTripPreservesSemantics checks random programs compute the same
// result before and after a Format/Parse cycle.
func TestRoundTripPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		q, err := asm.Parse(asm.Format(p))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := vm.Config{MaxSteps: 10_000}
		o1 := vm.New(p, cfg).Run()
		o2 := vm.New(q, cfg).Run()
		if o1.Status != o2.Status || o1.ExitCode != o2.ExitCode {
			t.Fatalf("seed %d: outcomes differ: %v vs %v", seed, o1, o2)
		}
	}
}
