package asm

import (
	"fmt"
	"strconv"
	"strings"

	"octopocs/internal/isa"
)

// Format renders a program in the textual assembly syntax understood by
// Parse. The output round-trips: Parse(Format(p)) yields an equivalent
// program.
func Format(p *isa.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	fmt.Fprintf(&sb, "entry %s\n", p.Entry)
	if len(p.FuncTable) > 0 {
		slots := make([]string, len(p.FuncTable))
		for i, name := range p.FuncTable {
			if name == "" {
				slots[i] = "-"
			} else {
				slots[i] = name
			}
		}
		fmt.Fprintf(&sb, "functable %s\n", strings.Join(slots, ", "))
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "\nfunc %s/%d {\n", f.Name, f.NParams)
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "%s:\n", b.Name)
			for _, in := range b.Insts {
				fmt.Fprintf(&sb, "  %s\n", in)
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// parser holds the line-oriented parse state.
type parser struct {
	lines []string
	pos   int
}

// ParseError reports a syntax error with its 1-based line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next non-blank, non-comment line, trimmed, or "" at EOF.
func (p *parser) next() string {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line
		}
	}
	return ""
}

// Parse reads a program in the textual assembly syntax. The result is
// validated before being returned.
func Parse(src string) (*isa.Program, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	prog := &isa.Program{}

	line := p.next()
	name, ok := strings.CutPrefix(line, "program ")
	if !ok {
		return nil, p.errf("expected 'program <name>', got %q", line)
	}
	prog.Name = strings.TrimSpace(name)

	for {
		line = p.next()
		if line == "" {
			break
		}
		switch {
		case strings.HasPrefix(line, "entry "):
			prog.Entry = strings.TrimSpace(strings.TrimPrefix(line, "entry "))
		case strings.HasPrefix(line, "functable "):
			for _, slot := range strings.Split(strings.TrimPrefix(line, "functable "), ",") {
				slot = strings.TrimSpace(slot)
				if slot == "-" {
					slot = ""
				}
				prog.FuncTable = append(prog.FuncTable, slot)
			}
		case strings.HasPrefix(line, "func "):
			f, err := p.parseFunc(line)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errf("unexpected line %q", line)
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return prog, nil
}

func (p *parser) parseFunc(header string) (*isa.Function, error) {
	// func <name>/<nparams> {
	rest := strings.TrimSpace(strings.TrimPrefix(header, "func "))
	rest, ok := strings.CutSuffix(rest, "{")
	if !ok {
		return nil, p.errf("function header must end in '{': %q", header)
	}
	rest = strings.TrimSpace(rest)
	slash := strings.LastIndex(rest, "/")
	if slash < 0 {
		return nil, p.errf("function header needs <name>/<nparams>: %q", header)
	}
	nparams, err := strconv.Atoi(rest[slash+1:])
	if err != nil {
		return nil, p.errf("bad parameter count in %q: %v", header, err)
	}
	f := &isa.Function{Name: rest[:slash], NParams: nparams}

	var cur *isa.Block
	for {
		line := p.next()
		switch {
		case line == "":
			return nil, p.errf("unexpected EOF inside function %s", f.Name)
		case line == "}":
			return f, nil
		case strings.HasSuffix(line, ":"):
			cur = &isa.Block{Name: strings.TrimSuffix(line, ":")}
			f.Blocks = append(f.Blocks, cur)
		default:
			if cur == nil {
				return nil, p.errf("instruction before any block label: %q", line)
			}
			in, err := p.parseInst(line)
			if err != nil {
				return nil, err
			}
			cur.Insts = append(cur.Insts, in)
		}
	}
}

var binOps = map[string]isa.BinOp{
	"add": isa.Add, "sub": isa.Sub, "mul": isa.Mul, "div": isa.Div,
	"mod": isa.Mod, "and": isa.And, "or": isa.Or, "xor": isa.Xor,
	"shl": isa.Shl, "shr": isa.Shr,
}

var cmpOps = map[string]isa.CmpOp{
	"eq": isa.Eq, "ne": isa.Ne, "lt": isa.Lt, "le": isa.Le,
	"gt": isa.Gt, "ge": isa.Ge, "slt": isa.SLt, "sle": isa.SLe,
}

var sysNames = map[string]isa.Sys{
	"open": isa.SysOpen, "read": isa.SysRead, "seek": isa.SysSeek,
	"tell": isa.SysTell, "size": isa.SysSize, "mmap": isa.SysMMap,
	"alloc": isa.SysAlloc, "free": isa.SysFree, "write": isa.SysWrite,
	"exit": isa.SysExit, "argread": isa.SysArgRead, "arglen": isa.SysArgLen,
}

func (p *parser) parseInst(line string) (isa.Inst, error) {
	if dst, rhs, ok := strings.Cut(line, " = "); ok {
		d, err := p.parseReg(strings.TrimSpace(dst))
		if err != nil {
			return isa.Inst{}, err
		}
		in, err := p.parseRHS(strings.TrimSpace(rhs))
		if err != nil {
			return isa.Inst{}, err
		}
		in.Dst = d
		return in, nil
	}
	return p.parseStmt(line)
}

// parseRHS parses the right-hand side of "rN = ...".
func (p *parser) parseRHS(rhs string) (isa.Inst, error) {
	op, rest, _ := strings.Cut(rhs, " ")
	rest = strings.TrimSpace(rest)
	switch {
	case op == "const":
		imm, err := p.parseImm(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpConst, Imm: imm}, nil
	case op == "mov":
		a, err := p.parseReg(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpMov, A: a}, nil
	case op == "call":
		callee, args, err := p.parseCallExpr(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpCall, Callee: callee, Args: args}, nil
	case op == "calli":
		target, args, err := p.parseCallExpr(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		idx, err := p.parseReg(target)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpCallInd, A: idx, Args: args}, nil
	case op == "sys":
		name, args, err := p.parseCallExpr(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		sys, ok := sysNames[name]
		if !ok {
			return isa.Inst{}, p.errf("unknown syscall %q", name)
		}
		return isa.Inst{Op: isa.OpSyscall, Sys: sys, Args: args}, nil
	case strings.HasPrefix(op, "load"):
		size, err := p.parseSize(strings.TrimPrefix(op, "load"))
		if err != nil {
			return isa.Inst{}, err
		}
		addr, off, err := p.parseAddr(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpLoad, Size: size, A: addr, Imm: off}, nil
	}
	if bop, ok := binOps[op]; ok {
		a, b, imm, isImm, err := p.parseTwoOperands(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		if isImm {
			return isa.Inst{Op: isa.OpBinImm, Bin: bop, A: a, Imm: imm}, nil
		}
		return isa.Inst{Op: isa.OpBin, Bin: bop, A: a, B: b}, nil
	}
	if cop, ok := cmpOps[op]; ok {
		a, b, imm, isImm, err := p.parseTwoOperands(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		if isImm {
			return isa.Inst{Op: isa.OpCmpImm, Cmp: cop, A: a, Imm: imm}, nil
		}
		return isa.Inst{Op: isa.OpCmp, Cmp: cop, A: a, B: b}, nil
	}
	return isa.Inst{}, p.errf("unknown operation %q", op)
}

// parseStmt parses instructions with no destination register.
func (p *parser) parseStmt(line string) (isa.Inst, error) {
	op, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch {
	case op == "jmp":
		return isa.Inst{Op: isa.OpJmp, Then: rest}, nil
	case op == "br":
		parts := splitOperands(rest)
		if len(parts) != 3 {
			return isa.Inst{}, p.errf("br needs 3 operands: %q", line)
		}
		a, err := p.parseReg(parts[0])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpBr, A: a, Then: parts[1], Else: parts[2]}, nil
	case op == "ret":
		a, err := p.parseReg(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpRet, A: a}, nil
	case op == "trap":
		imm, err := p.parseImm(rest)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpTrap, Imm: imm}, nil
	case strings.HasPrefix(op, "store"):
		size, err := p.parseSize(strings.TrimPrefix(op, "store"))
		if err != nil {
			return isa.Inst{}, err
		}
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return isa.Inst{}, p.errf("store needs 'addr+off, reg': %q", line)
		}
		addr, off, err := p.parseAddr(parts[0])
		if err != nil {
			return isa.Inst{}, err
		}
		val, err := p.parseReg(parts[1])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpStore, Size: size, A: addr, Imm: off, B: val}, nil
	}
	return isa.Inst{}, p.errf("unknown statement %q", line)
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseTwoOperands parses "rA, rB" or "rA, imm" and reports which form it
// found.
func (p *parser) parseTwoOperands(s string) (a, b isa.Reg, imm int64, isImm bool, err error) {
	parts := splitOperands(s)
	if len(parts) != 2 {
		return 0, 0, 0, false, p.errf("expected two operands, got %q", s)
	}
	a, err = p.parseReg(parts[0])
	if err != nil {
		return 0, 0, 0, false, err
	}
	if strings.HasPrefix(parts[1], "r") {
		b, err = p.parseReg(parts[1])
		return a, b, 0, false, err
	}
	imm, err = p.parseImm(parts[1])
	return a, 0, imm, true, err
}

func (p *parser) parseReg(s string) (isa.Reg, error) {
	num, ok := strings.CutPrefix(s, "r")
	if !ok {
		return 0, p.errf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, p.errf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func (p *parser) parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, p.errf("bad immediate %q", s)
	}
	return v, nil
}

func (p *parser) parseSize(s string) (uint8, error) {
	switch s {
	case "1", "2", "4", "8":
		return uint8(s[0] - '0'), nil
	}
	return 0, p.errf("bad access width %q", s)
}

// parseAddr parses "rN+off" (off may be negative, written rN+-4).
func (p *parser) parseAddr(s string) (isa.Reg, int64, error) {
	reg, off, ok := strings.Cut(s, "+")
	if !ok {
		r, err := p.parseReg(s)
		return r, 0, err
	}
	r, err := p.parseReg(strings.TrimSpace(reg))
	if err != nil {
		return 0, 0, err
	}
	imm, err := p.parseImm(strings.TrimSpace(off))
	if err != nil {
		return 0, 0, err
	}
	return r, imm, nil
}

// parseCallExpr parses "name(args...)" and returns the name and argument
// registers.
func (p *parser) parseCallExpr(s string) (string, []isa.Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, p.errf("expected call syntax name(args): %q", s)
	}
	name := strings.TrimSpace(s[:open])
	var args []isa.Reg
	for _, part := range splitOperands(s[open+1 : len(s)-1]) {
		r, err := p.parseReg(part)
		if err != nil {
			return "", nil, err
		}
		args = append(args, r)
	}
	return name, args, nil
}
