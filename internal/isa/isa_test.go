package isa

import (
	"errors"
	"strings"
	"testing"
)

// retProg builds a minimal valid program: entry main { ret r0 }.
func retProg() *Program {
	return &Program{
		Name:  "t",
		Entry: "main",
		Funcs: []*Function{{
			Name: "main",
			Blocks: []*Block{{
				Name:  "entry",
				Insts: []Inst{{Op: OpRet, A: 0}},
			}},
		}},
	}
}

func TestValidateMinimal(t *testing.T) {
	p := retProg()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Program)
		wantSub string
	}{
		{
			name:    "missing entry",
			mutate:  func(p *Program) { p.Entry = "nope" },
			wantSub: "entry",
		},
		{
			name:    "empty entry name",
			mutate:  func(p *Program) { p.Entry = "" },
			wantSub: "entry",
		},
		{
			name: "duplicate function",
			mutate: func(p *Program) {
				p.Funcs = append(p.Funcs, p.Funcs[0])
			},
			wantSub: "duplicate function",
		},
		{
			name: "duplicate block",
			mutate: func(p *Program) {
				f := p.Funcs[0]
				f.Blocks = append(f.Blocks, &Block{Name: "entry", Insts: []Inst{{Op: OpRet}}})
			},
			wantSub: "duplicate block",
		},
		{
			name: "empty block",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks = append(p.Funcs[0].Blocks, &Block{Name: "b2"})
			},
			wantSub: "empty",
		},
		{
			name: "no terminator",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{{Op: OpConst, Dst: 1, Imm: 3}}
			},
			wantSub: "terminator",
		},
		{
			name: "terminator mid-block",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{
					{Op: OpRet, A: 0},
					{Op: OpRet, A: 0},
				}
			},
			wantSub: "middle",
		},
		{
			name: "jmp to unknown block",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{{Op: OpJmp, Then: "nowhere"}}
			},
			wantSub: "unknown block",
		},
		{
			name: "br to unknown block",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{{Op: OpBr, A: 0, Then: "entry", Else: "nowhere"}}
			},
			wantSub: "unknown block",
		},
		{
			name: "call unknown function",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{
					{Op: OpCall, Callee: "ghost"},
					{Op: OpRet, A: 0},
				}
			},
			wantSub: "unknown function",
		},
		{
			name: "call arity mismatch",
			mutate: func(p *Program) {
				p.Funcs = append(p.Funcs, &Function{
					Name: "two", NParams: 2,
					Blocks: []*Block{{Name: "e", Insts: []Inst{{Op: OpRet, A: 0}}}},
				})
				p.Funcs[0].Blocks[0].Insts = []Inst{
					{Op: OpCall, Callee: "two", Args: []Reg{1}},
					{Op: OpRet, A: 0},
				}
			},
			wantSub: "args",
		},
		{
			name: "indirect call without table",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{
					{Op: OpCallInd, A: 1},
					{Op: OpRet, A: 0},
				}
			},
			wantSub: "function table",
		},
		{
			name: "functable names unknown function",
			mutate: func(p *Program) {
				p.FuncTable = []string{"ghost"}
			},
			wantSub: "functable",
		},
		{
			name: "bad load width",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{
					{Op: OpLoad, Dst: 1, A: 0, Size: 3},
					{Op: OpRet, A: 0},
				}
			},
			wantSub: "width",
		},
		{
			name: "bad binop",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{
					{Op: OpBin, Dst: 1, Bin: 99},
					{Op: OpRet, A: 0},
				}
			},
			wantSub: "binary operator",
		},
		{
			name: "bad cmpop",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{
					{Op: OpCmpImm, Dst: 1, Cmp: 99},
					{Op: OpRet, A: 0},
				}
			},
			wantSub: "comparison operator",
		},
		{
			name: "syscall arity",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{
					{Op: OpSyscall, Sys: SysRead, Args: []Reg{1}},
					{Op: OpRet, A: 0},
				}
			},
			wantSub: "syscall read",
		},
		{
			name: "unknown syscall",
			mutate: func(p *Program) {
				p.Funcs[0].Blocks[0].Insts = []Inst{
					{Op: OpSyscall, Sys: 99},
					{Op: OpRet, A: 0},
				}
			},
			wantSub: "unknown syscall",
		},
		{
			name: "negative param count",
			mutate: func(p *Program) {
				p.Funcs[0].NParams = -1
			},
			wantSub: "parameter count",
		},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := retProg()
			tt.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("Validate() = %q, want substring %q", err, tt.wantSub)
			}
		})
	}
}

func TestValidateAllowsEmptyFuncTableSlot(t *testing.T) {
	p := retProg()
	p.FuncTable = []string{"", "main"}
	p.Funcs[0].Blocks[0].Insts = []Inst{
		{Op: OpCallInd, Dst: 1, A: 0},
		{Op: OpRet, A: 0},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil (empty slots are legal)", err)
	}
}

func TestValidateErrorSentinels(t *testing.T) {
	p := retProg()
	p.Entry = "missing"
	if err := p.Validate(); !errors.Is(err, ErrNoEntry) {
		t.Errorf("Validate() = %v, want ErrNoEntry", err)
	}

	p = retProg()
	p.Funcs[0].Blocks = append(p.Funcs[0].Blocks, &Block{Name: "b"})
	if err := p.Validate(); !errors.Is(err, ErrEmptyBlock) {
		t.Errorf("Validate() = %v, want ErrEmptyBlock", err)
	}

	p = retProg()
	p.Funcs[0].Blocks[0].Insts = []Inst{{Op: OpConst, Dst: 1}}
	if err := p.Validate(); !errors.Is(err, ErrNoTerminate) {
		t.Errorf("Validate() = %v, want ErrNoTerminate", err)
	}
}

func TestIsTerminator(t *testing.T) {
	tests := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: OpJmp}, true},
		{Inst{Op: OpBr}, true},
		{Inst{Op: OpRet}, true},
		{Inst{Op: OpTrap}, true},
		{Inst{Op: OpSyscall, Sys: SysExit}, true},
		{Inst{Op: OpSyscall, Sys: SysRead}, false},
		{Inst{Op: OpConst}, false},
		{Inst{Op: OpCall}, false},
		{Inst{Op: OpCallInd}, false},
		{Inst{Op: OpStore}, false},
	}
	for _, tt := range tests {
		if got := tt.in.IsTerminator(); got != tt.want {
			t.Errorf("IsTerminator(%s) = %v, want %v", tt.in.Op, got, tt.want)
		}
	}
}

func TestProgramLookups(t *testing.T) {
	p := retProg()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Func("main") == nil {
		t.Error("Func(main) = nil, want function")
	}
	if p.Func("ghost") != nil {
		t.Error("Func(ghost) != nil, want nil")
	}
	f := p.Func("main")
	if got := f.BlockIndex("entry"); got != 0 {
		t.Errorf("BlockIndex(entry) = %d, want 0", got)
	}
	if got := f.BlockIndex("nope"); got != -1 {
		t.Errorf("BlockIndex(nope) = %d, want -1", got)
	}
	if got := p.NumInsts(); got != 1 {
		t.Errorf("NumInsts() = %d, want 1", got)
	}
	names := p.FuncNames()
	if len(names) != 1 || names[0] != "main" {
		t.Errorf("FuncNames() = %v, want [main]", names)
	}
}

func TestLocString(t *testing.T) {
	l := Loc{Func: "f", Block: 2, Inst: 7}
	if got, want := l.String(), "f:2:7"; got != want {
		t.Errorf("Loc.String() = %q, want %q", got, want)
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpConst, Dst: 1, Imm: -5}, "r1 = const -5"},
		{Inst{Op: OpMov, Dst: 2, A: 1}, "r2 = mov r1"},
		{Inst{Op: OpBin, Dst: 3, Bin: Add, A: 1, B: 2}, "r3 = add r1, r2"},
		{Inst{Op: OpBinImm, Dst: 3, Bin: Shl, A: 1, Imm: 8}, "r3 = shl r1, 8"},
		{Inst{Op: OpCmp, Dst: 3, Cmp: SLt, A: 1, B: 2}, "r3 = slt r1, r2"},
		{Inst{Op: OpCmpImm, Dst: 3, Cmp: Eq, A: 1, Imm: 10}, "r3 = eq r1, 10"},
		{Inst{Op: OpLoad, Dst: 4, Size: 2, A: 5, Imm: 6}, "r4 = load2 r5+6"},
		{Inst{Op: OpStore, Size: 8, A: 5, Imm: 0, B: 4}, "store8 r5+0, r4"},
		{Inst{Op: OpJmp, Then: "exit"}, "jmp exit"},
		{Inst{Op: OpBr, A: 1, Then: "a", Else: "b"}, "br r1, a, b"},
		{Inst{Op: OpCall, Dst: 2, Callee: "f", Args: []Reg{1, 3}}, "r2 = call f(r1, r3)"},
		{Inst{Op: OpCallInd, Dst: 2, A: 1, Args: []Reg{9}}, "r2 = calli r1(r9)"},
		{Inst{Op: OpRet, A: 7}, "ret r7"},
		{Inst{Op: OpSyscall, Dst: 1, Sys: SysRead, Args: []Reg{2, 3, 4}}, "r1 = sys read(r2, r3, r4)"},
		{Inst{Op: OpTrap, Imm: 3}, "trap 3"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Inst.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	// Every named constant must have a distinct, non-placeholder name.
	seen := map[string]bool{}
	for op := OpConst; op <= OpTrap; op++ {
		s := op.String()
		if strings.Contains(s, "(") || seen[s] {
			t.Errorf("Op(%d).String() = %q: placeholder or duplicate", op, s)
		}
		seen[s] = true
	}
	seen = map[string]bool{}
	for b := Add; b <= Shr; b++ {
		s := b.String()
		if strings.Contains(s, "(") || seen[s] {
			t.Errorf("BinOp(%d).String() = %q: placeholder or duplicate", b, s)
		}
		seen[s] = true
	}
	seen = map[string]bool{}
	for c := Eq; c <= SLe; c++ {
		s := c.String()
		if strings.Contains(s, "(") || seen[s] {
			t.Errorf("CmpOp(%d).String() = %q: placeholder or duplicate", c, s)
		}
		seen[s] = true
	}
	seen = map[string]bool{}
	for sc := SysOpen; sc <= SysArgLen; sc++ {
		s := sc.String()
		if strings.Contains(s, "(") || seen[s] {
			t.Errorf("Sys(%d).String() = %q: placeholder or duplicate", sc, s)
		}
		seen[s] = true
	}
}
