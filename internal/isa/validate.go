package isa

import (
	"errors"
	"fmt"
)

// Validation errors that callers may want to match.
var (
	ErrNoEntry     = errors.New("program has no entry function")
	ErrEmptyBlock  = errors.New("empty basic block")
	ErrNoTerminate = errors.New("block does not end in a terminator")
)

// Validate checks program well-formedness and links it. A valid program has
// an existing entry function, non-empty blocks that end in exactly one
// terminator (and contain none before the end), in-range registers and
// widths, resolvable direct call targets, and a function table whose
// non-empty entries name defined functions.
func (p *Program) Validate() error {
	if err := p.Link(); err != nil {
		return err
	}
	if p.Entry == "" || p.Func(p.Entry) == nil {
		return fmt.Errorf("program %s: %w (entry=%q)", p.Name, ErrNoEntry, p.Entry)
	}
	for i, name := range p.FuncTable {
		if name == "" {
			continue // unresolvable slot, legal by design
		}
		if p.Func(name) == nil {
			return fmt.Errorf("program %s: functable[%d] names unknown function %q", p.Name, i, name)
		}
	}
	for _, f := range p.Funcs {
		if err := p.validateFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateFunc(f *Function) error {
	if f.NParams < 0 || f.NParams > NumRegs {
		return fmt.Errorf("%s.%s: parameter count %d out of range", p.Name, f.Name, f.NParams)
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s.%s: function has no blocks", p.Name, f.Name)
	}
	for _, b := range f.Blocks {
		if len(b.Insts) == 0 {
			return fmt.Errorf("%s.%s.%s: %w", p.Name, f.Name, b.Name, ErrEmptyBlock)
		}
		for i := range b.Insts {
			in := &b.Insts[i]
			last := i == len(b.Insts)-1
			if in.IsTerminator() != last {
				if last {
					return fmt.Errorf("%s.%s.%s: %w", p.Name, f.Name, b.Name, ErrNoTerminate)
				}
				return fmt.Errorf("%s.%s.%s: terminator %s in the middle of a block", p.Name, f.Name, b.Name, in.Op)
			}
			if err := p.validateInst(f, in); err != nil {
				return fmt.Errorf("%s.%s.%s[%d]: %w", p.Name, f.Name, b.Name, i, err)
			}
		}
	}
	return nil
}

func (p *Program) validateInst(f *Function, in *Inst) error {
	switch in.Op {
	case OpConst, OpMov, OpBin, OpBinImm, OpCmp, OpCmpImm, OpLoad:
		// dst-producing; nothing extra beyond operator checks below.
	case OpStore, OpJmp, OpBr, OpRet, OpTrap:
	case OpCall:
		callee := p.Func(in.Callee)
		if callee == nil {
			return fmt.Errorf("call to unknown function %q", in.Callee)
		}
		if len(in.Args) != callee.NParams {
			return fmt.Errorf("call %s: got %d args, want %d", in.Callee, len(in.Args), callee.NParams)
		}
	case OpCallInd:
		if len(p.FuncTable) == 0 {
			return errors.New("indirect call in a program with an empty function table")
		}
		for _, name := range p.FuncTable {
			if name == "" {
				continue
			}
			if got, want := len(in.Args), p.Func(name).NParams; got != want {
				return fmt.Errorf("indirect call: %d args but functable entry %q takes %d", got, name, want)
			}
		}
	case OpSyscall:
		if err := validateSyscall(in); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}

	switch in.Op {
	case OpBin, OpBinImm:
		if in.Bin < Add || in.Bin > Shr {
			return fmt.Errorf("invalid binary operator %d", in.Bin)
		}
	case OpCmp, OpCmpImm:
		if in.Cmp < Eq || in.Cmp > SLe {
			return fmt.Errorf("invalid comparison operator %d", in.Cmp)
		}
	case OpLoad, OpStore:
		switch in.Size {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("invalid access width %d", in.Size)
		}
	}
	return nil
}

var sysArity = map[Sys]int{
	SysOpen:    0,
	SysRead:    3,
	SysSeek:    2,
	SysTell:    1,
	SysSize:    1,
	SysMMap:    1,
	SysAlloc:   1,
	SysFree:    1,
	SysWrite:   2,
	SysExit:    1,
	SysArgRead: 2,
	SysArgLen:  0,
}

func validateSyscall(in *Inst) error {
	want, ok := sysArity[in.Sys]
	if !ok {
		return fmt.Errorf("unknown syscall %d", in.Sys)
	}
	if len(in.Args) != want {
		return fmt.Errorf("syscall %s: got %d args, want %d", in.Sys, len(in.Args), want)
	}
	return nil
}
