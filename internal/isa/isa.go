// Package isa defines MIR, the miniature instruction set used throughout the
// OCTOPOCS reproduction as the stand-in for native binaries.
//
// MIR is a word-oriented (64-bit) register machine. A program is a set of
// named functions; a function is a list of named basic blocks; a basic block
// is a list of instructions terminated by exactly one control-transfer
// instruction (Jmp, Br, Ret, Trap, or an exiting Syscall). Every function
// owns a private register file of NumRegs registers; arguments arrive in
// r0..r(n-1) and values are returned through Ret.
//
// The set is deliberately small but expressive enough to write realistic
// file-format parsers: loads and stores of 1/2/4/8 bytes, wrapping two's
// complement arithmetic (so integer-overflow bugs behave as they do in C),
// direct and indirect calls (the latter through a program-level function
// table, which is what makes the static-vs-dynamic CFG distinction from the
// paper meaningful), and a small syscall surface for file I/O and memory
// management. Every phase P1–P4 consumes programs in this representation.
//
// Concurrency: a Program and everything it contains are immutable once
// built (builders hand over ownership), so one Program may back concurrent
// taint runs, VM executions, and parallel symbolic frontier workers.
package isa

import "fmt"

// Reg names one of the NumRegs per-frame registers.
type Reg uint8

// NumRegs is the size of each function's register file. It is generous so
// that the builder in package asm can bump-allocate temporaries without a
// register allocator.
const NumRegs = 224

// Word is the machine word. All registers hold one Word; sub-word loads are
// zero-extended.
type Word = uint64

// Op enumerates instruction opcodes.
type Op uint8

// Instruction opcodes.
const (
	OpConst   Op = iota + 1 // dst = Imm
	OpMov                   // dst = A
	OpBin                   // dst = A <Bin> B
	OpBinImm                // dst = A <Bin> Imm
	OpCmp                   // dst = (A <Cmp> B) ? 1 : 0
	OpCmpImm                // dst = (A <Cmp> Imm) ? 1 : 0
	OpLoad                  // dst = mem[A + Imm] (Size bytes, little endian)
	OpStore                 // mem[A + Imm] = B (Size bytes, little endian)
	OpJmp                   // goto Then
	OpBr                    // if A != 0 goto Then else goto Else
	OpCall                  // dst = Callee(Args...)
	OpCallInd               // dst = functable[A](Args...)
	OpRet                   // return A
	OpSyscall               // dst = syscall Sys(Args...)
	OpTrap                  // abort with code Imm
)

// BinOp enumerates binary arithmetic and bitwise operators. Arithmetic wraps
// modulo 2^64 like C unsigned arithmetic; Div and Mod trap at runtime when
// the divisor is zero.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota + 1
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
)

// CmpOp enumerates comparison operators. Lt/Le/Gt/Ge compare unsigned;
// SLt/SLe compare as two's complement signed values.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota + 1
	Ne
	Lt
	Le
	Gt
	Ge
	SLt
	SLe
)

// Sys enumerates syscalls. The machine exposes a single abstract input file;
// SysOpen returns a descriptor for it. This mirrors how the paper's targets
// consume exactly one attacker-controlled file.
type Sys uint8

// Syscall numbers. SysArgRead/SysArgLen deliver the same attacker input
// through the argument-string channel instead of the file channel, for
// binaries whose PoCs are malformed strings rather than files (the § VII
// extension); a program should consume one channel or the other.
const (
	SysOpen    Sys = iota + 1 // () -> fd of the input file
	SysRead                   // (fd, buf, n) -> bytes read; advances position
	SysSeek                   // (fd, off) -> absolute seek; returns new position
	SysTell                   // (fd) -> current file position indicator
	SysSize                   // (fd) -> file size in bytes
	SysMMap                   // (fd) -> base address of a read-only file mapping
	SysAlloc                  // (n) -> base address of a fresh region
	SysFree                   // (addr) -> 0; frees a region allocated by SysAlloc
	SysWrite                  // (buf, n) -> n; appends to the VM output sink
	SysExit                   // (code) -> does not return
	SysArgRead                // (buf, n) -> bytes read from the argument string
	SysArgLen                 // () -> argument string length
)

// Inst is a single MIR instruction. Which fields are meaningful depends on
// Op; Validate enforces the shape.
type Inst struct {
	Op   Op
	Dst  Reg
	A    Reg
	B    Reg
	Imm  int64
	Bin  BinOp
	Cmp  CmpOp
	Size uint8 // load/store width: 1, 2, 4 or 8
	Sys  Sys
	// Callee is the target function name for OpCall.
	Callee string
	// Args are argument registers for OpCall, OpCallInd and OpSyscall.
	Args []Reg
	// Then and Else are block names for OpJmp (Then only) and OpBr.
	Then string
	Else string

	// Resolved control-flow targets, filled in by Program.Link.
	ThenIdx int
	ElseIdx int
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Inst) IsTerminator() bool {
	switch in.Op {
	case OpJmp, OpBr, OpRet, OpTrap:
		return true
	case OpSyscall:
		return in.Sys == SysExit
	default:
		return false
	}
}

// Block is a basic block: a straight-line instruction sequence ending in a
// single terminator.
type Block struct {
	Name  string
	Insts []Inst
}

// Terminator returns the block's final instruction. It panics on an empty
// block; Validate rejects those first.
func (b *Block) Terminator() *Inst {
	return &b.Insts[len(b.Insts)-1]
}

// Function is a named function: a parameter count and a list of basic
// blocks. Blocks[0] is the entry block.
type Function struct {
	Name    string
	NParams int
	Blocks  []*Block

	blockIdx map[string]int
}

// BlockIndex returns the index of the named block, or -1 if absent.
func (f *Function) BlockIndex(name string) int {
	if i, ok := f.blockIdx[name]; ok {
		return i
	}
	return -1
}

// Program is a linked set of functions plus the indirect-call function
// table. Entry names the function where execution starts.
type Program struct {
	Name  string
	Entry string
	Funcs []*Function
	// FuncTable lists function names reachable through OpCallInd. An
	// indirect call with index i dispatches to FuncTable[i]. Entries may
	// be empty strings to model slots whose target the toolchain cannot
	// resolve statically (the angr-failure analog).
	FuncTable []string

	funcIdx map[string]int
}

// Func returns the named function, or nil if absent.
func (p *Program) Func(name string) *Function {
	if i, ok := p.funcIdx[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// FuncNames returns the names of all functions in definition order.
func (p *Program) FuncNames() []string {
	names := make([]string, len(p.Funcs))
	for i, f := range p.Funcs {
		names[i] = f.Name
	}
	return names
}

// NumInsts returns the total instruction count across all functions.
func (p *Program) NumInsts() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Insts)
		}
	}
	return n
}

// Link resolves block and function name references to indices and builds
// the lookup maps. It must be called (directly or via Validate) before the
// program is executed. Link is idempotent.
func (p *Program) Link() error {
	p.funcIdx = make(map[string]int, len(p.Funcs))
	for i, f := range p.Funcs {
		if _, dup := p.funcIdx[f.Name]; dup {
			return fmt.Errorf("program %s: duplicate function %q", p.Name, f.Name)
		}
		p.funcIdx[f.Name] = i
	}
	for _, f := range p.Funcs {
		f.blockIdx = make(map[string]int, len(f.Blocks))
		for i, b := range f.Blocks {
			if _, dup := f.blockIdx[b.Name]; dup {
				return fmt.Errorf("%s.%s: duplicate block %q", p.Name, f.Name, b.Name)
			}
			f.blockIdx[b.Name] = i
		}
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				switch in.Op {
				case OpJmp:
					idx, ok := f.blockIdx[in.Then]
					if !ok {
						return fmt.Errorf("%s.%s.%s: jmp to unknown block %q", p.Name, f.Name, b.Name, in.Then)
					}
					in.ThenIdx = idx
				case OpBr:
					ti, ok := f.blockIdx[in.Then]
					if !ok {
						return fmt.Errorf("%s.%s.%s: br to unknown block %q", p.Name, f.Name, b.Name, in.Then)
					}
					ei, ok := f.blockIdx[in.Else]
					if !ok {
						return fmt.Errorf("%s.%s.%s: br to unknown block %q", p.Name, f.Name, b.Name, in.Else)
					}
					in.ThenIdx, in.ElseIdx = ti, ei
				}
			}
		}
	}
	return nil
}

// Loc identifies a program point: a function, block index and instruction
// index within the block.
type Loc struct {
	Func  string
	Block int
	Inst  int
}

// String renders the location as func:block:inst.
func (l Loc) String() string {
	return fmt.Sprintf("%s:%d:%d", l.Func, l.Block, l.Inst)
}
