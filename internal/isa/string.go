package isa

import (
	"fmt"
	"strings"
)

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	switch o {
	case OpConst:
		return "const"
	case OpMov:
		return "mov"
	case OpBin:
		return "bin"
	case OpBinImm:
		return "bini"
	case OpCmp:
		return "cmp"
	case OpCmpImm:
		return "cmpi"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpJmp:
		return "jmp"
	case OpBr:
		return "br"
	case OpCall:
		return "call"
	case OpCallInd:
		return "calli"
	case OpRet:
		return "ret"
	case OpSyscall:
		return "sys"
	case OpTrap:
		return "trap"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// String returns the mnemonic for the binary operator.
func (b BinOp) String() string {
	switch b {
	case Add:
		return "add"
	case Sub:
		return "sub"
	case Mul:
		return "mul"
	case Div:
		return "div"
	case Mod:
		return "mod"
	case And:
		return "and"
	case Or:
		return "or"
	case Xor:
		return "xor"
	case Shl:
		return "shl"
	case Shr:
		return "shr"
	default:
		return fmt.Sprintf("bin(%d)", uint8(b))
	}
}

// String returns the mnemonic for the comparison operator.
func (c CmpOp) String() string {
	switch c {
	case Eq:
		return "eq"
	case Ne:
		return "ne"
	case Lt:
		return "lt"
	case Le:
		return "le"
	case Gt:
		return "gt"
	case Ge:
		return "ge"
	case SLt:
		return "slt"
	case SLe:
		return "sle"
	default:
		return fmt.Sprintf("cmp(%d)", uint8(c))
	}
}

// String returns the syscall name.
func (s Sys) String() string {
	switch s {
	case SysOpen:
		return "open"
	case SysRead:
		return "read"
	case SysSeek:
		return "seek"
	case SysTell:
		return "tell"
	case SysSize:
		return "size"
	case SysMMap:
		return "mmap"
	case SysAlloc:
		return "alloc"
	case SysFree:
		return "free"
	case SysWrite:
		return "write"
	case SysExit:
		return "exit"
	case SysArgRead:
		return "argread"
	case SysArgLen:
		return "arglen"
	default:
		return fmt.Sprintf("sys(%d)", uint8(s))
	}
}

func regList(rs []Reg) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("r%d", r)
	}
	return strings.Join(parts, ", ")
}

// String renders the instruction in the assembler's textual syntax.
func (in Inst) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("r%d = mov r%d", in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Bin, in.A, in.B)
	case OpBinImm:
		return fmt.Sprintf("r%d = %s r%d, %d", in.Dst, in.Bin, in.A, in.Imm)
	case OpCmp:
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Cmp, in.A, in.B)
	case OpCmpImm:
		return fmt.Sprintf("r%d = %s r%d, %d", in.Dst, in.Cmp, in.A, in.Imm)
	case OpLoad:
		return fmt.Sprintf("r%d = load%d r%d+%d", in.Dst, in.Size, in.A, in.Imm)
	case OpStore:
		return fmt.Sprintf("store%d r%d+%d, r%d", in.Size, in.A, in.Imm, in.B)
	case OpJmp:
		return fmt.Sprintf("jmp %s", in.Then)
	case OpBr:
		return fmt.Sprintf("br r%d, %s, %s", in.A, in.Then, in.Else)
	case OpCall:
		return fmt.Sprintf("r%d = call %s(%s)", in.Dst, in.Callee, regList(in.Args))
	case OpCallInd:
		return fmt.Sprintf("r%d = calli r%d(%s)", in.Dst, in.A, regList(in.Args))
	case OpRet:
		return fmt.Sprintf("ret r%d", in.A)
	case OpSyscall:
		return fmt.Sprintf("r%d = sys %s(%s)", in.Dst, in.Sys, regList(in.Args))
	case OpTrap:
		return fmt.Sprintf("trap %d", in.Imm)
	default:
		return fmt.Sprintf("?op(%d)", uint8(in.Op))
	}
}
