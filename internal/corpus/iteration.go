package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/isa"
)

// IterationPair builds a pair whose T calls the shared decoder only after
// accumulating at least `need` records in a data-dependent loop, so
// reaching ℓ requires at least `need` guided loop iterations. It is the
// corpus form of the paper's § VII loop-bound discussion: verification
// succeeds only when θ admits that many iterations.
func IterationPair(need int64) *core.Pair {
	addDecoder := func(b *asm.Builder) {
		g := b.Function("decode", 1)
		fd := g.Param(0)
		buf := g.Sys(isa.SysAlloc, g.Const(8))
		lb := g.Sys(isa.SysAlloc, g.Const(1))
		g.Sys(isa.SysRead, fd, lb, g.Const(1))
		g.Sys(isa.SysRead, fd, buf, g.Load(1, lb, 0)) // overflow for len > 8
		g.RetI(0)
	}

	// The record loop reads one-byte records until the 0xFF terminator
	// and counts them; the binary demands `minRecords` before decoding.
	build := func(name string, minRecords int64) *asm.Builder {
		b := asm.NewBuilder(name)
		addDecoder(b)
		f := b.Function("main", 0)
		fd := f.Sys(isa.SysOpen)
		count := f.VarI(0)
		going := f.VarI(1)
		buf := f.Sys(isa.SysAlloc, f.Const(1))
		f.While(func() isa.Reg { return going }, func() {
			n := f.Sys(isa.SysRead, fd, buf, f.Const(1))
			f.If(f.EqI(n, 0), func() { f.Exit(2) })
			v := f.Load(1, buf, 0)
			f.IfElse(f.EqI(v, 0xFF),
				func() { f.AssignI(going, 0) },
				func() { f.Assign(count, f.AddI(count, 1)) })
		})
		f.If(f.LtI(count, minRecords), func() { f.Exit(1) })
		f.Call("decode", fd)
		f.Exit(0)
		b.Entry("main")
		return b
	}

	// S needs a single record; its PoC carries one.
	poc := []byte{0x01, 0xFF, 32}
	for i := 0; i < 32; i++ {
		poc = append(poc, byte(i))
	}
	return &core.Pair{
		Name:      "iteration-pair",
		S:         build("record-tool", 1).MustBuild(),
		T:         build("record-clone", need).MustBuild(),
		PoC:       poc,
		Lib:       map[string]bool{"decode": true},
		InputSize: 128,
	}
}
