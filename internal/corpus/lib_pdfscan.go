package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/fileformat"
	"octopocs/internal/isa"
)

// addPdfscan emits the shared stream scanner of the pdftops pairs (the
// CVE-2017-18267 analog, CWE-835). A segment whose tag is 0x7F with zero
// length rewinds the position it just consumed, so the scan loop never
// advances — an infinite loop, observed as a hang.
func addPdfscan(b *asm.Builder) {
	g := b.Function("pdfscan_scan", 1) // (fd)
	fd := g.Param(0)
	buf := g.Sys(isa.SysAlloc, g.Const(2))
	done := g.VarI(0)
	g.While(func() isa.Reg { return g.EqI(done, 0) }, func() {
		n := g.Sys(isa.SysRead, fd, buf, g.Const(2))
		g.If(g.LtI(n, 2), func() { g.AssignI(done, 1) })
		g.If(g.EqI(done, 0), func() {
			tag := g.Load(1, buf, 0)
			length := g.Load(1, buf, 1)
			g.IfElse(g.EqI(tag, 0), func() {
				g.AssignI(done, 1)
			}, func() {
				stuck := g.Bin(isa.And, g.EqI(tag, 0x7F), g.EqI(length, 0))
				g.IfElse(stuck, func() {
					// The bug: rewind the two bytes just read.
					pos := g.Sys(isa.SysTell, fd)
					g.Sys(isa.SysSeek, fd, g.SubI(pos, 2))
				}, func() {
					skipBytes(g, fd, length)
				})
			})
		})
	})
	g.Ret(g.Const(0))
}

var pdfscanLib = map[string]bool{"pdfscan_scan": true}

// pdfscanPages emits the per-page loop: a u8 page count, then one
// pdfscan_scan call per page, so the scanner is entered once per page.
func pdfscanPages(f *asm.Fn, fd isa.Reg) {
	pages := readU8(f, fd)
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, pages) }, func() {
		f.Call("pdfscan_scan", fd)
		f.Assign(i, f.AddI(i, 1))
	})
}

// pdfscanS builds poppler's pdftops.
func pdfscanS() *asm.Builder {
	b := asm.NewBuilder("pdftops-poppler-0.59")
	addPdfscan(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	readU8(f, fd) // version, tolerated
	pdfscanPages(f, fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// pdfscanT builds Xpdf's pdftops: same format, but the version byte must
// be an ASCII digit.
func pdfscanT() *asm.Builder {
	b := asm.NewBuilder("pdftops-xpdf-4.02")
	addPdfscan(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	version := readU8(f, fd)
	f.If(f.LtI(version, '0'), func() { f.Exit(1) })
	f.If(f.GtI(version, '9'), func() { f.Exit(1) })
	pdfscanPages(f, fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// pdfscanPoC carries two pages: a well-formed page, then a page with the
// stuck segment (tag 0x7F, length 0) that hangs the scanner.
func pdfscanPoC() []byte {
	doc := &fileformat.PDFPages{
		Version: '4',
		Pages: []fileformat.PDFPage{
			{Segments: []fileformat.PDFSegment{{Tag: 0x11, Data: []byte{0xDD, 0xDE}}}},
			{
				Segments: []fileformat.PDFSegment{
					{Tag: 0x10, Data: []byte{0xEE}},
					fileformat.StuckSegment,
				},
				Unterminated: true, // the scan never escapes the stuck segment
			},
		},
	}
	return doc.Encode()
}

// pdfscanXpdf is Table II Idx-3: pdftops (Poppler) → pdftops (Xpdf),
// CVE-2017-18267.
func pdfscanXpdf() *PairSpec {
	pair := buildPair("pdftops-poppler->pdftops-xpdf",
		pdfscanS(), pdfscanT(), pdfscanPoC(), pdfscanLib, nil)
	// Hang-class vulnerability: a modest instruction budget keeps the
	// stuck-loop detection fast in every phase.
	pair.MaxSteps = 60_000
	return &PairSpec{
		Idx:        3,
		SName:      "pdftops (Poppler)",
		SVersion:   "0.59",
		TName:      "pdftops (Xpdf)",
		TVersion:   "4.02",
		CVE:        "CVE-2017-18267",
		CWE:        "CWE-835",
		ExpectType: core.TypeI,
		ExpectPoC:  true,
		Pair:       pair,
	}
}
