package corpus_test

import (
	"bytes"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/vm"
)

// TestStringPoCReform exercises the § VII extension: a malformed-string
// PoC delivered through the argument channel is reformed for a clone with
// a different option prefix.
func TestStringPoCReform(t *testing.T) {
	pair := corpus.StringPoCPair()

	// Ground truth: the string PoC crashes S inside ℓ and does nothing
	// to T.
	sOut := vm.New(pair.S, vm.Config{Input: pair.PoC}).Run()
	if !sOut.Crashed() || !sOut.CrashedIn(pair.Lib) {
		t.Fatalf("S outcome = %v, want crash in ℓ", sOut)
	}
	tOut := vm.New(pair.T, vm.Config{Input: pair.PoC}).Run()
	if tOut.Crashed() {
		t.Fatalf("original string PoC should not crash the clone: %v", tOut)
	}

	rep, err := core.New(core.Config{}).Verify(pair)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != core.VerdictTriggered || rep.Type != core.TypeII {
		t.Fatalf("report = %v, want triggered Type-II", rep)
	}
	if !bytes.HasPrefix(rep.PoCPrime, []byte("--D")) {
		t.Errorf("reformed prefix = %q, want --D", rep.PoCPrime[:4])
	}
	out := vm.New(pair.T, vm.Config{Input: rep.PoCPrime}).Run()
	if !out.Crashed() || !out.CrashedIn(pair.Lib) {
		t.Fatalf("poc' outcome = %v, want crash in ℓ", out)
	}
}
