// Package corpus defines the 15 synthetic S/T vulnerable software pairs
// that mirror Table II of the OCTOPOCS paper row by row. Each pair couples
// two MIR binaries sharing a vulnerable library ℓ, an input file format per
// binary, and a PoC that crashes S — reproducing the propagation mechanism
// of its real-world counterpart (same-format reuse, format bridging,
// hard-coded parameters, inserted patches, or unresolvable dispatch).
//
// The binaries are deliberately written like small C programs: magic-number
// checks, length-prefixed records, skip loops, dispatch tables. Every
// vulnerability manifests through ordinary memory-safety violations (or a
// hang for the CWE-835 case), never through artificial "crash here"
// markers in ℓ. The pairs are the end-to-end inputs of the P1–P4 pipeline;
// bench.go additionally defines frontier-shaped workloads for the P2
// parallel-exploration benchmark.
//
// Concurrency: constructors rebuild programs on every call and return
// exclusively owned values; nothing in this package holds shared mutable
// state, so callers may verify different PairSpecs concurrently.
package corpus

import (
	"fmt"

	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/isa"
)

// PairSpec couples a verification task with its Table II metadata.
type PairSpec struct {
	// Idx is the Table II row number (1-15).
	Idx int
	// SName/SVersion and TName/TVersion give the software identities of
	// the real-world pair this row mirrors.
	SName    string
	SVersion string
	TName    string
	TVersion string
	// CVE is the vulnerability identifier of the real pair.
	CVE string
	// CWE is the weakness class ("CWE-119", "CWE-190", "CWE-835", or
	// "No-CWE" following the paper's table).
	CWE string
	// ExpectType is the verdict class the paper reports for this row.
	ExpectType core.ResultType
	// ExpectPoC reports whether the paper's poc' column is O for this row.
	ExpectPoC bool
	// ExpectReason is the symex failure reason expected with the hybrid
	// fallback off; only set for the hybrid pairs (Idx 18-21), whose
	// ExpectType/ExpectPoC describe that same fallback-off run.
	ExpectReason core.Reason
	// ExpectRescue reports whether the hybrid fallback is expected to
	// upgrade this pair to triggered-by-fuzzing.
	ExpectRescue bool
	// Pair is the verification task itself.
	Pair *core.Pair
}

// Label renders "S->T" for reports.
func (s *PairSpec) Label() string {
	return fmt.Sprintf("%s->%s", s.SName, s.TName)
}

// All returns the 15 pairs in Table II order. Programs are rebuilt on each
// call, so callers may mutate them freely.
func All() []*PairSpec {
	return []*PairSpec{
		jpegcLibgdx(),       // 1
		jpegcZxing(),        // 2
		pdfscanXpdf(),       // 3
		avdecFfmpeg(),       // 4
		tjdecMozjpeg(),      // 5
		pdfboxPdfinfo(),     // 6
		j2kOpjDump(),        // 7
		j2kMupdf(),          // 8
		gifreadArtifical(),  // 9
		tiffOpjCompress(),   // 10
		tiffLibsdl(),        // 11
		tiffLibgdiplus(),    // 12
		j2kOpjDumpPatched(), // 13
		pdfboxXpdfPatched(), // 14
		pdfnumPoppler(),     // 15
	}
}

// ByIdx returns the pair with the given row number — a Table II row (1-15),
// a static-prune pair (16-17), or a hybrid-fallback pair (18-21) — or nil.
func ByIdx(idx int) *PairSpec {
	for _, s := range All() {
		if s != nil && s.Idx == idx {
			return s
		}
	}
	for _, s := range StaticSet() {
		if s != nil && s.Idx == idx {
			return s
		}
	}
	for _, s := range HybridSet() {
		if s != nil && s.Idx == idx {
			return s
		}
	}
	return nil
}

// --- shared builder helpers -------------------------------------------------

// expectMagic emits code that reads len(magic) bytes from fd and exits(1)
// unless they equal magic.
func expectMagic(f *asm.Fn, fd isa.Reg, magic string) {
	buf := f.Sys(isa.SysAlloc, f.Const(int64(len(magic))))
	f.Sys(isa.SysRead, fd, buf, f.Const(int64(len(magic))))
	for i := 0; i < len(magic); i++ {
		f.If(f.NeI(f.Load(1, buf, int64(i)), int64(magic[i])), func() {
			f.Exit(1)
		})
	}
}

// readU8 emits a single-byte read and returns the value register. At EOF
// the buffer byte keeps its previous content; corpus parsers that care
// check the returned count themselves.
func readU8(f *asm.Fn, fd isa.Reg) isa.Reg {
	buf := f.Sys(isa.SysAlloc, f.Const(1))
	f.Sys(isa.SysRead, fd, buf, f.Const(1))
	return f.Load(1, buf, 0)
}

// readU16LE reads two bytes little-endian.
func readU16LE(f *asm.Fn, fd isa.Reg) isa.Reg {
	buf := f.Sys(isa.SysAlloc, f.Const(2))
	f.Sys(isa.SysRead, fd, buf, f.Const(2))
	return f.Load(2, buf, 0)
}

// skipBytes advances the file position by n (clamped by the VM).
func skipBytes(f *asm.Fn, fd, n isa.Reg) {
	pos := f.Sys(isa.SysTell, fd)
	f.Sys(isa.SysSeek, fd, f.Add(pos, n))
}

// flagPreamble emits k one-byte option-flag reads, each selecting between
// two continuing paths. For concrete execution this is cheap linear code;
// for undirected symbolic exploration it is a 2^k state blowup — the
// ingredient that makes the naive baseline of Table IV exhaust memory on
// the larger binaries.
func flagPreamble(f *asm.Fn, fd isa.Reg, k int) {
	mode := f.VarI(0)
	for i := 0; i < k; i++ {
		flag := readU8(f, fd)
		f.IfElse(f.AndI(flag, 1),
			func() { f.Assign(mode, f.AddI(mode, 2)) },
			func() { f.Assign(mode, f.AddI(mode, 1)) })
	}
}

// buildPair assembles a core.Pair from two program builders.
func buildPair(name string, sb, tb *asm.Builder, poc []byte, lib map[string]bool, ctxArgs []int) *core.Pair {
	return &core.Pair{
		Name:    name,
		S:       sb.MustBuild(),
		T:       tb.MustBuild(),
		PoC:     poc,
		Lib:     lib,
		CtxArgs: ctxArgs,
	}
}
