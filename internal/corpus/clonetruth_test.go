package corpus

import (
	"reflect"
	"testing"
)

// TestCloneTruthCoversAllRows pins the ground-truth table to the 17 corpus
// rows: complete, in order, with a family and a non-empty ℓ for every row.
func TestCloneTruthCoversAllRows(t *testing.T) {
	rows := CloneTruth()
	if len(rows) != 17 {
		t.Fatalf("CloneTruth: got %d rows, want 17", len(rows))
	}
	for i, r := range rows {
		if r.Idx != i+1 {
			t.Errorf("row %d: Idx = %d, want %d", i, r.Idx, i+1)
		}
		if r.Family == "" {
			t.Errorf("row %d: empty family", r.Idx)
		}
		if len(r.Lib) == 0 {
			t.Errorf("row %d: empty Lib", r.Idx)
		}
		for j := 1; j < len(r.Lib); j++ {
			if r.Lib[j-1] >= r.Lib[j] {
				t.Errorf("row %d: Lib not sorted: %v", r.Idx, r.Lib)
			}
		}
	}
}

// TestCloneTruthMatchesPairSpecs checks the table agrees with the
// authoritative PairSpec data: Lib is exactly the pair's ℓ key set and
// ExpectTriggered mirrors ExpectPoC.
func TestCloneTruthMatchesPairSpecs(t *testing.T) {
	for _, r := range CloneTruth() {
		spec := ByIdx(r.Idx)
		if spec == nil {
			t.Fatalf("row %d: no PairSpec", r.Idx)
		}
		if r.Source != spec.SName || r.Target != spec.TName {
			t.Errorf("row %d: names %s->%s, spec %s->%s", r.Idx, r.Source, r.Target, spec.SName, spec.TName)
		}
		if len(r.Lib) != len(spec.Pair.Lib) {
			t.Errorf("row %d: Lib %v does not cover pair lib %v", r.Idx, r.Lib, spec.Pair.Lib)
		}
		for _, fn := range r.Lib {
			if !spec.Pair.Lib[fn] {
				t.Errorf("row %d: Lib contains %q, not in pair lib", r.Idx, fn)
			}
		}
		if r.ExpectTriggered != spec.ExpectPoC {
			t.Errorf("row %d: ExpectTriggered = %v, spec ExpectPoC = %v", r.Idx, r.ExpectTriggered, spec.ExpectPoC)
		}
	}
}

// TestCloneTruthFamilies pins the family partition, including the
// Type-variant members 13/14 and the static-prune rows 16/17.
func TestCloneTruthFamilies(t *testing.T) {
	want := map[string][]int{
		"jpegc":   {1, 2},
		"pdfscan": {3},
		"avdec":   {4},
		"tjdec":   {5},
		"pdfbox":  {6, 14},
		"j2k":     {7, 8, 13},
		"gifread": {9},
		"tiff":    {10, 11, 12},
		"pdfnum":  {15},
		"rlepack": {16, 17},
	}
	seen := 0
	for fam, idxs := range want {
		if got := FamilyTargets(fam); !reflect.DeepEqual(got, idxs) {
			t.Errorf("FamilyTargets(%q) = %v, want %v", fam, got, idxs)
		}
		for _, idx := range idxs {
			if CloneFamilyOf(idx) != fam {
				t.Errorf("CloneFamilyOf(%d) = %q, want %q", idx, CloneFamilyOf(idx), fam)
			}
			seen++
		}
	}
	if seen != 17 {
		t.Fatalf("family partition covers %d rows, want 17", seen)
	}
	// Same-family rows must actually share ℓ function names, otherwise the
	// family is not a clone family at all.
	byIdx := map[int]CloneTruthRow{}
	for _, r := range CloneTruth() {
		byIdx[r.Idx] = r
	}
	for fam, idxs := range want {
		for _, a := range idxs {
			for _, b := range idxs {
				if overlap(byIdx[a].Lib, byIdx[b].Lib) == 0 {
					t.Errorf("family %q: rows %d and %d share no ℓ functions", fam, a, b)
				}
			}
		}
	}
}

// TestCloneTruthVariants pins which rows are Type-variant clones.
func TestCloneTruthVariants(t *testing.T) {
	want := map[int]bool{13: true, 14: true, 16: true, 17: true}
	for _, r := range CloneTruth() {
		if r.Variant != want[r.Idx] {
			t.Errorf("row %d: Variant = %v, want %v", r.Idx, r.Variant, want[r.Idx])
		}
	}
	if got := CloneTruthByIdx(16); got == nil || !got.Variant {
		t.Errorf("CloneTruthByIdx(16) = %+v, want variant row", got)
	}
	if CloneTruthByIdx(99) != nil {
		t.Error("CloneTruthByIdx(99) should be nil")
	}
}

func overlap(a, b []string) int {
	set := map[string]bool{}
	for _, s := range a {
		set[s] = true
	}
	n := 0
	for _, s := range b {
		if set[s] {
			n++
		}
	}
	return n
}
