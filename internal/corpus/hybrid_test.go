package corpus_test

import (
	"bytes"
	"sync"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/hybrid"
	"octopocs/internal/vm"
)

// TestHybridSetDefined checks the hybrid pairs are complete, carry their
// ground truth, and resolve through ByIdx without disturbing the Table II
// or static sets.
func TestHybridSetDefined(t *testing.T) {
	specs := corpus.HybridSet()
	if len(specs) != 4 {
		t.Fatalf("hybrid set has %d pairs, want 4", len(specs))
	}
	for i, s := range specs {
		if s.Idx != 18+i {
			t.Errorf("hybrid pair %d has Idx %d, want %d", i, s.Idx, 18+i)
		}
		if s.Pair == nil || s.Pair.S == nil || s.Pair.T == nil || len(s.Pair.PoC) == 0 {
			t.Errorf("pair %d (%s) incomplete", s.Idx, s.Label())
		}
		if s.ExpectReason != core.ReasonLoopDead && s.ExpectReason != core.ReasonBudget {
			t.Errorf("pair %d (%s) has non-hybrid ExpectReason %q", s.Idx, s.Label(), s.ExpectReason)
		}
		if !s.ExpectRescue {
			t.Errorf("pair %d (%s) is not expected to be rescued", s.Idx, s.Label())
		}
		if got := corpus.ByIdx(s.Idx); got == nil || got.Idx != s.Idx {
			t.Errorf("ByIdx(%d) = %v", s.Idx, got)
		}
	}
	// The loop-dead and budget mechanisms must both be represented.
	reasons := map[core.Reason]int{}
	for _, s := range specs {
		reasons[s.ExpectReason]++
	}
	if reasons[core.ReasonLoopDead] == 0 || reasons[core.ReasonBudget] == 0 {
		t.Errorf("hybrid set does not cover both eligible reasons: %v", reasons)
	}
}

// TestHybridPoCsCrashS checks the hybrid-set ground truth: every PoC
// crashes S inside ℓ, and none crashes T — so a rescue is always a genuine
// reform, never the original poc replayed.
func TestHybridPoCsCrashS(t *testing.T) {
	for _, s := range corpus.HybridSet() {
		t.Run(s.Label(), func(t *testing.T) {
			sOut := vm.New(s.Pair.S, vm.Config{Input: s.Pair.PoC}).Run()
			if !sOut.Crashed() || !sOut.CrashedIn(s.Pair.Lib) {
				t.Fatalf("S outcome = %v, want crash inside ℓ", sOut)
			}
			tOut := vm.New(s.Pair.T, vm.Config{Input: s.Pair.PoC}).Run()
			if tOut.Crashed() {
				t.Fatalf("T crashes on the original poc (%v); the pair needs no rescue", tOut)
			}
		})
	}
}

// TestHybridOffBaseline pins the fallback-off outcome of every hybrid pair:
// the expected symex failure (loop-dead or budget), no hybrid outcome on
// the report, and no poc'.
func TestHybridOffBaseline(t *testing.T) {
	pl := core.New(core.Config{})
	for _, s := range corpus.HybridSet() {
		s := s
		t.Run(s.Label(), func(t *testing.T) {
			rep, err := pl.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			t.Logf("off: %v", rep)
			if rep.Type != s.ExpectType {
				t.Errorf("type = %v, want %v", rep.Type, s.ExpectType)
			}
			if rep.Reason != s.ExpectReason {
				t.Errorf("reason = %q, want %q", rep.Reason, s.ExpectReason)
			}
			if rep.Verdict == core.VerdictTriggered || rep.Verdict == core.VerdictTriggeredByFuzzing {
				t.Errorf("verdict = %v, want a non-triggered symex outcome", rep.Verdict)
			}
			if rep.Hybrid != nil {
				t.Errorf("fallback-off report carries a hybrid outcome: %+v", rep.Hybrid)
			}
			if rep.PoCGenerated() {
				t.Errorf("fallback-off report carries a poc': %x", rep.PoCPrime)
			}
		})
	}
}

// TestHybridRescue is the tentpole end-to-end check: with the fallback on,
// every hybrid pair is upgraded to triggered-by-fuzzing with a
// replay-confirmed poc', identical for any worker count.
func TestHybridRescue(t *testing.T) {
	pl1 := core.New(core.Config{HybridFuzz: true, HybridWorkers: 1})
	pl4 := core.New(core.Config{HybridFuzz: true, HybridWorkers: 4})
	for _, s := range corpus.HybridSet() {
		s := s
		t.Run(s.Label(), func(t *testing.T) {
			rep, err := pl1.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			t.Logf("on: %v hybrid=%+v", rep, rep.Hybrid)
			if rep.Verdict != core.VerdictTriggeredByFuzzing {
				t.Fatalf("verdict = %v, want triggered-by-fuzzing", rep.Verdict)
			}
			if rep.Type != core.TypeII {
				t.Errorf("type = %v, want Type-II (no hybrid poc equals the original)", rep.Type)
			}
			if rep.Reason != s.ExpectReason {
				t.Errorf("reason = %q, want the symex provenance %q", rep.Reason, s.ExpectReason)
			}
			if rep.Hybrid == nil || !rep.Hybrid.Rescued {
				t.Fatalf("report carries no rescued hybrid outcome: %+v", rep.Hybrid)
			}
			if !rep.PoCGenerated() {
				t.Fatal("rescued report has no poc'")
			}
			// The replay gate, re-checked independently: poc' crashes T
			// inside ℓ on the concrete VM.
			out := vm.New(s.Pair.T, vm.Config{Input: rep.PoCPrime}).Run()
			if !out.Crashed() || !out.CrashedIn(s.Pair.Lib) {
				t.Fatalf("poc' replay = %v, want crash inside ℓ", out)
			}

			// Worker-count independence of the whole verification.
			rep4, err := pl4.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify (4 workers): %v", err)
			}
			if rep4.Verdict != rep.Verdict || !bytes.Equal(rep4.PoCPrime, rep.PoCPrime) {
				t.Errorf("4-worker run diverges: %v poc'=%x, want %v poc'=%x",
					rep4.Verdict, rep4.PoCPrime, rep.Verdict, rep.PoCPrime)
			}
			if rep4.Hybrid.Execs != rep.Hybrid.Execs || rep4.Hybrid.WinnerShard != rep.Hybrid.WinnerShard {
				t.Errorf("4-worker campaign diverges: %+v vs %+v", rep4.Hybrid, rep.Hybrid)
			}
		})
	}
}

// TestHybridEquivalence is the fallback's do-no-harm check, mirroring
// TestStaticPruneEquivalence: every pre-existing corpus pair — the 15
// Table II rows plus the static set — must produce the same verdict, type,
// reason, and byte-identical poc' with the fallback on, and its report
// must carry no hybrid outcome (the campaign never even ran).
func TestHybridEquivalence(t *testing.T) {
	plOff := core.New(core.Config{})
	plOn := core.New(core.Config{HybridFuzz: true})
	for _, s := range append(corpus.All(), corpus.StaticSet()...) {
		s := s
		t.Run(s.Label(), func(t *testing.T) {
			repOff, err := plOff.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify (off): %v", err)
			}
			repOn, err := plOn.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify (on): %v", err)
			}
			if repOn.Verdict != repOff.Verdict || repOn.Type != repOff.Type || repOn.Reason != repOff.Reason {
				t.Errorf("verdicts diverge: on %v, off %v", repOn, repOff)
			}
			if !bytes.Equal(repOn.PoCPrime, repOff.PoCPrime) {
				t.Errorf("poc' differs: on %x, off %x", repOn.PoCPrime, repOff.PoCPrime)
			}
			if repOn.Hybrid != nil {
				t.Errorf("fallback ran on a non-eligible pair: %+v", repOn.Hybrid)
			}
		})
	}
}

// hyMapCache is a minimal concurrency-safe core.Cache for the corruption
// test.
type hyMapCache struct {
	mu sync.Mutex
	m  map[string]any
}

func (c *hyMapCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *hyMapCache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// TestHybridCacheCorruptionRejected damages a cached campaign outcome and
// checks the replay gate discards it: the second verification recomputes
// the campaign and still reports a confirmed rescue, never the corrupted
// poc'.
func TestHybridCacheCorruptionRejected(t *testing.T) {
	s := corpus.ByIdx(18)
	cache := &hyMapCache{m: make(map[string]any)}
	pl := core.New(core.Config{HybridFuzz: true})
	pl.SetHybridCache(cache)

	rep, err := pl.Verify(s.Pair)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Verdict != core.VerdictTriggeredByFuzzing {
		t.Fatalf("verdict = %v, want triggered-by-fuzzing", rep.Verdict)
	}

	// Replace every cached outcome with a corrupted rescue whose poc' is
	// the original (non-crashing) poc.
	cache.mu.Lock()
	keys := 0
	for k := range cache.m {
		cache.m[k] = &hybrid.Outcome{
			Rescued:  true,
			PoCPrime: append([]byte(nil), s.Pair.PoC...),
		}
		keys++
	}
	cache.mu.Unlock()
	if keys == 0 {
		t.Fatal("first verification cached nothing under the hy: class")
	}

	rep2, err := pl.Verify(s.Pair)
	if err != nil {
		t.Fatalf("Verify (corrupted cache): %v", err)
	}
	if rep2.Verdict != core.VerdictTriggeredByFuzzing {
		t.Fatalf("corrupted cache flipped the verdict: %v", rep2.Verdict)
	}
	if rep2.Timings.HybridCached {
		t.Error("corrupted outcome was served from the cache")
	}
	if bytes.Equal(rep2.PoCPrime, s.Pair.PoC) {
		t.Error("corrupted poc' was reported")
	}
	out := vm.New(s.Pair.T, vm.Config{Input: rep2.PoCPrime}).Run()
	if !out.Crashed() || !out.CrashedIn(s.Pair.Lib) {
		t.Fatalf("recomputed poc' replay = %v, want crash inside ℓ", out)
	}
}

// TestHybridCacheHitRevalidated checks the healthy-cache path: a second
// verification against an intact cache reuses the outcome (HybridCached)
// after the replay gate re-confirms it.
func TestHybridCacheHitRevalidated(t *testing.T) {
	s := corpus.ByIdx(20)
	cache := &hyMapCache{m: make(map[string]any)}
	pl := core.New(core.Config{HybridFuzz: true})
	pl.SetHybridCache(cache)

	rep, err := pl.Verify(s.Pair)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	rep2, err := pl.Verify(s.Pair)
	if err != nil {
		t.Fatalf("Verify (cached): %v", err)
	}
	if !rep2.Timings.HybridCached {
		t.Error("second verification did not reuse the cached outcome")
	}
	if rep2.Verdict != rep.Verdict || !bytes.Equal(rep2.PoCPrime, rep.PoCPrime) {
		t.Errorf("cached run diverges: %v vs %v", rep2, rep)
	}
}
