package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/fileformat"
	"octopocs/internal/isa"
)

// addJpegc emits the shared library of the jpeg-compressor pairs (the
// CVE-2017-0700 analog): the decoder computes the pixel-buffer size from
// unvalidated width×height, the allocator refuses the absurd request, and
// the subsequent header read writes through the null result.
func addJpegc(b *asm.Builder) {
	g := b.Function("jpegc_decode", 1) // (fd)
	fd := g.Param(0)
	w := readU16LE(g, fd)
	h := readU16LE(g, fd)
	readU8(g, fd) // quality byte, unused by the crash path
	size := g.MulI(g.Mul(w, h), 4)
	buf := g.Sys(isa.SysAlloc, size) // returns 0 for w*h*4 > max alloc
	g.Sys(isa.SysRead, fd, buf, g.Const(16))
	g.Ret(g.Const(0))
}

var jpegcLib = map[string]bool{"jpegc_decode": true}

// jpegcS builds the original jpeg-compressor tool.
func jpegcS() *asm.Builder {
	b := asm.NewBuilder("jpeg-compressor")
	addJpegc(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MJPG")
	f.Call("jpegc_decode", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// jpegcLibgdxT builds the libgdx asset loader: same MJPG format, plus a
// dimension sniff (peek width, reject zero) before handing the stream to
// the embedded decoder.
func jpegcLibgdxT() *asm.Builder {
	b := asm.NewBuilder("libgdx-1.9.10")
	addJpegc(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MJPG")
	w := readU16LE(f, fd)
	f.If(f.EqI(w, 0), func() { f.Exit(1) })
	f.Sys(isa.SysSeek, fd, f.Const(4)) // decoder re-parses from the header
	f.Call("jpegc_decode", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// jpegcZxingT builds the zxing scanner: decodes the image, then runs extra
// (never-reached-by-the-PoC) barcode logic over the result.
func jpegcZxingT() *asm.Builder {
	b := asm.NewBuilder("zxing")
	addJpegc(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MJPG")
	rc := f.Call("jpegc_decode", fd)
	f.If(f.NeI(rc, 0), func() { f.Exit(1) })
	// Barcode pass over a scratch row buffer.
	row := f.Sys(isa.SysAlloc, f.Const(64))
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.LtI(i, 64) }, func() {
		f.Store(1, f.Add(row, i), 0, f.AndI(i, 0xFF))
		f.Assign(i, f.AddI(i, 1))
	})
	f.Exit(0)
	b.Entry("main")
	return b
}

// jpegcPoC declares a 65535×65535 image: the size computation overflows
// any sane allocation and the decoder crashes on the null buffer.
func jpegcPoC() []byte {
	pixels := make([]byte, 16)
	for i := range pixels {
		pixels[i] = byte(i)
	}
	img := &fileformat.MJPG{Width: 0xFFFF, Height: 0xFFFF, Quality: 0x50, Pixels: pixels}
	return img.Encode()
}

// jpegcLibgdx is Table II Idx-1: jpeg-compressor → libgdx, CVE-2017-0700.
func jpegcLibgdx() *PairSpec {
	return &PairSpec{
		Idx:        1,
		SName:      "JPEG-compressor",
		SVersion:   "N/A",
		TName:      "libgdx",
		TVersion:   "1.9.10",
		CVE:        "CVE-2017-0700",
		CWE:        "No-CWE",
		ExpectType: core.TypeI,
		ExpectPoC:  true,
		Pair: buildPair("jpeg-compressor->libgdx",
			jpegcS(), jpegcLibgdxT(), jpegcPoC(), jpegcLib, nil),
	}
}

// jpegcZxing is Table II Idx-2: jpeg-compressor → zxing, CVE-2017-0700.
func jpegcZxing() *PairSpec {
	return &PairSpec{
		Idx:        2,
		SName:      "JPEG-compressor",
		SVersion:   "N/A",
		TName:      "zxing",
		TVersion:   "@0a32109",
		CVE:        "CVE-2017-0700",
		CWE:        "No-CWE",
		ExpectType: core.TypeI,
		ExpectPoC:  true,
		Pair: buildPair("jpeg-compressor->zxing",
			jpegcS(), jpegcZxingT(), jpegcPoC(), jpegcLib, nil),
	}
}
