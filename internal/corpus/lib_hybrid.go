package corpus

// lib_hybrid.go defines the symex-hard/fuzz-easy pairs (Idx 18-21) that
// exercise the directed-fuzzing fallback. Each pair shares the same
// vulnerable ℓ — decode() reads a length byte and then that many bytes into
// an 8-byte buffer — but guards it in T with structure that defeats
// directed symbolic execution in a hybrid-eligible way:
//
//   - deeploop (18): a skip loop pinned to ≥200 iterations, far past
//     θ = 120 — every exploration ends loop-dead.
//   - cksum (19): a Horner-31 checksum gate whose T key differs from the
//     S key, then a ≥190 skip loop. Loop-dead again, but the partial seed
//     matters: the campaign cannot guess a 4-byte checksum preimage (1 in
//     2^32 per random try), while the solver pins it from the path
//     constraints symex did collect.
//   - twomag (20): a byte-parity-mass gate that deterministically blows
//     the solver's evaluation budget (backtracking over 4 symbolic bytes
//     with only ≤2-unassigned propagation), then a high-bit flag the
//     fuzzer flips in a handful of deterministic-stage mutations.
//   - lprec (21): length-prefixed records with a symbolic per-record count
//     read, pinned to ≥180 records — loop-dead with concretized reads.
//
// Every PoC crashes S inside decode; no PoC crashes T (the guards differ),
// so a rescue is always a genuine reform — Type-II evidence found by
// fuzzing where the solver-based reform could not finish.

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/isa"
)

// hyLib is the shared ℓ of the hybrid pairs.
var hyLib = map[string]bool{"decode": true}

// hyDecoder emits the shared vulnerable ℓ: read a length byte, then that
// many bytes into an 8-byte buffer (heap overflow for length > 8).
func hyDecoder(b *asm.Builder) {
	g := b.Function("decode", 1)
	fd := g.Param(0)
	buf := g.Sys(isa.SysAlloc, g.Const(8))
	lb := g.Sys(isa.SysAlloc, g.Const(1))
	g.Sys(isa.SysRead, fd, lb, g.Const(1))
	g.Sys(isa.SysRead, fd, buf, g.Load(1, lb, 0))
	g.RetI(0)
}

// hySkipLoop emits the θ-defeating skip loop: exit(1) unless n ≥ minCount,
// then n single-byte reads (exit(2) at EOF). Pinning n ≥ minCount > θ makes
// every loop exit 1-symbol UNSAT within θ visits — the loop-dead outcome.
func hySkipLoop(f *asm.Fn, fd isa.Reg, n isa.Reg, minCount int64, eofExit int64) {
	f.If(f.Cmp(isa.Lt, n, f.Const(minCount)), func() { f.Exit(1) })
	i := f.VarI(0)
	buf := f.Sys(isa.SysAlloc, f.Const(1))
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, n) }, func() {
		cnt := f.Sys(isa.SysRead, fd, buf, f.Const(1))
		f.If(f.EqI(cnt, 0), func() { f.Exit(eofExit) })
		f.Assign(i, f.AddI(i, 1))
	})
}

// --- Idx 18: deep-loop ------------------------------------------------------

// hyDeepLoop is a scanner that skips minCount content bytes before handing
// the stream to decode.
func hyDeepLoop(name string, minCount int64) *asm.Builder {
	b := asm.NewBuilder(name)
	hyDecoder(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "DLP1")
	hySkipLoop(f, fd, readU8(f, fd), minCount, 2)
	f.Call("decode", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// hybridDeeploop is Idx-18: the T clone raised the minimum skip count from
// 2 to 200 — past θ, so directed execution ends loop-dead; the campaign
// only has to raise one count byte.
func hybridDeeploop() *PairSpec {
	poc := []byte("DLP1")
	poc = append(poc, 2, 0xEE, 0xEE, 32)
	for i := 0; i < 32; i++ {
		poc = append(poc, byte('a'+i%26))
	}
	return &PairSpec{
		Idx:          18,
		SName:        "dlscan",
		SVersion:     "1.0",
		TName:        "dlscan (deep clone)",
		TVersion:     "N/A",
		CVE:          "N/A (synthetic)",
		CWE:          "CWE-119",
		ExpectType:   core.TypeIII,
		ExpectPoC:    false,
		ExpectReason: core.ReasonLoopDead,
		ExpectRescue: true,
		Pair: hyPair("dlscan->dlscan-deep", 256, poc,
			hyDeepLoop("dlscan-1.0", 2), hyDeepLoop("dlscan-deep", 200)),
	}
}

// --- Idx 19: checksum gate --------------------------------------------------

// hyHorner31 is the checksum both cksum binaries compute over their 4-byte
// key: h = 31·h + key[i], truncated to one byte.
func hyHorner31(key string) int64 {
	h := int64(0)
	for i := 0; i < len(key); i++ {
		h = h*31 + int64(key[i])
	}
	return h & 0xFF
}

// hyCksum gates decode behind the Horner-31 checksum of a 4-byte key, and
// (when minCount > 0) a deep skip loop after it.
func hyCksum(name string, gate int64, minCount int64) *asm.Builder {
	b := asm.NewBuilder(name)
	hyDecoder(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "CKS1")
	kb := f.Sys(isa.SysAlloc, f.Const(4))
	f.Sys(isa.SysRead, fd, kb, f.Const(4))
	h := f.VarI(0)
	for i := 0; i < 4; i++ {
		f.Assign(h, f.Add(f.MulI(h, 31), f.Load(1, kb, int64(i))))
	}
	f.If(f.NeI(f.AndI(h, 0xFF), gate), func() { f.Exit(1) })
	if minCount > 0 {
		hySkipLoop(f, fd, readU8(f, fd), minCount, 2)
	}
	f.Call("decode", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// hybridCksum is Idx-19: the T clone rotated the key ("KEYA" → "KEYB") and
// added a ≥190 skip loop. Loop-dead for symex; for the campaign the gate is
// the hard part — a fresh 4-byte preimage is unguessable in the exec
// budget, so the rescue depends on the partially-solved seed carrying the
// preimage the solver derived from the collected path constraints.
func hybridCksum() *PairSpec {
	poc := []byte("CKS1")
	poc = append(poc, []byte("KEYA")...)
	poc = append(poc, 32)
	for i := 0; i < 32; i++ {
		poc = append(poc, byte('a'+i%26))
	}
	return &PairSpec{
		Idx:          19,
		SName:        "cksum",
		SVersion:     "1.0",
		TName:        "cksum (rekeyed clone)",
		TVersion:     "N/A",
		CVE:          "N/A (synthetic)",
		CWE:          "CWE-119",
		ExpectType:   core.TypeIII,
		ExpectPoC:    false,
		ExpectReason: core.ReasonLoopDead,
		ExpectRescue: true,
		Pair: hyPair("cksum->cksum-rekeyed", 256, poc,
			hyCksum("cksum-1.0", hyHorner31("KEYA"), 0),
			hyCksum("cksum-rekeyed", hyHorner31("KEYB"), 190)),
	}
}

// --- Idx 20: two-stage magic ------------------------------------------------

// hyTwomag gates decode behind a byte-parity-mass check (the sum of the low
// bits of width key bytes must reach thresh) and, in T, a high-bit flag.
// The parity gate is built to exhaust the solver's evaluation budget: its
// constraint tree mixes all width symbols, so the ≤2-unassigned propagation
// never fires and the model search backtracks through the full byte space.
func hyTwomag(name string, width int, thresh int64, flagStage bool) *asm.Builder {
	b := asm.NewBuilder(name)
	hyDecoder(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "TMG1")
	kb := f.Sys(isa.SysAlloc, f.Const(int64(width)))
	f.Sys(isa.SysRead, fd, kb, f.Const(int64(width)))
	sum := f.VarI(0)
	for i := 0; i < width; i++ {
		f.Assign(sum, f.Add(sum, f.AndI(f.Load(1, kb, int64(i)), 1)))
	}
	f.If(f.Cmp(isa.Lt, sum, f.Const(thresh)), func() { f.Exit(1) })
	if flagStage {
		flag := readU8(f, fd)
		f.If(f.EqI(f.AndI(flag, 0x80), 0), func() { f.Exit(3) })
	}
	f.Call("decode", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// hybridTwomag is Idx-20: the T clone tightened the parity threshold from 1
// to all 4 key bytes and added a high-bit flag stage. The solver budget
// blows on the parity gate (a budget verdict, not loop-dead), while the
// PoC's all-odd key already passes it concretely — the campaign only needs
// one deterministic bit flip on the flag byte. The S bunch span covers that
// byte, so this pair is rescued by the free arm, not the masked arm.
func hybridTwomag() *PairSpec {
	const width = 4
	poc := []byte("TMG1")
	for i := 0; i < width; i++ {
		poc = append(poc, 0xA1)
	}
	poc = append(poc, 32)
	for i := 0; i < 32; i++ {
		poc = append(poc, 0xA1)
	}
	return &PairSpec{
		Idx:          20,
		SName:        "twomag",
		SVersion:     "1.0",
		TName:        "twomag (flagged clone)",
		TVersion:     "N/A",
		CVE:          "N/A (synthetic)",
		CWE:          "CWE-119",
		ExpectType:   core.TypeFailure,
		ExpectPoC:    false,
		ExpectReason: core.ReasonBudget,
		ExpectRescue: true,
		Pair: hyPair("twomag->twomag-flagged", 128, poc,
			hyTwomag("twomag-1.0", width, 1, false),
			hyTwomag("twomag-flagged", width, 4, true)),
	}
}

// --- Idx 21: length-prefixed records ----------------------------------------

// hyLprec reads a record count and then that many length-prefixed records
// (a symbolic per-record length read, which symex concretizes) before
// handing the stream to decode.
func hyLprec(name string, minRecords int64) *asm.Builder {
	b := asm.NewBuilder(name)
	hyDecoder(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "LPR1")
	r := readU8(f, fd)
	f.If(f.Cmp(isa.Lt, r, f.Const(minRecords)), func() { f.Exit(1) })
	i := f.VarI(0)
	lb := f.Sys(isa.SysAlloc, f.Const(1))
	scratch := f.Sys(isa.SysAlloc, f.Const(256))
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, r) }, func() {
		cnt := f.Sys(isa.SysRead, fd, lb, f.Const(1))
		f.If(f.EqI(cnt, 0), func() { f.Exit(2) })
		f.Sys(isa.SysRead, fd, scratch, f.Load(1, lb, 0))
		f.Assign(i, f.AddI(i, 1))
	})
	f.Call("decode", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// hybridLprec is Idx-21: the T clone raised the minimum record count from 1
// to 180 — past θ through a loop with symbolic length reads.
func hybridLprec() *PairSpec {
	poc := []byte("LPR1")
	poc = append(poc, 1, 0x00, 32)
	for i := 0; i < 32; i++ {
		poc = append(poc, byte('a'+i%26))
	}
	return &PairSpec{
		Idx:          21,
		SName:        "lprec",
		SVersion:     "1.0",
		TName:        "lprec (deep clone)",
		TVersion:     "N/A",
		CVE:          "N/A (synthetic)",
		CWE:          "CWE-119",
		ExpectType:   core.TypeIII,
		ExpectPoC:    false,
		ExpectReason: core.ReasonLoopDead,
		ExpectRescue: true,
		Pair: hyPair("lprec->lprec-deep", 288, poc,
			hyLprec("lprec-1.0", 1), hyLprec("lprec-deep", 180)),
	}
}

// hyPair assembles one hybrid core.Pair with a fixed symbolic input size
// (the deep loops consume hundreds of input bytes, so len(poc)+slack is
// too small).
func hyPair(name string, inputSize int, poc []byte, sb, tb *asm.Builder) *core.Pair {
	p := buildPair(name, sb, tb, poc, hyLib, nil)
	p.InputSize = inputSize
	return p
}

// HybridSet returns the symex-hard/fuzz-easy pairs (Idx 18-21). Like
// StaticSet they are kept out of All() so the Table II row count stays 15;
// ByIdx resolves them.
func HybridSet() []*PairSpec {
	return []*PairSpec{
		hybridDeeploop(), // 18
		hybridCksum(),    // 19
		hybridTwomag(),   // 20
		hybridLprec(),    // 21
	}
}
