package corpus_test

import (
	"bytes"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/vm"
)

// TestStaticSetDefined checks the static-prune pairs are complete and
// resolvable through ByIdx without disturbing the Table II set.
func TestStaticSetDefined(t *testing.T) {
	specs := corpus.StaticSet()
	if len(specs) != 2 {
		t.Fatalf("static set has %d pairs, want 2", len(specs))
	}
	for i, s := range specs {
		if s.Idx != 16+i {
			t.Errorf("static pair %d has Idx %d, want %d", i, s.Idx, 16+i)
		}
		if s.Pair == nil || s.Pair.S == nil || s.Pair.T == nil || len(s.Pair.PoC) == 0 {
			t.Errorf("pair %d (%s) incomplete", s.Idx, s.Label())
		}
		if got := corpus.ByIdx(s.Idx); got == nil || got.Idx != s.Idx {
			t.Errorf("ByIdx(%d) = %v", s.Idx, got)
		}
	}
}

// TestStaticPoCsCrashS checks the static-set ground truth: the shared PoC
// crashes S inside ℓ.
func TestStaticPoCsCrashS(t *testing.T) {
	for _, s := range corpus.StaticSet() {
		t.Run(s.Label(), func(t *testing.T) {
			out := vm.New(s.Pair.S, vm.Config{Input: s.Pair.PoC}).Run()
			if !out.Crashed() || !out.CrashedIn(s.Pair.Lib) {
				t.Fatalf("S outcome = %v, want crash inside ℓ", out)
			}
		})
	}
}

// TestStaticPruneEquivalence is the pruning soundness check: every corpus
// pair — the 15 Table II rows plus the static set — must produce the same
// verdict, type, and byte-identical poc' with static pruning on and off.
// Only the Reason may sharpen (a pair proven unreachable statically reports
// statically-unreachable instead of the symex-derived reason) and the
// effort statistics may shrink.
func TestStaticPruneEquivalence(t *testing.T) {
	off := core.New(core.Config{})
	on := core.New(core.Config{StaticPrune: true})
	specs := append(corpus.All(), corpus.StaticSet()...)
	shortCircuits := 0
	for _, s := range specs {
		s := s
		t.Run(s.Label(), func(t *testing.T) {
			repOff, err := off.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify (prune off): %v", err)
			}
			repOn, err := on.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify (prune on): %v", err)
			}
			t.Logf("off: %v", repOff)
			t.Logf("on:  %v", repOn)
			if repOn.Verdict != repOff.Verdict {
				t.Errorf("verdict: on=%v off=%v", repOn.Verdict, repOff.Verdict)
			}
			if repOn.Type != repOff.Type {
				t.Errorf("type: on=%v off=%v", repOn.Type, repOff.Type)
			}
			if !bytes.Equal(repOn.PoCPrime, repOff.PoCPrime) {
				t.Errorf("poc' differs: on=%x off=%x", repOn.PoCPrime, repOff.PoCPrime)
			}
			if repOff.Static != nil {
				t.Errorf("prune-off report carries a static summary: %v", repOff.Static)
			}
			if repOn.Static == nil {
				t.Errorf("prune-on report is missing the static summary")
			}
			if repOn.Reason == core.ReasonStaticUnreachable {
				shortCircuits++
				if repOn.Stats.Steps != 0 || repOn.Stats.States != 0 {
					t.Errorf("short-circuited verdict still ran symex: %+v", repOn.Stats)
				}
			}
		})
	}
	if shortCircuits == 0 {
		t.Error("no pair short-circuited to statically-unreachable")
	}
}

// TestDeadCloneShortCircuits pins the Idx-16 contract: with pruning the
// verdict is statically-unreachable with zero symbolic execution, without
// it the same not-triggerable verdict costs a directed run.
func TestDeadCloneShortCircuits(t *testing.T) {
	spec := corpus.ByIdx(16)
	rep, err := core.New(core.Config{StaticPrune: true}).Verify(spec.Pair)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Verdict != core.VerdictNotTriggerable || rep.Type != core.TypeIII {
		t.Fatalf("verdict = %v/%v, want not-triggerable/Type-III", rep.Verdict, rep.Type)
	}
	if rep.Reason != core.ReasonStaticUnreachable {
		t.Fatalf("reason = %q, want %q", rep.Reason, core.ReasonStaticUnreachable)
	}
	if rep.Stats.Steps != 0 {
		t.Fatalf("short circuit ran %d symex steps, want 0", rep.Stats.Steps)
	}
	if rep.Static == nil || rep.Static.DeadBlocks == 0 || rep.Static.FoldedBranches == 0 {
		t.Fatalf("static summary missing or empty: %+v", rep.Static)
	}
}

// TestEmbedPairTriggers pins the Idx-17 contract: still triggerable with
// pruning on, and the dead legacy remnant is actually pruned.
func TestEmbedPairTriggers(t *testing.T) {
	spec := corpus.ByIdx(17)
	rep, err := core.New(core.Config{StaticPrune: true}).Verify(spec.Pair)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Verdict != core.VerdictTriggered || rep.Type != core.TypeII {
		t.Fatalf("verdict = %v/%v (reason %q), want triggered/Type-II", rep.Verdict, rep.Type, rep.Reason)
	}
	if rep.Static == nil || rep.Static.DeadBlocks == 0 {
		t.Fatalf("static summary missing or empty: %+v", rep.Static)
	}
	out := vm.New(spec.Pair.T, vm.Config{Input: rep.PoCPrime}).Run()
	if !out.Crashed() || !out.CrashedIn(spec.Pair.Lib) {
		t.Fatalf("poc' does not crash T in ℓ: %v", out)
	}
}
