package corpus_test

import (
	"bytes"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/vm"
)

// TestStaticSetDefined checks the static-prune pairs are complete and
// resolvable through ByIdx without disturbing the Table II set.
func TestStaticSetDefined(t *testing.T) {
	specs := corpus.StaticSet()
	if len(specs) != 2 {
		t.Fatalf("static set has %d pairs, want 2", len(specs))
	}
	for i, s := range specs {
		if s.Idx != 16+i {
			t.Errorf("static pair %d has Idx %d, want %d", i, s.Idx, 16+i)
		}
		if s.Pair == nil || s.Pair.S == nil || s.Pair.T == nil || len(s.Pair.PoC) == 0 {
			t.Errorf("pair %d (%s) incomplete", s.Idx, s.Label())
		}
		if got := corpus.ByIdx(s.Idx); got == nil || got.Idx != s.Idx {
			t.Errorf("ByIdx(%d) = %v", s.Idx, got)
		}
	}
}

// TestStaticPoCsCrashS checks the static-set ground truth: the shared PoC
// crashes S inside ℓ.
func TestStaticPoCsCrashS(t *testing.T) {
	for _, s := range corpus.StaticSet() {
		t.Run(s.Label(), func(t *testing.T) {
			out := vm.New(s.Pair.S, vm.Config{Input: s.Pair.PoC}).Run()
			if !out.Crashed() || !out.CrashedIn(s.Pair.Lib) {
				t.Fatalf("S outcome = %v, want crash inside ℓ", out)
			}
		})
	}
}

// TestStaticPruneEquivalence is the static-layer soundness check: every
// corpus pair — the 15 Table II rows plus the static set — must produce the
// same verdict, type, and byte-identical poc' under every combination of
// static pruning and abstract-interpretation value ranges. Only the Reason
// may sharpen (a pair proven unreachable statically reports
// statically-unreachable instead of the symex-derived reason) and the
// effort statistics may shrink.
func TestStaticPruneEquivalence(t *testing.T) {
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"off", core.Config{}},
		{"prune", core.Config{StaticPrune: true}},
		{"absint", core.Config{Absint: true}},
		{"prune+absint", core.Config{StaticPrune: true, Absint: true}},
	}
	pipelines := make([]*core.Pipeline, len(configs))
	for i, c := range configs {
		pipelines[i] = core.New(c.cfg)
	}
	specs := append(corpus.All(), corpus.StaticSet()...)
	shortCircuits := 0
	for _, s := range specs {
		s := s
		t.Run(s.Label(), func(t *testing.T) {
			repOff, err := pipelines[0].Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify (%s): %v", configs[0].name, err)
			}
			t.Logf("%s: %v", configs[0].name, repOff)
			if repOff.Static != nil {
				t.Errorf("off report carries a static summary: %v", repOff.Static)
			}
			if repOff.Absint != nil {
				t.Errorf("off report carries an absint summary: %v", repOff.Absint)
			}
			for i := 1; i < len(configs); i++ {
				name, cfg := configs[i].name, configs[i].cfg
				rep, err := pipelines[i].Verify(s.Pair)
				if err != nil {
					t.Fatalf("Verify (%s): %v", name, err)
				}
				t.Logf("%s: %v", name, rep)
				if rep.Verdict != repOff.Verdict {
					t.Errorf("%s: verdict %v, off %v", name, rep.Verdict, repOff.Verdict)
				}
				if rep.Type != repOff.Type {
					t.Errorf("%s: type %v, off %v", name, rep.Type, repOff.Type)
				}
				if !bytes.Equal(rep.PoCPrime, repOff.PoCPrime) {
					t.Errorf("%s: poc' differs: %x vs %x", name, rep.PoCPrime, repOff.PoCPrime)
				}
				if cfg.StaticPrune && rep.Static == nil {
					t.Errorf("%s: report is missing the static summary", name)
				}
				if !cfg.StaticPrune && rep.Static != nil {
					t.Errorf("%s: report carries a static summary: %v", name, rep.Static)
				}
				if cfg.Absint && rep.Absint == nil {
					t.Errorf("%s: report is missing the absint summary", name)
				}
				if !cfg.Absint && rep.Absint != nil {
					t.Errorf("%s: report carries an absint summary: %v", name, rep.Absint)
				}
				if rep.Reason == core.ReasonStaticUnreachable {
					shortCircuits++
					if rep.Stats.Steps != 0 || rep.Stats.States != 0 {
						t.Errorf("%s: short-circuited verdict still ran symex: %+v", name, rep.Stats)
					}
				}
			}
		})
	}
	if shortCircuits == 0 {
		t.Error("no pair short-circuited to statically-unreachable")
	}
}

// TestDeadCloneShortCircuits pins the Idx-16 contract: with pruning the
// verdict is statically-unreachable with zero symbolic execution, without
// it the same not-triggerable verdict costs a directed run.
func TestDeadCloneShortCircuits(t *testing.T) {
	spec := corpus.ByIdx(16)
	rep, err := core.New(core.Config{StaticPrune: true}).Verify(spec.Pair)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Verdict != core.VerdictNotTriggerable || rep.Type != core.TypeIII {
		t.Fatalf("verdict = %v/%v, want not-triggerable/Type-III", rep.Verdict, rep.Type)
	}
	if rep.Reason != core.ReasonStaticUnreachable {
		t.Fatalf("reason = %q, want %q", rep.Reason, core.ReasonStaticUnreachable)
	}
	if rep.Stats.Steps != 0 {
		t.Fatalf("short circuit ran %d symex steps, want 0", rep.Stats.Steps)
	}
	if rep.Static == nil || rep.Static.DeadBlocks == 0 || rep.Static.FoldedBranches == 0 {
		t.Fatalf("static summary missing or empty: %+v", rep.Static)
	}
}

// TestEmbedPairTriggers pins the Idx-17 contract: still triggerable with
// pruning on, and the dead legacy remnant is actually pruned.
func TestEmbedPairTriggers(t *testing.T) {
	spec := corpus.ByIdx(17)
	rep, err := core.New(core.Config{StaticPrune: true}).Verify(spec.Pair)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Verdict != core.VerdictTriggered || rep.Type != core.TypeII {
		t.Fatalf("verdict = %v/%v (reason %q), want triggered/Type-II", rep.Verdict, rep.Type, rep.Reason)
	}
	if rep.Static == nil || rep.Static.DeadBlocks == 0 {
		t.Fatalf("static summary missing or empty: %+v", rep.Static)
	}
	out := vm.New(spec.Pair.T, vm.Config{Input: rep.PoCPrime}).Run()
	if !out.Crashed() || !out.CrashedIn(spec.Pair.Lib) {
		t.Fatalf("poc' does not crash T in ℓ: %v", out)
	}
}
