package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/isa"
)

// addPdfnum emits the shared numeric-object parser of the pdf2htmlEX pair
// (the CVE-2018-21009 analog, CWE-190): the element count is squared in
// 8-bit arithmetic to size the buffer, so count 16 wraps to a zero-byte
// allocation while the fill loop writes count bytes.
func addPdfnum(b *asm.Builder) {
	g := b.Function("pdfnum_parse", 1) // (fd)
	fd := g.Param(0)
	cnt := readU8(g, fd)
	size := g.BinI(isa.And, g.Mul(cnt, cnt), 0xFF) // the 8-bit truncation bug
	buf := g.Sys(isa.SysAlloc, size)
	i := g.VarI(0)
	g.While(func() isa.Reg { return g.Cmp(isa.Lt, i, cnt) }, func() {
		g.Store(1, g.Add(buf, i), 0, i) // overflows once i passes size
		g.Assign(i, g.AddI(i, 1))
	})
	g.Ret(cnt)
}

var pdfnumLib = map[string]bool{"pdfnum_parse": true}

// pdfnumS builds pdf2htmlEX.
func pdfnumS() *asm.Builder {
	b := asm.NewBuilder("pdf2htmlEX-0.14.6")
	addPdfnum(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	tag := readU8(f, fd)
	f.If(f.NeI(tag, 'N'), func() { f.Exit(1) })
	f.Call("pdfnum_parse", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// pdfnumPopplerT builds Poppler 0.41.0's pdfinfo: object handlers dispatch
// through a run-time-constructed translation table indexed by an input
// byte. Resolving which handler a given input selects requires reasoning
// through the table load; an executor that concretizes memory addresses
// discovers only one slot per explored path — the faithful analog of the
// angr CFG defect behind the paper's Idx-15 failure.
func pdfnumPopplerT() *asm.Builder {
	b := asm.NewBuilder("pdfinfo-poppler-0.41.0")
	addPdfnum(b)

	info := b.Function("info_dict", 1)
	readU16LE(info, info.Param(0))
	info.RetI(0)

	date := b.Function("date_parse", 1)
	readU8(date, date.Param(0))
	date.RetI(0)

	name := b.Function("name_parse", 1)
	skipBytes(name, name.Param(0), readU8(name, name.Param(0)))
	name.RetI(0)

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	// Build the handler translation table at run time: slot j selects
	// functable entry j mod 4 — pdfnum_parse sits behind table[2].
	table := f.Sys(isa.SysAlloc, f.Const(8))
	j := f.VarI(0)
	f.While(func() isa.Reg { return f.LtI(j, 8) }, func() {
		f.Store(1, f.Add(table, j), 0, f.AndI(j, 3))
		f.Assign(j, f.AddI(j, 1))
	})
	kind := readU8(f, fd)
	idx := f.Load(1, f.Add(table, f.AndI(kind, 7)), 0)
	f.CallInd(idx, fd)
	f.Exit(0)
	b.Entry("main")
	b.FuncTable("info_dict", "date_parse", "pdfnum_parse", "name_parse")
	return b
}

// pdfnumPoC: a numeric object with 16 elements; 16² wraps to 0 in the
// 8-bit size computation.
func pdfnumPoC() []byte {
	return append([]byte("MPDF"), 'N', 16)
}

// pdfnumPoppler is Table II Idx-15: pdf2htmlEX → pdfinfo (Poppler), the
// single Failure row — CFG recovery cannot resolve the dispatch to ℓ.
func pdfnumPoppler() *PairSpec {
	return &PairSpec{
		Idx:        15,
		SName:      "pdf2htmlEX",
		SVersion:   "0.14.6",
		TName:      "pdfinfo (Poppler)",
		TVersion:   "0.41.0",
		CVE:        "CVE-2018-21009",
		CWE:        "CWE-190",
		ExpectType: core.TypeFailure,
		ExpectPoC:  false,
		Pair: buildPair("pdf2htmlEX->pdfinfo-poppler",
			pdfnumS(), pdfnumPopplerT(), pdfnumPoC(), pdfnumLib, nil),
	}
}
