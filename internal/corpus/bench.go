package corpus

import (
	"fmt"

	"octopocs/internal/asm"
	"octopocs/internal/isa"
)

// SymexBenchSpec is one workload of the parallel-exploration benchmark
// (octobench -bench-symex). Unlike the Table II pairs, these programs are
// built so directed symbolic execution must exhaust an exponential frontier:
// every diamond forks two feasible successors and the final gate guarding
// the target is unsatisfiable, so no path ever commits a success that would
// let the minimal-path protocol prune its siblings.
type SymexBenchSpec struct {
	// Name identifies the workload in BENCH_symex.json.
	Name string
	// Prog is the benchmark binary; Target is the function the directed
	// run steers toward (never actually reachable).
	Prog   *isa.Program
	Target string
	// InputSize is the symbolic input width in bytes.
	InputSize int
	// Leaves is the number of terminal paths the frontier must retire
	// (2^depth); useful for sanity-checking a run explored everything.
	Leaves int
}

// SymexBench returns the parallel symbolic-execution workloads, cheapest
// first. They are intentionally NOT part of All(): they model search-space
// shape, not vulnerability propagation, and have no S/T/poc triple.
func SymexBench() []*SymexBenchSpec {
	return []*SymexBenchSpec{
		bitfanSpec(12),
		mixmulSpec(8),
	}
}

// bitfanSpec builds a depth-deep diamond chain over single input bits:
// diamond i branches on bit i%8 of input byte i/8. Both directions of every
// diamond are feasible and mutually independent, so the search tree has
// exactly 2^depth leaves. Each feasibility check involves only one-symbol
// constraints — this workload measures frontier scheduling overhead with
// near-free SAT checks.
func bitfanSpec(depth int) *SymexBenchSpec {
	nbytes := (depth + 7) / 8
	b := asm.NewBuilder(fmt.Sprintf("bitfan-d%d", depth))
	ep := b.Function("ep", 0)
	ep.RetI(0)

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(int64(nbytes)))
	f.Sys(isa.SysRead, fd, buf, f.Const(int64(nbytes)))
	acc := f.VarI(0)
	for i := 0; i < depth; i++ {
		bit := f.AndI(f.ShrI(f.Load(1, buf, int64(i/8)), int64(i%8)), 1)
		i := i
		f.IfElse(f.EqI(bit, 1),
			func() { f.Assign(acc, f.AddI(acc, int64(2*i+1))) },
			func() { f.Assign(acc, f.AddI(acc, int64(2*i+2))) })
	}
	// Unsatisfiable gate the solver must actually refute (a single byte
	// masked to one bit can never exceed 1): the directed run keeps
	// steering toward ep and retires every one of the 2^depth leaves.
	f.If(f.GtI(f.AndI(f.Load(1, buf, 0), 1), 1), func() { f.Call("ep") })
	f.Exit(0)
	b.Entry("main")
	return &SymexBenchSpec{
		Name:      fmt.Sprintf("bitfan-d%d", depth),
		Prog:      b.MustBuild(),
		Target:    "ep",
		InputSize: nbytes,
		Leaves:    1 << depth,
	}
}

// mixmulSpec builds a depth-deep diamond chain whose conditions are
// two-symbol multiplicative congruences: diamond i reads its own byte pair
// (x, y) and branches on (x*17 + y*31) & 63 == m_i. Filtering one such
// constraint enumerates the full 256x256 domain product, so every
// feasibility check is genuinely expensive — this workload measures how the
// frontier scales when SAT work dominates, and how much the memoized
// verdict cache recovers on re-exploration.
func mixmulSpec(depth int) *SymexBenchSpec {
	nbytes := 2 * depth
	b := asm.NewBuilder(fmt.Sprintf("mixmul-d%d", depth))
	ep := b.Function("ep", 0)
	ep.RetI(0)

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	buf := f.Sys(isa.SysAlloc, f.Const(int64(nbytes)))
	f.Sys(isa.SysRead, fd, buf, f.Const(int64(nbytes)))
	acc := f.VarI(0)
	for i := 0; i < depth; i++ {
		x := f.Load(1, buf, int64(2*i))
		y := f.Load(1, buf, int64(2*i+1))
		mix := f.AndI(f.Add(f.MulI(x, 17), f.MulI(y, 31)), 63)
		i := i
		f.IfElse(f.EqI(mix, int64((i*11+3)&63)),
			func() { f.Assign(acc, f.AddI(acc, int64(2*i+1))) },
			func() { f.Assign(acc, f.AddI(acc, int64(2*i+2))) })
	}
	f.If(f.GtI(f.AndI(f.Load(1, buf, 0), 1), 1), func() { f.Call("ep") })
	f.Exit(0)
	b.Entry("main")
	return &SymexBenchSpec{
		Name:      fmt.Sprintf("mixmul-d%d", depth),
		Prog:      b.MustBuild(),
		Target:    "ep",
		InputSize: nbytes,
		Leaves:    1 << depth,
	}
}
