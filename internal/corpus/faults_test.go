package corpus_test

import (
	"context"
	"errors"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/faultinject"
	"octopocs/internal/symex"
)

// TestVerdictStableUnderFaults drives the full 17-pair corpus through three
// canned fault schedules and pins the robustness contract to the paper's
// ground truth: under retryable and degraded faults every pair must
// reproduce its fault-free verdict and poc' byte-for-byte; under fatal
// faults the pipeline must return an explicitly classified error, never a
// quietly different verdict.
func TestVerdictStableUnderFaults(t *testing.T) {
	all := append(corpus.All(), corpus.StaticSet()...)

	schedules := []struct {
		name     string
		schedule string
		cfg      core.Config
		fatal    bool
	}{
		// Transient solver faults: absorbed by per-phase retry. At most two
		// faults total, so even if both land in the same phase they stay
		// under the DefaultRetryMax budget — recovery is guaranteed, not
		// probabilistic. (Exhaustion is covered by core's
		// TestRetryExhaustionIsExplicit.)
		{
			name:     "transient",
			schedule: "seed=1;solver.sat:nth=3;solver.timeout:nth=1",
			cfg:      core.Config{SymexWorkers: 1},
		},
		// Mixed panic + degradation: worker panic retried, static analysis
		// and caches degraded.
		{
			name:     "degraded",
			schedule: "seed=2;symex.worker_panic:nth=1;core.static:nth=1;solver.cache:rate=0.3;core.cache_put:rate=1",
			cfg:      core.Config{SymexWorkers: 1, StaticPrune: true},
		},
		// Fatal: forced cancellation mid-exploration.
		{
			name:     "fatal-cancel",
			schedule: "seed=3;symex.cancel:nth=1",
			cfg:      core.Config{SymexWorkers: 1},
			fatal:    true,
		},
	}

	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			baseCfg := sc.cfg
			baseCfg.Faults = nil
			basePl := core.New(baseCfg)

			for _, spec := range all {
				spec := spec
				t.Run(spec.Pair.Name, func(t *testing.T) {
					base, err := basePl.Verify(spec.Pair)
					if err != nil {
						t.Fatalf("baseline: %v", err)
					}
					// The baseline must itself match Table II before fault
					// equivalence means anything.
					if spec.ExpectType != 0 && base.Type != spec.ExpectType {
						t.Fatalf("baseline type %v, want %v", base.Type, spec.ExpectType)
					}

					sch, err := faultinject.ParseSchedule(sc.schedule)
					if err != nil {
						t.Fatal(err)
					}
					cfg := sc.cfg
					cfg.Faults = faultinject.New(sch)
					rep, err := core.New(cfg).Verify(spec.Pair)

					if sc.fatal {
						// Pairs that finish before symbolic execution starts
						// never reach the injection point; for the rest the
						// cancellation must surface explicitly.
						if err == nil {
							assertSameOutcome(t, base, rep, true)
							return
						}
						if !errors.Is(err, symex.ErrStopped) && !errors.Is(err, context.Canceled) {
							t.Fatalf("fatal schedule produced unclassified error: %v", err)
						}
						if faultinject.IsTransient(err) || faultinject.IsDegraded(err) {
							t.Fatalf("fatal cancellation misclassified as recoverable: %v", err)
						}
						return
					}

					if err != nil {
						t.Fatalf("faulted verify: %v", err)
					}
					// Under static degradation Reason/Static may change; the
					// verdict, type, and poc' may not.
					strict := sc.name != "degraded"
					assertSameOutcome(t, base, rep, strict)
				})
			}
		})
	}
}

// assertSameOutcome compares a faulted report with its fault-free baseline.
// Strict mode also pins Reason and the static summary; loose mode allows
// those to shift when a degraded static phase falls back to the unpruned
// pipeline.
func assertSameOutcome(t *testing.T, want, got *core.Report, strict bool) {
	t.Helper()
	if got.Verdict != want.Verdict || got.Type != want.Type {
		t.Errorf("verdict/type = %v/%v, want %v/%v", got.Verdict, got.Type, want.Verdict, want.Type)
	}
	if string(got.PoCPrime) != string(want.PoCPrime) {
		t.Errorf("poc' differs: %d bytes vs baseline %d", len(got.PoCPrime), len(want.PoCPrime))
	}
	if strict && got.Reason != want.Reason {
		t.Errorf("reason = %q, want %q", got.Reason, want.Reason)
	}
}
