package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/isa"
)

// StringPoCPair demonstrates the § VII extension beyond malformed-file
// PoCs: the attacker input arrives through the argument-string channel
// (SysArgRead) instead of a file, modeling a malformed-string PoC. The
// shared key=value parser copies the key into a fixed 8-byte buffer; the
// two tools differ only in their option prefix, so the original string PoC
// must be reformed for the clone. The pipeline is unchanged — crash
// primitives, guiding inputs, and the position indicator all work on the
// argument cursor.
func StringPoCPair() *core.Pair {
	addKV := func(b *asm.Builder) {
		g := b.Function("kv_parse", 0)
		buf := g.Sys(isa.SysAlloc, g.Const(8))
		tmp := g.Sys(isa.SysAlloc, g.Const(1))
		i := g.VarI(0)
		going := g.VarI(1)
		g.While(func() isa.Reg { return going }, func() {
			n := g.Sys(isa.SysArgRead, tmp, g.Const(1))
			g.If(g.EqI(n, 0), func() { g.RetI(1) })
			c := g.Load(1, tmp, 0)
			g.IfElse(g.EqI(c, '='), func() {
				g.AssignI(going, 0)
			}, func() {
				g.Store(1, g.Add(buf, i), 0, c) // overflows at i == 8
				g.Assign(i, g.AddI(i, 1))
			})
		})
		g.Ret(i)
	}
	expectArg := func(f *asm.Fn, prefix string) {
		buf := f.Sys(isa.SysAlloc, f.Const(int64(len(prefix))))
		f.Sys(isa.SysArgRead, buf, f.Const(int64(len(prefix))))
		for i := 0; i < len(prefix); i++ {
			f.If(f.NeI(f.Load(1, buf, int64(i)), int64(prefix[i])), func() { f.Exit(1) })
		}
	}
	build := func(name, prefix string) *asm.Builder {
		b := asm.NewBuilder(name)
		addKV(b)
		f := b.Function("main", 0)
		expectArg(f, prefix)
		f.Call("kv_parse")
		f.Exit(0)
		b.Entry("main")
		return b
	}

	// The disclosed PoC: "-D" plus a 12-character key.
	poc := []byte("-D" + "AAAAAAAAAAAA=" + "v")
	return buildPair("envtool->configtool",
		build("envtool", "-D"), build("configtool", "--D"),
		poc, map[string]bool{"kv_parse": true}, nil)
}
