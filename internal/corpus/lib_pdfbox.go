package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/fileformat"
	"octopocs/internal/isa"
)

// addPdfbox emits the shared object reader of the pdfalto/Xpdf pairs (the
// CVE-2019-9878 analog, CWE-119): an object is a u8 length followed by
// that many bytes, read into a fixed 16-byte buffer without a bound check.
func addPdfbox(b *asm.Builder) {
	g := b.Function("pdfbox_obj", 1) // (fd)
	fd := g.Param(0)
	buf := g.Sys(isa.SysAlloc, g.Const(16))
	length := readU8(g, fd)
	g.Sys(isa.SysRead, fd, buf, length) // overflows for length > 16
	g.Ret(length)
}

var pdfboxLib = map[string]bool{"pdfbox_obj": true}

// pdfboxS builds pdfalto.
func pdfboxS() *asm.Builder {
	b := asm.NewBuilder("pdfalto-0.2")
	addPdfbox(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	readU8(f, fd) // version
	objs := readU8(f, fd)
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, objs) }, func() {
		f.Call("pdfbox_obj", fd)
		f.Assign(i, f.AddI(i, 1))
	})
	f.Exit(0)
	b.Entry("main")
	return b
}

// pdfboxT builds Xpdf 4.0.0's pdfinfo: same format, digit version check,
// object totals reported after parsing.
func pdfboxT() *asm.Builder {
	b := asm.NewBuilder("pdfinfo-xpdf-4.0.0")
	addPdfbox(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	version := readU8(f, fd)
	f.If(f.LtI(version, '0'), func() { f.Exit(1) })
	f.If(f.GtI(version, '9'), func() { f.Exit(1) })
	objs := readU8(f, fd)
	total := f.VarI(0)
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, objs) }, func() {
		n := f.Call("pdfbox_obj", fd)
		f.Assign(total, f.Add(total, n))
		f.Assign(i, f.AddI(i, 1))
	})
	f.Exit(0)
	b.Entry("main")
	return b
}

// pdfboxTPatched builds Xpdf 4.1.1's pdftops: the caller now peeks the
// object length and refuses oversized objects before the shared reader
// ever runs — the inserted patch of Table II Idx-14.
func pdfboxTPatched() *asm.Builder {
	b := asm.NewBuilder("pdftops-xpdf-4.1.1")
	addPdfbox(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	version := readU8(f, fd)
	f.If(f.LtI(version, '0'), func() { f.Exit(1) })
	f.If(f.GtI(version, '9'), func() { f.Exit(1) })
	objs := readU8(f, fd)
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, objs) }, func() {
		// Patch: validate the length before the vulnerable reader.
		pos := f.Sys(isa.SysTell, fd)
		length := readU8(f, fd)
		f.If(f.GtI(length, 16), func() { f.Exit(3) })
		f.Sys(isa.SysSeek, fd, pos)
		f.Call("pdfbox_obj", fd)
		f.Assign(i, f.AddI(i, 1))
	})
	f.Exit(0)
	b.Entry("main")
	return b
}

// pdfboxPoC carries one 32-byte object: double the reader's buffer.
func pdfboxPoC() []byte {
	obj := make([]byte, 32)
	for i := range obj {
		obj[i] = byte('a' + i%26)
	}
	doc := &fileformat.PDFObjects{Version: '1', Objects: [][]byte{obj}}
	return doc.Encode()
}

// pdfboxPdfinfo is Table II Idx-6: pdfalto → pdfinfo (Xpdf), CVE-2019-9878.
func pdfboxPdfinfo() *PairSpec {
	return &PairSpec{
		Idx:        6,
		SName:      "pdfalto",
		SVersion:   "0.2",
		TName:      "pdfinfo (Xpdf)",
		TVersion:   "4.0.0",
		CVE:        "CVE-2019-9878",
		CWE:        "CWE-119",
		ExpectType: core.TypeI,
		ExpectPoC:  true,
		Pair: buildPair("pdfalto->pdfinfo-xpdf",
			pdfboxS(), pdfboxT(), pdfboxPoC(), pdfboxLib, nil),
	}
}

// pdfboxXpdfPatched is Table II Idx-14: pdfalto → pdftops (Xpdf 4.1.1),
// the patched clone; verification succeeds with a not-triggerable verdict
// and no poc'.
func pdfboxXpdfPatched() *PairSpec {
	return &PairSpec{
		Idx:        14,
		SName:      "pdfalto",
		SVersion:   "0.2",
		TName:      "pdftops (Xpdf)",
		TVersion:   "4.1.1",
		CVE:        "CVE-2019-9878",
		CWE:        "CWE-119",
		ExpectType: core.TypeIII,
		ExpectPoC:  false,
		Pair: buildPair("pdfalto->pdftops-xpdf-patched",
			pdfboxS(), pdfboxTPatched(), pdfboxPoC(), pdfboxLib, nil),
	}
}
