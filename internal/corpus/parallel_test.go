package corpus_test

import (
	"bytes"
	"runtime"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
)

// TestParallelDeterminism is the acceptance gate of the parallel frontier
// engine: over the full corpus, a 1-worker pipeline and an N-worker pipeline
// must produce identical verdicts, types, reasons, and identical poc' bytes.
// (1 worker is the deterministic reference of the frontier engine; the
// sequential engine, SymexWorkers = 0, keeps its own behavior and is covered
// by TestTableIIVerdicts.)
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide determinism sweep is not short")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 4
	}
	ref := core.New(core.Config{SymexWorkers: 1})
	par := core.New(core.Config{SymexWorkers: workers})
	for _, s := range corpus.All() {
		s := s
		t.Run(s.Label(), func(t *testing.T) {
			a, err := ref.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify(workers=1): %v", err)
			}
			b, err := par.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify(workers=%d): %v", workers, err)
			}
			if a.Verdict != b.Verdict || a.Type != b.Type || a.Reason != b.Reason {
				t.Errorf("verdict mismatch: workers=1 %v/%v/%q vs workers=%d %v/%v/%q",
					a.Verdict, a.Type, a.Reason, workers, b.Verdict, b.Type, b.Reason)
			}
			if !bytes.Equal(a.PoCPrime, b.PoCPrime) {
				t.Errorf("poc' mismatch: workers=1 %d bytes vs workers=%d %d bytes",
					len(a.PoCPrime), workers, len(b.PoCPrime))
			}
		})
	}
	// The shared sat caches must have been exercised.
	if st := ref.SatCache().Stats(); st.Hits+st.Misses == 0 {
		t.Error("reference pipeline never consulted its sat cache")
	}
}

// TestParallelMatchesTableII: the parallel engine must reproduce the
// Table II shape (verdict class and poc' generation per row, 14 of 15
// verified), not just self-consistency.
func TestParallelMatchesTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is not short")
	}
	pipeline := core.New(core.Config{SymexWorkers: 4})
	verified := 0
	for _, s := range corpus.All() {
		s := s
		t.Run(s.Label(), func(t *testing.T) {
			rep, err := pipeline.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if rep.Type != s.ExpectType {
				t.Errorf("type = %v (reason %q), want %v", rep.Type, rep.Reason, s.ExpectType)
			}
			if rep.PoCGenerated() != s.ExpectPoC {
				t.Errorf("poc' generated = %v, want %v", rep.PoCGenerated(), s.ExpectPoC)
			}
			if rep.Verified() {
				verified++
			}
		})
	}
	if verified != 14 {
		t.Errorf("verified %d of 15 pairs, want 14", verified)
	}
}
