package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/fileformat"
	"octopocs/internal/isa"
)

// addAvdec emits the shared RIFF-style frame decoder of the avconv/ffmpeg
// pair (the CVE-2018-11102 analog, CWE-119): the sample count is read from
// the file and used to fill a fixed eight-slot table of 4-byte samples
// without a bound check.
func addAvdec(b *asm.Builder) {
	g := b.Function("avdec_frame", 1) // (fd)
	fd := g.Param(0)
	table := g.Sys(isa.SysAlloc, g.Const(32)) // 8 samples
	cnt := readU8(g, fd)
	tmp := g.Sys(isa.SysAlloc, g.Const(4))
	i := g.VarI(0)
	g.While(func() isa.Reg { return g.Cmp(isa.Lt, i, cnt) }, func() {
		g.Sys(isa.SysRead, fd, tmp, g.Const(4))
		v := g.Load(4, tmp, 0)
		g.Store(4, g.Add(table, g.MulI(i, 4)), 0, v) // overflows at i == 8
		g.Assign(i, g.AddI(i, 1))
	})
	g.Ret(cnt)
}

var avdecLib = map[string]bool{"avdec_frame": true}

// avdecFrames emits the container frame loop: a u8 frame count, then one
// avdec_frame call per frame. The decoder is entered once per frame, so
// crash-primitive extraction must keep per-entry context (Table III).
func avdecFrames(f *asm.Fn, fd isa.Reg) {
	frames := readU8(f, fd)
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, frames) }, func() {
		f.Call("avdec_frame", fd)
		f.Assign(i, f.AddI(i, 1))
	})
}

// avdecS builds avconv.
func avdecS() *asm.Builder {
	b := asm.NewBuilder("avconv-12.3")
	addAvdec(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MAVI")
	readU16LE(f, fd) // declared payload size, unchecked
	avdecFrames(f, fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// avdecT builds ffmpeg: same container, but a zero payload size is
// rejected.
func avdecT() *asm.Builder {
	b := asm.NewBuilder("ffmpeg-1.0")
	addAvdec(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MAVI")
	size := readU16LE(f, fd)
	f.If(f.EqI(size, 0), func() { f.Exit(1) })
	avdecFrames(f, fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// avdecPoC carries two frames: a well-formed two-sample frame, then a
// nine-sample frame whose ninth store lands past the table.
func avdecPoC() []byte {
	overflowing := make([]uint32, 9) // one past the 8-slot sample table
	for i := range overflowing {
		b := uint32(0x10 + 4*i)
		overflowing[i] = b | (b+1)<<8 | (b+2)<<16 | (b+3)<<24
	}
	doc := &fileformat.MAVI{
		DeclaredSize: 0x40,
		Frames: [][]uint32{
			{0xA3A2A1A0, 0xA7A6A5A4},
			overflowing,
		},
	}
	return doc.Encode()
}

// avdecFfmpeg is Table II Idx-4: avconv → ffmpeg, CVE-2018-11102.
func avdecFfmpeg() *PairSpec {
	return &PairSpec{
		Idx:        4,
		SName:      "avconv",
		SVersion:   "12.3",
		TName:      "ffmpeg",
		TVersion:   "1.0",
		CVE:        "CVE-2018-11102",
		CWE:        "CWE-119",
		ExpectType: core.TypeI,
		ExpectPoC:  true,
		Pair: buildPair("avconv->ffmpeg",
			avdecS(), avdecT(), avdecPoC(), avdecLib, nil),
	}
}
