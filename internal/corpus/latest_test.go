package corpus_test

import (
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
)

// TestLatestVersionFindings reproduces § V-B: the propagated vulnerability
// is still triggerable in the latest versions of libgdx, mozjpeg's
// tjbench, and Xpdf's pdftops; the post-report releases of libgdx and Xpdf
// (the latter assigned CVE-2020-35376) are verified fixed.
func TestLatestVersionFindings(t *testing.T) {
	specs := corpus.LatestVersions()
	if len(specs) != 5 {
		t.Fatalf("variants = %d, want 5", len(specs))
	}
	stillVulnerable, fixed := 0, 0
	pipeline := core.New(core.Config{})
	for _, spec := range specs {
		spec := spec
		t.Run(spec.TName+"/"+spec.TVersion, func(t *testing.T) {
			rep, err := pipeline.Verify(spec.Pair)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			t.Logf("%v", rep)
			triggered := rep.Verdict == core.VerdictTriggered
			if triggered != spec.ExpectTriggered {
				t.Errorf("triggered = %v (reason %q), want %v", triggered, rep.Reason, spec.ExpectTriggered)
			}
			if !rep.Verified() {
				t.Error("latest-version verification must reach a sound verdict")
			}
			if triggered {
				stillVulnerable++
			} else {
				fixed++
			}
			if spec.PostReport && triggered {
				t.Error("post-report release still triggerable")
			}
		})
	}
	if stillVulnerable != 3 || fixed != 2 {
		t.Errorf("still-vulnerable=%d fixed=%d, want 3 and 2 (paper § V-B)", stillVulnerable, fixed)
	}
}
