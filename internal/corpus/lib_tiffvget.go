package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/fileformat"
	"octopocs/internal/isa"
)

// addTiffVGet emits the shared tag-field reader of the tiffsplit pairs
// (the CVE-2016-10095 analog, CWE-119): tag 0x13D (PREDICTOR in the real
// bug) reads a length-prefixed payload into a fixed 8-byte buffer without
// a bound check; every other known tag reads a fixed-width value safely.
func addTiffVGet(b *asm.Builder) {
	g := b.Function("tiff_vgetfield", 2) // (fd, tag)
	fd, tag := g.Param(0), g.Param(1)
	g.If(g.EqI(tag, 0x13D), func() {
		buf := g.Sys(isa.SysAlloc, g.Const(8))
		n := readU8(g, fd)
		g.Sys(isa.SysRead, fd, buf, n) // overflows for n > 8
		g.Ret(n)
	})
	g.If(g.LtI(tag, 0x200), func() {
		g.Ret(readU16LE(g, fd)) // ordinary fixed-width field
	})
	g.RetI(0)
}

var tiffLib = map[string]bool{"tiff_vgetfield": true}

// tiffsplitS builds tiffsplit 4.0.6: it walks the IFD entries of the input
// and fetches each tag through the shared reader — so the dangerous tag
// value comes straight from the file.
func tiffsplitS() *asm.Builder {
	b := asm.NewBuilder("tiffsplit-4.0.6")
	addTiffVGet(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MTIF")
	entries := readU8(f, fd)
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, entries) }, func() {
		tag := readU16LE(f, fd)
		f.Call("tiff_vgetfield", fd, tag)
		f.Assign(i, f.AddI(i, 1))
	})
	f.Exit(0)
	b.Entry("main")
	return b
}

// hardcodedTagsT builds a T binary that reuses the shared reader in an
// environment where only a fixed set of tag values can ever be delivered —
// the exact mechanism of § II-C's non-triggered case.
func hardcodedTagsT(name, magic string, tags []int64) *asm.Builder {
	b := asm.NewBuilder(name)
	addTiffVGet(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, magic)
	readU8(f, fd) // image descriptor byte
	total := f.VarI(0)
	for _, tag := range tags {
		v := f.Call("tiff_vgetfield", fd, f.Const(tag))
		f.Assign(total, f.Add(total, v))
	}
	f.Exit(0)
	b.Entry("main")
	return b
}

// tiffPoC: two IFD entries — a benign IMAGEWIDTH, then the predictor tag
// with a 32-byte payload that bursts the 8-byte buffer.
func tiffPoC() []byte {
	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(0x80 + i)
	}
	dir := &fileformat.MTIF{Entries: []fileformat.IFDEntry{
		{Tag: 0x100, Value: 0x0400},
		{Tag: fileformat.PredictorTag, Payload: payload},
	}}
	return dir.Encode()
}

// tiffCtxArgs marks ep argument 1 (the tag) as semantic context; argument
// 0 is a file descriptor.
var tiffCtxArgs = []int{1}

func tiffSpec(idx int, tname, tversion string, t *asm.Builder) *PairSpec {
	return &PairSpec{
		Idx:        idx,
		SName:      "tiffsplit",
		SVersion:   "4.0.6",
		TName:      tname,
		TVersion:   tversion,
		CVE:        "CVE-2016-10095",
		CWE:        "CWE-119",
		ExpectType: core.TypeIII,
		ExpectPoC:  false,
		Pair: buildPair("tiffsplit->"+tname,
			tiffsplitS(), t, tiffPoC(), tiffLib, tiffCtxArgs),
	}
}

// tiffOpjCompress is Table II Idx-10: tiffsplit → opj_compress 2.3.1.
func tiffOpjCompress() *PairSpec {
	t := hardcodedTagsT("opj_compress-2.3.1", "MTIF",
		[]int64{0x100, 0x101, 0x102, 0x103, 0x106, 0x115, 0x11C})
	return tiffSpec(10, "opj_compress", "2.3.1", t)
}

// tiffLibsdl is Table II Idx-11: tiffsplit → libsdl2 2.0.12.
func tiffLibsdl() *PairSpec {
	t := hardcodedTagsT("libsdl2-2.0.12", "MTIF",
		[]int64{0x106, 0x100, 0x101, 0x115})
	return tiffSpec(11, "libsdl2", "2.0.12", t)
}

// tiffLibgdiplus is Table II Idx-12: tiffsplit → libgdiplus 6.0.5.
func tiffLibgdiplus() *PairSpec {
	t := hardcodedTagsT("libgdiplus-6.0.5", "MGDI",
		[]int64{0x100, 0x101, 0x11C})
	return tiffSpec(12, "libgdiplus", "6.0.5", t)
}
