package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/fileformat"
	"octopocs/internal/isa"
)

// addGifRead emits the shared vulnerable library ℓ of the gif2png pair:
// the analog of gif2png's ReadImage (CVE-2011-2896). The image block
// carries a u8 code count followed by count 2-byte codes, which the
// function copies into a fixed 32-byte table without bounding count — a
// heap buffer overflow for count > 16.
func addGifRead(b *asm.Builder) {
	g := b.Function("gif_read_image", 1) // (fd)
	fd := g.Param(0)
	cnt := readU8(g, fd)
	table := g.Sys(isa.SysAlloc, g.Const(32))
	tmp := g.Sys(isa.SysAlloc, g.Const(2))
	i := g.VarI(0)
	g.While(func() isa.Reg { return g.Cmp(isa.Lt, i, cnt) }, func() {
		g.Sys(isa.SysRead, fd, tmp, g.Const(2))
		code := g.Load(2, tmp, 0)
		g.Store(2, g.Add(table, g.MulI(i, 2)), 0, code) // overflows at i == 16
		g.Assign(i, g.AddI(i, 1))
	})
	g.Ret(cnt)
}

var gifLib = map[string]bool{"gif_read_image": true}

// gifBlockLoop emits the MGIF block loop: 0x2C starts an image (enters ℓ),
// 0x21 is a skippable extension, 0x3B is the trailer. With checkpoint set,
// every image block must be followed by a 0x3A checkpoint byte — the
// artificial clone's second format change, which shifts every later block
// relative to the original PoC and so defeats context-free primitive
// placement (Table III).
func gifBlockLoop(f *asm.Fn, fd isa.Reg, checkpoint bool) {
	tagbuf := f.Sys(isa.SysAlloc, f.Const(1))
	done := f.VarI(0)
	f.While(func() isa.Reg { return f.EqI(done, 0) }, func() {
		n := f.Sys(isa.SysRead, fd, tagbuf, f.Const(1))
		f.If(f.EqI(n, 0), func() { f.Exit(2) })
		tag := f.Load(1, tagbuf, 0)
		f.IfElse(f.EqI(tag, 0x2C), func() {
			f.Call("gif_read_image", fd)
			if checkpoint {
				cp := readU8(f, fd)
				f.If(f.NeI(cp, 0x3A), func() { f.Exit(5) })
			}
		}, func() {
			f.IfElse(f.EqI(tag, 0x3B), func() {
				f.Exit(0)
			}, func() {
				f.IfElse(f.EqI(tag, 0x21), func() {
					skipBytes(f, fd, readU8(f, fd))
				}, func() {
					f.Exit(1)
				})
			})
		})
	})
	f.Exit(0)
}

// gif2pngS builds the original gif2png 2.5.8: it checks the MGIF magic but,
// as the paper notes, "does not care about invalid version information".
func gif2pngS() *asm.Builder {
	b := asm.NewBuilder("gif2png-2.5.8")
	addGifRead(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MGIF")
	readU8(f, fd) // version byte, accepted blindly
	gifBlockLoop(f, fd, false)
	b.Entry("main")
	return b
}

// gif2pngT builds the artificial clone of the paper's Idx-9: identical
// parsing plus a strict version check (must be '8') and an option-flag
// preamble, so the original PoC — which carries an invalid version — no
// longer reaches ℓ and the guiding input must be reformed.
func gif2pngT() *asm.Builder {
	b := asm.NewBuilder("gif2png-artificial")
	addGifRead(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MGIF")
	version := readU8(f, fd)
	f.If(f.NeI(version, '8'), func() { f.Exit(1) }) // the inserted strict check
	flagPreamble(f, fd, 16)
	gifBlockLoop(f, fd, true)
	b.Entry("main")
	return b
}

// gifPoC is the disclosed PoC: invalid version byte 0xFF, one extension
// block, then an image block whose code count 17 overflows the 16-entry
// table.
func gifPoC() []byte {
	overflowing := make([]uint16, 17) // one past the 16-entry code table
	for i := range overflowing {
		lo := byte('A' + (2*i)%26)
		hi := byte('A' + (2*i+1)%26)
		overflowing[i] = uint16(lo) | uint16(hi)<<8
	}
	doc := &fileformat.MGIF{
		Version: 0xFF, // invalid, and gif2png does not care
		Blocks: []fileformat.GIFBlock{
			fileformat.GIFExtension{Data: []byte{0xAA, 0xBB}},
			fileformat.GIFImage{Codes: []uint16{0x3231, 0x3433}},
			fileformat.GIFImage{Codes: overflowing},
		},
	}
	return doc.Encode()
}

// gifreadArtifical is Table II Idx-9: gif2png → gif2png (artificial),
// CVE-2011-2896, Type-II.
func gifreadArtifical() *PairSpec {
	return &PairSpec{
		Idx:        9,
		SName:      "gif2png",
		SVersion:   "2.5.8",
		TName:      "gif2png (artificial)",
		TVersion:   "N/A",
		CVE:        "CVE-2011-2896",
		CWE:        "CWE-119",
		ExpectType: core.TypeII,
		ExpectPoC:  true,
		Pair: buildPair("gif2png->gif2png-artificial",
			gif2pngS(), gif2pngT(), gifPoC(), gifLib, nil),
	}
}
