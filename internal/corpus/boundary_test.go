package corpus_test

import (
	"testing"

	"octopocs/internal/corpus"
	ff "octopocs/internal/fileformat"
	"octopocs/internal/vm"
)

// exec runs the S binary of the given Table II row on input.
func exec(t *testing.T, idx int, input []byte, maxSteps int64) *vm.Outcome {
	t.Helper()
	spec := corpus.ByIdx(idx)
	if maxSteps == 0 {
		maxSteps = spec.Pair.MaxSteps
	}
	return vm.New(spec.Pair.S, vm.Config{Input: input, MaxSteps: maxSteps}).Run()
}

// TestGifReadBoundary: exactly 16 codes fill the table; 17 overflow it.
func TestGifReadBoundary(t *testing.T) {
	image := func(n int) []byte {
		codes := make([]uint16, n)
		doc := &ff.MGIF{Version: 0xFF, Blocks: []ff.GIFBlock{ff.GIFImage{Codes: codes}}, Trailer: true}
		return doc.Encode()
	}
	if out := exec(t, 9, image(16), 0); out.Crashed() {
		t.Errorf("16 codes crashed: %v", out)
	}
	if out := exec(t, 9, image(17), 0); !out.Crashed() {
		t.Errorf("17 codes did not crash: %v", out)
	}
}

// TestAvdecBoundary: eight samples fit the table; nine overflow.
func TestAvdecBoundary(t *testing.T) {
	frames := func(n int) []byte {
		doc := &ff.MAVI{DeclaredSize: 4, Frames: [][]uint32{make([]uint32, n)}}
		return doc.Encode()
	}
	if out := exec(t, 4, frames(8), 0); out.Crashed() {
		t.Errorf("8 samples crashed: %v", out)
	}
	if out := exec(t, 4, frames(9), 0); !out.Crashed() {
		t.Errorf("9 samples did not crash: %v", out)
	}
}

// TestTjdecBoundary: small dimensions decode; 2^32-byte ones truncate the
// allocation and overflow.
func TestTjdecBoundary(t *testing.T) {
	frame := func(w, h uint16, bpp byte) []byte {
		return (&ff.MTJ0{Width: w, Height: h, BPP: bpp}).Encode()
	}
	if out := exec(t, 5, frame(4, 4, 4), 0); out.Crashed() {
		t.Errorf("benign frame crashed: %v", out)
	}
	if out := exec(t, 5, frame(0x8000, 0x8000, 4), 0); !out.Crashed() {
		t.Errorf("wrapping frame did not crash: %v", out)
	}
}

// TestPdfboxBoundary: a 16-byte object fits the reader; 17 bytes overflow.
func TestPdfboxBoundary(t *testing.T) {
	doc := func(n int) []byte {
		return (&ff.PDFObjects{Version: '1', Objects: [][]byte{make([]byte, n)}}).Encode()
	}
	if out := exec(t, 6, doc(16), 0); out.Crashed() {
		t.Errorf("16-byte object crashed: %v", out)
	}
	if out := exec(t, 6, doc(17), 0); !out.Crashed() {
		t.Errorf("17-byte object did not crash: %v", out)
	}
}

// TestTiffBoundary: an 8-byte predictor payload fits; ordinary tags are
// always safe regardless of following bytes.
func TestTiffBoundary(t *testing.T) {
	dir := func(entries ...ff.IFDEntry) []byte {
		return (&ff.MTIF{Entries: entries}).Encode()
	}
	benign := dir(
		ff.IFDEntry{Tag: 0x100, Value: 1},
		ff.IFDEntry{Tag: ff.PredictorTag, Payload: make([]byte, 8)},
	)
	if out := exec(t, 10, benign, 0); out.Crashed() {
		t.Errorf("8-byte payload crashed: %v", out)
	}
	overflow := dir(ff.IFDEntry{Tag: ff.PredictorTag, Payload: make([]byte, 9)})
	if out := exec(t, 10, overflow, 0); !out.Crashed() {
		t.Errorf("9-byte payload did not crash: %v", out)
	}
}

// TestJ2kBoundary: one component decodes; zero components dereference the
// null table. Invalid markers are rejected cleanly.
func TestJ2kBoundary(t *testing.T) {
	spec := corpus.ByIdx(7) // ghostscript S wraps the codestream in a PDF
	wrap := func(cs []byte) []byte {
		return (&ff.PDFStream{
			Sections: []ff.PDFSection{{Kind: ff.PDFSectionImage, Data: cs}},
			End:      true,
		}).Encode()
	}
	runS := func(input []byte) *vm.Outcome {
		return vm.New(spec.Pair.S, vm.Config{Input: input}).Run()
	}
	ok := (&ff.J2K{Width: 4, Height: 4, Components: []byte{8}}).Encode()
	if out := runS(wrap(ok)); out.Crashed() {
		t.Errorf("one-component stream crashed: %v", out)
	}
	bad := (&ff.J2K{Width: 4, Height: 4}).Encode()
	if out := runS(wrap(bad)); !out.Crashed() {
		t.Errorf("zero-component stream did not crash: %v", out)
	}
	garbage := wrap([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	if out := runS(garbage); out.Crashed() {
		t.Errorf("invalid markers crashed instead of erroring: %v", out)
	}
}

// TestPdfscanBoundary: pages of ordinary segments terminate; the stuck
// segment spins until the budget classifies a hang.
func TestPdfscanBoundary(t *testing.T) {
	doc := func(pages ...ff.PDFPage) []byte {
		return (&ff.PDFPages{Version: '4', Pages: pages}).Encode()
	}
	benign := doc(ff.PDFPage{Segments: []ff.PDFSegment{{Tag: 0x11, Data: []byte{1, 2}}}})
	if out := exec(t, 3, benign, 0); out.Crashed() {
		t.Errorf("benign page crashed/hung: %v", out)
	}
	stuck := doc(ff.PDFPage{Segments: []ff.PDFSegment{ff.StuckSegment}, Unterminated: true})
	out := exec(t, 3, stuck, 0)
	if out.Status != vm.StatusHang {
		t.Errorf("stuck page outcome = %v, want hang", out)
	}
}

// TestJpegcBoundary: ordinary dimensions allocate; absurd ones crash on
// the refused allocation.
func TestJpegcBoundary(t *testing.T) {
	img := func(w, h uint16) []byte {
		return (&ff.MJPG{Width: w, Height: h, Quality: 1, Pixels: make([]byte, 16)}).Encode()
	}
	if out := exec(t, 1, img(64, 64), 0); out.Crashed() {
		t.Errorf("64x64 crashed: %v", out)
	}
	if out := exec(t, 1, img(0xFFFF, 0xFFFF), 0); !out.Crashed() {
		t.Errorf("overflowing dimensions did not crash: %v", out)
	}
}

// TestPdfnumBoundary: counts whose square fits in a byte are safe; count
// 16 wraps the 8-bit size to zero.
func TestPdfnumBoundary(t *testing.T) {
	doc := func(cnt byte) []byte {
		return append([]byte("MPDF"), 'N', cnt)
	}
	if out := exec(t, 15, doc(3), 0); out.Crashed() {
		t.Errorf("count 3 crashed: %v", out)
	}
	if out := exec(t, 15, doc(16), 0); !out.Crashed() {
		t.Errorf("count 16 did not crash: %v", out)
	}
}
