package corpus_test

import (
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/vm"
)

// TestAllPairsDefined checks the corpus covers Table II rows 1-15 exactly.
func TestAllPairsDefined(t *testing.T) {
	specs := corpus.All()
	if len(specs) != 15 {
		t.Fatalf("corpus has %d pairs, want 15", len(specs))
	}
	for i, s := range specs {
		if s == nil {
			t.Fatalf("pair %d is nil", i+1)
		}
		if s.Idx != i+1 {
			t.Errorf("pair %d has Idx %d", i+1, s.Idx)
		}
		if s.Pair == nil || s.Pair.S == nil || s.Pair.T == nil || len(s.Pair.PoC) == 0 {
			t.Errorf("pair %d (%s) incomplete", s.Idx, s.Label())
		}
	}
	if corpus.ByIdx(99) != nil {
		t.Error("ByIdx(99) should be nil")
	}
}

// TestPoCsCrashS checks preprocessing ground truth: every PoC crashes its
// S binary inside ℓ.
func TestPoCsCrashS(t *testing.T) {
	for _, s := range corpus.All() {
		t.Run(s.Label(), func(t *testing.T) {
			maxSteps := s.Pair.MaxSteps
			out := vm.New(s.Pair.S, vm.Config{Input: s.Pair.PoC, MaxSteps: maxSteps}).Run()
			if !out.Crashed() {
				t.Fatalf("S outcome = %v, want crash", out)
			}
			if !out.CrashedIn(s.Pair.Lib) {
				t.Fatalf("S crashed at %v, want inside ℓ", out.Crash.Loc)
			}
		})
	}
}

// TestTableIIVerdicts runs the full pipeline over the corpus and asserts
// the Table II shape: verdict class and poc' generation per row, 14 of 15
// verified.
func TestTableIIVerdicts(t *testing.T) {
	pipeline := core.New(core.Config{})
	verified := 0
	for _, s := range corpus.All() {
		s := s
		t.Run(s.Label(), func(t *testing.T) {
			rep, err := pipeline.Verify(s.Pair)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			t.Logf("%v", rep)
			if rep.Type != s.ExpectType {
				t.Errorf("type = %v (reason %q), want %v", rep.Type, rep.Reason, s.ExpectType)
			}
			if rep.PoCGenerated() != s.ExpectPoC {
				t.Errorf("poc' generated = %v, want %v", rep.PoCGenerated(), s.ExpectPoC)
			}
			if rep.Verified() {
				verified++
			}
			// Triggered verdicts must come with an actual ℓ crash.
			if rep.Verdict == core.VerdictTriggered {
				out := vm.New(s.Pair.T, vm.Config{Input: rep.PoCPrime, MaxSteps: s.Pair.MaxSteps}).Run()
				if !out.Crashed() || !out.CrashedIn(s.Pair.Lib) {
					t.Errorf("poc' does not crash T in ℓ: %v", out)
				}
			}
		})
	}
	if verified != 14 {
		t.Errorf("verified %d of 15 pairs, want 14", verified)
	}
}
