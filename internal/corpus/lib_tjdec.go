package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/fileformat"
	"octopocs/internal/isa"
)

// addTjdec emits the shared decompressor of the tjbench pair (the
// CVE-2018-20330 analog, CWE-190): the pixel-buffer size width*height*bpp
// is computed in 32 bits, so large dimensions wrap to a tiny allocation
// while the fill loop runs over the true 64-bit extent.
func addTjdec(b *asm.Builder) {
	g := b.Function("tjdec_decompress", 1) // (fd)
	fd := g.Param(0)
	w := readU16LE(g, fd)
	h := readU16LE(g, fd)
	bpp := readU8(g, fd)
	need := g.Mul(g.Mul(w, h), bpp)           // true 64-bit size
	size := g.BinI(isa.And, need, 0xFFFFFFFF) // the 32-bit truncation bug
	buf := g.Sys(isa.SysAlloc, size)
	i := g.VarI(0)
	g.While(func() isa.Reg { return g.Cmp(isa.Lt, i, need) }, func() {
		g.Store(1, g.Add(buf, i), 0, g.AndI(i, 0xFF)) // overflows once i passes size
		g.Assign(i, g.AddI(i, 1))
	})
	g.Ret(g.Const(0))
}

var tjdecLib = map[string]bool{"tjdec_decompress": true}

// tjdecS builds libjpeg-turbo's tjbench.
func tjdecS() *asm.Builder {
	b := asm.NewBuilder("tjbench-libjpeg-turbo-2.0.1")
	addTjdec(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MTJ0")
	f.Call("tjdec_decompress", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// tjdecT builds mozjpeg's tjbench: identical format with a benchmarking
// wrapper around the shared decompressor.
func tjdecT() *asm.Builder {
	b := asm.NewBuilder("tjbench-mozjpeg")
	addTjdec(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MTJ0")
	rc := f.Call("tjdec_decompress", fd)
	f.If(f.NeI(rc, 0), func() { f.Exit(1) })
	// Benchmark bookkeeping after the decode.
	ticks := f.VarI(0)
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.LtI(i, 16) }, func() {
		f.Assign(ticks, f.Add(ticks, i))
		f.Assign(i, f.AddI(i, 1))
	})
	f.Exit(0)
	b.Entry("main")
	return b
}

// tjdecPoC declares a 32768×32768×4 image: 2^32 bytes exactly, which
// truncates to a zero-size allocation.
func tjdecPoC() []byte {
	frame := &fileformat.MTJ0{Width: 0x8000, Height: 0x8000, BPP: 4}
	return frame.Encode()
}

// tjdecMozjpeg is Table II Idx-5: tjbench (libjpeg-turbo) → tjbench
// (mozjpeg), CVE-2018-20330.
func tjdecMozjpeg() *PairSpec {
	return &PairSpec{
		Idx:        5,
		SName:      "tjbench (libjpeg-turbo)",
		SVersion:   "2.0.1",
		TName:      "tjbench (mozjpeg)",
		TVersion:   "@0xbbb7550",
		CVE:        "CVE-2018-20330",
		CWE:        "CWE-190",
		ExpectType: core.TypeI,
		ExpectPoC:  true,
		Pair: buildPair("tjbench-libjpeg-turbo->tjbench-mozjpeg",
			tjdecS(), tjdecT(), tjdecPoC(), tjdecLib, nil),
	}
}
