package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/fileformat"
	"octopocs/internal/isa"
)

// addJ2kdec emits the shared JPEG2000 codestream decoder of the
// ghostscript/opj_dump/MuPDF pairs (the ghostscript-BZ697463 analog): a
// codestream with zero components leaves the component table pointer null,
// and the first component lookup dereferences it.
func addJ2kdec(b *asm.Builder) {
	// j2k_read_siz parses the SIZ segment: marker, fixed length, non-zero
	// dimensions, and the component count. Returns count+1, or 0 on a
	// malformed segment. It is part of ℓ — the shared set spans both
	// functions, as the paper's ℓ is "a set of functions".
	siz := b.Function("j2k_read_siz", 1) // (fd)
	sfd := siz.Param(0)
	hdr := siz.Sys(isa.SysAlloc, siz.Const(8))
	siz.Sys(isa.SysRead, sfd, hdr, siz.Const(8))
	siz.If(siz.NeI(siz.Load(1, hdr, 0), 0xFF), func() { siz.RetI(0) })
	siz.If(siz.NeI(siz.Load(1, hdr, 1), 0x51), func() { siz.RetI(0) }) // SIZ
	siz.If(siz.NeI(siz.Load(1, hdr, 2), 0x00), func() { siz.RetI(0) })
	siz.If(siz.NeI(siz.Load(1, hdr, 3), 0x08), func() { siz.RetI(0) }) // Lsiz == 8
	w := siz.Load(2, hdr, 4)
	h := siz.Load(2, hdr, 6)
	siz.If(siz.EqI(w, 0), func() { siz.RetI(0) })
	siz.If(siz.EqI(h, 0), func() { siz.RetI(0) })
	cnt := readU8(siz, sfd)
	siz.Ret(siz.AddI(cnt, 1))

	g := b.Function("j2k_decode", 1) // (fd)
	fd := g.Param(0)
	soc := g.Sys(isa.SysAlloc, g.Const(2))
	g.Sys(isa.SysRead, fd, soc, g.Const(2))
	g.If(g.NeI(g.Load(1, soc, 0), 0xFF), func() { g.RetI(1) })
	g.If(g.NeI(g.Load(1, soc, 1), 0x4F), func() { g.RetI(1) }) // SOC
	rc := g.Call("j2k_read_siz", fd)
	g.If(g.EqI(rc, 0), func() { g.RetI(1) })
	cnt2 := g.SubI(rc, 1)
	comps := g.VarI(0) // component table pointer, null until allocated
	g.If(g.GtI(cnt2, 0), func() {
		g.Assign(comps, g.Sys(isa.SysAlloc, g.Mul(cnt2, g.Const(8))))
		j := g.VarI(0)
		g.While(func() isa.Reg { return g.Cmp(isa.Lt, j, cnt2) }, func() {
			depth := readU8(g, fd)
			g.Store(8, g.Add(comps, g.MulI(j, 8)), 0, depth)
			g.Assign(j, g.AddI(j, 1))
		})
	})
	// The bug: component 0 is read unconditionally (null deref if cnt==0).
	first := g.Load(8, comps, 0)
	g.Ret(first)
}

// j2kLib is ℓ for the JPEG2000 pairs: the decoder and its SIZ parser were
// cloned together.
var j2kLib = map[string]bool{"j2k_decode": true, "j2k_read_siz": true}

// j2kGhostscriptS builds ghostscript 9.26: a PDF-wrapper consumer whose 'I'
// streams carry embedded JPEG2000 codestreams.
func j2kGhostscriptS() *asm.Builder {
	b := asm.NewBuilder("ghostscript-9.26")
	addJ2kdec(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	tagbuf := f.Sys(isa.SysAlloc, f.Const(1))
	done := f.VarI(0)
	f.While(func() isa.Reg { return f.EqI(done, 0) }, func() {
		n := f.Sys(isa.SysRead, fd, tagbuf, f.Const(1))
		f.If(f.EqI(n, 0), func() { f.Exit(2) })
		tag := f.Load(1, tagbuf, 0)
		f.IfElse(f.EqI(tag, 'I'), func() {
			f.Call("j2k_decode", fd)
		}, func() {
			f.IfElse(f.EqI(tag, 'E'), func() {
				f.Exit(0)
			}, func() {
				f.IfElse(f.EqI(tag, 'S'), func() {
					skipBytes(f, fd, readU8(f, fd))
				}, func() {
					f.Exit(1)
				})
			})
		})
	})
	f.Exit(0)
	b.Entry("main")
	return b
}

// j2kOpjDumpT builds opj_dump 2.1.1: raw codestream input straight into
// the shared decoder — small and branch-light, which is why the naive
// symbolic baseline handles this one (Table IV row 1).
func j2kOpjDumpT() *asm.Builder {
	b := asm.NewBuilder("opj_dump-2.1.1")
	addJ2kdec(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	rc := f.Call("j2k_decode", fd)
	f.If(f.NeI(rc, 0), func() { f.Exit(1) })
	f.Exit(0)
	b.Entry("main")
	return b
}

// j2kOpjDumpPatchedT builds opj_dump 2.2.0: before decoding, the driver
// peeks the component count and rejects the degenerate zero-component
// stream — the upstream patch.
func j2kOpjDumpPatchedT() *asm.Builder {
	b := asm.NewBuilder("opj_dump-2.2.0")
	addJ2kdec(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	hdr := f.Sys(isa.SysAlloc, f.Const(11))
	f.Sys(isa.SysRead, fd, hdr, f.Const(11))
	cnt := f.Load(1, hdr, 10)
	f.If(f.EqI(cnt, 0), func() { f.Exit(4) }) // the patch
	f.Sys(isa.SysSeek, fd, f.Const(0))
	rc := f.Call("j2k_decode", fd)
	f.If(f.NeI(rc, 0), func() { f.Exit(1) })
	f.Exit(0)
	b.Entry("main")
	return b
}

// j2kMupdfT builds MuPDF 1.9 (the mutool case of § II-C): PDF-wrapper
// input, an option preamble, and stream filters dispatched through a
// function-pointer table — the indirect call that defeats a static CFG.
func j2kMupdfT() *asm.Builder {
	b := asm.NewBuilder("mupdf-1.9")
	addJ2kdec(b)

	flate := b.Function("flate_decode", 1)
	skipBytes(flate, flate.Param(0), readU8(flate, flate.Param(0)))
	flate.RetI(0)

	ascii := b.Function("ascii_decode", 1)
	readU16LE(ascii, ascii.Param(0))
	ascii.RetI(0)

	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	flagPreamble(f, fd, 16)
	tagbuf := f.Sys(isa.SysAlloc, f.Const(1))
	done := f.VarI(0)
	f.While(func() isa.Reg { return f.EqI(done, 0) }, func() {
		n := f.Sys(isa.SysRead, fd, tagbuf, f.Const(1))
		f.If(f.EqI(n, 0), func() { f.Exit(2) })
		tag := f.Load(1, tagbuf, 0)
		f.IfElse(f.EqI(tag, 'O'), func() {
			filter := readU8(f, fd)
			f.If(f.GtI(filter, 2), func() { f.Exit(1) })
			f.CallInd(filter, fd)
		}, func() {
			f.IfElse(f.EqI(tag, 'E'), func() {
				f.Exit(0)
			}, func() {
				f.Exit(1)
			})
		})
	})
	f.Exit(0)
	b.Entry("main")
	b.FuncTable("flate_decode", "ascii_decode", "j2k_decode")
	return b
}

// j2kPdfPoC is the PDF-wrapped PoC that crashes ghostscript: realistic
// metadata sections (hundreds of bytes, as real PDF PoCs carry), then an
// image stream whose codestream declares zero components. The bulk matters
// for the Table V comparison: a mutation-based fuzzer must excise the
// wrapper exactly to hand the raw codestream to opj_dump.
func j2kPdfPoC() []byte {
	meta := func(seed byte) []byte {
		data := make([]byte, 200)
		for i := range data {
			data[i] = seed*7 + byte(i)
		}
		return data
	}
	doc := &fileformat.PDFStream{Sections: []fileformat.PDFSection{
		{Kind: fileformat.PDFSectionSkip, Data: meta(0)},
		{Kind: fileformat.PDFSectionSkip, Data: meta(1)},
		{Kind: fileformat.PDFSectionImage, Data: j2kRawPoC()},
	}}
	return doc.Encode()
}

// j2kRawPoC is the raw codestream PoC that crashes opj_dump: a valid
// header declaring zero components.
func j2kRawPoC() []byte {
	cs := &fileformat.J2K{Width: 0x40, Height: 0x40}
	return cs.Encode()
}

// j2kOpjDump is Table II Idx-7: ghostscript → opj_dump 2.1.1 (PDF wrapper
// to raw codestream), Type-II.
func j2kOpjDump() *PairSpec {
	return &PairSpec{
		Idx:        7,
		SName:      "ghostscript",
		SVersion:   "9.26",
		TName:      "opj_dump",
		TVersion:   "2.1.1",
		CVE:        "ghostscript-BZ697463",
		CWE:        "No-CWE",
		ExpectType: core.TypeII,
		ExpectPoC:  true,
		Pair: buildPair("ghostscript->opj_dump",
			j2kGhostscriptS(), j2kOpjDumpT(), j2kPdfPoC(), j2kLib, nil),
	}
}

// j2kMupdf is Table II Idx-8: opj_dump → MuPDF (raw codestream to PDF
// wrapper, the mutool motivating example), Type-II.
func j2kMupdf() *PairSpec {
	return &PairSpec{
		Idx:        8,
		SName:      "opj_dump",
		SVersion:   "2.1.1",
		TName:      "MuPDF",
		TVersion:   "1.9",
		CVE:        "ghostscript-BZ697463",
		CWE:        "No-CWE",
		ExpectType: core.TypeII,
		ExpectPoC:  true,
		Pair: buildPair("opj_dump->mupdf",
			j2kOpjDumpT(), j2kMupdfT(), j2kRawPoC(), j2kLib, nil),
	}
}

// j2kOpjDumpPatched is Table II Idx-13: ghostscript → opj_dump 2.2.0
// (patched clone), Type-III with no poc'.
func j2kOpjDumpPatched() *PairSpec {
	return &PairSpec{
		Idx:        13,
		SName:      "ghostscript",
		SVersion:   "9.26",
		TName:      "opj_dump",
		TVersion:   "2.2.0",
		CVE:        "ghostscript-BZ697463",
		CWE:        "No-CWE",
		ExpectType: core.TypeIII,
		ExpectPoC:  false,
		Pair: buildPair("ghostscript->opj_dump-patched",
			j2kGhostscriptS(), j2kOpjDumpPatchedT(), j2kPdfPoC(), j2kLib, nil),
	}
}
