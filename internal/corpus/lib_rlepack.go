package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/isa"
)

// This file defines the static-prune pairs (Idx 16-17). They are not Table
// II rows: both T binaries carry constant-disabled code regions — the
// compile-time feature flags a real clone inherits from its build
// configuration — so they exercise the pre-P2 static analysis. Idx 16 is
// the dead-clone variant whose only call into ℓ sits behind a
// constant-false guard (statically unreachable, the short-circuit case);
// Idx 17 keeps a live, triggerable path into ℓ next to a constant-guarded
// dead remnant that pollutes the unpruned distance map.

// addRleExpand emits the shared vulnerable library ℓ: a run-length
// expander that copies a u8-counted byte sequence into a fixed 16-byte
// table without bounding the count — a heap overflow for count > 16.
func addRleExpand(b *asm.Builder) {
	g := b.Function("rle_expand", 1) // (fd)
	fd := g.Param(0)
	cnt := readU8(g, fd)
	table := g.Sys(isa.SysAlloc, g.Const(16))
	i := g.VarI(0)
	g.While(func() isa.Reg { return g.Cmp(isa.Lt, i, cnt) }, func() {
		v := readU8(g, fd)
		g.Store(1, g.Add(table, i), 0, v) // overflows at i == 16
		g.Assign(i, g.AddI(i, 1))
	})
	g.Ret(cnt)
}

var rleLib = map[string]bool{"rle_expand": true}

// rlepackS builds the original rlepack 1.0: magic check, then ℓ expands
// the payload directly.
func rlepackS() *asm.Builder {
	b := asm.NewBuilder("rlepack-1.0")
	addRleExpand(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "RLEP")
	f.Call("rle_expand", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// rlepackDeadT builds the dead-clone variant: the propagated rle_expand is
// still present, but the embedding product compiled it out — the only call
// sits behind a feature flag that is constant false. The call edge exists
// in the static CFG (so plain backward path finding considers ep
// reachable), yet constant folding kills the guard and with it every path
// into ℓ: the statically-unreachable short-circuit case.
func rlepackDeadT() *asm.Builder {
	b := asm.NewBuilder("rlepack-deadclone")
	addRleExpand(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "RLEP")
	enabled := f.Const(0) // the compiled-out feature flag
	f.If(f.NeI(enabled, 0), func() {
		f.Call("rle_expand", fd)
	})
	readU8(f, fd) // consume the count like the original, then ignore it
	f.Exit(0)
	b.Entry("main")
	return b
}

// rlepackEmbedT builds the live clone with a dead remnant: the modern path
// reaches ℓ after a strict version check (so the original poc needs
// reform), while the legacy path — selected by a feasible mode byte —
// still contains a constant-disabled call into ℓ right behind its guard.
// Unpruned, that remnant makes the legacy direction look closest to ep, so
// directed execution wanders into it first and has to backtrack; the
// pruned distance map routes the search straight down the modern path.
func rlepackEmbedT() *asm.Builder {
	b := asm.NewBuilder("rlepack-embed")
	addRleExpand(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "RLEP")
	mode := readU8(f, fd)
	f.IfElse(f.EqI(mode, 'L'), func() {
		// Legacy import path, compiled out of this build.
		legacy := f.Const(0)
		f.If(f.NeI(legacy, 0), func() {
			f.Call("rle_expand", fd)
		})
		f.Exit(3)
	}, func() {
		version := readU8(f, fd)
		f.If(f.NeI(version, '2'), func() { f.Exit(1) })
		flags := readU8(f, fd)
		f.If(f.NeI(f.AndI(flags, 0x80), 0), func() { f.Exit(2) })
		f.Call("rle_expand", fd)
	})
	f.Exit(0)
	b.Entry("main")
	return b
}

// rlePoC crashes S: the RLEP magic, then a count of 20 — four past the
// 16-entry table.
func rlePoC() []byte {
	poc := []byte("RLEP")
	poc = append(poc, 20)
	for i := 0; i < 20; i++ {
		poc = append(poc, byte('a'+i%26))
	}
	return poc
}

// rlepackDeadclone is Idx-16: rlepack → rlepack (dead clone). With static
// pruning the verdict short-circuits to statically-unreachable before any
// symbolic execution; without it, directed execution must discover that
// every path into ℓ dies at the constant guard.
func rlepackDeadclone() *PairSpec {
	return &PairSpec{
		Idx:        16,
		SName:      "rlepack",
		SVersion:   "1.0",
		TName:      "rlepack (dead clone)",
		TVersion:   "N/A",
		CVE:        "N/A (synthetic)",
		CWE:        "CWE-119",
		ExpectType: core.TypeIII,
		ExpectPoC:  false,
		Pair: buildPair("rlepack->rlepack-deadclone",
			rlepackS(), rlepackDeadT(), rlePoC(), rleLib, nil),
	}
}

// rlepackEmbed is Idx-17: rlepack → rlepack (embedded). Triggerable via the
// modern path (Type-II: the strict version check defeats the original poc);
// the constant-guarded legacy remnant exists only to distort the unpruned
// distance map.
func rlepackEmbed() *PairSpec {
	return &PairSpec{
		Idx:        17,
		SName:      "rlepack",
		SVersion:   "1.0",
		TName:      "rlepack (embedded)",
		TVersion:   "N/A",
		CVE:        "N/A (synthetic)",
		CWE:        "CWE-119",
		ExpectType: core.TypeII,
		ExpectPoC:  true,
		Pair: buildPair("rlepack->rlepack-embed",
			rlepackS(), rlepackEmbedT(), rlePoC(), rleLib, nil),
	}
}

// StaticSet returns the static-prune pairs (Idx 16-17). They are kept out
// of All() so the Table II row count stays 15; ByIdx resolves them.
func StaticSet() []*PairSpec {
	return []*PairSpec{
		rlepackDeadclone(), // 16
		rlepackEmbed(),     // 17
	}
}
