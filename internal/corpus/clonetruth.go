package corpus

import "sort"

// CloneFamily names the propagation family of a corpus row: every pair in a
// family shares (a variant of) the same vulnerable library ℓ, so clone
// detection over the corpus should retrieve exactly the same-family targets
// for any family member's source program.
//
// The 17 rows fall into ten families: jpegc (1, 2), pdfscan (3), avdec (4),
// tjdec (5), pdfbox (6, 14), j2k (7, 8, 13), gifread (9), tiff (10, 11, 12),
// pdfnum (15), and rlepack (16, 17).
var cloneFamilies = map[int]string{
	1: "jpegc", 2: "jpegc",
	3:  "pdfscan",
	4:  "avdec",
	5:  "tjdec",
	6:  "pdfbox",
	7:  "j2k",
	8:  "j2k",
	9:  "gifread",
	10: "tiff", 11: "tiff", 12: "tiff",
	13: "j2k",
	14: "pdfbox",
	15: "pdfnum",
	16: "rlepack", 17: "rlepack",
}

// cloneVariants marks the rows whose target carries a Type-variant clone of
// ℓ rather than a verbatim copy: 13 (patched j2k), 14 (patched pdfbox), and
// the static-prune rows 16/17 (re-tuned rlepack constants and pruned
// dispatch).
var cloneVariants = map[int]bool{13: true, 14: true, 16: true, 17: true}

// CloneTruthRow is the clone-detection ground truth for one corpus row: who
// the pair is, which family it belongs to, the shared function set ℓ a
// detector must recover, and whether end-to-end verification of the
// discovered candidate should confirm it (triggered) or refute it.
type CloneTruthRow struct {
	// Idx is the corpus row number (1-17).
	Idx int
	// Family groups rows sharing the same vulnerable library.
	Family string
	// Source and Target are the S/T software names of the row.
	Source string
	Target string
	// Lib is the shared vulnerable function set ℓ, sorted by name.
	Lib []string
	// Variant marks Type-variant clones (patched, constant-retuned, or
	// dispatch-pruned copies of ℓ) as opposed to verbatim propagation.
	Variant bool
	// ExpectTriggered reports whether pipeline verification of this row's
	// own (S, T, ℓ) candidate should yield a reformed PoC that triggers the
	// vulnerability in T. It mirrors ExpectPoC on the PairSpec: false rows
	// are true clones that verification must refute, which is exactly the
	// precision the retrieval stage cannot provide on its own.
	ExpectTriggered bool
}

// CloneTruth returns the clone-detection ground truth for all 17 corpus
// rows (Table II plus the static-prune set), in row order. Rows are rebuilt
// on each call; callers may mutate them freely.
func CloneTruth() []CloneTruthRow {
	specs := append(All(), StaticSet()...)
	rows := make([]CloneTruthRow, 0, len(specs))
	for _, s := range specs {
		lib := make([]string, 0, len(s.Pair.Lib))
		for fn := range s.Pair.Lib {
			lib = append(lib, fn)
		}
		sort.Strings(lib)
		rows = append(rows, CloneTruthRow{
			Idx:             s.Idx,
			Family:          cloneFamilies[s.Idx],
			Source:          s.SName,
			Target:          s.TName,
			Lib:             lib,
			Variant:         cloneVariants[s.Idx],
			ExpectTriggered: s.ExpectPoC,
		})
	}
	return rows
}

// CloneTruthByIdx returns the ground-truth row with the given index, or nil.
func CloneTruthByIdx(idx int) *CloneTruthRow {
	for _, r := range CloneTruth() {
		if r.Idx == idx {
			r := r
			return &r
		}
	}
	return nil
}

// CloneFamilyOf returns the family name of a corpus row ("" if unknown).
func CloneFamilyOf(idx int) string { return cloneFamilies[idx] }

// FamilyTargets returns the row indices belonging to the given family in
// ascending order: the set of targets a scan from any family member's source
// should retrieve, and the only rows where a confirmed verdict can be a true
// positive.
func FamilyTargets(family string) []int {
	var out []int
	for idx, f := range cloneFamilies {
		if f == family {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}
