package corpus

import (
	"octopocs/internal/asm"
	"octopocs/internal/core"
	"octopocs/internal/isa"
)

// LatestSpec is a § V-B variant: the same propagated clone verified
// against the latest version of T at disclosure time, or against the
// version released after the authors' report.
type LatestSpec struct {
	// BaseIdx is the Table II row this variant extends.
	BaseIdx int
	// TName/TVersion identify the variant binary.
	TName    string
	TVersion string
	// PostReport marks versions released after the paper's disclosure
	// (the libgdx and Xpdf fixes; Mozilla answered that a fix was
	// coming).
	PostReport bool
	// NewCVE is the identifier assigned in response to the report
	// (CVE-2020-35376 for Xpdf).
	NewCVE string
	// ExpectTriggered is the verdict the paper reports: still
	// triggerable at disclosure, fixed after the report.
	ExpectTriggered bool
	// Pair is the verification task.
	Pair *core.Pair
}

// LatestVersions returns the § V-B variants: the three binaries whose
// latest versions still carried the propagated vulnerability (libgdx,
// mozjpeg's tjbench, Xpdf's pdftops), plus the post-report fixed releases
// of libgdx and Xpdf.
func LatestVersions() []*LatestSpec {
	return []*LatestSpec{
		{
			BaseIdx: 1, TName: "libgdx", TVersion: "1.9.11 (latest at disclosure)",
			ExpectTriggered: true,
			Pair: buildPair("jpeg-compressor->libgdx-latest",
				jpegcS(), jpegcLibgdxLatestT(), jpegcPoC(), jpegcLib, nil),
		},
		{
			BaseIdx: 1, TName: "libgdx", TVersion: "post-report fix",
			PostReport: true, ExpectTriggered: false,
			Pair: buildPair("jpeg-compressor->libgdx-fixed",
				jpegcS(), jpegcLibgdxFixedT(), jpegcPoC(), jpegcLib, nil),
		},
		{
			BaseIdx: 5, TName: "tjbench (mozjpeg)", TVersion: "master (latest at disclosure)",
			ExpectTriggered: true,
			Pair: buildPair("tjbench-libjpeg-turbo->mozjpeg-latest",
				tjdecS(), tjdecMozjpegLatestT(), tjdecPoC(), tjdecLib, nil),
		},
		{
			BaseIdx: 3, TName: "pdftops (Xpdf)", TVersion: "4.2.0 (latest at disclosure)",
			ExpectTriggered: true,
			Pair:            pdfscanPairWithT("pdftops-poppler->pdftops-xpdf-latest", pdfscanXpdfLatestT()),
		},
		{
			BaseIdx: 3, TName: "pdftops (Xpdf)", TVersion: "post-report fix",
			PostReport: true, NewCVE: "CVE-2020-35376", ExpectTriggered: false,
			Pair: pdfscanPairWithT("pdftops-poppler->pdftops-xpdf-fixed", pdfscanXpdfFixedT()),
		},
	}
}

func pdfscanPairWithT(name string, t *asm.Builder) *core.Pair {
	pair := buildPair(name, pdfscanS(), t, pdfscanPoC(), pdfscanLib, nil)
	pair.MaxSteps = 60_000
	return pair
}

// jpegcLibgdxLatestT is libgdx 1.9.11: an added mip-map configuration path,
// but the decode call and format are unchanged — still vulnerable.
func jpegcLibgdxLatestT() *asm.Builder {
	b := asm.NewBuilder("libgdx-1.9.11")
	addJpegc(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MJPG")
	w := readU16LE(f, fd)
	f.If(f.EqI(w, 0), func() { f.Exit(1) })
	// New in 1.9.11: derive the mip-map level count from the width.
	mips := f.VarI(0)
	cur := f.Var(w)
	f.While(func() isa.Reg { return f.GtI(cur, 1) }, func() {
		f.Assign(cur, f.ShrI(cur, 1))
		f.Assign(mips, f.AddI(mips, 1))
	})
	f.Sys(isa.SysSeek, fd, f.Const(4))
	f.Call("jpegc_decode", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// jpegcLibgdxFixedT is the post-report libgdx: the loader validates the
// dimensions before handing the stream to the decoder.
func jpegcLibgdxFixedT() *asm.Builder {
	b := asm.NewBuilder("libgdx-fixed")
	addJpegc(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MJPG")
	w := readU16LE(f, fd)
	h := readU16LE(f, fd)
	f.If(f.EqI(w, 0), func() { f.Exit(1) })
	// The fix: reject images larger than the supported texture size.
	f.If(f.GtI(w, 0x2000), func() { f.Exit(1) })
	f.If(f.GtI(h, 0x2000), func() { f.Exit(1) })
	f.Sys(isa.SysSeek, fd, f.Const(4))
	f.Call("jpegc_decode", fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// tjdecMozjpegLatestT is mozjpeg master at disclosure (Jan 2020): the
// upstream libjpeg-turbo fix from Nov 2018 was never merged, so the
// decompressor still truncates the size computation.
func tjdecMozjpegLatestT() *asm.Builder {
	b := asm.NewBuilder("tjbench-mozjpeg-master")
	addTjdec(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MTJ0")
	rc := f.Call("tjdec_decompress", fd)
	f.If(f.NeI(rc, 0), func() { f.Exit(1) })
	// Additional benchmark reporting added since the Table II snapshot.
	reps := f.VarI(0)
	f.While(func() isa.Reg { return f.LtI(reps, 32) }, func() {
		f.Assign(reps, f.AddI(reps, 1))
	})
	f.Exit(0)
	b.Entry("main")
	return b
}

// pdfscanXpdfLatestT is Xpdf 4.2.0: still scans pages with the shared
// scanner, still vulnerable.
func pdfscanXpdfLatestT() *asm.Builder {
	b := asm.NewBuilder("pdftops-xpdf-4.2.0")
	addPdfscan(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	version := readU8(f, fd)
	f.If(f.LtI(version, '0'), func() { f.Exit(1) })
	f.If(f.GtI(version, '9'), func() { f.Exit(1) })
	pdfscanPages(f, fd)
	f.Exit(0)
	b.Entry("main")
	return b
}

// pdfscanXpdfFixedT is the post-report Xpdf (the fix that received
// CVE-2020-35376): before scanning, each page is pre-validated and pages
// containing a non-advancing segment are rejected.
func pdfscanXpdfFixedT() *asm.Builder {
	b := asm.NewBuilder("pdftops-xpdf-fixed")
	addPdfscan(b)
	f := b.Function("main", 0)
	fd := f.Sys(isa.SysOpen)
	expectMagic(f, fd, "MPDF")
	version := readU8(f, fd)
	f.If(f.LtI(version, '0'), func() { f.Exit(1) })
	f.If(f.GtI(version, '9'), func() { f.Exit(1) })
	pages := readU8(f, fd)
	i := f.VarI(0)
	f.While(func() isa.Reg { return f.Cmp(isa.Lt, i, pages) }, func() {
		// The fix: pre-validate the page, rejecting stuck segments.
		start := f.Sys(isa.SysTell, fd)
		buf := f.Sys(isa.SysAlloc, f.Const(2))
		scanning := f.VarI(1)
		f.While(func() isa.Reg { return scanning }, func() {
			n := f.Sys(isa.SysRead, fd, buf, f.Const(2))
			f.IfElse(f.LtI(n, 2), func() {
				f.AssignI(scanning, 0)
			}, func() {
				tag := f.Load(1, buf, 0)
				length := f.Load(1, buf, 1)
				stuck := f.Bin(isa.And, f.EqI(tag, 0x7F), f.EqI(length, 0))
				f.If(stuck, func() { f.Exit(3) }) // reject the document
				f.IfElse(f.EqI(tag, 0), func() {
					f.AssignI(scanning, 0)
				}, func() {
					skipBytes(f, fd, length)
				})
			})
		})
		f.Sys(isa.SysSeek, fd, start)
		f.Call("pdfscan_scan", fd)
		f.Assign(i, f.AddI(i, 1))
	})
	f.Exit(0)
	b.Entry("main")
	return b
}
