// Package survey reproduces the § II-A measurement that motivates the
// paper's focus on malformed-file PoCs: of the 2016-2019 CVEs carrying
// Bugzilla references, 1,190 shipped a PoC, and 823 of those (70%) were
// malformed files.
//
// The original measurement crawled NVD and Bugzilla; that corpus is not
// redistributable, so this package pairs a deterministic synthetic report
// generator — calibrated to the paper's published counts — with an honest
// content-based classifier, and the experiment checks that classification
// recovers the distribution from the raw records. The survey sits upstream
// of the pipeline: it justifies why P1–P4 operate on malformed-file PoCs.
//
// Concurrency: Generate and Run are pure functions of their arguments
// (deterministic seeded randomness, no package state) and are safe to call
// concurrently.
package survey

import (
	"fmt"
	"math/rand"
	"strings"
)

// PoCType classifies a proof of concept (§ II-A taxonomy).
type PoCType int

// PoC types.
const (
	ShellCommand PoCType = iota + 1
	Program
	MalformedString
	MalformedFile
)

// String renders the type.
func (t PoCType) String() string {
	switch t {
	case ShellCommand:
		return "shell-command"
	case Program:
		return "program"
	case MalformedString:
		return "malformed-string"
	case MalformedFile:
		return "malformed-file"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Record is one vulnerability report.
type Record struct {
	ID          string
	Year        int
	BugzillaRef bool
	// PoCName and PoCContent are empty when no PoC accompanied the
	// report.
	PoCName    string
	PoCContent []byte
}

// HasPoC reports whether the record carries a PoC.
func (r *Record) HasPoC() bool { return len(r.PoCContent) > 0 }

// fileExts lists attachment extensions treated as file-format PoCs.
var fileExts = []string{".jpg", ".png", ".gif", ".tif", ".pdf", ".mp4", ".avi", ".j2k", ".swf", ".doc", ".zip", ".bin"}

// Classify infers the PoC type from the record's attachment name and
// content, the way the paper's manual triage worked.
func Classify(r *Record) (PoCType, bool) {
	if !r.HasPoC() {
		return 0, false
	}
	name := strings.ToLower(r.PoCName)
	for _, ext := range fileExts {
		if strings.HasSuffix(name, ext) {
			return MalformedFile, true
		}
	}
	content := string(r.PoCContent)
	switch {
	case strings.HasPrefix(content, "#!/") || strings.HasPrefix(content, "$ "):
		return ShellCommand, true
	case strings.Contains(content, "import ") || strings.Contains(content, "#include") ||
		strings.Contains(content, "def ") || strings.Contains(content, "int main"):
		return Program, true
	case binaryFraction(r.PoCContent) > 0.2:
		return MalformedFile, true
	default:
		return MalformedString, true
	}
}

// binaryFraction measures how much of the content is non-printable.
func binaryFraction(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	n := 0
	for _, c := range b {
		if (c < 0x20 && c != '\n' && c != '\t' && c != '\r') || c >= 0x7F {
			n++
		}
	}
	return float64(n) / float64(len(b))
}

// Counts aggregates the survey numbers.
type Counts struct {
	Total       int // reports with Bugzilla references
	WithPoC     int
	ByType      map[PoCType]int
	FilePercent float64
}

// Run classifies every record and aggregates the distribution.
func Run(records []*Record) Counts {
	c := Counts{ByType: make(map[PoCType]int)}
	for _, r := range records {
		if !r.BugzillaRef {
			continue
		}
		c.Total++
		t, ok := Classify(r)
		if !ok {
			continue
		}
		c.WithPoC++
		c.ByType[t]++
	}
	if c.WithPoC > 0 {
		c.FilePercent = 100 * float64(c.ByType[MalformedFile]) / float64(c.WithPoC)
	}
	return c
}

// Paper-published counts (§ II-A).
const (
	PaperTotal    = 2455
	PaperWithPoC  = 1190
	PaperFilePoCs = 823
)

// Generate produces the deterministic synthetic report corpus calibrated to
// the paper's counts: PaperTotal Bugzilla-referenced reports, PaperWithPoC
// of which carry PoCs, PaperFilePoCs of those being malformed files. The
// remaining PoCs are split across the other three types.
func Generate(seed int64) []*Record {
	rng := rand.New(rand.NewSource(seed))
	records := make([]*Record, 0, PaperTotal)

	other := PaperWithPoC - PaperFilePoCs
	quota := map[PoCType]int{
		MalformedFile:   PaperFilePoCs,
		ShellCommand:    other / 3,
		Program:         other / 3,
		MalformedString: other - 2*(other/3),
	}
	var pocTypes []PoCType
	for t, n := range quota {
		for i := 0; i < n; i++ {
			pocTypes = append(pocTypes, t)
		}
	}
	rng.Shuffle(len(pocTypes), func(i, j int) { pocTypes[i], pocTypes[j] = pocTypes[j], pocTypes[i] })

	for i := 0; i < PaperTotal; i++ {
		r := &Record{
			ID:          fmt.Sprintf("CVE-%d-%04d", 2016+i%4, 1000+i),
			Year:        2016 + i%4,
			BugzillaRef: true,
		}
		if i < len(pocTypes) {
			fillPoC(r, pocTypes[i], rng)
		}
		records = append(records, r)
	}
	rng.Shuffle(len(records), func(i, j int) { records[i], records[j] = records[j], records[i] })
	return records
}

// fillPoC synthesizes PoC content of the requested type.
func fillPoC(r *Record, t PoCType, rng *rand.Rand) {
	switch t {
	case MalformedFile:
		ext := fileExts[rng.Intn(len(fileExts))]
		r.PoCName = fmt.Sprintf("poc%d%s", rng.Intn(1000), ext)
		content := make([]byte, 32+rng.Intn(256))
		rng.Read(content)
		r.PoCContent = content
	case ShellCommand:
		r.PoCName = "poc.sh"
		r.PoCContent = []byte(fmt.Sprintf("#!/bin/sh\ncurl -d @payload http://victim:%d/\n", 8000+rng.Intn(100)))
	case Program:
		r.PoCName = "poc.py"
		r.PoCContent = []byte(fmt.Sprintf("import socket\ns = socket.socket()\ns.send(b'A'*%d)\n", 64+rng.Intn(4096)))
	case MalformedString:
		r.PoCName = "poc.txt"
		r.PoCContent = []byte(strings.Repeat("%n%s", 8+rng.Intn(64)))
	}
}
