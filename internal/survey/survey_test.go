package survey_test

import (
	"math"
	"testing"
	"testing/quick"

	"octopocs/internal/survey"
)

func TestGenerateCalibration(t *testing.T) {
	records := survey.Generate(1)
	if len(records) != survey.PaperTotal {
		t.Fatalf("records = %d, want %d", len(records), survey.PaperTotal)
	}
	withPoC := 0
	for _, r := range records {
		if r.HasPoC() {
			withPoC++
		}
		if !r.BugzillaRef {
			t.Fatal("every generated record must carry a Bugzilla reference")
		}
		if r.Year < 2016 || r.Year > 2019 {
			t.Fatalf("year %d out of the paper's 2016-2019 window", r.Year)
		}
	}
	if withPoC != survey.PaperWithPoC {
		t.Errorf("records with PoC = %d, want %d", withPoC, survey.PaperWithPoC)
	}
}

func TestRunRecoversPaperDistribution(t *testing.T) {
	counts := survey.Run(survey.Generate(1))
	if counts.Total != survey.PaperTotal {
		t.Errorf("total = %d, want %d", counts.Total, survey.PaperTotal)
	}
	if counts.WithPoC != survey.PaperWithPoC {
		t.Errorf("withPoC = %d, want %d", counts.WithPoC, survey.PaperWithPoC)
	}
	if counts.ByType[survey.MalformedFile] != survey.PaperFilePoCs {
		t.Errorf("file PoCs = %d, want %d (classifier misjudged some records)",
			counts.ByType[survey.MalformedFile], survey.PaperFilePoCs)
	}
	if math.Abs(counts.FilePercent-70) > 2 {
		t.Errorf("file share = %.1f%%, want ≈70%%", counts.FilePercent)
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		name    string
		rec     survey.Record
		want    survey.PoCType
		present bool
	}{
		{"no poc", survey.Record{}, 0, false},
		{"image attachment", survey.Record{PoCName: "crash.jpg", PoCContent: []byte{1, 2}}, survey.MalformedFile, true},
		{"binary content", survey.Record{PoCName: "poc", PoCContent: []byte{0xFF, 0x00, 0x81, 0x03}}, survey.MalformedFile, true},
		{"shell", survey.Record{PoCName: "x.sh", PoCContent: []byte("#!/bin/sh\nrm x\n")}, survey.ShellCommand, true},
		{"python", survey.Record{PoCName: "x.py", PoCContent: []byte("import os\n")}, survey.Program, true},
		{"c program", survey.Record{PoCName: "x.c", PoCContent: []byte("#include <stdio.h>\nint main(){}\n")}, survey.Program, true},
		{"format string", survey.Record{PoCName: "x.txt", PoCContent: []byte("%n%n%n%s")}, survey.MalformedString, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := survey.Classify(&tt.rec)
			if ok != tt.present || (ok && got != tt.want) {
				t.Errorf("Classify = %v,%v want %v,%v", got, ok, tt.want, tt.present)
			}
		})
	}
}

// Property: generation is deterministic per seed, and classification is
// total over generated records with PoCs.
func TestGenerateDeterministicAndClassifiable(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		a := survey.Run(survey.Generate(seed))
		b := survey.Run(survey.Generate(seed))
		if a.WithPoC != b.WithPoC || a.FilePercent != b.FilePercent {
			return false
		}
		sum := 0
		for _, n := range a.ByType {
			sum += n
		}
		return sum == a.WithPoC
	}, &quick.Config{MaxCount: 5})
	if err != nil {
		t.Error(err)
	}
}

func TestPoCTypeStrings(t *testing.T) {
	for _, ty := range []survey.PoCType{survey.ShellCommand, survey.Program, survey.MalformedString, survey.MalformedFile} {
		if s := ty.String(); s == "" || s[0] == 't' {
			t.Errorf("PoCType(%d).String() = %q", ty, s)
		}
	}
}
