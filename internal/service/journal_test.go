package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"octopocs/internal/corpus"
	"octopocs/internal/journal"
	"octopocs/internal/service"
)

// TestJobJournalLifecycle follows one job's provenance journal through the
// service: live accounting while the recorder is attached, persistence as a
// content-addressed artifact on finish, and identical rendering from the
// JournalEvents accessor before and after.
func TestJobJournalLifecycle(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(corpus.ByIdx(1).Pair)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	events, ok := svc.JournalEvents(job.ID(), 0)
	if !ok || len(events) == 0 {
		t.Fatalf("no journal after finish (ok=%v, %d events)", ok, len(events))
	}
	if events[len(events)-1].Type != journal.EvVerdict {
		t.Fatalf("journal ends in %s, want %s", events[len(events)-1].Type, journal.EvVerdict)
	}
	st := job.Snapshot()
	if st.JournalEvents != len(events) {
		t.Errorf("snapshot counts %d events, accessor returns %d", st.JournalEvents, len(events))
	}
	if !strings.HasPrefix(st.JournalKey, "jr:") {
		t.Errorf("journal key %q is not content-addressed", st.JournalKey)
	}
	if cc := svc.Stats().JournalCache; cc == nil || cc.Entries == 0 {
		t.Errorf("journal store holds no artifacts: %+v", cc)
	}

	// Cursor paging: the second page starts strictly after the first.
	mid := events[len(events)/2].Seq
	page, ok := svc.JournalEvents(job.ID(), mid)
	if !ok {
		t.Fatal("paged read failed")
	}
	for _, ev := range page {
		if ev.Seq <= mid {
			t.Fatalf("page after %d contains seq %d", mid, ev.Seq)
		}
	}
}

// TestJournalDisabled checks that a negative capacity turns the journal off
// without disturbing verification.
func TestJournalDisabled(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, JournalCapacity: -1})
	defer svc.Shutdown(context.Background())
	job, err := svc.Submit(corpus.ByIdx(1).Pair)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := job.Wait(context.Background())
	if err != nil || rep == nil {
		t.Fatalf("verify failed: %v", err)
	}
	if _, ok := svc.JournalEvents(job.ID(), 0); ok {
		t.Error("journal available despite JournalCapacity < 0")
	}
	if st := job.Snapshot(); st.JournalEvents != 0 || st.JournalKey != "" {
		t.Errorf("snapshot leaks journal fields: %+v", st)
	}
}

// TestEventsEndpoint exercises GET /v1/jobs/{id}/events in both modes: the
// JSON page with ?after= paging, and the SSE stream, which must deliver
// every event and a terminal done frame for an already-finished job.
func TestEventsEndpoint(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	job, err := svc.Submit(corpus.ByIdx(1).Pair)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var page service.EventsResponse
	if err := json.NewDecoder(r.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK || len(page.Events) == 0 {
		t.Fatalf("events page: status %d, %d events", r.StatusCode, len(page.Events))
	}
	if page.Next != page.Events[len(page.Events)-1].Seq {
		t.Errorf("next cursor %d, last seq %d", page.Next, page.Events[len(page.Events)-1].Seq)
	}

	// Paging from the end yields an empty page with an unchanged cursor.
	r, err = http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/events?after=" +
		strconv.FormatUint(page.Next, 10))
	if err != nil {
		t.Fatal(err)
	}
	var tail service.EventsResponse
	if err := json.NewDecoder(r.Body).Decode(&tail); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(tail.Events) != 0 || tail.Next != page.Next {
		t.Errorf("tail page: %d events, next %d (want 0, %d)", len(tail.Events), tail.Next, page.Next)
	}

	// SSE replay of the finished job: every event as a data frame, then the
	// done frame.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+job.ID()+"/events?stream=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var streamed []journal.Event
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: done":
			sawDone = true
		case strings.HasPrefix(line, "data: ") && !sawDone:
			var ev journal.Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Fatalf("bad SSE frame %q: %v", line, err)
			}
			streamed = append(streamed, ev)
		}
	}
	if !sawDone {
		t.Fatal("stream ended without a done frame")
	}
	if len(streamed) != len(page.Events) {
		t.Fatalf("streamed %d events, page mode returned %d", len(streamed), len(page.Events))
	}
	if got, want := journal.Render(streamed, journal.RenderOptions{}),
		journal.Render(page.Events, journal.RenderOptions{}); got != want {
		t.Errorf("stream rendering differs from page rendering\n--- stream ---\n%s--- page ---\n%s", got, want)
	}

	// Unknown job and bad cursor answer 404/400.
	if r, _ := http.Get(ts.URL + "/v1/jobs/nope/events"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/events?after=x"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cursor: status %d", r.StatusCode)
	}
}

// TestScanJournalAggregation checks that a finished scan folds per-candidate
// journal accounting into its status.
func TestScanJournalAggregation(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	defer svc.Shutdown(context.Background())
	sc, err := svc.StartScan(&service.ScanRequest{CorpusIdx: 1, CorpusTargets: true, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := sc.Snapshot()
	if len(st.Candidates) == 0 {
		t.Fatal("scan produced no candidates")
	}
	total := 0
	for _, c := range st.Candidates {
		if c.JobID != "" && c.JournalEvents == 0 {
			t.Errorf("candidate %s (job %s) has no journal accounting", c.Target, c.JobID)
		}
		total += c.JournalEvents
	}
	if st.JournalEvents != total {
		t.Errorf("scan total %d, sum of candidates %d", st.JournalEvents, total)
	}
}
