// Package service runs the OCTOPOCS pipeline as a long-lived verification
// service: a bounded job queue drained by a worker pool, a content-addressed
// phase-artifact cache shared by all workers, cooperative cancellation and
// per-job deadlines, and an HTTP API (see http.go) served by the octoserved
// command.
//
// The cache is what makes the service more than a thread pool: clone
// detectors emit many candidate (S, T) pairs sharing one original package or
// one propagation target, so the S-side taint artifacts (P1) and the T-side
// CFG/distance artifacts (P2 prep) are keyed by content hashes of exactly
// the inputs that determine them and reused across jobs.
//
// Concurrency: a Service is safe for concurrent Submit/Wait/Stats calls.
// All pool workers share one core.Pipeline (safe by that package's
// contract) and one artifact cache (internally locked). Two parallelism
// levels compose: Workers jobs run at once, and SymexWorkers explorer
// goroutines run inside each job's P2/P3 symbolic execution; the default
// auto-budget divides GOMAXPROCS between them.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"octopocs/internal/core"
	"octopocs/internal/faultinject"
	"octopocs/internal/journal"
	"octopocs/internal/telemetry"
)

// Service errors.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity; callers are expected to back off and retry.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrSaturated rejects a submission while the persistent artifact
	// store's disk tier is refusing writes (disk full or failing); the HTTP
	// layer maps it to 429 with Retry-After so clients shed load until the
	// volume recovers.
	ErrSaturated = errors.New("service: artifact store saturated")
	// ErrShutdown rejects submissions after Shutdown has begun.
	ErrShutdown = errors.New("service: shutting down")
)

// Defaults.
const (
	// DefaultQueueDepth bounds the number of accepted-but-unstarted jobs.
	DefaultQueueDepth = 64
	// DefaultCacheEntries is the per-class artifact cache capacity.
	DefaultCacheEntries = 512
)

// Config parameterizes a Service.
type Config struct {
	// Workers is the worker-pool size; GOMAXPROCS when <= 0.
	Workers int
	// SymexWorkers is the per-job symbolic exploration budget: how many
	// frontier explorer goroutines each verification's P2/P3 phase may use.
	// 0 (the default) auto-budgets to max(1, GOMAXPROCS / Workers) so a
	// fully loaded pool does not oversubscribe the machine; negative forces
	// the sequential engine. The value (after auto-budgeting) is forwarded
	// to Pipeline.SymexWorkers, overriding whatever that field holds.
	SymexWorkers int
	// QueueDepth bounds queued jobs; DefaultQueueDepth when 0.
	QueueDepth int
	// JobTimeout is the per-job deadline; 0 means none.
	JobTimeout time.Duration
	// CacheEntries sizes each artifact cache class; DefaultCacheEntries
	// when 0, and any negative value disables caching entirely.
	CacheEntries int
	// Pipeline configures the underlying core pipeline.
	Pipeline core.Config
	// P1Store/P2Store override the default LRU backends; useful for
	// plugging an external store. Ignored when CacheEntries < 0.
	P1Store, P2Store Store
	// Stores plugs the persistent tiered artifact stores (see OpenStores)
	// behind the P1, P2/static, journal, and clone-fingerprint caches.
	// Explicit P1Store/P2Store/JournalStore overrides still win per class.
	// The caller owns the bundle: open it before New, close it after
	// Shutdown. While any store's disk tier is saturated, submissions are
	// rejected with ErrSaturated.
	Stores *Stores
	// Registry receives service and engine metrics; New creates a private
	// one when nil, so /metrics and latency quantiles always work.
	Registry *telemetry.Registry
	// Logger receives structured job-lifecycle logs; nil discards them.
	Logger *slog.Logger
	// TraceCapacity bounds the ring of retained finished job traces:
	// telemetry.DefaultTraceCapacity when 0, tracing disabled when
	// negative.
	TraceCapacity int
	// JournalCapacity bounds the events retained per job journal:
	// journal.DefaultCapacity when 0, journaling disabled when negative.
	JournalCapacity int
	// JournalVerbose additionally retains per-state frontier and per-call
	// solver events in each journal (journal.VerbVerbose).
	JournalVerbose bool
	// JournalStore overrides the backend persisting finished-job journals
	// as content-addressed JSONL artifacts; the default is an LRU sized
	// like the artifact caches. Ignored when CacheEntries < 0 and no
	// override is given, or when JournalCapacity < 0.
	JournalStore Store
}

// Service owns a worker pool verifying submitted pairs. Create with New;
// stop with Shutdown.
type Service struct {
	cfg    Config
	pl     *core.Pipeline
	p1c    Store
	p2c    Store
	aic    Store
	hyc    Store
	jrc    Store
	queue  chan *Job
	wg     sync.WaitGroup
	reg    *telemetry.Registry
	log    *slog.Logger
	traces *telemetry.TraceRing
	met    *serviceMetrics

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string
	nextID      uint64
	scans       map[string]*Scan
	scanOrder   []string
	nextScanID  uint64
	batches     map[string]*Batch
	batchOrder  []string
	nextBatchID uint64
	closed      bool
	running     int
	ctr         counters
}

// counters aggregates lifecycle and latency accounting; guarded by
// Service.mu.
type counters struct {
	submitted uint64
	rejected  uint64
	completed uint64
	failed    uint64
	cancelled uint64
	phase     [4]phaseAccum // indexed by phaseIdx
}

type phaseAccum struct {
	n     uint64
	total time.Duration
}

// Phase indices for counters.phase.
const (
	phaseP1 = iota
	phaseP2Prep
	phaseReform
	phaseP4
)

var phaseNames = [4]string{"p1", "p2_prep", "reform", "p4"}

// New starts a service: the worker pool is live and accepting submissions
// when New returns.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.DiscardLogger()
	}
	s := &Service{
		cfg:     cfg,
		reg:     cfg.Registry,
		log:     cfg.Logger,
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    make(map[string]*Job),
		scans:   make(map[string]*Scan),
		batches: make(map[string]*Batch),
	}
	if cfg.TraceCapacity >= 0 {
		s.traces = telemetry.NewTraceRing(cfg.TraceCapacity)
	}
	if cfg.CacheEntries >= 0 {
		entries := cfg.CacheEntries
		if entries == 0 {
			entries = DefaultCacheEntries
		}
		s.p1c, s.p2c = cfg.P1Store, cfg.P2Store
		// Persistent stores slot in under any class without an explicit
		// override; the plain LRU remains the fallback.
		if s.p1c == nil && cfg.Stores != nil {
			s.p1c = cfg.Stores.P1
		}
		if s.p2c == nil && cfg.Stores != nil {
			s.p2c = cfg.Stores.P2
		}
		if s.p1c == nil {
			s.p1c = NewLRU(entries)
		}
		if s.p2c == nil {
			s.p2c = NewLRU(entries)
		}
		// The absint class only exists when the pipeline runs the analysis.
		if cfg.Pipeline.Absint {
			if cfg.Stores != nil {
				s.aic = cfg.Stores.AI
			}
			if s.aic == nil {
				s.aic = NewLRU(entries)
			}
		}
		// Likewise the hybrid class only exists when the fallback is on.
		if cfg.Pipeline.HybridFuzz {
			if cfg.Stores != nil {
				s.hyc = cfg.Stores.HY
			}
			if s.hyc == nil {
				s.hyc = NewLRU(entries)
			}
		}
	}
	if cfg.JournalCapacity >= 0 {
		s.jrc = cfg.JournalStore
		if s.jrc == nil && cfg.Stores != nil {
			s.jrc = cfg.Stores.Journal
		}
		if s.jrc == nil && cfg.CacheEntries >= 0 {
			entries := cfg.CacheEntries
			if entries == 0 {
				entries = DefaultCacheEntries
			}
			s.jrc = NewLRU(entries)
		}
	}
	// Metric registration must precede worker start so scrape-time
	// collectors never race a half-built service.
	s.met = newServiceMetrics(s, s.reg)
	pcfg := cfg.Pipeline
	if pcfg.Metrics == nil {
		pcfg.Metrics = s.met.engines
	}
	switch {
	case cfg.SymexWorkers > 0:
		pcfg.SymexWorkers = cfg.SymexWorkers
	case cfg.SymexWorkers < 0:
		pcfg.SymexWorkers = 0 // sequential engine
	default:
		budget := runtime.GOMAXPROCS(0) / cfg.Workers
		if budget < 1 {
			budget = 1
		}
		pcfg.SymexWorkers = budget
	}
	s.pl = core.New(pcfg)
	if s.p1c != nil || s.p2c != nil {
		s.pl.SetCaches(s.p1c, s.p2c)
	}
	if s.aic != nil {
		s.pl.SetAbsintCache(s.aic)
	}
	if s.hyc != nil {
		s.pl.SetHybridCache(s.hyc)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry exposes the metrics registry (served at /metrics).
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Draining reports whether Shutdown has begun; the liveness endpoint turns
// 503 on a draining service so load balancers stop routing to it.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Trace returns the retained trace for a job: the live recorder while the
// job runs, else the finished trace if the ring still holds it.
func (s *Service) Trace(id string) (*telemetry.Trace, bool) {
	if j, ok := s.Job(id); ok {
		if tr := j.Trace(); tr != nil {
			return tr, true
		}
	}
	return s.traces.Get(id)
}

// Pipeline exposes the shared pipeline (primarily for tests that want to
// compare service results against direct verification).
func (s *Service) Pipeline() *core.Pipeline { return s.pl }

// Submit enqueues a verification. It never blocks: when the queue is at
// capacity the job is rejected with ErrQueueFull, and while the artifact
// store's disk tier is saturated it is rejected with ErrSaturated, so that
// callers (and the HTTP layer's 429 + Retry-After) can apply backpressure
// instead of piling up goroutines.
func (s *Service) Submit(pair *core.Pair) (*Job, error) {
	if pair == nil {
		return nil, errors.New("service: nil pair")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitLocked(); err != nil {
		return nil, err
	}
	return s.newJobLocked(pair)
}

// admitLocked runs the admission-control checks every submission path
// (single or batch) must pass: shutdown, injected capacity bursts, and
// artifact-store saturation. It accounts the rejection itself.
func (s *Service) admitLocked() error {
	if s.closed {
		s.rejectLocked(1)
		return ErrShutdown
	}
	// Injected capacity burst: reject exactly as a full queue would, so
	// clients exercise their backoff path under a deterministic schedule.
	if s.faults().Fire(faultinject.ServiceQueueFull) {
		s.rejectLocked(1)
		return ErrQueueFull
	}
	if s.cfg.Stores.Saturated() {
		s.rejectLocked(1)
		return ErrSaturated
	}
	return nil
}

// rejectLocked accounts n rejected submissions.
func (s *Service) rejectLocked(n int) {
	s.ctr.rejected += uint64(n)
	s.met.rejected.Add(uint64(n))
}

// RetryAfter is the backoff the service advises rejected clients to take
// before resubmitting: the saturation hold while the artifact store is
// refusing writes, else a one-second queue-drain interval. Served as the
// Retry-After header on 429 responses.
func (s *Service) RetryAfter() time.Duration {
	if s.cfg.Stores.Saturated() {
		return s.cfg.Stores.SaturationHold()
	}
	return time.Second
}

// newJobLocked creates, registers, and enqueues one job. Callers hold s.mu
// and have already passed admission control.
func (s *Service) newJobLocked(pair *core.Pair) (*Job, error) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	// Injected deadline expiry: collapse the job's deadline to effectively
	// now, modelling a job that times out no matter what the work costs.
	if s.faults().Fire(faultinject.ServiceJobDeadline) {
		cancel()
		ctx, cancel = context.WithTimeout(context.Background(), time.Millisecond)
	}
	s.nextID++
	job := &Job{
		id:        fmt.Sprintf("job-%d", s.nextID),
		pair:      pair,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     JobQueued,
		submitted: time.Now(),
	}
	// The journal attaches at submission, not start, so streaming readers
	// can already follow a queued job and observe its first event live.
	job.journal = s.newJournal(job.id)
	select {
	case s.queue <- job:
	default:
		s.rejectLocked(1)
		s.nextID-- // the rejected job never existed
		cancel()
		return nil, ErrQueueFull
	}
	s.ctr.submitted++
	s.met.submitted.Inc()
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.log.Debug("job submitted", "job", job.id, "pair", pair.Name)
	return job, nil
}

// Job returns a submitted job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every known job in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// Cancel requests cancellation of a job by ID, reporting whether the job
// exists.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.Cancel()
	return true
}

// Shutdown stops accepting submissions and drains queued plus in-flight
// jobs. When ctx expires first, every unfinished job is cancelled
// cooperatively; Shutdown still waits for the workers to observe the
// cancellation (they return promptly via the stop plumbing) and then
// returns ctx.Err().
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer s.recoverToLog("shutdown.waiter")
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.Cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

func (s *Service) runJob(j *Job) {
	// A job cancelled while still queued finishes without running.
	if err := j.ctx.Err(); err != nil {
		s.finishJob(j, nil, err)
		return
	}
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	wait := j.started.Sub(j.submitted)
	if s.traces != nil {
		j.trace = telemetry.NewTrace(j.id, "verify")
	}
	tr := j.trace
	rec := j.journal
	j.mu.Unlock()
	s.met.queueWait.Observe(wait.Seconds())
	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	jl := s.log.With("job", j.id, "pair", j.pair.Name)
	jl.Info("job started", "queue_wait_ms", wait.Milliseconds())
	ctx := telemetry.WithLogger(j.ctx, jl)
	ctx = telemetry.WithTrace(ctx, tr)
	ctx = journal.With(ctx, rec)
	rep, err := s.verifyJob(ctx, j)

	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	s.finishJob(j, rep, err)
}

// verifyJob is the panic containment boundary of a worker: a panic escaping
// the pipeline becomes a structured job error instead of terminating the
// process, so one poisoned pair cannot take down the service or its queue.
func (s *Service) verifyJob(ctx context.Context, j *Job) (rep *core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := faultinject.Recovered("service.job", r)
			s.faults().CountRecovered()
			s.log.Error("panic recovered in job runner",
				"job", j.id, "pair", j.pair.Name, "panic", fmt.Sprint(r))
			rep, err = nil, pe
		}
	}()
	return s.pl.VerifyContext(ctx, j.pair)
}

// faults is the nil-tolerant accessor for the configured injector.
func (s *Service) faults() *faultinject.Injector { return s.cfg.Pipeline.Faults }

// recoverToLog contains a panic on an internal service goroutine, logging it
// instead of crashing the process.
func (s *Service) recoverToLog(site string) {
	if r := recover(); r != nil {
		s.faults().CountRecovered()
		s.log.Error("panic recovered", "site", site, "panic", fmt.Sprint(r))
	}
}

func (s *Service) finishJob(j *Job, rep *core.Report, err error) {
	j.mu.Lock()
	j.report = rep
	j.err = err
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = JobDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCancelled
	default:
		j.state = JobFailed
	}
	state := j.state
	// Finished traces move from the job to the bounded ring: the jobs map
	// retains every job, the ring is what bounds trace memory.
	tr := j.trace
	j.trace = nil
	rec := j.journal
	j.mu.Unlock()
	j.cancel() // release the deadline timer, if any
	tr.Finish()
	s.traces.Put(tr)
	// Like traces, finished journals leave the job: they persist as
	// content-addressed JSONL artifacts in the journal store, which is what
	// bounds their memory. Must happen before close(j.done) so waiters
	// observing completion can already read the persisted journal;
	// persistJournal clears j.journal only once the key is recorded, so
	// concurrent readers always see one of the two forms.
	s.persistJournal(j, rec)

	s.mu.Lock()
	switch state {
	case JobDone:
		s.ctr.completed++
		t := rep.Timings
		for i, d := range [4]time.Duration{t.P1, t.P2Prep, t.Reform, t.P4} {
			s.ctr.phase[i].n++
			s.ctr.phase[i].total += d
		}
	case JobCancelled:
		s.ctr.cancelled++
	default:
		s.ctr.failed++
	}
	s.mu.Unlock()
	s.met.observeFinish(state, rep)

	switch state {
	case JobDone:
		s.log.Info("job done", "job", j.id, "pair", j.pair.Name,
			"verdict", rep.Verdict.String(), "type", rep.Type.String(),
			"reason", string(rep.Reason))
	case JobCancelled:
		s.log.Info("job cancelled", "job", j.id, "pair", j.pair.Name)
	default:
		s.log.Warn("job failed", "job", j.id, "pair", j.pair.Name, "err", err.Error())
	}

	// Closing done hands the report to waiters; it must be the last read
	// the service performs on it.
	close(j.done)
}
