package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"octopocs/internal/asm"
	"octopocs/internal/corpus"
	"octopocs/internal/service"
)

// scanFamilyKeys renders the corpus/NN keys of a truth family.
func scanFamilyKeys(family string) map[string]bool {
	out := map[string]bool{}
	for _, idx := range corpus.FamilyTargets(family) {
		out[scanKey(idx)] = true
	}
	return out
}

func scanKey(idx int) string { return fmt.Sprintf("corpus/%02d", idx) }

// TestScanEndToEndConfirmed drives the full batch flow for corpus row 1: the
// scan indexes all 17 corpus targets, retrieval must stay within the jpegc
// family, and verification must confirm the true pair with a reformed PoC.
func TestScanEndToEndConfirmed(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	defer svc.Shutdown(context.Background())

	sc, err := svc.StartScan(&service.ScanRequest{
		CorpusIdx:     1,
		CorpusTargets: true,
	})
	if err != nil {
		t.Fatalf("StartScan: %v", err)
	}
	if err := sc.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := sc.Snapshot()
	if st.State != "done" {
		t.Fatalf("scan state = %q, want done", st.State)
	}
	if st.Index.Targets != 17 {
		t.Errorf("indexed %d targets, want 17", st.Index.Targets)
	}
	truth := corpus.CloneTruthByIdx(1)
	family := scanFamilyKeys(truth.Family)
	var diagonal *service.ScanCandidate
	for i := range st.Candidates {
		c := &st.Candidates[i]
		if !family[c.Target] {
			t.Errorf("cross-family candidate %s (score %.3f)", c.Target, c.Score)
		}
		if c.Error != "" {
			t.Errorf("candidate %s: %s", c.Target, c.Error)
		}
		if c.Target == scanKey(1) {
			diagonal = c
		}
	}
	if diagonal == nil {
		t.Fatalf("true pair %s not retrieved; candidates: %+v", scanKey(1), st.Candidates)
	}
	if !diagonal.Confirmed || diagonal.Verdict != "triggered" {
		t.Errorf("true pair not confirmed: %+v", diagonal)
	}
	if diagonal.JobID == "" {
		t.Error("diagonal candidate has no verification job")
	}
	if st.Confirmed < 1 {
		t.Errorf("scan confirmed %d candidates, want >= 1", st.Confirmed)
	}

	// The scan surfaces through the listing APIs.
	if scans := svc.Scans(); len(scans) != 1 || scans[0].ID != sc.ID() {
		t.Errorf("Scans() = %+v", scans)
	}
	if _, ok := svc.ScanByID(sc.ID()); !ok {
		t.Error("ScanByID lost the scan")
	}
}

// TestScanRefutesNonTriggerable checks the precision half of the contract on
// corpus row 16 (a true clone whose vulnerability is not triggerable in T):
// retrieval must still surface the pair, and verification must refute it —
// never confirm.
func TestScanRefutesNonTriggerable(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	defer svc.Shutdown(context.Background())

	sc, err := svc.StartScan(&service.ScanRequest{
		CorpusIdx:     16,
		CorpusTargets: true,
	})
	if err != nil {
		t.Fatalf("StartScan: %v", err)
	}
	if err := sc.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := sc.Snapshot()
	var diagonal *service.ScanCandidate
	for i := range st.Candidates {
		if st.Candidates[i].Target == scanKey(16) {
			diagonal = &st.Candidates[i]
		}
	}
	if diagonal == nil {
		t.Fatalf("true clone %s not retrieved", scanKey(16))
	}
	if diagonal.Confirmed {
		t.Errorf("false positive: non-triggerable clone confirmed: %+v", diagonal)
	}
	if diagonal.Verdict != "not-triggerable" {
		t.Errorf("diagonal verdict = %q, want not-triggerable", diagonal.Verdict)
	}
}

// TestScanHTTPRetrieveOnly drives POST /v1/scan over HTTP with an inline
// source against the corpus index, retrieval only: no verification jobs may
// be created.
func TestScanHTTPRetrieveOnly(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec := corpus.ByIdx(7)
	req := service.ScanRequest{
		Name:          "inline-j2k",
		S:             asm.Format(spec.Pair.S),
		CorpusTargets: true,
		RetrieveOnly:  true,
	}
	for fn := range spec.Pair.Lib {
		req.Vuln = append(req.Vuln, fn)
	}
	resp, body := postJSON(t, ts.URL+"/v1/scan?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan: status %d: %s", resp.StatusCode, body)
	}
	var st service.ScanStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Name != "inline-j2k" {
		t.Fatalf("scan = %+v, want done/inline-j2k", st)
	}
	family := scanFamilyKeys("j2k")
	found := false
	for _, c := range st.Candidates {
		if !family[c.Target] {
			t.Errorf("cross-family candidate %s", c.Target)
		}
		if c.JobID != "" || c.Verdict != "" {
			t.Errorf("retrieve-only scan created verification state: %+v", c)
		}
		if c.Target == scanKey(7) {
			found = true
		}
	}
	if !found {
		t.Errorf("true pair %s not retrieved; candidates: %+v", scanKey(7), st.Candidates)
	}
	if len(svc.Jobs()) != 0 {
		t.Errorf("retrieve-only scan enqueued %d jobs", len(svc.Jobs()))
	}

	// The scan endpoints serve it back.
	r, err := http.Get(ts.URL + "/v1/scans/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/scans/%s: status %d", st.ID, r.StatusCode)
	}
	if r, err = http.Get(ts.URL + "/v1/scans/absent"); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/scans/absent: status %d, want 404", r.StatusCode)
	}
}

// TestScanFindEp: the scan derives the entry point from the S crash
// backtrace and anchors candidates on it.
func TestScanFindEp(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())

	sc, err := svc.StartScan(&service.ScanRequest{
		CorpusIdx:     1,
		CorpusTargets: true,
		FindEp:        true,
		RetrieveOnly:  true,
	})
	if err != nil {
		t.Fatalf("StartScan: %v", err)
	}
	st := sc.Snapshot()
	if st.Ep == "" {
		t.Fatal("FindEp scan has no entry point")
	}
	if !corpus.ByIdx(1).Pair.Lib[st.Ep] {
		t.Errorf("derived ep %q is not an ℓ function", st.Ep)
	}
	if len(st.Candidates) == 0 {
		t.Fatal("anchored scan retrieved nothing")
	}
	for _, c := range st.Candidates {
		if c.Ep != st.Ep {
			t.Errorf("candidate %s ep = %q, want %q", c.Target, c.Ep, st.Ep)
		}
	}
}

// TestScanBadRequests covers the request validation surface over HTTP.
func TestScanBadRequests(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for name, req := range map[string]service.ScanRequest{
		"bad-corpus-idx": {CorpusIdx: 99, CorpusTargets: true},
		"no-targets":     {CorpusIdx: 1},
		"no-vuln":        {S: asm.Format(corpus.ByIdx(1).Pair.S), CorpusTargets: true},
		"bad-source":     {S: "not mir text", Vuln: []string{"f"}, CorpusTargets: true},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/scan", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, body)
		}
	}
}

// TestScanMetrics: a completed scan moves every clonedet counter.
func TestScanMetrics(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	defer svc.Shutdown(context.Background())

	sc, err := svc.StartScan(&service.ScanRequest{CorpusIdx: 16, CorpusTargets: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := svc.Registry().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	exposition := text.String()
	for _, want := range []string{
		"octopocs_clonedet_functions_indexed_total",
		"octopocs_clonedet_scans_total 1",
		"octopocs_clonedet_candidates_ranked_total",
		"octopocs_clonedet_refuted_total",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}
