package service_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"octopocs/internal/core"
	"octopocs/internal/corpus"
	"octopocs/internal/service"
	"octopocs/internal/telemetry"
)

// runOne submits one corpus pair and waits for its report.
func runOne(t *testing.T, svc *service.Service, idx int) (*service.Job, *core.Report) {
	t.Helper()
	job, err := svc.Submit(corpus.ByIdx(idx).Pair)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	rep, err := job.Wait(context.Background())
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	return job, rep
}

// TestMetricsEndpoint drives one verification through the service and
// checks the Prometheus exposition: job lifecycle counters, the per-phase
// latency histogram, the verdict family, and the engine counters flushed
// by the symbolic executor and the VM.
func TestMetricsEndpoint(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	defer svc.Shutdown(context.Background())
	_, rep := runOne(t, svc, 1)

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content-type %q is not Prometheus text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"octopocs_jobs_submitted_total 1",
		"octopocs_jobs_completed_total 1",
		`octopocs_phase_seconds_bucket{phase="p1",le="+Inf"} 1`,
		`octopocs_phase_seconds_count{phase="p1"} 1`,
		`octopocs_verdicts_total{verdict="` + rep.Verdict.String() + `"} 1`,
		"octopocs_queue_wait_seconds_count 1",
		"octopocs_symex_states_total",
		"octopocs_symex_loop_dead_total",
		"octopocs_symex_theta_exhausted_total",
		"octopocs_vm_runs_total",
		"octopocs_solver_solves_total",
		"octopocs_workers 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The pipeline must actually have exercised the engines.
	for _, counter := range []string{
		"octopocs_vm_runs_total 0",
		"octopocs_symex_runs_total 0",
		"octopocs_solver_solves_total 0",
	} {
		if strings.Contains(text, counter+"\n") || strings.HasSuffix(text, counter) {
			t.Errorf("engine counter unexpectedly zero: %q", counter)
		}
	}
}

// TestTraceEndpoint checks that a finished job serves its span tree: a
// verify root carrying the pair attribute, with the four phase spans as
// children.
func TestTraceEndpoint(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())
	job, _ := runOne(t, svc, 1)

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var snap telemetry.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != job.ID() || !snap.Finished {
		t.Fatalf("trace snapshot = {ID:%q Finished:%v}, want finished %q", snap.ID, snap.Finished, job.ID())
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "verify" {
		t.Fatalf("want a single verify root span, got %+v", snap.Spans)
	}
	root := snap.Spans[0]
	if root.Attrs["pair"] != corpus.ByIdx(1).Pair.Name {
		t.Errorf("root pair attr = %v", root.Attrs["pair"])
	}
	got := map[string]bool{}
	for _, child := range root.Children {
		got[child.Name] = true
	}
	for _, phase := range []string{"p1", "p2_prep", "reform", "p4"} {
		if !got[phase] {
			t.Errorf("trace is missing phase span %q (children: %v)", phase, root.Children)
		}
	}

	// Unknown jobs 404 on the trace route like everywhere else.
	resp2, err := http.Get(ts.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace status %d, want 404", resp2.StatusCode)
	}
}

// TestTraceDisabled checks that TraceCapacity < 0 turns the recorder off:
// the job runs normally and the trace route reports 404.
func TestTraceDisabled(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, TraceCapacity: -1})
	defer svc.Shutdown(context.Background())
	job, _ := runOne(t, svc, 1)

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace status %d with tracing disabled, want 404", resp.StatusCode)
	}
}

// TestHealthzDraining checks the liveness flip: 200 while accepting, 503
// once Shutdown has begun.
func TestHealthzDraining(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d before shutdown, want 200", resp.StatusCode)
	}

	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d after shutdown, want 503 (%s)", resp.StatusCode, body)
	}
}

// TestStatsConcurrent hammers Stats and the metrics exposition while jobs
// run, for the race detector: every Stats read (queue occupancy, counters,
// cache accounting, histogram quantiles) must be synchronized with the
// workers mutating the same state.
func TestStatsConcurrent(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	defer svc.Shutdown(context.Background())

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := svc.Stats()
				if st.QueueCap == 0 {
					t.Error("queue cap 0")
					return
				}
				var sb strings.Builder
				if err := svc.Registry().WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		runOne(t, svc, 1)
	}
	close(done)
	wg.Wait()

	st := svc.Stats()
	if st.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Completed)
	}
	p1 := st.PhaseLatency["p1"]
	if p1.Count != 3 {
		t.Fatalf("p1 count = %d, want 3", p1.Count)
	}
	if p1.P50MS < 0 || p1.P50MS > p1.P99MS {
		t.Fatalf("quantile ordering violated: p50=%v p99=%v", p1.P50MS, p1.P99MS)
	}
}

// TestSatCacheHitsAcrossJobs: submitting the same pair twice must answer
// part of the second job's feasibility checks from the pipeline's shared
// satisfiability cache, and the reuse must be visible in /metrics.
func TestSatCacheHitsAcrossJobs(t *testing.T) {
	// Disable the phase-artifact caches so the second job genuinely
	// re-runs reform (otherwise the cached report would skip the solver
	// entirely and prove nothing about sat memoization).
	svc := service.New(service.Config{Workers: 1, CacheEntries: -1})
	defer svc.Shutdown(context.Background())
	runOne(t, svc, 1)
	runOne(t, svc, 1)

	stats := svc.Pipeline().SatCache().Stats()
	if stats.Hits == 0 {
		t.Fatalf("no sat-cache hits after identical resubmission: %+v", stats)
	}

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "octopocs_solver_sat_cache_hits_total") {
		t.Error("exposition missing octopocs_solver_sat_cache_hits_total")
	}
	if strings.Contains(text, "octopocs_solver_sat_cache_hits_total 0\n") {
		t.Error("sat-cache hit counter is zero in /metrics")
	}
}
