package service_test

import (
	"context"
	"testing"

	"octopocs/internal/corpus"
	"octopocs/internal/service"
)

// benchIdxs are Table II rows that share artifacts: 7, 8, and 13 use the
// same openjpeg S package (one P1 computation serves all three), and 7/13
// differ only in T.
var benchIdxs = []int{7, 8, 13}

func runBatch(b *testing.B, svc *service.Service) {
	b.Helper()
	var jobs []*service.Job
	for _, idx := range benchIdxs {
		job, err := svc.Submit(corpus.ByIdx(idx).Pair)
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchCold measures the batch with caching disabled: every
// iteration recomputes all phase artifacts.
func BenchmarkBatchCold(b *testing.B) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 16, CacheEntries: -1})
	defer svc.Shutdown(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBatch(b, svc)
	}
}

// BenchmarkBatchWarm measures the same batch against a pre-warmed artifact
// cache: P1 and P2 prep are served from memory, only reform and P4 run.
func BenchmarkBatchWarm(b *testing.B) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 16})
	defer svc.Shutdown(context.Background())
	runBatch(b, svc) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBatch(b, svc)
	}
}
